package moca_test

import (
	"encoding/json"
	"os"
	"testing"
)

// benchTrajectory mirrors BENCH_throughput.json: the checked-in history of
// BenchmarkSimulatorThroughput, whose last entry is the current budget.
type benchTrajectory struct {
	Trajectory []struct {
		Commit      string `json:"commit"`
		NsPerOp     int64  `json:"ns_per_op"`
		AllocsPerOp int64  `json:"allocs_per_op"`
	} `json:"trajectory"`
}

// TestThroughputAllocBudget is the CI bench smoke: it runs the throughput
// benchmark (one iteration under -benchtime=1x) and fails if allocations
// per op regress more than 20% past the last checked-in trajectory point.
// Allocation counts, unlike wall time, are deterministic enough to gate on
// in shared CI runners. Skipped unless MOCA_BENCH_SMOKE=1.
func TestThroughputAllocBudget(t *testing.T) {
	if os.Getenv("MOCA_BENCH_SMOKE") == "" {
		t.Skip("set MOCA_BENCH_SMOKE=1 to run the bench smoke")
	}
	data, err := os.ReadFile("BENCH_throughput.json")
	if err != nil {
		t.Fatal(err)
	}
	var hist benchTrajectory
	if err := json.Unmarshal(data, &hist); err != nil {
		t.Fatalf("BENCH_throughput.json: %v", err)
	}
	if len(hist.Trajectory) == 0 {
		t.Fatal("BENCH_throughput.json has no trajectory points")
	}
	last := hist.Trajectory[len(hist.Trajectory)-1]
	res := testing.Benchmark(BenchmarkSimulatorThroughput)
	allocs := res.AllocsPerOp()
	budget := last.AllocsPerOp + last.AllocsPerOp/5
	t.Logf("allocs/op: measured %d, trajectory %d (%s), budget %d",
		allocs, last.AllocsPerOp, last.Commit, budget)
	if allocs > budget {
		t.Fatalf("allocation regression: %d allocs/op exceeds budget %d (last checked-in point %d @ %s); if intentional, add a new trajectory point to BENCH_throughput.json",
			allocs, budget, last.AllocsPerOp, last.Commit)
	}
}
