// Command moca-served is the long-running simulation server: it accepts
// jobs from any number of concurrent clients over the internal/wire
// protocol, multiplexes identical submissions onto single simulations
// (singleflight), shares one persistent run cache across all of them, and
// streams progress and live metrics back while runs execute.
//
// Usage:
//
//	moca-served [-addr HOST:PORT] [-cache-dir DIR] [-shards N]
//
// Clients: moca-sim -remote HOST:PORT, or internal/wire/client.
//
// SIGINT/SIGTERM drains gracefully: the listener closes, in-flight jobs
// finish within the drain window, and a second signal forces exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"moca/internal/cmdutil"
	"moca/internal/exp"
	"moca/internal/wire/server"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "127.0.0.1:7654", "listen address")
	measure := flag.Uint64("measure", 300_000, "default measured instructions per core (SUBMIT may override)")
	window := flag.Uint64("profile-window", 300_000, "default profiling window (SUBMIT may override)")
	shards := flag.Int("shards", 0, "worker goroutines per simulation (<= 1: serial)")
	cacheDir := flag.String("cache-dir", os.Getenv("MOCA_CACHE_DIR"), "persistent run-cache directory (default $MOCA_CACHE_DIR; empty = disabled)")
	cacheMode := flag.String("cache", envOr("MOCA_CACHE", "write"), "persistent cache mode: off, read, or write (default $MOCA_CACHE or write)")
	drain := flag.Duration("drain", time.Minute, "graceful-shutdown window for in-flight jobs")
	readTimeout := flag.Duration("read-timeout", 5*time.Minute, "idle-connection read timeout")
	flag.Parse()

	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "moca-served: "+format+"\n", args...)
		return 1
	}

	ctx, stop := cmdutil.NotifyContext(context.Background(), "moca-served")
	defer stop()

	cfg := server.Config{
		Measure:       *measure,
		ProfileWindow: *window,
		Shards:        *shards,
		DrainTimeout:  *drain,
		ReadTimeout:   *readTimeout,
		Logf:          log.New(os.Stderr, "moca-served: ", log.LstdFlags).Printf,
	}
	if *cacheDir != "" {
		mode, err := exp.ParseCacheMode(*cacheMode)
		if err != nil {
			return fail("%v", err)
		}
		cache, err := exp.OpenRunCache(*cacheDir, mode)
		if err != nil {
			return fail("%v", err)
		}
		cfg.Cache = cache
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fail("%v", err)
	}
	cfg.Logf("listening on %s", ln.Addr())
	if err := server.New(cfg).Serve(ctx, ln); err != nil {
		return fail("%v", err)
	}
	cfg.Logf("shut down cleanly")
	return 0
}

func envOr(key, fallback string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return fallback
}
