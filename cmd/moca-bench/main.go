// Command moca-bench regenerates the tables and figures of the MOCA paper
// (IPDPS 2018) from simulation and prints them as text tables.
//
// Usage:
//
//	moca-bench [flags] [experiment ...]
//
// Experiments: table1 table2 table3 fig1 fig2 fig5 fig8 fig9 fig10 fig11
// fig12 fig13 fig14 fig15 fig16 headline ablations extensions, or "all"
// (default: headline). Results are cached across experiments within one
// invocation, so "all" reuses the shared runs exactly as the figures do.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"moca/internal/benchcmp"
	"moca/internal/cmdutil"
	"moca/internal/exp"
	"moca/internal/obs"
	"moca/internal/stats"
)

// main delegates to run so every deferred flush (CPU/heap profiles, the
// run trace) executes even when an experiment fails: os.Exit in the body
// of main would silently discard them.
func main() {
	os.Exit(run())
}

func run() (code int) {
	measure := flag.Uint64("measure", 300_000, "measured instructions per core per run")
	window := flag.Uint64("profile-window", 300_000, "profiling run window (instructions)")
	parallel := flag.Int("parallel", 0, "max concurrent simulations (0 = NumCPU divided by -shards)")
	shards := flag.Int("shards", 0, "worker goroutines per simulation (<= 1: serial; results are identical across shard counts)")
	fastpath := flag.Bool("fastpath", envOr("MOCA_FASTPATH", "1") != "0", "inline-hit and compute-batch fast path (byte-identical either way; default $MOCA_FASTPATH or on)")
	format := flag.String("format", "text", "output format: text, md (markdown), csv (grids only)")
	metrics := flag.Bool("metrics", false, "collect per-run metrics and print per-system aggregate tables at the end")
	traceOut := flag.String("trace-out", "", "write the structured run trace (JSON lines) to this file")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	cacheDir := flag.String("cache-dir", os.Getenv("MOCA_CACHE_DIR"), "persistent run-cache directory (default $MOCA_CACHE_DIR; empty = disabled)")
	cacheMode := flag.String("cache", envOr("MOCA_CACHE", "write"), "persistent cache mode: off, read, or write (default $MOCA_CACHE or write)")
	benchCompare := flag.Bool("benchcompare", false, "diff BENCH_throughput.json trajectory entries instead of running experiments: one ledger file compares its last two entries, two files compare last vs last")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: moca-bench [flags] [experiment ...]\n")
		fmt.Fprintf(os.Stderr, "       moca-bench -benchcompare old.json [new.json]\n")
		fmt.Fprintf(os.Stderr, "experiments: %s, all\n", strings.Join(names(), " "))
		flag.PrintDefaults()
	}
	flag.Parse()

	if *benchCompare {
		report, err := benchcmp.Compare(flag.Args())
		if err != nil {
			fmt.Fprintf(os.Stderr, "moca-bench: benchcompare: %v\n", err)
			return 2
		}
		fmt.Print(report)
		return 0
	}

	ctx, stop := cmdutil.NotifyContext(context.Background(), "moca-bench")
	defer stop()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "moca-bench: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "moca-bench: cpuprofile: %v\n", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "moca-bench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // get up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "moca-bench: memprofile: %v\n", err)
			}
		}()
	}

	r := exp.NewRunner()
	r.Measure = *measure
	r.FW.ProfileWindow = *window
	r.Parallelism = *parallel
	r.Shards = *shards
	r.NoFastpath = !*fastpath
	r.Ctx = ctx
	var runTrace *obs.Trace
	if *traceOut != "" {
		runTrace = obs.NewTrace(0)
		// Flush from a defer so a failing or interrupted sweep still
		// leaves its partial trace on disk.
		defer func() {
			if err := writeTrace(*traceOut, runTrace); err != nil {
				fmt.Fprintf(os.Stderr, "moca-bench: %v\n", err)
				if code == 0 {
					code = 1
				}
				return
			}
			fmt.Printf("[wrote %d trace events to %s (%d dropped past cap)]\n",
				runTrace.Len(), *traceOut, runTrace.Dropped())
		}()
	}
	r.Obs = obs.Options{Metrics: *metrics, Trace: runTrace}

	if *cacheDir != "" {
		mode, err := exp.ParseCacheMode(*cacheMode)
		if err != nil {
			fmt.Fprintf(os.Stderr, "moca-bench: %v\n", err)
			return 2
		}
		cache, err := exp.OpenRunCache(*cacheDir, mode)
		if err != nil {
			fmt.Fprintf(os.Stderr, "moca-bench: %v\n", err)
			return 1
		}
		r.Cache = cache
		if cache != nil {
			defer func() {
				st := cache.Stats()
				fmt.Printf("[cache %s (%s): %d hits, %d misses, %d written, %d evicted]\n",
					cache.Dir(), cache.Mode(), st.Hits, st.Misses, st.Writes, st.Evictions)
			}()
		}
	}

	switch *format {
	case "text", "md", "csv":
	default:
		fmt.Fprintf(os.Stderr, "moca-bench: unknown format %q\n", *format)
		return 2
	}

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"headline"}
	}
	if len(args) == 1 && args[0] == "all" {
		args = names()
	}
	for _, name := range args {
		start := time.Now()
		if err := runOne(r, strings.ToLower(name), *format); err != nil {
			fmt.Fprintf(os.Stderr, "moca-bench: %s: %v\n", name, err)
			return 1
		}
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	if *metrics {
		printMetrics(r)
	}
	return 0
}

func envOr(key, fallback string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return fallback
}

// printMetrics aggregates the cached runs' snapshots per system (counters
// add, high-watermark gauges take the max) and prints one table each.
func printMetrics(r *exp.Runner) {
	bySystem := map[string][]*obs.Snapshot{}
	for key, res := range r.Results() {
		name := key
		if i := strings.Index(key, "|"); i >= 0 {
			name = key[:i]
		}
		bySystem[name] = append(bySystem[name], res.Obs)
	}
	var systems []string
	for name := range bySystem {
		systems = append(systems, name)
	}
	sort.Strings(systems)
	for _, name := range systems {
		merged := obs.Merge(bySystem[name]...)
		fmt.Println(merged.Table(fmt.Sprintf("metrics: %s (aggregate over %d cached runs)",
			name, len(bySystem[name]))).String())
	}
}

func writeTrace(path string, tr *obs.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func names() []string {
	return []string{
		"table1", "table2", "table3",
		"fig1", "fig2", "fig5", "fig8", "fig9", "fig10", "fig11",
		"fig12", "fig13", "fig14", "fig15", "fig16",
		"headline", "ablations", "extensions",
	}
}

func runOne(r *exp.Runner, name, format string) error {
	show := func(t *stats.Table, err error) error {
		if err != nil {
			return err
		}
		if format == "md" {
			fmt.Println(t.Markdown())
		} else {
			fmt.Println(t.String())
		}
		return nil
	}
	grid := func(g *stats.Grid, err error) error {
		if err != nil {
			return err
		}
		switch format {
		case "csv":
			fmt.Printf("# %s\n%s\n", g.Name, g.CSV())
		case "md":
			fmt.Println(g.Table().Markdown())
		default:
			fmt.Println(g.Table().String())
		}
		return nil
	}
	switch name {
	case "table1":
		return show(exp.Table1(), nil)
	case "table2":
		return show(exp.Table2(), nil)
	case "table3":
		_, t, err := r.Table3()
		return show(t, err)
	case "fig1":
		_, t, err := r.Fig1()
		return show(t, err)
	case "fig2":
		_, t, err := r.Fig2()
		return show(t, err)
	case "fig5":
		return show(r.Fig5(), nil)
	case "fig8":
		return grid(r.Fig8())
	case "fig9":
		return grid(r.Fig9())
	case "fig10":
		return grid(r.Fig10())
	case "fig11":
		return grid(r.Fig11())
	case "fig12":
		return grid(r.Fig12())
	case "fig13":
		return grid(r.Fig13())
	case "fig14":
		return grid(r.Fig14())
	case "fig15":
		return grid(r.Fig15())
	case "fig16":
		_, t, err := r.Fig16()
		return show(t, err)
	case "headline":
		_, t, err := r.Headline()
		return show(t, err)
	case "ablations":
		best, t, err := r.AblationThresholds("2L1B1N",
			[]float64{0.5, 1, 2, 5}, []float64{10, 20, 40})
		if err != nil {
			return err
		}
		fmt.Println(t.String())
		fmt.Printf("best thresholds: Thr_Lat=%.1f Thr_BW=%.1f\n\n", best.LatMPKI, best.BWStallCycles)
		if err := show(r.AblationFallback("1L3B")); err != nil {
			return err
		}
		if err := show(r.AblationNamingDepth()); err != nil {
			return err
		}
		if err := show(r.AblationMigration("2L1B1N")); err != nil {
			return err
		}
		if err := show(r.AblationPrefetch()); err != nil {
			return err
		}
		if err := show(r.AblationRowPolicy()); err != nil {
			return err
		}
		if err := show(r.AblationMapping("lbm")); err != nil {
			return err
		}
		return show(r.AblationScheduler("lbm"))
	case "extensions":
		if err := show(r.ExtensionPCM("2B2N")); err != nil {
			return err
		}
		if err := show(r.ExtensionKNL("2L1B1N")); err != nil {
			return err
		}
		return show(r.ExtensionPhases())
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
}
