// Command moca-profile runs MOCA's offline profiling stage for one or more
// built-in applications: it executes the application's training input on
// the profiling system with object naming and counters enabled, classifies
// every heap object, and prints the per-object LUT (the data behind the
// paper's Figs. 1-3 and Table III). With -o, the serialized profile is
// written for cmd/moca-sim to consume — the stand-in for instrumenting the
// classification into the application binary.
//
// Usage:
//
//	moca-profile [-window N] [-simpoints K] [-o DIR] app [app ...]
//	moca-profile -list
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"moca"
)

func main() {
	window := flag.Uint64("window", 300_000, "profiling window (instructions)")
	points := flag.Int("simpoints", 1, "number of simulation points to profile and merge")
	outDir := flag.String("o", "", "directory to write <app>.profile.json files")
	list := flag.Bool("list", false, "list built-in applications and exit")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: moca-profile [flags] app [app ...]   (or: moca-profile all)")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, s := range moca.Apps() {
			fmt.Printf("%-12s %2d objects, %5.1f MB footprint\n",
				s.Name, len(s.Objects), float64(s.Footprint())/(1<<20))
		}
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if len(args) == 1 && args[0] == "all" {
		args = nil
		for _, s := range moca.Apps() {
			args = append(args, s.Name)
		}
	}

	fw := moca.NewFramework()
	fw.ProfileWindow = *window

	for _, name := range args {
		spec, ok := moca.AppByName(name)
		if !ok {
			fatal("unknown application %q (try -list)", name)
		}
		var pr moca.Profile
		var err error
		if *points > 1 {
			pr, err = fw.ProfileMulti(spec, *points)
		} else {
			pr, err = fw.Profile(spec)
		}
		if err != nil {
			fatal("profiling %s: %v", name, err)
		}
		printProfile(fw, spec, pr)
		if *outDir != "" {
			data, err := pr.Marshal()
			if err != nil {
				fatal("encoding %s: %v", name, err)
			}
			path := filepath.Join(*outDir, name+".profile.json")
			if err := os.WriteFile(path, data, 0o644); err != nil {
				fatal("writing %s: %v", path, err)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
}

func printProfile(fw *moca.Framework, spec moca.AppSpec, pr moca.Profile) {
	ins := fw.InstrumentFromProfile(spec, pr)
	m := pr.AppMetrics()
	fmt.Printf("== %s: %d instructions, app-level MPKI %.2f, stall/miss %.1f, class %v\n",
		pr.App, pr.Instructions, m.MPKI, m.StallPerMiss, ins.AppClass)
	fmt.Printf("%-16s %10s %8s %10s %12s %6s\n", "object", "size(KB)", "allocs", "LLC MPKI", "stall/miss", "class")
	fmt.Println(strings.Repeat("-", 68))
	for _, o := range pr.Objects {
		label := o.Label
		if label == "" {
			label = fmt.Sprintf("site_%x", uint64(o.Site))
		}
		fmt.Printf("%-16s %10d %8d %10.2f %12.1f %6v\n",
			label, o.SizeBytes/1024, o.Allocs, o.MPKI, o.StallPerMiss, o.Class)
	}
	fmt.Println()
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "moca-profile: "+format+"\n", args...)
	os.Exit(1)
}
