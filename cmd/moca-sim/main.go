// Command moca-sim runs one simulation: a single application or a 4-app
// workload mix on a chosen memory system, and prints the measured memory
// and system metrics plus the per-module page placement census.
//
// Usage:
//
//	moca-sim [-system NAME] [-measure N] (-app NAME | -mix NAME)
//
// Systems: ddr3, rl, hbm, lp (homogeneous); heter-app, moca (heterogeneous
// config1); heter-app@config2, moca@config3, ... (other capacity configs).
//
// MOCA and Heter-App systems need per-application classification; by
// default the offline profiling stage runs automatically. Pass -profiles
// DIR to load <app>.profile.json files written by moca-profile instead.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"moca"
	"moca/internal/cmdutil"
	"moca/internal/exp"
	"moca/internal/mem"
	"moca/internal/profile"
	"moca/internal/wire"
	"moca/internal/wire/client"
)

// main delegates to run so deferred flushes (the run trace) execute even
// when the simulation fails: os.Exit in main's body would discard them.
func main() {
	os.Exit(run())
}

func run() (code int) {
	system := flag.String("system", "moca", "memory system (ddr3|rl|hbm|lp|heter-app|moca|migrate, optionally @config2/@config3)")
	appName := flag.String("app", "", "single application to run")
	mixName := flag.String("mix", "", "4-application workload set to run")
	measure := flag.Uint64("measure", 300_000, "measured instructions per core")
	shards := flag.Int("shards", 0, "worker goroutines for the run (<= 1: serial; results are identical across shard counts)")
	fastpath := flag.Bool("fastpath", envOr("MOCA_FASTPATH", "1") != "0", "inline-hit and compute-batch fast path (byte-identical either way; default $MOCA_FASTPATH or on)")
	window := flag.Uint64("profile-window", 300_000, "auto-profiling window (instructions)")
	profiles := flag.String("profiles", "", "directory of <app>.profile.json files (skips auto-profiling)")
	jsonOut := flag.Bool("json", false, "emit the result as JSON instead of tables")
	metrics := flag.Bool("metrics", false, "collect runtime metrics and emit the snapshot (table + JSON)")
	traceOut := flag.String("trace-out", "", "write the structured run trace (JSON lines) to this file")
	cacheDir := flag.String("cache-dir", os.Getenv("MOCA_CACHE_DIR"), "persistent run-cache directory (default $MOCA_CACHE_DIR; empty = disabled)")
	cacheMode := flag.String("cache", envOr("MOCA_CACHE", "write"), "persistent cache mode: off, read, or write (default $MOCA_CACHE or write)")
	remote := flag.String("remote", "", "run on a moca-served instance at this address instead of locally (host:port)")
	flag.Parse()

	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "moca-sim: "+format+"\n", args...)
		return 1
	}

	ctx, stop := cmdutil.NotifyContext(context.Background(), "moca-sim")
	defer stop()

	if (*appName == "") == (*mixName == "") {
		return fail("exactly one of -app or -mix is required")
	}
	var apps []string
	if *appName != "" {
		apps = []string{*appName}
	} else {
		mix, ok := moca.MixByName(*mixName)
		if !ok {
			var names []string
			for _, m := range moca.WorkloadMixes() {
				names = append(names, m.Name)
			}
			return fail("unknown mix %q (have: %s)", *mixName, strings.Join(names, " "))
		}
		apps = mix.Apps
	}

	if *remote != "" {
		res, err := runRemote(ctx, *remote, *system, *appName, *mixName, *measure, *window, *metrics)
		if err != nil {
			return fail("%v", err)
		}
		if *jsonOut {
			err = reportJSON(res)
		} else {
			err = report(res)
		}
		if err != nil {
			return fail("%v", err)
		}
		return 0
	}

	cfg, err := systemConfig(*system)
	if err != nil {
		return fail("%v", err)
	}
	var runTrace *moca.RunTrace
	if *traceOut != "" {
		runTrace = moca.NewRunTrace(0)
		// Flush from a defer so a failing run still leaves its partial
		// trace on disk.
		defer func() {
			if err := writeTrace(*traceOut, runTrace); err != nil {
				fmt.Fprintf(os.Stderr, "moca-sim: %v\n", err)
				if code == 0 {
					code = 1
				}
				return
			}
			fmt.Fprintf(os.Stderr, "moca-sim: wrote %d trace events to %s (%d dropped past cap)\n",
				runTrace.Len(), *traceOut, runTrace.Dropped())
		}()
	}
	cfg.Obs = moca.ObsOptions{Metrics: *metrics, Trace: runTrace}
	cfg.Shards = *shards
	cfg.NoFastpath = !*fastpath

	var cache *exp.RunCache
	if *cacheDir != "" {
		mode, err := exp.ParseCacheMode(*cacheMode)
		if err != nil {
			return fail("%v", err)
		}
		if cache, err = exp.OpenRunCache(*cacheDir, mode); err != nil {
			return fail("%v", err)
		}
	}

	fw := moca.NewFramework()
	fw.ProfileWindow = *window
	var procs []moca.ProcSpec
	for _, name := range apps {
		spec, ok := moca.AppByName(name)
		if !ok {
			return fail("unknown application %q", name)
		}
		ins, err := instrument(fw, spec, *profiles)
		if err != nil {
			return fail("%v", err)
		}
		procs = append(procs, ins.Proc(cfg.Policy, moca.Ref))
	}

	var cacheKey string
	if cache != nil {
		if cacheKey, err = exp.ResultCacheKey(cfg, procs, *measure, fw.ProfileWindow); err != nil {
			return fail("%v", err)
		}
	}
	res, cached := cache.LoadResult(cacheKey)
	if cached {
		res.Name = cfg.Name
		fmt.Fprintf(os.Stderr, "moca-sim: result loaded from cache %s\n", cache.Dir())
	} else {
		sys, err := moca.NewSystem(cfg, procs)
		if err != nil {
			return fail("%v", err)
		}
		if res, err = sys.RunContext(ctx, sys.SuggestedWarmup(), *measure); err != nil {
			return fail("%v", err)
		}
		if cache != nil {
			if err := cache.StoreResult(cacheKey, res); err != nil {
				return fail("%v", err)
			}
		}
	}
	if *jsonOut {
		err = reportJSON(res)
	} else {
		err = report(res)
	}
	if err != nil {
		return fail("%v", err)
	}
	return 0
}

func envOr(key, fallback string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return fallback
}

// runRemote submits the run to a moca-served instance and waits for its
// result, printing progress ticks to stderr. Identical submissions from
// any number of moca-sim invocations share one simulation server-side.
// The local cache and trace flags do not apply: the server owns its cache,
// and the run trace never crosses the wire.
func runRemote(ctx context.Context, addr, system, app, mix string, measure, window uint64, metrics bool) (*moca.Result, error) {
	c, err := client.Dial(addr, client.Options{})
	if err != nil {
		return nil, fmt.Errorf("connecting to %s: %w", addr, err)
	}
	defer c.Close()
	var lastPct uint64 = ^uint64(0)
	res, _, err := c.Run(ctx, wire.Submit{
		System:        system,
		App:           app,
		Mix:           mix,
		Measure:       measure,
		ProfileWindow: window,
		Metrics:       metrics,
	}, func(done, total uint64) {
		if total == 0 {
			return
		}
		if pct := done * 100 / total; pct != lastPct {
			lastPct = pct
			fmt.Fprintf(os.Stderr, "moca-sim: remote run %d%% (%d/%d instructions)\n", pct, done, total)
		}
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

func writeTrace(path string, tr *moca.RunTrace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// jsonReport is the machine-readable result schema.
type jsonReport struct {
	System            string         `json:"system"`
	Policy            string         `json:"policy"`
	ElapsedPs         int64          `json:"elapsed_ps"`
	Instructions      uint64         `json:"instructions"`
	MemAccessTimePs   int64          `json:"mem_access_time_ps"`
	MemEnergyJ        float64        `json:"mem_energy_j"`
	MemPowerW         float64        `json:"mem_power_w"`
	MemEDP            float64        `json:"mem_edp"`
	SystemEDP         float64        `json:"system_edp"`
	Cores             []jsonCore     `json:"cores"`
	Channels          []jsonChannel  `json:"channels"`
	PagesByKind       map[string]int `json:"pages_by_kind"`
	FallbackPages     uint64         `json:"fallback_pages"`
	MigrationEpochs   uint64         `json:"migration_epochs,omitempty"`
	MigrationPromotes uint64         `json:"migration_promotions,omitempty"`
	// Metrics is the observability snapshot (present with -metrics).
	Metrics *moca.MetricsSnapshot `json:"metrics,omitempty"`
}

type jsonCore struct {
	App          string  `json:"app"`
	IPC          float64 `json:"ipc"`
	LLCMPKI      float64 `json:"llc_mpki"`
	StallPerMiss float64 `json:"stall_per_miss"`
}

type jsonChannel struct {
	Name       string  `json:"name"`
	Requests   uint64  `json:"requests"`
	AvgNs      float64 `json:"avg_ns"`
	RowHitRate float64 `json:"row_hit_rate"`
}

func reportJSON(res *moca.Result) error {
	out := jsonReport{
		System:            res.Name,
		Policy:            res.Policy,
		ElapsedPs:         int64(res.Elapsed),
		Instructions:      res.TotalInstructions(),
		MemAccessTimePs:   int64(res.AvgMemAccessTime()),
		MemEnergyJ:        res.MemEnergyJ(),
		MemPowerW:         res.MemPowerW(),
		MemEDP:            res.MemEDP(),
		SystemEDP:         res.SystemEDP(),
		PagesByKind:       map[string]int{},
		FallbackPages:     res.OS.FallbackPages,
		MigrationEpochs:   res.Migration.Epochs,
		MigrationPromotes: res.Migration.Promotions,
		Metrics:           res.Obs,
	}
	for _, c := range res.Cores {
		out.Cores = append(out.Cores, jsonCore{
			App: c.App, IPC: c.IPC(), LLCMPKI: c.LLCMPKI(), StallPerMiss: c.StallPerMiss(),
		})
	}
	for _, ch := range res.Channels {
		out.Channels = append(out.Channels, jsonChannel{
			Name: ch.Name, Requests: ch.Stats.Requests(),
			AvgNs:      float64(ch.Stats.AvgLatency()) / 1000,
			RowHitRate: ch.Stats.RowHitRate(),
		})
	}
	for kind, n := range res.PagesOnKind() {
		out.PagesByKind[kind.String()] = n
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	return nil
}

func systemConfig(name string) (moca.SystemConfig, error) {
	base, cfgSel := name, moca.Config1
	if i := strings.Index(name, "@"); i >= 0 {
		base = name[:i]
		switch name[i+1:] {
		case "config1":
			cfgSel = moca.Config1
		case "config2":
			cfgSel = moca.Config2
		case "config3":
			cfgSel = moca.Config3
		default:
			return moca.SystemConfig{}, fmt.Errorf("unknown capacity config %q", name[i+1:])
		}
	}
	switch base {
	case "ddr3":
		return moca.DefaultSystem("homogen-ddr3", moca.Homogeneous(moca.DDR3), moca.PolicyFixed), nil
	case "rl", "rldram":
		return moca.DefaultSystem("homogen-rl", moca.Homogeneous(moca.RLDRAM), moca.PolicyFixed), nil
	case "hbm":
		return moca.DefaultSystem("homogen-hbm", moca.Homogeneous(moca.HBM), moca.PolicyFixed), nil
	case "lp", "lpddr2":
		return moca.DefaultSystem("homogen-lp", moca.Homogeneous(moca.LPDDR2), moca.PolicyFixed), nil
	case "heter-app":
		return moca.DefaultSystem("heter-app", moca.Heterogeneous(cfgSel), moca.PolicyAppLevel), nil
	case "moca":
		return moca.DefaultSystem("moca", moca.Heterogeneous(cfgSel), moca.PolicyMOCA), nil
	case "migrate":
		return moca.DefaultSystem("migrate", moca.Heterogeneous(cfgSel), moca.PolicyMigrate), nil
	default:
		return moca.SystemConfig{}, fmt.Errorf("unknown system %q", name)
	}
}

func instrument(fw *moca.Framework, spec moca.AppSpec, dir string) (moca.Instrumentation, error) {
	if dir == "" {
		return fw.Instrument(spec)
	}
	path := filepath.Join(dir, spec.Name+".profile.json")
	data, err := os.ReadFile(path)
	if err != nil {
		return moca.Instrumentation{}, fmt.Errorf("loading profile: %w (run moca-profile -o %s %s)", err, dir, spec.Name)
	}
	pr, err := profile.Unmarshal(data)
	if err != nil {
		return moca.Instrumentation{}, err
	}
	return fw.InstrumentFromProfile(spec, pr), nil
}

func report(res *moca.Result) error {
	fmt.Printf("system: %s (policy %s)\n", res.Name, res.Policy)
	fmt.Printf("window: %.2f ms simulated, %d instructions total\n",
		float64(res.Elapsed)/1e9, res.TotalInstructions())
	fmt.Println()
	fmt.Printf("%-6s %-12s %8s %10s %12s %10s\n", "core", "app", "IPC", "LLC MPKI", "stall/miss", "TLB hit")
	for i, c := range res.Cores {
		fmt.Printf("%-6d %-12s %8.2f %10.2f %12.1f %9.1f%%\n",
			i, c.App, c.IPC(), c.LLCMPKI(), c.StallPerMiss(), c.TLBHitRate*100)
	}
	fmt.Println()
	fmt.Printf("%-22s %10s %10s %10s %10s\n", "channel", "requests", "avg ns", "row-hit", "queue ns")
	for _, ch := range res.Channels {
		st := ch.Stats
		if st.Requests() == 0 {
			fmt.Printf("%-22s %10d\n", ch.Name, 0)
			continue
		}
		fmt.Printf("%-22s %10d %10.1f %9.0f%% %10.1f\n",
			ch.Name, st.Requests(), float64(st.AvgLatency())/1000,
			st.RowHitRate()*100, float64(st.TotalQueueing)/float64(st.Requests())/1000)
	}
	fmt.Println()
	fmt.Printf("memory access time: %.1f ns/request\n", float64(res.AvgMemAccessTime())/1000)
	fmt.Printf("memory power:       %.4f W (energy %.3e J)\n", res.MemPowerW(), res.MemEnergyJ())
	fmt.Printf("memory EDP:         %.3e\n", res.MemEDP())
	fmt.Printf("system EDP:         %.3e\n", res.SystemEDP())
	fmt.Println()
	fmt.Println("page placement (pages per module kind):")
	pages := res.PagesOnKind()
	kinds := make([]mem.Kind, 0, len(pages))
	for kind := range pages {
		kinds = append(kinds, kind)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, kind := range kinds {
		fmt.Printf("  %-8v %6d\n", kind, pages[kind])
	}
	if res.OS.FallbackPages > 0 {
		fmt.Printf("  (%d pages fell back past their first-choice module)\n", res.OS.FallbackPages)
	}
	if m := res.Migration; m.Epochs > 0 {
		fmt.Printf("migration: %d epochs, %d promotions, %d demotions, %d KB copied, %d shootdowns\n",
			m.Epochs, m.Promotions, m.Demotions, m.CopiedKB, m.Shootdowns)
	}
	if res.Obs != nil {
		fmt.Println()
		fmt.Print(res.Obs.Table("metrics (measured window)").String())
		data, err := json.MarshalIndent(res.Obs, "", "  ")
		if err != nil {
			return err
		}
		fmt.Printf("\nmetrics snapshot (JSON):\n%s\n", data)
	}
	return nil
}
