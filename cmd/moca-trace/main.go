// Command moca-trace records, inspects, and replays instruction traces.
//
// Usage:
//
//	moca-trace record -app NAME [-items N] [-input ref|train] -o FILE
//	moca-trace info FILE
//	moca-trace replay -app NAME [-system NAME] [-measure N] FILE
//
// A trace freezes the exact instruction stream a workload generator
// produced; replay reproduces the original simulation bit for bit and
// decouples workload generation from simulation (external tools can
// produce traces in the documented format — see internal/trace).
// The replayed trace's virtual addresses embed the heap layout of the
// recording, so replay needs the same -app (and input) it was recorded
// with.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"moca"
	"moca/internal/cpu"
	"moca/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  moca-trace record -app NAME [-items N] [-input ref|train] -o FILE
  moca-trace info FILE
  moca-trace replay -app NAME [-system ddr3|rl|hbm|lp] [-measure N] [-loop] FILE`)
	os.Exit(2)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	appName := fs.String("app", "", "application to record")
	items := fs.Uint64("items", 500_000, "stream items to record (compute batches count once)")
	input := fs.String("input", "ref", "input set (ref|train)")
	out := fs.String("o", "", "output trace file")
	fs.Parse(args)
	if *appName == "" || *out == "" {
		usage()
	}
	app, ok := moca.AppByName(*appName)
	if !ok {
		fatal("unknown application %q", *appName)
	}
	in := moca.Ref
	if *input == "train" {
		in = moca.Train
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()
	n, err := moca.RecordTrace(f, app, in, nil, *items)
	if err != nil {
		fatal("recording: %v", err)
	}
	st, _ := f.Stat()
	fmt.Printf("recorded %d stream items of %s (%s input) to %s (%.1f MB, %.2f B/item)\n",
		n, *appName, in, *out, float64(st.Size())/(1<<20), float64(st.Size())/float64(n))
}

func info(args []string) {
	if len(args) != 1 {
		usage()
	}
	f, err := os.Open(args[0])
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		fatal("%v", err)
	}
	var items, computes, loads, depLoads, stores uint64
	var instructions uint64
	objs := map[uint64]uint64{}
	for {
		in, ok := r.Next()
		if !ok {
			break
		}
		items++
		switch in.Kind {
		case cpu.Compute:
			computes++
			instructions += uint64(in.N)
		case cpu.Load:
			loads++
			instructions++
			objs[in.Obj]++
			if in.DependsOnPrev {
				depLoads++
			}
		case cpu.Store:
			stores++
			instructions++
			objs[in.Obj]++
		}
	}
	if err := r.Err(); err != nil {
		fatal("decode: %v", err)
	}
	fmt.Printf("items:         %d (%d instructions)\n", items, instructions)
	fmt.Printf("compute:       %d batches\n", computes)
	fmt.Printf("loads:         %d (%d dependent)\n", loads, depLoads)
	fmt.Printf("stores:        %d\n", stores)
	fmt.Printf("objects:       %d distinct\n", len(objs))
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	appName := fs.String("app", "", "application the trace was recorded from")
	system := fs.String("system", "ddr3", "memory system (ddr3|rl|hbm|lp)")
	measure := fs.Uint64("measure", 200_000, "measured instructions")
	loop := fs.Bool("loop", false, "restart the trace when it ends (finite trace, long run)")
	fs.Parse(args)
	if *appName == "" || fs.NArg() != 1 {
		usage()
	}
	app, ok := moca.AppByName(*appName)
	if !ok {
		fatal("unknown application %q", *appName)
	}
	kinds := map[string]moca.MemoryKind{
		"ddr3": moca.DDR3, "rl": moca.RLDRAM, "hbm": moca.HBM, "lp": moca.LPDDR2,
	}
	kind, ok := kinds[*system]
	if !ok {
		fatal("unknown system %q", *system)
	}

	// The stream's Err() distinguishes a trace that is simply too short
	// from one that is corrupt; the simulator also surfaces it when a
	// decode error ends the stream mid-run.
	var stream cpu.Stream
	var streamErr func() error
	if *loop {
		// Read once so each pass decodes from memory (no fd per pass).
		data, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			fatal("%v", err)
		}
		l := trace.NewLoop(func() (cpu.Stream, error) {
			return trace.NewReader(bytes.NewReader(data))
		})
		stream, streamErr = l, l.Err
	} else {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		r, err := trace.NewReader(f)
		if err != nil {
			fatal("%v", err)
		}
		stream, streamErr = r, r.Err
	}

	cfg := moca.DefaultSystem("replay-"+*system, moca.Homogeneous(kind), moca.PolicyFixed)
	sys, err := moca.NewSystem(cfg, []moca.ProcSpec{{App: app, Input: moca.Ref, Stream: stream}})
	if err != nil {
		fatal("%v", err)
	}
	res, err := sys.Run(sys.SuggestedWarmup(), *measure)
	if err != nil {
		fatal("replay: %v (trace long enough for warmup+measure?)", err)
	}
	fmt.Printf("replayed on %s: %d instructions, IPC %.2f, mem %.1f ns/request, mem EDP %.3e\n",
		cfg.Name, res.TotalInstructions(), res.Cores[0].IPC(),
		float64(res.AvgMemAccessTime())/1000, res.MemEDP())
	if err := streamErr(); err != nil {
		fatal("trace decode: %v", err)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "moca-trace: "+format+"\n", args...)
	os.Exit(1)
}
