// Command moca-trace records, inspects, converts, and replays
// instruction traces.
//
// Usage:
//
//	moca-trace record -app NAME [-items N] [-input ref|train] [-format v1|v2] -o FILE
//	moca-trace info FILE
//	moca-trace inspect FILE
//	moca-trace convert -to v1|v2 [-block-items N] [-block-bytes N] -o OUT IN
//	moca-trace seek -seq N [-n K] FILE
//	moca-trace replay -app NAME [-system NAME] [-measure N] [-skip N] [-json] FILE
//	moca-trace replay -app NAME -remote ADDR -session TOKEN [-system NAME] [-measure N] FILE
//
// A trace freezes the exact instruction stream a workload generator
// produced; replay reproduces the original simulation bit for bit and
// decouples workload generation from simulation (external tools can
// produce traces in the documented format — see internal/trace).
// The replayed trace's virtual addresses embed the heap layout of the
// recording, so replay needs the same -app (and input) it was recorded
// with.
//
// v2 is the block format: framed, per-block compressed, seekable.
// inspect, seek, and -remote need a v2 file (use convert); every other
// verb accepts either version.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"

	"moca"
	"moca/internal/cpu"
	"moca/internal/trace"
	"moca/internal/wire"
	"moca/internal/wire/client"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "inspect":
		inspect(os.Args[2:])
	case "convert":
		convert(os.Args[2:])
	case "seek":
		seek(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  moca-trace record -app NAME [-items N] [-input ref|train] [-format v1|v2] -o FILE
  moca-trace info FILE
  moca-trace inspect FILE
  moca-trace convert -to v1|v2 [-block-items N] [-block-bytes N] -o OUT IN
  moca-trace seek -seq N [-n K] FILE
  moca-trace replay -app NAME [-system ddr3|rl|hbm|lp] [-measure N] [-skip N] [-json] [-loop] FILE
  moca-trace replay -app NAME -remote ADDR -session TOKEN [-system NAME] [-measure N] FILE`)
	os.Exit(2)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	appName := fs.String("app", "", "application to record")
	items := fs.Uint64("items", 500_000, "stream items to record (compute batches count once)")
	input := fs.String("input", "ref", "input set (ref|train)")
	format := fs.String("format", "v2", "trace format (v1|v2)")
	blockItems := fs.Int("block-items", 0, "v2: items per block (0 = default)")
	blockBytes := fs.Int("block-bytes", 0, "v2: raw bytes per block (0 = default)")
	out := fs.String("o", "", "output trace file")
	fs.Parse(args)
	if *appName == "" || *out == "" {
		usage()
	}
	app, ok := moca.AppByName(*appName)
	if !ok {
		fatal("unknown application %q", *appName)
	}
	in := moca.Ref
	if *input == "train" {
		in = moca.Train
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()
	var n uint64
	switch *format {
	case "v1":
		n, err = moca.RecordTrace(f, app, in, nil, *items)
	case "v2":
		n, err = moca.RecordTraceV2(f, app, in, nil, *items, *blockItems, *blockBytes)
	default:
		fatal("unknown format %q (v1|v2)", *format)
	}
	if err != nil {
		fatal("recording: %v", err)
	}
	st, _ := f.Stat()
	fmt.Printf("recorded %d stream items of %s (%s input, %s) to %s (%.1f MB, %.2f B/item)\n",
		n, *appName, in, *format, *out, float64(st.Size())/(1<<20), float64(st.Size())/float64(n))
}

func info(args []string) {
	if len(args) != 1 {
		usage()
	}
	f, err := os.Open(args[0])
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()
	r, err := trace.Open(f)
	if err != nil {
		fatal("%v", err)
	}
	var items, computes, loads, depLoads, stores uint64
	var instructions uint64
	objs := map[uint64]uint64{}
	for {
		in, ok := r.Next()
		if !ok {
			break
		}
		items++
		switch in.Kind {
		case cpu.Compute:
			computes++
			instructions += uint64(in.N)
		case cpu.Load:
			loads++
			instructions++
			objs[in.Obj]++
			if in.DependsOnPrev {
				depLoads++
			}
		case cpu.Store:
			stores++
			instructions++
			objs[in.Obj]++
		}
	}
	if err := r.Err(); err != nil {
		fatal("decode: %v", err)
	}
	fmt.Printf("items:         %d (%d instructions)\n", items, instructions)
	fmt.Printf("compute:       %d batches\n", computes)
	fmt.Printf("loads:         %d (%d dependent)\n", loads, depLoads)
	fmt.Printf("stores:        %d\n", stores)
	fmt.Printf("objects:       %d distinct\n", len(objs))
}

// inspect prints the v2 block table: one line per frame, without
// decompressing or decoding any payload.
func inspect(args []string) {
	if len(args) != 1 {
		usage()
	}
	f, err := os.Open(args[0])
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()
	sc, err := trace.NewBlockScanner(f)
	if err != nil {
		fatal("%v (inspect needs a v2 trace; see convert)", err)
	}
	fmt.Printf("%10s %12s %8s %10s %10s %7s %6s\n",
		"offset", "seq", "items", "raw", "stored", "ratio", "method")
	var blocks, rawTotal, storedTotal uint64
	for sc.Scan() {
		bi := sc.Info()
		method := "raw"
		if bi.Method != 0 {
			method = "lz"
		}
		fmt.Printf("%10d %12d %8d %10d %10d %6.2fx %6s\n",
			bi.Pos.ByteOff, bi.Pos.Seq, bi.Count, bi.RawLen, bi.CompLen,
			float64(bi.RawLen)/float64(bi.CompLen), method)
		blocks++
		rawTotal += uint64(bi.RawLen)
		storedTotal += uint64(bi.CompLen)
	}
	if err := sc.Err(); err != nil {
		fatal("scan: %v", err)
	}
	total, ended := sc.Total()
	end := "missing end frame"
	if ended {
		end = fmt.Sprintf("%d items", total)
	}
	fmt.Printf("%d blocks, %s; %d raw bytes stored as %d (%.2fx)\n",
		blocks, end, rawTotal, storedTotal, float64(rawTotal)/float64(storedTotal))
}

// convert re-encodes a trace in either direction (v1<->v2), or re-frames
// a v2 trace with different block thresholds.
func convert(args []string) {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	to := fs.String("to", "", "target format (v1|v2)")
	blockItems := fs.Int("block-items", 0, "v2: items per block (0 = default)")
	blockBytes := fs.Int("block-bytes", 0, "v2: raw bytes per block (0 = default)")
	out := fs.String("o", "", "output trace file")
	fs.Parse(args)
	if *out == "" || fs.NArg() != 1 {
		usage()
	}
	in, err := os.Open(fs.Arg(0))
	if err != nil {
		fatal("%v", err)
	}
	defer in.Close()
	src, err := trace.Open(in)
	if err != nil {
		fatal("%v", err)
	}
	dst, err := os.Create(*out)
	if err != nil {
		fatal("%v", err)
	}
	defer dst.Close()

	var w interface {
		trace.Appender
		Close() error
	}
	switch *to {
	case "v1":
		w, err = trace.NewWriter(dst)
	case "v2":
		w, err = trace.NewBlockWriterSize(dst, *blockItems, *blockBytes)
	default:
		fatal("unknown target format %q (v1|v2)", *to)
	}
	if err != nil {
		fatal("%v", err)
	}
	n, err := trace.Copy(w, src)
	if err != nil {
		fatal("convert: %v", err)
	}
	if err := w.Close(); err != nil {
		fatal("%v", err)
	}
	ist, _ := in.Stat()
	ost, _ := dst.Stat()
	fmt.Printf("converted %d items to %s: %d -> %d bytes (%.2fx)\n",
		n, *to, ist.Size(), ost.Size(), float64(ist.Size())/float64(ost.Size()))
}

// seek positions a v2 reader at an arbitrary stream item and prints the
// next K items — the positioning path replay's -skip and the wire resume
// protocol both rely on.
func seek(args []string) {
	fs := flag.NewFlagSet("seek", flag.ExitOnError)
	seq := fs.Uint64("seq", 0, "stream item to seek to")
	n := fs.Int("n", 10, "items to print from there")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()
	r, err := trace.Open(f)
	if err != nil {
		fatal("%v", err)
	}
	br, ok := r.(*trace.BlockReader)
	if !ok {
		fatal("seek needs a v2 trace (see convert)")
	}
	if err := br.SkipTo(*seq); err != nil {
		fatal("seek: %v", err)
	}
	fmt.Printf("block at offset %d starts at item %d\n", br.BlockPos().ByteOff, br.BlockPos().Seq)
	for i := 0; i < *n; i++ {
		in, ok := br.Next()
		if !ok {
			break
		}
		switch in.Kind {
		case cpu.Compute:
			fmt.Printf("%12d  compute x%d\n", *seq+uint64(i), in.N)
		case cpu.Load:
			dep := ""
			if in.DependsOnPrev {
				dep = " dep"
			}
			fmt.Printf("%12d  load  obj=%d addr=0x%x%s\n", *seq+uint64(i), in.Obj, in.VAddr, dep)
		case cpu.Store:
			fmt.Printf("%12d  store obj=%d addr=0x%x\n", *seq+uint64(i), in.Obj, in.VAddr)
		}
	}
	if err := br.Err(); err != nil {
		fatal("decode: %v", err)
	}
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	appName := fs.String("app", "", "application the trace was recorded from")
	system := fs.String("system", "ddr3", "memory system (ddr3|rl|hbm|lp)")
	measure := fs.Uint64("measure", 200_000, "measured instructions")
	skip := fs.Uint64("skip", 0, "stream items to skip before replaying")
	asJSON := fs.Bool("json", false, "print the full result document as JSON")
	loop := fs.Bool("loop", false, "restart the trace when it ends (finite trace, long run)")
	remote := fs.String("remote", "", "push the trace to a moca-served instance at ADDR instead of simulating locally")
	session := fs.String("session", "", "remote session token (resume key across reconnects)")
	fs.Parse(args)
	if *appName == "" || fs.NArg() != 1 {
		usage()
	}
	if *remote != "" {
		replayRemote(*remote, *session, *appName, *system, *measure, fs.Arg(0), *asJSON)
		return
	}
	app, ok := moca.AppByName(*appName)
	if !ok {
		fatal("unknown application %q", *appName)
	}
	kinds := map[string]moca.MemoryKind{
		"ddr3": moca.DDR3, "rl": moca.RLDRAM, "hbm": moca.HBM, "lp": moca.LPDDR2,
	}
	kind, ok := kinds[*system]
	if !ok {
		fatal("unknown system %q", *system)
	}

	// The stream's Err() distinguishes a trace that is simply too short
	// from one that is corrupt; the simulator also surfaces it when a
	// decode error ends the stream mid-run.
	var stream moca.TraceStream
	if *loop {
		// Read once so each pass decodes from memory (no fd per pass).
		data, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			fatal("%v", err)
		}
		stream = trace.NewLoop(func() (cpu.Stream, error) {
			return trace.Open(bytes.NewReader(data))
		})
	} else {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		stream, err = trace.Open(f)
		if err != nil {
			fatal("%v", err)
		}
	}
	if *skip > 0 {
		if br, ok := stream.(*trace.BlockReader); ok {
			// v2 skips by block header, without decoding the prefix.
			if err := br.SkipTo(*skip); err != nil {
				fatal("skip: %v", err)
			}
		} else {
			for i := uint64(0); i < *skip; i++ {
				if _, ok := stream.Next(); !ok {
					if err := stream.Err(); err != nil {
						fatal("skip: %v", err)
					}
					fatal("skip: trace ends at item %d, before %d", i, *skip)
				}
			}
		}
	}

	// Use the canonical system name ("homogen-ddr3", ...) so a local
	// replay's result is byte-identical to the same trace streamed to a
	// moca-served instance (which resolves -system through the same
	// naming).
	cfg := moca.DefaultSystem("homogen-"+*system, moca.Homogeneous(kind), moca.PolicyFixed)
	sys, err := moca.NewSystem(cfg, []moca.ProcSpec{{App: app, Input: moca.Ref, Stream: stream}})
	if err != nil {
		fatal("%v", err)
	}
	res, err := sys.Run(sys.SuggestedWarmup(), *measure)
	if err != nil {
		fatal("replay: %v (trace long enough for warmup+measure?)", err)
	}
	if err := stream.Err(); err != nil {
		fatal("trace decode: %v", err)
	}
	if *asJSON {
		raw, err := res.MarshalJSON()
		if err != nil {
			fatal("%v", err)
		}
		os.Stdout.Write(append(raw, '\n'))
		return
	}
	fmt.Printf("replayed on %s: %d instructions, IPC %.2f, mem %.1f ns/request, mem EDP %.3e\n",
		cfg.Name, res.TotalInstructions(), res.Cores[0].IPC(),
		float64(res.AvgMemAccessTime())/1000, res.MemEDP())
}

// replayRemote pushes a v2 trace into a moca-served trace session and
// waits for the server's result. The session token is the resume key: a
// rerun after a dropped connection or a killed process picks up from the
// server's last acknowledged block, not from the beginning.
func replayRemote(addr, session, appName, system string, measure uint64, path string, asJSON bool) {
	if session == "" {
		fatal("-remote needs -session TOKEN (the resume key)")
	}
	f, err := os.Open(path)
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()

	c, err := client.Dial(addr, client.Options{})
	if err != nil {
		fatal("dial %s: %v", addr, err)
	}
	defer c.Close()
	j, pos, err := c.TraceStart(wire.TraceStart{
		Session: session, System: system, App: appName, Measure: measure,
	})
	if err != nil {
		fatal("trace start: %v", err)
	}
	if pos.Seq > 0 {
		fmt.Fprintf(os.Stderr, "resuming session %q from item %d (offset %d)\n", session, pos.Seq, pos.ByteOff)
	}
	last, err := c.PushTrace(j, f, pos, nil)
	if err != nil {
		fatal("push (resume with the same -session to continue from item %d): %v", last.Seq, err)
	}
	res, err := c.TraceEnd(context.Background(), j)
	if err != nil {
		fatal("remote run: %v", err)
	}
	if asJSON {
		os.Stdout.Write(append(append([]byte(nil), j.Raw...), '\n'))
		return
	}
	fmt.Printf("replayed %d items remotely on %s: %d instructions, IPC %.2f, mem %.1f ns/request, mem EDP %.3e\n",
		last.Seq, system, res.TotalInstructions(), res.Cores[0].IPC(),
		float64(res.AvgMemAccessTime())/1000, res.MemEDP())
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "moca-trace: "+format+"\n", args...)
	os.Exit(1)
}
