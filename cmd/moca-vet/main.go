// Command moca-vet runs the repo's custom determinism and hot-path
// analyzers (internal/lint) over the given package patterns — a
// multichecker in the spirit of golang.org/x/tools, built on the stdlib
// type-checker so it works in this dependency-free module.
//
// Usage:
//
//	moca-vet [packages]                 # run all analyzers (default ./...)
//	moca-vet -fingerprint [packages]    # only the behaviorversion check
//	moca-vet -fingerprint -update       # re-record the schema fingerprint
//
// Analyzers:
//
//	maporder         no unordered map iteration in deterministic packages
//	walltime         no wall-clock/global-rand/env reads in the sim core
//	hotalloc         no closures, fmt, or boxing in //moca:hotpath funcs
//	behaviorversion  cache-visible schema changes bump sim.BehaviorVersion
//	shardsafe        no cross-//moca:shard-domain access outside //moca:barrier funcs
//
// Exit status is 1 when any analyzer reports a finding.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"moca/internal/lint"
)

func main() { os.Exit(run()) }

func run() int {
	fingerprint := flag.Bool("fingerprint", false,
		"run only the behaviorversion fingerprint check")
	update := flag.Bool("update", false,
		"with -fingerprint: re-record the checked-in schema fingerprint")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: moca-vet [-fingerprint [-update]] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *update && !*fingerprint {
		fmt.Fprintln(os.Stderr, "moca-vet: -update requires -fingerprint")
		return 2
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "moca-vet:", err)
		return 2
	}

	if *fingerprint {
		return runFingerprint(pkgs, *update)
	}

	findings, err := lint.RunAnalyzers(pkgs, lint.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "moca-vet:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "moca-vet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// runFingerprint checks (or, with update, re-records) the schema
// fingerprint of every loaded package that declares a behavior-versioned
// schema (a Result type plus a BehaviorVersion constant).
func runFingerprint(pkgs []*lint.Package, update bool) int {
	checked := 0
	bad := 0
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		if scope.Lookup("Result") == nil || scope.Lookup("BehaviorVersion") == nil {
			continue
		}
		checked++
		fp, err := lint.ComputeFingerprint(pkg.Types, pkg.ModulePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "moca-vet:", err)
			return 2
		}
		path := filepath.Join(pkg.Dir, lint.FingerprintRelPath)
		if update {
			if err := lint.UpdateFingerprintFile(fp, path); err != nil {
				fmt.Fprintln(os.Stderr, "moca-vet:", err)
				return 2
			}
			fmt.Printf("moca-vet: recorded %s (behavior_version %d, schema %s)\n",
				path, fp.Version, fp.Hash()[:12])
			continue
		}
		for _, d := range lint.CheckFingerprintFile(fp, path) {
			bad++
			fmt.Printf("%s: behaviorversion: %s\n", pkg.ImportPath, d.Message)
			if d.Fix != "" {
				fmt.Printf("\tfix: %s\n", d.Fix)
			}
		}
	}
	if checked == 0 {
		fmt.Fprintln(os.Stderr, "moca-vet: no behavior-versioned package in the given patterns")
		return 2
	}
	if bad > 0 {
		return 1
	}
	return 0
}
