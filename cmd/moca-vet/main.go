// Command moca-vet runs the repo's custom determinism and hot-path
// analyzers (internal/lint) over the given package patterns — a
// multichecker in the spirit of golang.org/x/tools, built on the stdlib
// type-checker so it works in this dependency-free module.
//
// Usage:
//
//	moca-vet [packages]                 # run all analyzers (default ./...)
//	moca-vet -json [packages]           # machine-readable findings + waivers
//	moca-vet -baseline lint.baseline.json [packages]
//	                                    # fail only on findings not in the baseline
//	moca-vet -baseline F -write-baseline
//	                                    # re-record the baseline from current findings
//	moca-vet -fingerprint [packages]    # only the behaviorversion check
//	moca-vet -fingerprint -update       # re-record the schema fingerprint
//
// Analyzers:
//
//	maporder         no unordered map iteration in deterministic packages
//	walltime         no wall-clock/global-rand/env reads in the sim core
//	hotalloc         no closures, fmt, or boxing in //moca:hotpath funcs
//	behaviorversion  cache-visible schema changes bump sim.BehaviorVersion
//	shardsafe        no cross-//moca:shard-domain access outside //moca:barrier funcs
//	lockhold         no blocking operations while a mutex is held
//	ctxflow          serving code must thread caller contexts into blocking work
//	wiredispatch     exhaustive frame dispatch, full fuzz seeds, bounds before alloc
//	goroleak         serving goroutines are WaitGroup-tracked or annotated
//
// Exit status is 1 when any analyzer reports a finding outside the
// baseline. The -json document lists every finding (baselined ones
// flagged) plus every honored `//moca:` waiver with its reason, so
// accepted debt stays visible.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"moca/internal/lint"
)

func main() { os.Exit(run()) }

func run() int {
	fingerprint := flag.Bool("fingerprint", false,
		"run only the behaviorversion fingerprint check")
	update := flag.Bool("update", false,
		"with -fingerprint: re-record the checked-in schema fingerprint")
	jsonOut := flag.Bool("json", false,
		"emit findings and honored waivers as a JSON document on stdout")
	baselinePath := flag.String("baseline", "",
		"fail only on findings not recorded in this baseline file")
	writeBaseline := flag.Bool("write-baseline", false,
		"with -baseline: re-record the baseline from the current findings")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: moca-vet [-json] [-baseline file [-write-baseline]] [-fingerprint [-update]] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *update && !*fingerprint {
		fmt.Fprintln(os.Stderr, "moca-vet: -update requires -fingerprint")
		return 2
	}
	if *writeBaseline && *baselinePath == "" {
		fmt.Fprintln(os.Stderr, "moca-vet: -write-baseline requires -baseline")
		return 2
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "moca-vet:", err)
		return 2
	}

	if *fingerprint {
		return runFingerprint(pkgs, *update)
	}

	findings, waivers, err := lint.RunAnalyzers(pkgs, lint.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "moca-vet:", err)
		return 2
	}

	matched := make([]bool, len(findings))
	fresh := findings
	if *baselinePath != "" {
		if *writeBaseline {
			rel := make([]lint.Finding, len(findings))
			copy(rel, findings)
			for i := range rel {
				rel[i].Position.Filename = relPath(rel[i].Position.Filename)
			}
			if err := lint.WriteBaseline(*baselinePath, rel); err != nil {
				fmt.Fprintln(os.Stderr, "moca-vet:", err)
				return 2
			}
			fmt.Printf("moca-vet: recorded %d finding(s) in %s\n", len(rel), *baselinePath)
			return 0
		}
		b, err := lint.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "moca-vet:", err)
			return 2
		}
		var stale []lint.BaselineEntry
		matched, fresh, stale = b.Filter(findings)
		for _, e := range stale {
			fmt.Fprintf(os.Stderr,
				"moca-vet: stale baseline entry (no matching finding): %s: %s: %s\n",
				e.File, e.Analyzer, e.Message)
		}
	}

	if *jsonOut {
		if err := emitJSON(os.Stdout, findings, matched, waivers); err != nil {
			fmt.Fprintln(os.Stderr, "moca-vet:", err)
			return 2
		}
	} else {
		for i, f := range findings {
			if matched[i] {
				fmt.Printf("%s (baselined)\n", f)
				continue
			}
			fmt.Println(f)
		}
	}
	if len(fresh) > 0 {
		fmt.Fprintf(os.Stderr, "moca-vet: %d finding(s)\n", len(fresh))
		return 1
	}
	return 0
}

// vetJSON is the -json document: every finding (baselined ones flagged so
// accepted debt stays visible) plus every honored waiver with its reason.
type vetJSON struct {
	Findings []vetFinding `json:"findings"`
	Waivers  []vetWaiver  `json:"waivers"`
}

type vetFinding struct {
	Analyzer  string `json:"analyzer"`
	Package   string `json:"package"`
	File      string `json:"file"`
	Line      int    `json:"line"`
	Col       int    `json:"col"`
	Message   string `json:"message"`
	Fix       string `json:"fix,omitempty"`
	Baselined bool   `json:"baselined,omitempty"`
}

type vetWaiver struct {
	Analyzer  string `json:"analyzer"`
	Package   string `json:"package"`
	Directive string `json:"directive"`
	Reason    string `json:"reason"`
	File      string `json:"file"`
	Line      int    `json:"line"`
}

func emitJSON(w *os.File, findings []lint.Finding, matched []bool, waivers []lint.Waiver) error {
	doc := vetJSON{Findings: []vetFinding{}, Waivers: []vetWaiver{}}
	for i, f := range findings {
		doc.Findings = append(doc.Findings, vetFinding{
			Analyzer:  f.Analyzer,
			Package:   f.Package,
			File:      relPath(f.Position.Filename),
			Line:      f.Position.Line,
			Col:       f.Position.Column,
			Message:   f.Message,
			Fix:       f.Fix,
			Baselined: matched[i],
		})
	}
	for _, wv := range waivers {
		doc.Waivers = append(doc.Waivers, vetWaiver{
			Analyzer:  wv.Analyzer,
			Package:   wv.Package,
			Directive: wv.Directive,
			Reason:    wv.Reason,
			File:      relPath(wv.Position.Filename),
			Line:      wv.Position.Line,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&doc)
}

// relPath renders a finding path relative to the working directory when it
// lies beneath it, keeping -json output and baselines machine-portable.
func relPath(path string) string {
	wd, err := os.Getwd()
	if err != nil {
		return path
	}
	rel, err := filepath.Rel(wd, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return filepath.ToSlash(rel)
}

// runFingerprint checks (or, with update, re-records) the schema
// fingerprint of every loaded package that declares a behavior-versioned
// schema (a Result type plus a BehaviorVersion constant).
func runFingerprint(pkgs []*lint.Package, update bool) int {
	checked := 0
	bad := 0
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		if scope.Lookup("Result") == nil || scope.Lookup("BehaviorVersion") == nil {
			continue
		}
		checked++
		fp, err := lint.ComputeFingerprint(pkg.Types, pkg.ModulePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "moca-vet:", err)
			return 2
		}
		path := filepath.Join(pkg.Dir, lint.FingerprintRelPath)
		if update {
			if err := lint.UpdateFingerprintFile(fp, path); err != nil {
				fmt.Fprintln(os.Stderr, "moca-vet:", err)
				return 2
			}
			fmt.Printf("moca-vet: recorded %s (behavior_version %d, schema %s)\n",
				path, fp.Version, fp.Hash()[:12])
			continue
		}
		for _, d := range lint.CheckFingerprintFile(fp, path) {
			bad++
			fmt.Printf("%s: behaviorversion: %s\n", pkg.ImportPath, d.Message)
			if d.Fix != "" {
				fmt.Printf("\tfix: %s\n", d.Fix)
			}
		}
	}
	if checked == 0 {
		fmt.Fprintln(os.Stderr, "moca-vet: no behavior-versioned package in the given patterns")
		return 2
	}
	if bad > 0 {
		return 1
	}
	return 0
}
