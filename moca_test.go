package moca_test

import (
	"bytes"
	"fmt"
	"testing"

	"moca"
)

func TestAppsAndMixes(t *testing.T) {
	apps := moca.Apps()
	if len(apps) != 10 {
		t.Fatalf("Apps() = %d, want 10", len(apps))
	}
	if _, ok := moca.AppByName("mcf"); !ok {
		t.Error("AppByName(mcf) failed")
	}
	if _, ok := moca.AppByName("nope"); ok {
		t.Error("AppByName(nope) succeeded")
	}
	if len(moca.WorkloadMixes()) != 10 {
		t.Error("WorkloadMixes() wrong length")
	}
	if _, ok := moca.MixByName("2L1B1N"); !ok {
		t.Error("MixByName failed")
	}
}

func TestAppByNameMustPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for unknown app")
		}
	}()
	moca.AppByNameMust("doesnotexist")
}

func TestDeviceParams(t *testing.T) {
	for _, k := range []moca.MemoryKind{moca.DDR3, moca.HBM, moca.RLDRAM, moca.LPDDR2} {
		d := moca.Device(k)
		if err := d.Validate(); err != nil {
			t.Errorf("%v: %v", k, err)
		}
	}
}

func TestDefaultThresholds(t *testing.T) {
	th := moca.DefaultThresholds()
	if th.LatMPKI != 1 || th.BWStallCycles != 20 {
		t.Errorf("thresholds = %+v", th)
	}
	if th.Classify(10, 50) != moca.LatencySensitive {
		t.Error("classification through the public API failed")
	}
}

func TestSystemConstructors(t *testing.T) {
	if mods := moca.Homogeneous(moca.DDR3); len(mods) != 1 || mods[0].Channels != 4 {
		t.Errorf("Homogeneous = %+v", mods)
	}
	if mods := moca.Heterogeneous(moca.Config1); len(mods) != 4 {
		t.Errorf("Heterogeneous = %+v", mods)
	}
	cfg := moca.DefaultSystem("x", moca.Homogeneous(moca.DDR3), moca.PolicyFixed)
	if err := cfg.Validate(); err != nil {
		t.Error(err)
	}
}

func TestEndToEndPublicAPI(t *testing.T) {
	fw := moca.NewFramework()
	fw.ProfileWindow = 100_000
	ins, err := fw.Instrument(moca.AppByNameMust("disparity"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ins.Classes) == 0 {
		t.Fatal("no classification")
	}

	cfg := moca.DefaultSystem("moca", moca.Heterogeneous(moca.Config1), moca.PolicyMOCA)
	sys, err := moca.NewSystem(cfg, []moca.ProcSpec{ins.Proc(moca.PolicyMOCA, moca.Ref)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(sys.SuggestedWarmup(), 80_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgMemAccessTime() <= 0 || res.MemEDP() <= 0 {
		t.Errorf("degenerate result: %v / %v", res.AvgMemAccessTime(), res.MemEDP())
	}
	if got := res.PagesOnKind(); got[moca.RLDRAM] == 0 {
		t.Error("no pages on RLDRAM despite latency-sensitive objects")
	}
}

func TestRunConvenience(t *testing.T) {
	cfg := moca.DefaultSystem("ddr3", moca.Homogeneous(moca.DDR3), moca.PolicyFixed)
	res, err := moca.Run(cfg, moca.ProcSpec{App: moca.AppByNameMust("sift"), Input: moca.Ref})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalInstructions() < 300_000 {
		t.Errorf("retired %d", res.TotalInstructions())
	}
}

func TestCustomAppThroughPublicAPI(t *testing.T) {
	app := moca.AppSpec{
		Name:             "custom",
		ComputePerMemory: 10,
		Seed:             42,
		Objects: []moca.ObjectSpec{
			{Label: "graph", Site: 0x500000, SizeBytes: 2 << 20, Pattern: moca.PatternChase, Weight: 0.4},
			{Label: "scratch", Site: 0x500010, SizeBytes: 256 << 10, Pattern: moca.PatternResident, Weight: 0.2, HotBytes: 64 << 10},
		},
		StackWeight: 0.1, CodeWeight: 0.05,
	}
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	fw := moca.NewFramework()
	fw.ProfileWindow = 80_000
	ins, err := fw.Instrument(app)
	if err != nil {
		t.Fatal(err)
	}
	var sawL bool
	for _, o := range ins.Profile.HeapObjects() {
		if o.Label == "graph" && o.Class == moca.LatencySensitive {
			sawL = true
		}
	}
	if !sawL {
		t.Error("custom chase object not classified latency-sensitive")
	}
}

// ExampleRun demonstrates the one-call simulation entry point.
func ExampleRun() {
	cfg := moca.DefaultSystem("quick", moca.Homogeneous(moca.DDR3), moca.PolicyFixed)
	res, err := moca.Run(cfg, moca.ProcSpec{App: moca.AppByNameMust("gcc"), Input: moca.Ref})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(res.MemRequests() > 0)
	// Output: true
}

func TestTraceReplayEquivalence(t *testing.T) {
	// A recorded trace replayed through the simulator must reproduce the
	// generator-driven run bit for bit.
	app := moca.AppByNameMust("sift")
	var buf bytes.Buffer
	// Stream items cover at least warmup+measure retired instructions
	// (compute batches expand to many instructions each).
	if _, err := moca.RecordTrace(&buf, app, moca.Ref, nil, 120_000); err != nil {
		t.Fatal(err)
	}

	run := func(stream moca.InstructionStream) *moca.Result {
		cfg := moca.DefaultSystem("ddr3", moca.Homogeneous(moca.DDR3), moca.PolicyFixed)
		sys, err := moca.NewSystem(cfg, []moca.ProcSpec{{
			App: app, Input: moca.Ref, Stream: stream,
		}})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(40_000, 60_000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	tr, err := moca.OpenTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	replayed := run(tr)
	native := run(nil)

	if replayed.Elapsed != native.Elapsed {
		t.Errorf("elapsed differs: replay %d vs native %d", replayed.Elapsed, native.Elapsed)
	}
	if replayed.AvgMemAccessTime() != native.AvgMemAccessTime() {
		t.Errorf("latency differs: replay %d vs native %d",
			replayed.AvgMemAccessTime(), native.AvgMemAccessTime())
	}
	if replayed.Cores[0].CPU != native.Cores[0].CPU {
		t.Errorf("core stats differ:\nreplay %+v\nnative %+v",
			replayed.Cores[0].CPU, native.Cores[0].CPU)
	}
	if tr.Err() != nil {
		t.Errorf("trace decode error: %v", tr.Err())
	}
}
