module moca

go 1.22
