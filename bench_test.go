// Repository benchmarks: one per table and figure of the paper's
// evaluation (Section VI), plus the design-choice ablations DESIGN.md
// calls out. Each benchmark regenerates its experiment through the shared
// harness and reports the headline ratios as benchmark metrics, so
// `go test -bench=. -benchmem` both exercises the full system and emits
// the reproduction numbers.
//
// All benchmarks share one experiment runner: related figures reuse each
// other's simulations exactly as the harness does (Figs. 10-13 are four
// views of the same 60 runs). Window sizes scale with the environment
// variable MOCA_BENCH_MEASURE (instructions per core, default 200000).
package moca_test

import (
	"os"
	"strconv"
	"sync"
	"testing"

	"moca"
	"moca/internal/exp"
	"moca/internal/stats"
)

var (
	benchOnce   sync.Once
	benchRunner *exp.Runner
)

func runner() *exp.Runner {
	benchOnce.Do(func() {
		r := exp.NewRunner()
		r.Measure = 200_000
		if v := os.Getenv("MOCA_BENCH_MEASURE"); v != "" {
			if n, err := strconv.ParseUint(v, 10, 64); err == nil && n > 0 {
				r.Measure = n
			}
		}
		r.FW.ProfileWindow = 300_000
		benchRunner = r
	})
	return benchRunner
}

func reportGrid(b *testing.B, g *stats.Grid, metrics map[string]float64) {
	b.Helper()
	b.Logf("\n%s", g.Table().String())
	for name, v := range metrics {
		b.ReportMetric(v, name)
	}
}

func BenchmarkTable3Classification(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		got, table, err := r.Table3()
		if err != nil {
			b.Fatal(err)
		}
		matches := 0
		for app, class := range exp.Table3Expected() {
			if got[app] == class {
				matches++
			}
		}
		b.ReportMetric(float64(matches), "matches/10")
		if i == 0 {
			b.Logf("\n%s", table.String())
		}
	}
}

func BenchmarkFig1AppProfile(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		pts, table, err := r.Fig1()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(pts)), "apps")
		if i == 0 {
			b.Logf("\n%s", table.String())
		}
	}
}

func BenchmarkFig2ObjectProfile(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		pts, table, err := r.Fig2()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(pts)), "objects")
		if i == 0 {
			b.Logf("\n%s", table.String())
		}
	}
}

func BenchmarkFig8SingleCorePerf(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		g, err := r.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		reportGrid(b, g, map[string]float64{
			"moca/ddr3":     g.ColMean(exp.SysMOCA),
			"moca/heterapp": g.ColMean(exp.SysMOCA) / g.ColMean(exp.SysHeterApp),
		})
	}
}

func BenchmarkFig9SingleCoreEDP(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		g, err := r.Fig9()
		if err != nil {
			b.Fatal(err)
		}
		reportGrid(b, g, map[string]float64{
			"moca/ddr3":     g.ColMean(exp.SysMOCA),
			"moca/heterapp": g.ColMean(exp.SysMOCA) / g.ColMean(exp.SysHeterApp),
		})
	}
}

func BenchmarkFig10MultiPerf(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		g, err := r.Fig10()
		if err != nil {
			b.Fatal(err)
		}
		reportGrid(b, g, map[string]float64{
			"moca/ddr3":     g.ColMean(exp.SysMOCA),
			"moca/heterapp": g.ColMean(exp.SysMOCA) / g.ColMean(exp.SysHeterApp),
		})
	}
}

func BenchmarkFig11MultiEDP(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		g, err := r.Fig11()
		if err != nil {
			b.Fatal(err)
		}
		best := 1.0
		for _, mix := range g.Rows {
			if v := g.Get(mix, exp.SysMOCA); v < best {
				best = v
			}
		}
		reportGrid(b, g, map[string]float64{
			"moca/ddr3-best": best,
			"moca/heterapp":  g.ColMean(exp.SysMOCA) / g.ColMean(exp.SysHeterApp),
		})
	}
}

func BenchmarkFig12SystemPerf(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		g, err := r.Fig12()
		if err != nil {
			b.Fatal(err)
		}
		reportGrid(b, g, map[string]float64{
			"moca/heterapp": g.ColMean(exp.SysMOCA) / g.ColMean(exp.SysHeterApp),
		})
	}
}

func BenchmarkFig13SystemEDP(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		g, err := r.Fig13()
		if err != nil {
			b.Fatal(err)
		}
		reportGrid(b, g, map[string]float64{
			"moca/heterapp": g.ColMean(exp.SysMOCA) / g.ColMean(exp.SysHeterApp),
		})
	}
}

func BenchmarkFig14ConfigSweepPerf(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		g, err := r.Fig14()
		if err != nil {
			b.Fatal(err)
		}
		reportGrid(b, g, map[string]float64{
			"config1-moca": g.ColMean("config1/MOCA"),
			"config3-moca": g.ColMean("config3/MOCA"),
		})
	}
}

func BenchmarkFig15ConfigSweepEDP(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		g, err := r.Fig15()
		if err != nil {
			b.Fatal(err)
		}
		reportGrid(b, g, map[string]float64{
			"config1-moca": g.ColMean("config1/MOCA"),
			"config3-moca": g.ColMean("config3/MOCA"),
		})
	}
}

func BenchmarkFig16StackCode(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		pts, table, err := r.Fig16()
		if err != nil {
			b.Fatal(err)
		}
		var worst float64
		for _, p := range pts {
			if p.StackMPKI > worst {
				worst = p.StackMPKI
			}
			if p.CodeMPKI > worst {
				worst = p.CodeMPKI
			}
		}
		b.ReportMetric(worst, "worst-seg-mpki")
		if i == 0 {
			b.Logf("\n%s", table.String())
		}
	}
}

func BenchmarkHeadline(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		h, table, err := r.Headline()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(h.SingleAccessTimeVsDDR3*100, "single-perf-vs-ddr3-%")
		b.ReportMetric(h.MultiMemEDPVsDDR3Best*100, "multi-edp-best-%")
		b.ReportMetric(h.MultiAccessTimeVsApp*100, "multi-perf-vs-app-%")
		b.ReportMetric(h.MultiMemEDPVsApp*100, "multi-edp-vs-app-%")
		if i == 0 {
			b.Logf("\n%s", table.String())
		}
	}
}

func BenchmarkAblationThresholds(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		best, table, err := r.AblationThresholds("2L1B1N",
			[]float64{0.5, 1, 2, 5}, []float64{10, 20, 40})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(best.LatMPKI, "best-thr-lat")
		b.ReportMetric(best.BWStallCycles, "best-thr-bw")
		if i == 0 {
			b.Logf("\n%s", table.String())
		}
	}
}

func BenchmarkAblationFallback(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		table, err := r.AblationFallback("1L3B")
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", table.String())
		}
	}
}

func BenchmarkAblationNamingDepth(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		table, err := r.AblationNamingDepth()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", table.String())
		}
	}
}

func BenchmarkAblationScheduler(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		table, err := r.AblationScheduler("lbm")
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", table.String())
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed: simulated
// instructions per benchmark op for a fresh single-core DDR3 run (no
// result caching, no profiling).
func BenchmarkSimulatorThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := moca.DefaultSystem("throughput", moca.Homogeneous(moca.DDR3), moca.PolicyFixed)
		sys, err := moca.NewSystem(cfg, []moca.ProcSpec{{App: moca.AppByNameMust("mcf"), Input: moca.Ref}})
		if err != nil {
			b.Fatal(err)
		}
		res, err := sys.Run(sys.SuggestedWarmup(), 100_000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.TotalInstructions()), "instructions/op")
	}
}

// BenchmarkSimulatorThroughputObs is the metrics-enabled twin of
// BenchmarkSimulatorThroughput: diffing the two bounds the cost of the
// observability hooks (the disabled path above must stay within noise of
// the pre-instrumentation baseline).
func BenchmarkSimulatorThroughputObs(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := moca.DefaultSystem("throughput-obs", moca.Homogeneous(moca.DDR3), moca.PolicyFixed)
		cfg.Obs = moca.ObsOptions{Metrics: true}
		sys, err := moca.NewSystem(cfg, []moca.ProcSpec{{App: moca.AppByNameMust("mcf"), Input: moca.Ref}})
		if err != nil {
			b.Fatal(err)
		}
		res, err := sys.Run(sys.SuggestedWarmup(), 100_000)
		if err != nil {
			b.Fatal(err)
		}
		if res.Obs == nil || res.Obs.Counters["event.executed"] == 0 {
			b.Fatal("metrics enabled but snapshot empty")
		}
		b.ReportMetric(float64(res.TotalInstructions()), "instructions/op")
	}
}

func BenchmarkAblationMigration(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		table, err := r.AblationMigration("2L1B1N")
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", table.String())
		}
	}
}

func BenchmarkExtensionPCMTiering(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		table, err := r.ExtensionPCM("2B2N")
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", table.String())
		}
	}
}

func BenchmarkAblationPrefetch(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		table, err := r.AblationPrefetch()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", table.String())
		}
	}
}

func BenchmarkAblationRowPolicy(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		table, err := r.AblationRowPolicy()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", table.String())
		}
	}
}

func BenchmarkAblationMapping(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		table, err := r.AblationMapping("lbm")
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", table.String())
		}
	}
}

func BenchmarkExtensionKNL(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		table, err := r.ExtensionKNL("2L1B1N")
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", table.String())
		}
	}
}

func BenchmarkExtensionPhases(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		table, err := r.ExtensionPhases()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", table.String())
		}
	}
}
