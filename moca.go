// Package moca is a simulation-backed reproduction of "MOCA: Memory Object
// Classification and Allocation in Heterogeneous Memory Systems" (Narayan,
// Zhang, Aga, Narayanasamy, Coskun — IPDPS 2018).
//
// MOCA improves the performance and energy efficiency of heterogeneous
// memory systems (here: RLDRAM + HBM + LPDDR2 behind dedicated channels)
// by profiling an application's *memory objects*, classifying each as
// latency-sensitive, bandwidth-sensitive, or non-memory-intensive, and
// placing each object's pages in the module that fits its behavior —
// rather than placing whole applications, as prior application-level
// policies do.
//
// The package bundles everything the paper's evaluation needs:
//
//   - a deterministic full-system simulator (out-of-order cores with
//     ROB-head stall accounting, two-level caches with MSHRs, per-channel
//     command-level DRAM timing for DDR3/HBM/RLDRAM/LPDDR2, page tables and
//     per-module frame pools);
//   - the MOCA pipeline: per-object profiling, threshold classification,
//     and the object-level page allocator, plus the homogeneous and
//     application-level ("Heter-App") baselines;
//   - a synthetic application suite standing in for the paper's SPEC
//     CPU2006 / SDVBS selection, with multi-program workload sets;
//   - an experiment harness regenerating every table and figure of the
//     paper (see the Experiments type and cmd/moca-bench).
//
// # Quick start
//
// Profile an application on its training input, instrument it, and compare
// MOCA against the DDR3 baseline:
//
//	fw := moca.NewFramework()
//	ins, err := fw.Instrument(moca.AppByNameMust("mcf"))
//	if err != nil { ... }
//
//	cfg := moca.DefaultSystem("moca", moca.Heterogeneous(moca.Config1), moca.PolicyMOCA)
//	res, err := moca.Run(cfg, ins.Proc(moca.PolicyMOCA, moca.Ref))
//	fmt.Println(res.AvgMemAccessTime(), res.MemEDP())
//
// All simulations are single-threaded and bit-reproducible: identical
// configurations produce identical results.
package moca

import (
	"fmt"
	"io"

	"moca/internal/core"
	"moca/internal/exp"
	"moca/internal/heap"
	"moca/internal/sim"
	"moca/internal/trace"
	"moca/internal/workload"
)

// NewFramework returns the MOCA offline pipeline (profiling,
// classification, instrumentation) with the paper's default configuration:
// Thr_Lat = 1 MPKI, Thr_BW = 20 cycles, 5-level naming, profiling on the
// homogeneous DDR3 system with training inputs.
func NewFramework() *Framework { return core.NewFramework() }

// DefaultSystem builds a full Table I system configuration around the
// given memory modules and placement policy.
func DefaultSystem(name string, modules []ModuleSpec, policy PolicyKind) SystemConfig {
	return sim.DefaultConfig(name, modules, policy)
}

// NewSystem assembles a simulated machine running one process per entry of
// procs (process index = core index).
func NewSystem(cfg SystemConfig, procs []ProcSpec) (*System, error) {
	return sim.New(cfg, procs)
}

// Run assembles a system and executes it with an automatically chosen
// warm-up and a 300k-instruction measured window per core — the harness
// default. Use NewSystem and System.Run directly for full control.
func Run(cfg SystemConfig, procs ...ProcSpec) (*Result, error) {
	sys, err := sim.New(cfg, procs)
	if err != nil {
		return nil, err
	}
	return sys.Run(sys.SuggestedWarmup(), 300_000)
}

// Apps returns the built-in application suite (Table III order).
func Apps() []AppSpec { return workload.Suite() }

// AppByName finds a built-in application spec.
func AppByName(name string) (AppSpec, bool) { return workload.ByName(name) }

// AppByNameMust is AppByName for known-good names; it panics on a typo.
func AppByNameMust(name string) AppSpec {
	s, ok := workload.ByName(name)
	if !ok {
		panic(fmt.Sprintf("moca: unknown application %q", name))
	}
	return s
}

// WorkloadMixes returns the built-in 4-application multi-program sets.
func WorkloadMixes() []Mix { return workload.Mixes() }

// MixByName finds a built-in workload set.
func MixByName(name string) (Mix, bool) { return workload.MixByName(name) }

// NewExperiments returns the harness that regenerates the paper's tables
// and figures. Results are cached within one Experiments instance, so
// related figures (for example 10 through 13) share their runs.
func NewExperiments() *Experiments { return exp.NewRunner() }

// RecordTrace instantiates the application (with the given input and
// optional MOCA classification) and records n instructions of its stream
// to w. Replay the trace with OpenTrace and ProcSpec.Stream, passing the
// same App, Input, and Classes so the heap layout matches the recorded
// addresses.
func RecordTrace(w io.Writer, app AppSpec, input Input, classes ClassMap, n uint64) (uint64, error) {
	allocator := heap.New(heap.Config{Classes: classes})
	inst, err := workload.Instantiate(app.ForInput(input), allocator, 0)
	if err != nil {
		return 0, err
	}
	tw, err := trace.NewWriter(w)
	if err != nil {
		return 0, err
	}
	recorded, err := trace.Record(tw, inst.Stream(), n)
	if err != nil {
		return recorded, err
	}
	return recorded, tw.Close()
}

// OpenTrace opens a recorded v1 trace for replay as an InstructionStream.
// Prefer OpenTraceStream, which accepts either format.
func OpenTrace(r io.Reader) (*TraceReader, error) { return trace.NewReader(r) }

// RecordTraceV2 is RecordTrace in the v2 block format: framed,
// per-block-compressed, and seekable, so replay can stream a corpus
// larger than RAM and resume from any block boundary (see
// OpenTraceStreamAt). items and rawBytes bound each block (zero selects
// the defaults, 16Ki items or 256 KiB raw).
func RecordTraceV2(w io.Writer, app AppSpec, input Input, classes ClassMap, n uint64, items, rawBytes int) (uint64, error) {
	allocator := heap.New(heap.Config{Classes: classes})
	inst, err := workload.Instantiate(app.ForInput(input), allocator, 0)
	if err != nil {
		return 0, err
	}
	tw, err := trace.NewBlockWriterSize(w, items, rawBytes)
	if err != nil {
		return 0, err
	}
	recorded, err := trace.Record(tw, inst.Stream(), n)
	if err != nil {
		return recorded, err
	}
	return recorded, tw.Close()
}

// OpenTraceStream opens a recorded trace of either format for replay,
// dispatching on the file header's version byte.
func OpenTraceStream(r io.Reader) (TraceStream, error) { return trace.Open(r) }

// OpenTraceStreamAt opens a v2 trace at a position previously captured
// from TraceBlockReader.NextPos (or acknowledged by a moca-served trace
// session), resuming replay without decoding the prefix.
func OpenTraceStreamAt(rs io.ReadSeeker, pos TracePosition) (*TraceBlockReader, error) {
	return trace.OpenBlockReaderAt(rs, pos)
}
