package cpu

import (
	"testing"

	"moca/internal/cache"
	"moca/internal/event"
)

// sliceStream replays a fixed instruction slice.
type sliceStream struct {
	ins []Instr
	i   int
}

func (s *sliceStream) Next() (Instr, bool) {
	if s.i >= len(s.ins) {
		return Instr{}, false
	}
	in := s.ins[s.i]
	s.i++
	return in, true
}

// identityXlate maps virtual addresses to themselves.
type identityXlate struct{ oomAfter int }

func (x *identityXlate) Translate(vaddr uint64, write bool) (uint64, bool) {
	if x.oomAfter > 0 {
		x.oomAfter--
		if x.oomAfter == 0 {
			return 0, false
		}
	}
	return vaddr, true
}

// fixedMem completes every access after a fixed latency, reporting MemHit.
type fixedMem struct {
	q        *event.Queue
	latency  event.Time
	level    cache.Level
	accesses int
	// outstanding tracks concurrent in-flight accesses (observed MLP).
	inflight    int
	maxInflight int
}

func (m *fixedMem) Access(paddr uint64, obj uint64, write bool, sink cache.AccessSink, token uint64) {
	m.accesses++
	if sink == nil {
		return
	}
	m.inflight++
	if m.inflight > m.maxInflight {
		m.maxInflight = m.inflight
	}
	m.q.After(m.latency, func() {
		m.inflight--
		sink.AccessDone(token, m.q.Now(), m.level)
	})
}

// runCore ticks the core against the queue until done or the cycle cap.
func runCore(t *testing.T, c *Core, q *event.Queue, maxCycles int) {
	t.Helper()
	cycle := event.Time(1000)
	now := event.Time(0)
	for i := 0; i < maxCycles && !c.Done(); i++ {
		q.RunUntil(now)
		c.Tick()
		now += cycle
	}
	if !c.Done() {
		t.Fatalf("core did not finish within %d cycles (stats %+v)", maxCycles, c.Stats())
	}
}

func newCore(t *testing.T, ins []Instr, mem MemPort) *Core {
	t.Helper()
	c, err := New(0, DefaultConfig(), &sliceStream{ins: ins}, &identityXlate{}, mem)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestComputeOnlyIPC(t *testing.T) {
	q := event.NewQueue()
	m := &fixedMem{q: q, latency: 100000, level: cache.MemHit}
	c := newCore(t, []Instr{{Kind: Compute, N: 3000}}, m)
	runCore(t, c, q, 10000)
	st := c.Stats()
	if st.Instructions != 3000 {
		t.Fatalf("retired %d, want 3000", st.Instructions)
	}
	// Width 3: about 1000 cycles, allowing pipeline fill slack.
	if st.IPC() < 2.5 {
		t.Errorf("compute-only IPC = %.2f, want near 3", st.IPC())
	}
}

func TestValidateConfig(t *testing.T) {
	bad := []Config{
		{Width: 0, ROBSize: 84, LQSize: 32, Cycle: 1000},
		{Width: 3, ROBSize: 0, LQSize: 32, Cycle: 1000},
		{Width: 3, ROBSize: 84, LQSize: 0, Cycle: 1000},
		{Width: 3, ROBSize: 84, LQSize: 32, Cycle: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Error(err)
	}
}

func TestNewRejectsNilDeps(t *testing.T) {
	if _, err := New(0, DefaultConfig(), nil, &identityXlate{}, &fixedMem{}); err == nil {
		t.Error("nil stream accepted")
	}
}

func TestIndependentLoadsOverlap(t *testing.T) {
	q := event.NewQueue()
	m := &fixedMem{q: q, latency: 200 * event.Nanosecond, level: cache.MemHit}
	var ins []Instr
	for i := 0; i < 16; i++ {
		ins = append(ins, Instr{Kind: Load, VAddr: uint64(i) * 4096, Obj: 1})
	}
	c := newCore(t, ins, m)
	runCore(t, c, q, 100000)
	if m.maxInflight < 8 {
		t.Errorf("max in-flight independent loads = %d, want >= 8 (MLP)", m.maxInflight)
	}
}

func TestDependentLoadsSerialize(t *testing.T) {
	q := event.NewQueue()
	m := &fixedMem{q: q, latency: 200 * event.Nanosecond, level: cache.MemHit}
	var ins []Instr
	for i := 0; i < 16; i++ {
		ins = append(ins, Instr{Kind: Load, VAddr: uint64(i) * 4096, Obj: 1, DependsOnPrev: i > 0})
	}
	c := newCore(t, ins, m)
	runCore(t, c, q, 1000000)
	if m.maxInflight != 1 {
		t.Errorf("max in-flight dependent loads = %d, want 1 (pointer chase)", m.maxInflight)
	}
	// Each of the 16 loads serializes the ~200 ns latency: >= 3200 cycles.
	if c.Stats().Cycles < 3200 {
		t.Errorf("chase of 16 dependent 200 ns loads took only %d cycles", c.Stats().Cycles)
	}
}

func TestROBHeadStallAttribution(t *testing.T) {
	q := event.NewQueue()
	m := &fixedMem{q: q, latency: 100 * event.Nanosecond, level: cache.MemHit}
	var got []uint64
	var stalls []uint64
	c := newCore(t, []Instr{
		{Kind: Load, VAddr: 0, Obj: 99},
		{Kind: Compute, N: 5},
	}, m)
	c.OnMemLoadRetire = func(obj uint64, s uint64) {
		got = append(got, obj)
		stalls = append(stalls, s)
	}
	runCore(t, c, q, 100000)
	if len(got) != 1 || got[0] != 99 {
		t.Fatalf("mem-load retire objects = %v, want [99]", got)
	}
	// The load waits ~100 ns = 100 cycles at the head.
	if stalls[0] < 90 || stalls[0] > 120 {
		t.Errorf("head stall = %d cycles, want ~100", stalls[0])
	}
	st := c.Stats()
	if st.MemLoads != 1 || st.MemStallCycles != stalls[0] {
		t.Errorf("stats = %+v", st)
	}
}

func TestCacheHitLoadsDoNotCountAsMemLoads(t *testing.T) {
	q := event.NewQueue()
	m := &fixedMem{q: q, latency: 2 * event.Nanosecond, level: cache.L1Hit}
	fired := false
	c := newCore(t, []Instr{{Kind: Load, VAddr: 0, Obj: 1}}, m)
	c.OnMemLoadRetire = func(uint64, uint64) { fired = true }
	runCore(t, c, q, 1000)
	if fired {
		t.Error("OnMemLoadRetire fired for a cache hit")
	}
	if st := c.Stats(); st.MemLoads != 0 || st.Loads != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestHighMLPHasLowerStallPerMiss(t *testing.T) {
	// The classification premise: N independent misses share the latency,
	// N dependent misses each eat it whole.
	perMiss := func(dependent bool) float64 {
		q := event.NewQueue()
		m := &fixedMem{q: q, latency: 150 * event.Nanosecond, level: cache.MemHit}
		var ins []Instr
		for i := 0; i < 64; i++ {
			ins = append(ins, Instr{Kind: Load, VAddr: uint64(i) * 4096, Obj: 1, DependsOnPrev: dependent && i > 0})
			ins = append(ins, Instr{Kind: Compute, N: 2})
		}
		c := newCore(t, ins, m)
		runCore(t, c, q, 10000000)
		st := c.Stats()
		return float64(st.MemStallCycles) / float64(st.MemLoads)
	}
	dep, indep := perMiss(true), perMiss(false)
	if indep*2 > dep {
		t.Errorf("stall/miss: independent %.1f should be well below dependent %.1f", indep, dep)
	}
}

func TestStoresArePosted(t *testing.T) {
	q := event.NewQueue()
	m := &fixedMem{q: q, latency: 500 * event.Nanosecond, level: cache.MemHit}
	var ins []Instr
	for i := 0; i < 30; i++ {
		ins = append(ins, Instr{Kind: Store, VAddr: uint64(i) * 4096, Obj: 1})
	}
	c := newCore(t, ins, m)
	runCore(t, c, q, 2000)
	st := c.Stats()
	if st.Stores != 30 {
		t.Fatalf("stores = %d, want 30", st.Stores)
	}
	if st.ROBHeadStallCycles != 0 {
		t.Errorf("stores caused %d head stalls, want 0 (posted)", st.ROBHeadStallCycles)
	}
	if m.accesses != 30 {
		t.Errorf("memory saw %d accesses, want 30", m.accesses)
	}
}

func TestLQLimitBoundsOutstandingLoads(t *testing.T) {
	q := event.NewQueue()
	m := &fixedMem{q: q, latency: 1000 * event.Nanosecond, level: cache.MemHit}
	var ins []Instr
	for i := 0; i < 100; i++ {
		ins = append(ins, Instr{Kind: Load, VAddr: uint64(i) * 4096, Obj: 1})
	}
	c := newCore(t, ins, m)
	runCore(t, c, q, 10000000)
	cfg := DefaultConfig()
	if m.maxInflight > cfg.LQSize {
		t.Errorf("in-flight loads %d exceed LQ size %d", m.maxInflight, cfg.LQSize)
	}
	if c.Stats().LQFullCycles == 0 {
		t.Error("LQ never filled with 100 outstanding 1 us loads")
	}
}

func TestROBBoundsInFlightInstructions(t *testing.T) {
	q := event.NewQueue()
	m := &fixedMem{q: q, latency: 1000 * event.Nanosecond, level: cache.MemHit}
	ins := []Instr{{Kind: Load, VAddr: 0, Obj: 1}, {Kind: Compute, N: 1000}}
	c := newCore(t, ins, m)
	// After the load blocks the head, at most ROBSize-1 compute
	// instructions can dispatch; none can retire.
	cycle := event.Time(1000)
	now := event.Time(0)
	for i := 0; i < 200; i++ {
		q.RunUntil(now)
		c.Tick()
		now += cycle
	}
	if got := c.Stats().Instructions; got != 0 {
		t.Errorf("retired %d instructions behind a blocked head", got)
	}
	if c.Stats().ROBFullCycles == 0 {
		t.Error("ROB never filled behind a blocked load")
	}
	// Finish the run to confirm forward progress.
	runCore(t, c, q, 10000000)
	if got := c.Stats().Instructions; got != 1001 {
		t.Errorf("retired %d, want 1001", got)
	}
}

func TestOnRetireCountsEverything(t *testing.T) {
	q := event.NewQueue()
	m := &fixedMem{q: q, latency: 10 * event.Nanosecond, level: cache.L2Hit}
	ins := []Instr{
		{Kind: Compute, N: 10},
		{Kind: Load, VAddr: 64, Obj: 1},
		{Kind: Store, VAddr: 128, Obj: 1},
		{Kind: Compute, N: 5},
	}
	c := newCore(t, ins, m)
	var total uint64
	c.OnRetire = func(n uint64) { total += n }
	runCore(t, c, q, 10000)
	if total != 17 {
		t.Errorf("OnRetire total = %d, want 17", total)
	}
	if c.Stats().Instructions != 17 {
		t.Errorf("Instructions = %d, want 17", c.Stats().Instructions)
	}
}

func TestTranslateFaultHaltsCore(t *testing.T) {
	q := event.NewQueue()
	m := &fixedMem{q: q, latency: 10, level: cache.L1Hit}
	s := &sliceStream{ins: []Instr{
		{Kind: Load, VAddr: 0, Obj: 1},
		{Kind: Load, VAddr: 4096, Obj: 1},
	}}
	c, err := New(0, DefaultConfig(), s, &identityXlate{oomAfter: 2}, m)
	if err != nil {
		t.Fatal(err)
	}
	now := event.Time(0)
	for i := 0; i < 1000 && !c.Done(); i++ {
		q.RunUntil(now)
		c.Tick()
		now += 1000
	}
	if !c.Done() {
		t.Fatal("core did not halt")
	}
	if c.Err() == nil {
		t.Error("expected a fault error")
	}
}

func TestDeterministicRuns(t *testing.T) {
	mk := func() Stats {
		q := event.NewQueue()
		m := &fixedMem{q: q, latency: 77 * event.Nanosecond, level: cache.MemHit}
		var ins []Instr
		for i := 0; i < 200; i++ {
			ins = append(ins, Instr{Kind: Load, VAddr: uint64(i*64) % 8192, Obj: 1, DependsOnPrev: i%3 == 0})
			ins = append(ins, Instr{Kind: Compute, N: int32(i%7 + 1)})
		}
		c, _ := New(0, DefaultConfig(), &sliceStream{ins: ins}, &identityXlate{}, m)
		now := event.Time(0)
		for !c.Done() {
			q.RunUntil(now)
			c.Tick()
			now += 1000
		}
		return c.Stats()
	}
	if a, b := mk(), mk(); a != b {
		t.Errorf("two identical runs diverged:\n%+v\n%+v", a, b)
	}
}
