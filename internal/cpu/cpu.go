// Package cpu models the paper's execution core (Table I): a 1 GHz x86-like
// out-of-order core with fetch/dispatch/issue/commit width 3, an 84-entry
// reorder buffer, and a 32-entry load queue, calibrated on the AMD
// Magny-Cours. The model executes an abstract instruction stream: loads and
// stores carry virtual addresses and memory-object identities; everything
// else is a "compute" instruction that completes in one cycle.
//
// The model is deliberately register-free: memory-level parallelism is
// expressed by the stream itself. A load marked DependsOnPrev cannot issue
// until the previous load completes (pointer chasing, MLP=1); independent
// loads overlap up to the load queue and MSHR limits. Loads complete out of
// order but retire in order, and every cycle an incomplete load sits at the
// head of the ROB is accounted as a "ROB head stall" cycle attributed to
// the object being loaded — exactly the MLP metric MOCA classifies on
// (Mutlu et al., IEEE Micro 2006; paper Sections II-III).
package cpu

import (
	"fmt"

	"moca/internal/cache"
	"moca/internal/event"
)

// Kind discriminates stream instructions.
type Kind uint8

const (
	// Compute is a batch of N single-cycle non-memory instructions.
	Compute Kind = iota
	// Load reads VAddr on behalf of object Obj.
	Load
	// Store writes VAddr on behalf of object Obj (posted; never stalls
	// retirement).
	Store
)

// Instr is one element of an application's instruction stream. The two
// single-byte fields lead and N is 32-bit so the struct packs into 24
// bytes — it is copied in bulk through trace arenas and batch refills,
// where the two padding rows of a naive layout are measurable in decode
// throughput.
type Instr struct {
	Kind Kind
	// DependsOnPrev marks a load that consumes the previous load's value
	// and therefore cannot issue until it completes.
	DependsOnPrev bool
	// N is the batch size for Compute instructions (>= 1; the trace
	// format caps it at 2^30, far past any generator's gap).
	N int32
	// VAddr is the virtual address for Load/Store.
	VAddr uint64
	// Obj names the memory object being accessed (profiling identity).
	Obj uint64
}

// Stream supplies instructions to a core. Next returns false at program end.
type Stream interface {
	Next() (Instr, bool)
}

// BatchStream is the optional bulk extension of Stream: Refill copies up
// to len(dst) pending instructions into dst and returns how many, with 0
// meaning the stream has ended (terminal, like Next returning false). A
// core whose stream implements it amortizes the per-instruction interface
// call into one call per buffer — the replay fast path for block traces
// (internal/trace.BlockReader) and generated streams alike. Refill must
// yield exactly the sequence repeated Next calls would.
type BatchStream interface {
	Stream
	Refill(dst []Instr) int
}

// BorrowStream is the zero-copy refinement of BatchStream: NextBatch
// returns a slice of pending instructions owned by the stream, valid only
// until the next NextBatch call, with an empty return meaning end of
// stream (terminal). A core whose stream implements it reads decoded
// instructions in place — for block traces that is straight out of the
// decoder's arena, skipping the staging copy Refill would do. The
// concatenation of returned batches must equal the sequence repeated Next
// calls would yield, and the stream must not mutate a returned batch
// before the next call.
type BorrowStream interface {
	BatchStream
	NextBatch() []Instr
}

// Translator maps virtual to physical addresses, faulting pages in as
// needed (the OS page-allocation path). ok=false means physical memory is
// exhausted, which aborts the core with an error.
type Translator interface {
	Translate(vaddr uint64, write bool) (paddr uint64, ok bool)
}

// MemPort is the cache hierarchy interface the core issues accesses to. The
// core registers itself as the sink and tokens completions with the load's
// ROB index (see Core.AccessDone).
type MemPort interface {
	Access(paddr uint64, obj uint64, write bool, sink cache.AccessSink, token uint64)
}

// FastPort is the optional non-scheduling probe interface a MemPort may
// implement (cache.Hierarchy does). AccessLoad services a clean L1/L2 load
// hit inline, returning the completion time, the event-order slot reserved
// for it, and the hit level; on a miss or conflict it behaves exactly like
// Access and reports inline=false. Promote rematerializes an inline
// completion as a real event in its original order slot — the core uses it
// when a dependent load must be woken by the completion callback. Output is
// byte-identical whether or not the port is used (sim.Config.NoFastpath).
type FastPort interface {
	MemPort
	AccessLoad(paddr uint64, obj uint64, sink cache.AccessSink, token uint64) (readyAt event.Time, ord uint64, level cache.Level, inline bool)
	Promote(at event.Time, ord uint64, level cache.Level, sink cache.AccessSink, token uint64)
}

// Config sizes the core per Table I.
type Config struct {
	Width   int        // fetch/dispatch/issue/commit width
	ROBSize int        // reorder buffer entries
	LQSize  int        // load queue entries
	Cycle   event.Time // clock period
}

// DefaultConfig returns the Table I core: width 3, 84-entry ROB, 32-entry
// LQ, 1 GHz.
func DefaultConfig() Config {
	return Config{Width: 3, ROBSize: 84, LQSize: 32, Cycle: event.Nanosecond}
}

// Validate reports a configuration error, if any.
func (c Config) Validate() error {
	switch {
	case c.Width <= 0:
		return fmt.Errorf("cpu: width must be positive, got %d", c.Width)
	case c.ROBSize <= 0:
		return fmt.Errorf("cpu: ROB size must be positive, got %d", c.ROBSize)
	case c.LQSize <= 0:
		return fmt.Errorf("cpu: LQ size must be positive, got %d", c.LQSize)
	case c.Cycle <= 0:
		return fmt.Errorf("cpu: cycle time must be positive")
	}
	return nil
}

// Stats aggregates core activity.
type Stats struct {
	Cycles       uint64
	Instructions uint64 // retired
	Loads        uint64
	Stores       uint64

	// ROBHeadStallCycles counts cycles an incomplete load blocked the ROB
	// head; MemStallCycles is the subset attributed to loads that missed
	// the LLC (the denominator for "stall cycles per load miss").
	ROBHeadStallCycles uint64
	MemStallCycles     uint64
	MemLoads           uint64 // retired loads that were LLC misses

	LQFullCycles  uint64 // dispatch stalled on a full load queue
	ROBFullCycles uint64 // dispatch stalled on a full ROB
}

// IPC returns retired instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

type robEntry struct {
	kind       Kind
	done       bool
	issued     bool
	obj        uint64
	vaddr      uint64
	depends    bool
	level      cache.Level
	headStalls uint64
	// prevLoad is the ROB index of the most recent older load at dispatch
	// time (-1: none), replacing a backward ROB walk on every dependent
	// issue check. Loads retire in order, so it is valid exactly while it
	// still lies between head and this entry in ring order.
	prevLoad int32

	// Inline-hit servicing (FastPort): the load completed synchronously at
	// issue; done flips when the core clock reaches readyAt (settle), or the
	// completion is promoted back into a real event at slot virtOrd.
	inline  bool
	readyAt event.Time
	virtOrd uint64
}

// Core is one simulated core. Drive it by calling Tick once per clock; the
// surrounding simulator interleaves Tick with the event queue.
type Core struct {
	ID  int
	cfg Config

	stream Stream
	xlate  Translator
	mem    MemPort
	fast   FastPort   // non-nil only when the fast path is enabled
	now    event.Time // current core clock (maintained by TickAt/FastForward)

	rob        []robEntry // ring buffer
	head, tail int        // head = oldest; tail = next free
	occupancy  int
	loadsInLQ  int
	lastLoad   int32 // ROB index of the most recently dispatched load (-1: none)

	fb         fetchBuf
	streamDone bool
	faulted    error

	// Batch refill: when the stream implements BatchStream, refills pull
	// whole slices instead of one Next call per instruction. bbuf is the
	// live view — a borrowed arena slice for BorrowStream sources
	// (zero-copy), or a prefix of the staging buffer ibuf otherwise.
	batch  BatchStream
	borrow BorrowStream
	bbuf   []Instr
	bpos   int
	ibuf   [64]Instr

	stats Stats

	// OnMemLoadRetire, if set, fires when a load that missed the LLC
	// retires, reporting the ROB-head stall cycles it caused — the
	// profiler's per-object MLP signal.
	OnMemLoadRetire func(obj uint64, headStallCycles uint64)
	// OnRetire, if set, fires with the number of instructions retired
	// each cycle (profiler's instruction counter).
	OnRetire func(n uint64)
}

// New builds a core over the given stream, translator, and memory port.
func New(id int, cfg Config, stream Stream, xlate Translator, mem MemPort) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if stream == nil || xlate == nil || mem == nil {
		return nil, fmt.Errorf("cpu: nil stream, translator, or memory port")
	}
	c := &Core{
		ID:     id,
		cfg:    cfg,
		stream: stream,
		xlate:  xlate,
		mem:    mem,
		rob:      make([]robEntry, cfg.ROBSize),
		lastLoad: -1,
	}
	if bs, ok := stream.(BatchStream); ok {
		c.batch = bs
	}
	if bs, ok := stream.(BorrowStream); ok {
		c.borrow = bs
	}
	return c, nil
}

// SetFastpath enables (or disables) the common-case fast path: inline hit
// servicing through the memory port's FastPort interface and compute-run
// batching via FastForward. It is a no-op when the port does not implement
// FastPort. Retired instructions, stats, and event ordering are
// byte-identical either way; the fast path only changes how they are
// computed.
func (c *Core) SetFastpath(on bool) {
	c.fast = nil
	if on {
		if fp, ok := c.mem.(FastPort); ok {
			c.fast = fp
		}
	}
}

// Stats returns a snapshot of the core's counters.
func (c *Core) Stats() Stats { return c.stats }

// Instructions returns the retired-instruction count without copying the
// whole Stats struct: the sharded runner reads it every cycle to check
// quota crossings.
//
//moca:hotpath
func (c *Core) Instructions() uint64 { return c.stats.Instructions }

// ResetStats clears counters (pipeline state is preserved).
func (c *Core) ResetStats() { c.stats = Stats{} }

// Done reports whether the core has retired its entire stream.
func (c *Core) Done() bool { return (c.streamDone && c.occupancy == 0) || c.faulted != nil }

// Err returns the fatal error that halted the core, if any (for example,
// physical memory exhaustion).
func (c *Core) Err() error { return c.faulted }

// Tick advances the core by one clock: retire, then dispatch/issue.
func (c *Core) Tick() { c.TickAt(c.now + c.cfg.Cycle) }

// TickAt is Tick at an absolute clock value: the simulator passes the cycle
// it is driving, which the fast path needs to settle inline-serviced loads
// (an inline load is done once now reaches its readyAt).
//
//moca:hotpath
func (c *Core) TickAt(now event.Time) {
	c.now = now
	if c.Done() {
		return
	}
	c.stats.Cycles++
	c.retire()
	c.dispatch()
}

// settle flips an inline-serviced load to done once the core clock reaches
// its completion time — exactly the cycle the slow path's delivery event
// would have been observed by retire. No-op with the fast path off (inline
// is never set).
//moca:hotpath
func (c *Core) settle(e *robEntry) {
	if e.inline && e.readyAt <= c.now {
		e.inline = false
		e.done = true
	}
}

//moca:hotpath
func (c *Core) retire() {
	retired := uint64(0)
	for i := 0; i < c.cfg.Width && c.occupancy > 0; i++ {
		e := &c.rob[c.head]
		c.settle(e)
		if !e.done {
			if e.kind == Load {
				e.headStalls++
				c.stats.ROBHeadStallCycles++
			}
			break
		}
		if e.kind == Load {
			c.loadsInLQ--
			if e.level == cache.MemHit {
				c.stats.MemLoads++
				c.stats.MemStallCycles += e.headStalls
				if c.OnMemLoadRetire != nil {
					c.OnMemLoadRetire(e.obj, e.headStalls)
				}
			}
		}
		c.head++
		if c.head == c.cfg.ROBSize {
			c.head = 0
		}
		c.occupancy--
		retired++
	}
	if retired > 0 {
		c.stats.Instructions += retired
		if c.OnRetire != nil {
			c.OnRetire(retired)
		}
	}
}

//moca:hotpath
func (c *Core) dispatch() {
	for i := 0; i < c.cfg.Width; i++ {
		if c.occupancy >= c.cfg.ROBSize {
			c.stats.ROBFullCycles++
			return
		}
		in, ok := c.peek()
		if !ok {
			return
		}
		switch in.Kind {
		case Compute:
			c.consumeComputeOne()
			c.push(robEntry{kind: Compute, done: true})
		case Store:
			c.consume()
			c.push(robEntry{kind: Store, done: true})
			c.stats.Stores++
			if paddr, ok := c.translate(in.VAddr, true); ok {
				c.mem.Access(paddr, in.Obj, true, nil, 0)
			}
		case Load:
			if c.loadsInLQ >= c.cfg.LQSize {
				c.stats.LQFullCycles++
				return
			}
			c.consume()
			idx := c.push(robEntry{kind: Load, obj: in.Obj, vaddr: in.VAddr, depends: in.DependsOnPrev, prevLoad: c.lastLoad})
			c.lastLoad = int32(idx)
			c.loadsInLQ++
			c.stats.Loads++
			c.maybeIssueLoad(idx)
		}
		if c.faulted != nil {
			return
		}
	}
}

// maybeIssueLoad issues the load at ROB index idx unless it depends on an
// earlier, still-incomplete load (pointer chasing).
//moca:hotpath
func (c *Core) maybeIssueLoad(idx int) {
	e := &c.rob[idx]
	if e.issued {
		return
	}
	if e.depends {
		if p, ok := c.prevLoadIndex(idx); ok {
			pe := &c.rob[p]
			c.settle(pe)
			if !pe.done {
				if pe.inline {
					// The producer's completion was serviced inline and no
					// event exists to wake this load: materialize it, so
					// AccessDone re-runs dependents at exactly its time.
					c.promote(p, pe)
				}
				// Issue when the producer completes (its completion
				// callback re-runs dependents).
				return
			}
		}
	}
	e.issued = true
	paddr, ok := c.translate(e.vaddr, false)
	if !ok {
		e.done = true
		return
	}
	if c.fast != nil {
		readyAt, ord, level, inline := c.fast.AccessLoad(paddr, e.obj, c, uint64(idx))
		if inline {
			e.inline, e.readyAt, e.virtOrd, e.level = true, readyAt, ord, level
			if c.nextDependentWaiting(idx) {
				// A dependent already sits in the ROB waiting for this
				// load's completion callback; keep the completion real.
				c.promote(idx, e)
			}
		}
		return
	}
	c.mem.Access(paddr, e.obj, false, c, uint64(idx))
}

// promote converts the inline-serviced load at idx back into a real
// delivery event in its original event-order slot.
//moca:hotpath
func (c *Core) promote(idx int, e *robEntry) {
	c.fast.Promote(e.readyAt, e.virtOrd, e.level, c, uint64(idx))
	e.inline = false
}

// nextDependentWaiting reports whether the next younger load is an unissued
// dependent of the load at idx (mirrors wakeDependents' scan: only the
// immediately next load can depend on idx).
//moca:hotpath
func (c *Core) nextDependentWaiting(idx int) bool {
	i := idx + 1
	if i == c.cfg.ROBSize {
		i = 0
	}
	for i != c.tail {
		e := &c.rob[i]
		if e.kind == Load {
			return e.depends && !e.issued
		}
		i++
		if i == c.cfg.ROBSize {
			i = 0
		}
	}
	return false
}

// FastForward retires a run of batchable cycles starting at now, strictly
// before end, advancing the core clock in one call instead of one Tick per
// cycle — the compute-run half of the fast path. A cycle is batchable when
// its whole Tick is replicable without touching the instruction stream, the
// translator, or the event queue:
//
//   - the fetch buffer holds a Compute batch with at least a full dispatch
//     width remaining (dispatch consumes only the buffer), or
//   - the ROB is full with an unmatured head (a pure stall cycle: retire
//     accounts the head stall, dispatch accounts the ROB-full stall).
//
// Batched cycles post no events, fault no pages, and never touch the
// stream, so they are invisible to every other shard; the caller bounds end
// by the next queued event and the window barrier, and budget (remaining
// instructions to its quota crossing) stops the batch on the exact crossing
// cycle. Memory instructions, stream refills, and everything else fall back
// to per-cycle Ticks. Returns the number of cycles advanced; stats are
// byte-identical to the same cycles executed through Tick.
//moca:hotpath
func (c *Core) FastForward(now, end event.Time, budget uint64) (cycles int, retired uint64) {
	n := 0
	start := c.stats.Instructions
	for now < end {
		if c.occupancy == c.cfg.ROBSize {
			e := &c.rob[c.head]
			if e.done {
				break // head retirable: dispatch may refill, full Tick needed
			}
			// Pure stall: until the head matures (inline) or an event fires
			// (bounded by end), every cycle is the same four counter
			// increments — pay them arithmetically instead of looping.
			stallEnd := end
			if e.inline {
				if e.readyAt <= now {
					break // matured: the slow tick retires it
				}
				if e.readyAt < stallEnd {
					stallEnd = e.readyAt
				}
			}
			k := uint64((stallEnd - now + c.cfg.Cycle - 1) / c.cfg.Cycle)
			c.stats.Cycles += k
			c.stats.ROBFullCycles += k
			if e.kind == Load {
				e.headStalls += k
				c.stats.ROBHeadStallCycles += k
			}
			n += int(k)
			now += event.Time(k) * c.cfg.Cycle
			c.now = now - c.cfg.Cycle
			continue
		}
		if !c.batchable(now) {
			break
		}
		c.now = now
		c.stats.Cycles++
		c.retire()
		c.dispatchComputes()
		n++
		now += c.cfg.Cycle
		if c.stats.Instructions-start >= budget {
			break
		}
	}
	return n, c.stats.Instructions - start
}

// batchable reports whether the Tick at cycle now is replicable by
// retire+dispatchComputes alone (see FastForward). It never touches the
// stream: peeking could end it a cycle early and diverge from the slow
// path.
//moca:hotpath
func (c *Core) batchable(now event.Time) bool {
	if c.fb.valid && c.fb.in.Kind == Compute && int(c.fb.in.N) >= c.cfg.Width {
		return true
	}
	if c.occupancy == c.cfg.ROBSize {
		e := &c.rob[c.head]
		return !e.done && !(e.inline && e.readyAt <= now)
	}
	return false
}

// dispatchComputes is dispatch restricted to the batchable cases: it drains
// compute instructions from the fetch buffer (never refilling it) and
// accounts ROB-full stalls, exactly as dispatch would.
//moca:hotpath
func (c *Core) dispatchComputes() {
	for i := 0; i < c.cfg.Width; i++ {
		if c.occupancy >= c.cfg.ROBSize {
			c.stats.ROBFullCycles++
			return
		}
		if !c.fb.valid || c.fb.in.Kind != Compute {
			return
		}
		c.consumeComputeOne()
		c.push(robEntry{kind: Compute, done: true})
	}
}

// AccessDone receives load completions from the memory port
// (cache.AccessSink); the token is the load's ROB index. A load cannot
// retire before completing, so the slot still holds the issuing load.
func (c *Core) AccessDone(token uint64, _ event.Time, level cache.Level) {
	idx := int(token)
	e := &c.rob[idx]
	e.done = true
	e.level = level
	c.wakeDependents(idx)
}

// wakeDependents issues any younger dependent load that was waiting on the
// load at index idx.
func (c *Core) wakeDependents(idx int) {
	// Scan forward from idx+1 to tail for the next load; if it is a
	// dependent unissued load, issue it now.
	i := idx + 1
	if i == c.cfg.ROBSize {
		i = 0
	}
	for i != c.tail {
		e := &c.rob[i]
		if e.kind == Load {
			if e.depends && !e.issued {
				c.maybeIssueLoad(i)
			}
			return // only the immediately next load can depend on idx
		}
		i++
		if i == c.cfg.ROBSize {
			i = 0
		}
	}
}

// prevLoadIndex finds the most recent load older than idx: the producer
// recorded at dispatch, if it is still in flight. Loads retire in order,
// so once the recorded producer has left the ROB (its slot is no longer
// between head and idx in ring order — including when the slot was reused
// by a younger entry), no older load remains either.
//
//moca:hotpath
func (c *Core) prevLoadIndex(idx int) (int, bool) {
	p := int(c.rob[idx].prevLoad)
	if p < 0 {
		return 0, false
	}
	n := c.cfg.ROBSize
	if (p-c.head+n)%n < (idx-c.head+n)%n {
		return p, true
	}
	return 0, false
}

func (c *Core) push(e robEntry) int {
	idx := c.tail
	c.rob[idx] = e
	c.tail++
	if c.tail == c.cfg.ROBSize {
		c.tail = 0
	}
	c.occupancy++
	return idx
}

func (c *Core) translate(vaddr uint64, write bool) (uint64, bool) {
	paddr, ok := c.xlate.Translate(vaddr, write)
	if !ok {
		c.faulted = fmt.Errorf("cpu: core %d: out of physical memory translating %#x", c.ID, vaddr)
		return 0, false
	}
	return paddr, true
}

// Stream buffering: peek/consume with Compute batch expansion.

type fetchBuf struct {
	in    Instr
	valid bool
}

// peek returns the next instruction without consuming it. Compute batches
// are surfaced one instruction at a time via consumeComputeOne. The valid
// fetch-buffer case is split out so it inlines into dispatch.
//
//moca:hotpath
func (c *Core) peek() (Instr, bool) {
	if c.fb.valid {
		return c.fb.in, true
	}
	return c.refill()
}

//moca:hotpath
func (c *Core) refill() (Instr, bool) {
	if c.streamDone {
		return Instr{}, false
	}
	var in Instr
	if c.batch != nil {
		if c.bpos == len(c.bbuf) && !c.nextBatch() {
			c.streamDone = true
			return Instr{}, false
		}
		in = c.bbuf[c.bpos]
		c.bpos++
	} else {
		var ok bool
		in, ok = c.stream.Next()
		if !ok {
			c.streamDone = true
			return Instr{}, false
		}
	}
	if in.Kind == Compute && in.N < 1 {
		in.N = 1
	}
	c.fb = fetchBuf{in: in, valid: true}
	return c.fb.in, true
}

// nextBatch replaces the drained bbuf view with the stream's next batch:
// borrowed in place when the stream supports it, staged through ibuf
// otherwise. Returns false at end of stream.
func (c *Core) nextBatch() bool {
	c.bpos = 0
	if c.borrow != nil {
		c.bbuf = c.borrow.NextBatch()
		return len(c.bbuf) > 0
	}
	n := c.batch.Refill(c.ibuf[:])
	c.bbuf = c.ibuf[:n]
	return n > 0
}

func (c *Core) consume() { c.fb.valid = false }

func (c *Core) consumeComputeOne() {
	c.fb.in.N--
	if c.fb.in.N <= 0 {
		c.fb.valid = false
	}
}
