package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"moca/internal/cpu"
)

// fuzzSeedTrace builds a small valid trace in the requested version for
// seeding the fuzz corpora.
func fuzzSeedTrace(version int) []byte {
	items := []cpu.Instr{
		{Kind: cpu.Compute, N: 12},
		{Kind: cpu.Load, VAddr: 0x1000_0000_0000, Obj: 5},
		{Kind: cpu.Load, VAddr: 0x1000_0000_0040, Obj: 5, DependsOnPrev: true},
		{Kind: cpu.Store, VAddr: 0x1000_0000_0080, Obj: 5},
		{Kind: cpu.Compute, N: 3},
	}
	var buf bytes.Buffer
	var w interface {
		Append(in cpu.Instr) error
		Close() error
	}
	if version == 1 {
		w1, err := NewWriter(&buf)
		if err != nil {
			panic(err)
		}
		w = w1
	} else {
		// Two items per block so the seed spans several block frames.
		w2, err := NewBlockWriterSize(&buf, 2, 0)
		if err != nil {
			panic(err)
		}
		w = w2
	}
	for _, in := range items {
		if err := w.Append(in); err != nil {
			panic(err)
		}
	}
	if err := w.Close(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzReader feeds arbitrary bytes to the version-dispatching trace
// decoder (Open): it must never panic, never loop forever, and always
// either produce instructions or stop with done/Err. Corruption seeds
// cover both formats — flipped payload bytes (v2: checksum mismatch),
// truncated block frames, bad markers, and hostile header fields.
func FuzzReader(f *testing.F) {
	v1 := fuzzSeedTrace(1)
	v2 := fuzzSeedTrace(2)
	f.Add(v1)
	f.Add(v2)
	f.Add(v1[:len(v1)-3])
	f.Add(v2[:len(v2)-3])      // truncated: missing end frame tail
	f.Add(v2[:headerLen+4])    // truncated mid block header
	f.Add([]byte(Magic))
	f.Add([]byte{})
	for _, seed := range [][]byte{v1, v2} {
		corrupt := append([]byte{}, seed...)
		corrupt[len(corrupt)/2] ^= 0xFF // payload damage: v2 must report ErrChecksum/ErrCorrupt
		f.Add(corrupt)
		corrupt2 := append([]byte{}, seed...)
		corrupt2[headerLen] ^= 0xFF // bad first marker/opcode
		f.Add(corrupt2)
	}
	// Degenerate hand-crafted streams: a zero-length trace (header only,
	// no end marker), truncated varints (a continuation bit with nothing
	// after it), a zero-count compute batch, and a bad version byte.
	f.Add([]byte(Magic + "\x01"))
	f.Add([]byte(Magic + "\x01\x00\x80"))
	f.Add([]byte(Magic + "\x01\x01\x80\x80\x80"))
	f.Add([]byte(Magic + "\x01\x00\x00\xff"))
	f.Add([]byte(Magic + "\x00"))
	// v2 degenerates: empty trace, block claiming absurd counts/lengths,
	// end frame with a wrong total.
	f.Add([]byte(Magic + "\x02"))
	f.Add([]byte(Magic + "\x02\xe2\x00"))
	f.Add([]byte(Magic + "\x02\xe2\x05"))
	f.Add([]byte(Magic + "\x02\xb2\x00\xff\xff\xff\x7f\x01\x01\x00\x00\x00\x00\x00\x00"))
	f.Add([]byte(Magic + "\x02\xb2\x00\x01\xff\xff\xff\x7f\x01\x00\x00\x00\x00\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := Open(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Bound the loop far above any decodable count to catch livelock.
		// v1 spends at least one input byte per instruction; a v2 block
		// frame spends at least ~10 bytes and can decode to at most
		// maxBlockItems instructions.
		bound := (len(data)/10+1)*maxBlockItems + len(data) + 8
		for i := 0; i <= bound; i++ {
			in, ok := r.Next()
			if !ok {
				return
			}
			if in.Kind == cpu.Compute && in.N < 1 {
				t.Fatalf("decoded compute batch with N=%d", in.N)
			}
		}
		t.Fatalf("decoder produced more instructions than input could encode")
	})
}

// FuzzBlockSeek opens arbitrary bytes at an arbitrary Position: resuming
// at garbage must fail with a typed error (ErrBadPosition, ErrCorrupt,
// ErrChecksum, or a version error), never panic, and a reader that does
// open must replay without livelock. SkipTo is probed the same way.
func FuzzBlockSeek(f *testing.F) {
	v2 := fuzzSeedTrace(2)
	f.Add(v2, uint64(0), uint64(0), uint64(2))
	f.Add(v2, uint64(headerLen), uint64(0), uint64(4))
	f.Add(v2, uint64(len(v2)-2), uint64(5), uint64(5))
	f.Add(v2, uint64(13), uint64(2), uint64(3))      // mid-stream boundary guess
	f.Add(v2[:len(v2)-4], uint64(13), uint64(2), uint64(9))
	f.Add([]byte(Magic+"\x02"), uint64(1<<40), uint64(1<<40), uint64(0))

	f.Fuzz(func(t *testing.T, data []byte, byteOff, seq, skip uint64) {
		r, err := OpenBlockReaderAt(bytes.NewReader(data), Position{ByteOff: byteOff, Seq: seq})
		if err != nil {
			return
		}
		if err := r.SkipTo(seq + skip%maxBlockItems); err != nil {
			if !errors.Is(err, ErrBadPosition) && !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrChecksum) {
				t.Fatalf("SkipTo: untyped error %v", err)
			}
			return
		}
		bound := (len(data)/10+1)*maxBlockItems + 8
		for i := 0; i <= bound; i++ {
			if _, ok := r.Next(); !ok {
				return
			}
		}
		t.Fatalf("seeked reader produced more instructions than input could encode")
	})
}

// FuzzDecodeFrame feeds arbitrary standalone block frames to the wire
// decoder used by the simulation server: it must never panic and must
// reject anything that is not a complete, checksummed frame starting at
// the expected sequence number.
func FuzzDecodeFrame(f *testing.F) {
	v2 := fuzzSeedTrace(2)
	// Extract the real frames from the seed trace as valid corpus entries.
	sc, err := NewBlockScanner(bytes.NewReader(v2))
	if err != nil {
		f.Fatal(err)
	}
	for sc.Scan() {
		frame := append([]byte{}, sc.Frame()...)
		f.Add(frame, sc.Info().Pos.Seq)
		corrupt := append([]byte{}, frame...)
		corrupt[len(corrupt)-1] ^= 0xFF
		f.Add(corrupt, sc.Info().Pos.Seq)
		f.Add(frame, sc.Info().Pos.Seq+1) // wrong expectSeq
		f.Add(frame[:len(frame)-2], sc.Info().Pos.Seq)
	}
	f.Add([]byte{}, uint64(0))
	f.Add([]byte{blockMarker}, uint64(0))

	f.Fuzz(func(t *testing.T, frame []byte, expectSeq uint64) {
		var d BlockDecoder
		items, err := d.DecodeFrame(frame, expectSeq)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrChecksum) {
				t.Fatalf("DecodeFrame: untyped error %v", err)
			}
			return
		}
		if len(items) == 0 {
			t.Fatal("DecodeFrame returned no error and no items")
		}
		// A frame that decodes must re-encode its claimed seq consistently:
		// the header's count matches the decoded length.
		var fields [4]uint64
		p := 1
		for i := range fields {
			v, w := binary.Uvarint(frame[p:])
			fields[i] = v
			p += w
		}
		if fields[0] != expectSeq || int(fields[1]) != len(items) {
			t.Fatalf("decoded %d items from frame claiming seq %d count %d (expectSeq %d)",
				len(items), fields[0], fields[1], expectSeq)
		}
	})
}
