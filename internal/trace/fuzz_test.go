package trace

import (
	"bytes"
	"testing"

	"moca/internal/cpu"
)

// FuzzReader feeds arbitrary bytes to the trace decoder: it must never
// panic, never loop forever, and always either produce instructions or
// stop with done/Err.
func FuzzReader(f *testing.F) {
	// Seed with a valid trace and a few corruptions of it.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Append(cpu.Instr{Kind: cpu.Compute, N: 12})
	w.Append(cpu.Instr{Kind: cpu.Load, VAddr: 0x1000_0000_0000, Obj: 5})
	w.Append(cpu.Instr{Kind: cpu.Store, VAddr: 0x1000_0000_0040, Obj: 5})
	w.Close()
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte(Magic))
	f.Add([]byte{})
	corrupt := append([]byte{}, valid...)
	corrupt[10] ^= 0xFF
	f.Add(corrupt)
	// Degenerate hand-crafted streams: a zero-length trace (header only,
	// no end marker), truncated varints (a continuation bit with nothing
	// after it), a zero-count compute batch, and a bad version byte.
	f.Add([]byte(Magic + "\x01"))
	f.Add([]byte(Magic + "\x01\x00\x80"))
	f.Add([]byte(Magic + "\x01\x01\x80\x80\x80"))
	f.Add([]byte(Magic + "\x01\x00\x00\xff"))
	f.Add([]byte(Magic + "\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		// The stream is at most a few bytes per instruction; bound the
		// loop far above any decodable count to catch livelock.
		for i := 0; i <= len(data)+8; i++ {
			in, ok := r.Next()
			if !ok {
				return
			}
			if in.Kind == cpu.Compute && in.N < 1 {
				t.Fatalf("decoded compute batch with N=%d", in.N)
			}
		}
		t.Fatalf("decoder produced more instructions than input bytes")
	})
}
