// Package trace records and replays instruction streams. A trace captures
// the exact sequence a workload generator produced — compute batches,
// loads, stores, addresses, object identities, dependence flags — in a
// compact varint-encoded binary format, so a run can be archived, shared,
// and replayed bit-identically, or produced by an external tool instead of
// the built-in generators.
//
// Addresses in a trace are virtual and carry the heap-partition layout of
// the run that produced them (see internal/heap): replaying under a
// MOCA-policy system requires the trace to have been recorded from an
// application instrumented with the same classification, because the
// partition an address lives in is what tells the OS the object's class.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"moca/internal/cpu"
)

// Magic and version identify the file format.
const (
	Magic   = "MOCATRC1"
	version = 1
)

// opcodes
const (
	opCompute = 0
	opLoad    = 1
	opLoadDep = 2
	opStore   = 3
	opEnd     = 255
)

// Writer streams instructions to a trace file.
type Writer struct {
	w      *bufio.Writer
	count  uint64
	closed bool

	lastAddr uint64
	lastObj  uint64
}

// NewWriter writes a trace header and returns the writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(Magic); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	var hdr [1]byte
	hdr[0] = version
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Append records one instruction.
func (t *Writer) Append(in cpu.Instr) error {
	if t.closed {
		return fmt.Errorf("trace: append after Close")
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := t.w.Write(buf[:n])
		return err
	}
	writeVarint := func(v int64) error {
		n := binary.PutVarint(buf[:], v)
		_, err := t.w.Write(buf[:n])
		return err
	}

	switch in.Kind {
	case cpu.Compute:
		n := in.N
		if n < 1 {
			n = 1
		}
		if err := t.w.WriteByte(opCompute); err != nil {
			return err
		}
		if err := writeUvarint(uint64(n)); err != nil {
			return err
		}
	case cpu.Load, cpu.Store:
		op := byte(opStore)
		if in.Kind == cpu.Load {
			if in.DependsOnPrev {
				op = opLoadDep
			} else {
				op = opLoad
			}
		}
		if err := t.w.WriteByte(op); err != nil {
			return err
		}
		// Addresses delta-encode against the previous access; objects
		// delta-encode too (usually unchanged or nearby).
		if err := writeVarint(int64(in.VAddr) - int64(t.lastAddr)); err != nil {
			return err
		}
		if err := writeVarint(int64(in.Obj) - int64(t.lastObj)); err != nil {
			return err
		}
		t.lastAddr, t.lastObj = in.VAddr, in.Obj
	default:
		return fmt.Errorf("trace: unknown instruction kind %d", in.Kind)
	}
	t.count++
	return nil
}

// Count returns the number of recorded instructions (compute batches count
// once).
func (t *Writer) Count() uint64 { return t.count }

// Close terminates and flushes the trace.
func (t *Writer) Close() error {
	if t.closed {
		return nil
	}
	t.closed = true
	if err := t.w.WriteByte(opEnd); err != nil {
		return err
	}
	return t.w.Flush()
}

// Appender records instructions: *Writer (v1) and *BlockWriter (v2).
type Appender interface {
	Append(in cpu.Instr) error
}

var (
	_ Appender = (*Writer)(nil)
	_ Appender = (*BlockWriter)(nil)
)

// Record drains up to n instructions from a stream into the writer.
// It returns the number recorded (less than n if the stream ended).
func Record(w Appender, s cpu.Stream, n uint64) (uint64, error) {
	var recorded uint64
	for recorded < n {
		in, ok := s.Next()
		if !ok {
			break
		}
		if err := w.Append(in); err != nil {
			return recorded, err
		}
		recorded++
	}
	return recorded, nil
}

// Reader replays a trace as a cpu.Stream.
type Reader struct {
	r    *bufio.Reader
	done bool
	err  error

	lastAddr uint64
	lastObj  uint64
}

// NewReader validates the header and returns a replay stream.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(magic) != Magic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("trace: reading version: %w", err)
	}
	if ver != version {
		return nil, fmt.Errorf("trace: unsupported version %d (Open dispatches v1 and v2)", ver)
	}
	return &Reader{r: br}, nil
}

// Err returns the decode error that terminated the stream, if any.
func (t *Reader) Err() error { return t.err }

// Next implements cpu.Stream.
func (t *Reader) Next() (cpu.Instr, bool) {
	if t.done {
		return cpu.Instr{}, false
	}
	fail := func(err error) (cpu.Instr, bool) {
		t.done = true
		if err != io.EOF {
			t.err = err
		}
		return cpu.Instr{}, false
	}
	op, err := t.r.ReadByte()
	if err != nil {
		return fail(err)
	}
	switch op {
	case opEnd:
		t.done = true
		return cpu.Instr{}, false
	case opCompute:
		n, err := binary.ReadUvarint(t.r)
		if err != nil {
			return fail(err)
		}
		// Harden against hand-crafted traces: batches are at least one
		// instruction and bounded so int conversion cannot overflow.
		if n < 1 {
			n = 1
		}
		if n > 1<<30 {
			return fail(fmt.Errorf("trace: absurd compute batch of %d", n))
		}
		return cpu.Instr{Kind: cpu.Compute, N: int32(n)}, true
	case opLoad, opLoadDep, opStore:
		dAddr, err := binary.ReadVarint(t.r)
		if err != nil {
			return fail(err)
		}
		dObj, err := binary.ReadVarint(t.r)
		if err != nil {
			return fail(err)
		}
		t.lastAddr = uint64(int64(t.lastAddr) + dAddr)
		t.lastObj = uint64(int64(t.lastObj) + dObj)
		in := cpu.Instr{VAddr: t.lastAddr, Obj: t.lastObj}
		switch op {
		case opLoad:
			in.Kind = cpu.Load
		case opLoadDep:
			in.Kind = cpu.Load
			in.DependsOnPrev = true
		case opStore:
			in.Kind = cpu.Store
		}
		return in, true
	default:
		return fail(fmt.Errorf("trace: unknown opcode %d", op))
	}
}

var _ cpu.Stream = (*Reader)(nil)

// Loop wraps a finite stream source so it restarts from a factory when
// exhausted — letting a finite trace drive an arbitrarily long simulation.
// A stream that ends with a decode error (rather than clean end-of-trace)
// terminates the loop: restarting would replay the valid prefix forever.
// Check Err after the simulation to distinguish the two.
type Loop struct {
	open func() (cpu.Stream, error)
	cur  cpu.Stream
	err  error
}

// NewLoop builds a looping stream; open is called for each pass.
func NewLoop(open func() (cpu.Stream, error)) *Loop {
	return &Loop{open: open}
}

// Err returns the error that terminated the loop: a failed reopen, or the
// inner stream's decode error (any stream exposing Err() error, such as
// Reader). Nil while the loop is still live.
func (l *Loop) Err() error { return l.err }

// Next implements cpu.Stream.
func (l *Loop) Next() (cpu.Instr, bool) {
	if l.err != nil {
		return cpu.Instr{}, false
	}
	for attempt := 0; attempt < 2; attempt++ {
		if l.cur == nil {
			s, err := l.open()
			if err != nil {
				l.err = fmt.Errorf("trace: reopening stream: %w", err)
				return cpu.Instr{}, false
			}
			if s == nil {
				return cpu.Instr{}, false
			}
			l.cur = s
		}
		if in, ok := l.cur.Next(); ok {
			return in, true
		}
		// The pass ended. A decode error is terminal — only a clean
		// end-of-stream may restart.
		if ec, ok := l.cur.(interface{ Err() error }); ok {
			if err := ec.Err(); err != nil {
				l.err = err
				l.cur = nil
				return cpu.Instr{}, false
			}
		}
		l.cur = nil
	}
	return cpu.Instr{}, false
}

// Refill implements cpu.BatchStream across pass boundaries: it drains
// Next into dst, so a looping block replay still batch-refills the core.
func (l *Loop) Refill(dst []cpu.Instr) int {
	n := 0
	for n < len(dst) {
		in, ok := l.Next()
		if !ok {
			break
		}
		dst[n] = in
		n++
	}
	return n
}

var _ cpu.Stream = (*Loop)(nil)
var _ cpu.BatchStream = (*Loop)(nil)
