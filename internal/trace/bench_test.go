package trace

import (
	"bytes"
	"os"
	"testing"

	"moca/internal/cpu"
	"moca/internal/heap"
	"moca/internal/workload"
)

// benchCorpus is 256Ki items of the real mcf generator stream — the
// corpus the simulator actually replays — plus its v1 and v2 encodings,
// shared by the decode/encode benchmarks.
const benchCorpusItems = 256 * 1024

func benchCorpus(b *testing.B) (items []cpu.Instr, v1, v2 []byte) {
	b.Helper()
	spec, ok := workload.ByName("mcf")
	if !ok {
		b.Fatal("unknown application mcf")
	}
	app, err := workload.Instantiate(spec.ForInput(workload.Ref), heap.New(heap.Config{}), 0)
	if err != nil {
		b.Fatal(err)
	}
	stream := app.Stream()
	items = make([]cpu.Instr, benchCorpusItems)
	for i := range items {
		in, ok := stream.Next()
		if !ok {
			b.Fatalf("mcf stream ended at item %d", i)
		}
		items[i] = in
	}
	var b1 bytes.Buffer
	w1, err := NewWriter(&b1)
	if err != nil {
		b.Fatal(err)
	}
	for _, in := range items {
		if err := w1.Append(in); err != nil {
			b.Fatal(err)
		}
	}
	if err := w1.Close(); err != nil {
		b.Fatal(err)
	}
	var b2 bytes.Buffer
	w2, err := NewBlockWriter(&b2)
	if err != nil {
		b.Fatal(err)
	}
	for _, in := range items {
		if err := w2.Append(in); err != nil {
			b.Fatal(err)
		}
	}
	if err := w2.Close(); err != nil {
		b.Fatal(err)
	}
	return items, b1.Bytes(), b2.Bytes()
}

// reportDecode normalizes the two throughput views: MB/s of encoded trace
// (SetBytes) and decoded stream items per second.
func reportDecode(b *testing.B, encoded int) {
	b.SetBytes(int64(encoded))
	b.ReportMetric(float64(benchCorpusItems)*float64(b.N)/b.Elapsed().Seconds(), "items/s")
}

// BenchmarkTraceDecode compares the per-instruction v1 path against the
// v2 block path, item-at-a-time and batch-refill. One op decodes the full
// 256Ki-item corpus; steady state reuses the reader (Reset), so the v2
// rows are the zero-alloc arena path the simulator replays through.
func BenchmarkTraceDecode(b *testing.B) {
	_, v1, v2 := benchCorpus(b)

	b.Run("v1/next", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r, err := NewReader(bytes.NewReader(v1))
			if err != nil {
				b.Fatal(err)
			}
			n := 0
			for {
				if _, ok := r.Next(); !ok {
					break
				}
				n++
			}
			if err := r.Err(); err != nil || n != benchCorpusItems {
				b.Fatalf("%d items, err %v", n, err)
			}
		}
		reportDecode(b, len(v1))
	})

	b.Run("v2/next", func(b *testing.B) {
		br := bytes.NewReader(v2)
		r, err := NewBlockReader(br)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n := 0
			for {
				if _, ok := r.Next(); !ok {
					break
				}
				n++
			}
			if err := r.Err(); err != nil || n != benchCorpusItems {
				b.Fatalf("%d items, err %v", n, err)
			}
			br.Reset(v2)
			if err := r.Reset(br); err != nil {
				b.Fatal(err)
			}
		}
		reportDecode(b, len(v2))
	})

	b.Run("v2/batch", func(b *testing.B) {
		br := bytes.NewReader(v2)
		r, err := NewBlockReader(br)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n := 0
			for {
				batch := r.NextBatch()
				if len(batch) == 0 {
					break
				}
				n += len(batch)
			}
			if err := r.Err(); err != nil || n != benchCorpusItems {
				b.Fatalf("%d items, err %v", n, err)
			}
			br.Reset(v2)
			if err := r.Reset(br); err != nil {
				b.Fatal(err)
			}
		}
		reportDecode(b, len(v2))
	})

	b.Run("v2/refill", func(b *testing.B) {
		br := bytes.NewReader(v2)
		r, err := NewBlockReader(br)
		if err != nil {
			b.Fatal(err)
		}
		var dst [64]cpu.Instr // the core's batch buffer size
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n := 0
			for {
				k := r.Refill(dst[:])
				if k == 0 {
					break
				}
				n += k
			}
			if err := r.Err(); err != nil || n != benchCorpusItems {
				b.Fatalf("%d items, err %v", n, err)
			}
			br.Reset(v2)
			if err := r.Reset(br); err != nil {
				b.Fatal(err)
			}
		}
		reportDecode(b, len(v2))
	})
}

// BenchmarkTraceEncode compares the write paths; the v2 row reports the
// achieved compression ratio alongside throughput.
func BenchmarkTraceEncode(b *testing.B) {
	items, v1, v2 := benchCorpus(b)

	b.Run("v1", func(b *testing.B) {
		var buf bytes.Buffer
		buf.Grow(len(v1) + 1024)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			w, err := NewWriter(&buf)
			if err != nil {
				b.Fatal(err)
			}
			for _, in := range items {
				if err := w.Append(in); err != nil {
					b.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				b.Fatal(err)
			}
		}
		reportDecode(b, buf.Len())
	})

	b.Run("v2", func(b *testing.B) {
		var buf bytes.Buffer
		buf.Grow(len(v2) + 1024)
		w, err := NewBlockWriter(&buf)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := w.Reset(&buf); err != nil {
				b.Fatal(err)
			}
			for _, in := range items {
				if err := w.Append(in); err != nil {
					b.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				b.Fatal(err)
			}
		}
		reportDecode(b, buf.Len())
		b.ReportMetric(float64(len(v1))/float64(len(v2)), "v1_bytes/v2_bytes")
	})
}

// TestTraceDecodeAllocBudget is the CI bench smoke for the v2 hot path:
// steady-state block decoding must stay allocation-free — both the
// item-at-a-time and the batch-refill view. The first corpus pass may
// grow the arena and scratch buffers; every later pass reuses them.
// Skipped unless MOCA_BENCH_SMOKE=1.
func TestTraceDecodeAllocBudget(t *testing.T) {
	if os.Getenv("MOCA_BENCH_SMOKE") == "" {
		t.Skip("set MOCA_BENCH_SMOKE=1 to run the bench smoke")
	}
	items := genItems(64*1024, 7)
	encoded := writeV2(t, items, 0)

	br := bytes.NewReader(encoded)
	r, err := NewBlockReader(br)
	if err != nil {
		t.Fatal(err)
	}
	var dst [64]cpu.Instr
	pass := func(mode string) {
		n := 0
		switch mode {
		case "next":
			for {
				if _, ok := r.Next(); !ok {
					break
				}
				n++
			}
		case "refill":
			for {
				k := r.Refill(dst[:])
				if k == 0 {
					break
				}
				n += k
			}
		case "batch":
			for {
				batch := r.NextBatch()
				if len(batch) == 0 {
					break
				}
				n += len(batch)
			}
		}
		if err := r.Err(); err != nil || n != len(items) {
			t.Fatalf("%d items, err %v", n, err)
		}
		br.Reset(encoded)
		if err := r.Reset(br); err != nil {
			t.Fatal(err)
		}
	}
	pass("next") // warm the arena and scratch buffers

	for _, mode := range []string{"next", "refill", "batch"} {
		mode := mode
		allocs := testing.AllocsPerRun(3, func() { pass(mode) })
		t.Logf("%s: %.1f allocs per corpus pass", mode, allocs)
		if allocs > 0 {
			t.Errorf("%s: %v allocs per steady-state corpus pass, want 0", mode, allocs)
		}
	}
}
