package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"moca/internal/cpu"
	"moca/internal/heap"
	"moca/internal/workload"
)

func roundTrip(t *testing.T, ins []cpu.Instr) []cpu.Instr {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range ins {
		if err := w.Append(in); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var out []cpu.Instr
	for {
		in, ok := r.Next()
		if !ok {
			break
		}
		out = append(out, in)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	return out
}

func TestRoundTripBasic(t *testing.T) {
	ins := []cpu.Instr{
		{Kind: cpu.Compute, N: 7},
		{Kind: cpu.Load, VAddr: 0x1000, Obj: 3},
		{Kind: cpu.Load, VAddr: 0x1008, Obj: 3, DependsOnPrev: true},
		{Kind: cpu.Store, VAddr: 0x7FFF0000_0000, Obj: 0},
		{Kind: cpu.Compute, N: 1},
		{Kind: cpu.Load, VAddr: 0x2000_0000_0000, Obj: 4},
	}
	out := roundTrip(t, ins)
	if len(out) != len(ins) {
		t.Fatalf("replayed %d instructions, want %d", len(out), len(ins))
	}
	for i := range ins {
		want := ins[i]
		if want.Kind == cpu.Compute && want.N < 1 {
			want.N = 1
		}
		if out[i] != want {
			t.Errorf("instr %d: got %+v, want %+v", i, out[i], want)
		}
	}
}

func TestRecordFromWorkload(t *testing.T) {
	a := heap.New(heap.Config{})
	app, err := workload.Instantiate(workload.GCC(), a, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	n, err := Record(w, app.Stream(), 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if n != 20_000 {
		t.Fatalf("recorded %d, want 20000", n)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 20_000 {
		t.Errorf("Count = %d", w.Count())
	}
	// Compression sanity: delta+varint should beat 16 bytes/instr easily.
	if perInstr := float64(buf.Len()) / 20_000; perInstr > 8 {
		t.Errorf("trace uses %.1f bytes/instruction; expected compact encoding", perInstr)
	}

	// Replay must equal a fresh generation of the same stream.
	a2 := heap.New(heap.Config{})
	app2, _ := workload.Instantiate(workload.GCC(), a2, 0)
	fresh := app2.Stream()
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20_000; i++ {
		got, ok := r.Next()
		if !ok {
			t.Fatalf("trace ended at %d", i)
		}
		want, _ := fresh.Next()
		if want.Kind == cpu.Compute && want.N < 1 {
			want.N = 1
		}
		if got != want {
			t.Fatalf("instr %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, ok := r.Next(); ok {
		t.Error("trace longer than recorded")
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOTATRACE"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewReader([]byte("MOCA"))); err == nil {
		t.Error("truncated header accepted")
	}
	bad := append([]byte(Magic), 99) // wrong version
	if _, err := NewReader(bytes.NewReader(bad)); err == nil {
		t.Error("wrong version accepted")
	}
	// Unknown opcode after a valid header.
	evil := append([]byte(Magic), 1, 200)
	r, err := NewReader(bytes.NewReader(evil))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Next(); ok {
		t.Error("unknown opcode produced an instruction")
	}
	if r.Err() == nil {
		t.Error("no decode error reported")
	}
}

func TestTruncatedTraceStopsCleanly(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Append(cpu.Instr{Kind: cpu.Load, VAddr: 0x40, Obj: 1})
	w.Close()
	data := buf.Bytes()[:buf.Len()-2] // drop the end marker and a byte
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := r.Next(); !ok {
			break
		}
	}
	// A truncated tail is an error; a clean EOF right at an opcode
	// boundary would not be.
	if r.Err() == nil {
		t.Log("note: truncation landed on an opcode boundary")
	}
}

func TestAppendAfterClose(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Close()
	if err := w.Append(cpu.Instr{Kind: cpu.Compute, N: 1}); err == nil {
		t.Error("append after close accepted")
	}
}

func TestLoopRestartsStream(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := 0; i < 5; i++ {
		w.Append(cpu.Instr{Kind: cpu.Load, VAddr: uint64(i) * 64, Obj: 1})
	}
	w.Close()
	data := buf.Bytes()

	loop := NewLoop(func() (cpu.Stream, error) {
		return NewReader(bytes.NewReader(data))
	})
	var addrs []uint64
	for i := 0; i < 12; i++ {
		in, ok := loop.Next()
		if !ok {
			t.Fatalf("loop ended at %d", i)
		}
		addrs = append(addrs, in.VAddr)
	}
	for i := 0; i < 12; i++ {
		if addrs[i] != uint64(i%5)*64 {
			t.Fatalf("loop sequence wrong at %d: %v", i, addrs)
		}
	}
}

// TestLoopStopsOnDecodeError: a corrupt trace must terminate the loop
// with its decode error, not replay the valid prefix forever.
func TestLoopStopsOnDecodeError(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := 0; i < 3; i++ {
		w.Append(cpu.Instr{Kind: cpu.Load, VAddr: uint64(i) * 64, Obj: 1})
	}
	w.Close()
	data := buf.Bytes()
	// Corrupt the end marker into an unknown opcode: the valid prefix
	// still decodes, then the stream errors instead of ending cleanly.
	data[len(data)-1] = 200

	opens := 0
	loop := NewLoop(func() (cpu.Stream, error) {
		opens++
		return NewReader(bytes.NewReader(data))
	})
	var n int
	for {
		if _, ok := loop.Next(); !ok {
			break
		}
		n++
		if n > 10 {
			t.Fatal("loop replays a corrupt trace forever")
		}
	}
	if n != 3 {
		t.Errorf("decoded %d instructions before the error, want 3", n)
	}
	if loop.Err() == nil {
		t.Error("loop swallowed the decode error")
	}
	if opens != 1 {
		t.Errorf("corrupt stream reopened %d times, want 1", opens)
	}
	// The loop stays terminated.
	if _, ok := loop.Next(); ok {
		t.Error("loop resumed after a terminal error")
	}
}

// TestLoopStopsOnTruncation: a trace cut off mid-record terminates the
// loop with an error rather than restarting.
func TestLoopStopsOnTruncation(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Append(cpu.Instr{Kind: cpu.Load, VAddr: 0x1234_5678, Obj: 7})
	w.Append(cpu.Instr{Kind: cpu.Load, VAddr: 0x9abc_def0, Obj: 9})
	w.Close()
	data := buf.Bytes()[:buf.Len()-3] // cut into the last record's varints

	loop := NewLoop(func() (cpu.Stream, error) {
		return NewReader(bytes.NewReader(data))
	})
	for i := 0; ; i++ {
		if _, ok := loop.Next(); !ok {
			break
		}
		if i > 10 {
			t.Fatal("loop replays a truncated trace forever")
		}
	}
	if loop.Err() == nil {
		t.Error("loop swallowed the truncation error")
	}
}

// TestLoopReportsOpenError: a failing factory must surface its error.
func TestLoopReportsOpenError(t *testing.T) {
	wantErr := bytes.ErrTooLarge // any sentinel
	loop := NewLoop(func() (cpu.Stream, error) {
		return nil, wantErr
	})
	if _, ok := loop.Next(); ok {
		t.Fatal("failed open produced an instruction")
	}
	if err := loop.Err(); err == nil {
		t.Error("loop swallowed the open error")
	}
}

// Property: arbitrary instruction sequences survive the round trip.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(raw []uint32) bool {
		var ins []cpu.Instr
		var lastWasLoad bool
		for _, r := range raw {
			switch r % 3 {
			case 0:
				ins = append(ins, cpu.Instr{Kind: cpu.Compute, N: int32(r%1000) + 1})
				lastWasLoad = false
			case 1:
				ins = append(ins, cpu.Instr{
					Kind: cpu.Load, VAddr: uint64(r) * 13, Obj: uint64(r % 17),
					DependsOnPrev: lastWasLoad && r%2 == 0,
				})
				lastWasLoad = true
			case 2:
				ins = append(ins, cpu.Instr{Kind: cpu.Store, VAddr: uint64(r) * 7, Obj: uint64(r % 5)})
				lastWasLoad = false
			}
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		for _, in := range ins {
			if w.Append(in) != nil {
				return false
			}
		}
		if w.Close() != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		for _, want := range ins {
			got, ok := r.Next()
			if !ok || got != want {
				return false
			}
		}
		_, ok := r.Next()
		return !ok && r.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
