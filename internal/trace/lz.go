package trace

import "encoding/binary"

// lz.go is the dictionary-free LZ codec behind v2 trace blocks. It is a
// byte-oriented LZSS: the encoded stream alternates literal runs and
// back-references, each token a uvarint, with no entropy stage —
// decompression is a straight copy loop that can run allocation-free into
// a caller-owned buffer, which compress/flate cannot offer (its dynamic
// Huffman tables are rebuilt per block even under flate.Resetter).
//
// Encoded layout, repeated until the source is consumed:
//
//	uvarint  litLen     // literal run length (may be 0)
//	[]byte   literals   // litLen bytes copied verbatim
//	uvarint  offset     // back-reference distance, >= 1; absent in the
//	uvarint  matchLen-4 // final token, which is literals-only
//
// The final token is always literals-only (possibly empty): a decoder
// stops when the input is exhausted after a literal run. Matches are at
// least lzMinMatch bytes, found greedily through a 4-byte hash table.
// Trace payloads are delta-varint streams with heavily repeating motifs
// (strided deltas, alternating opcodes), which this captures well without
// any dictionary shared between blocks — every block stays independently
// decodable.

const (
	lzMinMatch = 4
	// lzEmitMatch is the encoder's threshold: shorter matches are legal in
	// the format (down to lzMinMatch) but not worth their decode cost —
	// every token is three varint parses plus a bounded copy, so halving
	// the token count roughly halves decompression time for a few percent
	// of ratio.
	lzEmitMatch = 8
	lzHashBits  = 14
	lzHashSize  = 1 << lzHashBits
)

// lzEncoder holds the match-finder state so repeated compress calls reuse
// one hash table.
type lzEncoder struct {
	table [lzHashSize]int32
}

func lzHash(v uint32) uint32 { return (v * 2654435761) >> (32 - lzHashBits) }

func lzLoad32(b []byte, i int) uint32 {
	return uint32(b[i]) | uint32(b[i+1])<<8 | uint32(b[i+2])<<16 | uint32(b[i+3])<<24
}

// compress appends the LZ encoding of src to dst and returns the extended
// slice. Worst case it expands src by the token overhead; callers compare
// lengths and store incompressible payloads raw.
func (e *lzEncoder) compress(dst, src []byte) []byte {
	for i := range e.table {
		e.table[i] = -1
	}
	lit := 0 // start of the pending literal run
	i := 0
	for i+lzMinMatch <= len(src) {
		h := lzHash(lzLoad32(src, i))
		cand := int(e.table[h])
		e.table[h] = int32(i)
		if cand < 0 || lzLoad32(src, cand) != lzLoad32(src, i) {
			i++
			continue
		}
		mlen := lzMinMatch
		for i+mlen < len(src) && src[cand+mlen] == src[i+mlen] {
			mlen++
		}
		if mlen < lzEmitMatch {
			i++
			continue
		}
		dst = binary.AppendUvarint(dst, uint64(i-lit))
		dst = append(dst, src[lit:i]...)
		dst = binary.AppendUvarint(dst, uint64(i-cand))
		dst = binary.AppendUvarint(dst, uint64(mlen-lzMinMatch))
		i += mlen
		lit = i
	}
	dst = binary.AppendUvarint(dst, uint64(len(src)-lit))
	dst = append(dst, src[lit:]...)
	return dst
}

// lzDecompress appends the decoding of src to dst, refusing to produce
// more than max bytes total, and returns the extended slice. dst must have
// capacity for max bytes so the copy loop never reallocates. Any
// malformed input — truncated tokens, an offset reaching before the
// output, a length overrunning max — returns ErrCorrupt; the function
// never panics and always terminates (every token consumes input).
func lzDecompress(dst, src []byte, max int) ([]byte, error) {
	if cap(dst) < max {
		dst = append(make([]byte, 0, max), dst...)
	}
	// The token uvarints get an inline single-byte fast path — literal
	// runs, offsets, and match lengths are usually short, and this loop is
	// on the block-decode hot path.
	for {
		var litLen uint64
		if len(src) > 0 && src[0] < 0x80 {
			litLen = uint64(src[0])
			src = src[1:]
		} else {
			v, n := binary.Uvarint(src)
			if n <= 0 {
				return dst, ErrCorrupt
			}
			litLen, src = v, src[n:]
		}
		if litLen > uint64(len(src)) || litLen > uint64(max-len(dst)) {
			return dst, ErrCorrupt
		}
		dst = append(dst, src[:litLen]...)
		src = src[litLen:]
		if len(src) == 0 {
			return dst, nil
		}
		var off uint64
		if src[0] < 0x80 {
			off = uint64(src[0])
			src = src[1:]
		} else {
			v, n := binary.Uvarint(src)
			if n <= 0 {
				return dst, ErrCorrupt
			}
			off, src = v, src[n:]
		}
		var ml uint64
		if len(src) > 0 && src[0] < 0x80 {
			ml = uint64(src[0])
			src = src[1:]
		} else {
			v, n := binary.Uvarint(src)
			if n <= 0 {
				return dst, ErrCorrupt
			}
			ml, src = v, src[n:]
		}
		if ml > uint64(max) {
			return dst, ErrCorrupt
		}
		mlen := int(ml) + lzMinMatch
		if off == 0 || off > uint64(len(dst)) || mlen > max-len(dst) {
			return dst, ErrCorrupt
		}
		pos := len(dst) - int(off)
		out := len(dst)
		dst = dst[:out+mlen]
		if int(off) >= mlen {
			copy(dst[out:], dst[pos:pos+mlen])
		} else {
			// Overlapping copy (run-length style): each pass's source ends
			// where its destination begins, so plain copy is safe and the
			// copied span doubles per pass.
			for end := out + mlen; out < end; {
				out += copy(dst[out:end], dst[pos:out])
			}
		}
	}
}
