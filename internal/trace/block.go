package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"moca/internal/cpu"
)

// block.go is trace format v2: the same delta/varint instruction encoding
// as v1, framed into independently decodable blocks. The file opens with
// the shared magic and a version byte of 2, then carries a sequence of
// block frames and one end frame:
//
//	byte    0xB2       block marker
//	uvarint seq        stream index of the block's first item
//	uvarint count      items in the block (>= 1)
//	uvarint rawLen     uncompressed payload bytes
//	uvarint compLen    stored payload bytes
//	byte    method     0 = raw, 1 = LZ (lz.go)
//	u32le   checksum   CRC-32C (Castagnoli) of the uncompressed payload
//	[]byte  payload    compLen bytes
//
//	byte    0xE2       end marker
//	uvarint total      total items in the trace (== the final seq)
//
// The delta state (last address, last object) resets at every block
// boundary, so a block decodes with no context beyond its own bytes: a
// reader can seek to any recorded Position{ByteOff, Seq} and resume
// without replaying the prefix, and a remote peer can decode block frames
// shipped individually over the wire. Within a block the item encoding is
// exactly v1's opcode + varint scheme (minus the end opcode; count bounds
// the decode).
const (
	version2 = 2

	blockMarker = 0xB2
	endMarker   = 0xE2

	methodRaw = 0
	methodLZ  = 1

	headerLen = len(Magic) + 1

	// Hostile-input bounds: a decoder never allocates more than one
	// block's worth of buffers, whatever a corrupt header claims.
	maxBlockItems = 1 << 20
	maxBlockBytes = 1 << 24

	defaultBlockItems = 16 << 10
	defaultBlockBytes = 256 << 10
)

// Typed decode errors for the block format. They surface through
// BlockReader.Err (and therefore through Loop.Err) wrapped with position
// context; match with errors.Is.
var (
	// ErrCorrupt: a block frame is structurally invalid — bad marker,
	// absurd header fields, discontinuous sequence numbers, a truncated or
	// malformed payload.
	ErrCorrupt = errors.New("trace: corrupt block")
	// ErrChecksum: a block decoded structurally but its payload fails the
	// CRC — the trace bytes were damaged in storage or transit.
	ErrChecksum = errors.New("trace: block checksum mismatch")
	// ErrBadPosition: a Position handed to OpenBlockReaderAt or SkipTo
	// does not name a block boundary of this trace.
	ErrBadPosition = errors.New("trace: position is not a block boundary")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Position identifies a block boundary in a v2 trace: the file offset of
// the block's marker byte and the stream index of its first item. The
// zero Position means the start of the trace. Positions are produced by
// BlockWriter.Pos, BlockScanner, and BlockReader, and consumed by
// OpenBlockReaderAt — resuming there replays exactly the items from Seq
// onward, with no prefix decode.
type Position struct {
	ByteOff uint64
	Seq     uint64
}

// IsZero reports whether p is the zero (start-of-trace) position.
func (p Position) IsZero() bool { return p.ByteOff == 0 && p.Seq == 0 }

// item encoding (shared with v1, block-local delta state)

// appendItem appends the v1 opcode+varint encoding of in, delta-encoding
// addresses and objects against (*lastAddr, *lastObj).
func appendItem(dst []byte, in cpu.Instr, lastAddr, lastObj *uint64) ([]byte, error) {
	switch in.Kind {
	case cpu.Compute:
		n := in.N
		if n < 1 {
			n = 1
		}
		dst = append(dst, opCompute)
		dst = binary.AppendUvarint(dst, uint64(n))
	case cpu.Load, cpu.Store:
		op := byte(opStore)
		if in.Kind == cpu.Load {
			if in.DependsOnPrev {
				op = opLoadDep
			} else {
				op = opLoad
			}
		}
		dst = append(dst, op)
		dst = binary.AppendVarint(dst, int64(in.VAddr)-int64(*lastAddr))
		dst = binary.AppendVarint(dst, int64(in.Obj)-int64(*lastObj))
		*lastAddr, *lastObj = in.VAddr, in.Obj
	default:
		return dst, fmt.Errorf("trace: unknown instruction kind %d", in.Kind)
	}
	return dst, nil
}

// decodeItems decodes exactly len(dst) items from data into dst, with the
// block-local delta state starting at zero. The payload must be consumed
// exactly; anything else is ErrCorrupt.
//
// The varint decodes are open-coded with 1- and 2-byte fast paths:
// block-local deltas keep most values that short, and a call into
// binary.Uvarint per field would dominate the per-item cost (this loop
// feeds the simulator's batch refill, so its speed is the v2 replay
// rate).
//
//moca:hotpath
func decodeItems(data []byte, dst []cpu.Instr) error {
	var lastAddr, lastObj uint64
	p := 0
	for i := range dst {
		if p >= len(data) {
			return ErrCorrupt
		}
		op := data[p]
		p++
		if op == opCompute {
			var n uint64
			if p < len(data) && data[p] < 0x80 {
				n = uint64(data[p])
				p++
			} else {
				v, w := binary.Uvarint(data[p:])
				if w <= 0 {
					return ErrCorrupt
				}
				n, p = v, p+w
			}
			if n < 1 {
				n = 1
			}
			if n > 1<<30 {
				return ErrCorrupt
			}
			dst[i] = cpu.Instr{Kind: cpu.Compute, N: int32(n)}
			continue
		}
		if op > opStore {
			return ErrCorrupt
		}
		var uAddr, uObj uint64
		if p+7 < len(data) {
			if c := data[p]; c < 0x80 {
				uAddr = uint64(c)
				p++
			} else if c1 := data[p+1]; c1 < 0x80 {
				uAddr = uint64(c&0x7f) | uint64(c1)<<7
				p += 2
			} else if c2 := data[p+2]; c2 < 0x80 {
				uAddr = uint64(c&0x7f) | uint64(c1&0x7f)<<7 | uint64(c2)<<14
				p += 3
			} else if c3 := data[p+3]; c3 < 0x80 {
				uAddr = uint64(c&0x7f) | uint64(c1&0x7f)<<7 | uint64(c2&0x7f)<<14 | uint64(c3)<<21
				p += 4
			} else if c4 := data[p+4]; c4 < 0x80 {
				// Heap-spanning deltas zigzag into 5-7 byte varints; keeping
				// them on the open-coded path matters for pointer-chasing
				// traces (mcf), whose strides cover the whole arena.
				uAddr = uint64(c&0x7f) | uint64(c1&0x7f)<<7 | uint64(c2&0x7f)<<14 |
					uint64(c3&0x7f)<<21 | uint64(c4)<<28
				p += 5
			} else if c5 := data[p+5]; c5 < 0x80 {
				uAddr = uint64(c&0x7f) | uint64(c1&0x7f)<<7 | uint64(c2&0x7f)<<14 |
					uint64(c3&0x7f)<<21 | uint64(c4&0x7f)<<28 | uint64(c5)<<35
				p += 6
			} else if c6 := data[p+6]; c6 < 0x80 {
				uAddr = uint64(c&0x7f) | uint64(c1&0x7f)<<7 | uint64(c2&0x7f)<<14 |
					uint64(c3&0x7f)<<21 | uint64(c4&0x7f)<<28 | uint64(c5&0x7f)<<35 |
					uint64(c6)<<42
				p += 7
			} else {
				v, w := binary.Uvarint(data[p:])
				if w <= 0 {
					return ErrCorrupt
				}
				uAddr, p = v, p+w
			}
		} else {
			v, w := binary.Uvarint(data[p:])
			if w <= 0 {
				return ErrCorrupt
			}
			uAddr, p = v, p+w
		}
		if p+1 < len(data) && data[p] < 0x80 {
			uObj = uint64(data[p])
			p++
		} else if p+2 < len(data) && data[p+1] < 0x80 {
			uObj = uint64(data[p]&0x7f) | uint64(data[p+1])<<7
			p += 2
		} else {
			v, w := binary.Uvarint(data[p:])
			if w <= 0 {
				return ErrCorrupt
			}
			uObj, p = v, p+w
		}
		// Zigzag-decode the deltas (binary.Varint's wire format).
		lastAddr += uint64(int64(uAddr>>1) ^ -int64(uAddr&1))
		lastObj += uint64(int64(uObj>>1) ^ -int64(uObj&1))
		// Branchless opcode mapping: opLoad(1) and opLoadDep(2) both fold
		// to cpu.Load(1), opStore(3) to cpu.Store(2) — see the compile-time
		// guards below the function.
		dst[i] = cpu.Instr{
			Kind:          cpu.Kind((op + 1) >> 1),
			DependsOnPrev: op == opLoadDep,
			VAddr:         lastAddr,
			Obj:           lastObj,
		}
	}
	if p != len(data) {
		return ErrCorrupt
	}
	return nil
}

// Compile-time guards for decodeItems's branchless opcode-to-kind
// mapping: (op+1)>>1 must take opLoad and opLoadDep to cpu.Load and
// opStore to cpu.Store.
var (
	_ = [1]struct{}{}[(opLoad+1)>>1-int(cpu.Load)]
	_ = [1]struct{}{}[(opLoadDep+1)>>1-int(cpu.Load)]
	_ = [1]struct{}{}[(opStore+1)>>1-int(cpu.Store)]
)

// BlockWriter

// BlockWriter streams instructions to a v2 block trace. Blocks are cut at
// an item-count or raw-byte threshold, compressed when compression helps,
// and written as one Write each; Close appends the end frame.
type BlockWriter struct {
	w      io.Writer
	closed bool

	off      uint64 // file offset of the next byte to be written
	seq      uint64 // total items appended (== next block's first seq)
	blockSeq uint64 // first seq of the open block

	itemLimit int
	byteLimit int

	raw      []byte // open block's uncompressed item encoding
	count    uint64 // items in the open block
	lastAddr uint64
	lastObj  uint64

	frame []byte // assembled frame scratch (header + payload)
	comp  []byte // compression scratch
	enc   lzEncoder
}

// NewBlockWriter writes the v2 header and returns a writer with the
// default block thresholds (16Ki items or 256 KiB raw, whichever first).
func NewBlockWriter(w io.Writer) (*BlockWriter, error) {
	return NewBlockWriterSize(w, 0, 0)
}

// NewBlockWriterSize is NewBlockWriter with explicit block thresholds
// (items, rawBytes; zero or negative selects the default). Small blocks
// seek finer but compress worse.
func NewBlockWriterSize(w io.Writer, items, rawBytes int) (*BlockWriter, error) {
	if items <= 0 {
		items = defaultBlockItems
	}
	if items > maxBlockItems {
		items = maxBlockItems
	}
	if rawBytes <= 0 {
		rawBytes = defaultBlockBytes
	}
	bw := &BlockWriter{w: w, itemLimit: items, byteLimit: rawBytes}
	if err := bw.writeHeader(); err != nil {
		return nil, err
	}
	return bw, nil
}

func (b *BlockWriter) writeHeader() error {
	var hdr [headerLen]byte
	copy(hdr[:], Magic)
	hdr[len(Magic)] = version2
	if _, err := b.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	b.off = uint64(headerLen)
	return nil
}

// Reset discards all writer state and starts a fresh trace on w.
func (b *BlockWriter) Reset(w io.Writer) error {
	b.w = w
	b.closed = false
	b.seq, b.blockSeq = 0, 0
	b.raw = b.raw[:0]
	b.count = 0
	b.lastAddr, b.lastObj = 0, 0
	return b.writeHeader()
}

// Append records one instruction, cutting a block when a threshold is
// reached.
func (b *BlockWriter) Append(in cpu.Instr) error {
	if b.closed {
		return fmt.Errorf("trace: append after Close")
	}
	var err error
	b.raw, err = appendItem(b.raw, in, &b.lastAddr, &b.lastObj)
	if err != nil {
		return err
	}
	b.count++
	b.seq++
	if b.count >= uint64(b.itemLimit) || len(b.raw) >= b.byteLimit {
		return b.Flush()
	}
	return nil
}

// Count returns the number of recorded items.
func (b *BlockWriter) Count() uint64 { return b.seq }

// Pos returns the position of the next block boundary. After Flush (or
// before any Append since the last one) it is a durable resume point.
func (b *BlockWriter) Pos() Position { return Position{ByteOff: b.off, Seq: b.blockSeq + b.count} }

// Flush cuts the open block, if any, ending it early. Mid-stream flushes
// only affect framing granularity, never the decoded instruction stream.
func (b *BlockWriter) Flush() error {
	if b.count == 0 {
		return nil
	}
	payload := b.raw
	method := byte(methodRaw)
	b.comp = b.enc.compress(b.comp[:0], b.raw)
	if len(b.comp) < len(b.raw) {
		payload, method = b.comp, methodLZ
	}
	f := b.frame[:0]
	f = append(f, blockMarker)
	f = binary.AppendUvarint(f, b.blockSeq)
	f = binary.AppendUvarint(f, b.count)
	f = binary.AppendUvarint(f, uint64(len(b.raw)))
	f = binary.AppendUvarint(f, uint64(len(payload)))
	f = append(f, method)
	f = binary.LittleEndian.AppendUint32(f, crc32.Checksum(b.raw, castagnoli))
	f = append(f, payload...)
	b.frame = f
	if _, err := b.w.Write(f); err != nil {
		return fmt.Errorf("trace: writing block: %w", err)
	}
	b.off += uint64(len(f))
	b.blockSeq += b.count
	b.count = 0
	b.raw = b.raw[:0]
	b.lastAddr, b.lastObj = 0, 0
	return nil
}

// Close flushes the open block and writes the end frame.
func (b *BlockWriter) Close() error {
	if b.closed {
		return nil
	}
	if err := b.Flush(); err != nil {
		return err
	}
	b.closed = true
	f := b.frame[:0]
	f = append(f, endMarker)
	f = binary.AppendUvarint(f, b.seq)
	b.frame = f
	if _, err := b.w.Write(f); err != nil {
		return fmt.Errorf("trace: writing end frame: %w", err)
	}
	b.off += uint64(len(f))
	return nil
}

// blockSource: counted reads over a bufio.Reader

// blockSource reads from a bufio.Reader while tracking the logical file
// offset of every consumed byte (bufio's read-ahead is invisible to it)
// and optionally capturing consumed bytes into a frame buffer.
type blockSource struct {
	br  *bufio.Reader
	off uint64
	cap *[]byte // when non-nil, consumed bytes are appended here
}

func (s *blockSource) ReadByte() (byte, error) {
	c, err := s.br.ReadByte()
	if err != nil {
		return 0, err
	}
	s.off++
	if s.cap != nil {
		*s.cap = append(*s.cap, c)
	}
	return c, nil
}

func (s *blockSource) readFull(p []byte) error {
	if _, err := io.ReadFull(s.br, p); err != nil {
		return err
	}
	s.off += uint64(len(p))
	if s.cap != nil {
		*s.cap = append(*s.cap, p...)
	}
	return nil
}

func (s *blockSource) discard(n int) error {
	d, err := s.br.Discard(n)
	s.off += uint64(d)
	return err
}

// uvarint reads one uvarint, mapping every fault (truncation, overflow)
// to ErrCorrupt.
func (s *blockSource) uvarint() (uint64, error) {
	v, err := binary.ReadUvarint(s)
	if err != nil {
		return 0, ErrCorrupt
	}
	return v, nil
}

// blockHdr is one parsed block frame header.
type blockHdr struct {
	pos     Position
	count   uint64
	rawLen  uint64
	compLen uint64
	method  byte
	crc     uint32
}

func (h blockHdr) validate() error {
	if h.count == 0 || h.count > maxBlockItems {
		return ErrCorrupt
	}
	if h.rawLen == 0 || h.rawLen > maxBlockBytes {
		return ErrCorrupt
	}
	switch h.method {
	case methodRaw:
		if h.compLen != h.rawLen {
			return ErrCorrupt
		}
	case methodLZ:
		if h.compLen == 0 || h.compLen >= h.rawLen {
			return ErrCorrupt
		}
	default:
		return ErrCorrupt
	}
	return nil
}

// readHdr parses the header fields following a block marker already
// consumed at offset pos.ByteOff.
func (s *blockSource) readHdr(start uint64) (blockHdr, error) {
	var h blockHdr
	var err error
	h.pos.ByteOff = start
	if h.pos.Seq, err = s.uvarint(); err != nil {
		return h, err
	}
	if h.count, err = s.uvarint(); err != nil {
		return h, err
	}
	if h.rawLen, err = s.uvarint(); err != nil {
		return h, err
	}
	if h.compLen, err = s.uvarint(); err != nil {
		return h, err
	}
	if h.method, err = s.ReadByte(); err != nil {
		return h, ErrCorrupt
	}
	// Byte-wise little-endian read: a [4]byte here would escape through
	// io.ReadFull and put one allocation on every block load.
	for i := 0; i < 32; i += 8 {
		c, err := s.ReadByte()
		if err != nil {
			return h, ErrCorrupt
		}
		h.crc |= uint32(c) << i
	}
	return h, h.validate()
}

// readFileHeader consumes and validates the 9-byte file header, returning
// the version byte.
func readFileHeader(s *blockSource) (byte, error) {
	// Byte-wise read: a heap header buffer here would cost an allocation
	// on every reader Reset (looping replay resets once per pass).
	var hdr [headerLen]byte
	for i := range hdr {
		c, err := s.ReadByte()
		if err != nil {
			return 0, fmt.Errorf("trace: reading header: %w", err)
		}
		hdr[i] = c
	}
	if string(hdr[:len(Magic)]) != Magic {
		// Copy before formatting: handing hdr itself to fmt would make the
		// array escape and allocate on the no-error path too.
		bad := string(hdr[:len(Magic)])
		return 0, fmt.Errorf("trace: bad magic %q", bad)
	}
	return hdr[len(Magic)], nil
}

// BlockDecoder

// BlockDecoder decodes standalone block frames (as captured by a
// BlockScanner or shipped over the wire) into a reusable instruction
// arena. The zero value is ready to use; it is not safe for concurrent
// use.
type BlockDecoder struct {
	raw   []byte
	arena []cpu.Instr
}

// decode decompresses, checksums, and decodes one block payload. The
// returned slice aliases the decoder's arena: valid until the next call.
func (d *BlockDecoder) decode(h blockHdr, payload []byte) ([]cpu.Instr, error) {
	data := payload
	if h.method == methodLZ {
		if cap(d.raw) < int(h.rawLen) {
			d.raw = make([]byte, 0, int(h.rawLen))
		}
		var err error
		d.raw, err = lzDecompress(d.raw[:0], payload, int(h.rawLen))
		if err != nil {
			return nil, err
		}
		if uint64(len(d.raw)) != h.rawLen {
			return nil, ErrCorrupt
		}
		data = d.raw
	}
	if crc32.Checksum(data, castagnoli) != h.crc {
		return nil, ErrChecksum
	}
	if cap(d.arena) < int(h.count) {
		d.arena = make([]cpu.Instr, int(h.count))
	}
	arena := d.arena[:h.count]
	if err := decodeItems(data, arena); err != nil {
		return nil, err
	}
	return arena, nil
}

// DecodeFrame decodes one complete block frame (marker through payload).
// expectSeq is the stream index the block must start at — a peer feeding
// a simulation uses it to enforce gap-free, duplicate-free delivery. The
// returned items alias the decoder's arena and are valid until the next
// call.
func (d *BlockDecoder) DecodeFrame(frame []byte, expectSeq uint64) ([]cpu.Instr, error) {
	if len(frame) == 0 || frame[0] != blockMarker {
		return nil, ErrCorrupt
	}
	p := 1
	var fields [4]uint64
	for i := range fields {
		v, w := binary.Uvarint(frame[p:])
		if w <= 0 {
			return nil, ErrCorrupt
		}
		fields[i] = v
		p += w
	}
	if len(frame) < p+5 {
		return nil, ErrCorrupt
	}
	h := blockHdr{
		pos:     Position{Seq: fields[0]},
		count:   fields[1],
		rawLen:  fields[2],
		compLen: fields[3],
		method:  frame[p],
		crc:     binary.LittleEndian.Uint32(frame[p+1 : p+5]),
	}
	p += 5
	if err := h.validate(); err != nil {
		return nil, err
	}
	if h.pos.Seq != expectSeq {
		return nil, fmt.Errorf("%w: block starts at item %d, expected %d", ErrCorrupt, h.pos.Seq, expectSeq)
	}
	if uint64(len(frame)-p) != h.compLen {
		return nil, ErrCorrupt
	}
	return d.decode(h, frame[p:])
}

// BlockReader

// BlockReader replays a v2 trace as a cpu.Stream. Each block is decoded
// whole into a reusable arena — Next and Refill are array reads in the
// steady state, with zero allocations once the buffers have grown to the
// trace's block size. It also implements cpu.BatchStream, letting a core
// pull whole slices per refill instead of one instruction per call.
type BlockReader struct {
	src  blockSource
	dec  BlockDecoder
	comp []byte // stored-payload buffer

	arena    []cpu.Instr
	idx, n   int
	blockSeq uint64 // stream index of arena[0]
	nextSeq  uint64 // stream index after the current block
	blockPos Position

	done bool
	err  error
}

// NewBlockReader validates the v2 header and returns a replay stream
// positioned at the first block.
func NewBlockReader(r io.Reader) (*BlockReader, error) {
	src := blockSource{br: bufio.NewReader(r)}
	ver, err := readFileHeader(&src)
	if err != nil {
		return nil, err
	}
	if ver != version2 {
		return nil, fmt.Errorf("trace: version %d trace, want %d (use Open for version dispatch)", ver, version2)
	}
	return &BlockReader{src: src}, nil
}

// Reset rewires the reader to a fresh trace stream, revalidating the
// header while keeping every decode buffer — a looping replay allocates
// only on its first pass.
func (b *BlockReader) Reset(r io.Reader) error {
	b.src.br.Reset(r)
	b.src.off = 0
	ver, err := readFileHeader(&b.src)
	if err != nil {
		return err
	}
	if ver != version2 {
		return fmt.Errorf("trace: version %d trace, want %d", ver, version2)
	}
	b.idx, b.n = 0, 0
	b.blockSeq, b.nextSeq = 0, 0
	b.blockPos = Position{}
	b.done, b.err = false, nil
	return nil
}

// Err returns the decode error that terminated the stream, if any. A
// checksum or framing fault mid-trace surfaces here (wrapped around
// ErrChecksum / ErrCorrupt with the block's position); clean end-of-trace
// leaves it nil.
func (b *BlockReader) Err() error { return b.err }

// BlockPos returns the position of the block currently being replayed.
func (b *BlockReader) BlockPos() Position { return b.blockPos }

// NextPos returns the position of the next undecoded block boundary: the
// resume point covering everything decoded so far.
func (b *BlockReader) NextPos() Position {
	return Position{ByteOff: b.src.off, Seq: b.nextSeq}
}

// Next implements cpu.Stream.
//
//moca:hotpath
func (b *BlockReader) Next() (cpu.Instr, bool) {
	if b.idx < b.n {
		in := b.arena[b.idx]
		b.idx++
		return in, true
	}
	return b.nextSlow()
}

func (b *BlockReader) nextSlow() (cpu.Instr, bool) {
	if !b.loadBlock() {
		return cpu.Instr{}, false
	}
	b.idx = 1
	return b.arena[0], true
}

// Refill implements cpu.BatchStream: it copies as many pending
// instructions as fit into dst, loading the next block when the arena is
// drained. A return of 0 means end of stream.
//
//moca:hotpath
func (b *BlockReader) Refill(dst []cpu.Instr) int {
	n := copy(dst, b.arena[b.idx:b.n])
	b.idx += n
	if n > 0 {
		return n
	}
	return b.refillSlow(dst)
}

func (b *BlockReader) refillSlow(dst []cpu.Instr) int {
	if len(dst) == 0 || !b.loadBlock() {
		return 0
	}
	n := copy(dst, b.arena[:b.n])
	b.idx = n
	return n
}

// NextBatch implements cpu.BorrowStream: it returns the undelivered
// remainder of the current block straight out of the decode arena —
// zero-copy — loading the next block when drained. The slice is valid
// until the next NextBatch, Next, Refill, or Reset call. An empty return
// means end of stream.
//
//moca:hotpath
func (b *BlockReader) NextBatch() []cpu.Instr {
	if b.idx == b.n && !b.loadBlock() {
		return nil
	}
	out := b.arena[b.idx:b.n]
	b.idx = b.n
	return out
}

func (b *BlockReader) fail(err error) bool {
	b.done = true
	b.err = err
	return false
}

// loadBlock reads and decodes the next block into the arena, returning
// false at clean end-of-trace or on error (recorded in b.err).
func (b *BlockReader) loadBlock() bool {
	if b.done {
		return false
	}
	start := b.src.off
	marker, err := b.src.ReadByte()
	if err != nil {
		return b.fail(fmt.Errorf("%w: offset %d: missing end frame: %v", ErrCorrupt, start, err))
	}
	switch marker {
	case endMarker:
		total, err := b.src.uvarint()
		if err != nil || total != b.nextSeq {
			return b.fail(fmt.Errorf("%w: offset %d: bad end frame", ErrCorrupt, start))
		}
		b.done = true
		return false
	case blockMarker:
		h, err := b.src.readHdr(start)
		if err != nil {
			return b.fail(fmt.Errorf("%w: block at offset %d", err, start))
		}
		if h.pos.Seq != b.nextSeq {
			return b.fail(fmt.Errorf("%w: block at offset %d starts at item %d, expected %d", ErrCorrupt, start, h.pos.Seq, b.nextSeq))
		}
		if cap(b.comp) < int(h.compLen) {
			b.comp = make([]byte, int(h.compLen))
		}
		payload := b.comp[:h.compLen]
		if err := b.src.readFull(payload); err != nil {
			return b.fail(fmt.Errorf("%w: block at offset %d: truncated payload: %v", ErrCorrupt, start, err))
		}
		items, err := b.dec.decode(h, payload)
		if err != nil {
			return b.fail(fmt.Errorf("%w: block at offset %d (items %d..%d)", err, start, h.pos.Seq, h.pos.Seq+h.count-1))
		}
		b.arena = items
		b.idx, b.n = 0, len(items)
		b.blockSeq = h.pos.Seq
		b.nextSeq = h.pos.Seq + h.count
		b.blockPos = h.pos
		return true
	default:
		return b.fail(fmt.Errorf("%w: offset %d: bad block marker 0x%02x", ErrCorrupt, start, marker))
	}
}

// SkipTo advances the reader (forward only) so the next item returned is
// stream item seq. Whole blocks before the target are skipped by header,
// without decompressing or decoding their payloads. Seeking to the exact
// end of the trace is valid and leaves the reader cleanly exhausted;
// anything past it, or behind items already consumed, is ErrBadPosition.
func (b *BlockReader) SkipTo(seq uint64) error {
	if b.n > 0 && seq >= b.blockSeq && seq < b.nextSeq {
		b.idx = int(seq - b.blockSeq)
		return nil
	}
	if seq < b.nextSeq {
		return fmt.Errorf("%w: item %d is behind the reader (next undecoded item %d)", ErrBadPosition, seq, b.nextSeq)
	}
	for {
		if b.done {
			if b.err == nil && seq == b.nextSeq {
				return nil
			}
			if b.err != nil {
				return b.err
			}
			return fmt.Errorf("%w: item %d is past the end of the trace (%d items)", ErrBadPosition, seq, b.nextSeq)
		}
		start := b.src.off
		marker, err := b.src.ReadByte()
		if err != nil {
			b.fail(fmt.Errorf("%w: offset %d: missing end frame: %v", ErrCorrupt, start, err))
			return b.err
		}
		switch marker {
		case endMarker:
			total, err := b.src.uvarint()
			if err != nil || total != b.nextSeq {
				b.fail(fmt.Errorf("%w: offset %d: bad end frame", ErrCorrupt, start))
				return b.err
			}
			b.done = true
		case blockMarker:
			h, err := b.src.readHdr(start)
			if err != nil || h.pos.Seq != b.nextSeq {
				b.fail(fmt.Errorf("%w: block at offset %d", ErrCorrupt, start))
				return b.err
			}
			if seq >= h.pos.Seq+h.count {
				// Entirely before the target: skip the payload bytes.
				if err := b.src.discard(int(h.compLen)); err != nil {
					b.fail(fmt.Errorf("%w: block at offset %d: truncated payload: %v", ErrCorrupt, start, err))
					return b.err
				}
				b.nextSeq = h.pos.Seq + h.count
				continue
			}
			if cap(b.comp) < int(h.compLen) {
				b.comp = make([]byte, int(h.compLen))
			}
			payload := b.comp[:h.compLen]
			if err := b.src.readFull(payload); err != nil {
				b.fail(fmt.Errorf("%w: block at offset %d: truncated payload: %v", ErrCorrupt, start, err))
				return b.err
			}
			items, err := b.dec.decode(h, payload)
			if err != nil {
				b.fail(fmt.Errorf("%w: block at offset %d", err, start))
				return b.err
			}
			b.arena = items
			b.n = len(items)
			b.idx = int(seq - h.pos.Seq)
			b.blockSeq = h.pos.Seq
			b.nextSeq = h.pos.Seq + h.count
			b.blockPos = h.pos
			return nil
		default:
			b.fail(fmt.Errorf("%w: offset %d: bad block marker 0x%02x", ErrCorrupt, start, marker))
			return b.err
		}
	}
}

// OpenBlockReaderAt opens a v2 trace at a recorded Position: the header
// is validated, the reader seeks straight to pos.ByteOff, and the block
// there is decoded eagerly so a garbage position fails here (with
// ErrBadPosition) instead of mid-replay. The zero Position opens at the
// first block.
func OpenBlockReaderAt(rs io.ReadSeeker, pos Position) (*BlockReader, error) {
	if _, err := rs.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	src := blockSource{br: bufio.NewReader(rs)}
	ver, err := readFileHeader(&src)
	if err != nil {
		return nil, err
	}
	if ver != version2 {
		return nil, fmt.Errorf("trace: version %d trace, want %d", ver, version2)
	}
	if pos.IsZero() {
		pos.ByteOff = uint64(headerLen)
	}
	if pos.ByteOff < uint64(headerLen) {
		return nil, fmt.Errorf("%w: byte offset %d is inside the file header", ErrBadPosition, pos.ByteOff)
	}
	if _, err := rs.Seek(int64(pos.ByteOff), io.SeekStart); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadPosition, err)
	}
	src.br.Reset(rs)
	src.off = pos.ByteOff
	b := &BlockReader{src: src}
	b.nextSeq = pos.Seq
	b.blockSeq = pos.Seq
	if !b.loadBlock() && b.err != nil {
		return nil, fmt.Errorf("%w: offset %d seq %d: %v", ErrBadPosition, pos.ByteOff, pos.Seq, b.err)
	}
	return b, nil
}

// BlockScanner

// BlockInfo describes one scanned block frame.
type BlockInfo struct {
	Pos     Position
	Count   uint64
	RawLen  uint64
	CompLen uint64
	Method  byte
	CRC     uint32
}

// BlockScanner iterates a v2 trace block by block without decoding
// payloads, exposing each frame's header and raw bytes — the transport
// view of a trace. moca-trace inspect and the wire trace-streaming client
// are built on it.
type BlockScanner struct {
	src     blockSource
	frame   []byte
	info    BlockInfo
	nextSeq uint64
	total   uint64
	end     bool
	err     error
}

// NewBlockScanner validates the v2 header and returns a scanner
// positioned before the first block.
func NewBlockScanner(r io.Reader) (*BlockScanner, error) {
	src := blockSource{br: bufio.NewReader(r)}
	ver, err := readFileHeader(&src)
	if err != nil {
		return nil, err
	}
	if ver != version2 {
		return nil, fmt.Errorf("trace: version %d trace, want %d", ver, version2)
	}
	return &BlockScanner{src: src}, nil
}

// NewBlockScannerAt is NewBlockScanner resuming at a recorded Position:
// scanning continues with the block at pos, skipping everything before it
// without reading it.
func NewBlockScannerAt(rs io.ReadSeeker, pos Position) (*BlockScanner, error) {
	s, err := NewBlockScanner(rs)
	if err != nil {
		return nil, err
	}
	if pos.IsZero() {
		return s, nil
	}
	if pos.ByteOff < uint64(headerLen) {
		return nil, fmt.Errorf("%w: byte offset %d is inside the file header", ErrBadPosition, pos.ByteOff)
	}
	if _, err := rs.Seek(int64(pos.ByteOff), io.SeekStart); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadPosition, err)
	}
	s.src.br.Reset(rs)
	s.src.off = pos.ByteOff
	s.nextSeq = pos.Seq
	return s, nil
}

// Scan advances to the next block, returning false at the end frame or on
// error (check Err; nil means clean end).
func (s *BlockScanner) Scan() bool {
	if s.end || s.err != nil {
		return false
	}
	start := s.src.off
	s.frame = s.frame[:0]
	s.src.cap = &s.frame
	defer func() { s.src.cap = nil }()
	marker, err := s.src.ReadByte()
	if err != nil {
		s.err = fmt.Errorf("%w: offset %d: missing end frame: %v", ErrCorrupt, start, err)
		return false
	}
	switch marker {
	case endMarker:
		total, err := s.src.uvarint()
		if err != nil || total != s.nextSeq {
			s.err = fmt.Errorf("%w: offset %d: bad end frame", ErrCorrupt, start)
			return false
		}
		s.total = total
		s.end = true
		return false
	case blockMarker:
		h, err := s.src.readHdr(start)
		if err != nil {
			s.err = fmt.Errorf("%w: block at offset %d", err, start)
			return false
		}
		if h.pos.Seq != s.nextSeq {
			s.err = fmt.Errorf("%w: block at offset %d starts at item %d, expected %d", ErrCorrupt, start, h.pos.Seq, s.nextSeq)
			return false
		}
		need := len(s.frame) + int(h.compLen)
		if cap(s.frame) < need {
			grown := make([]byte, len(s.frame), need)
			copy(grown, s.frame)
			s.frame = grown
		}
		payload := s.frame[len(s.frame):need]
		s.src.cap = nil // readFull writes straight into the frame buffer
		if err := s.src.readFull(payload); err != nil {
			s.err = fmt.Errorf("%w: block at offset %d: truncated payload: %v", ErrCorrupt, start, err)
			return false
		}
		s.frame = s.frame[:need]
		s.info = BlockInfo{Pos: h.pos, Count: h.count, RawLen: h.rawLen, CompLen: h.compLen, Method: h.method, CRC: h.crc}
		s.nextSeq = h.pos.Seq + h.count
		return true
	default:
		s.err = fmt.Errorf("%w: offset %d: bad block marker 0x%02x", ErrCorrupt, start, marker)
		return false
	}
}

// Info describes the current block (valid after a true Scan).
func (s *BlockScanner) Info() BlockInfo { return s.info }

// Frame returns the current block's complete frame bytes (marker through
// payload), valid until the next Scan.
func (s *BlockScanner) Frame() []byte { return s.frame }

// NextPos returns the position following the current block: the resume
// point acknowledging everything scanned so far.
func (s *BlockScanner) NextPos() Position {
	return Position{ByteOff: s.src.off, Seq: s.nextSeq}
}

// Total returns the trace's item count, valid once Scan has returned
// false at a clean end frame.
func (s *BlockScanner) Total() (uint64, bool) { return s.total, s.end }

// Err returns the error that stopped the scan, nil at clean end.
func (s *BlockScanner) Err() error { return s.err }

// version dispatch

// ReplayStream is a trace replay source: a cpu.Stream whose Err
// distinguishes clean end-of-trace from a decode fault. *Reader (v1),
// *BlockReader (v2), and *Loop all implement it.
type ReplayStream interface {
	cpu.Stream
	Err() error
}

var (
	_ ReplayStream = (*Reader)(nil)
	_ ReplayStream = (*BlockReader)(nil)
	_ ReplayStream = (*Loop)(nil)
	_ cpu.BatchStream = (*BlockReader)(nil)
)

// Open opens a trace of either version for replay, dispatching on the
// header's version byte: v1 traces stream through Reader, v2 traces
// through BlockReader.
func Open(r io.Reader) (ReplayStream, error) {
	br := bufio.NewReader(r)
	src := blockSource{br: br}
	ver, err := readFileHeader(&src)
	if err != nil {
		return nil, err
	}
	switch ver {
	case version:
		return &Reader{r: br}, nil
	case version2:
		return &BlockReader{src: src}, nil
	default:
		return nil, fmt.Errorf("trace: unsupported version %d", ver)
	}
}

// Copy drains src into dst, converting between trace versions (or
// re-framing a v2 trace with different block thresholds). It stops at
// stream end and returns the number of items copied; the caller closes
// dst. When src is a ReplayStream, a decode error surfaces as Copy's
// error rather than a silent short copy.
func Copy(dst Appender, src cpu.Stream) (uint64, error) {
	var n uint64
	for {
		in, ok := src.Next()
		if !ok {
			break
		}
		if err := dst.Append(in); err != nil {
			return n, err
		}
		n++
	}
	if rs, ok := src.(ReplayStream); ok {
		if err := rs.Err(); err != nil {
			return n, err
		}
	}
	return n, nil
}
