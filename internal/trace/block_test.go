package trace

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"moca/internal/cpu"
)

// genItems builds a deterministic pseudo-random instruction sequence with
// the motifs real workload streams have: compute gaps, strided and random
// accesses, dependent-load runs, occasional object switches.
func genItems(n int, seed int64) []cpu.Instr {
	rng := rand.New(rand.NewSource(seed))
	items := make([]cpu.Instr, 0, n)
	addr := uint64(0x1000_0000_0000)
	obj := uint64(3)
	for len(items) < n {
		switch rng.Intn(10) {
		case 0, 1, 2:
			items = append(items, cpu.Instr{Kind: cpu.Compute, N: int32(1 + rng.Intn(40))})
		case 3:
			obj = uint64(rng.Intn(12))
			addr = uint64(rng.Intn(1<<30)) << 6
			items = append(items, cpu.Instr{Kind: cpu.Store, VAddr: addr, Obj: obj})
		case 4:
			items = append(items, cpu.Instr{Kind: cpu.Load, VAddr: addr, Obj: obj, DependsOnPrev: true})
		default:
			addr += uint64(64 * (rng.Intn(5) + 1))
			k := cpu.Load
			if rng.Intn(5) == 0 {
				k = cpu.Store
			}
			items = append(items, cpu.Instr{Kind: k, VAddr: addr, Obj: obj})
		}
	}
	return items
}

// writeV2 encodes items as a v2 trace with the given block thresholds.
func writeV2(t *testing.T, items []cpu.Instr, blockItems int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewBlockWriterSize(&buf, blockItems, 0)
	if err != nil {
		t.Fatalf("NewBlockWriterSize: %v", err)
	}
	for _, in := range items {
		if err := w.Append(in); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

func drain(t *testing.T, s cpu.Stream) []cpu.Instr {
	t.Helper()
	var out []cpu.Instr
	for {
		in, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, in)
	}
}

func sameItems(t *testing.T, got, want []cpu.Instr, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d items, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: item %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

func TestBlockRoundTrip(t *testing.T) {
	items := genItems(10_000, 1)
	data := writeV2(t, items, 512)

	r, err := NewBlockReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("NewBlockReader: %v", err)
	}
	sameItems(t, drain(t, r), items, "Next round trip")
	if err := r.Err(); err != nil {
		t.Fatalf("Err after clean drain: %v", err)
	}

	// Refill must yield the identical sequence.
	r2, _ := NewBlockReader(bytes.NewReader(data))
	var got []cpu.Instr
	buf := make([]cpu.Instr, 77)
	for {
		n := r2.Refill(buf)
		if n == 0 {
			break
		}
		got = append(got, buf[:n]...)
	}
	sameItems(t, got, items, "Refill round trip")

	// Version dispatch: Open must land on the block reader for v2 and the
	// classic reader for v1.
	if s, err := Open(bytes.NewReader(data)); err != nil {
		t.Fatalf("Open(v2): %v", err)
	} else if _, ok := s.(*BlockReader); !ok {
		t.Fatalf("Open(v2) returned %T, want *BlockReader", s)
	}
	var v1 bytes.Buffer
	w1, _ := NewWriter(&v1)
	for _, in := range items[:100] {
		w1.Append(in)
	}
	w1.Close()
	if s, err := Open(bytes.NewReader(v1.Bytes())); err != nil {
		t.Fatalf("Open(v1): %v", err)
	} else if _, ok := s.(*Reader); !ok {
		t.Fatalf("Open(v1) returned %T, want *Reader", s)
	}
}

func TestBlockWriterFlushBoundaries(t *testing.T) {
	// Mid-stream flushes change framing, never the decoded stream.
	items := genItems(1000, 2)
	var buf bytes.Buffer
	w, _ := NewBlockWriter(&buf)
	for i, in := range items {
		if err := w.Append(in); err != nil {
			t.Fatal(err)
		}
		if i%137 == 0 {
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, _ := NewBlockReader(bytes.NewReader(buf.Bytes()))
	sameItems(t, drain(t, r), items, "flush-heavy round trip")
}

func TestBlockReaderSkipTo(t *testing.T) {
	items := genItems(5000, 3)
	data := writeV2(t, items, 256)
	for _, seq := range []uint64{0, 1, 255, 256, 257, 1000, 4999, 5000} {
		r, _ := NewBlockReader(bytes.NewReader(data))
		if err := r.SkipTo(seq); err != nil {
			t.Fatalf("SkipTo(%d): %v", seq, err)
		}
		sameItems(t, drain(t, r), items[seq:], "suffix after SkipTo")
		if err := r.Err(); err != nil {
			t.Fatalf("Err after SkipTo(%d) drain: %v", seq, err)
		}
	}
	// Past the end and backwards are typed errors.
	r, _ := NewBlockReader(bytes.NewReader(data))
	if err := r.SkipTo(5001); !errors.Is(err, ErrBadPosition) {
		t.Fatalf("SkipTo past end: %v, want ErrBadPosition", err)
	}
	r2, _ := NewBlockReader(bytes.NewReader(data))
	r2.SkipTo(1000)
	drain(t, r2)
	if err := r2.SkipTo(10); !errors.Is(err, ErrBadPosition) {
		t.Fatalf("backwards SkipTo: %v, want ErrBadPosition", err)
	}
}

func TestOpenBlockReaderAt(t *testing.T) {
	items := genItems(4000, 4)
	data := writeV2(t, items, 300)

	// Every scanner-reported position must resume exactly there.
	sc, err := NewBlockScanner(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	positions := []Position{{}}
	for sc.Scan() {
		positions = append(positions, sc.NextPos())
	}
	if sc.Err() != nil {
		t.Fatalf("scan: %v", sc.Err())
	}
	total, ok := sc.Total()
	if !ok || total != uint64(len(items)) {
		t.Fatalf("scanner total = %d,%v, want %d", total, ok, len(items))
	}
	if len(positions) < 5 {
		t.Fatalf("expected several blocks, got %d", len(positions)-1)
	}
	for _, pos := range positions[:len(positions)-1] {
		r, err := OpenBlockReaderAt(bytes.NewReader(data), pos)
		if err != nil {
			t.Fatalf("OpenBlockReaderAt(%+v): %v", pos, err)
		}
		sameItems(t, drain(t, r), items[pos.Seq:], "resume suffix")
		if r.Err() != nil {
			t.Fatalf("resume drain: %v", r.Err())
		}
	}
	// The final position names the end frame: a cleanly exhausted reader.
	last := positions[len(positions)-1]
	r, err := OpenBlockReaderAt(bytes.NewReader(data), last)
	if err != nil {
		t.Fatalf("OpenBlockReaderAt(end): %v", err)
	}
	if got := drain(t, r); len(got) != 0 || r.Err() != nil {
		t.Fatalf("end position: %d items, err %v", len(got), r.Err())
	}

	// Garbage positions are typed errors, not misdecodes.
	bad := []Position{
		{ByteOff: positions[1].ByteOff + 1, Seq: positions[1].Seq}, // mid-frame
		{ByteOff: positions[1].ByteOff, Seq: positions[1].Seq + 7}, // wrong seq
		{ByteOff: 3, Seq: 0},                                       // inside header
		{ByteOff: uint64(len(data)) + 100, Seq: 0},                 // past EOF
	}
	for _, pos := range bad {
		if _, err := OpenBlockReaderAt(bytes.NewReader(data), pos); !errors.Is(err, ErrBadPosition) {
			t.Fatalf("OpenBlockReaderAt(%+v): %v, want ErrBadPosition", pos, err)
		}
	}
}

// corruptCRC flips a bit of blockIdx's stored checksum, returning the
// damaged copy — guaranteed ErrChecksum regardless of compression method.
func corruptCRC(t *testing.T, data []byte, blockIdx int) []byte {
	t.Helper()
	sc, err := NewBlockScanner(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		if !sc.Scan() {
			t.Fatalf("trace has fewer than %d blocks", blockIdx+1)
		}
		if i == blockIdx {
			info := sc.Info()
			frameLen := uint64(len(sc.Frame()))
			crcOff := info.Pos.ByteOff + frameLen - info.CompLen - 4
			out := append([]byte(nil), data...)
			out[crcOff] ^= 0x01
			return out
		}
	}
}

func TestBlockReaderChecksumMidStream(t *testing.T) {
	items := genItems(3000, 5)
	data := writeV2(t, items, 500) // 6 blocks
	damaged := corruptCRC(t, data, 2)

	r, _ := NewBlockReader(bytes.NewReader(damaged))
	got := drain(t, r)
	if len(got) != 1000 {
		t.Fatalf("decoded %d items before the corrupt block, want 1000", len(got))
	}
	sameItems(t, got, items[:1000], "prefix before corruption")
	if err := r.Err(); !errors.Is(err, ErrChecksum) {
		t.Fatalf("Err = %v, want ErrChecksum", err)
	}
}

// TestLoopSurfacesBlockChecksumError is the Loop contract for v2: a
// corrupted middle block must fail loudly through Err(), terminally — not
// silently end the pass early and restart, replaying the valid prefix
// forever.
func TestLoopSurfacesBlockChecksumError(t *testing.T) {
	items := genItems(1500, 6)
	data := writeV2(t, items, 500)
	damaged := corruptCRC(t, data, 1)

	opens := 0
	l := NewLoop(func() (cpu.Stream, error) {
		opens++
		return NewBlockReader(bytes.NewReader(damaged))
	})
	got := drain(t, l)
	if len(got) != 500 {
		t.Fatalf("loop yielded %d items, want 500 (first block only)", len(got))
	}
	if err := l.Err(); !errors.Is(err, ErrChecksum) {
		t.Fatalf("Loop.Err = %v, want ErrChecksum", err)
	}
	if opens != 1 {
		t.Fatalf("loop reopened a corrupt trace %d times, want 1", opens)
	}
	// And an intact trace still loops.
	l2 := NewLoop(func() (cpu.Stream, error) {
		return NewBlockReader(bytes.NewReader(data))
	})
	for i := 0; i < 2*len(items)+10; i++ {
		if _, ok := l2.Next(); !ok {
			t.Fatalf("intact loop ended at item %d: %v", i, l2.Err())
		}
	}
}

func TestBlockDecoderFrames(t *testing.T) {
	items := genItems(2000, 7)
	data := writeV2(t, items, 333)

	var dec BlockDecoder
	sc, _ := NewBlockScanner(bytes.NewReader(data))
	var got []cpu.Instr
	seq := uint64(0)
	for sc.Scan() {
		decoded, err := dec.DecodeFrame(sc.Frame(), seq)
		if err != nil {
			t.Fatalf("DecodeFrame at seq %d: %v", seq, err)
		}
		got = append(got, decoded...)
		seq += uint64(len(decoded))
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	sameItems(t, got, items, "frame-by-frame decode")

	// Gap and duplicate detection through expectSeq.
	sc2, _ := NewBlockScanner(bytes.NewReader(data))
	sc2.Scan()
	if _, err := dec.DecodeFrame(sc2.Frame(), 5); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("DecodeFrame with wrong expectSeq: %v, want ErrCorrupt", err)
	}
	// Truncated and padded frames are corrupt, not panics.
	frame := append([]byte(nil), sc2.Frame()...)
	if _, err := dec.DecodeFrame(frame[:len(frame)-2], 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated frame: %v, want ErrCorrupt", err)
	}
	if _, err := dec.DecodeFrame(append(frame, 0), 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("padded frame: %v, want ErrCorrupt", err)
	}
}

func TestBlockWriterReaderReset(t *testing.T) {
	items := genItems(800, 8)
	var buf1, buf2 bytes.Buffer
	w, _ := NewBlockWriterSize(&buf1, 100, 0)
	for _, in := range items {
		w.Append(in)
	}
	w.Close()
	if err := w.Reset(&buf2); err != nil {
		t.Fatal(err)
	}
	for _, in := range items {
		w.Append(in)
	}
	w.Close()
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("writer Reset did not reproduce identical bytes")
	}

	r, _ := NewBlockReader(bytes.NewReader(buf1.Bytes()))
	first := drain(t, r)
	if err := r.Reset(bytes.NewReader(buf2.Bytes())); err != nil {
		t.Fatal(err)
	}
	sameItems(t, drain(t, r), first, "reader Reset replay")
}

// TestV1V2V1RoundTrip is the conversion property: v1 → v2 → v1 must
// reproduce the original v1 file byte for byte (the v1 encoding is a pure
// function of the instruction sequence), and every representation decodes
// to the identical instruction stream.
func TestV1V2V1RoundTrip(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		items := genItems(3000, 100+seed)
		var v1 bytes.Buffer
		w1, _ := NewWriter(&v1)
		for _, in := range items {
			// Normalize like the writer does: Compute N clamps to >= 1.
			if err := w1.Append(in); err != nil {
				t.Fatal(err)
			}
		}
		w1.Close()

		// v1 → v2
		var v2 bytes.Buffer
		r1, _ := NewReader(bytes.NewReader(v1.Bytes()))
		w2, _ := NewBlockWriterSize(&v2, 700, 0)
		if n, err := Copy(w2, r1); err != nil || n != uint64(len(items)) {
			t.Fatalf("v1→v2 copy: n=%d err=%v", n, err)
		}
		w2.Close()

		// v2 → v1 again
		var v1b bytes.Buffer
		r2, _ := NewBlockReader(bytes.NewReader(v2.Bytes()))
		w1b, _ := NewWriter(&v1b)
		if n, err := Copy(w1b, r2); err != nil || n != uint64(len(items)) {
			t.Fatalf("v2→v1 copy: n=%d err=%v", n, err)
		}
		w1b.Close()

		if !bytes.Equal(v1.Bytes(), v1b.Bytes()) {
			t.Fatalf("seed %d: v1→v2→v1 is not byte-identical (%d vs %d bytes)",
				seed, v1.Len(), v1b.Len())
		}
		rd, _ := NewBlockReader(bytes.NewReader(v2.Bytes()))
		sameItems(t, drain(t, rd), items, "v2 decode of converted trace")
	}
}

func TestLZRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var enc lzEncoder
	cases := [][]byte{
		nil,
		[]byte("a"),
		bytes.Repeat([]byte("ab"), 4000),
		bytes.Repeat([]byte{0}, 100_000),
		[]byte("abcdabcdabcdxyzxyzxyzxyz0123456789"),
	}
	random := make([]byte, 10_000)
	rng.Read(random)
	cases = append(cases, random)
	seqlike := make([]byte, 0, 60_000)
	for i := 0; i < 6000; i++ {
		seqlike = append(seqlike, byte(opLoad), 0x80, byte(i%7), 0x02)
	}
	cases = append(cases, seqlike)

	for i, src := range cases {
		comp := enc.compress(nil, src)
		out, err := lzDecompress(make([]byte, 0, len(src)), comp, len(src))
		if err != nil {
			t.Fatalf("case %d: decompress: %v", i, err)
		}
		if !bytes.Equal(out, src) {
			t.Fatalf("case %d: round trip mismatch (%d bytes in, %d out)", i, len(src), len(out))
		}
	}
	// Compressible input must actually shrink.
	comp := enc.compress(nil, seqlike)
	if len(comp) >= len(seqlike)/2 {
		t.Fatalf("repetitive input compressed to %d/%d bytes", len(comp), len(seqlike))
	}
}
