// Package power provides the energy models that replace the paper's Micron
// DRAM power calculators and McPAT:
//
//   - Memory: a two-component model per channel. Background energy is the
//     capacity-proportional standby power from Table II integrated over the
//     run. Dynamic energy is derived from the capacity-proportional active
//     power: at 100% data-bus utilization with no activations, dynamic power
//     equals ActiveWattPerGB x capacity, and each row activation adds the
//     equivalent of tRCD of full-rate active energy. DESIGN.md records this
//     substitution.
//
//   - Core: a linear static+dynamic model, calibrated so that the paper's
//     4-core system averages ~21 W total core power (Section V-A).
package power

import (
	"moca/internal/event"
	"moca/internal/mem"
)

// Seconds converts a simulation duration to seconds.
func Seconds(t event.Time) float64 { return float64(t) * 1e-12 }

// Energy is an energy quantity in joules.
type Energy float64

// ActivationWeight scales per-activation energy relative to tRCD of
// full-rate active power (see ChannelEnergy).
const ActivationWeight = 0.15

// MemoryBreakdown reports per-channel memory energy.
type MemoryBreakdown struct {
	BackgroundJ float64
	DynamicJ    float64
}

// TotalJ returns background plus dynamic energy.
func (b MemoryBreakdown) TotalJ() float64 { return b.BackgroundJ + b.DynamicJ }

// AvgPowerW returns the average power over the given duration.
func (b MemoryBreakdown) AvgPowerW(elapsed event.Time) float64 {
	s := Seconds(elapsed)
	if s <= 0 {
		return 0
	}
	return b.TotalJ() / s
}

// ChannelEnergy computes the energy one memory channel consumed over an
// elapsed interval, given its device parameters, capacity, and activity.
func ChannelEnergy(dev mem.DeviceParams, capacityBytes uint64, st mem.ChannelStats, elapsed event.Time) MemoryBreakdown {
	gb := float64(capacityBytes) / (1 << 30)
	secs := Seconds(elapsed)

	backgroundW := dev.Power.StandbyMilliwattPerGB / 1000.0 * gb
	activeW := dev.Power.ActiveWattPerGB * gb

	// Bus transfer energy: full active power for the time the data bus
	// was moving data.
	dynamicJ := activeW * Seconds(st.BusBusyTime)
	// Row activation energy: each activate costs a fraction of tRCD of
	// full-rate active energy. The weight is calibrated so a DDR3
	// activation costs roughly half a 64 B burst (IDD0-level energy);
	// scaling with tRCD makes wide-row devices (HBM) pay more per
	// activation, rewarding row locality.
	dynamicJ += activeW * Seconds(dev.Timing.TRCD) * ActivationWeight * float64(st.Activations)

	return MemoryBreakdown{
		BackgroundJ: backgroundW * secs,
		DynamicJ:    dynamicJ,
	}
}

// CoreModel is the linear core+cache power model replacing McPAT. Power of
// one core = StaticW + DynamicWPerIPC x IPC.
type CoreModel struct {
	StaticW        float64
	DynamicWPerIPC float64
}

// DefaultCoreModel is calibrated so a 4-core system running typical mixes
// (aggregate IPC around 1 per core) averages ~21 W, matching the paper's
// Magny-Cours measurement calibration: 4 x (2.0 + 3.25*1.0) = 21 W.
func DefaultCoreModel() CoreModel {
	return CoreModel{StaticW: 2.0, DynamicWPerIPC: 3.25}
}

// CorePowerW returns the power of one core at the given IPC.
func (m CoreModel) CorePowerW(ipc float64) float64 {
	if ipc < 0 {
		ipc = 0
	}
	return m.StaticW + m.DynamicWPerIPC*ipc
}

// CoreEnergyJ returns the energy one core consumed over an interval at the
// given average IPC.
func (m CoreModel) CoreEnergyJ(ipc float64, elapsed event.Time) float64 {
	return m.CorePowerW(ipc) * Seconds(elapsed)
}

// EDP returns an energy-delay product. The paper computes memory EDP as
// memory power x memory access latency; with energy = power x elapsed time
// this is energy x delay / elapsed. We report the standard E x D form and
// normalize against a baseline, which cancels the constant.
func EDP(energyJ float64, delay event.Time) float64 {
	return energyJ * Seconds(delay)
}
