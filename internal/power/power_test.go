package power

import (
	"math"
	"testing"
	"testing/quick"

	"moca/internal/event"
	"moca/internal/mem"
)

func TestSeconds(t *testing.T) {
	if got := Seconds(event.Second); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("Seconds(1s) = %v", got)
	}
	if got := Seconds(event.Nanosecond); math.Abs(got-1e-9) > 1e-21 {
		t.Errorf("Seconds(1ns) = %v", got)
	}
}

func TestBackgroundEnergyScalesWithCapacityAndTime(t *testing.T) {
	dev := mem.Preset(mem.DDR3)
	var st mem.ChannelStats
	b1 := ChannelEnergy(dev, 1<<30, st, event.Second)
	b2 := ChannelEnergy(dev, 2<<30, st, event.Second)
	b3 := ChannelEnergy(dev, 1<<30, st, 2*event.Second)
	if math.Abs(b1.BackgroundJ-0.256) > 1e-9 {
		t.Errorf("1GB DDR3 standby for 1s = %v J, want 0.256", b1.BackgroundJ)
	}
	if math.Abs(b2.BackgroundJ-2*b1.BackgroundJ) > 1e-12 {
		t.Error("background energy not linear in capacity")
	}
	if math.Abs(b3.BackgroundJ-2*b1.BackgroundJ) > 1e-12 {
		t.Error("background energy not linear in time")
	}
	if b1.DynamicJ != 0 {
		t.Errorf("idle channel dynamic energy = %v, want 0", b1.DynamicJ)
	}
}

func TestDynamicEnergyAtFullUtilization(t *testing.T) {
	// A channel whose bus was busy the whole interval with zero
	// activations must dissipate exactly ActiveWattPerGB x GB.
	dev := mem.Preset(mem.HBM)
	st := mem.ChannelStats{BusBusyTime: event.Second}
	b := ChannelEnergy(dev, 1<<30, st, event.Second)
	if math.Abs(b.DynamicJ-4.5) > 1e-9 {
		t.Errorf("HBM full-rate dynamic = %v J/s, want 4.5", b.DynamicJ)
	}
}

func TestActivationEnergyAdds(t *testing.T) {
	dev := mem.Preset(mem.DDR3)
	base := ChannelEnergy(dev, 1<<30, mem.ChannelStats{}, event.Second)
	act := ChannelEnergy(dev, 1<<30, mem.ChannelStats{Activations: 1000}, event.Second)
	if act.DynamicJ <= base.DynamicJ {
		t.Error("activations did not add dynamic energy")
	}
	want := 1.5 * Seconds(dev.Timing.TRCD) * ActivationWeight * 1000
	if math.Abs(act.DynamicJ-want) > 1e-12 {
		t.Errorf("activation energy = %v, want %v", act.DynamicJ, want)
	}
}

func TestModuleEnergyEfficiencyOrdering(t *testing.T) {
	// Same activity and capacity: LPDDR2 cheapest, RLDRAM most expensive
	// (text-driven substitution), matching the paper's premise.
	st := mem.ChannelStats{BusBusyTime: event.Millisecond * 100, Activations: 1e6}
	total := map[mem.Kind]float64{}
	for _, k := range mem.Kinds() {
		total[k] = ChannelEnergy(mem.Preset(k), 1<<30, st, event.Second).TotalJ()
	}
	if !(total[mem.LPDDR2] < total[mem.DDR3]) {
		t.Errorf("LPDDR2 energy %v not below DDR3 %v", total[mem.LPDDR2], total[mem.DDR3])
	}
	if !(total[mem.RLDRAM] > total[mem.DDR3] && total[mem.RLDRAM] > total[mem.HBM]) {
		t.Errorf("RLDRAM energy %v not the highest: %v", total[mem.RLDRAM], total)
	}
}

func TestAvgPowerW(t *testing.T) {
	b := MemoryBreakdown{BackgroundJ: 1, DynamicJ: 1}
	if got := b.AvgPowerW(2 * event.Second); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("AvgPowerW = %v, want 1", got)
	}
	if b.AvgPowerW(0) != 0 {
		t.Error("AvgPowerW(0) should be 0")
	}
}

func TestCoreModelCalibration(t *testing.T) {
	m := DefaultCoreModel()
	total := 4 * m.CorePowerW(1.0)
	if math.Abs(total-21.0) > 0.01 {
		t.Errorf("4-core power at IPC 1.0 = %v W, want ~21 (Section V-A calibration)", total)
	}
	if m.CorePowerW(-1) != m.StaticW {
		t.Error("negative IPC should clamp to static power")
	}
}

func TestCoreEnergy(t *testing.T) {
	m := CoreModel{StaticW: 1, DynamicWPerIPC: 2}
	got := m.CoreEnergyJ(0.5, event.Second)
	if math.Abs(got-2.0) > 1e-12 {
		t.Errorf("CoreEnergyJ = %v, want 2", got)
	}
}

func TestEDP(t *testing.T) {
	if got := EDP(2.0, event.Second); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("EDP = %v, want 2", got)
	}
}

// Property: energy is monotone in each activity counter.
func TestPropertyEnergyMonotone(t *testing.T) {
	dev := mem.Preset(mem.DDR3)
	f := func(busy uint32, acts uint32) bool {
		a := ChannelEnergy(dev, 1<<30, mem.ChannelStats{
			BusBusyTime: event.Time(busy), Activations: uint64(acts),
		}, event.Second)
		b := ChannelEnergy(dev, 1<<30, mem.ChannelStats{
			BusBusyTime: event.Time(busy) + 1000, Activations: uint64(acts) + 10,
		}, event.Second)
		return b.TotalJ() > a.TotalJ() && a.TotalJ() >= a.BackgroundJ
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: core power is affine and nondecreasing in IPC.
func TestPropertyCorePowerMonotone(t *testing.T) {
	m := DefaultCoreModel()
	f := func(raw uint16) bool {
		ipc := float64(raw) / 8192.0
		return m.CorePowerW(ipc+0.1) > m.CorePowerW(ipc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
