package cache

import (
	"fmt"

	"moca/internal/event"
	"moca/internal/mem"
	"moca/internal/obs"
)

// Level identifies where an access was satisfied.
type Level int

const (
	// L1Hit: satisfied by the L1 data cache.
	L1Hit Level = iota + 1
	// L2Hit: satisfied by the unified L2 (the LLC).
	L2Hit
	// MemHit: LLC miss, satisfied by a memory module.
	MemHit
)

func (l Level) String() string {
	switch l {
	case L1Hit:
		return "L1"
	case L2Hit:
		return "L2"
	case MemHit:
		return "Mem"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Backend is the memory system below the LLC. Submit requests a 64 B line
// at a physical address; sink (may be nil for writebacks) receives the
// completion, keyed by token. Submit reports false under backpressure, in
// which case the hierarchy retries later.
type Backend interface {
	Submit(lineAddr uint64, write bool, core int, obj uint64, sink mem.DoneSink, token uint64) bool
}

// AccessSink receives access completions from a Hierarchy. Like mem.DoneSink
// it replaces a per-access closure: the requester registers itself once and
// demultiplexes completions by token (for a core, the ROB index).
type AccessSink interface {
	AccessDone(token uint64, at event.Time, level Level)
}

// HierarchyConfig configures one core's private cache hierarchy.
type HierarchyConfig struct {
	L1       Config
	L2       Config
	CPUCycle event.Time // duration of one core clock
	Core     int        // core ID stamped on memory requests
	// Prefetch enables the optional stride prefetcher (off by default;
	// the paper's system has none).
	Prefetch PrefetchConfig
}

// DefaultHierarchyConfig returns the Table I cache parameters.
func DefaultHierarchyConfig(core int) HierarchyConfig {
	return HierarchyConfig{
		L1:       Config{SizeBytes: 64 << 10, Ways: 2, LatencyCycles: 2, MSHRs: 4},
		L2:       Config{SizeBytes: 512 << 10, Ways: 16, LatencyCycles: 20, MSHRs: 20},
		CPUCycle: event.Nanosecond,
		Core:     core,
	}
}

// HierStats aggregates hierarchy-level counters beyond the per-level ones.
type HierStats struct {
	DemandMisses   uint64 // primary LLC misses (MSHR allocations)
	MergedMisses   uint64 // accesses merged into an in-flight MSHR
	MSHRFullStalls uint64 // accesses that waited for a free MSHR
	Writebacks     uint64 // dirty lines written to memory
	BackPressure   uint64 // submissions rejected by the backend
}

// waiter is one access blocked on an in-flight miss.
type waiter struct {
	sink  AccessSink
	token uint64
}

type mshrEntry struct {
	lineAddr  uint64
	dirty     bool // a store is merged; fill L1 dirty
	submitted bool
	prefetch  bool   // speculative fetch: fills L2 only, invisible to stats
	obj       uint64 // object of the triggering access
	waiters   []waiter
}

type pendingMiss struct {
	lineAddr uint64
	obj      uint64
	write    bool
	sink     AccessSink
	token    uint64
}

// Hierarchy is one core's timed two-level cache hierarchy. L2 is inclusive
// of L1 (evictions back-invalidate), write-back, write-allocate.
// It is single-threaded, driven by the shared event queue.
type Hierarchy struct {
	cfg     HierarchyConfig
	q       *event.Queue
	backend Backend
	l1      *Cache
	l2      *Cache

	mshrs    *mshrIndex    // line address → in-flight entry, fixed size
	freeMSHR []*mshrEntry  // entry pool; recycled on fill
	// Misses stalled on a full MSHR file, split by op so read-priority
	// admission (first read in arrival order, else oldest write) is O(1)
	// instead of a scan past every queued write. Head indices mark the
	// consumed prefix (no per-admit shifts).
	waitR     []pendingMiss
	waitRHead int
	waitW     []pendingMiss
	waitWHead int
	wbQ      []uint64      // writebacks awaiting backend acceptance
	subQ     []*mshrEntry  // fetches awaiting backend acceptance (FIFO, deterministic)

	stats      HierStats
	pf         *prefetcher // nil unless enabled
	retryArmed bool

	// Observability; all nil (free) unless AttachObs was called. Counters
	// aggregate across every hierarchy attached to one registry.
	obsMisses    *obs.Counter
	obsMerged    *obs.Counter
	obsMSHRFull  *obs.Counter
	obsWriteback *obs.Counter
	obsBackPress *obs.Counter
	obsMSHROcc   *obs.Gauge
	obsTrace     *obs.Trace

	// OnLLCMiss, if set, is invoked for every primary LLC miss with the
	// object of the triggering access — the profiler's miss counter.
	OnLLCMiss func(obj uint64)
	// OnStore and OnLoad, if set, are invoked for every store/load access
	// (any hit level) — the profiler's per-object access counters, from
	// which write ratios derive.
	OnStore func(obj uint64)
	OnLoad  func(obj uint64)
}

// NewHierarchy builds the hierarchy on the given event queue and backend.
func NewHierarchy(q *event.Queue, backend Backend, cfg HierarchyConfig) (*Hierarchy, error) {
	l1, err := New(cfg.L1)
	if err != nil {
		return nil, fmt.Errorf("L1: %w", err)
	}
	l2, err := New(cfg.L2)
	if err != nil {
		return nil, fmt.Errorf("L2: %w", err)
	}
	if cfg.CPUCycle <= 0 {
		return nil, fmt.Errorf("cache: CPU cycle must be positive")
	}
	if cfg.L2.MSHRs == 0 {
		return nil, fmt.Errorf("cache: L2 needs at least one MSHR")
	}
	h := &Hierarchy{
		cfg:     cfg,
		q:       q,
		backend: backend,
		l1:      l1,
		l2:      l2,
		mshrs:   newMSHRIndex(cfg.L2.MSHRs),
	}
	if cfg.Prefetch.Enable {
		h.pf = newPrefetcher(cfg.Prefetch)
	}
	return h, nil
}

// AttachObs registers the hierarchy on the metrics registry ("cache.*"
// counters and the "cache.max_mshr_occupancy" gauge) and the run-trace
// sink (MSHR-full events). Nil arguments disable the corresponding
// instrumentation.
func (h *Hierarchy) AttachObs(r *obs.Registry, tr *obs.Trace) {
	if r == nil {
		h.obsMisses, h.obsMerged, h.obsMSHRFull = nil, nil, nil
		h.obsWriteback, h.obsBackPress, h.obsMSHROcc = nil, nil, nil
	} else {
		h.obsMisses = r.Counter("cache.demand_misses")
		h.obsMerged = r.Counter("cache.merged_misses")
		h.obsMSHRFull = r.Counter("cache.mshr_full_stalls")
		h.obsWriteback = r.Counter("cache.writebacks")
		h.obsBackPress = r.Counter("cache.backpressure")
		h.obsMSHROcc = r.Gauge("cache.max_mshr_occupancy")
	}
	h.obsTrace = tr
}

// PrefetchStats returns the stride prefetcher's counters (zero value when
// disabled).
func (h *Hierarchy) PrefetchStats() PrefetchStats {
	if h.pf == nil {
		return PrefetchStats{}
	}
	return h.pf.stats
}

// L1 returns the L1 data cache (for stats and tests).
func (h *Hierarchy) L1() *Cache { return h.l1 }

// L2 returns the unified L2 / LLC (for stats and tests).
func (h *Hierarchy) L2() *Cache { return h.l2 }

// Stats returns hierarchy-level counters.
func (h *Hierarchy) Stats() HierStats { return h.stats }

// ResetStats clears hierarchy, per-level, and prefetcher counters;
// contents persist.
func (h *Hierarchy) ResetStats() {
	h.stats = HierStats{}
	h.l1.ResetStats()
	h.l2.ResetStats()
	if h.pf != nil {
		h.pf.stats = PrefetchStats{}
	}
}

// OutstandingMisses returns the number of in-flight LLC misses.
func (h *Hierarchy) OutstandingMisses() int { return h.mshrs.len() }

// Event opcodes for the hierarchy's pooled events.
const (
	hopDeliverL1 int32 = iota // p = AccessSink, i64 = token
	hopDeliverL2              // p = AccessSink, i64 = token
	hopSubmit                 // p = *mshrEntry
	hopRetry                  // retry backpressured work
)

// OnEvent dispatches the hierarchy's pooled events (event.Handler).
//moca:hotpath
func (h *Hierarchy) OnEvent(now event.Time, op int32, i64 int64, p any) {
	switch op {
	case hopDeliverL1:
		p.(AccessSink).AccessDone(uint64(i64), now, L1Hit)
	case hopDeliverL2:
		p.(AccessSink).AccessDone(uint64(i64), now, L2Hit)
	case hopSubmit:
		h.submit(p.(*mshrEntry))
	case hopRetry:
		h.retryArmed = false
		h.pumpWritebacks()
		h.pumpSubmissions()
	}
}

// MemDone receives line completions from the backend (mem.DoneSink); the
// token is the line address, which names the MSHR entry.
//moca:hotpath
func (h *Hierarchy) MemDone(token uint64, at event.Time) {
	if e := h.mshrs.lookup(token); e != nil {
		h.onFill(e, at)
	}
}

//moca:hotpath
func (h *Hierarchy) getMSHR() *mshrEntry {
	if n := len(h.freeMSHR); n > 0 {
		e := h.freeMSHR[n-1]
		h.freeMSHR = h.freeMSHR[:n-1]
		return e
	}
	return &mshrEntry{}
}

//moca:hotpath
func (h *Hierarchy) putMSHR(e *mshrEntry) {
	*e = mshrEntry{waiters: e.waiters[:0]}
	h.freeMSHR = append(h.freeMSHR, e)
}

// Access performs a load (write=false) or store (write=true) to a physical
// address on behalf of memory object obj. sink, if non-nil, receives the
// completion (with the given token) and the level that satisfied it. Stores
// are posted: callers typically pass sink=nil and never stall on them.
//moca:hotpath
func (h *Hierarchy) Access(addr uint64, obj uint64, write bool, sink AccessSink, token uint64) {
	lineAddr := LineAddr(addr)
	cycle := h.cfg.CPUCycle

	if write {
		if h.OnStore != nil {
			h.OnStore(obj)
		}
	} else if h.OnLoad != nil {
		h.OnLoad(obj)
	}
	if h.pf != nil {
		h.pf.demandTouch(lineAddr)
		for _, target := range h.pf.observe(obj, lineAddr) {
			h.issuePrefetch(target, obj)
		}
	}

	if h.l1.Lookup(addr, write) {
		if sink != nil {
			at := h.q.Now() + event.Time(h.cfg.L1.LatencyCycles)*cycle
			h.q.Post(at, h, hopDeliverL1, int64(token), sink)
		}
		return
	}

	// L1 miss: look up L2 after the L1 latency. The L2 copy stays clean;
	// store dirtiness lives in L1 until eviction.
	if h.l2.Lookup(addr, false) {
		h.fillL1(lineAddr, write)
		if sink != nil {
			at := h.q.Now() + event.Time(h.cfg.L1.LatencyCycles+h.cfg.L2.LatencyCycles)*cycle
			h.q.Post(at, h, hopDeliverL2, int64(token), sink)
		}
		return
	}

	// LLC miss.
	h.missPath(lineAddr, obj, write, sink, token)
}

// AccessLoad is the non-scheduling probe variant of Access for loads with a
// sink (the common-case fast path). It runs the exact same lookup body, but
// a clean L1 or L2 hit is serviced inline: the completion time is returned
// to the caller and a virtual event reserves the completion's slot in the
// event order (event.PostVirtual) instead of posting a hopDeliver — no heap
// record, no handler dispatch. A hit can never have an MSHR conflict (a
// resident line is by definition not in flight), so inline=true is always a
// clean hit; everything else (miss, merge, MSHR-full) falls through to the
// identical slow-path tail and reports inline=false, with the completion
// delivered through sink as usual. Callers that later need the completion
// callback after all (a dependent load) rematerialize it with Promote.
//moca:hotpath
func (h *Hierarchy) AccessLoad(addr uint64, obj uint64, sink AccessSink, token uint64) (readyAt event.Time, ord uint64, level Level, inline bool) {
	lineAddr := LineAddr(addr)
	cycle := h.cfg.CPUCycle

	if h.OnLoad != nil {
		h.OnLoad(obj)
	}
	if h.pf != nil {
		h.pf.demandTouch(lineAddr)
		for _, target := range h.pf.observe(obj, lineAddr) {
			h.issuePrefetch(target, obj)
		}
	}

	if h.l1.Lookup(addr, false) {
		at := h.q.Now() + event.Time(h.cfg.L1.LatencyCycles)*cycle
		return at, h.q.PostVirtual(at), L1Hit, true
	}
	if h.l2.Lookup(addr, false) {
		h.fillL1(lineAddr, false)
		at := h.q.Now() + event.Time(h.cfg.L1.LatencyCycles+h.cfg.L2.LatencyCycles)*cycle
		return at, h.q.PostVirtual(at), L2Hit, true
	}
	h.missPath(lineAddr, obj, false, sink, token)
	return 0, 0, 0, false
}

// Promote converts an inline-serviced hit back into a real delivery event
// in its original event-order slot (see AccessLoad): the sink's AccessDone
// then fires at exactly the time and position the slow path would have.
//moca:hotpath
func (h *Hierarchy) Promote(at event.Time, ord uint64, level Level, sink AccessSink, token uint64) {
	op := hopDeliverL1
	if level == L2Hit {
		op = hopDeliverL2
	}
	h.q.PromoteVirtual(at, ord, h, op, int64(token), sink)
}

// missPath is the LLC-miss tail shared by Access and AccessLoad: merge into
// an in-flight MSHR, stall on a full file, or allocate.
//moca:hotpath
func (h *Hierarchy) missPath(lineAddr, obj uint64, write bool, sink AccessSink, token uint64) {
	if e := h.mshrs.lookup(lineAddr); e != nil {
		h.stats.MergedMisses++
		if h.obsMerged != nil {
			h.obsMerged.Inc()
		}
		e.dirty = e.dirty || write
		if e.prefetch && h.pf != nil {
			// Demand caught an in-flight prefetch: late but not useless.
			h.pf.stats.Late++
			e.prefetch = false
		}
		if sink != nil {
			e.waiters = append(e.waiters, waiter{sink, token})
		}
		return
	}
	if h.mshrs.len() >= h.mshrLimit(write) {
		h.stats.MSHRFullStalls++
		if h.obsMSHRFull != nil {
			h.obsMSHRFull.Inc()
		}
		if h.obsTrace != nil {
			h.obsTrace.Emit(obs.Event{
				At: h.q.Now(), Kind: obs.MSHRFull,
				Core: h.cfg.Core, Addr: lineAddr,
			})
		}
		if write {
			h.waitW = append(h.waitW, pendingMiss{lineAddr, obj, write, sink, token})
		} else {
			h.waitR = append(h.waitR, pendingMiss{lineAddr, obj, write, sink, token})
		}
		return
	}
	h.allocateMSHR(pendingMiss{lineAddr, obj, write, sink, token})
}

// mshrLimit implements read priority: store write-allocate fetches may not
// occupy the last few MSHRs, so demand loads are never starved by a burst
// of posted stores (the read-over-write priority every real memory system
// applies).
//moca:hotpath
func (h *Hierarchy) mshrLimit(write bool) int {
	limit := h.cfg.L2.MSHRs
	if write {
		reserve := limit / 5
		if reserve < 1 {
			reserve = 1
		}
		if limit > reserve {
			limit -= reserve
		}
	}
	return limit
}

//moca:hotpath
func (h *Hierarchy) allocateMSHR(m pendingMiss) {
	e := h.getMSHR()
	e.lineAddr, e.dirty, e.obj = m.lineAddr, m.write, m.obj
	if m.sink != nil {
		e.waiters = append(e.waiters, waiter{m.sink, m.token})
	}
	h.mshrs.insert(m.lineAddr, e)
	h.stats.DemandMisses++
	if h.obsMisses != nil {
		h.obsMisses.Inc()
		h.obsMSHROcc.RecordMax(int64(h.mshrs.len()))
	}
	if h.OnLLCMiss != nil {
		h.OnLLCMiss(m.obj)
	}
	// The request reaches the memory system after both lookup latencies.
	delay := event.Time(h.cfg.L1.LatencyCycles+h.cfg.L2.LatencyCycles) * h.cfg.CPUCycle
	h.q.PostAfter(delay, h, hopSubmit, 0, e)
}

//moca:hotpath
func (h *Hierarchy) submit(e *mshrEntry) {
	if e.submitted {
		return
	}
	ok := h.backend.Submit(e.lineAddr, false, h.cfg.Core, e.obj, h, e.lineAddr)
	if !ok {
		h.stats.BackPressure++
		if h.obsBackPress != nil {
			h.obsBackPress.Inc()
		}
		h.subQ = append(h.subQ, e)
		h.armRetry()
		return
	}
	e.submitted = true
}

//moca:hotpath
func (h *Hierarchy) pumpSubmissions() {
	for len(h.subQ) > 0 {
		e := h.subQ[0]
		h.subQ = h.subQ[1:]
		wasQueued := len(h.subQ)
		h.submit(e)
		if len(h.subQ) > wasQueued {
			return // backend still full; submit re-queued it
		}
	}
}

// issuePrefetch speculatively fetches a line into the L2. Prefetches never
// queue: they are dropped when the line is resident or in flight, or when
// the MSHR file lacks spare capacity beyond a small demand reserve.
//moca:hotpath
func (h *Hierarchy) issuePrefetch(lineAddr uint64, obj uint64) {
	if h.l2.Probe(lineAddr) || h.l1.Probe(lineAddr) {
		return
	}
	if h.mshrs.lookup(lineAddr) != nil {
		return
	}
	if h.mshrs.len() >= h.cfg.L2.MSHRs-2 {
		return
	}
	e := h.getMSHR()
	e.lineAddr, e.obj, e.prefetch = lineAddr, obj, true
	h.mshrs.insert(lineAddr, e)
	h.pf.stats.Issued++
	delay := event.Time(h.cfg.L1.LatencyCycles+h.cfg.L2.LatencyCycles) * h.cfg.CPUCycle
	h.q.PostAfter(delay, h, hopSubmit, 0, e)
}

// onFill handles a returning memory line: fill L2 then L1 (maintaining
// inclusion), wake waiters, free the MSHR, and admit stalled misses.
//moca:hotpath
func (h *Hierarchy) onFill(e *mshrEntry, at event.Time) {
	if v := h.l2.Fill(e.lineAddr, false); v.Valid {
		// Inclusion: remove the victim from L1; a dirty copy at either
		// level must be written back to memory.
		_, l1Dirty := h.l1.Invalidate(v.Addr)
		if v.Dirty || l1Dirty {
			h.queueWriteback(v.Addr)
		}
		if h.pf != nil {
			h.pf.evicted(v.Addr)
		}
	}
	if e.prefetch {
		// Speculative fill: L2 only, invisible to demand statistics.
		h.pf.markPrefetched(e.lineAddr)
		h.mshrs.remove(e.lineAddr)
		h.putMSHR(e)
		h.admitWaiting()
		h.pumpWritebacks()
		return
	}
	h.fillL1(e.lineAddr, e.dirty)

	h.mshrs.remove(e.lineAddr)
	for _, w := range e.waiters {
		w.sink.AccessDone(w.token, at, MemHit)
	}
	h.putMSHR(e)

	h.admitWaiting()
	h.pumpWritebacks()
}

// admitWaiting admits misses stalled on the MSHR file, loads before stores
// (read priority). A stalled miss may target a line that just became
// present or in-flight again; re-run the full access path.
//moca:hotpath
func (h *Hierarchy) admitWaiting() {
	for {
		var m pendingMiss
		if h.waitRHead < len(h.waitR) {
			m = h.waitR[h.waitRHead]
			if h.mshrs.len() >= h.mshrLimit(false) {
				return
			}
			h.waitRHead++
			if h.waitRHead == len(h.waitR) {
				h.waitR = h.waitR[:0]
				h.waitRHead = 0
			}
		} else if h.waitWHead < len(h.waitW) {
			m = h.waitW[h.waitWHead]
			if h.mshrs.len() >= h.mshrLimit(true) {
				return
			}
			h.waitWHead++
			if h.waitWHead == len(h.waitW) {
				h.waitW = h.waitW[:0]
				h.waitWHead = 0
			}
		} else {
			return
		}
		h.reAccess(m)
	}
}

// reAccess re-executes a previously stalled miss without recounting cache
// lookup stats (the miss was already counted when it first accessed).
//moca:hotpath
func (h *Hierarchy) reAccess(m pendingMiss) {
	if h.l2.Probe(m.lineAddr) {
		h.fillL1(m.lineAddr, m.write)
		if m.sink != nil {
			m.sink.AccessDone(m.token, h.q.Now(), L2Hit)
		}
		return
	}
	if e := h.mshrs.lookup(m.lineAddr); e != nil {
		h.stats.MergedMisses++
		if h.obsMerged != nil {
			h.obsMerged.Inc()
		}
		e.dirty = e.dirty || m.write
		if m.sink != nil {
			e.waiters = append(e.waiters, waiter{m.sink, m.token})
		}
		return
	}
	h.allocateMSHR(m)
}

// fillL1 inserts a line into L1; a displaced dirty line merges into its L2
// copy (guaranteed present by inclusion).
//moca:hotpath
func (h *Hierarchy) fillL1(lineAddr uint64, dirty bool) {
	if v := h.l1.Fill(lineAddr, dirty); v.Valid && v.Dirty {
		if !h.l2.SetDirty(v.Addr) {
			// Inclusion should make this unreachable; never lose data.
			h.queueWriteback(v.Addr)
		}
	}
}

//moca:hotpath
func (h *Hierarchy) queueWriteback(lineAddr uint64) {
	h.stats.Writebacks++
	if h.obsWriteback != nil {
		h.obsWriteback.Inc()
	}
	h.wbQ = append(h.wbQ, lineAddr)
	h.pumpWritebacks()
}

//moca:hotpath
func (h *Hierarchy) pumpWritebacks() {
	for len(h.wbQ) > 0 {
		addr := h.wbQ[0]
		if !h.backend.Submit(addr, true, h.cfg.Core, 0, nil, 0) {
			h.stats.BackPressure++
			if h.obsBackPress != nil {
				h.obsBackPress.Inc()
			}
			h.armRetry()
			return
		}
		h.wbQ = h.wbQ[1:]
	}
}

// InvalidateLine removes a physical line from both levels (page-migration
// shootdown) and reports whether any copy was dirty — the migrator must
// then write the line to the page's new location.
func (h *Hierarchy) InvalidateLine(lineAddr uint64) (present, dirty bool) {
	p1, d1 := h.l1.Invalidate(lineAddr)
	p2, d2 := h.l2.Invalidate(lineAddr)
	if h.pf != nil {
		// The physical line is gone for good (the page now lives in
		// another frame), so its usefulness mark can never be claimed —
		// drop it instead of letting shootdowns leak marks.
		h.pf.evicted(lineAddr)
	}
	return p1 || p2, d1 || d2
}

// armRetry schedules a pump of backpressured work a few cycles out.
//moca:hotpath
func (h *Hierarchy) armRetry() {
	if h.retryArmed {
		return
	}
	h.retryArmed = true
	h.q.PostAfter(8*h.cfg.CPUCycle, h, hopRetry, 0, nil)
}
