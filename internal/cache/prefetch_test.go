package cache

import (
	"testing"

	"moca/internal/event"
)

func prefetchHierarchy(t *testing.T, enable bool) (*event.Queue, *fakeBackend, *Hierarchy) {
	t.Helper()
	q := event.NewQueue()
	be := &fakeBackend{q: q, latency: 100 * event.Nanosecond}
	cfg := HierarchyConfig{
		L1:       Config{SizeBytes: 1024, Ways: 2, LatencyCycles: 2, MSHRs: 4},
		L2:       Config{SizeBytes: 8192, Ways: 4, LatencyCycles: 20, MSHRs: 8},
		CPUCycle: event.Nanosecond,
		Prefetch: PrefetchConfig{Enable: enable},
	}
	h, err := NewHierarchy(q, be, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return q, be, h
}

func TestPrefetcherDetectsStride(t *testing.T) {
	q, be, h := prefetchHierarchy(t, true)
	// A steady unit-line stride: after confidence builds, each access
	// should trigger prefetches and later accesses should find their
	// lines resident.
	for i := 0; i < 16; i++ {
		h.Access(uint64(i)*LineBytes, 7, false, nil, 0)
		q.Drain()
	}
	st := h.PrefetchStats()
	if st.Issued == 0 {
		t.Fatal("no prefetches issued for a unit-stride stream")
	}
	if st.Useful == 0 {
		t.Fatal("no prefetches were useful")
	}
	if be.reads < int(st.Issued) {
		t.Errorf("backend reads %d < issued prefetches %d", be.reads, st.Issued)
	}
	// Demand misses should be well below 16 (stream mostly absorbed).
	if h.Stats().DemandMisses+st.Issued < 16 {
		t.Errorf("accounting hole: demand %d + prefetch %d < 16 lines",
			h.Stats().DemandMisses, st.Issued)
	}
	if h.Stats().DemandMisses >= 16 {
		t.Errorf("prefetching absorbed nothing: %d demand misses", h.Stats().DemandMisses)
	}
}

func TestPrefetcherIgnoresRandom(t *testing.T) {
	q, _, h := prefetchHierarchy(t, true)
	addrs := []uint64{0x40, 0x4000, 0x100, 0x9000, 0x200, 0x7000, 0x340, 0xA000}
	for _, a := range addrs {
		h.Access(a, 7, false, nil, 0)
		q.Drain()
	}
	if st := h.PrefetchStats(); st.Issued > 2 {
		t.Errorf("issued %d prefetches on a random stream", st.Issued)
	}
}

func TestPrefetcherDoesNotCountDemandMisses(t *testing.T) {
	q, _, h := prefetchHierarchy(t, true)
	var llcMisses int
	h.OnLLCMiss = func(uint64) { llcMisses++ }
	for i := 0; i < 12; i++ {
		h.Access(uint64(i)*LineBytes, 7, false, nil, 0)
		q.Drain()
	}
	if uint64(llcMisses) != h.Stats().DemandMisses {
		t.Errorf("profiler saw %d misses, hierarchy recorded %d", llcMisses, h.Stats().DemandMisses)
	}
}

func TestPrefetcherDisabledIsInert(t *testing.T) {
	q, _, h := prefetchHierarchy(t, false)
	for i := 0; i < 16; i++ {
		h.Access(uint64(i)*LineBytes, 7, false, nil, 0)
		q.Drain()
	}
	if st := h.PrefetchStats(); st.Issued != 0 {
		t.Errorf("disabled prefetcher issued %d", st.Issued)
	}
	if h.Stats().DemandMisses != 16 {
		t.Errorf("demand misses = %d, want 16", h.Stats().DemandMisses)
	}
}

func TestPrefetcherLateCounting(t *testing.T) {
	q, _, h := prefetchHierarchy(t, true)
	// Build confidence, then access the next line before its prefetch
	// returns (no Drain between): the demand should merge and count Late.
	for i := 0; i < 6; i++ {
		h.Access(uint64(i)*LineBytes, 7, false, nil, 0)
		q.Drain()
	}
	before := h.PrefetchStats()
	if before.Issued == 0 {
		t.Skip("no prefetches in flight pattern")
	}
	h.Access(6*LineBytes, 7, false, nil, 0)
	h.Access(7*LineBytes, 7, false, nil, 0) // likely in flight from the previous observe
	q.Drain()
	// Late may be 0 or more depending on timing; the invariant is that
	// Useful+Late never exceeds Issued.
	st := h.PrefetchStats()
	if st.Useful+st.Late > st.Issued {
		t.Errorf("useful %d + late %d > issued %d", st.Useful, st.Late, st.Issued)
	}
}

func TestPrefetchAccuracy(t *testing.T) {
	s := PrefetchStats{Issued: 10, Useful: 5}
	if s.Accuracy() != 0.5 {
		t.Errorf("accuracy = %v", s.Accuracy())
	}
	if (PrefetchStats{}).Accuracy() != 0 {
		t.Error("zero-issued accuracy should be 0")
	}
}
