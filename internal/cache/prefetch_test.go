package cache

import (
	"testing"

	"moca/internal/event"
)

func prefetchHierarchy(t *testing.T, enable bool) (*event.Queue, *fakeBackend, *Hierarchy) {
	t.Helper()
	q := event.NewQueue()
	be := &fakeBackend{q: q, latency: 100 * event.Nanosecond}
	cfg := HierarchyConfig{
		L1:       Config{SizeBytes: 1024, Ways: 2, LatencyCycles: 2, MSHRs: 4},
		L2:       Config{SizeBytes: 8192, Ways: 4, LatencyCycles: 20, MSHRs: 8},
		CPUCycle: event.Nanosecond,
		Prefetch: PrefetchConfig{Enable: enable},
	}
	h, err := NewHierarchy(q, be, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return q, be, h
}

func TestPrefetcherDetectsStride(t *testing.T) {
	q, be, h := prefetchHierarchy(t, true)
	// A steady unit-line stride: after confidence builds, each access
	// should trigger prefetches and later accesses should find their
	// lines resident.
	for i := 0; i < 16; i++ {
		h.Access(uint64(i)*LineBytes, 7, false, nil, 0)
		q.Drain()
	}
	st := h.PrefetchStats()
	if st.Issued == 0 {
		t.Fatal("no prefetches issued for a unit-stride stream")
	}
	if st.Useful == 0 {
		t.Fatal("no prefetches were useful")
	}
	if be.reads < int(st.Issued) {
		t.Errorf("backend reads %d < issued prefetches %d", be.reads, st.Issued)
	}
	// Demand misses should be well below 16 (stream mostly absorbed).
	if h.Stats().DemandMisses+st.Issued < 16 {
		t.Errorf("accounting hole: demand %d + prefetch %d < 16 lines",
			h.Stats().DemandMisses, st.Issued)
	}
	if h.Stats().DemandMisses >= 16 {
		t.Errorf("prefetching absorbed nothing: %d demand misses", h.Stats().DemandMisses)
	}
}

func TestPrefetcherIgnoresRandom(t *testing.T) {
	q, _, h := prefetchHierarchy(t, true)
	addrs := []uint64{0x40, 0x4000, 0x100, 0x9000, 0x200, 0x7000, 0x340, 0xA000}
	for _, a := range addrs {
		h.Access(a, 7, false, nil, 0)
		q.Drain()
	}
	if st := h.PrefetchStats(); st.Issued > 2 {
		t.Errorf("issued %d prefetches on a random stream", st.Issued)
	}
}

func TestPrefetcherDoesNotCountDemandMisses(t *testing.T) {
	q, _, h := prefetchHierarchy(t, true)
	var llcMisses int
	h.OnLLCMiss = func(uint64) { llcMisses++ }
	for i := 0; i < 12; i++ {
		h.Access(uint64(i)*LineBytes, 7, false, nil, 0)
		q.Drain()
	}
	if uint64(llcMisses) != h.Stats().DemandMisses {
		t.Errorf("profiler saw %d misses, hierarchy recorded %d", llcMisses, h.Stats().DemandMisses)
	}
}

func TestPrefetcherDisabledIsInert(t *testing.T) {
	q, _, h := prefetchHierarchy(t, false)
	for i := 0; i < 16; i++ {
		h.Access(uint64(i)*LineBytes, 7, false, nil, 0)
		q.Drain()
	}
	if st := h.PrefetchStats(); st.Issued != 0 {
		t.Errorf("disabled prefetcher issued %d", st.Issued)
	}
	if h.Stats().DemandMisses != 16 {
		t.Errorf("demand misses = %d, want 16", h.Stats().DemandMisses)
	}
}

func TestPrefetcherLateCounting(t *testing.T) {
	q, _, h := prefetchHierarchy(t, true)
	// Build confidence, then access the next line before its prefetch
	// returns (no Drain between): the demand should merge and count Late.
	for i := 0; i < 6; i++ {
		h.Access(uint64(i)*LineBytes, 7, false, nil, 0)
		q.Drain()
	}
	before := h.PrefetchStats()
	if before.Issued == 0 {
		t.Skip("no prefetches in flight pattern")
	}
	h.Access(6*LineBytes, 7, false, nil, 0)
	h.Access(7*LineBytes, 7, false, nil, 0) // likely in flight from the previous observe
	q.Drain()
	// Late may be 0 or more depending on timing; the invariant is that
	// Useful+Late never exceeds Issued.
	st := h.PrefetchStats()
	if st.Useful+st.Late > st.Issued {
		t.Errorf("useful %d + late %d > issued %d", st.Useful, st.Late, st.Issued)
	}
}

// TestPrefetchFilterBoundedOnStream is the regression test for the
// formerly unbounded usefulness set: it only shrank on demand hits, so a
// streaming workload whose prefetched lines were evicted unseen (or a very
// long run) grew it without limit. The bounded filter must stay at its cap.
func TestPrefetchFilterBoundedOnStream(t *testing.T) {
	q := event.NewQueue()
	be := &fakeBackend{q: q, latency: 10 * event.Nanosecond}
	cfg := HierarchyConfig{
		L1:       Config{SizeBytes: 1024, Ways: 2, LatencyCycles: 2, MSHRs: 4},
		L2:       Config{SizeBytes: 8192, Ways: 4, LatencyCycles: 20, MSHRs: 8},
		CPUCycle: event.Nanosecond,
		Prefetch: PrefetchConfig{Enable: true, FilterSize: 16},
	}
	h, err := NewHierarchy(q, be, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A region-hopping stream: four sequential accesses rebuild stride
	// confidence and trigger a burst of prefetches, then demand jumps to
	// the next region and never touches the prefetched lines — every
	// region strands its marks while the lines stay L2-resident. Under
	// the old map this set grew with the live footprint and leaked on
	// shootdowns; now it must never exceed the cap.
	for r := 0; r < 200; r++ {
		base := uint64(r) << 24 // regions never overlap
		for i := uint64(0); i < 4; i++ {
			h.Access(base+i*LineBytes, 7, false, nil, 0)
			q.Drain()
		}
		if n := h.pf.prefetched.len(); n > 16 {
			t.Fatalf("region %d: filter grew to %d marks, cap 16", r, n)
		}
	}
	st := h.PrefetchStats()
	if st.Issued == 0 {
		t.Fatal("stream issued no prefetches")
	}
	if st.Evicted == 0 {
		t.Fatal("200 regions of stranded marks never hit the filter cap")
	}
	if n := h.pf.prefetched.len(); n != 16 {
		t.Fatalf("steady-state filter has %d marks, want the cap of 16", n)
	}
}

// TestPrefetchShootdownDropsMark: a page-migration shootdown removes the
// line for good (the page moves to a different physical frame), so the
// usefulness mark must be dropped with it rather than leaking.
func TestPrefetchShootdownDropsMark(t *testing.T) {
	q, _, h := prefetchHierarchy(t, true)
	for i := uint64(0); i < 6; i++ {
		h.Access(i*LineBytes, 7, false, nil, 0)
		q.Drain()
	}
	if h.pf.prefetched.len() == 0 {
		t.Skip("no marks outstanding in this pattern")
	}
	before := h.pf.prefetched.len()
	var addr uint64
	for i := range h.pf.prefetched.slots {
		if h.pf.prefetched.slots[i].live {
			addr = h.pf.prefetched.slots[i].addr
			break
		}
	}
	h.InvalidateLine(addr)
	if h.pf.prefetched.len() != before-1 {
		t.Fatalf("shootdown left %d marks, want %d", h.pf.prefetched.len(), before-1)
	}
}

func TestPrefetchFilterSetSemantics(t *testing.T) {
	var f pfFilter
	f.init(8)
	for i := uint64(0); i < 8; i++ {
		if f.insert(i * LineBytes) {
			t.Fatalf("insert %d evicted below cap", i)
		}
	}
	if f.insert(3 * LineBytes) {
		t.Fatal("re-inserting a present mark evicted")
	}
	if f.len() != 8 {
		t.Fatalf("len = %d, want 8", f.len())
	}
	if !f.insert(100 * LineBytes) {
		t.Fatal("insert at cap did not evict")
	}
	if f.len() != 8 {
		t.Fatalf("len = %d after eviction, want 8", f.len())
	}
	if !f.remove(100 * LineBytes) {
		t.Fatal("fresh mark not removable")
	}
	if f.remove(100 * LineBytes) {
		t.Fatal("double remove reported present")
	}
}

// TestPrefetchFilterMatchesMapModel churns the filter below its cap and
// cross-checks membership against a Go map (collisions and backward-shift
// deletion must preserve exact set semantics when no eviction happens).
func TestPrefetchFilterMatchesMapModel(t *testing.T) {
	var f pfFilter
	f.init(256)
	model := map[uint64]bool{}
	var keys []uint64
	rng := uint64(1)
	next := func(n int) int { // xorshift: deterministic, no imports
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(n))
	}
	for i := 0; i < 30000; i++ {
		switch {
		case len(keys) < 200 && next(2) == 0:
			a := uint64(next(1<<16)) * LineBytes
			if !model[a] {
				f.insert(a)
				model[a] = true
				keys = append(keys, a)
			}
		case len(keys) > 0 && next(2) == 0:
			j := next(len(keys))
			a := keys[j]
			keys = append(keys[:j], keys[j+1:]...)
			if !f.remove(a) {
				t.Fatalf("mark %#x missing on remove", a)
			}
			delete(model, a)
		default:
			a := uint64(next(1<<16)) * LineBytes
			if f.remove(a) != model[a] {
				t.Fatalf("membership of %#x diverged from model", a)
			}
			if model[a] {
				delete(model, a)
				for j, k := range keys {
					if k == a {
						keys = append(keys[:j], keys[j+1:]...)
						break
					}
				}
			}
		}
		if f.len() != len(model) {
			t.Fatalf("len = %d, model %d", f.len(), len(model))
		}
	}
}

func TestPrefetchAccuracy(t *testing.T) {
	s := PrefetchStats{Issued: 10, Useful: 5}
	if s.Accuracy() != 0.5 {
		t.Errorf("accuracy = %v", s.Accuracy())
	}
	if (PrefetchStats{}).Accuracy() != 0 {
		t.Error("zero-issued accuracy should be 0")
	}
}
