package cache

// Microbenchmark for the open-addressed MSHR index, plus its CI alloc
// smoke gate (mirrors the internal/vm gates: >20% allocs/op past the
// checked-in budget in BENCH_throughput.json fails).

import (
	"encoding/json"
	"os"
	"testing"
)

// BenchmarkMSHRIndex churns the index with the hierarchy's miss-path
// pattern: fill to the MSHR budget, look every line up (merge check),
// then drain — entries are pre-allocated so the index's own cost shows.
func BenchmarkMSHRIndex(b *testing.B) {
	const budget = 20
	ix := newMSHRIndex(budget)
	entries := make([]*mshrEntry, budget)
	for i := range entries {
		entries[i] = &mshrEntry{}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := uint64(i*budget+1) * LineBytes
		for j := uint64(0); j < budget; j++ {
			entries[j].lineAddr = base + j*LineBytes
			ix.insert(entries[j].lineAddr, entries[j])
		}
		for j := uint64(0); j < budget; j++ {
			if ix.lookup(base+j*LineBytes) == nil {
				b.Fatal("outstanding miss not indexed")
			}
		}
		for j := uint64(0); j < budget; j++ {
			ix.remove(base + j*LineBytes)
		}
	}
}

func TestMSHRIndexAllocBudget(t *testing.T) {
	if os.Getenv("MOCA_BENCH_SMOKE") == "" {
		t.Skip("set MOCA_BENCH_SMOKE=1 to run the bench smoke")
	}
	data, err := os.ReadFile("../../BENCH_throughput.json")
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		Micro map[string]struct {
			AllocsPerOp int64 `json:"allocs_per_op"`
		} `json:"micro"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	m, ok := f.Micro["BenchmarkMSHRIndex"]
	if !ok {
		t.Fatal("BENCH_throughput.json has no micro entry BenchmarkMSHRIndex")
	}
	budget := m.AllocsPerOp + m.AllocsPerOp/5
	res := testing.Benchmark(BenchmarkMSHRIndex)
	allocs := res.AllocsPerOp()
	t.Logf("BenchmarkMSHRIndex: %d allocs/op, budget %d", allocs, budget)
	if allocs > budget {
		t.Fatalf("BenchmarkMSHRIndex allocation regression: %d allocs/op exceeds budget %d; if intentional, update the micro entry in BENCH_throughput.json",
			allocs, budget)
	}
}
