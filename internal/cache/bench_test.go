package cache

// Microbenchmark for the open-addressed MSHR index, plus its CI alloc
// smoke gate (mirrors the internal/vm gates: >20% allocs/op past the
// checked-in budget in BENCH_throughput.json fails).

import (
	"encoding/json"
	"os"
	"testing"

	"moca/internal/event"
)

// BenchmarkMSHRIndex churns the index with the hierarchy's miss-path
// pattern: fill to the MSHR budget, look every line up (merge check),
// then drain — entries are pre-allocated so the index's own cost shows.
func BenchmarkMSHRIndex(b *testing.B) {
	const budget = 20
	ix := newMSHRIndex(budget)
	entries := make([]*mshrEntry, budget)
	for i := range entries {
		entries[i] = &mshrEntry{}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := uint64(i*budget+1) * LineBytes
		for j := uint64(0); j < budget; j++ {
			entries[j].lineAddr = base + j*LineBytes
			ix.insert(entries[j].lineAddr, entries[j])
		}
		for j := uint64(0); j < budget; j++ {
			if ix.lookup(base+j*LineBytes) == nil {
				b.Fatal("outstanding miss not indexed")
			}
		}
		for j := uint64(0); j < budget; j++ {
			ix.remove(base + j*LineBytes)
		}
	}
}

func TestMSHRIndexAllocBudget(t *testing.T) {
	if os.Getenv("MOCA_BENCH_SMOKE") == "" {
		t.Skip("set MOCA_BENCH_SMOKE=1 to run the bench smoke")
	}
	data, err := os.ReadFile("../../BENCH_throughput.json")
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		Micro map[string]struct {
			AllocsPerOp int64 `json:"allocs_per_op"`
		} `json:"micro"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	m, ok := f.Micro["BenchmarkMSHRIndex"]
	if !ok {
		t.Fatal("BENCH_throughput.json has no micro entry BenchmarkMSHRIndex")
	}
	budget := m.AllocsPerOp + m.AllocsPerOp/5
	res := testing.Benchmark(BenchmarkMSHRIndex)
	allocs := res.AllocsPerOp()
	t.Logf("BenchmarkMSHRIndex: %d allocs/op, budget %d", allocs, budget)
	if allocs > budget {
		t.Fatalf("BenchmarkMSHRIndex allocation regression: %d allocs/op exceeds budget %d; if intentional, update the micro entry in BENCH_throughput.json",
			allocs, budget)
	}
}

// BenchmarkHitProbe measures the inline-hit probe path the per-core fast
// path rides: AccessLoad on a warm L1 line services the hit arithmetically
// and reserves its event-order slot with a virtual event, then the drain
// (RunUntil past the completion) expires the reservation. The whole
// round-trip must stay at 0 allocs/op — an allocation here would be one
// per memory access on the common path.
func BenchmarkHitProbe(b *testing.B) {
	q := event.NewQueue()
	be := &fakeBackend{q: q, latency: 100 * event.Nanosecond}
	cfg := HierarchyConfig{
		L1:       Config{SizeBytes: 1024, Ways: 2, LatencyCycles: 2, MSHRs: 4},
		L2:       Config{SizeBytes: 8192, Ways: 4, LatencyCycles: 20, MSHRs: 4},
		CPUCycle: event.Nanosecond,
	}
	h, err := NewHierarchy(q, be, cfg)
	if err != nil {
		b.Fatal(err)
	}
	var lines [8]uint64
	for i := range lines {
		lines[i] = uint64(i+1) * LineBytes
		h.fillL1(lines[i], false)
	}
	var sink funcSink = func(event.Time, Level) {}
	// One warm round grows the queue's virtual-event buffer to steady state.
	if at, _, _, inline := h.AccessLoad(lines[0], 0, sink, 0); inline {
		q.RunUntil(at)
	} else {
		b.Fatal("warm line did not probe as a hit")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at, _, _, inline := h.AccessLoad(lines[i&7], 0, sink, 0)
		if !inline {
			b.Fatal("probe missed on a warm line")
		}
		q.RunUntil(at)
	}
}

func TestHitProbeAllocBudget(t *testing.T) {
	if os.Getenv("MOCA_BENCH_SMOKE") == "" {
		t.Skip("set MOCA_BENCH_SMOKE=1 to run the bench smoke")
	}
	data, err := os.ReadFile("../../BENCH_throughput.json")
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		Micro map[string]struct {
			AllocsPerOp int64 `json:"allocs_per_op"`
		} `json:"micro"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	m, ok := f.Micro["BenchmarkHitProbe"]
	if !ok {
		t.Fatal("BENCH_throughput.json has no micro entry BenchmarkHitProbe")
	}
	if m.AllocsPerOp != 0 {
		t.Fatalf("BenchmarkHitProbe budget must be 0 allocs/op (the inline-hit contract), ledger says %d", m.AllocsPerOp)
	}
	res := testing.Benchmark(BenchmarkHitProbe)
	if allocs := res.AllocsPerOp(); allocs != 0 {
		t.Fatalf("inline-hit probe allocates: %d allocs/op; the fast path must be allocation-free",
			allocs)
	}
}
