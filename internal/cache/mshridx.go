package cache

import "math/bits"

// mshrIndex maps an in-flight line address to its pooled *mshrEntry
// through a fixed-capacity, power-of-two, linear-probing open-addressed
// table. The table is sized from the MSHR budget at construction (at most
// 50% load when every MSHR is occupied) so it never grows mid-run, and
// deletion uses backward-shift compaction instead of tombstones, so probe
// chains stay short for the whole run regardless of fill/drain churn.
// Line address 0 is a legal key; occupancy is the entry pointer itself.
type mshrIndex struct {
	addrs   []uint64
	entries []*mshrEntry
	shift   uint // hash produces the top log2(len(addrs)) bits
	n       int
}

// newMSHRIndex sizes the table for at most `budget` simultaneous entries.
func newMSHRIndex(budget int) *mshrIndex {
	size := 8
	for size < budget*2 {
		size *= 2
	}
	return &mshrIndex{
		addrs:   make([]uint64, size),
		entries: make([]*mshrEntry, size),
		shift:   64 - uint(bits.TrailingZeros(uint(size))),
	}
}

// hash spreads the line address (low 6 bits are always zero) with a
// Fibonacci multiplicative hash, keeping the top bits.
//moca:hotpath
func (ix *mshrIndex) hash(lineAddr uint64) int {
	return int((lineAddr * 0x9E3779B97F4A7C15) >> ix.shift)
}

// len returns the number of indexed in-flight lines.
//moca:hotpath
func (ix *mshrIndex) len() int { return ix.n }

// lookup returns the entry for lineAddr, or nil when not in flight.
//moca:hotpath
func (ix *mshrIndex) lookup(lineAddr uint64) *mshrEntry {
	mask := len(ix.addrs) - 1
	for i := ix.hash(lineAddr); ix.entries[i] != nil; i = (i + 1) & mask {
		if ix.addrs[i] == lineAddr {
			return ix.entries[i]
		}
	}
	return nil
}

// insert adds a mapping. The caller guarantees lineAddr is absent and the
// MSHR budget (hence the table's load bound) is respected.
//moca:hotpath
func (ix *mshrIndex) insert(lineAddr uint64, e *mshrEntry) {
	mask := len(ix.addrs) - 1
	i := ix.hash(lineAddr)
	for ix.entries[i] != nil {
		i = (i + 1) & mask
	}
	ix.addrs[i] = lineAddr
	ix.entries[i] = e
	ix.n++
}

// remove deletes a mapping, compacting the probe chain by shifting back
// any displaced entries (Knuth 6.4 R): no tombstones are left behind.
//moca:hotpath
func (ix *mshrIndex) remove(lineAddr uint64) {
	mask := len(ix.addrs) - 1
	i := ix.hash(lineAddr)
	for {
		if ix.entries[i] == nil {
			return // not present
		}
		if ix.addrs[i] == lineAddr {
			break
		}
		i = (i + 1) & mask
	}
	ix.n--
	for {
		ix.entries[i] = nil
		j := i
		for {
			j = (j + 1) & mask
			if ix.entries[j] == nil {
				return
			}
			// Move slot j into the hole at i unless j's home position
			// lies in the cyclic range (i, j] — then j is reachable from
			// its home without passing the hole and must stay.
			h := ix.hash(ix.addrs[j])
			if (j > i && (h <= i || h > j)) || (j < i && h <= i && h > j) {
				ix.addrs[i] = ix.addrs[j]
				ix.entries[i] = ix.entries[j]
				i = j
				break
			}
		}
	}
}
