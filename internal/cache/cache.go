// Package cache models the paper's per-core cache hierarchy (Table I):
// a 64 KB 2-way L1 data cache (2-cycle) and a unified 512 KB 16-way L2
// (20-cycle, the LLC), 64 B lines, LRU replacement, write-back and
// write-allocate, with MSHR-limited miss overlap (4 at L1, 20 at L2).
// The instruction cache is not modeled; code is a pseudo-object with high
// locality, consistent with Fig. 16 of the paper.
package cache

import "fmt"

// LineBytes is the cache line size throughout the hierarchy (Table I).
const LineBytes = 64

const lineShift = 6

// LineAddr returns the line-aligned address containing addr.
func LineAddr(addr uint64) uint64 { return addr &^ (LineBytes - 1) }

// Config sizes one cache level.
type Config struct {
	SizeBytes     int
	Ways          int
	LatencyCycles int
	MSHRs         int
}

// Validate reports a configuration error, if any.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.SizeBytes%LineBytes != 0:
		return fmt.Errorf("cache: size %d not a positive multiple of the %d-byte line", c.SizeBytes, LineBytes)
	case c.Ways <= 0:
		return fmt.Errorf("cache: ways must be positive, got %d", c.Ways)
	case (c.SizeBytes/LineBytes)%c.Ways != 0:
		return fmt.Errorf("cache: %d lines not divisible into %d ways", c.SizeBytes/LineBytes, c.Ways)
	case c.LatencyCycles < 0:
		return fmt.Errorf("cache: negative latency")
	case c.MSHRs < 0:
		return fmt.Errorf("cache: negative MSHR count")
	}
	sets := c.SizeBytes / LineBytes / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

// Stats counts one cache level's activity.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64 // dirty evictions
}

// HitRate returns hits/accesses.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

type line struct {
	tag     uint64
	valid   bool
	dirty   bool
	lastUse uint64
}

// Cache is one set-associative, LRU, write-back cache level. It is a
// functional model: timing is layered on by Hierarchy.
type Cache struct {
	cfg      Config
	sets     int
	setMask  uint64
	setShift uint   // log2(sets), cached off the per-access path
	lines    []line // sets * ways, row-major by set
	useClock uint64
	stats    Stats
}

// New builds a cache level.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := cfg.SizeBytes / LineBytes / cfg.Ways
	return &Cache{
		cfg:      cfg,
		sets:     sets,
		setMask:  uint64(sets - 1),
		setShift: uint(log2(sets)),
		lines:    make([]line, sets*cfg.Ways),
	}, nil
}

// Config returns the level's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a snapshot of the level's counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats clears the counters (contents are preserved, so warm-up state
// carries into the measured region, as in Gem5 stat resets).
func (c *Cache) ResetStats() { c.stats = Stats{} }

//moca:hotpath
func (c *Cache) index(addr uint64) (set int, tag uint64) {
	l := addr >> lineShift
	return int(l & c.setMask), l >> c.setShift
}

//moca:hotpath
func (c *Cache) slot(set, way int) *line { return &c.lines[set*c.cfg.Ways+way] }

// Lookup accesses the cache. On a hit it updates recency (and the dirty bit
// for writes) and returns true. On a miss it returns false and changes
// nothing; the caller decides whether and when to Fill.
//moca:hotpath
func (c *Cache) Lookup(addr uint64, write bool) bool {
	c.stats.Accesses++
	set, tag := c.index(addr)
	for w := 0; w < c.cfg.Ways; w++ {
		ln := c.slot(set, w)
		if ln.valid && ln.tag == tag {
			c.useClock++
			ln.lastUse = c.useClock
			if write {
				ln.dirty = true
			}
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	return false
}

// Probe reports whether addr is present without perturbing state or stats.
//moca:hotpath
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.index(addr)
	for w := 0; w < c.cfg.Ways; w++ {
		ln := c.slot(set, w)
		if ln.valid && ln.tag == tag {
			return true
		}
	}
	return false
}

// Victim describes a line displaced by Fill.
type Victim struct {
	Valid bool
	Addr  uint64
	Dirty bool
}

// Fill inserts the line containing addr, evicting the LRU way if the set is
// full, and returns the displaced line (if any). If the line is already
// present, Fill only updates recency/dirtiness.
//moca:hotpath
func (c *Cache) Fill(addr uint64, dirty bool) Victim {
	set, tag := c.index(addr)
	for w := 0; w < c.cfg.Ways; w++ {
		ln := c.slot(set, w)
		if ln.valid && ln.tag == tag {
			c.useClock++
			ln.lastUse = c.useClock
			if dirty {
				ln.dirty = true
			}
			return Victim{}
		}
	}
	// Prefer an invalid way; otherwise evict the least recently used.
	victimWay := -1
	var oldest uint64
	for w := 0; w < c.cfg.Ways; w++ {
		ln := c.slot(set, w)
		if !ln.valid {
			victimWay = w
			break
		}
		if victimWay == -1 || ln.lastUse < oldest {
			victimWay, oldest = w, ln.lastUse
		}
	}
	ln := c.slot(set, victimWay)
	var v Victim
	if ln.valid {
		v = Victim{Valid: true, Addr: c.reconstruct(set, ln.tag), Dirty: ln.dirty}
		c.stats.Evictions++
		if ln.dirty {
			c.stats.Writebacks++
		}
	}
	c.useClock++
	*ln = line{tag: tag, valid: true, dirty: dirty, lastUse: c.useClock}
	return v
}

// Invalidate removes the line containing addr and reports whether the
// removed copy was dirty (for inclusive back-invalidation flushes).
//moca:hotpath
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	set, tag := c.index(addr)
	for w := 0; w < c.cfg.Ways; w++ {
		ln := c.slot(set, w)
		if ln.valid && ln.tag == tag {
			d := ln.dirty
			*ln = line{}
			return true, d
		}
	}
	return false, false
}

// SetDirty marks an already-present line dirty (used when a dirty L1 line
// is written back into L2 on eviction). Reports whether the line was found.
//moca:hotpath
func (c *Cache) SetDirty(addr uint64) bool {
	set, tag := c.index(addr)
	for w := 0; w < c.cfg.Ways; w++ {
		ln := c.slot(set, w)
		if ln.valid && ln.tag == tag {
			ln.dirty = true
			return true
		}
	}
	return false
}

// Occupancy returns the number of valid lines (for tests and debugging).
func (c *Cache) Occupancy() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid {
			n++
		}
	}
	return n
}

func (c *Cache) reconstruct(set int, tag uint64) uint64 {
	return (tag<<c.setShift | uint64(set)) << lineShift
}

func log2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
