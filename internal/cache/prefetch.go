package cache

// Stride prefetcher (optional, off by default — the paper's Table I system
// has none, and prefetching shifts the classification metrics MOCA relies
// on; the prefetch ablation quantifies exactly that).
//
// Detection is per memory object rather than per PC: the simulator's
// instruction stream carries object identities, and an object is the
// natural unit of streaming behavior here. An object whose consecutive
// accesses advance by a stable line stride gets Degree lines prefetched
// ahead into the L2. Prefetch fills do not count as demand misses and do
// not reach the profiler.

// PrefetchConfig tunes the optional stride prefetcher.
type PrefetchConfig struct {
	Enable bool
	// Degree is how many lines ahead to prefetch (default 8).
	Degree int
	// TableSize bounds the number of tracked objects (default 32).
	TableSize int
}

func (c *PrefetchConfig) setDefaults() {
	if c.Degree <= 0 {
		c.Degree = 8
	}
	if c.TableSize <= 0 {
		c.TableSize = 32
	}
}

// PrefetchStats counts prefetcher activity.
type PrefetchStats struct {
	Issued uint64 // prefetch fetches sent to memory
	Useful uint64 // prefetched lines later hit by demand accesses
	Late   uint64 // demand arrived while the prefetch was in flight
}

// Accuracy returns useful/issued (late prefetches excluded).
func (s PrefetchStats) Accuracy() float64 {
	if s.Issued == 0 {
		return 0
	}
	return float64(s.Useful) / float64(s.Issued)
}

// Coverage returns the fraction of issued prefetches that demand accesses
// wanted — on time (useful) or while still in flight (late).
func (s PrefetchStats) Coverage() float64 {
	if s.Issued == 0 {
		return 0
	}
	return float64(s.Useful+s.Late) / float64(s.Issued)
}

type strideEntry struct {
	obj        uint64
	lastLine   uint64
	stride     int64
	confidence int
	lastUse    uint64
}

type prefetcher struct {
	cfg     PrefetchConfig
	entries []strideEntry
	clock   uint64

	// prefetched marks lines brought in by the prefetcher and not yet
	// touched by demand (for usefulness accounting).
	prefetched map[uint64]bool
	stats      PrefetchStats
}

func newPrefetcher(cfg PrefetchConfig) *prefetcher {
	cfg.setDefaults()
	return &prefetcher{
		cfg:        cfg,
		entries:    make([]strideEntry, cfg.TableSize),
		prefetched: make(map[uint64]bool),
	}
}

// observe updates stride detection with a demand access and returns the
// line addresses to prefetch (nil most of the time).
func (p *prefetcher) observe(obj uint64, lineAddr uint64) []uint64 {
	e := p.lookup(obj)
	p.clock++
	e.lastUse = p.clock

	line := lineAddr / LineBytes
	if e.obj != obj {
		*e = strideEntry{obj: obj, lastLine: line, lastUse: p.clock}
		return nil
	}
	stride := int64(line) - int64(e.lastLine)
	e.lastLine = line
	switch {
	case stride == 0:
		return nil
	case stride == e.stride:
		if e.confidence < 3 {
			e.confidence++
		}
	default:
		e.stride = stride
		e.confidence = 0
		return nil
	}
	if e.confidence < 2 {
		return nil
	}
	out := make([]uint64, 0, p.cfg.Degree)
	for i := 1; i <= p.cfg.Degree; i++ {
		next := int64(line) + e.stride*int64(i)
		if next <= 0 {
			break
		}
		out = append(out, uint64(next)*LineBytes)
	}
	return out
}

func (p *prefetcher) lookup(obj uint64) *strideEntry {
	victim := 0
	var oldest uint64 = ^uint64(0)
	for i := range p.entries {
		e := &p.entries[i]
		if e.obj == obj && (e.lastLine != 0 || e.stride != 0 || e.lastUse != 0) {
			return e
		}
		if e.lastUse < oldest {
			victim, oldest = i, e.lastUse
		}
	}
	return &p.entries[victim]
}

// markPrefetched records a line the prefetcher filled.
func (p *prefetcher) markPrefetched(lineAddr uint64) {
	p.prefetched[lineAddr] = true
}

// demandTouch accounts a demand access to a possibly-prefetched line.
func (p *prefetcher) demandTouch(lineAddr uint64) {
	if p.prefetched[lineAddr] {
		p.stats.Useful++
		delete(p.prefetched, lineAddr)
	}
}

// evicted forgets a line that left the cache before being used.
func (p *prefetcher) evicted(lineAddr uint64) {
	delete(p.prefetched, lineAddr)
}
