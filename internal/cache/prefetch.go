package cache

import "math/bits"

// Stride prefetcher (optional, off by default — the paper's Table I system
// has none, and prefetching shifts the classification metrics MOCA relies
// on; the prefetch ablation quantifies exactly that).
//
// Detection is per memory object rather than per PC: the simulator's
// instruction stream carries object identities, and an object is the
// natural unit of streaming behavior here. An object whose consecutive
// accesses advance by a stable line stride gets Degree lines prefetched
// ahead into the L2. Prefetch fills do not count as demand misses and do
// not reach the profiler.

// PrefetchConfig tunes the optional stride prefetcher.
type PrefetchConfig struct {
	Enable bool
	// Degree is how many lines ahead to prefetch (default 8).
	Degree int
	// TableSize bounds the number of tracked objects (default 32).
	TableSize int
	// FilterSize bounds the usefulness filter: the number of
	// prefetched-but-not-yet-demanded line marks retained (default 1024).
	// When full, the oldest marks are evicted clock-wise; an evicted mark
	// only forfeits a Useful count, never correctness.
	FilterSize int
}

func (c *PrefetchConfig) setDefaults() {
	if c.Degree <= 0 {
		c.Degree = 8
	}
	if c.TableSize <= 0 {
		c.TableSize = 32
	}
	if c.FilterSize <= 0 {
		c.FilterSize = 1024
	}
}

// PrefetchStats counts prefetcher activity.
type PrefetchStats struct {
	Issued  uint64 // prefetch fetches sent to memory
	Useful  uint64 // prefetched lines later hit by demand accesses
	Late    uint64 // demand arrived while the prefetch was in flight
	Evicted uint64 // stale usefulness marks dropped at the filter's cap
}

// Accuracy returns useful/issued (late prefetches excluded).
func (s PrefetchStats) Accuracy() float64 {
	if s.Issued == 0 {
		return 0
	}
	return float64(s.Useful) / float64(s.Issued)
}

// Coverage returns the fraction of issued prefetches that demand accesses
// wanted — on time (useful) or while still in flight (late).
func (s PrefetchStats) Coverage() float64 {
	if s.Issued == 0 {
		return 0
	}
	return float64(s.Useful+s.Late) / float64(s.Issued)
}

type strideEntry struct {
	obj        uint64
	lastLine   uint64
	stride     int64
	confidence int
	lastUse    uint64
}

type prefetcher struct {
	cfg     PrefetchConfig
	entries []strideEntry
	clock   uint64

	// prefetched marks lines brought in by the prefetcher and not yet
	// touched by demand (for usefulness accounting). Bounded: stale marks
	// of lines demand never touched are evicted rather than accumulating
	// for the length of the run.
	prefetched pfFilter
	stats      PrefetchStats
}

func newPrefetcher(cfg PrefetchConfig) *prefetcher {
	cfg.setDefaults()
	p := &prefetcher{
		cfg:     cfg,
		entries: make([]strideEntry, cfg.TableSize),
	}
	p.prefetched.init(cfg.FilterSize)
	return p
}

// observe updates stride detection with a demand access and returns the
// line addresses to prefetch (nil most of the time).
//moca:hotpath
func (p *prefetcher) observe(obj uint64, lineAddr uint64) []uint64 {
	e := p.lookup(obj)
	p.clock++
	e.lastUse = p.clock

	line := lineAddr / LineBytes
	if e.obj != obj {
		*e = strideEntry{obj: obj, lastLine: line, lastUse: p.clock}
		return nil
	}
	stride := int64(line) - int64(e.lastLine)
	e.lastLine = line
	switch {
	case stride == 0:
		return nil
	case stride == e.stride:
		if e.confidence < 3 {
			e.confidence++
		}
	default:
		e.stride = stride
		e.confidence = 0
		return nil
	}
	if e.confidence < 2 {
		return nil
	}
	out := make([]uint64, 0, p.cfg.Degree)
	for i := 1; i <= p.cfg.Degree; i++ {
		next := int64(line) + e.stride*int64(i)
		if next <= 0 {
			break
		}
		out = append(out, uint64(next)*LineBytes)
	}
	return out
}

//moca:hotpath
func (p *prefetcher) lookup(obj uint64) *strideEntry {
	victim := 0
	var oldest uint64 = ^uint64(0)
	for i := range p.entries {
		e := &p.entries[i]
		if e.obj == obj && (e.lastLine != 0 || e.stride != 0 || e.lastUse != 0) {
			return e
		}
		if e.lastUse < oldest {
			victim, oldest = i, e.lastUse
		}
	}
	return &p.entries[victim]
}

// markPrefetched records a line the prefetcher filled.
//moca:hotpath
func (p *prefetcher) markPrefetched(lineAddr uint64) {
	if p.prefetched.insert(lineAddr) {
		p.stats.Evicted++
	}
}

// demandTouch accounts a demand access to a possibly-prefetched line.
//moca:hotpath
func (p *prefetcher) demandTouch(lineAddr uint64) {
	if p.prefetched.remove(lineAddr) {
		p.stats.Useful++
	}
}

// evicted forgets a line that left the cache before being used.
//moca:hotpath
func (p *prefetcher) evicted(lineAddr uint64) {
	p.prefetched.remove(lineAddr)
}

// pfFilter is a bounded open-addressed set of line addresses with
// clock-hand eviction: when the filter is at capacity, the hand sweeps
// the slot array and drops the next live mark (entries are never
// re-referenced after insertion, so the sweep order approximates FIFO).
// Deletion is backward-shift compaction — no tombstones, and the table
// never grows, so a long run's memory stays at the configured cap.
type pfSlot struct {
	addr uint64
	live bool
}

type pfFilter struct {
	slots []pfSlot
	shift uint
	cap   int
	n     int
	hand  int
}

func (f *pfFilter) init(capacity int) {
	size := 8
	for size < capacity*2 {
		size *= 2
	}
	f.slots = make([]pfSlot, size)
	f.shift = 64 - uint(bits.TrailingZeros(uint(size)))
	f.cap = capacity
}

//moca:hotpath
func (f *pfFilter) hash(addr uint64) int {
	return int((addr * 0x9E3779B97F4A7C15) >> f.shift)
}

// insert adds a mark, evicting the clock-hand victim when at capacity.
// Reports whether an eviction happened.
//moca:hotpath
func (f *pfFilter) insert(addr uint64) (evicted bool) {
	mask := len(f.slots) - 1
	i := f.hash(addr)
	for f.slots[i].live {
		if f.slots[i].addr == addr {
			return false // already marked
		}
		i = (i + 1) & mask
	}
	if f.n >= f.cap {
		f.evictClock()
		evicted = true
		// The victim's removal may have compacted the probe chain; redo
		// the probe for the insertion slot.
		i = f.hash(addr)
		for f.slots[i].live {
			i = (i + 1) & mask
		}
	}
	f.slots[i] = pfSlot{addr: addr, live: true}
	f.n++
	return evicted
}

// evictClock removes the first live mark at or after the hand.
//moca:hotpath
func (f *pfFilter) evictClock() {
	mask := len(f.slots) - 1
	for !f.slots[f.hand].live {
		f.hand = (f.hand + 1) & mask
	}
	victim := f.slots[f.hand].addr
	f.hand = (f.hand + 1) & mask
	f.remove(victim)
}

// remove deletes a mark, reporting whether it was present. The probe
// chain is compacted by shifting back displaced entries (Knuth 6.4 R).
//moca:hotpath
func (f *pfFilter) remove(addr uint64) bool {
	mask := len(f.slots) - 1
	i := f.hash(addr)
	for {
		if !f.slots[i].live {
			return false
		}
		if f.slots[i].addr == addr {
			break
		}
		i = (i + 1) & mask
	}
	f.n--
	for {
		f.slots[i] = pfSlot{}
		j := i
		for {
			j = (j + 1) & mask
			if !f.slots[j].live {
				return true
			}
			h := f.hash(f.slots[j].addr)
			if (j > i && (h <= i || h > j)) || (j < i && h <= i && h > j) {
				f.slots[i] = f.slots[j]
				i = j
				break
			}
		}
	}
}

// len returns the number of live marks (for tests).
func (f *pfFilter) len() int { return f.n }
