package cache

import (
	"math/rand"
	"testing"
)

// collidingLines returns n distinct line addresses sharing one home slot.
func collidingLines(ix *mshrIndex, n int) []uint64 {
	out := []uint64{LineBytes}
	home := ix.hash(LineBytes)
	for a := uint64(2 * LineBytes); len(out) < n; a += LineBytes {
		if ix.hash(a) == home {
			out = append(out, a)
		}
	}
	return out
}

func TestMSHRIndexCollisionChains(t *testing.T) {
	ix := newMSHRIndex(20)
	lines := collidingLines(ix, 6)
	entries := make([]*mshrEntry, len(lines))
	for i, a := range lines {
		entries[i] = &mshrEntry{lineAddr: a}
		ix.insert(a, entries[i])
	}
	if ix.len() != len(lines) {
		t.Fatalf("len = %d, want %d", ix.len(), len(lines))
	}
	for i, a := range lines {
		if got := ix.lookup(a); got != entries[i] {
			t.Fatalf("lookup(%#x) = %p, want %p", a, got, entries[i])
		}
	}
	// Remove the head of the chain: backward-shift must keep the rest
	// reachable (a tombstone-less table breaks here if deletion is naive).
	ix.remove(lines[0])
	if ix.lookup(lines[0]) != nil {
		t.Fatal("removed line still indexed")
	}
	for i := 1; i < len(lines); i++ {
		if ix.lookup(lines[i]) != entries[i] {
			t.Fatalf("chain entry %#x lost after head removal", lines[i])
		}
	}
	// Remove from the middle, then re-insert the head.
	ix.remove(lines[3])
	ix.insert(lines[0], entries[0])
	for i, a := range lines {
		want := entries[i]
		if i == 3 {
			want = nil
		}
		if got := ix.lookup(a); got != want {
			t.Fatalf("after churn, lookup(%#x) = %p, want %p", a, got, want)
		}
	}
}

func TestMSHRIndexRemoveAbsent(t *testing.T) {
	ix := newMSHRIndex(4)
	ix.insert(LineBytes, &mshrEntry{})
	ix.remove(99 * LineBytes) // absent: no-op
	if ix.len() != 1 || ix.lookup(LineBytes) == nil {
		t.Fatal("removing an absent line perturbed the index")
	}
}

func TestMSHRIndexNeverGrows(t *testing.T) {
	const budget = 20
	ix := newMSHRIndex(budget)
	size := len(ix.addrs)
	if size < budget*2 {
		t.Fatalf("table sized %d for budget %d, want ≥ 2× budget", size, budget)
	}
	// Churn at the full budget for many rounds: size must never change.
	for round := 0; round < 500; round++ {
		base := uint64(round*budget+1) * LineBytes
		for i := uint64(0); i < budget; i++ {
			ix.insert(base+i*LineBytes, &mshrEntry{})
		}
		if ix.len() != budget {
			t.Fatalf("round %d: len %d, want %d", round, ix.len(), budget)
		}
		for i := uint64(0); i < budget; i++ {
			ix.remove(base + i*LineBytes)
		}
	}
	if len(ix.addrs) != size {
		t.Fatalf("index grew from %d to %d slots", size, len(ix.addrs))
	}
	if ix.len() != 0 {
		t.Fatalf("len = %d after draining", ix.len())
	}
}

// TestMSHRIndexMatchesMapModel cross-checks the open-addressed index
// against a plain Go map under randomized insert/remove/lookup churn.
func TestMSHRIndexMatchesMapModel(t *testing.T) {
	const budget = 20
	ix := newMSHRIndex(budget)
	model := map[uint64]*mshrEntry{}
	rng := rand.New(rand.NewSource(7))
	var keys []uint64
	for i := 0; i < 50000; i++ {
		switch {
		case len(keys) < budget && rng.Intn(2) == 0:
			a := uint64(rng.Intn(1<<20)) * LineBytes
			if _, dup := model[a]; dup {
				continue
			}
			e := &mshrEntry{lineAddr: a}
			ix.insert(a, e)
			model[a] = e
			keys = append(keys, a)
		case len(keys) > 0 && rng.Intn(2) == 0:
			j := rng.Intn(len(keys))
			a := keys[j]
			keys = append(keys[:j], keys[j+1:]...)
			ix.remove(a)
			delete(model, a)
		default:
			a := uint64(rng.Intn(1<<20)) * LineBytes
			if got, want := ix.lookup(a), model[a]; got != want {
				t.Fatalf("lookup(%#x) = %p, model %p", a, got, want)
			}
		}
		if ix.len() != len(model) {
			t.Fatalf("len = %d, model %d", ix.len(), len(model))
		}
	}
}
