package cache

import (
	"testing"

	"moca/internal/event"
	"moca/internal/mem"
)

// funcSink adapts a closure to AccessSink for tests.
type funcSink func(at event.Time, level Level)

func (f funcSink) AccessDone(_ uint64, at event.Time, level Level) { f(at, level) }

// fakeBackend satisfies Backend with a fixed latency and optional
// backpressure window.
type fakeBackend struct {
	q        *event.Queue
	latency  event.Time
	reads    int
	writes   int
	rejectN  int // reject the first N submissions
	rejected int
}

func (f *fakeBackend) Submit(lineAddr uint64, write bool, core int, obj uint64, sink mem.DoneSink, token uint64) bool {
	if f.rejected < f.rejectN {
		f.rejected++
		return false
	}
	if write {
		f.writes++
	} else {
		f.reads++
	}
	if sink != nil {
		f.q.After(f.latency, func() { sink.MemDone(token, f.q.Now()) })
	}
	return true
}

func newTestHierarchy(t *testing.T, rejectN int) (*event.Queue, *fakeBackend, *Hierarchy) {
	t.Helper()
	q := event.NewQueue()
	be := &fakeBackend{q: q, latency: 100 * event.Nanosecond, rejectN: rejectN}
	cfg := HierarchyConfig{
		L1:       Config{SizeBytes: 1024, Ways: 2, LatencyCycles: 2, MSHRs: 4},
		L2:       Config{SizeBytes: 8192, Ways: 4, LatencyCycles: 20, MSHRs: 4},
		CPUCycle: event.Nanosecond,
	}
	h, err := NewHierarchy(q, be, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return q, be, h
}

func TestAccessLevels(t *testing.T) {
	q, be, h := newTestHierarchy(t, 0)

	var level Level
	var at event.Time
	record := func(a event.Time, l Level) { at, level = a, l }

	h.Access(0x1000, 7, false, funcSink(record), 0)
	q.Drain()
	if level != MemHit {
		t.Fatalf("cold access level = %v, want Mem", level)
	}
	if at < 100*event.Nanosecond {
		t.Errorf("memory access completed at %d, before backend latency", at)
	}
	if be.reads != 1 {
		t.Errorf("backend reads = %d, want 1", be.reads)
	}

	h.Access(0x1000, 7, false, funcSink(record), 0)
	q.Drain()
	if level != L1Hit {
		t.Fatalf("second access level = %v, want L1", level)
	}

	// Evict from L1 only: fill two more lines mapping to the same L1 set.
	// L1: 1024 B / 64 / 2 ways = 8 sets.
	h.Access(0x1000+8*64, 7, false, nil, 0)
	h.Access(0x1000+16*64, 7, false, nil, 0)
	q.Drain()
	h.Access(0x1000, 7, false, funcSink(record), 0)
	q.Drain()
	if level != L2Hit {
		t.Fatalf("after L1 eviction, level = %v, want L2", level)
	}
}

func TestMSHRMerging(t *testing.T) {
	q, be, h := newTestHierarchy(t, 0)
	completions := 0
	for i := 0; i < 3; i++ {
		h.Access(0x2000+uint64(i*8), 1, false, funcSink(func(event.Time, Level) { completions++ }), 0)
	}
	if got := h.OutstandingMisses(); got != 1 {
		t.Fatalf("outstanding misses = %d, want 1 (same line merged)", got)
	}
	q.Drain()
	if completions != 3 {
		t.Errorf("completions = %d, want 3", completions)
	}
	if be.reads != 1 {
		t.Errorf("backend reads = %d, want 1 (merged)", be.reads)
	}
	st := h.Stats()
	if st.DemandMisses != 1 || st.MergedMisses != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestMSHRLimitStalls(t *testing.T) {
	q, be, h := newTestHierarchy(t, 0)
	done := 0
	for i := 0; i < 8; i++ { // 8 distinct lines, 4 MSHRs
		h.Access(uint64(0x10000+i*4096), 1, false, funcSink(func(event.Time, Level) { done++ }), 0)
	}
	if h.OutstandingMisses() != 4 {
		t.Fatalf("outstanding = %d, want 4 (MSHR limit)", h.OutstandingMisses())
	}
	if st := h.Stats(); st.MSHRFullStalls != 4 {
		t.Errorf("MSHR-full stalls = %d, want 4", st.MSHRFullStalls)
	}
	q.Drain()
	if done != 8 {
		t.Errorf("completions = %d, want 8", done)
	}
	if be.reads != 8 {
		t.Errorf("backend reads = %d, want 8", be.reads)
	}
}

func TestLLCMissCallback(t *testing.T) {
	q, _, h := newTestHierarchy(t, 0)
	var objs []uint64
	h.OnLLCMiss = func(obj uint64) { objs = append(objs, obj) }
	h.Access(0x100, 42, false, nil, 0)
	h.Access(0x120, 42, false, nil, 0) // merges: no second callback
	h.Access(0x4000, 43, true, nil, 0)
	q.Drain()
	h.Access(0x100, 42, false, nil, 0) // L1 hit: no callback
	q.Drain()
	if len(objs) != 2 || objs[0] != 42 || objs[1] != 43 {
		t.Errorf("LLC miss objects = %v, want [42 43]", objs)
	}
}

func TestStoreWriteAllocateAndWriteback(t *testing.T) {
	q, be, h := newTestHierarchy(t, 0)
	// Store to a cold line: write-allocate fetches it (1 read).
	h.Access(0x8000, 5, true, nil, 0)
	q.Drain()
	if be.reads != 1 || be.writes != 0 {
		t.Fatalf("after store miss: reads=%d writes=%d, want 1,0", be.reads, be.writes)
	}
	// Push the dirty line out of both levels: fill the entire L2 set.
	// L2: 8192/64/4 ways = 32 sets; same set stride = 32*64.
	for i := 1; i <= 4; i++ {
		h.Access(uint64(0x8000+i*32*64), 5, false, nil, 0)
		q.Drain()
	}
	if be.writes == 0 {
		t.Error("dirty line eviction produced no memory write")
	}
	if st := h.Stats(); st.Writebacks == 0 {
		t.Error("no writebacks recorded")
	}
}

func TestInclusionBackInvalidation(t *testing.T) {
	q, _, h := newTestHierarchy(t, 0)
	h.Access(0x8000, 5, true, nil, 0) // dirty in L1
	q.Drain()
	if !h.L1().Probe(0x8000) {
		t.Fatal("line not in L1")
	}
	// Evict from L2 (same L2 set): the L1 copy must vanish too and its
	// dirty data must be written back.
	for i := 1; i <= 4; i++ {
		h.Access(uint64(0x8000+i*32*64), 5, false, nil, 0)
		q.Drain()
	}
	if h.L1().Probe(0x8000) {
		t.Error("L1 retains a line L2 evicted (inclusion violated)")
	}
	if st := h.Stats(); st.Writebacks == 0 {
		t.Error("dirty L1 copy lost on back-invalidation")
	}
}

func TestBackpressureRetry(t *testing.T) {
	q, be, h := newTestHierarchy(t, 3)
	done := false
	h.Access(0x100, 1, false, funcSink(func(event.Time, Level) { done = true }), 0)
	q.Drain()
	if !done {
		t.Fatal("access never completed under backpressure")
	}
	if be.reads != 1 {
		t.Errorf("reads = %d, want 1", be.reads)
	}
	if st := h.Stats(); st.BackPressure == 0 {
		t.Error("backpressure not recorded")
	}
}

func TestResetStats(t *testing.T) {
	q, _, h := newTestHierarchy(t, 0)
	h.Access(0x100, 1, false, nil, 0)
	q.Drain()
	h.ResetStats()
	if st := h.Stats(); st.DemandMisses != 0 {
		t.Error("hierarchy stats not reset")
	}
	if h.L1().Stats().Accesses != 0 || h.L2().Stats().Accesses != 0 {
		t.Error("level stats not reset")
	}
	if !h.L1().Probe(0x100) {
		t.Error("reset should preserve contents")
	}
}

func TestDefaultHierarchyConfigMatchesTableI(t *testing.T) {
	cfg := DefaultHierarchyConfig(0)
	if cfg.L1.SizeBytes != 64<<10 || cfg.L1.Ways != 2 || cfg.L1.LatencyCycles != 2 || cfg.L1.MSHRs != 4 {
		t.Errorf("L1 config %+v does not match Table I", cfg.L1)
	}
	if cfg.L2.SizeBytes != 512<<10 || cfg.L2.Ways != 16 || cfg.L2.LatencyCycles != 20 || cfg.L2.MSHRs != 20 {
		t.Errorf("L2 config %+v does not match Table I", cfg.L2)
	}
	if err := cfg.L1.Validate(); err != nil {
		t.Error(err)
	}
	if err := cfg.L2.Validate(); err != nil {
		t.Error(err)
	}
}

func TestNewHierarchyErrors(t *testing.T) {
	q := event.NewQueue()
	be := &fakeBackend{q: q}
	bad := DefaultHierarchyConfig(0)
	bad.L1.Ways = 0
	if _, err := NewHierarchy(q, be, bad); err == nil {
		t.Error("bad L1 accepted")
	}
	bad = DefaultHierarchyConfig(0)
	bad.CPUCycle = 0
	if _, err := NewHierarchy(q, be, bad); err == nil {
		t.Error("zero CPU cycle accepted")
	}
	bad = DefaultHierarchyConfig(0)
	bad.L2.MSHRs = 0
	if _, err := NewHierarchy(q, be, bad); err == nil {
		t.Error("zero MSHRs accepted")
	}
}
