package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func smallCfg() Config {
	return Config{SizeBytes: 4 * 1024, Ways: 2, LatencyCycles: 2, MSHRs: 4}
}

func TestConfigValidate(t *testing.T) {
	good := []Config{
		smallCfg(),
		{SizeBytes: 64 << 10, Ways: 2, LatencyCycles: 2, MSHRs: 4},
		{SizeBytes: 512 << 10, Ways: 16, LatencyCycles: 20, MSHRs: 20},
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("%+v rejected: %v", c, err)
		}
	}
	bad := []Config{
		{SizeBytes: 0, Ways: 2},
		{SizeBytes: 100, Ways: 2},
		{SizeBytes: 4096, Ways: 0},
		{SizeBytes: 4096, Ways: 3},            // 64 lines / 3 ways
		{SizeBytes: 12 * 1024, Ways: 2},       // 96 sets, not power of two
		{SizeBytes: 4096, Ways: 2, MSHRs: -1}, // negative MSHRs
		{SizeBytes: 4096, Ways: 2, LatencyCycles: -5},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%+v accepted", c)
		}
	}
}

func TestLookupMissThenFillHit(t *testing.T) {
	c := mustNew(t, smallCfg())
	if c.Lookup(0x1000, false) {
		t.Fatal("cold cache hit")
	}
	c.Fill(0x1000, false)
	if !c.Lookup(0x1000, false) {
		t.Fatal("miss after fill")
	}
	if !c.Lookup(0x1008, false) {
		t.Fatal("same line different offset missed")
	}
	st := c.Stats()
	if st.Accesses != 3 || st.Hits != 2 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c := mustNew(t, smallCfg()) // 32 sets, 2 ways
	setSpan := uint64(32 * LineBytes)
	a, b, d := uint64(0), setSpan*32, setSpan*64 // all map to set 0
	c.Fill(a, false)
	c.Fill(b, false)
	c.Lookup(a, false) // make a more recent than b
	v := c.Fill(d, false)
	if !v.Valid || v.Addr != b {
		t.Errorf("evicted %+v, want addr %#x (LRU)", v, b)
	}
	if !c.Probe(a) || !c.Probe(d) || c.Probe(b) {
		t.Error("wrong set contents after eviction")
	}
}

func TestDirtyWritebackSignal(t *testing.T) {
	c := mustNew(t, smallCfg())
	setSpan := uint64(32 * LineBytes)
	c.Fill(0, false)
	c.Lookup(0, true) // dirty it
	c.Fill(setSpan*32, false)
	v := c.Fill(setSpan*64, false) // evicts line 0 (LRU)
	if !v.Valid || !v.Dirty || v.Addr != 0 {
		t.Errorf("victim = %+v, want dirty addr 0", v)
	}
	if st := c.Stats(); st.Writebacks != 1 || st.Evictions != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFillExistingUpdatesDirty(t *testing.T) {
	c := mustNew(t, smallCfg())
	c.Fill(0x40, false)
	if v := c.Fill(0x40, true); v.Valid {
		t.Errorf("refill of present line evicted %+v", v)
	}
	_, dirty := c.Invalidate(0x40)
	if !dirty {
		t.Error("refill with dirty=true did not mark line dirty")
	}
}

func TestInvalidate(t *testing.T) {
	c := mustNew(t, smallCfg())
	c.Fill(0x80, true)
	present, dirty := c.Invalidate(0x80)
	if !present || !dirty {
		t.Errorf("Invalidate = (%v,%v), want (true,true)", present, dirty)
	}
	if present, _ := c.Invalidate(0x80); present {
		t.Error("double invalidate reported present")
	}
	if c.Probe(0x80) {
		t.Error("line still present after invalidate")
	}
}

func TestSetDirty(t *testing.T) {
	c := mustNew(t, smallCfg())
	c.Fill(0xc0, false)
	if !c.SetDirty(0xc0) {
		t.Error("SetDirty missed a present line")
	}
	if c.SetDirty(0x123400) {
		t.Error("SetDirty hit an absent line")
	}
	_, dirty := c.Invalidate(0xc0)
	if !dirty {
		t.Error("SetDirty did not stick")
	}
}

func TestProbeDoesNotPerturb(t *testing.T) {
	c := mustNew(t, smallCfg())
	c.Fill(0, false)
	before := c.Stats()
	for i := 0; i < 10; i++ {
		c.Probe(0)
		c.Probe(0x999940)
	}
	if c.Stats() != before {
		t.Error("Probe changed stats")
	}
}

func TestOccupancyBounded(t *testing.T) {
	cfg := smallCfg()
	c := mustNew(t, cfg)
	maxLines := cfg.SizeBytes / LineBytes
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10*maxLines; i++ {
		c.Fill(uint64(rng.Intn(1<<24))&^63, rng.Intn(2) == 0)
	}
	if occ := c.Occupancy(); occ > maxLines {
		t.Errorf("occupancy %d exceeds capacity %d", occ, maxLines)
	}
}

func TestWorkingSetFitsNoCapacityMisses(t *testing.T) {
	cfg := smallCfg()
	c := mustNew(t, cfg)
	lines := cfg.SizeBytes / LineBytes / 2 // half capacity, 2-way: no conflicts
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < lines; i++ {
			addr := uint64(i * LineBytes)
			if !c.Lookup(addr, false) {
				c.Fill(addr, false)
			}
		}
	}
	st := c.Stats()
	if st.Misses != uint64(lines) {
		t.Errorf("misses = %d, want %d (only cold misses)", st.Misses, lines)
	}
}

// Property: a cache never holds two copies of one line, and occupancy never
// exceeds capacity, under arbitrary mixed operations.
func TestPropertyNoDuplicatesBoundedOccupancy(t *testing.T) {
	cfg := Config{SizeBytes: 2048, Ways: 4, LatencyCycles: 1, MSHRs: 1}
	f := func(seed int64, ops uint8) bool {
		c, err := New(cfg)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		n := int(ops)%200 + 20
		for i := 0; i < n; i++ {
			addr := uint64(rng.Intn(1<<14)) &^ 63
			switch rng.Intn(4) {
			case 0:
				c.Lookup(addr, rng.Intn(2) == 0)
			case 1:
				c.Fill(addr, rng.Intn(2) == 0)
			case 2:
				c.Invalidate(addr)
			case 3:
				if !c.Lookup(addr, false) {
					c.Fill(addr, false)
				}
			}
		}
		if c.Occupancy() > cfg.SizeBytes/LineBytes {
			return false
		}
		// No duplicates: probing and invalidating every line twice must
		// never find a second copy.
		for a := uint64(0); a < 1<<14; a += 64 {
			if c.Probe(a) {
				c.Invalidate(a)
				if c.Probe(a) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: LRU means a just-touched line in a full set survives the next
// single fill to that set.
func TestPropertyLRUKeepsMostRecent(t *testing.T) {
	cfg := smallCfg()
	f := func(seed int64) bool {
		c, err := New(cfg)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		sets := cfg.SizeBytes / LineBytes / cfg.Ways
		set := uint64(rng.Intn(sets))
		span := uint64(sets * LineBytes)
		base := set * LineBytes
		// Fill the set with Ways distinct lines.
		for w := 0; w < cfg.Ways; w++ {
			c.Fill(base+uint64(w)*span*2, false)
		}
		keep := base + uint64(rng.Intn(cfg.Ways))*span*2
		c.Lookup(keep, false)
		c.Fill(base+uint64(cfg.Ways)*span*2+span*64, false)
		return c.Probe(keep)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLineAddr(t *testing.T) {
	if LineAddr(0x12345) != 0x12340 {
		t.Errorf("LineAddr = %#x", LineAddr(0x12345))
	}
	if LineAddr(0x40) != 0x40 {
		t.Error("aligned address changed")
	}
}

func BenchmarkLookupHit(b *testing.B) {
	c, _ := New(Config{SizeBytes: 512 << 10, Ways: 16, LatencyCycles: 20, MSHRs: 20})
	for i := 0; i < 1024; i++ {
		c.Fill(uint64(i*LineBytes), false)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(uint64(i%1024)*LineBytes, false)
	}
}
