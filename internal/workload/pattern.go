package workload

import "fmt"

// Pattern is a memory object's access behavior. The pattern determines
// both cache behavior (spatial locality, working-set size) and memory-level
// parallelism (dependent vs. independent loads), the two axes MOCA
// classifies on.
type Pattern int

const (
	// Stream walks the object sequentially with a configurable stride;
	// loads are independent (high MLP). Misses scale with stride/line.
	Stream Pattern = iota
	// StreamDep walks sequentially but each load consumes the previous
	// one's value (a reduction or recurrence): streaming footprint with
	// serialized misses — latency-bound despite regular addresses.
	StreamDep
	// Chase performs dependent uniform-random loads (pointer chasing):
	// every access is a likely miss and MLP is 1 — the classic
	// latency-sensitive object.
	Chase
	// Random performs independent uniform-random accesses: likely misses
	// with high MLP — the classic bandwidth-sensitive object.
	Random
	// Resident walks a small hot window that fits in cache: almost no
	// misses after warm-up — the non-memory-intensive object.
	Resident
	// Burst performs independent random bursts: jump to a random spot,
	// stream a few lines, jump again. Misses are frequent and overlapped
	// (high MLP) with enough row locality to reward wide-row modules —
	// bandwidth-sensitive with realistic regional locality.
	Burst
	// Hotspot performs independent random accesses with an 90/10 skew:
	// 90% of accesses land in the first tenth of the object. Page-level
	// heat is concentrated — the access shape dynamic page-migration
	// policies are designed for.
	Hotspot
)

func (p Pattern) String() string {
	switch p {
	case Stream:
		return "stream"
	case StreamDep:
		return "stream-dep"
	case Chase:
		return "chase"
	case Random:
		return "random"
	case Resident:
		return "resident"
	case Burst:
		return "burst"
	case Hotspot:
		return "hotspot"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// residentWindow bounds the hot working set of Resident objects so it fits
// comfortably inside the 512 KB L2 (Table I).
const residentWindow = 128 << 10

// cursor generates addresses for one live object instance.
type cursor struct {
	pattern   Pattern
	base      uint64
	size      uint64
	stride    uint64
	hot       uint64 // Resident window size
	pos       uint64
	burstBase uint64 // Burst: current burst's random base
	rng       *RNG
}

func newCursor(p Pattern, base, size, stride, hot uint64, rng *RNG) *cursor {
	if stride == 0 {
		stride = 8
	}
	if hot == 0 || hot > size {
		hot = size
	}
	if hot > residentWindow {
		hot = residentWindow
	}
	return &cursor{pattern: p, base: base, size: size, stride: stride, hot: hot, rng: rng}
}

// next returns the next access address and whether a load at it depends on
// the previous load's value.
func (c *cursor) next() (addr uint64, dependsOnPrev bool) {
	switch c.pattern {
	case Stream, StreamDep:
		addr = c.base + c.pos
		c.pos += c.stride
		if c.pos >= c.size {
			c.pos = 0
		}
		return addr, c.pattern == StreamDep
	case Chase:
		off := c.rng.Uint64n(c.size) &^ 7
		return c.base + off, true
	case Random:
		off := c.rng.Uint64n(c.size) &^ 7
		return c.base + off, false
	case Resident:
		addr = c.base + c.pos
		c.pos += c.stride
		if c.pos >= c.hot {
			c.pos = 0
		}
		return addr, false
	case Burst:
		// 8 lines per burst, then jump. burstPos counts bytes into the
		// current burst, reusing the pos field.
		const burstBytes = 8 * 64
		if c.pos >= burstBytes || (c.pos == 0 && c.burstBase == 0) {
			c.pos = 0
			c.burstBase = c.rng.Uint64n(c.size-burstBytes) &^ 63
		}
		addr = c.base + c.burstBase + c.pos
		c.pos += c.stride
		return addr, false
	case Hotspot:
		region := c.size / 10
		if region < 4096 {
			region = c.size
		}
		var off uint64
		if c.rng.Float64() < 0.9 {
			off = c.rng.Uint64n(region) &^ 7
		} else {
			off = c.rng.Uint64n(c.size) &^ 7
		}
		return c.base + off, false
	default:
		panic(fmt.Sprintf("workload: unknown pattern %d", int(c.pattern)))
	}
}
