package workload

import (
	"testing"
	"testing/quick"

	"moca/internal/cpu"
	"moca/internal/heap"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 10 {
		t.Errorf("different seeds matched %d/1000 draws", same)
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(17); v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		if v := r.Uint64n(3); v >= 3 {
			t.Fatalf("Uint64n out of range: %d", v)
		}
	}
}

func TestRNGPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestCursorStreamWraps(t *testing.T) {
	c := newCursor(Stream, 1000, 64, 16, 0, NewRNG(1))
	var addrs []uint64
	for i := 0; i < 6; i++ {
		a, dep := c.next()
		if dep {
			t.Error("stream load marked dependent")
		}
		addrs = append(addrs, a)
	}
	want := []uint64{1000, 1016, 1032, 1048, 1000, 1016}
	for i, w := range want {
		if addrs[i] != w {
			t.Fatalf("stream addrs = %v, want %v", addrs, want)
		}
	}
}

func TestCursorStreamDepIsDependent(t *testing.T) {
	c := newCursor(StreamDep, 0, 1024, 8, 0, NewRNG(1))
	_, dep := c.next()
	if !dep {
		t.Error("stream-dep load not dependent")
	}
}

func TestCursorChaseAndRandomStayInBounds(t *testing.T) {
	for _, p := range []Pattern{Chase, Random} {
		c := newCursor(p, 4096, 8192, 8, 0, NewRNG(9))
		for i := 0; i < 10000; i++ {
			a, dep := c.next()
			if a < 4096 || a >= 4096+8192 {
				t.Fatalf("%v address %d out of bounds", p, a)
			}
			if (p == Chase) != dep {
				t.Fatalf("%v dependency = %v", p, dep)
			}
		}
	}
}

func TestCursorResidentStaysInWindow(t *testing.T) {
	c := newCursor(Resident, 0, 4*mb, 8, 0, NewRNG(1))
	for i := 0; i < 100000; i++ {
		a, _ := c.next()
		if a >= residentWindow {
			t.Fatalf("resident access at %d beyond window %d", a, residentWindow)
		}
	}
}

func TestPatternStrings(t *testing.T) {
	for p, want := range map[Pattern]string{
		Stream: "stream", StreamDep: "stream-dep", Chase: "chase",
		Random: "random", Resident: "resident",
	} {
		if p.String() != want {
			t.Errorf("%d.String() = %q", int(p), p.String())
		}
	}
}

func TestSuiteValidatesAndMatchesTableIII(t *testing.T) {
	suite := Suite()
	if len(suite) != 10 {
		t.Fatalf("suite has %d apps, want 10", len(suite))
	}
	names := map[string]bool{}
	for _, s := range suite {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if names[s.Name] {
			t.Errorf("duplicate app %s", s.Name)
		}
		names[s.Name] = true
	}
	for _, want := range []string{"mcf", "milc", "libquantum", "disparity", "mser", "lbm", "tracking", "gcc", "sift", "stitch"} {
		if !names[want] {
			t.Errorf("missing Table III app %q", want)
		}
	}
}

func TestByName(t *testing.T) {
	if s, ok := ByName("mcf"); !ok || s.Name != "mcf" {
		t.Error("ByName(mcf) failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName(nope) succeeded")
	}
	if len(Names()) != 10 {
		t.Error("Names() wrong length")
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	good := MCF()
	cases := []func(*AppSpec){
		func(s *AppSpec) { s.Name = "" },
		func(s *AppSpec) { s.ComputePerMemory = -1 },
		func(s *AppSpec) { s.Objects = nil },
		func(s *AppSpec) { s.Objects[0].SizeBytes = 32 },
		func(s *AppSpec) { s.Objects[0].WriteFrac = 1.5 },
		func(s *AppSpec) { s.Objects[0].Instances = -2 },
		func(s *AppSpec) {
			for i := range s.Objects {
				s.Objects[i].Weight = 0
			}
			s.StackWeight, s.CodeWeight, s.GlobalsWeight = 0, 0, 0
		},
	}
	for i, mutate := range cases {
		s := MCF()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
}

func TestScaledAndInputs(t *testing.T) {
	s := MCF()
	half := s.Scaled(0.5)
	if half.Objects[0].SizeBytes != s.Objects[0].SizeBytes/2 {
		t.Error("Scaled did not halve sizes")
	}
	if half.Footprint() >= s.Footprint() {
		t.Error("scaled footprint not smaller")
	}
	tiny := s.Scaled(0.0000001)
	for _, o := range tiny.Objects {
		if o.SizeBytes < 64 {
			t.Error("scaling went below one line")
		}
	}
	train := s.ForInput(Train)
	if train.Seed == s.Seed {
		t.Error("train input reuses the ref seed")
	}
	if train.Footprint() >= s.Footprint() {
		t.Error("train footprint not smaller than ref")
	}
	if ref := s.ForInput(Ref); ref.Seed != s.Seed || ref.Footprint() != s.Footprint() {
		t.Error("ref input altered the spec")
	}
	if Train.String() != "train" || Ref.String() != "ref" {
		t.Error("input names")
	}
}

func TestInstantiateAllocatesAllObjects(t *testing.T) {
	spec := GCC()
	a := heap.New(heap.Config{})
	app, err := Instantiate(spec, a, 0)
	if err != nil {
		t.Fatal(err)
	}
	// gcc: 4 sites -> 4 names (+3 pseudo), 23 instances.
	if got := a.NameCount(); got != 7 {
		t.Errorf("names = %d, want 7 (3 pseudo + 4 sites)", got)
	}
	info, _ := a.Name(heap.FirstHeapName + 3)
	if info.Allocs != 20 {
		t.Errorf("node_pool allocs = %d, want 20 instances under one name", info.Allocs)
	}
	if app.Footprint() != spec.Footprint() {
		t.Error("footprint mismatch")
	}
	if _, ok := app.Object("symtab"); !ok {
		t.Error("symtab lookup failed")
	}
	if _, ok := app.Object("nonexistent"); ok {
		t.Error("bogus label found")
	}
}

func TestStreamInitPhaseTouchesEveryPage(t *testing.T) {
	spec := Libquantum()
	a := heap.New(heap.Config{})
	app, err := Instantiate(spec, a, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := app.Stream()
	pages := map[uint64]bool{}
	qreg, _ := app.Object("qreg")
	// Drain the init phase: collect stores until we see a load.
	for i := 0; i < 10_000_000; i++ {
		in, ok := s.Next()
		if !ok {
			t.Fatal("stream ended")
		}
		if in.Kind == cpu.Load {
			break
		}
		if in.Kind == cpu.Store {
			pages[in.VAddr>>12] = true
		}
	}
	for p := qreg.Base >> 12; p < (qreg.Base+qreg.Size)>>12; p++ {
		if !pages[p] {
			t.Fatalf("init phase skipped page %#x of qreg", p)
		}
	}
}

func TestStreamSteadyStateMix(t *testing.T) {
	spec := MCF()
	a := heap.New(heap.Config{})
	app, _ := Instantiate(spec, a, 0)
	s := app.Stream()
	counts := map[uint64]int{}
	var computes, mems int
	var deps int
	// Skip init.
	for {
		in, _ := s.Next()
		if in.Kind == cpu.Load {
			break
		}
	}
	for i := 0; i < 50000; i++ {
		in, ok := s.Next()
		if !ok {
			t.Fatal("stream ended")
		}
		switch in.Kind {
		case cpu.Compute:
			computes += int(in.N)
		case cpu.Load, cpu.Store:
			mems++
			counts[in.Obj]++
			if in.Kind == cpu.Load && in.DependsOnPrev {
				deps++
			}
		}
	}
	if mems == 0 || computes == 0 {
		t.Fatal("no steady-state mix")
	}
	ratio := float64(computes) / float64(mems)
	if ratio < 6 || ratio > 10 {
		t.Errorf("compute/memory ratio = %.1f, want ~8 (mcf CPM)", ratio)
	}
	if len(counts) < 5 {
		t.Errorf("only %d distinct objects accessed", len(counts))
	}
	if deps == 0 {
		t.Error("mcf produced no dependent loads")
	}
	// nodes (weight .38) should dominate arcs (.30) etc.
	nodes, _ := app.Object("nodes")
	arcs, _ := app.Object("arcs")
	if counts[uint64(nodes.Name)] <= counts[uint64(arcs.Name)] {
		t.Errorf("nodes %d <= arcs %d accesses despite higher weight",
			counts[uint64(nodes.Name)], counts[uint64(arcs.Name)])
	}
}

func TestStreamDeterministic(t *testing.T) {
	run := func() []cpu.Instr {
		a := heap.New(heap.Config{})
		app, _ := Instantiate(Milc(), a, 5)
		s := app.Stream()
		var out []cpu.Instr
		for i := 0; i < 5000; i++ {
			in, _ := s.Next()
			out = append(out, in)
		}
		return out
	}
	x, y := run(), run()
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("streams diverged at %d: %+v vs %+v", i, x[i], y[i])
		}
	}
}

func TestSeedSaltDifferentiatesInstances(t *testing.T) {
	a1 := heap.New(heap.Config{})
	a2 := heap.New(heap.Config{})
	app1, _ := Instantiate(GCC(), a1, 0)
	app2, _ := Instantiate(GCC(), a2, 1)
	s1, s2 := app1.Stream(), app2.Stream()
	same := 0
	for i := 0; i < 2000; i++ {
		i1, _ := s1.Next()
		i2, _ := s2.Next()
		if i1 == i2 {
			same++
		}
	}
	// Init phases are identical (same layout); steady state must differ.
	if same == 2000 {
		t.Error("different salts produced identical streams")
	}
}

func TestMixes(t *testing.T) {
	mixes := Mixes()
	if len(mixes) != 10 {
		t.Fatalf("mixes = %d, want 10", len(mixes))
	}
	for _, m := range mixes {
		if len(m.Apps) != 4 {
			t.Errorf("mix %s has %d apps, want 4 (4-core system)", m.Name, len(m.Apps))
		}
		specs, err := m.Specs()
		if err != nil {
			t.Errorf("mix %s: %v", m.Name, err)
		}
		if len(specs) != len(m.Apps) {
			t.Errorf("mix %s resolved %d specs", m.Name, len(specs))
		}
	}
	sweep := ConfigSweepMixes()
	if len(sweep) != 5 {
		t.Fatalf("config sweep mixes = %d, want 5 (Figs. 14-15)", len(sweep))
	}
	if _, ok := MixByName("2L1B1N"); !ok {
		t.Error("2L1B1N missing")
	}
	if _, ok := MixByName("9Z"); ok {
		t.Error("bogus mix found")
	}
	bad := Mix{Name: "bad", Apps: []string{"nope"}}
	if _, err := bad.Specs(); err == nil {
		t.Error("unknown app in mix accepted")
	}
}

func TestFootprintsFitExperimentScale(t *testing.T) {
	// Single-app footprints must exceed the 4 MB RLDRAM module (the
	// capacity-pressure premise) and every 4-app mix must fit in the
	// 32 MB total system.
	const rldram = 4 * mb
	const total = 32 * mb
	intense := map[string]bool{"mcf": true, "milc": true, "libquantum": true, "disparity": true,
		"mser": true, "lbm": true, "tracking": true}
	for _, s := range Suite() {
		if intense[s.Name] && s.Footprint() <= rldram {
			t.Errorf("%s footprint %d <= RLDRAM module %d; no capacity pressure", s.Name, s.Footprint(), rldram)
		}
	}
	for _, m := range Mixes() {
		specs, _ := m.Specs()
		var sum uint64
		for _, s := range specs {
			sum += s.Footprint()
		}
		// Leave headroom for stack/code pages.
		if sum > total*9/10 {
			t.Errorf("mix %s footprint %d overflows the 32 MB system", m.Name, sum)
		}
	}
}

// Property: any valid spec instantiates with all accesses inside its
// objects' bounds.
func TestPropertyAccessesInBounds(t *testing.T) {
	f := func(seedRaw uint16, which uint8) bool {
		suite := Suite()
		spec := suite[int(which)%len(suite)]
		a := heap.New(heap.Config{})
		app, err := Instantiate(spec, a, uint64(seedRaw))
		if err != nil {
			return false
		}
		// Every access must land in the segment its object implies.
		s := app.Stream()
		for i := 0; i < 3000; i++ {
			in, ok := s.Next()
			if !ok {
				return false
			}
			if in.Kind == cpu.Compute {
				continue
			}
			seg := heap.SegmentOf(in.VAddr)
			switch in.Obj {
			case uint64(heap.ObjStack):
				if seg != heap.SegStack {
					return false
				}
			case uint64(heap.ObjCode):
				if seg != heap.SegCode {
					return false
				}
			case uint64(heap.ObjGlobals):
				if seg != heap.SegData {
					return false
				}
			default:
				if seg != heap.SegHeap {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestHotspotPatternSkew(t *testing.T) {
	c := newCursor(Hotspot, 0, 1<<20, 8, 0, NewRNG(5))
	inHot := 0
	const n = 20000
	for i := 0; i < n; i++ {
		a, dep := c.next()
		if dep {
			t.Fatal("hotspot loads should be independent")
		}
		if a >= 1<<20 {
			t.Fatalf("address %d out of bounds", a)
		}
		if a < 1<<20/10 {
			inHot++
		}
	}
	frac := float64(inHot) / n
	if frac < 0.85 || frac > 0.95 {
		t.Errorf("hot-region fraction = %.3f, want ~0.91", frac)
	}
}

func TestHotspotProbeValidates(t *testing.T) {
	spec := HotspotProbe()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	a := heap.New(heap.Config{})
	if _, err := Instantiate(spec, a, 0); err != nil {
		t.Fatal(err)
	}
}

func TestPhasedAppShiftsWeights(t *testing.T) {
	spec := AppSpec{
		Name:             "phased",
		ComputePerMemory: 4,
		Seed:             9,
		Objects: []ObjectSpec{
			{Label: "a", Site: 1, SizeBytes: 256 * kb, Pattern: Stream, Weight: 0.5},
			{Label: "b", Site: 2, SizeBytes: 256 * kb, Pattern: Stream, Weight: 0.01},
		},
		StackWeight: 0.05,
		Phases: []PhaseSpec{
			{Items: 5000, Weights: map[string]float64{"a": 0.5, "b": 0.01}},
			{Items: 5000, Weights: map[string]float64{"a": 0.01, "b": 0.5}},
		},
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	a := heap.New(heap.Config{})
	app, err := Instantiate(spec, a, 0)
	if err != nil {
		t.Fatal(err)
	}
	objA, _ := app.Object("a")
	objB, _ := app.Object("b")
	s := app.Stream()
	// Skip the initialization phase: it is exactly one compute + one
	// page-touch store per init op.
	for i := 0; i < 2*len(spec.Objects)*256*1024/4096+16; i++ {
		s.Next()
	}
	count := func(items int) (aHits, bHits int) {
		for i := 0; i < items; i++ {
			in, _ := s.Next()
			if in.Kind == cpu.Compute {
				continue
			}
			switch in.Obj {
			case uint64(objA.Name):
				aHits++
			case uint64(objB.Name):
				bHits++
			}
		}
		return
	}
	a1, b1 := count(8000) // mostly phase 0
	if a1 <= b1*3 {
		t.Errorf("phase 0: a=%d b=%d, expected a-dominated", a1, b1)
	}
	// Advance well into phase 1.
	for app.Phase() == 0 {
		s.Next()
	}
	a2, b2 := count(8000)
	if b2 <= a2*3 {
		t.Errorf("phase 1: a=%d b=%d, expected b-dominated", a2, b2)
	}
}

func TestPhaseValidation(t *testing.T) {
	base := AppSpec{
		Name: "p", ComputePerMemory: 4, Seed: 1,
		Objects:     []ObjectSpec{{Label: "a", Site: 1, SizeBytes: 64 * kb, Pattern: Stream, Weight: 0.5}},
		StackWeight: 0.1,
	}
	bad := base
	bad.Phases = []PhaseSpec{{Items: 0}}
	if err := bad.Validate(); err == nil {
		t.Error("zero-length phase accepted")
	}
	bad = base
	bad.Phases = []PhaseSpec{{Items: 10, Weights: map[string]float64{"zz": 1}}}
	if err := bad.Validate(); err == nil {
		t.Error("unknown label override accepted")
	}
	bad = base
	bad.Phases = []PhaseSpec{{Items: 10, Weights: map[string]float64{"a": -1}}}
	if err := bad.Validate(); err == nil {
		t.Error("negative phase weight accepted")
	}
	good := base
	good.Phases = []PhaseSpec{{Items: 10, Weights: map[string]float64{"a": 0.9}}}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
}
