// Package workload provides the synthetic application suite that stands in
// for the paper's SPEC CPU2006 and SDVBS benchmarks (the substitution
// DESIGN.md documents). Each application is a deterministic generator of an
// instruction/memory-access stream over named heap objects; per-object
// access patterns (pointer chase, streaming, random, cache-resident)
// produce the LLC MPKI and ROB-stall diversity of the paper's Figs. 1-2,
// and application-level classes match Table III.
package workload

// RNG is a splitmix64 generator. The simulator carries its own PRNG so that
// streams are bit-identical across Go releases and platforms.
type RNG struct {
	state uint64
}

// NewRNG seeds a generator. Distinct seeds give independent streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed + 0x9E3779B97F4A7C15}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uint64n returns a uniform value in [0, n). n must be positive.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("workload: Uint64n(0)")
	}
	return r.Uint64() % n
}

// Intn returns a uniform int in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}
