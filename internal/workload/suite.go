package workload

import (
	"fmt"
	"sort"

	"moca/internal/heap"
)

// The synthetic suite mirrors the paper's application selection (Table
// III): four latency-sensitive SPEC/SDVBS apps, three bandwidth-sensitive,
// three non-memory-intensive. Object inventories are invented but
// calibrated so that (a) application-level classes match Table III, (b)
// per-object scatter is diverse as in Fig. 2, and (c) the case studies the
// paper narrates hold: disparity has two dominant objects with the
// less-intense one allocated (and first-touched) first; milc and mser have
// only a few hot objects among many cold ones; gcc is non-intensive
// overall yet owns one object above the MOCA latency threshold.
//
// Sizes are stated at "experiment scale", 1/64 of the paper's system (see
// DESIGN.md): the default heterogeneous system is 4 MB RLDRAM + 12 MB HBM
// + 2x8 MB LPDDR2, so single-application footprints exceed the RLDRAM
// module and four-app mixes pressure total capacity, exactly the capacity
// dynamics the paper's results hinge on.

const (
	kb = 1 << 10
	mb = 1 << 20
)

// Suite returns the full application suite in Table III order.
func Suite() []AppSpec {
	return []AppSpec{
		MCF(), Milc(), Libquantum(), Disparity(), // L
		Mser(), LBM(), Tracking(), // B
		GCC(), Sift(), Stitch(), // N
	}
}

// ByName finds an application spec by name.
func ByName(name string) (AppSpec, bool) {
	for _, s := range Suite() {
		if s.Name == name {
			return s, true
		}
	}
	return AppSpec{}, false
}

// Names lists the suite's application names.
func Names() []string {
	var out []string
	for _, s := range Suite() {
		out = append(out, s.Name)
	}
	return out
}

// MCF models SPEC mcf: network-simplex pointer chasing over node and arc
// arrays — the canonical latency-sensitive application.
func MCF() AppSpec {
	return AppSpec{
		Name:             "mcf",
		ComputePerMemory: 8,
		ComputeJitter:    3,
		Seed:             0x6d6366,
		Objects: []ObjectSpec{
			// The raw input graph is read once at startup: a large cold
			// object whose pages fault first, claiming the best-fit
			// module under application-level placement.
			{Label: "input_graph", Site: 0x4011f0, Context: []heap.Site{0x4009f0}, SizeBytes: 1536 * kb, Pattern: Stream, Weight: 0.015, StrideBytes: 64, WriteFrac: 0.1},
			{Label: "nodes", Site: 0x401200, Context: []heap.Site{0x400a00}, SizeBytes: 2500 * kb, Pattern: Chase, Weight: 0.38, WriteFrac: 0.05},
			{Label: "arcs", Site: 0x401210, Context: []heap.Site{0x400a00}, SizeBytes: 2500 * kb, Pattern: Chase, Weight: 0.30, WriteFrac: 0.02},
			{Label: "basket", Site: 0x401220, Context: []heap.Site{0x400a10}, SizeBytes: 256 * kb, Pattern: Resident, Weight: 0.12, WriteFrac: 0.30, HotBytes: 96 * kb},
			{Label: "dual", Site: 0x401230, Context: []heap.Site{0x400a10}, SizeBytes: 512 * kb, Pattern: Stream, Weight: 0.05, StrideBytes: 8},
		},
		StackWeight: 0.10, CodeWeight: 0.05,
	}
}

// Milc models SPEC milc: a few hot lattice-QCD field objects among many
// cold auxiliary buffers (the Fig. 2 milc shape).
func Milc() AppSpec {
	spec := AppSpec{
		Name:             "milc",
		ComputePerMemory: 10,
		ComputeJitter:    4,
		Seed:             0x6d696c63,
		Objects: []ObjectSpec{
			// Neighbor tables, built during setup and rarely revisited.
			{Label: "geom_tables", Site: 0x4020f0, Context: []heap.Site{0x401ef0}, SizeBytes: 1280 * kb, Pattern: Resident, Weight: 0.015, WriteFrac: 0.2, HotBytes: 16 * kb},
			{Label: "su3_lattice", Site: 0x402100, Context: []heap.Site{0x401f00}, SizeBytes: 3 * mb, Pattern: Chase, Weight: 0.30, WriteFrac: 0.10},
			{Label: "gauge_field", Site: 0x402110, Context: []heap.Site{0x401f00}, SizeBytes: 2 * mb, Pattern: StreamDep, Weight: 0.15, StrideBytes: 64, WriteFrac: 0.05},
			{Label: "momenta", Site: 0x402120, Context: []heap.Site{0x401f10}, SizeBytes: 1 * mb, Pattern: Stream, Weight: 0.08, StrideBytes: 8, WriteFrac: 0.25},
		},
		StackWeight: 0.18, CodeWeight: 0.05, GlobalsWeight: 0.02,
	}
	// Many cold helper buffers: distinct sites, tiny weights.
	for i := 0; i < 6; i++ {
		spec.Objects = append(spec.Objects, ObjectSpec{
			Label:     fmt.Sprintf("tmpvec%d", i),
			Site:      heap.Site(0x402200 + i*0x10),
			Context:   []heap.Site{0x401f20},
			SizeBytes: 96 * kb,
			Pattern:   Resident,
			Weight:    0.02,
			WriteFrac: 0.3,
			HotBytes:  24 * kb,
		})
	}
	return spec
}

// Libquantum models SPEC libquantum: a serialized sweep over one large
// quantum-register array — streaming footprint, latency-bound recurrence.
func Libquantum() AppSpec {
	return AppSpec{
		Name:             "libquantum",
		ComputePerMemory: 8,
		ComputeJitter:    3,
		Seed:             0x6c6962,
		Objects: []ObjectSpec{
			// The classical input state, streamed once during setup.
			{Label: "init_state", Site: 0x4030f0, Context: []heap.Site{0x402ff0}, SizeBytes: 1280 * kb, Pattern: Stream, Weight: 0.015, StrideBytes: 64, WriteFrac: 0.1},
			{Label: "qreg", Site: 0x403100, Context: []heap.Site{0x403000}, SizeBytes: 3584 * kb, Pattern: StreamDep, Weight: 0.35, StrideBytes: 64, WriteFrac: 0.25},
			{Label: "workspace", Site: 0x403110, Context: []heap.Site{0x403010}, SizeBytes: 512 * kb, Pattern: Resident, Weight: 0.15, WriteFrac: 0.4, HotBytes: 96 * kb},
		},
		StackWeight: 0.18, CodeWeight: 0.10,
	}
}

// Disparity models SDVBS disparity, the Section VI-A case study: the
// less-intense image buffer is allocated and initialized first (so under
// Heter-App its pages claim the scarce RLDRAM), while the hotter disparity
// map is allocated second.
func Disparity() AppSpec {
	return AppSpec{
		Name:             "disparity",
		ComputePerMemory: 7,
		ComputeJitter:    3,
		Seed:             0x646973,
		Objects: []ObjectSpec{
			{Label: "images", Site: 0x404100, Context: []heap.Site{0x404000}, SizeBytes: 3 * mb, Pattern: Stream, Weight: 0.28, StrideBytes: 16, WriteFrac: 0.05},
			{Label: "disparity_map", Site: 0x404110, Context: []heap.Site{0x404010}, SizeBytes: 2500 * kb, Pattern: Chase, Weight: 0.36, WriteFrac: 0.30},
			{Label: "kernel_buf", Site: 0x404120, Context: []heap.Site{0x404020}, SizeBytes: 128 * kb, Pattern: Resident, Weight: 0.08, WriteFrac: 0.3, HotBytes: 96 * kb},
		},
		StackWeight: 0.20, CodeWeight: 0.05,
	}
}

// Mser models SDVBS mser: one hot independently-accessed region map among
// many cold objects — bandwidth-sensitive.
func Mser() AppSpec {
	spec := AppSpec{
		Name:             "mser",
		ComputePerMemory: 4,
		ComputeJitter:    2,
		Seed:             0x6d736572,
		Objects: []ObjectSpec{
			// The input image, scanned once up front.
			{Label: "input_image", Site: 0x4050f0, Context: []heap.Site{0x404ff0}, SizeBytes: 1536 * kb, Pattern: Stream, Weight: 0.015, StrideBytes: 64, WriteFrac: 0.05},
			{Label: "region_map", Site: 0x405100, Context: []heap.Site{0x405000}, SizeBytes: 3584 * kb, Pattern: Burst, Weight: 0.45, StrideBytes: 32, WriteFrac: 0.15},
			{Label: "pixel_list", Site: 0x405110, Context: []heap.Site{0x405010}, SizeBytes: 1536 * kb, Pattern: Stream, Weight: 0.15, StrideBytes: 8, WriteFrac: 0.10},
		},
		StackWeight: 0.10, CodeWeight: 0.05,
	}
	for i := 0; i < 5; i++ {
		spec.Objects = append(spec.Objects, ObjectSpec{
			Label:     fmt.Sprintf("hist%d", i),
			Site:      heap.Site(0x405200 + i*0x10),
			Context:   []heap.Site{0x405020},
			SizeBytes: 64 * kb,
			Pattern:   Resident,
			Weight:    0.02,
			WriteFrac: 0.3,
			HotBytes:  32 * kb,
		})
	}
	return spec
}

// LBM models SPEC lbm: a lattice-Boltzmann stencil streaming two large
// grids with heavy writes — the canonical bandwidth-sensitive application.
func LBM() AppSpec {
	return AppSpec{
		Name:             "lbm",
		ComputePerMemory: 3,
		ComputeJitter:    1,
		Seed:             0x6c626d,
		Objects: []ObjectSpec{
			{Label: "src_grid", Site: 0x406100, Context: []heap.Site{0x406000}, SizeBytes: 3 * mb, Pattern: Stream, Weight: 0.33, StrideBytes: 16, WriteFrac: 0.05},
			{Label: "dst_grid", Site: 0x406110, Context: []heap.Site{0x406000}, SizeBytes: 3 * mb, Pattern: Stream, Weight: 0.33, StrideBytes: 16, WriteFrac: 0.80},
		},
		StackWeight: 0.08, CodeWeight: 0.04,
	}
}

// Tracking models SDVBS tracking: streaming image pyramids plus an
// independently-accessed feature table — bandwidth-sensitive.
func Tracking() AppSpec {
	return AppSpec{
		Name:             "tracking",
		ComputePerMemory: 6,
		ComputeJitter:    2,
		Seed:             0x747261,
		Objects: []ObjectSpec{
			// Raw input frames, decoded once.
			{Label: "raw_frames", Site: 0x4070f0, Context: []heap.Site{0x406ff0}, SizeBytes: 1280 * kb, Pattern: Stream, Weight: 0.01, StrideBytes: 64, WriteFrac: 0.1},
			{Label: "pyramid", Site: 0x407100, Context: []heap.Site{0x407000}, SizeBytes: 2560 * kb, Pattern: Stream, Weight: 0.30, StrideBytes: 16, WriteFrac: 0.10},
			{Label: "features", Site: 0x407110, Context: []heap.Site{0x407010}, SizeBytes: 768 * kb, Pattern: Burst, Weight: 0.12, StrideBytes: 32, WriteFrac: 0.20},
			{Label: "blur_buf", Site: 0x407120, Context: []heap.Site{0x407020}, SizeBytes: 512 * kb, Pattern: Resident, Weight: 0.10, WriteFrac: 0.3, HotBytes: 96 * kb},
		},
		StackWeight: 0.15, CodeWeight: 0.06,
	}
}

// GCC models SPEC gcc: non-memory-intensive overall, but with one symbol
// table whose pointer chasing exceeds the MOCA latency threshold — the
// Section VI-A observation that MOCA speeds up gcc by promoting that one
// object to RLDRAM. The node pool allocates many instances from one site,
// exercising the same-site-same-name rule.
func GCC() AppSpec {
	return AppSpec{
		Name:             "gcc",
		ComputePerMemory: 48,
		ComputeJitter:    12,
		Seed:             0x676363,
		Objects: []ObjectSpec{
			{Label: "symtab", Site: 0x408100, Context: []heap.Site{0x408000}, SizeBytes: 1536 * kb, Pattern: Chase, Weight: 0.035, WriteFrac: 0.10},
			{Label: "rtl", Site: 0x408110, Context: []heap.Site{0x408010}, SizeBytes: 1 * mb, Pattern: Resident, Weight: 0.25, WriteFrac: 0.30, HotBytes: 48 * kb},
			{Label: "tree", Site: 0x408120, Context: []heap.Site{0x408010}, SizeBytes: 512 * kb, Pattern: Resident, Weight: 0.20, WriteFrac: 0.30, HotBytes: 48 * kb},
			{Label: "node_pool", Site: 0x408130, Context: []heap.Site{0x408020}, SizeBytes: 8 * kb, Pattern: Resident, Weight: 0.10, WriteFrac: 0.40, Instances: 20},
		},
		StackWeight: 0.25, CodeWeight: 0.10, GlobalsWeight: 0.03,
	}
}

// Sift models SDVBS sift: cache-friendly descriptor computation.
func Sift() AppSpec {
	return AppSpec{
		Name:             "sift",
		ComputePerMemory: 28,
		ComputeJitter:    8,
		Seed:             0x736966,
		Objects: []ObjectSpec{
			{Label: "descriptors", Site: 0x409100, Context: []heap.Site{0x409000}, SizeBytes: 1 * mb, Pattern: Resident, Weight: 0.30, WriteFrac: 0.25, HotBytes: 96 * kb},
			{Label: "dog_stack", Site: 0x409110, Context: []heap.Site{0x409010}, SizeBytes: 768 * kb, Pattern: Resident, Weight: 0.20, WriteFrac: 0.20, HotBytes: 64 * kb},
			{Label: "keypoints", Site: 0x409120, Context: []heap.Site{0x409020}, SizeBytes: 256 * kb, Pattern: Stream, Weight: 0.05, StrideBytes: 16, WriteFrac: 0.10},
		},
		StackWeight: 0.25, CodeWeight: 0.08,
	}
}

// Stitch models SDVBS stitch: cache-friendly panorama blending.
func Stitch() AppSpec {
	return AppSpec{
		Name:             "stitch",
		ComputePerMemory: 32,
		ComputeJitter:    9,
		Seed:             0x737469,
		Objects: []ObjectSpec{
			{Label: "panorama", Site: 0x40a100, Context: []heap.Site{0x40a000}, SizeBytes: 2 * mb, Pattern: Stream, Weight: 0.04, StrideBytes: 32, WriteFrac: 0.50},
			{Label: "blend_buf", Site: 0x40a110, Context: []heap.Site{0x40a010}, SizeBytes: 512 * kb, Pattern: Resident, Weight: 0.25, WriteFrac: 0.30, HotBytes: 96 * kb},
			{Label: "warp_buf", Site: 0x40a120, Context: []heap.Site{0x40a020}, SizeBytes: 256 * kb, Pattern: Resident, Weight: 0.15, WriteFrac: 0.25, HotBytes: 64 * kb},
		},
		StackWeight: 0.25, CodeWeight: 0.08,
	}
}

// NamingProbe is a synthetic application (not part of the Table III
// suite) for the naming-depth ablation: both of its objects are allocated
// through the same wrapper function — identical return address — but from
// different calling contexts, one hot pointer-chaser and one cold buffer.
// The paper's 5-level naming separates them; return-address-only naming
// (depth 1) merges them into one misclassified object, the exact failure
// Fig. 3's convention exists to prevent.
func NamingProbe() AppSpec {
	const wrapperSite = heap.Site(0x40f100) // xmalloc()'s internal call site
	return AppSpec{
		Name:             "namingprobe",
		ComputePerMemory: 8,
		ComputeJitter:    2,
		Seed:             0x70726f6265,
		Objects: []ObjectSpec{
			{Label: "hot_graph", Site: wrapperSite, Context: []heap.Site{0x40f200, 0x40f300}, SizeBytes: 2 * mb, Pattern: Chase, Weight: 0.45, WriteFrac: 0.05},
			{Label: "cold_log", Site: wrapperSite, Context: []heap.Site{0x40f210, 0x40f310}, SizeBytes: 1 * mb, Pattern: Resident, Weight: 0.08, WriteFrac: 0.5, HotBytes: 32 * kb},
		},
		StackWeight: 0.15, CodeWeight: 0.05,
	}
}

// HotspotProbe is a synthetic application (not part of the Table III
// suite) whose one large object has strong page-level skew: 90% of its
// accesses hit a tenth of its pages. Dynamic page migration is built for
// exactly this shape, making the probe the fair stage for the
// MOCA-vs-migration comparison (Section IV-E).
func HotspotProbe() AppSpec {
	return AppSpec{
		Name:             "hotspotprobe",
		ComputePerMemory: 7,
		ComputeJitter:    2,
		Seed:             0x686f74,
		Objects: []ObjectSpec{
			{Label: "skewed_table", Site: 0x40e100, Context: []heap.Site{0x40e000}, SizeBytes: 6 * mb, Pattern: Hotspot, Weight: 0.45, WriteFrac: 0.15},
			{Label: "side_buf", Site: 0x40e110, Context: []heap.Site{0x40e010}, SizeBytes: 256 * kb, Pattern: Resident, Weight: 0.15, WriteFrac: 0.3, HotBytes: 64 * kb},
		},
		StackWeight: 0.15, CodeWeight: 0.05,
	}
}

// Mix is a named 4-application multi-program workload set, using the
// paper's xLyBzN naming (Section V-D).
type Mix struct {
	Name string
	Apps []string
}

// Mixes returns the ten 4-core workload sets used for Figs. 10-13. The
// last five include non-memory-intensive applications, as the paper's
// discussion requires.
func Mixes() []Mix {
	return []Mix{
		{Name: "4L", Apps: []string{"mcf", "milc", "libquantum", "disparity"}},
		{Name: "3L1B", Apps: []string{"mcf", "milc", "disparity", "lbm"}},
		{Name: "2L2B", Apps: []string{"mcf", "libquantum", "lbm", "mser"}},
		{Name: "1L3B", Apps: []string{"mcf", "lbm", "mser", "tracking"}},
		{Name: "2L2B-b", Apps: []string{"milc", "disparity", "mser", "tracking"}},
		{Name: "3L1N", Apps: []string{"milc", "libquantum", "disparity", "gcc"}},
		{Name: "2L1B1N", Apps: []string{"mcf", "milc", "lbm", "gcc"}},
		{Name: "1L1B2N", Apps: []string{"disparity", "tracking", "sift", "stitch"}},
		{Name: "2B2N", Apps: []string{"mser", "tracking", "gcc", "sift"}},
		{Name: "4N", Apps: []string{"gcc", "sift", "stitch", "gcc"}},
	}
}

// ConfigSweepMixes returns the five workload sets of Figs. 14-15.
func ConfigSweepMixes() []Mix {
	want := map[string]bool{"3L1B": true, "1L3B": true, "3L1N": true, "2L1B1N": true, "2B2N": true}
	var out []Mix
	for _, m := range Mixes() {
		if want[m.Name] {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// MixByName finds a workload set by name.
func MixByName(name string) (Mix, bool) {
	for _, m := range Mixes() {
		if m.Name == name {
			return m, true
		}
	}
	return Mix{}, false
}

// Specs resolves the mix's app names to specs.
func (m Mix) Specs() ([]AppSpec, error) {
	var out []AppSpec
	for _, name := range m.Apps {
		s, ok := ByName(name)
		if !ok {
			return nil, fmt.Errorf("workload: mix %s references unknown app %q", m.Name, name)
		}
		out = append(out, s)
	}
	return out, nil
}
