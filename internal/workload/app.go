package workload

import (
	"fmt"

	"moca/internal/cpu"
	"moca/internal/heap"
)

// ObjectSpec declares one named heap object of an application.
type ObjectSpec struct {
	Label   string
	Site    heap.Site   // synthetic allocation return address
	Context []heap.Site // synthetic calling context, innermost first

	SizeBytes   uint64
	Pattern     Pattern
	Weight      float64 // share of the app's memory accesses
	WriteFrac   float64 // fraction of accesses that are stores
	StrideBytes uint64  // for Stream/StreamDep/Resident (default 8)
	// HotBytes bounds a Resident object's hot window (default: the whole
	// object, capped at 128 KB). The sum of an app's hot windows should
	// fit the L2 or the "resident" objects thrash instead of hitting.
	HotBytes uint64

	// Instances is how many times the site allocates (default 1). All
	// instances share one name, as the paper's naming scheme dictates;
	// Weight is split evenly across instances.
	Instances int

	// SkipInit leaves the object untouched by the initialization phase
	// (most real objects are written once at startup, which is also what
	// orders first-touch page placement — the disparity case study).
	SkipInit bool
}

// AppSpec declares a synthetic application.
type AppSpec struct {
	Name string
	// ComputePerMemory is the mean number of compute instructions between
	// memory accesses; Jitter is the uniform spread around it. Together
	// they set the application's absolute access intensity.
	ComputePerMemory int
	ComputeJitter    int

	Objects []ObjectSpec

	// Non-heap segment behavior (Fig. 16): small, cache-friendly.
	StackWeight   float64
	CodeWeight    float64
	GlobalsWeight float64
	StackBytes    uint64
	CodeBytes     uint64
	GlobalsBytes  uint64

	// Seed determines the app's random streams; inputs shift it.
	Seed uint64

	// Phases, when non-empty, make the steady state time-varying: each
	// phase runs for Items stream elements with the given per-label
	// weight overrides, then the next phase starts (cycling). Apps with
	// phases violate MOCA's stable-behavior assumption (paper Section
	// III) — the phase extension experiment measures the consequence.
	Phases []PhaseSpec
}

// PhaseSpec is one steady-state phase of a time-varying application.
type PhaseSpec struct {
	// Items is the phase length in stream elements (access + gap pairs).
	Items uint64
	// Weights overrides object weights by label (absent labels keep the
	// spec's base weight; pseudo segments are unaffected).
	Weights map[string]float64
}

// Validate reports a specification error, if any.
func (s AppSpec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("workload: unnamed app")
	}
	if s.ComputePerMemory < 0 || s.ComputeJitter < 0 {
		return fmt.Errorf("workload: %s: negative compute gap", s.Name)
	}
	if len(s.Objects) == 0 {
		return fmt.Errorf("workload: %s: no objects", s.Name)
	}
	for i, ph := range s.Phases {
		if ph.Items == 0 {
			return fmt.Errorf("workload: %s: phase %d has zero length", s.Name, i)
		}
		for label, w := range ph.Weights {
			if w < 0 {
				return fmt.Errorf("workload: %s: phase %d: negative weight for %q", s.Name, i, label)
			}
			found := false
			for _, o := range s.Objects {
				if o.Label == label {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("workload: %s: phase %d overrides unknown object %q", s.Name, i, label)
			}
		}
	}
	total := s.StackWeight + s.CodeWeight + s.GlobalsWeight
	for _, o := range s.Objects {
		if o.SizeBytes < 64 {
			return fmt.Errorf("workload: %s/%s: size %d below one line", s.Name, o.Label, o.SizeBytes)
		}
		if o.Weight < 0 || o.WriteFrac < 0 || o.WriteFrac > 1 {
			return fmt.Errorf("workload: %s/%s: bad weight or write fraction", s.Name, o.Label)
		}
		if o.Instances < 0 {
			return fmt.Errorf("workload: %s/%s: negative instances", s.Name, o.Label)
		}
		total += o.Weight
	}
	if total <= 0 {
		return fmt.Errorf("workload: %s: zero total access weight", s.Name)
	}
	return nil
}

// Footprint returns the total heap bytes the app allocates.
func (s AppSpec) Footprint() uint64 {
	var total uint64
	for _, o := range s.Objects {
		n := o.Instances
		if n < 1 {
			n = 1
		}
		total += o.SizeBytes * uint64(n)
	}
	return total
}

// Scaled returns a copy with every object size multiplied by factor
// (minimum one cache line). Weights and patterns are unchanged, so
// classification behavior is preserved across input scales.
func (s AppSpec) Scaled(factor float64) AppSpec {
	out := s
	out.Objects = make([]ObjectSpec, len(s.Objects))
	copy(out.Objects, s.Objects)
	for i := range out.Objects {
		sz := uint64(float64(out.Objects[i].SizeBytes) * factor)
		if sz < 64 {
			sz = 64
		}
		out.Objects[i].SizeBytes = sz
	}
	return out
}

// Input selects the profiling (train) or evaluation (reference) input set,
// mirroring the paper's use of SPEC train inputs for profiling and
// reference inputs for evaluation (Section V-D).
type Input int

const (
	// Train is the profiling input: half-sized objects, different seed.
	Train Input = iota
	// Ref is the reference input used for evaluation runs.
	Ref
)

func (in Input) String() string {
	if in == Train {
		return "train"
	}
	return "ref"
}

// ForInput specializes the spec for an input set.
func (s AppSpec) ForInput(in Input) AppSpec {
	if in == Ref {
		return s
	}
	out := s.Scaled(0.5)
	out.Seed = s.Seed*0x9E37 + 0xA5A5
	return out
}

// source is one weighted origin of memory accesses.
type source struct {
	obj        uint64
	label      string // empty for pseudo segments
	cur        *cursor
	writeFrac  float64
	baseWeight float64
	cumWeight  float64 // cumulative, for selection
}

// App is an instantiated application: objects allocated, generators ready.
type App struct {
	Spec  AppSpec
	alloc *heap.Allocator
	rng   *RNG

	sources  []source
	totalW   float64
	byLabel  map[string]*heap.Object // first instance per label
	initOps  []initOp
	initNext int

	phase     int
	phaseLeft uint64
}

type initOp struct {
	obj  uint64
	addr uint64
}

// Instantiate allocates the app's objects in declaration order on the
// given heap and returns the ready-to-run application. seedSalt
// differentiates multiple instances of one app in a mix.
func Instantiate(spec AppSpec, allocator *heap.Allocator, seedSalt uint64) (*App, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	a := &App{
		Spec:    spec,
		alloc:   allocator,
		rng:     NewRNG(spec.Seed ^ (seedSalt * 0x2545F4914F6CDD1D)),
		byLabel: make(map[string]*heap.Object),
	}

	cum := 0.0
	addSource := func(obj uint64, label string, cur *cursor, writeFrac, weight float64) {
		cum += weight
		a.sources = append(a.sources, source{
			obj: obj, label: label, cur: cur, writeFrac: writeFrac,
			baseWeight: weight, cumWeight: cum,
		})
	}

	for _, spec := range spec.Objects {
		n := spec.Instances
		if n < 1 {
			n = 1
		}
		per := spec.Weight / float64(n)
		for i := 0; i < n; i++ {
			o, err := allocator.Alloc(spec.SizeBytes, spec.Site, spec.Context, spec.Label)
			if err != nil {
				return nil, fmt.Errorf("workload: %s/%s: %w", a.Spec.Name, spec.Label, err)
			}
			if _, seen := a.byLabel[spec.Label]; !seen {
				a.byLabel[spec.Label] = o
			}
			cur := newCursor(spec.Pattern, o.Base, o.Size, spec.StrideBytes, spec.HotBytes, a.rng)
			addSource(uint64(o.Name), spec.Label, cur, spec.WriteFrac, per)
			if !spec.SkipInit {
				for addr := o.Base; addr < o.Base+o.Size; addr += 4096 {
					a.initOps = append(a.initOps, initOp{obj: uint64(o.Name), addr: addr})
				}
			}
		}
	}

	seg := func(obj uint64, base, size uint64, weight float64) {
		if weight <= 0 {
			return
		}
		if size < 64 {
			size = 64
		}
		cur := newCursor(Resident, base, size, 8, 0, a.rng)
		addSource(obj, "", cur, 0.2, weight)
	}
	seg(uint64(heap.ObjStack), heap.StackBase, orDefault(spec.StackBytes, 8<<10), spec.StackWeight)
	seg(uint64(heap.ObjCode), heap.CodeBase, orDefault(spec.CodeBytes, 32<<10), spec.CodeWeight)
	seg(uint64(heap.ObjGlobals), heap.DataBase, orDefault(spec.GlobalsBytes, 16<<10), spec.GlobalsWeight)

	a.totalW = cum
	if len(spec.Phases) > 0 {
		a.applyPhase(0)
	}
	return a, nil
}

// applyPhase recomputes source weights for the given phase index.
func (a *App) applyPhase(idx int) {
	a.phase = idx
	a.phaseLeft = a.Spec.Phases[idx].Items
	overrides := a.Spec.Phases[idx].Weights
	// Count instances per label so overrides split like base weights.
	perLabel := map[string]int{}
	for i := range a.sources {
		if a.sources[i].label != "" {
			perLabel[a.sources[i].label]++
		}
	}
	cum := 0.0
	for i := range a.sources {
		src := &a.sources[i]
		w := src.baseWeight
		if src.label != "" {
			if ov, ok := overrides[src.label]; ok {
				w = ov / float64(perLabel[src.label])
			}
		}
		cum += w
		src.cumWeight = cum
	}
	a.totalW = cum
}

// phaseTick advances phase accounting by one steady-state stream element.
func (a *App) phaseTick() {
	if len(a.Spec.Phases) == 0 {
		return
	}
	a.phaseLeft--
	if a.phaseLeft == 0 {
		a.applyPhase((a.phase + 1) % len(a.Spec.Phases))
	}
}

// Phase returns the current phase index (0 for unphased apps).
func (a *App) Phase() int { return a.phase }

func orDefault(v, def uint64) uint64 {
	if v == 0 {
		return def
	}
	return v
}

// Object returns the first allocated instance for an object label (for
// case-study assertions and examples).
func (a *App) Object(label string) (*heap.Object, bool) {
	o, ok := a.byLabel[label]
	return o, ok
}

// Footprint returns the app's allocated heap bytes.
func (a *App) Footprint() uint64 { return a.Spec.Footprint() }

// Stream returns the application's instruction stream: an initialization
// phase that writes each object page-by-page in declaration order (the
// first-touch sequence that drives page placement), followed by an
// infinite steady-state phase of weighted object accesses separated by
// compute gaps. The caller decides how many instructions to run.
func (a *App) Stream() cpu.Stream { return &appStream{app: a} }

type appStream struct {
	app *App
	// At most one instruction is ever buffered (a memory access queued
	// behind its compute gap), so a scalar avoids slice churn on the
	// per-instruction path.
	pending    cpu.Instr
	hasPending bool
}

// Next implements cpu.Stream.
func (s *appStream) Next() (cpu.Instr, bool) {
	if s.hasPending {
		s.hasPending = false
		return s.pending, true
	}
	a := s.app

	// Initialization phase: a short compute gap then a page-touch store.
	if a.initNext < len(a.initOps) {
		op := a.initOps[a.initNext]
		a.initNext++
		s.pending = cpu.Instr{Kind: cpu.Store, VAddr: op.addr, Obj: op.obj}
		s.hasPending = true
		return cpu.Instr{Kind: cpu.Compute, N: 4}, true
	}

	// Steady state: weighted source selection.
	a.phaseTick()
	src := a.pick()
	addr, depends := src.cur.next()
	gap := a.Spec.ComputePerMemory
	if j := a.Spec.ComputeJitter; j > 0 {
		gap += a.rng.Intn(2*j+1) - j
	}
	var access cpu.Instr
	if a.rng.Float64() < src.writeFrac {
		access = cpu.Instr{Kind: cpu.Store, VAddr: addr, Obj: src.obj}
	} else {
		access = cpu.Instr{Kind: cpu.Load, VAddr: addr, Obj: src.obj, DependsOnPrev: depends}
	}
	if gap <= 0 {
		return access, true
	}
	s.pending = access
	s.hasPending = true
	return cpu.Instr{Kind: cpu.Compute, N: int32(gap)}, true
}

// Refill implements cpu.BatchStream: it runs the generator len(dst)
// elements ahead in one call, letting the core amortize the interface
// dispatch per instruction into one call per buffer. The sequence is
// exactly what repeated Next calls would produce (the generator never
// ends, so a full buffer is always returned).
func (s *appStream) Refill(dst []cpu.Instr) int {
	n := 0
	for n < len(dst) {
		in, ok := s.Next()
		if !ok {
			break
		}
		dst[n] = in
		n++
	}
	return n
}

var _ cpu.BatchStream = (*appStream)(nil)

func (a *App) pick() *source {
	x := a.rng.Float64() * a.totalW
	for i := range a.sources {
		if x < a.sources[i].cumWeight {
			return &a.sources[i]
		}
	}
	return &a.sources[len(a.sources)-1]
}

// InitInstructions returns the approximate instruction count of the
// initialization phase (for choosing warm-up windows).
func (a *App) InitInstructions() uint64 {
	return uint64(len(a.initOps)) * 5
}
