// Package lint is moca-vet's analysis framework: a deliberately small,
// dependency-free re-implementation of the golang.org/x/tools/go/analysis
// surface the suite needs. The repo's toolchain policy is stdlib-only, so
// instead of x/tools the loader feeds go/types from the compiler export
// data `go list -export` already produces, and analyzers receive the same
// (Fset, Files, Pkg, TypesInfo, Report) shape they would under the real
// driver — porting them onto x/tools later is a mechanical change.
//
// The suite machine-checks the determinism conventions the simulator's
// correctness rests on:
//
//   - maporder: no unordered map iteration in deterministic packages
//     (suppress with `//moca:unordered <reason>`);
//   - walltime: no wall-clock, global math/rand, or environment reads in
//     the simulation core (suppress with `//moca:wallclock <reason>`);
//   - hotalloc: no closures, fmt calls, or allocating interface boxing in
//     functions annotated `//moca:hotpath` (suppress a line with
//     `//moca:allowalloc <reason>`);
//   - behaviorversion: the cache-visible sim.Result schema must match the
//     checked-in fingerprint, and schema changes must bump
//     sim.BehaviorVersion;
//   - shardsafe: code reaching state of two or more `//moca:shard`
//     domains must be annotated `//moca:barrier <reason>` (suppress one
//     access with `//moca:allowshared <reason>`).
//
// Phase 2 extends the suite to the concurrent serving layer (internal/wire,
// internal/exp, internal/obs), whose failure modes are liveness and
// protocol bugs rather than nondeterminism:
//
//   - lockhold: no blocking operations (frame/conn I/O, channel ops
//     without a default, simulation runs, time.Sleep) while a sync.Mutex
//     or RWMutex is held (suppress with `//moca:allowhold <reason>`);
//   - ctxflow: serving code must thread caller contexts — no
//     context.Background()/TODO() outside main, no ctx-blind blocking
//     calls from ctx-taking functions, and long-lived for+select loops
//     need a ctx.Done() case (suppress with `//moca:allowctx <reason>`);
//   - wiredispatch: frame dispatch switches must handle every wire.Type*
//     constant of their direction, the FuzzReadFrame seed corpus must
//     cover every frame type, and decode-sized allocations must be
//     bounds-checked first (suppress with `//moca:allowdispatch` /
//     `//moca:allowsize <reason>`);
//   - goroleak: goroutines in serving packages must be tied to a
//     sync.WaitGroup or annotated `//moca:gorountracked <reason>`.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one package's parsed and type-checked state to an analyzer.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Dir is the package's source directory on disk.
	Dir string
	// ModulePath is the module the analyzed packages belong to (used to
	// decide which named types the schema fingerprint expands).
	ModulePath string

	Report func(Diagnostic)

	// reportWaiver, when set by the driver, records every honored
	// suppression annotation so callers (moca-vet -json) can keep waived
	// findings visible instead of silently dropping them.
	reportWaiver func(directive, reason string, pos token.Pos)

	// comments caches per-file line→directive lookups.
	comments map[*ast.File]map[int][]string
}

// Diagnostic is one finding. Fix, when non-empty, is a human-applicable
// suggested fix rendered alongside the message.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	Fix     string
}

// Reportf reports a formatted diagnostic with no suggested fix.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// DeterministicPackages names the packages whose behavior feeds golden
// snapshots, record/replay, or persistent cache keys. maporder and
// walltime only fire inside these (matched on the import path's last
// element, so analysistest packages named e.g. "sim" opt in too).
var DeterministicPackages = map[string]bool{
	"event":    true,
	"mem":      true,
	"cache":    true,
	"vm":       true,
	"sim":      true,
	"profile":  true,
	"alloc":    true,
	"classify": true,
	// obs and stats render -metrics output that golden runs diff
	// byte-for-byte, so they carry the same burden.
	"obs":   true,
	"stats": true,
}

// isDeterministicPkg reports whether the import path names a package in
// the deterministic set.
func isDeterministicPkg(importPath string) bool {
	return DeterministicPackages[pathBase(importPath)]
}

// pathBase returns the last element of an import path.
func pathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// Annotation directives. Suppressions take a mandatory free-text reason.
const (
	DirectiveHotPath       = "//moca:hotpath"
	DirectiveUnordered     = "//moca:unordered"
	DirectiveWallClock     = "//moca:wallclock"
	DirectiveAllowAlloc    = "//moca:allowalloc"
	DirectiveAllowHold     = "//moca:allowhold"
	DirectiveAllowCtx      = "//moca:allowctx"
	DirectiveAllowSize     = "//moca:allowsize"
	DirectiveAllowDispatch = "//moca:allowdispatch"
	DirectiveGoroTracked   = "//moca:gorountracked"
)

// commentLines builds (and caches) the file's line→comment-text index.
func (p *Pass) commentLines(f *ast.File) map[int][]string {
	if p.comments == nil {
		p.comments = make(map[*ast.File]map[int][]string)
	}
	if m, ok := p.comments[f]; ok {
		return m
	}
	m := make(map[int][]string)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			line := p.Fset.Position(c.Pos()).Line
			m[line] = append(m[line], c.Text)
		}
	}
	p.comments[f] = m
	return m
}

// suppression looks for the given directive on the node's line or the line
// directly above it. It returns (found, reason).
func (p *Pass) suppression(f *ast.File, pos token.Pos, directive string) (bool, string) {
	lines := p.commentLines(f)
	line := p.Fset.Position(pos).Line
	for _, l := range []int{line, line - 1} {
		for _, text := range lines[l] {
			if rest, ok := directiveText(text, directive); ok {
				return true, rest
			}
		}
	}
	return false, ""
}

// checkSuppressed is the shared suppression workflow: if the directive is
// present with a reason the finding is suppressed (returns true); present
// without a reason it reports the missing reason and still suppresses the
// underlying finding (the annotation is there, it is just incomplete).
func (p *Pass) checkSuppressed(f *ast.File, pos token.Pos, directive string) bool {
	found, reason := p.suppression(f, pos, directive)
	if !found {
		return false
	}
	if strings.TrimSpace(reason) == "" {
		p.Reportf(pos, "%s annotation is missing its reason", directive)
	} else if p.reportWaiver != nil {
		p.reportWaiver(directive, reason, pos)
	}
	return true
}

// directiveText matches a `//moca:` directive comment and returns the text
// after the directive word. "//moca:hotpath" matches exactly or followed
// by whitespace, so "//moca:hotpathological" does not.
func directiveText(comment, directive string) (string, bool) {
	if !strings.HasPrefix(comment, directive) {
		return "", false
	}
	rest := comment[len(directive):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false
	}
	return strings.TrimSpace(rest), true
}

// hasDirective reports whether any comment in the group is the directive.
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if _, ok := directiveText(c.Text, directive); ok {
			return true
		}
	}
	return false
}

// pkgFuncOf resolves a selector expression like `time.Now` to its package
// import path and function name, when X names an imported package.
func pkgFuncOf(info *types.Info, sel *ast.SelectorExpr) (pkgPath, name string, ok bool) {
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// Analyzers returns the full moca-vet suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MapOrder, WallTime, HotAlloc, BehaviorVersion, ShardSafe,
		LockHold, CtxFlow, WireDispatch, GoroLeak,
	}
}
