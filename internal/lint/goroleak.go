package lint

import (
	"go/ast"
)

// GoroLeak requires every `go` statement in the serving layer to be
// visibly tied to a lifetime: either the spawned body (or its same-package
// callee) signals a sync.WaitGroup via Done, or the statement carries a
// `//moca:gorountracked <reason>` annotation naming what bounds it (a done
// channel, a hub registration, a reaper). A goroutine nothing waits for is
// how a long-running server leaks memory one disconnect at a time.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc:  "require serving-layer goroutines to be WaitGroup-tracked or annotated",
	Run:  runGoroLeak,
}

func runGoroLeak(pass *Pass) error {
	if !isServingPkg(pass.Pkg.Path()) {
		return nil
	}
	// Same-package callee bodies, for `go c.worker(...)` style spawns.
	decls := make(map[any]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	for _, file := range pass.Files {
		file := file
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if goroutineTracked(pass, decls, gs) {
				return true
			}
			if pass.checkSuppressed(file, gs.Pos(), DirectiveGoroTracked) {
				return true
			}
			pass.Report(Diagnostic{
				Pos:     gs.Pos(),
				Message: "goroutine is not tied to a sync.WaitGroup and carries no lifetime annotation",
				Fix:     "add wg.Add(1) / defer wg.Done(), or annotate `//moca:gorountracked <reason>` naming what bounds its lifetime",
			})
			return true
		})
	}
	return nil
}

// goroutineTracked reports whether the spawned function's body — a literal
// or a same-package declaration — signals a sync.WaitGroup via Done.
func goroutineTracked(pass *Pass, decls map[any]*ast.FuncDecl, gs *ast.GoStmt) bool {
	var body *ast.BlockStmt
	switch fun := gs.Call.Fun.(type) {
	case *ast.FuncLit:
		body = fun.Body
	case *ast.Ident:
		if fd := decls[pass.TypesInfo.Uses[fun]]; fd != nil {
			body = fd.Body
		}
	case *ast.SelectorExpr:
		if fd := decls[pass.TypesInfo.Uses[fun.Sel]]; fd != nil {
			body = fd.Body
		}
	}
	if body == nil {
		return false
	}
	tracked := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok &&
			sel.Sel.Name == "Done" &&
			isNamedType(pass.TypesInfo.TypeOf(sel.X), "sync", "WaitGroup") {
			tracked = true
			return false
		}
		return true
	})
	return tracked
}
