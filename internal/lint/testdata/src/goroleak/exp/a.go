// Package exp seeds goroleak violations: its import path ends in "exp",
// so it sits in the serving-layer scope.
package exp

import "sync"

// Untracked spawns a goroutine nothing waits for: flagged.
func Untracked(ch chan int) {
	go func() { // want "not tied to a sync.WaitGroup"
		<-ch
	}()
}

// Tracked signals a WaitGroup from the spawned body: clean.
func Tracked(wg *sync.WaitGroup, ch chan int) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-ch
	}()
}

func worker(wg *sync.WaitGroup, ch chan int) {
	defer wg.Done()
	<-ch
}

// TrackedNamed spawns a same-package callee that carries the Done: clean.
func TrackedNamed(wg *sync.WaitGroup, ch chan int) {
	wg.Add(1)
	go worker(wg, ch)
}

type loop struct{ ch chan int }

func (l *loop) run() { <-l.ch }

// SpawnMethod spawns a same-package method with no Done: flagged.
func SpawnMethod(l *loop) {
	go l.run() // want "not tied to a sync.WaitGroup"
}

// Waived carries the annotation with a reason: not flagged.
func Waived(ch chan int) {
	//moca:gorountracked lifetime is bounded by ch, which the owner closes
	go func() {
		<-ch
	}()
}

// MissingReason has the annotation but no reason: flagged for the reason,
// not for the spawn itself.
func MissingReason(ch chan int) {
	//moca:gorountracked
	go func() { // want "annotation is missing its reason"
		<-ch
	}()
}
