// Package other spawns the same untracked goroutine as goroleak/exp but
// sits outside the serving-layer scope: nothing is flagged.
package other

func Untracked(ch chan int) {
	go func() {
		<-ch
	}()
}
