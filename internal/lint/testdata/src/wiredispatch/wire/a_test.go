package wire

import "testing"

// FuzzReadFrame seeds only half of the frame-type constants: flagged with
// the ones it forgot.
func FuzzReadFrame(f *testing.F) { // want "seed corpus is missing frame types: TypeError, TypeHelloOK, TypeResult"
	f.Add([]byte{TypeHello, 0})
	f.Add([]byte{TypeSubmit, 4})
	f.Add([]byte{TypeCancel, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		_ = ReadFrame(data)
	})
}
