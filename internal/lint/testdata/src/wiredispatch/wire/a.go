// Package wire seeds wiredispatch violations: its import path ends in
// "wire", so the dispatch, corpus, and bounds checks all apply.
package wire

// Frame type bytes. The high bit encodes direction, mirroring the real
// protocol: replies set 0x80.
const (
	TypeHello  = 0x01
	TypeSubmit = 0x02
	TypeCancel = 0x03

	TypeHelloOK = 0x81
	TypeResult  = 0x82
	TypeError   = 0x83
)

// MaxFrame bounds decoded lengths.
const MaxFrame = 1 << 20

// Dispatch switches over client→server frames but forgets TypeCancel:
// flagged.
func Dispatch(typ byte) string {
	switch typ { // want "non-exhaustive client→server frame dispatch: missing TypeCancel"
	case TypeHello:
		return "hello"
	case TypeSubmit:
		return "submit"
	}
	return ""
}

// Reply covers every server→client frame across two switches; the
// per-direction union is what counts: clean.
func Reply(typ byte) string {
	switch typ {
	case TypeHelloOK:
		return "hello-ok"
	case TypeResult:
		return "result"
	}
	return replyErr(typ)
}

func replyErr(typ byte) string {
	switch typ {
	case TypeError, TypeResult:
		return "error"
	}
	return ""
}

// ReadFrame decodes a frame, sizing the payload from the wire without a
// bound: flagged. Its presence also arms the fuzz-corpus check.
func ReadFrame(data []byte) []byte {
	n := int(data[1])
	buf := make([]byte, n) // want "allocation sized from unchecked value n"
	copy(buf, data)
	return buf
}

// BoundedAlloc compares the decoded length against the named max before
// allocating: clean.
func BoundedAlloc(data []byte) []byte {
	n := int(data[0])
	if n > MaxFrame {
		return nil
	}
	return make([]byte, n)
}

// ConstAlloc sizes from a constant: clean.
func ConstAlloc() []byte {
	return make([]byte, 64)
}

// WaivedAlloc carries the annotation with a reason: not flagged.
func WaivedAlloc(n int) []byte {
	//moca:allowsize the caller validated n against the frame header
	return make([]byte, n)
}

// MissingReasonAlloc has the annotation but no reason: flagged for the
// reason, not for the allocation itself.
func MissingReasonAlloc(n int) []byte {
	//moca:allowsize
	return make([]byte, n) // want "annotation is missing its reason"
}
