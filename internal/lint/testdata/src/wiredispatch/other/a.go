// Package other decodes the same way wiredispatch/wire does but sits
// outside the protocol packages: nothing is flagged.
package other

const (
	TypeHello  = 0x01
	TypeSubmit = 0x02
	TypeCancel = 0x03
)

func Dispatch(typ byte) string {
	switch typ {
	case TypeHello:
		return "hello"
	case TypeSubmit:
		return "submit"
	}
	return ""
}

func ReadFrame(data []byte) []byte {
	n := int(data[1])
	return make([]byte, n)
}
