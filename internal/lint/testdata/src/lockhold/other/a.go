// Package other carries the same blocking-under-lock patterns as
// lockhold/server but sits outside the serving-layer scope: nothing is
// flagged.
package other

import (
	"sync"
	"time"
)

type guarded struct {
	mu sync.Mutex
	ch chan int
}

func (g *guarded) SleepUnderLock() {
	g.mu.Lock()
	time.Sleep(time.Millisecond)
	g.mu.Unlock()
}

func (g *guarded) RecvUnderLock() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return <-g.ch
}
