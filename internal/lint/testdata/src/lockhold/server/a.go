// Package server seeds lockhold violations: its import path ends in
// "server", so it sits in the serving-layer scope.
package server

import (
	"net"
	"sync"
	"time"
)

type guarded struct {
	mu sync.Mutex
	rw sync.RWMutex
	ch chan int
	nc net.Conn
	wg sync.WaitGroup
}

// SleepUnderLock blocks while mu is held: flagged.
func (g *guarded) SleepUnderLock() {
	g.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while \"g.mu\" is held"
	g.mu.Unlock()
}

// DeferUnlock holds the lock to the end of the function: flagged.
func (g *guarded) DeferUnlock() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return <-g.ch // want "channel receive while \"g.mu\" is held"
}

// SendUnderRLock: read locks serialize writers just the same: flagged.
func (g *guarded) SendUnderRLock(v int) {
	g.rw.RLock()
	defer g.rw.RUnlock()
	g.ch <- v // want "channel send while \"g.rw\" is held"
}

// ConnWriteUnderLock performs network I/O under the lock: flagged.
func (g *guarded) ConnWriteUnderLock(buf []byte) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.nc.Write(buf) // want "network I/O.* while \"g.mu\" is held"
}

// WaitUnderLock parks on a WaitGroup under the lock: flagged.
func (g *guarded) WaitUnderLock() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.wg.Wait() // want "sync.WaitGroup.Wait while \"g.mu\" is held"
}

// SelectNoDefault parks under the lock: flagged.
func (g *guarded) SelectNoDefault() {
	g.mu.Lock()
	defer g.mu.Unlock()
	select { // want "blocking select .no default case. while \"g.mu\" is held"
	case v := <-g.ch:
		_ = v
	}
}

// SelectDefault never parks: clean.
func (g *guarded) SelectDefault(v int) {
	g.mu.Lock()
	select {
	case g.ch <- v:
	default:
	}
	g.mu.Unlock()
}

// RangeUnderLock drains a channel under the lock: flagged.
func (g *guarded) RangeUnderLock() {
	g.mu.Lock()
	defer g.mu.Unlock()
	for v := range g.ch { // want "range over channel while \"g.mu\" is held"
		_ = v
	}
}

// Runner mimics the simulation entry points the classifier matches by
// receiver type name.
type Runner struct{ mu sync.Mutex }

func (r *Runner) RunSingle() {}

// SimulateUnderLock runs a simulation while holding the lock: flagged.
func (r *Runner) SimulateUnderLock() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.RunSingle() // want "Runner.RunSingle .simulation run. while \"r.mu\" is held"
}

// UnlockFirst releases before blocking: clean.
func (g *guarded) UnlockFirst() int {
	g.mu.Lock()
	g.mu.Unlock()
	return <-g.ch
}

// BranchUnlock releases on both arms before blocking: clean.
func (g *guarded) BranchUnlock(x bool) int {
	g.mu.Lock()
	if x {
		g.mu.Unlock()
	} else {
		g.mu.Unlock()
	}
	return <-g.ch
}

// GuardReturn releases only on the early-return path; the fall-through
// still holds the lock: flagged.
func (g *guarded) GuardReturn(x bool) int {
	g.mu.Lock()
	if x {
		g.mu.Unlock()
		return 0
	}
	v := <-g.ch // want "channel receive while \"g.mu\" is held"
	g.mu.Unlock()
	return v
}

// SpawnedBody runs concurrently and does not inherit the spawner's lock:
// clean (for lockhold; goroleak has its own opinion).
func (g *guarded) SpawnedBody() {
	g.mu.Lock()
	defer g.mu.Unlock()
	go func() {
		<-g.ch
	}()
}

// Waived carries the annotation with a reason: not flagged.
func (g *guarded) Waived(buf []byte) {
	g.mu.Lock()
	defer g.mu.Unlock()
	//moca:allowhold the write deadline bounds the hold
	g.nc.Write(buf)
}

// MissingReason has the annotation but no reason: flagged for the reason,
// not for the blocking operation itself.
func (g *guarded) MissingReason() {
	g.mu.Lock()
	defer g.mu.Unlock()
	//moca:allowhold
	time.Sleep(time.Millisecond) // want "annotation is missing its reason"
}
