// Package other reads the wall clock the same way walltime/sim does but
// sits outside the deterministic set: nothing is flagged.
package other

import (
	"math/rand"
	"time"
)

func Stamp() time.Time {
	return time.Now()
}

func Roll() int {
	return rand.Intn(6)
}
