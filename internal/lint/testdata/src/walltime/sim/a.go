// Package sim seeds walltime violations: its import path ends in "sim",
// so it sits in the simulation core.
package sim

import (
	"math/rand"
	"os"
	"time"
)

// Stamp reads the wall clock: flagged.
func Stamp() int64 {
	return time.Now().UnixNano() // want "time.Now reads the wall clock"
}

// Elapsed uses time.Since: flagged.
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since reads the wall clock"
}

// GlobalRand draws from the shared unseeded generator: flagged.
func GlobalRand() int {
	return rand.Intn(10) // want "math/rand.Intn uses the shared, unseeded global generator"
}

// SeededRand builds an explicitly seeded generator: the constructors are
// allowed, and methods on the local *rand.Rand are not package-scope uses.
func SeededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// TypeRefOnly mentions rand.Rand as a type, which is not a draw from the
// global source.
func TypeRefOnly(r *rand.Rand) int {
	return r.Intn(10)
}

// Env reads the process environment: flagged.
func Env() string {
	return os.Getenv("MOCA_DEBUG") // want "os.Getenv reads the process environment"
}

// Suppressed carries the annotation with a reason: not flagged.
func Suppressed() int64 {
	//moca:wallclock progress log outside the measured simulation path
	return time.Now().UnixNano()
}

// SuppressedInline suppresses on the same line: not flagged.
func SuppressedInline() int64 {
	return time.Now().UnixNano() //moca:wallclock progress log outside the measured simulation path
}

// MissingReason has the annotation but no reason: flagged for the reason,
// not for the read itself.
func MissingReason() int64 {
	//moca:wallclock
	return time.Now().UnixNano() // want "annotation is missing its reason"
}
