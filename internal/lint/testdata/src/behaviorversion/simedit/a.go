// Package sim is behaviorversion/sim with a cache-visible schema edit
// (ChannelResult gained EnergyJ) but the SAME BehaviorVersion — the
// exact mistake the analyzer exists to catch.
package sim

// BehaviorVersion was NOT bumped alongside the schema change below.
const BehaviorVersion = 2

// Kind mirrors a small enum reached through a map key.
type Kind uint8

// Result is the cache-visible schema root.
type Result struct {
	Cycles   int64           `json:"cycles"`
	Pages    map[Kind]int64  `json:"pages"`
	Channels []ChannelResult `json:"channels"`
	note     string
}

// ChannelResult gained a field relative to behaviorversion/sim.
type ChannelResult struct {
	Reads   int64
	Writes  int64
	EnergyJ float64
}
