// Package sim is a miniature behavior-versioned package: a Result schema
// plus the BehaviorVersion constant that salts the run cache.
package sim

// BehaviorVersion salts the persistent run cache.
const BehaviorVersion = 2

// Kind mirrors a small enum reached through a map key.
type Kind uint8

// Result is the cache-visible schema root.
type Result struct {
	Cycles   int64           `json:"cycles"`
	Pages    map[Kind]int64  `json:"pages"`
	Channels []ChannelResult `json:"channels"`
	note     string
}

// ChannelResult is reachable from Result and expands structurally.
type ChannelResult struct {
	Reads  int64
	Writes int64
}
