// Package sim is behaviorversion/simedit done right: the same schema
// change, but with BehaviorVersion bumped. Against a recording of the old
// schema the analyzer reports only a stale fingerprint (fix: -update),
// never a missing bump.
package sim

// BehaviorVersion WAS bumped alongside the schema change below.
const BehaviorVersion = 3

// Kind mirrors a small enum reached through a map key.
type Kind uint8

// Result is the cache-visible schema root.
type Result struct {
	Cycles   int64           `json:"cycles"`
	Pages    map[Kind]int64  `json:"pages"`
	Channels []ChannelResult `json:"channels"`
	note     string
}

// ChannelResult gained a field relative to behaviorversion/sim.
type ChannelResult struct {
	Reads   int64
	Writes  int64
	EnergyJ float64
}
