// Package event seeds maporder violations: its import path ends in
// "event", so it sits in the deterministic set.
package event

import "sort"

// Unsorted iterates a map directly: flagged.
func Unsorted(m map[string]int) int {
	total := 0
	for _, v := range m { // want "range over map has nondeterministic iteration order" // wantfix "sorted keys"
		total += v
	}
	return total
}

// SortedKeys collects and sorts before iterating: the range is over a
// slice, so nothing fires.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	//moca:unordered keys are collected then sorted before use
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, k)
	}
	return out
}

// Annotated carries a suppression with a reason: not flagged.
func Annotated(m map[string]int) int {
	n := 0
	//moca:unordered counting keys is order-independent
	for range m {
		n++
	}
	return n
}

// AnnotatedInline suppresses on the same line: not flagged.
func AnnotatedInline(m map[string]int) int {
	n := 0
	for range m { //moca:unordered counting keys is order-independent
		n++
	}
	return n
}

// MissingReason has the annotation but no reason: flagged for the reason,
// not for the range.
func MissingReason(m map[string]int) int {
	n := 0
	//moca:unordered
	for range m { // want "annotation is missing its reason"
		n++
	}
	return n
}

// Slices never fire.
func Slices(s []int) int {
	total := 0
	for _, v := range s {
		total += v
	}
	return total
}
