// Package other is NOT in the deterministic set (its import path element
// "other" matches nothing), so maporder stays silent even over raw map
// ranges.
package other

// Unsorted would fire in a deterministic package; here it is fine.
func Unsorted(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
