// Package other carries the same context sins as ctxflow/server but sits
// outside the serving-layer scope: nothing is flagged.
package other

import (
	"context"
	"time"
)

func Detached() context.Context {
	return context.Background()
}

func Sleepy(ctx context.Context) {
	time.Sleep(time.Millisecond)
}
