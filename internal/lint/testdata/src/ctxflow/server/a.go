// Package server seeds ctxflow violations: its import path ends in
// "server", so it sits in the serving-layer scope.
package server

import (
	"context"
	"time"
)

// Runner mimics the simulation entry points the analyzer matches by
// receiver type name.
type Runner struct{}

func (r *Runner) RunSingle()                        {}
func (r *Runner) Instrument()                       {}
func (r *Runner) RunSingleCtx(ctx context.Context)  {}
func (r *Runner) InstrumentCtx(ctx context.Context) {}

// Detached restarts the context tree: flagged.
func Detached() context.Context {
	return context.Background() // want "context.Background.. detaches work from caller cancellation"
}

// Todo is no better: flagged.
func Todo() context.Context {
	return context.TODO() // want "context.TODO.. detaches work from caller cancellation"
}

// CtxBlind accepts a context but calls the blind variants: flagged.
func CtxBlind(ctx context.Context, r *Runner) {
	r.RunSingle()                // want "Runner.RunSingle does not thread this function's ctx"
	r.Instrument()               // want "Runner.Instrument does not thread this function's ctx"
	time.Sleep(time.Millisecond) // want "time.Sleep does not thread this function's ctx"
	r.RunSingleCtx(ctx)
	r.InstrumentCtx(ctx)
}

// NoCtxToThread has no context parameter, so the blind variants are its
// only option: clean.
func NoCtxToThread(r *Runner) {
	r.RunSingle()
}

// LoopNoDone parks forever with no way for the caller to stop it: flagged.
func LoopNoDone(ctx context.Context, ch chan int) {
	for {
		select { // want "long-lived select loop lacks a <-ctx.Done.. case"
		case v := <-ch:
			_ = v
		}
	}
}

// LoopWithDone: clean.
func LoopWithDone(ctx context.Context, ch chan int) {
	for {
		select {
		case v := <-ch:
			_ = v
		case <-ctx.Done():
			return
		}
	}
}

// LoopWithDefault never parks: clean.
func LoopWithDefault(ctx context.Context, ch chan int) {
	for {
		select {
		case v := <-ch:
			_ = v
		default:
			return
		}
	}
}

// Waived carries the annotation with a reason: not flagged.
func Waived(ctx context.Context, r *Runner) {
	//moca:allowctx warm-up path; the process lifecycle owns this work
	r.RunSingle()
}

// MissingReason has the annotation but no reason: flagged for the reason,
// not for the blind call itself.
func MissingReason(ctx context.Context, r *Runner) {
	//moca:allowctx
	r.RunSingle() // want "annotation is missing its reason"
}
