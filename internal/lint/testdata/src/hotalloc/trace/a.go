// Package trace seeds hotalloc violations in the shapes the block-decode
// hot path (internal/trace) is prone to: formatted errors constructed per
// block and decoded values boxed into interfaces. The clean variants
// mirror what the real decoder does instead — typed sentinel errors and
// concrete-typed returns.
package trace

import (
	"errors"
	"fmt"
)

type instr struct {
	kind  uint8
	vaddr uint64
}

var errCorrupt = errors.New("trace: corrupt block")

// DecodeFormatted wraps a decode failure with fmt on the hot path:
// flagged — each bad block would allocate the error *and* box its
// operands, and the happy path still pays the closure of the call site.
//
//moca:hotpath
func DecodeFormatted(data []byte, off int) error {
	if len(data) == 0 {
		return fmt.Errorf("trace: empty block at offset %d", off) // want "call to fmt.Errorf allocates"
	}
	return nil
}

// DecodeBoxed hands each decoded item out as an interface: flagged — a
// value struct boxed per instruction is an allocation per instruction.
//
//moca:hotpath
func DecodeBoxed(data []byte, emit func(any)) {
	for _, b := range data {
		emit(instr{kind: b}) // want "passed value boxes hotalloc/trace.instr into"
	}
}

// DecodeClean is the shape the real decoder uses: typed sentinel errors
// and a concrete destination slice — nothing to flag.
//
//moca:hotpath
func DecodeClean(data []byte, dst []instr) (int, error) {
	if len(data) < len(dst) {
		return 0, errCorrupt
	}
	for i := range dst {
		dst[i] = instr{kind: data[i], vaddr: uint64(i)}
	}
	return len(dst), nil
}
