// Package cache seeds hotalloc violations inside //moca:hotpath
// functions.
package cache

import "fmt"

type entry struct{ v int }

type sink struct {
	h    func()
	last any
}

func takeAny(a any)         { _ = a }
func takeVariadic(a ...any) { _ = a }

// Closure captures state per call: flagged.
//
//moca:hotpath
func Closure(s *sink, v int) {
	s.h = func() { _ = v } // want "function literal .closure. allocates" // wantfix "pooled event payload"
}

// Format calls fmt on the hot path: the call itself is the diagnostic
// (its argument boxing is subsumed — the fix is removing the call).
//
//moca:hotpath
func Format(v int) {
	fmt.Println(v) // want "call to fmt.Println allocates"
}

// Box converts concrete values to interfaces four ways: flagged each time.
//
//moca:hotpath
func Box(s *sink, e entry) any {
	s.last = e    // want "assigned value boxes hotalloc/cache.entry into"
	var a any = 7 // want "assigned value boxes int into"
	_ = a
	takeAny(e)   // want "passed value boxes hotalloc/cache.entry into"
	_ = any(e.v) // want "converted value boxes int into"
	return e     // want "returned value boxes hotalloc/cache.entry into" // wantfix "pointer-shaped payload"
}

// PointerShaped payloads ride the interface word without allocating:
// pointers, funcs, maps, and chans are all clean, as is interface →
// interface and an explicit s... passthrough.
//
//moca:hotpath
func PointerShaped(s *sink, e *entry, m map[int]int, c chan int, prev any, xs []any) {
	s.last = e
	takeAny(e)
	takeAny(m)
	takeAny(c)
	takeAny(prev)
	s.h = dummy
	takeVariadic(xs...)
}

// probeResult mirrors the inline-hit probe API's result shape: a small
// value struct the fast path returns per access. It must stay out of
// interface positions — boxing it would put an allocation on every hit.
type probeResult struct {
	level   int
	readyAt int64
}

// Probe services a hit inline like the hierarchy's non-scheduling probe
// API. Stashing the result in an any-typed field boxes the non-pointer-
// shaped struct: flagged, so CI catches a probe API that allocates.
//
//moca:hotpath
func Probe(s *sink, addr uint64) probeResult {
	r := probeResult{level: 1, readyAt: int64(addr)}
	s.last = r // want "assigned value boxes hotalloc/cache.probeResult into"
	return r
}

// PanicExempt only formats when the simulator is already dying: the whole
// panic argument subtree is cold.
//
//moca:hotpath
func PanicExempt(v int) {
	if v < 0 {
		panic(fmt.Sprintf("negative: %d", v))
	}
}

// Suppressed carries //moca:allowalloc with a reason: not flagged.
//
//moca:hotpath
func Suppressed(s *sink, v int) {
	//moca:allowalloc one-time arming cost outside the steady state
	s.last = v
}

// Cold has no annotation, so nothing fires regardless.
func Cold(s *sink, v int) {
	s.h = func() { _ = v }
	fmt.Println(v)
	s.last = v
}

func dummy() {}
