// Package baredomain seeds a //moca:shard directive with no domain word.
package baredomain

// state is annotated but not assigned to any domain.
//
//moca:shard
type state struct { // want "//moca:shard annotation is missing its domain"
	n int
}
