// Package sim seeds shardsafe violations: cross-domain access outside a
// barrier, suppressed accesses, and incomplete annotations.
package sim

// coreState is core-shard-owned.
//
//moca:shard core
type coreState struct {
	cycles int
	link   *linkState
}

// linkState shares the core's domain.
//
//moca:shard core
type linkState struct {
	staged int
}

// chanState is channel-shard-owned.
//
//moca:shard channel
type chanState struct {
	pending int
}

// unmarked has no domain: touching it is free from anywhere.
type unmarked struct {
	n int
}

// CrossesDomains reads a channel shard from core-shard code mid-window:
// the access that widens the domain set is the diagnostic.
func CrossesDomains(c *coreState, ch *chanState) {
	c.cycles++
	ch.pending++ // want "function CrossesDomains touches shard domain .channel. after .core."
}

// MethodCrosses shows the receiver counting as the first domain.
func (ch *chanState) MethodCrosses(c *coreState) {
	_ = c.cycles // want "function MethodCrosses touches shard domain .core. after .channel."
}

// SameDomainOnly touches two types of one domain: no finding.
func SameDomainOnly(c *coreState) {
	c.cycles++
	c.link.staged++
}

// UnmarkedOnly touches only undomained state: no finding.
func UnmarkedOnly(u *unmarked, c *coreState) {
	u.n++
	c.cycles++
}

// AtBarrier crosses domains legally: it only runs between phases.
//
//moca:barrier coordinator applies staged traffic while workers are parked
func AtBarrier(c *coreState, ch *chanState) {
	ch.pending += c.link.staged
	c.link.staged = 0
}

// BareBarrier is annotated but gives no justification.
//
//moca:barrier
func BareBarrier(c *coreState, ch *chanState) { // want "//moca:barrier annotation is missing its reason"
	ch.pending += c.cycles
}

// Waived crosses domains on one audited line.
func Waived(c *coreState, ch *chanState) {
	c.cycles++
	//moca:allowshared monotonic counter, torn reads acceptable
	_ = ch.pending
}

// WaivedNoReason suppresses the finding but owes an explanation.
func WaivedNoReason(c *coreState, ch *chanState) {
	c.cycles++
	//moca:allowshared
	_ = ch.pending // want "//moca:allowshared annotation is missing its reason"
}
