package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc statically locks in the allocation-free design of functions
// annotated `//moca:hotpath` (the event queue, controller wakeups, and the
// page-table/TLB/MSHR paths). The bench smoke gates catch allocation
// regressions after the fact; this analyzer catches the three idioms that
// cause them at review time:
//
//   - function literals: a closure per event/callback is exactly what the
//     pooled (op, i64, p) payload API was built to avoid;
//   - fmt calls: every fmt call allocates (interface boxing of arguments
//     plus the formatted result);
//   - interface boxing: implicitly converting a non-pointer-shaped value
//     (int, struct, string, slice) to an interface allocates; converting a
//     pointer, func, map, or chan does not, which is why Post's `p any`
//     payload is free for pointer-shaped values.
//
// Code inside a panic(...) argument is exempt — a firing panic is off the
// hot path by definition. Individual lines are suppressed with
// `//moca:allowalloc <reason>`.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flags closures, fmt calls, and interface boxing in //moca:hotpath functions",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !hasDirective(fd.Doc, DirectiveHotPath) {
				continue
			}
			hc := &hotChecker{pass: pass, file: f, fn: fd}
			ast.Inspect(fd.Body, hc.visit)
		}
	}
	return nil
}

type hotChecker struct {
	pass *Pass
	file *ast.File
	fn   *ast.FuncDecl
}

func (hc *hotChecker) report(pos token.Pos, msg, fix string) {
	if hc.pass.checkSuppressed(hc.file, pos, DirectiveAllowAlloc) {
		return
	}
	hc.pass.Report(Diagnostic{
		Pos:     pos,
		Message: msg + " in " + DirectiveHotPath + " function " + hc.fn.Name.Name,
		Fix:     fix,
	})
}

func (hc *hotChecker) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.FuncLit:
		hc.report(n.Pos(),
			"function literal (closure) allocates",
			"use the pooled event payload (op, i64, p) or a method value on an "+
				"existing object; see the event.Handler pattern")
		return false // the literal's body has its own (cold) life

	case *ast.CallExpr:
		return hc.visitCall(n)

	case *ast.ReturnStmt:
		if obj := hc.pass.TypesInfo.Defs[hc.fn.Name]; obj != nil && hc.fn.Type.Results != nil {
			sig, ok := obj.Type().(*types.Signature)
			if ok && sig.Results().Len() == len(n.Results) {
				for i, expr := range n.Results {
					hc.checkBox(expr, sig.Results().At(i).Type(), "returned")
				}
			}
		}

	case *ast.AssignStmt:
		if len(n.Lhs) == len(n.Rhs) {
			for i, lhs := range n.Lhs {
				lt := hc.pass.TypesInfo.TypeOf(lhs)
				if lt != nil {
					hc.checkBox(n.Rhs[i], lt, "assigned")
				}
			}
		}

	case *ast.ValueSpec:
		if n.Type != nil {
			dt := hc.pass.TypesInfo.TypeOf(n.Type)
			if dt != nil {
				for _, v := range n.Values {
					hc.checkBox(v, dt, "assigned")
				}
			}
		}
	}
	return true
}

// visitCall handles fmt calls, panic exemption, and argument boxing. It
// returns false when the subtree should not be descended into.
func (hc *hotChecker) visitCall(call *ast.CallExpr) bool {
	info := hc.pass.TypesInfo

	// panic(...) arguments are cold: the box/format only happens when the
	// simulator is already dying.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			return b.Name() != "panic"
		}
	}

	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if pkgPath, name, ok := pkgFuncOf(info, sel); ok && pkgPath == "fmt" {
			hc.report(call.Pos(),
				"call to fmt."+name+" allocates",
				"move formatting off the hot path, or precompute the string; "+
					"panic(fmt.Sprintf(...)) is already exempt")
			return true
		}
	}

	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return true
	}
	if tv.IsType() {
		// Explicit conversion T(x): boxing if T is an interface.
		if len(call.Args) == 1 {
			hc.checkBox(call.Args[0], tv.Type, "converted")
		}
		return true
	}
	if tv.IsBuiltin() {
		return true
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return true
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // s... passes the slice through unboxed
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		hc.checkBox(arg, pt, "passed")
	}
	return true
}

// checkBox reports when expr (a concrete, non-pointer-shaped value) is
// implicitly converted to an interface-typed destination.
func (hc *hotChecker) checkBox(expr ast.Expr, dst types.Type, how string) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	tv, ok := hc.pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	src := tv.Type
	if types.IsInterface(src) {
		return // interface→interface re-uses the existing box
	}
	if b, ok := src.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	if pointerShaped(src) {
		return
	}
	hc.report(expr.Pos(),
		how+" value boxes "+src.String()+" into "+dst.String()+", which allocates",
		"pass a pointer-shaped payload (pointer, func, map, chan) or widen the "+
			"callee's parameters to concrete types")
}

// pointerShaped reports whether converting a value of type t to an
// interface stores the value directly in the interface word without
// allocating: pointers, unsafe pointers, funcs, maps, and chans.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Signature, *types.Map, *types.Chan:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}
