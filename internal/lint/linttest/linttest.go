// Package linttest is the moca-vet analogue of golang.org/x/tools'
// analysistest: it runs one analyzer over a testdata package and checks
// its diagnostics against `// want` comments.
package linttest

import (
	"path/filepath"

	"moca/internal/lint"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// AnalysisTest mirrors golang.org/x/tools' analysistest convention: it
// loads testdata/src/<pkgdir> as one package (the synthetic import path is
// pkgdir itself, so a directory named ".../sim" lands in the deterministic
// set) and checks the analyzer's diagnostics against `// want` comments.
//
// A `// want "re"` comment expects one diagnostic on its line whose
// message matches the regexp; several expectations stack as
// `// want "re1" "re2"`. A `// wantfix "re"` comment additionally
// requires the matched diagnostic's suggested fix to match. Diagnostics
// on lines with no expectation, and expectations with no diagnostic, fail
// the test.
func AnalysisTest(t *testing.T, a *lint.Analyzer, testdataDir, pkgdir string) {
	t.Helper()
	dir := filepath.Join(testdataDir, "src", filepath.FromSlash(pkgdir))
	pkg, err := lint.LoadDir(dir, pkgdir, pkgdir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	findings, _, err := lint.RunAnalyzers([]*lint.Package{pkg}, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	type expectation struct {
		file    string
		line    int
		re      *regexp.Regexp
		matched bool
	}
	var msgWants, fixWants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := pkg.Fset.Position(c.Pos())
				text := c.Text
				// The fix marker may trail the want marker on the same
				// comment, so cut each segment at the next marker.
				wantIdx := strings.Index(text, "// want ")
				fixIdx := strings.Index(text, "// wantfix ")
				if wantIdx >= 0 {
					seg := text[wantIdx+len("// want "):]
					if fixIdx > wantIdx {
						seg = text[wantIdx+len("// want ") : fixIdx]
					}
					for _, pat := range splitQuoted(t, pos.String(), seg) {
						msgWants = append(msgWants, &expectation{
							file: pos.Filename, line: pos.Line, re: mustCompile(t, pos.String(), pat),
						})
					}
				}
				if fixIdx >= 0 {
					for _, pat := range splitQuoted(t, pos.String(), text[fixIdx+len("// wantfix "):]) {
						fixWants = append(fixWants, &expectation{
							file: pos.Filename, line: pos.Line, re: mustCompile(t, pos.String(), pat),
						})
					}
				}
			}
		}
	}

	// Every diagnostic must consume exactly one message expectation on its
	// line, and every fix expectation must match some diagnostic's
	// suggested fix on its line (non-consuming: one diagnostic may satisfy
	// both a want and a wantfix).
	for _, f := range findings {
		matched := false
		for _, w := range msgWants {
			if w.matched || w.file != f.Position.Filename || w.line != f.Position.Line {
				continue
			}
			if !w.re.MatchString(f.Message) {
				continue
			}
			w.matched = true
			matched = true
			break
		}
		if !matched {
			t.Errorf("unexpected diagnostic:\n%s", f)
		}
		for _, w := range fixWants {
			if w.file == f.Position.Filename && w.line == f.Position.Line && w.re.MatchString(f.Fix) {
				w.matched = true
			}
		}
	}
	for _, w := range msgWants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
	for _, w := range fixWants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic whose fix matches %q", w.file, w.line, w.re)
		}
	}
}

func mustCompile(t *testing.T, pos, pat string) *regexp.Regexp {
	t.Helper()
	re, err := regexp.Compile(pat)
	if err != nil {
		t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
	}
	return re
}

// splitQuoted parses the sequence of Go-quoted strings after a want
// marker: `"re1" "re2"`.
func splitQuoted(t *testing.T, pos, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' {
			t.Fatalf("%s: malformed want expectation near %q", pos, s)
		}
		end := 1
		for end < len(s) {
			if s[end] == '\\' {
				end += 2
				continue
			}
			if s[end] == '"' {
				break
			}
			end++
		}
		if end >= len(s) {
			t.Fatalf("%s: unterminated want pattern %q", pos, s)
		}
		pat, err := strconv.Unquote(s[:end+1])
		if err != nil {
			t.Fatalf("%s: bad want pattern %q: %v", pos, s[:end+1], err)
		}
		out = append(out, pat)
		s = strings.TrimSpace(s[end+1:])
	}
	if len(out) == 0 {
		t.Fatalf("%s: want marker with no patterns", pos)
	}
	return out
}
