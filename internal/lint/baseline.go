package lint

// The findings baseline lets CI fail on *new* violations while a
// checked-in set of accepted ones stays visible: moca-vet -baseline
// subtracts matching findings from the failure set but still prints and
// (in -json mode) emits them, flagged. Entries match on analyzer, a file
// path suffix, and the message with digit runs normalized away, so line
// renumbering from unrelated edits does not invalidate the baseline.

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// BaselineEntry identifies one accepted finding.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
}

// Baseline is the checked-in set of accepted findings.
type Baseline struct {
	Findings []BaselineEntry `json:"findings"`
}

// LoadBaseline reads a baseline file. A missing file is an error: the
// caller asked to gate on a baseline that does not exist.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("lint: reading baseline: %w", err)
	}
	b := new(Baseline)
	if err := json.Unmarshal(data, b); err != nil {
		return nil, fmt.Errorf("lint: parsing baseline %s: %w", path, err)
	}
	return b, nil
}

// WriteBaseline records the findings as the new baseline at path.
func WriteBaseline(path string, findings []Finding) error {
	b := Baseline{Findings: make([]BaselineEntry, 0, len(findings))}
	for _, f := range findings {
		b.Findings = append(b.Findings, BaselineEntry{
			Analyzer: f.Analyzer,
			File:     f.Position.Filename,
			Message:  f.Message,
		})
	}
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Match reports whether the entry accepts the finding.
func (e BaselineEntry) Match(f Finding) bool {
	return e.Analyzer == f.Analyzer &&
		suffixPathMatch(f.Position.Filename, e.File) &&
		normalizeMessage(e.Message) == normalizeMessage(f.Message)
}

// Filter splits findings into those the baseline accepts and fresh ones.
// matched runs parallel to findings; stale lists baseline entries that
// matched nothing (candidates for deletion).
func (b *Baseline) Filter(findings []Finding) (matched []bool, fresh []Finding, stale []BaselineEntry) {
	matched = make([]bool, len(findings))
	used := make([]bool, len(b.Findings))
	for i, f := range findings {
		for j, e := range b.Findings {
			if e.Match(f) {
				matched[i] = true
				used[j] = true
				break
			}
		}
		if !matched[i] {
			fresh = append(fresh, f)
		}
	}
	for j, u := range used {
		if !u {
			stale = append(stale, b.Findings[j])
		}
	}
	return matched, fresh, stale
}

// suffixPathMatch reports whether the (possibly absolute) finding path
// ends in the (typically repo-relative) baseline path, on a path-element
// boundary.
func suffixPathMatch(got, want string) bool {
	if got == want {
		return true
	}
	return strings.HasSuffix(got, "/"+strings.TrimPrefix(want, "/"))
}

// normalizeMessage folds digit runs to a placeholder so messages that
// embed line numbers ("locked at line 83") survive renumbering.
func normalizeMessage(s string) string {
	var sb strings.Builder
	inDigits := false
	for _, r := range s {
		if r >= '0' && r <= '9' {
			if !inDigits {
				sb.WriteByte('#')
				inDigits = true
			}
			continue
		}
		inDigits = false
		sb.WriteRune(r)
	}
	return sb.String()
}
