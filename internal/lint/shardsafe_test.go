package lint_test

import (
	"testing"

	"moca/internal/lint"
	"moca/internal/lint/linttest"
)

func TestShardSafe(t *testing.T) {
	linttest.AnalysisTest(t, lint.ShardSafe, "testdata", "shardsafe/sim")
}

func TestShardSafeBareDomain(t *testing.T) {
	linttest.AnalysisTest(t, lint.ShardSafe, "testdata", "shardsafe/baredomain")
}
