package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockHold flags blocking operations performed while a sync.Mutex or
// sync.RWMutex is held. A server that sleeps, performs conn I/O, parks on
// a channel, or runs a simulation under a lock serializes every other
// goroutine contending for that lock behind one slow peer — the classic
// path from "one stuck client" to "whole service stalled".
//
// The walker is an abstract interpretation of each function body: Lock and
// RLock add the receiver expression to the held set, Unlock and RUnlock
// remove it, `defer mu.Unlock()` keeps it held to the end of the function,
// and branches merge conservatively (a lock counts as released after an
// if/else only when both arms release it; a branch that returns drops out
// of the merge). Function literals and `go` bodies start with an empty
// held set: they run at call time, not at creation, and a goroutine does
// not inherit its spawner's locks.
//
// Blocking operations are channel sends/receives, range-over-channel,
// select without a default case, and the curated call table in
// blockingDesc. Suppress one operation with `//moca:allowhold <reason>`.
var LockHold = &Analyzer{
	Name: "lockhold",
	Doc:  "report blocking operations performed while a mutex is held",
	Run:  runLockHold,
}

// lockHoldPackages scopes the check to the serving layer plus obs, whose
// registry and trace mutexes sit on the hub snapshot path.
var lockHoldPackages = map[string]bool{
	"wire":   true,
	"server": true,
	"client": true,
	"exp":    true,
	"obs":    true,
}

func runLockHold(pass *Pass) error {
	if !lockHoldPackages[pathBase(pass.Pkg.Path())] {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			lc := &lockChecker{pass: pass, file: file}
			lc.walkStmts(fd.Body.List, map[string]token.Pos{})
		}
	}
	return nil
}

type lockChecker struct {
	pass *Pass
	file *ast.File
}

func clonePosMap(m map[string]token.Pos) map[string]token.Pos {
	c := make(map[string]token.Pos, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// walkStmts interprets a statement list, mutating held as locks are taken
// and released on the straight-line path. It returns the set of lock keys
// released along this path and whether the path terminates early (return
// or branch statement), which is what the if/else merge consumes.
func (lc *lockChecker) walkStmts(stmts []ast.Stmt, held map[string]token.Pos) (released map[string]bool, terminated bool) {
	released = make(map[string]bool)
	for _, s := range stmts {
		rel, term := lc.walkStmt(s, held)
		for k := range rel {
			released[k] = true
		}
		if term {
			return released, true
		}
	}
	return released, false
}

func (lc *lockChecker) walkStmt(s ast.Stmt, held map[string]token.Pos) (map[string]bool, bool) {
	released := make(map[string]bool)
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if key, op, ok := mutexOp(lc.pass.TypesInfo, call); ok {
				switch op {
				case "Lock", "RLock":
					held[key] = call.Pos()
				case "Unlock", "RUnlock":
					delete(held, key)
					released[key] = true
				}
				return released, false
			}
		}
		lc.checkExpr(s.X, held)
	case *ast.SendStmt:
		lc.reportIfHeld(s.Arrow, "channel send", held)
		lc.checkExpr(s.Chan, held)
		lc.checkExpr(s.Value, held)
	case *ast.DeferStmt:
		if _, op, ok := mutexOp(lc.pass.TypesInfo, s.Call); ok &&
			(op == "Unlock" || op == "RUnlock") {
			// The lock stays held until the function returns; keep it in
			// the set so later blocking operations are still flagged.
			return released, false
		}
		// A deferred call runs during unwinding with unknowable lock
		// state; its arguments, though, evaluate right now.
		for _, arg := range s.Call.Args {
			lc.checkExpr(arg, held)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			lc.walkStmts(lit.Body.List, map[string]token.Pos{})
		}
	case *ast.GoStmt:
		// The goroutine runs concurrently and does not inherit the
		// spawner's locks; its arguments evaluate in the spawner.
		for _, arg := range s.Call.Args {
			lc.checkExpr(arg, held)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			lc.walkStmts(lit.Body.List, map[string]token.Pos{})
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			lc.checkExpr(e, held)
		}
		for _, e := range s.Lhs {
			lc.checkExpr(e, held)
		}
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			break
		}
		for _, spec := range gd.Specs {
			if vs, ok := spec.(*ast.ValueSpec); ok {
				for _, v := range vs.Values {
					lc.checkExpr(v, held)
				}
			}
		}
	case *ast.IncDecStmt:
		lc.checkExpr(s.X, held)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			lc.checkExpr(e, held)
		}
		return released, true
	case *ast.BranchStmt:
		// break/continue/goto leave this statement list.
		return released, true
	case *ast.BlockStmt:
		return lc.walkStmts(s.List, held)
	case *ast.LabeledStmt:
		return lc.walkStmt(s.Stmt, held)
	case *ast.IfStmt:
		if s.Init != nil {
			rel, _ := lc.walkStmt(s.Init, held)
			for k := range rel {
				released[k] = true
			}
		}
		lc.checkExpr(s.Cond, held)
		bodyRel, bodyTerm := lc.walkStmts(s.Body.List, clonePosMap(held))
		if s.Else == nil {
			// The fall-through path may not have released anything.
			return released, false
		}
		elseRel, elseTerm := lc.walkStmt(s.Else, clonePosMap(held))
		merge := func(rel map[string]bool) {
			for k := range rel {
				delete(held, k)
				released[k] = true
			}
		}
		switch {
		case bodyTerm && elseTerm:
			return released, true
		case bodyTerm:
			merge(elseRel)
		case elseTerm:
			merge(bodyRel)
		default:
			// Released only if both arms released it.
			for k := range bodyRel {
				if elseRel[k] {
					delete(held, k)
					released[k] = true
				}
			}
		}
	case *ast.ForStmt:
		if s.Init != nil {
			lc.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			lc.checkExpr(s.Cond, held)
		}
		lc.walkStmts(s.Body.List, clonePosMap(held))
		if s.Post != nil {
			lc.walkStmt(s.Post, clonePosMap(held))
		}
	case *ast.RangeStmt:
		if t := lc.pass.TypesInfo.TypeOf(s.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				lc.reportIfHeld(s.For, "range over channel", held)
			}
		}
		lc.checkExpr(s.X, held)
		lc.walkStmts(s.Body.List, clonePosMap(held))
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			lc.reportIfHeld(s.Select, "blocking select (no default case)", held)
		}
		// The comm operations themselves are covered by the select-level
		// report (or are non-blocking when a default exists); walk only
		// the clause bodies.
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				lc.walkStmts(cc.Body, clonePosMap(held))
			}
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			lc.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			lc.checkExpr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					lc.checkExpr(e, held)
				}
				lc.walkStmts(cc.Body, clonePosMap(held))
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			lc.walkStmt(s.Init, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				lc.walkStmts(cc.Body, clonePosMap(held))
			}
		}
	}
	return released, false
}

// checkExpr flags blocking operations in an expression evaluated while
// locks are held. Function literals are walked with an empty held set:
// their bodies run when called, not when created.
func (lc *lockChecker) checkExpr(e ast.Expr, held map[string]token.Pos) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			lc.walkStmts(n.Body.List, map[string]token.Pos{})
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				lc.reportIfHeld(n.OpPos, "channel receive", held)
			}
		case *ast.CallExpr:
			if key, op, ok := mutexOp(lc.pass.TypesInfo, n); ok {
				if op == "Lock" || op == "RLock" {
					held[key] = n.Pos()
				} else {
					delete(held, key)
				}
				return false
			}
			if desc := blockingDesc(lc.pass.TypesInfo, n); desc != "" {
				lc.reportIfHeld(n.Pos(), desc, held)
			}
		}
		return true
	})
}

func (lc *lockChecker) reportIfHeld(pos token.Pos, desc string, held map[string]token.Pos) {
	if len(held) == 0 {
		return
	}
	if lc.pass.checkSuppressed(lc.file, pos, DirectiveAllowHold) {
		return
	}
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	key := keys[0]
	lc.pass.Report(Diagnostic{
		Pos: pos,
		Message: fmt.Sprintf("%s while %q is held (locked at line %d)",
			desc, key, lc.pass.Fset.Position(held[key]).Line),
		Fix: "release the lock before the blocking operation, or annotate `//moca:allowhold <reason>`",
	})
}
