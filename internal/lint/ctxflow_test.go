package lint_test

import (
	"testing"

	"moca/internal/lint"
	"moca/internal/lint/linttest"
)

func TestCtxFlow(t *testing.T) {
	linttest.AnalysisTest(t, lint.CtxFlow, "testdata", "ctxflow/server")
}

// TestCtxFlowOutsideServingLayer runs the analyzer over the same context
// sins in a package outside the serving layer and expects silence: the
// check is scoped by import path.
func TestCtxFlowOutsideServingLayer(t *testing.T) {
	linttest.AnalysisTest(t, lint.CtxFlow, "testdata", "ctxflow/other")
}
