package lint_test

import (
	"testing"

	"moca/internal/lint"
	"moca/internal/lint/linttest"
)

func TestWireDispatch(t *testing.T) {
	linttest.AnalysisTest(t, lint.WireDispatch, "testdata", "wiredispatch/wire")
}

// TestWireDispatchOutsideProtocolPackages runs the analyzer over the same
// decode patterns in a package outside wire/server/client and expects
// silence: the check is scoped by import path.
func TestWireDispatchOutsideProtocolPackages(t *testing.T) {
	linttest.AnalysisTest(t, lint.WireDispatch, "testdata", "wiredispatch/other")
}
