package lint_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"moca/internal/lint"
	"moca/internal/lint/linttest"
)

var update = flag.Bool("update", false,
	"rewrite the checked-in behaviorversion testdata fingerprint")

// loadVariant type-checks testdata/src/behaviorversion/<dir> under the
// SAME import path for every variant, so the three schemas differ only by
// their deliberate edits (not by package qualification).
func loadVariant(t *testing.T, dir string) lint.Fingerprint {
	t.Helper()
	pkg, err := lint.LoadDir(filepath.Join("testdata", "src", "behaviorversion", dir),
		"behaviorversion/sim", "behaviorversion/sim")
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	fp, err := lint.ComputeFingerprint(pkg.Types, pkg.ModulePath)
	if err != nil {
		t.Fatalf("fingerprinting %s: %v", dir, err)
	}
	return fp
}

// record writes fp to a fresh temp fingerprint file and returns the path.
func record(t *testing.T, fp lint.Fingerprint) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), lint.FingerprintRelPath)
	if err := lint.UpdateFingerprintFile(fp, path); err != nil {
		t.Fatalf("recording fingerprint: %v", err)
	}
	return path
}

// TestBehaviorVersionCleanPass runs the analyzer end-to-end over a
// package whose checked-in fingerprint matches: zero diagnostics. The
// recording regenerates with `go test ./internal/lint -run BehaviorVersion -update`.
func TestBehaviorVersionCleanPass(t *testing.T) {
	if *update {
		fp := loadVariant(t, "sim")
		path := filepath.Join("testdata", "src", "behaviorversion", "sim", lint.FingerprintRelPath)
		if err := lint.UpdateFingerprintFile(fp, path); err != nil {
			t.Fatalf("updating %s: %v", path, err)
		}
	}
	linttest.AnalysisTest(t, lint.BehaviorVersion, "testdata", "behaviorversion/sim")
}

// TestBehaviorVersionSchemaEditWithoutBump is the analyzer's reason to
// exist: a synthetic cache-visible schema edit with an unchanged
// BehaviorVersion must fail the check and name the moved field.
func TestBehaviorVersionSchemaEditWithoutBump(t *testing.T) {
	path := record(t, loadVariant(t, "sim"))
	diags := lint.CheckFingerprintFile(loadVariant(t, "simedit"), path)
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "without a BehaviorVersion bump") {
		t.Errorf("message %q does not name the missing bump", diags[0].Message)
	}
	if !strings.Contains(diags[0].Message, "EnergyJ") {
		t.Errorf("message %q does not show the edited field in the schema diff", diags[0].Message)
	}
	if !strings.Contains(diags[0].Fix, "bump BehaviorVersion") {
		t.Errorf("fix %q does not suggest the bump", diags[0].Fix)
	}
}

// TestBehaviorVersionStaleAfterBump checks the happy upgrade path: once
// the version IS bumped the only complaint is a stale recording, and
// -update (UpdateFingerprintFile) clears it.
func TestBehaviorVersionStaleAfterBump(t *testing.T) {
	path := record(t, loadVariant(t, "sim"))
	bumped := loadVariant(t, "simbumped")
	diags := lint.CheckFingerprintFile(bumped, path)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "stale") {
		t.Fatalf("got %v, want one stale-recording diagnostic", diags)
	}
	if !strings.Contains(diags[0].Message, "recorded version 2, current 3") {
		t.Errorf("message %q does not show both versions", diags[0].Message)
	}
	if err := lint.UpdateFingerprintFile(bumped, path); err != nil {
		t.Fatalf("refreshing recording: %v", err)
	}
	if diags := lint.CheckFingerprintFile(bumped, path); len(diags) != 0 {
		t.Errorf("after -update, got %v, want clean", diags)
	}
}

// TestBehaviorVersionMissingRecording: a behavior-versioned package with
// no checked-in fingerprint is itself a finding.
func TestBehaviorVersionMissingRecording(t *testing.T) {
	path := filepath.Join(t.TempDir(), lint.FingerprintRelPath)
	diags := lint.CheckFingerprintFile(loadVariant(t, "sim"), path)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "no schema fingerprint recorded") {
		t.Fatalf("got %v, want one missing-recording diagnostic", diags)
	}
}

// TestBehaviorVersionRejectsHandEdit: the recorded hash covers the
// recorded schema text, so editing the file by hand (instead of running
// -update) is detected rather than trusted.
func TestBehaviorVersionRejectsHandEdit(t *testing.T) {
	fp := loadVariant(t, "sim")
	tampered := strings.Replace(string(lint.FormatFingerprintFile(fp)), "Cycles", "Cyclez", 1)
	if _, err := lint.ParseFingerprintFile([]byte(tampered)); err == nil ||
		!strings.Contains(err.Error(), "hand-edited") {
		t.Fatalf("got %v, want hand-edit rejection", err)
	}
}

// TestRepoFingerprintCurrent pins the real thing: the checked-in
// fingerprint for moca/internal/sim must match the schema as compiled.
// If this fails after an intentional schema change, bump sim.BehaviorVersion
// (when the cache-visible meaning changed) and run
// `go run ./cmd/moca-vet -fingerprint -update ./internal/sim`.
func TestRepoFingerprintCurrent(t *testing.T) {
	pkgs, err := lint.Load(filepath.Join("..", ".."), "./internal/sim")
	if err != nil {
		t.Fatalf("loading moca/internal/sim: %v", err)
	}
	checked := false
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		if scope.Lookup("Result") == nil || scope.Lookup("BehaviorVersion") == nil {
			continue
		}
		checked = true
		fp, err := lint.ComputeFingerprint(pkg.Types, pkg.ModulePath)
		if err != nil {
			t.Fatalf("fingerprinting %s: %v", pkg.ImportPath, err)
		}
		path := filepath.Join(pkg.Dir, lint.FingerprintRelPath)
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("checked-in fingerprint missing: %v", err)
		}
		for _, d := range lint.CheckFingerprintFile(fp, path) {
			t.Errorf("%s: %s\n\tfix: %s", pkg.ImportPath, d.Message, d.Fix)
		}
	}
	if !checked {
		t.Fatal("no behavior-versioned package found under ./internal/sim")
	}
}
