package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// WireDispatch guards the wire protocol's three classic decode-side holes:
//
//  1. non-exhaustive dispatch: every wire.Type* frame constant of a
//     direction (client→server low types, server→client high-bit types)
//     must appear in that package's dispatch switches, so adding a frame
//     type without handling it everywhere is a vet failure, not a silent
//     protocol error at runtime;
//  2. fuzz-corpus drift: the package that declares ReadFrame must seed
//     FuzzReadFrame with every frame type, or the fuzzer never explores
//     most of the dispatch surface;
//  3. unbounded decode allocations: any `make` sized from a non-constant
//     value in the wire package must be dominated by a `<`/`>` comparison
//     against a named bound — a length-prefixed decoder that allocates
//     before bounds-checking hands every peer a memory-exhaustion lever.
//
// Suppress a dispatch or corpus finding with `//moca:allowdispatch
// <reason>` and an allocation finding with `//moca:allowsize <reason>`.
var WireDispatch = &Analyzer{
	Name: "wiredispatch",
	Doc:  "require exhaustive frame dispatch, full fuzz seed coverage, and bounds-checked decode allocations",
	Run:  runWireDispatch,
}

// wireDispatchPackages scopes the check to the protocol and its two
// endpoint packages.
var wireDispatchPackages = map[string]bool{
	"wire":   true,
	"server": true,
	"client": true,
}

func runWireDispatch(pass *Pass) error {
	base := pathBase(pass.Pkg.Path())
	if !wireDispatchPackages[base] {
		return nil
	}
	consts := frameTypeConstants(pass)
	if len(consts.byName) > 0 {
		checkDispatchExhaustiveness(pass, consts)
	}
	if base == "wire" {
		checkBoundedAllocs(pass)
		if len(consts.byName) > 0 && pass.Pkg.Scope().Lookup("ReadFrame") != nil {
			checkFuzzCorpus(pass, consts)
		}
	}
	return nil
}

// frameConsts is the set of frame-type constants visible to a package:
// byte constants named Type*, declared locally or by an imported package
// whose path ends in "wire".
type frameConsts struct {
	byName map[string]byte
	objs   map[types.Object]string
}

func frameTypeConstants(pass *Pass) frameConsts {
	fc := frameConsts{
		byName: make(map[string]byte),
		objs:   make(map[types.Object]string),
	}
	collect := func(scope *types.Scope) {
		for _, name := range scope.Names() {
			if !strings.HasPrefix(name, "Type") {
				continue
			}
			c, ok := scope.Lookup(name).(*types.Const)
			if !ok {
				continue
			}
			b, ok := c.Type().Underlying().(*types.Basic)
			if !ok || b.Info()&types.IsInteger == 0 {
				continue
			}
			v, ok := constant.Uint64Val(c.Val())
			if !ok || v > 0xff {
				continue
			}
			fc.byName[name] = byte(v)
			fc.objs[c] = name
		}
	}
	collect(pass.Pkg.Scope())
	for _, imp := range pass.Pkg.Imports() {
		if pathBase(imp.Path()) == "wire" {
			collect(imp.Scope())
		}
	}
	return fc
}

// frameDirection splits the type space on the high bit: the protocol
// reserves 0x80 for server→client frames.
func frameDirection(v byte) string {
	if v&0x80 != 0 {
		return "server→client"
	}
	return "client→server"
}

// checkDispatchExhaustiveness unions, per direction, the frame constants
// covered by the package's dispatch switches (a switch naming two or more
// frame constants in its cases) and reports the constants a direction's
// dispatch misses. The union is package-wide: a client may handle replies
// across several call sites, as long as together they cover every type.
func checkDispatchExhaustiveness(pass *Pass, consts frameConsts) {
	covered := make(map[string]map[string]bool)
	firstSwitch := make(map[string]token.Pos)
	switchFile := make(map[string]*ast.File)
	for _, file := range pass.Files {
		file := file
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			hits := make(map[string]bool)
			for _, c := range sw.Body.List {
				cc, ok := c.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, e := range cc.List {
					var id *ast.Ident
					switch e := e.(type) {
					case *ast.Ident:
						id = e
					case *ast.SelectorExpr:
						id = e.Sel
					default:
						continue
					}
					if name, ok := consts.objs[pass.TypesInfo.Uses[id]]; ok {
						hits[name] = true
					}
				}
			}
			if len(hits) < 2 {
				return true // not a frame dispatch switch
			}
			for name := range hits {
				dir := frameDirection(consts.byName[name])
				if covered[dir] == nil {
					covered[dir] = make(map[string]bool)
					firstSwitch[dir] = sw.Pos()
					switchFile[dir] = file
				}
				covered[dir][name] = true
			}
			return true
		})
	}
	for dir, got := range covered {
		var missing []string
		for name, v := range consts.byName {
			if frameDirection(v) == dir && !got[name] {
				missing = append(missing, name)
			}
		}
		if len(missing) == 0 {
			continue
		}
		sort.Strings(missing)
		if pass.checkSuppressed(switchFile[dir], firstSwitch[dir], DirectiveAllowDispatch) {
			continue
		}
		pass.Report(Diagnostic{
			Pos: firstSwitch[dir],
			Message: fmt.Sprintf("non-exhaustive %s frame dispatch: missing %s",
				dir, strings.Join(missing, ", ")),
			Fix: "handle every frame type of this direction (the default case is for unknown future types only), or annotate `//moca:allowdispatch <reason>`",
		})
	}
}

// checkFuzzCorpus requires the FuzzReadFrame seed corpus to reference
// every declared frame-type constant. Test files are not part of the
// loaded package, so when the fuzz target is not among pass.Files it is
// parsed (not type-checked) from the package directory's *_test.go files.
func checkFuzzCorpus(pass *Pass, consts frameConsts) {
	fuzz, file := findFuzzReadFrame(pass.Files)
	if fuzz == nil {
		fuzz, file = parseFuzzReadFrame(pass)
	}
	if fuzz == nil {
		pass.Report(Diagnostic{
			Pos:     pass.Files[0].Name.Pos(),
			Message: "package declares ReadFrame and frame-type constants but no FuzzReadFrame seed corpus",
			Fix:     "add FuzzReadFrame with one seed frame per Type* constant",
		})
		return
	}
	used := make(map[string]bool)
	ast.Inspect(fuzz.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			used[id.Name] = true
		}
		return true
	})
	var missing []string
	for name := range consts.byName {
		if !used[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	if pass.checkSuppressed(file, fuzz.Pos(), DirectiveAllowDispatch) {
		return
	}
	pass.Report(Diagnostic{
		Pos: fuzz.Pos(),
		Message: fmt.Sprintf("FuzzReadFrame seed corpus is missing frame types: %s",
			strings.Join(missing, ", ")),
		Fix: "seed one frame per Type* constant so the fuzzer reaches every dispatch arm",
	})
}

func findFuzzReadFrame(files []*ast.File) (*ast.FuncDecl, *ast.File) {
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok &&
				fd.Recv == nil && fd.Name.Name == "FuzzReadFrame" && fd.Body != nil {
				return fd, f
			}
		}
	}
	return nil, nil
}

func parseFuzzReadFrame(pass *Pass) (*ast.FuncDecl, *ast.File) {
	names, err := filepath.Glob(filepath.Join(pass.Dir, "*_test.go"))
	if err != nil {
		return nil, nil
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(pass.Fset, name, nil, parser.ParseComments)
		if err != nil {
			continue
		}
		files = append(files, f)
	}
	return findFuzzReadFrame(files)
}

// checkBoundedAllocs requires every non-constant-sized make in the wire
// package to be dominated by an inequality comparison involving the size
// (or a value it was derived from): allocate only after the decoded
// length has been checked against a bound.
func checkBoundedAllocs(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkAllocsInFunc(pass, file, fd)
		}
	}
}

func checkAllocsInFunc(pass *Pass, file *ast.File, fd *ast.FuncDecl) {
	// Union identifiers related by assignment, so `n := len(payload) + 1`
	// lets a check on n guard an allocation sized from payload and vice
	// versa. Name-keyed union-find is coarse but sound enough inside one
	// function body.
	parent := make(map[string]string)
	var find func(string) string
	find = func(x string) string {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	union := func(a, b string) { parent[find(a)] = find(b) }
	identNames := func(e ast.Expr) []string {
		var names []string
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && id.Name != "_" {
				names = append(names, id.Name)
			}
			return true
		})
		return names
	}
	relate := func(lhs, rhs []ast.Expr) {
		var all []string
		for _, e := range lhs {
			all = append(all, identNames(e)...)
		}
		for _, e := range rhs {
			all = append(all, identNames(e)...)
		}
		for i := 1; i < len(all); i++ {
			union(all[0], all[i])
		}
	}
	type guard struct {
		pos   token.Pos
		names []string
	}
	var guards []guard
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			relate(n.Lhs, n.Rhs)
		case *ast.ValueSpec:
			lhs := make([]ast.Expr, len(n.Names))
			for i, id := range n.Names {
				lhs[i] = id
			}
			relate(lhs, n.Values)
		case *ast.BinaryExpr:
			switch n.Op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ:
				names := identNames(n)
				// A bound needs two participants: the size and the named
				// limit it is compared against; `n == 0`-style checks are
				// not bounds.
				if len(names) >= 2 {
					guards = append(guards, guard{pos: n.Pos(), names: names})
				}
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "make" || len(call.Args) < 2 {
			return true
		}
		if _, isSlice := pass.TypesInfo.TypeOf(call).Underlying().(*types.Slice); !isSlice {
			return true
		}
		for _, size := range call.Args[1:] {
			if tv, ok := pass.TypesInfo.Types[size]; ok && tv.Value != nil {
				continue // constant size
			}
			names := identNames(size)
			if len(names) == 0 {
				continue
			}
			guarded := false
			for _, g := range guards {
				if g.pos >= call.Pos() {
					continue
				}
				for _, gn := range g.names {
					for _, sn := range names {
						if find(gn) == find(sn) {
							guarded = true
						}
					}
				}
			}
			if guarded {
				continue
			}
			if pass.checkSuppressed(file, call.Pos(), DirectiveAllowSize) {
				continue
			}
			pass.Report(Diagnostic{
				Pos: call.Pos(),
				Message: fmt.Sprintf(
					"allocation sized from unchecked value %s", types.ExprString(size)),
				Fix: "compare the decoded length against a named max before allocating, or annotate `//moca:allowsize <reason>`",
			})
		}
		return true
	})
}
