package lint_test

import (
	"go/token"
	"os"
	"path/filepath"
	"testing"

	"moca/internal/lint"
)

func finding(analyzer, file, message string) lint.Finding {
	return lint.Finding{
		Analyzer:   analyzer,
		Position:   token.Position{Filename: file, Line: 1, Column: 1},
		Diagnostic: lint.Diagnostic{Message: message},
	}
}

func TestBaselineEntryMatch(t *testing.T) {
	entry := lint.BaselineEntry{
		Analyzer: "lockhold",
		File:     "internal/wire/server/server.go",
		Message:  `time.Sleep while "c.wmu" is held (locked at line 83)`,
	}
	cases := []struct {
		name string
		f    lint.Finding
		want bool
	}{
		{
			// The finding's absolute path suffix-matches the repo-relative
			// baseline path, and the embedded line number is normalized
			// away, so renumbering from unrelated edits keeps the match.
			name: "absolute path and renumbered line",
			f: finding("lockhold", "/build/src/internal/wire/server/server.go",
				`time.Sleep while "c.wmu" is held (locked at line 97)`),
			want: true,
		},
		{
			name: "exact relative path",
			f: finding("lockhold", "internal/wire/server/server.go",
				`time.Sleep while "c.wmu" is held (locked at line 83)`),
			want: true,
		},
		{
			name: "different analyzer",
			f: finding("ctxflow", "internal/wire/server/server.go",
				`time.Sleep while "c.wmu" is held (locked at line 83)`),
			want: false,
		},
		{
			name: "different message",
			f: finding("lockhold", "internal/wire/server/server.go",
				`channel send while "c.wmu" is held (locked at line 83)`),
			want: false,
		},
		{
			// "…otherserver.go" must not match "…/server.go": the suffix
			// comparison honors path-element boundaries.
			name: "suffix off a path boundary",
			f: finding("lockhold", "/build/src/internal/wire/otherserver/server.go",
				`time.Sleep while "c.wmu" is held (locked at line 83)`),
			want: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := entry.Match(tc.f); got != tc.want {
				t.Errorf("Match(%s %s) = %v, want %v",
					tc.f.Analyzer, tc.f.Position.Filename, got, tc.want)
			}
		})
	}
}

func TestBaselineFilter(t *testing.T) {
	b := &lint.Baseline{Findings: []lint.BaselineEntry{
		{Analyzer: "lockhold", File: "a/b.go", Message: "sleep under lock at line 3"},
		{Analyzer: "goroleak", File: "a/c.go", Message: "untracked goroutine"},
	}}
	findings := []lint.Finding{
		finding("lockhold", "/root/a/b.go", "sleep under lock at line 44"),
		finding("ctxflow", "/root/a/b.go", "detached context"),
	}
	matched, fresh, stale := b.Filter(findings)
	if !matched[0] || matched[1] {
		t.Errorf("matched = %v, want [true false]", matched)
	}
	if len(fresh) != 1 || fresh[0].Analyzer != "ctxflow" {
		t.Errorf("fresh = %+v, want the one ctxflow finding", fresh)
	}
	if len(stale) != 1 || stale[0].Analyzer != "goroleak" {
		t.Errorf("stale = %+v, want the unmatched goroleak entry", stale)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	in := []lint.Finding{
		finding("wiredispatch", "internal/wire/wire.go", "allocation sized from unchecked value n"),
	}
	if err := lint.WriteBaseline(path, in); err != nil {
		t.Fatalf("WriteBaseline: %v", err)
	}
	b, err := lint.LoadBaseline(path)
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	if len(b.Findings) != 1 {
		t.Fatalf("got %d entries, want 1", len(b.Findings))
	}
	e := b.Findings[0]
	if e.Analyzer != "wiredispatch" || e.File != "internal/wire/wire.go" ||
		e.Message != "allocation sized from unchecked value n" {
		t.Errorf("round-tripped entry = %+v", e)
	}
	if !e.Match(in[0]) {
		t.Errorf("round-tripped entry does not match its own finding")
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	if len(data) == 0 || data[len(data)-1] != '\n' {
		t.Errorf("baseline file does not end in a newline")
	}
}

func TestLoadBaselineMissingFile(t *testing.T) {
	if _, err := lint.LoadBaseline(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatalf("LoadBaseline on a missing file succeeded, want error")
	}
}
