package lint

import (
	"fmt"
	"go/ast"
	"go/token"
)

// CtxFlow enforces context discipline in the serving layer. A server that
// stays up under load is one whose every blocking operation is tied to a
// cancellation signal; the three rules here are the cheapest static
// approximation of that property:
//
//  1. context.Background() and context.TODO() are banned outside package
//     main — serving code receives its context from a caller or a server
//     lifecycle and must derive from it, never restart the tree;
//  2. a function that accepts a context.Context must not call the
//     ctx-blind variant of a blocking operation (time.Sleep,
//     Runner.RunSingle/RunMix/Instrument, System.Run) — the Ctx/Context
//     variants exist precisely so cancellation threads through;
//  3. a long-lived `for { select { ... } }` loop in a ctx-taking function
//     must include a `<-ctx.Done()` case, or it outlives its caller.
//
// Suppress one finding with `//moca:allowctx <reason>` — the reason should
// say which lifecycle owns the detached work.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "require serving-layer code to thread caller contexts into blocking work",
	Run:  runCtxFlow,
}

// ctxBlindCalls maps a receiver type name to the method names that have a
// context-threading variant the caller should use instead.
var ctxBlindCalls = map[string]map[string]string{
	"Runner": {
		"RunSingle":  "RunSingleCtx",
		"RunMix":     "RunMixCtx",
		"Instrument": "InstrumentCtx",
	},
	"System": {
		"Run": "RunContext",
	},
}

func runCtxFlow(pass *Pass) error {
	if !isServingPkg(pass.Pkg.Path()) || pass.Pkg.Name() == "main" {
		return nil
	}
	for _, file := range pass.Files {
		lc := &ctxChecker{pass: pass, file: file}
		lc.checkDetachedContexts()
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasCtxParam(pass, fd) {
				continue
			}
			lc.checkBlindCalls(fd)
			lc.checkSelectLoops(fd)
		}
	}
	return nil
}

type ctxChecker struct {
	pass *Pass
	file *ast.File
}

// hasCtxParam reports whether the function declares a context.Context
// parameter.
func hasCtxParam(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if isContextType(pass.TypesInfo.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

// checkDetachedContexts bans context.Background()/TODO() anywhere in the
// file: serving code never owns the root of a context tree.
func (cc *ctxChecker) checkDetachedContexts() {
	ast.Inspect(cc.file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgPath, name, ok := pkgFuncOf(cc.pass.TypesInfo, sel)
		if !ok || pkgPath != "context" || (name != "Background" && name != "TODO") {
			return true
		}
		if cc.pass.checkSuppressed(cc.file, call.Pos(), DirectiveAllowCtx) {
			return true
		}
		cc.pass.Report(Diagnostic{
			Pos: call.Pos(),
			Message: fmt.Sprintf(
				"context.%s() detaches work from caller cancellation in a serving package", name),
			Fix: "derive from a caller or server lifecycle context, or annotate `//moca:allowctx <reason>`",
		})
		return true
	})
}

// checkBlindCalls flags calls to the non-context variant of a blocking
// operation from a function that has a ctx to thread.
func (cc *ctxChecker) checkBlindCalls(fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		if pkgPath, fn, ok := pkgFuncOf(cc.pass.TypesInfo, sel); ok {
			if pkgPath == "time" && fn == "Sleep" {
				cc.reportBlind(call.Pos(), "time.Sleep",
					"a timer select with a <-ctx.Done() case")
			}
			return true
		}
		recv := derefNamed(cc.pass.TypesInfo.TypeOf(sel.X))
		if recv == nil {
			return true
		}
		if variant, ok := ctxBlindCalls[recv.Obj().Name()][name]; ok {
			cc.reportBlind(call.Pos(),
				fmt.Sprintf("%s.%s", recv.Obj().Name(), name), variant)
		}
		return true
	})
}

func (cc *ctxChecker) reportBlind(pos token.Pos, callName, variant string) {
	if cc.pass.checkSuppressed(cc.file, pos, DirectiveAllowCtx) {
		return
	}
	cc.pass.Report(Diagnostic{
		Pos: pos,
		Message: fmt.Sprintf(
			"%s does not thread this function's ctx into the blocking call", callName),
		Fix: fmt.Sprintf("use %s, or annotate `//moca:allowctx <reason>`", variant),
	})
}

// checkSelectLoops requires every parking select inside an unconditional
// for loop of a ctx-taking function to carry a <-ctx.Done() case.
func (cc *ctxChecker) checkSelectLoops(fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil || loop.Init != nil || loop.Post != nil {
			return true
		}
		ast.Inspect(loop.Body, func(inner ast.Node) bool {
			sel, ok := inner.(*ast.SelectStmt)
			if !ok {
				return true
			}
			if selectHasDefault(sel) || selectHasDoneCase(cc.pass, sel) {
				return true
			}
			if cc.pass.checkSuppressed(cc.file, sel.Pos(), DirectiveAllowCtx) {
				return true
			}
			cc.pass.Report(Diagnostic{
				Pos:     sel.Pos(),
				Message: "long-lived select loop lacks a <-ctx.Done() case",
				Fix:     "add `case <-ctx.Done(): return ctx.Err()`, or annotate `//moca:allowctx <reason>`",
			})
			return true
		})
		return true
	})
}

func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// selectHasDoneCase reports whether any comm clause receives from the
// Done() channel of a context.Context value.
func selectHasDoneCase(pass *Pass, sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue
		}
		var recv ast.Expr
		switch s := cc.Comm.(type) {
		case *ast.ExprStmt:
			recv = s.X
		case *ast.AssignStmt:
			if len(s.Rhs) == 1 {
				recv = s.Rhs[0]
			}
		}
		ue, ok := recv.(*ast.UnaryExpr)
		if !ok || ue.Op != token.ARROW {
			continue
		}
		call, ok := ue.X.(*ast.CallExpr)
		if !ok {
			continue
		}
		if mSel, ok := call.Fun.(*ast.SelectorExpr); ok &&
			mSel.Sel.Name == "Done" && isContextType(pass.TypesInfo.TypeOf(mSel.X)) {
			return true
		}
	}
	return false
}
