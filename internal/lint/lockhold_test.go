package lint_test

import (
	"testing"

	"moca/internal/lint"
	"moca/internal/lint/linttest"
)

func TestLockHold(t *testing.T) {
	linttest.AnalysisTest(t, lint.LockHold, "testdata", "lockhold/server")
}

// TestLockHoldOutsideServingLayer runs the analyzer over the same
// blocking-under-lock patterns in a package outside the serving layer and
// expects silence: the check is scoped by import path.
func TestLockHoldOutsideServingLayer(t *testing.T) {
	linttest.AnalysisTest(t, lint.LockHold, "testdata", "lockhold/other")
}
