package lint

import (
	"go/ast"
	"go/types"
)

// MapOrder flags `for … range` over a map inside deterministic packages.
// Go randomizes map iteration order, so any map range whose body is
// order-sensitive (rendering, accumulation into ordered output, event
// scheduling) breaks byte-identical golden runs. The fix is to collect and
// sort the keys first; a genuinely order-independent loop (building
// another map, a commutative reduction) documents that with
// `//moca:unordered <reason>` on the range line or the line above.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flags nondeterministic map iteration in deterministic packages",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) error {
	if !isDeterministicPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if pass.checkSuppressed(f, rs.For, DirectiveUnordered) {
				return true
			}
			pass.Report(Diagnostic{
				Pos: rs.For,
				Message: "range over map has nondeterministic iteration order " +
					"in deterministic package " + pass.Pkg.Path(),
				Fix: "iterate over sorted keys (collect keys, sort, index the map), " +
					"or annotate the loop with `" + DirectiveUnordered + " <reason>` " +
					"if its effect is order-independent",
			})
			return true
		})
	}
	return nil
}
