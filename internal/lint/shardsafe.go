package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ShardSafe machine-checks the sharded engine's isolation invariant
// (internal/sim/shard.go): state owned by one shard domain must never be
// touched from code that also touches another domain, except at window
// barriers where the coordinator owns every shard.
//
// Types are assigned to a domain with `//moca:shard <domain>` on their
// declaration (e.g. `//moca:shard core`, `//moca:shard channel`). A
// function whose receiver or selector expressions reach two or more
// distinct domains is flagged, unless:
//
//   - the function is annotated `//moca:barrier <reason>` — it runs only
//     between phase dispatches, when no worker is live; or
//   - the individual access carries `//moca:allowshared <reason>`.
//
// Both annotations require a free-text reason; a bare directive reports
// the missing reason. The analyzer runs wherever shard-annotated types
// are declared, so packages without shards pay nothing.
var ShardSafe = &Analyzer{
	Name: "shardsafe",
	Doc:  "flags cross-shard state access outside //moca:barrier functions",
	Run:  runShardSafe,
}

// Shard-isolation directives. DirectiveShard assigns a type to a shard
// domain; DirectiveBarrier marks a function as barrier-only code;
// DirectiveAllowShared suppresses one access.
const (
	DirectiveShard       = "//moca:shard"
	DirectiveBarrier     = "//moca:barrier"
	DirectiveAllowShared = "//moca:allowshared"
)

func runShardSafe(pass *Pass) error {
	domains := collectShardDomains(pass)
	if len(domains) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if hasDirective(fd.Doc, DirectiveBarrier) {
				if reason := directiveArg(fd.Doc, DirectiveBarrier); strings.TrimSpace(reason) == "" {
					pass.Reportf(fd.Pos(), "%s annotation is missing its reason", DirectiveBarrier)
				}
				continue
			}
			checkShardFunc(pass, f, fd, domains)
		}
	}
	return nil
}

// collectShardDomains indexes the package's `//moca:shard <domain>` type
// annotations. A bare directive (no domain word) is itself a finding.
func collectShardDomains(pass *Pass) map[*types.TypeName]string {
	domains := make(map[*types.TypeName]string)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil {
					doc = gd.Doc
				}
				if !hasDirective(doc, DirectiveShard) {
					continue
				}
				domain := strings.TrimSpace(directiveArg(doc, DirectiveShard))
				if domain == "" {
					pass.Reportf(ts.Pos(), "%s annotation is missing its domain", DirectiveShard)
					continue
				}
				if tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
					domains[tn] = domain
				}
			}
		}
	}
	return domains
}

// directiveArg returns the text following the directive word in the
// comment group ("" when the directive is absent or bare).
func directiveArg(doc *ast.CommentGroup, directive string) string {
	if doc == nil {
		return ""
	}
	for _, c := range doc.List {
		if rest, ok := directiveText(c.Text, directive); ok {
			return rest
		}
	}
	return ""
}

// checkShardFunc flags fd if its receiver and selector accesses together
// reach two or more shard domains. The diagnostic lands on the access
// that first widened the set to a second domain, so the `// want` marker
// (and the human) sees the exact crossing line.
func checkShardFunc(pass *Pass, f *ast.File, fd *ast.FuncDecl, domains map[*types.TypeName]string) {
	seen := map[string]bool{}
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		if d, ok := domainOfExprType(pass, fd.Recv.List[0].Type, domains); ok {
			seen[d] = true
		}
	}
	reported := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		d, ok := domainOfExprType(pass, sel.X, domains)
		if !ok || seen[d] {
			return true
		}
		if len(seen) > 0 {
			if pass.checkSuppressed(f, sel.Pos(), DirectiveAllowShared) {
				return true
			}
			prior := make([]string, 0, len(seen))
			for p := range seen {
				prior = append(prior, p)
			}
			sort.Strings(prior)
			pass.Report(Diagnostic{
				Pos: sel.Pos(),
				Message: "function " + fd.Name.Name + " touches shard domain \"" + d +
					"\" after \"" + strings.Join(prior, "\", \"") + "\": cross-shard access outside a barrier",
				Fix: "run this code only between phase dispatches and annotate the function " +
					"`" + DirectiveBarrier + " <reason>`, or split it per domain; a single " +
					"access can be waived with `" + DirectiveAllowShared + " <reason>`",
			})
			reported = true
			return false
		}
		seen[d] = true
		return true
	})
}

// domainOfExprType resolves the shard domain of an expression (or receiver
// type node) by its named type, looking through pointers.
func domainOfExprType(pass *Pass, e ast.Expr, domains map[*types.TypeName]string) (string, bool) {
	t := pass.TypesInfo.TypeOf(e)
	for t != nil {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	d, ok := domains[named.Obj()]
	return d, ok
}
