package lint_test

import (
	"testing"

	"moca/internal/lint"
	"moca/internal/lint/linttest"
)

func TestHotAlloc(t *testing.T) {
	linttest.AnalysisTest(t, lint.HotAlloc, "testdata", "hotalloc/cache")
	linttest.AnalysisTest(t, lint.HotAlloc, "testdata", "hotalloc/trace")
}
