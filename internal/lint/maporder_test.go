package lint_test

import (
	"testing"

	"moca/internal/lint"
	"moca/internal/lint/linttest"
)

func TestMapOrder(t *testing.T) {
	linttest.AnalysisTest(t, lint.MapOrder, "testdata", "maporder/event")
}

// TestMapOrderOutsideDeterministicSet checks the analyzer is scoped: the
// same raw map range in a package outside the deterministic set produces
// no findings (the testdata file carries no want comments).
func TestMapOrderOutsideDeterministicSet(t *testing.T) {
	linttest.AnalysisTest(t, lint.MapOrder, "testdata", "maporder/other")
}
