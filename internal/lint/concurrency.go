package lint

// Shared machinery for the phase-2 serving-layer analyzers (lockhold,
// ctxflow, wiredispatch, goroleak): package scoping by import-path base —
// the same opt-in convention DeterministicPackages uses, so analysistest
// packages named e.g. "server" land in scope — plus the curated blocking
// -call classifier lockhold and ctxflow both consult.

import (
	"go/ast"
	"go/types"
	"strings"
)

// ServingPackages names the concurrent serving-layer packages the phase-2
// analyzers audit, matched on the import path's last element.
var ServingPackages = map[string]bool{
	"wire":   true,
	"server": true,
	"client": true,
	"exp":    true,
}

// isServingPkg reports whether the import path names a serving package.
func isServingPkg(importPath string) bool {
	return ServingPackages[pathBase(importPath)]
}

// derefNamed peels pointers off a type and returns the named type beneath,
// if any.
func derefNamed(t types.Type) *types.Named {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// isNamedType reports whether t (possibly behind pointers) is the named
// type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	n := derefNamed(t)
	return n != nil && n.Obj().Pkg() != nil &&
		n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	return isNamedType(t, "context", "Context")
}

// mutexOp classifies a call as a mutex transition: x.Lock(), x.RLock(),
// x.Unlock(), or x.RUnlock() where x is (a pointer to) sync.Mutex or
// sync.RWMutex. The lock is identified by its receiver expression text,
// which is stable within one function body.
func mutexOp(info *types.Info, call *ast.CallExpr) (key, op string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || len(call.Args) != 0 {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	t := info.TypeOf(sel.X)
	if !isNamedType(t, "sync", "Mutex") && !isNamedType(t, "sync", "RWMutex") {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

// wireIOFuncs are the frame-I/O entry points of the wire package; each
// performs a conn read or write that blocks until the peer or a deadline
// responds.
var wireIOFuncs = map[string]bool{
	"ReadFrame":  true,
	"WriteFrame": true,
	"ReadMsg":    true,
	"WriteMsg":   true,
}

// ioBlockingFuncs are stdlib io functions that block on their reader or
// writer argument.
var ioBlockingFuncs = map[string]bool{
	"ReadFull":    true,
	"ReadAtLeast": true,
	"ReadAll":     true,
	"Copy":        true,
	"CopyN":       true,
	"CopyBuffer":  true,
	"WriteString": true,
}

// streamIOMethods are method names that denote stream I/O when invoked on
// an interface or a net type.
var streamIOMethods = map[string]bool{
	"Read":     true,
	"Write":    true,
	"ReadFrom": true,
	"WriteTo":  true,
}

// blockingDesc classifies a call expression as a blocking operation and
// returns a short description, or "" when the call is not in the curated
// blocking table. The table covers this repo's serving layer: frame I/O,
// net/stream I/O, WaitGroup waits, simulation entry points (methods of a
// type named Runner or System), and time.Sleep. It is deliberately
// name-based so testdata packages exercise the same paths as real code.
func blockingDesc(info *types.Info, call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		// Unqualified call — frame I/O invoked from inside the wire
		// package itself.
		if fn, ok := info.Uses[fun].(*types.Func); ok && fn.Pkg() != nil &&
			pathBase(fn.Pkg().Path()) == "wire" && wireIOFuncs[fn.Name()] {
			return fn.Name() + " (frame I/O)"
		}
	case *ast.SelectorExpr:
		if pkgPath, name, ok := pkgFuncOf(info, fun); ok {
			switch {
			case pkgPath == "time" && name == "Sleep":
				return "time.Sleep"
			case pkgPath == "io" && ioBlockingFuncs[name]:
				return "io." + name
			case pathBase(pkgPath) == "wire" && wireIOFuncs[name]:
				return "wire." + name + " (frame I/O)"
			}
			return ""
		}
		recv := info.TypeOf(fun.X)
		if selection, ok := info.Selections[fun]; ok {
			if selection.Kind() != types.MethodVal {
				return "" // struct field of function type, etc.
			}
			recv = selection.Recv()
		}
		if recv == nil {
			return ""
		}
		name := fun.Sel.Name
		if name == "Wait" && isNamedType(recv, "sync", "WaitGroup") {
			return "sync.WaitGroup.Wait"
		}
		if n := derefNamed(recv); n != nil {
			switch n.Obj().Name() {
			case "Runner":
				if strings.HasPrefix(name, "Run") ||
					strings.HasPrefix(name, "Instrument") || name == "Wait" {
					return "Runner." + name + " (simulation run)"
				}
			case "System":
				if strings.HasPrefix(name, "Run") {
					return "System." + name + " (simulation run)"
				}
			}
			if n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "net" &&
				streamIOMethods[name] {
				return types.ExprString(fun.X) + "." + name + " (network I/O)"
			}
		}
		if _, isIface := recv.Underlying().(*types.Interface); isIface && streamIOMethods[name] {
			return types.ExprString(fun.X) + "." + name + " (stream I/O)"
		}
	}
	return ""
}
