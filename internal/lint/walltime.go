package lint

import (
	"go/ast"
	"go/types"
)

// WallTime flags wall-clock reads, unseeded global math/rand use, and
// environment reads inside the simulation core. Any of these makes a run
// depend on state outside the (config, trace, seed) tuple, which breaks
// record/replay and poisons the persistent run cache (whose keys assume a
// run is a pure function of its inputs). Deliberate uses — e.g. a
// progress log outside the measured path — carry
// `//moca:wallclock <reason>`.
var WallTime = &Analyzer{
	Name: "walltime",
	Doc:  "flags wall-clock, global math/rand, and environment reads in the simulation core",
	Run:  runWallTime,
}

// wallTimeBanned maps import path → banned selector → explanation.
// For math/rand the allowlist is inverted: everything at package scope
// proxies the shared global source except the constructors.
var wallTimeBanned = map[string]map[string]string{
	"time": {
		"Now":   "reads the wall clock",
		"Since": "reads the wall clock",
		"Until": "reads the wall clock",
	},
	"os": {
		"Getenv":    "reads the process environment",
		"LookupEnv": "reads the process environment",
		"Environ":   "reads the process environment",
		"ExpandEnv": "reads the process environment",
	},
}

// randConstructors are the math/rand names that build explicitly seeded
// generators and are therefore fine in the simulation core.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func runWallTime(pass *Pass) error {
	if !isDeterministicPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath, name, ok := pkgFuncOf(pass.TypesInfo, sel)
			if !ok {
				return true
			}
			var why string
			switch pkgPath {
			case "math/rand", "math/rand/v2":
				if randConstructors[name] {
					return true
				}
				// Only package-scope functions share the global source;
				// type references (rand.Rand, rand.Source) are fine.
				if _, isFunc := pass.TypesInfo.Uses[sel.Sel].(*types.Func); !isFunc {
					return true
				}
				why = "uses the shared, unseeded global generator"
			default:
				banned, ok := wallTimeBanned[pkgPath]
				if !ok {
					return true
				}
				if why, ok = banned[name]; !ok {
					return true
				}
			}
			if pass.checkSuppressed(f, sel.Pos(), DirectiveWallClock) {
				return true
			}
			pass.Report(Diagnostic{
				Pos: sel.Pos(),
				Message: pkgPath + "." + name + " " + why +
					", breaking record/replay determinism and cache keys in simulation-core package " +
					pass.Pkg.Path(),
				Fix: "derive the value from simulation state (event.Queue time, the run's " +
					"seeded rand.Rand, or Config), or annotate with `" +
					DirectiveWallClock + " <reason>` if the read is outside the simulated path",
			})
			return true
		})
	}
	return nil
}
