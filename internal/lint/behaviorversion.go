package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"go/constant"
	"go/types"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// BehaviorVersion guards the persistent run cache's soundness. The cache
// keys results by (config, procs, windows) and salts the store with
// sim.BehaviorVersion, so any change to the cache-visible result schema —
// the field graph reachable from sim.Result — that lands without a
// version bump silently revalidates stale cached results. The analyzer
// fingerprints that schema into a checked-in file
// (testdata/schema.fingerprint next to the package) and fails when the
// schema and the recorded fingerprint disagree:
//
//   - schema changed, version unchanged → bump sim.BehaviorVersion;
//   - schema or version changed, bump present → regenerate the file with
//     `moca-vet -fingerprint -update` (the golden `-update` convention).
//
// The fingerprint file stores the full canonical schema text, so a diff
// of the file in review shows exactly which fields moved.
var BehaviorVersion = &Analyzer{
	Name: "behaviorversion",
	Doc:  "checks that cache-visible schema changes bump sim.BehaviorVersion",
	Run:  runBehaviorVersion,
}

// fingerprintRoot and fingerprintVersionConst name the schema root type
// and the version constant the analyzer looks for.
const (
	fingerprintRoot         = "Result"
	fingerprintVersionConst = "BehaviorVersion"
)

// FingerprintRelPath is where the fingerprint lives, relative to the
// fingerprinted package's directory.
var FingerprintRelPath = filepath.Join("testdata", "schema.fingerprint")

func runBehaviorVersion(pass *Pass) error {
	scope := pass.Pkg.Scope()
	if scope.Lookup(fingerprintRoot) == nil || scope.Lookup(fingerprintVersionConst) == nil {
		return nil // not a behavior-versioned package
	}
	fp, err := ComputeFingerprint(pass.Pkg, pass.ModulePath)
	if err != nil {
		return err
	}
	pos := scope.Lookup(fingerprintRoot).Pos()
	path := filepath.Join(pass.Dir, FingerprintRelPath)
	for _, d := range CheckFingerprintFile(fp, path) {
		d.Pos = pos
		pass.Report(d)
	}
	return nil
}

// Fingerprint is the recorded identity of a cache-visible schema.
type Fingerprint struct {
	// Version is the package's BehaviorVersion constant.
	Version int64
	// Schema is the canonical textual rendering of the type graph
	// reachable from the root type.
	Schema string
}

// Hash returns the hex SHA-256 of the canonical schema text.
func (f Fingerprint) Hash() string {
	sum := sha256.Sum256([]byte(f.Schema))
	return hex.EncodeToString(sum[:])
}

// ComputeFingerprint renders the schema reachable from pkg's Result type
// and reads its BehaviorVersion constant. Named types belonging to
// modulePath expand structurally (in first-visit order, fields in
// declaration order, struct tags included since the cache stores JSON);
// foreign named types appear by qualified name only.
func ComputeFingerprint(pkg *types.Package, modulePath string) (Fingerprint, error) {
	root := pkg.Scope().Lookup(fingerprintRoot)
	if root == nil {
		return Fingerprint{}, fmt.Errorf("lint: %s has no %s type", pkg.Path(), fingerprintRoot)
	}
	vc, ok := pkg.Scope().Lookup(fingerprintVersionConst).(*types.Const)
	if !ok {
		return Fingerprint{}, fmt.Errorf("lint: %s has no %s constant", pkg.Path(), fingerprintVersionConst)
	}
	version, ok := constant.Int64Val(constant.ToInt(vc.Val()))
	if !ok {
		return Fingerprint{}, fmt.Errorf("lint: %s.%s is not an integer", pkg.Path(), fingerprintVersionConst)
	}
	sw := &schemaWriter{
		module:  modulePath,
		seen:    make(map[*types.TypeName]bool),
		pending: []*types.TypeName{},
	}
	rootName, ok := root.Type().(*types.Named)
	if !ok {
		return Fingerprint{}, fmt.Errorf("lint: %s.%s is not a named type", pkg.Path(), fingerprintRoot)
	}
	sw.enqueue(rootName.Obj())
	var b strings.Builder
	for len(sw.pending) > 0 {
		tn := sw.pending[0]
		sw.pending = sw.pending[1:]
		fmt.Fprintf(&b, "%s = %s\n", qualifiedName(tn), sw.describe(tn.Type().Underlying()))
	}
	return Fingerprint{Version: version, Schema: b.String()}, nil
}

// schemaWriter walks the type graph breadth-first so the rendering is
// deterministic and every local named type appears exactly once.
type schemaWriter struct {
	module  string
	seen    map[*types.TypeName]bool
	pending []*types.TypeName
}

func qualifiedName(tn *types.TypeName) string {
	if tn.Pkg() == nil {
		return tn.Name()
	}
	return tn.Pkg().Path() + "." + tn.Name()
}

// local reports whether the named type belongs to the fingerprinted
// module and should expand structurally.
func (sw *schemaWriter) local(tn *types.TypeName) bool {
	if tn.Pkg() == nil {
		return false
	}
	p := tn.Pkg().Path()
	return p == sw.module || strings.HasPrefix(p, sw.module+"/")
}

func (sw *schemaWriter) enqueue(tn *types.TypeName) {
	if !sw.seen[tn] && sw.local(tn) {
		sw.seen[tn] = true
		sw.pending = append(sw.pending, tn)
	}
}

// describe renders a type reference, enqueueing local named types for
// their own top-level expansion.
func (sw *schemaWriter) describe(t types.Type) string {
	switch t := t.(type) {
	case *types.Named:
		sw.enqueue(t.Obj())
		return qualifiedName(t.Obj())
	case *types.Alias:
		return sw.describe(types.Unalias(t))
	case *types.Basic:
		return t.Name()
	case *types.Pointer:
		return "*" + sw.describe(t.Elem())
	case *types.Slice:
		return "[]" + sw.describe(t.Elem())
	case *types.Array:
		return fmt.Sprintf("[%d]%s", t.Len(), sw.describe(t.Elem()))
	case *types.Map:
		return "map[" + sw.describe(t.Key()) + "]" + sw.describe(t.Elem())
	case *types.Chan:
		return "chan " + sw.describe(t.Elem())
	case *types.Struct:
		var b strings.Builder
		b.WriteString("struct{")
		for i := 0; i < t.NumFields(); i++ {
			f := t.Field(i)
			if i > 0 {
				b.WriteString("; ")
			}
			if f.Embedded() {
				b.WriteString(sw.describe(f.Type()))
			} else {
				b.WriteString(f.Name())
				b.WriteByte(' ')
				b.WriteString(sw.describe(f.Type()))
			}
			if tag := t.Tag(i); tag != "" {
				b.WriteByte(' ')
				b.WriteString(strconv.Quote(tag))
			}
		}
		b.WriteString("}")
		return b.String()
	case *types.Interface:
		// Method sets are behavior, not wire schema; record arity only.
		return fmt.Sprintf("interface{%d methods}", t.NumMethods())
	case *types.Signature:
		return "func"
	default:
		return t.String()
	}
}

// fingerprint file format:
//
//	moca-vet schema fingerprint v1
//	behavior_version: 2
//	schema_sha256: <hex>
//
//	<canonical schema text>
const fingerprintHeader = "moca-vet schema fingerprint v1"

// FormatFingerprintFile renders the on-disk form.
func FormatFingerprintFile(fp Fingerprint) []byte {
	return []byte(fmt.Sprintf("%s\nbehavior_version: %d\nschema_sha256: %s\n\n%s",
		fingerprintHeader, fp.Version, fp.Hash(), fp.Schema))
}

// ParseFingerprintFile reads a recorded fingerprint. The recorded hash is
// verified against the recorded schema text so a hand-edited file is
// rejected rather than trusted.
func ParseFingerprintFile(data []byte) (Fingerprint, error) {
	s := string(data)
	lines := strings.SplitN(s, "\n", 4)
	if len(lines) != 4 || lines[0] != fingerprintHeader {
		return Fingerprint{}, fmt.Errorf("lint: malformed fingerprint file (bad header)")
	}
	var fp Fingerprint
	if _, err := fmt.Sscanf(lines[1], "behavior_version: %d", &fp.Version); err != nil {
		return Fingerprint{}, fmt.Errorf("lint: malformed fingerprint file: %w", err)
	}
	var hash string
	if _, err := fmt.Sscanf(lines[2], "schema_sha256: %s", &hash); err != nil {
		return Fingerprint{}, fmt.Errorf("lint: malformed fingerprint file: %w", err)
	}
	fp.Schema = strings.TrimPrefix(lines[3], "\n")
	if fp.Hash() != hash {
		return Fingerprint{}, fmt.Errorf("lint: fingerprint file hash does not match its schema text (hand-edited?); regenerate with moca-vet -fingerprint -update")
	}
	return fp, nil
}

// CheckFingerprintFile compares a computed fingerprint against the
// recorded file and returns the resulting diagnostics (positions unset;
// the caller anchors them).
func CheckFingerprintFile(got Fingerprint, path string) []Diagnostic {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return []Diagnostic{{
			Message: "no schema fingerprint recorded at " + path,
			Fix:     "run `moca-vet -fingerprint -update` to record the current schema",
		}}
	}
	if err != nil {
		return []Diagnostic{{Message: "reading schema fingerprint: " + err.Error()}}
	}
	rec, err := ParseFingerprintFile(data)
	if err != nil {
		return []Diagnostic{{Message: err.Error(),
			Fix: "run `moca-vet -fingerprint -update` to record the current schema"}}
	}
	switch {
	case got.Schema == rec.Schema && got.Version == rec.Version:
		return nil
	case got.Schema != rec.Schema && got.Version == rec.Version:
		return []Diagnostic{{
			Message: fmt.Sprintf(
				"cache-visible result schema changed without a %s bump (still %d): stale cached results would be silently reused\nschema diff:\n%s",
				fingerprintVersionConst, got.Version, schemaDiff(rec.Schema, got.Schema)),
			Fix: fmt.Sprintf("bump %s and run `moca-vet -fingerprint -update`", fingerprintVersionConst),
		}}
	default:
		// Version moved (with or without a schema change): the bump is
		// there, the recording is just stale.
		return []Diagnostic{{
			Message: fmt.Sprintf("schema fingerprint is stale (recorded version %d, current %d)",
				rec.Version, got.Version),
			Fix: "run `moca-vet -fingerprint -update` to refresh the recording",
		}}
	}
}

// UpdateFingerprintFile writes the fingerprint, creating the testdata
// directory as needed.
func UpdateFingerprintFile(fp Fingerprint, path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, FormatFingerprintFile(fp), 0o644)
}

// schemaDiff renders a minimal line diff (lines only in one side) so the
// failure message names the moved fields without a diff tool.
func schemaDiff(old, new string) string {
	oldSet := make(map[string]bool)
	for _, l := range strings.Split(old, "\n") {
		oldSet[l] = true
	}
	newSet := make(map[string]bool)
	for _, l := range strings.Split(new, "\n") {
		newSet[l] = true
	}
	var out []string
	for _, l := range strings.Split(old, "\n") {
		if l != "" && !newSet[l] {
			out = append(out, "- "+l)
		}
	}
	var added []string
	for _, l := range strings.Split(new, "\n") {
		if l != "" && !oldSet[l] {
			added = append(added, "+ "+l)
		}
	}
	out = append(out, added...)
	if len(out) == 0 {
		return "(line-level diff empty; whitespace or ordering change)"
	}
	return strings.Join(out, "\n")
}
