package lint_test

import (
	"testing"

	"moca/internal/lint"
	"moca/internal/lint/linttest"
)

func TestGoroLeak(t *testing.T) {
	linttest.AnalysisTest(t, lint.GoroLeak, "testdata", "goroleak/exp")
}

// TestGoroLeakOutsideServingLayer runs the analyzer over the same
// untracked spawn in a package outside the serving layer and expects
// silence: the check is scoped by import path.
func TestGoroLeakOutsideServingLayer(t *testing.T) {
	linttest.AnalysisTest(t, lint.GoroLeak, "testdata", "goroleak/other")
}
