package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	ModulePath string

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	ImportPath string
	Dir        string
	Standard   bool
	DepOnly    bool
	Export     string
	GoFiles    []string
	Module     *struct{ Path string }
}

// goList runs `go list -export -json -deps` over the patterns from dir and
// decodes the JSON stream. -export makes the go tool emit compiler export
// data for every listed package, which is what lets the loader type-check
// without golang.org/x/tools: imports resolve through the same export
// files the compiler itself would read.
func goList(dir string, patterns []string) ([]*listEntry, error) {
	args := []string{
		"list", "-export",
		"-json=ImportPath,Dir,Standard,DepOnly,Export,GoFiles,Module",
		"-deps",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %w\n%s",
			strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var entries []*listEntry
	for {
		e := new(listEntry)
		if err := dec.Decode(e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// exportLookup adapts a path→export-file map into the lookup function the
// stdlib gc importer accepts.
func exportLookup(exports map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
}

// newInfo allocates the types.Info maps the analyzers consult.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

// Load parses and type-checks the packages matched by the patterns
// (relative to dir; empty patterns default to "./..."). Dependencies are
// imported from export data, so only the matched packages are parsed.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	entries, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(entries))
	for _, e := range entries {
		exports[e.ImportPath] = e.Export
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exportLookup(exports))
	var pkgs []*Package
	for _, e := range entries {
		if e.Standard || e.DepOnly {
			continue
		}
		files := make([]*ast.File, 0, len(e.GoFiles))
		for _, name := range e.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(e.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: parsing %s: %w", name, err)
			}
			files = append(files, f)
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(e.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %w", e.ImportPath, err)
		}
		p := &Package{
			ImportPath: e.ImportPath,
			Dir:        e.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		}
		if e.Module != nil {
			p.ModulePath = e.Module.Path
		}
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// LoadDir parses and type-checks a single directory of Go files as one
// package with the given synthetic import path — the analysistest loader.
// Imports (stdlib only) resolve through `go list -export`.
func LoadDir(dir, importPath, modulePath string) (*Package, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	sort.Strings(names)
	fset := token.NewFileSet()
	var files []*ast.File
	importSet := make(map[string]bool)
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", name, err)
		}
		files = append(files, f)
		for _, spec := range f.Imports {
			importSet[strings.Trim(spec.Path.Value, `"`)] = true
		}
	}
	exports := make(map[string]string)
	if len(importSet) > 0 {
		patterns := make([]string, 0, len(importSet))
		for p := range importSet {
			patterns = append(patterns, p)
		}
		sort.Strings(patterns)
		entries, err := goList(dir, patterns)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			exports[e.ImportPath] = e.Export
		}
	}
	imp := importer.ForCompiler(fset, "gc", exportLookup(exports))
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		ModulePath: modulePath,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// RunAnalyzers applies the analyzers to the packages and returns every
// diagnostic plus every honored suppression annotation, each sorted by
// position. Waivers are what `moca-vet -json` surfaces so accepted
// findings stay visible instead of silently vanishing behind annotations.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Finding, []Waiver, error) {
	var findings []Finding
	var waivers []Waiver
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				TypesInfo:  pkg.Info,
				Dir:        pkg.Dir,
				ModulePath: pkg.ModulePath,
			}
			pass.Report = func(d Diagnostic) {
				findings = append(findings, Finding{
					Analyzer:   a.Name,
					Package:    pkg.ImportPath,
					Position:   pkg.Fset.Position(d.Pos),
					Diagnostic: d,
				})
			}
			pass.reportWaiver = func(directive, reason string, pos token.Pos) {
				waivers = append(waivers, Waiver{
					Analyzer:  a.Name,
					Package:   pkg.ImportPath,
					Directive: directive,
					Reason:    reason,
					Position:  pkg.Fset.Position(pos),
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		if c := comparePositions(findings[i].Position, findings[j].Position); c != 0 {
			return c < 0
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	sort.Slice(waivers, func(i, j int) bool {
		if c := comparePositions(waivers[i].Position, waivers[j].Position); c != 0 {
			return c < 0
		}
		return waivers[i].Analyzer < waivers[j].Analyzer
	})
	return findings, waivers, nil
}

// comparePositions orders positions by file, then line, then column.
func comparePositions(a, b token.Position) int {
	if a.Filename != b.Filename {
		return strings.Compare(a.Filename, b.Filename)
	}
	if a.Line != b.Line {
		return a.Line - b.Line
	}
	return a.Column - b.Column
}

// Waiver records one honored suppression: an in-source `//moca:` annotation
// that silenced a finding, together with its mandatory reason.
type Waiver struct {
	Analyzer  string
	Package   string
	Directive string
	Reason    string
	Position  token.Position
}

// Finding is a diagnostic tagged with its analyzer, package, and resolved
// file position.
type Finding struct {
	Analyzer string
	Package  string
	Position token.Position
	Diagnostic
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	s := fmt.Sprintf("%s: %s: %s", f.Position, f.Analyzer, f.Message)
	if f.Fix != "" {
		s += "\n\tfix: " + f.Fix
	}
	return s
}
