package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"moca/internal/lint"
	"moca/internal/lint/linttest"
)

func TestWallTime(t *testing.T) {
	linttest.AnalysisTest(t, lint.WallTime, "testdata", "walltime/sim")
}

// TestWallTimeOutsideDeterministicSet runs the analyzer over the same
// wall-clock reads in a package outside the deterministic set and expects
// silence: the check is scoped by import path.
func TestWallTimeOutsideDeterministicSet(t *testing.T) {
	linttest.AnalysisTest(t, lint.WallTime, "testdata", "walltime/other")
}

// TestWallTimeTriage pins the behaviors the // want comments cannot
// distinguish: the seeded-constructor path (rand.New(rand.NewSource(seed)))
// produces no diagnostic at all, honored suppressions surface as waivers
// carrying their reasons, and a reasonless annotation still suppresses the
// read while reporting exactly one missing-reason diagnostic.
func TestWallTimeTriage(t *testing.T) {
	dir := filepath.Join("testdata", "src", "walltime", "sim")
	pkg, err := lint.LoadDir(dir, "walltime/sim", "walltime/sim")
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	findings, waivers, err := lint.RunAnalyzers(
		[]*lint.Package{pkg}, []*lint.Analyzer{lint.WallTime})
	if err != nil {
		t.Fatalf("running walltime: %v", err)
	}

	// Stamp, Elapsed, GlobalRand, Env, plus the one missing-reason report.
	if len(findings) != 5 {
		for _, f := range findings {
			t.Logf("finding: %s", f)
		}
		t.Errorf("got %d findings, want 5", len(findings))
	}
	missingReason := 0
	for _, f := range findings {
		if strings.Contains(f.Message, "missing its reason") {
			missingReason++
		}
		if strings.Contains(f.Message, "rand.New") {
			t.Errorf("seeded constructor flagged: %s", f)
		}
	}
	if missingReason != 1 {
		t.Errorf("got %d missing-reason diagnostics, want 1", missingReason)
	}

	// Suppressed and SuppressedInline each record one honored waiver.
	if len(waivers) != 2 {
		t.Fatalf("got %d waivers, want 2: %+v", len(waivers), waivers)
	}
	const reason = "progress log outside the measured simulation path"
	for _, w := range waivers {
		if w.Directive != lint.DirectiveWallClock {
			t.Errorf("waiver directive = %q, want %q", w.Directive, lint.DirectiveWallClock)
		}
		if w.Reason != reason {
			t.Errorf("waiver reason = %q, want %q", w.Reason, reason)
		}
		if w.Analyzer != "walltime" {
			t.Errorf("waiver analyzer = %q, want walltime", w.Analyzer)
		}
	}
}
