package lint_test

import (
	"testing"

	"moca/internal/lint"
	"moca/internal/lint/linttest"
)

func TestWallTime(t *testing.T) {
	linttest.AnalysisTest(t, lint.WallTime, "testdata", "walltime/sim")
}
