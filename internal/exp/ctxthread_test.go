package exp

import (
	"context"
	"errors"
	"testing"
	"time"

	"moca/internal/core"
)

// stuckProfile installs a profiling flight for the app that never
// completes, simulating a profile pipeline mid-run.
func stuckProfile(r *Runner, app string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.instr == nil {
		r.instr = make(map[string]core.Instrumentation)
		r.iflight = make(map[string]*instrFlight)
	}
	r.iflight[app] = &instrFlight{done: make(chan struct{})}
}

// TestInstrumentCtxDetachesFromStuckFlight is the regression test for the
// ctx-blind Instrument wait: a caller joined to an in-progress profiling
// flight must detach when its own context fires, instead of watching only
// the runner-level context (which for a default runner never fires).
func TestInstrumentCtxDetachesFromStuckFlight(t *testing.T) {
	r := fastRunner()
	stuckProfile(r, "mcf")

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := r.InstrumentCtx(ctx, "mcf")
		errc <- err
	}()
	cancel()

	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("InstrumentCtx returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("InstrumentCtx did not detach from the in-flight profile")
	}
}

// TestCanceledFlightAbortsProfilingWait: simulate threads the flight
// context into InstrumentCtx, so when the last waiter detaches and
// cancels a flight that is parked on a shared profiling run, the flight
// aborts promptly instead of leaking until the profile finishes.
func TestCanceledFlightAbortsProfilingWait(t *testing.T) {
	r := fastRunner()
	stuckProfile(r, "mcf")
	def := ddr3Def()
	memoKey := def.Name + "|single/mcf"

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := r.RunSingleCtx(ctx, def, "mcf")
		errc <- err
	}()
	pollUntil(t, "flight to register", func() bool {
		r.mu.Lock()
		defer r.mu.Unlock()
		_, live := r.flights[memoKey]
		return live
	})

	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("sole waiter returned %v, want context.Canceled", err)
	}
	// The lead is parked inside InstrumentCtx on the stuck profile; the
	// flight cancellation must reach it and clear the flight.
	pollUntil(t, "canceled flight parked on profiling to clear", func() bool {
		r.mu.Lock()
		defer r.mu.Unlock()
		_, live := r.flights[memoKey]
		return !live
	})
}

// TestRejoinAfterLastWaiterCancel is the regression test for the
// dead-flight join race: a caller arriving while a flight whose last
// waiter just canceled is still draining must not inherit that flight's
// spurious context.Canceled — it waits the corpse out and retries the
// key.
func TestRejoinAfterLastWaiterCancel(t *testing.T) {
	r := fastRunner()
	if _, err := r.Instrument("mcf"); err != nil {
		t.Fatal(err)
	}
	started, release := gatedNewSystem(t)
	def := ddr3Def()
	memoKey := def.Name + "|single/mcf"

	ctxA, cancelA := context.WithCancel(context.Background())
	errA := make(chan error, 1)
	go func() {
		_, err := r.RunSingleCtx(ctxA, def, "mcf")
		errA <- err
	}()
	<-started

	// A detaches; it was the only waiter, so the flight is canceled — but
	// its lead is still gated inside the constructor, so the dying flight
	// stays registered with zero waiters.
	cancelA()
	if err := <-errA; !errors.Is(err, context.Canceled) {
		t.Fatalf("detached waiter returned %v, want context.Canceled", err)
	}
	if n := waitersOf(r, memoKey); n != 0 {
		t.Fatalf("dead flight has %d waiters, want 0", n)
	}

	// B arrives with a live context while the corpse is still draining.
	type outcome struct {
		err error
		ok  bool
	}
	outB := make(chan outcome, 1)
	go func() {
		res, err := r.RunSingleCtx(context.Background(), def, "mcf")
		outB <- outcome{err: err, ok: res != nil}
	}()
	// Give B time to reach the dead flight before releasing the gate; the
	// assertion below holds under every interleaving regardless.
	time.Sleep(20 * time.Millisecond)

	close(release)
	got := <-outB
	if got.err != nil {
		t.Fatalf("caller joining after last-waiter cancel returned %v, want success", got.err)
	}
	if !got.ok {
		t.Fatal("caller joining after last-waiter cancel received a nil result")
	}
	if st := r.Stats(); st.Simulated != 1 {
		t.Errorf("Simulated = %d, want 1 (aborted corpse must not count, retry must run once)", st.Simulated)
	}
}
