package exp

import (
	"os"
	"strings"
	"testing"
	"time"

	"moca/internal/cpu"
	"moca/internal/mem"
	"moca/internal/sim"
	"moca/internal/workload"
)

func openCache(t *testing.T, dir string, mode CacheMode) *RunCache {
	t.Helper()
	c, err := OpenRunCache(dir, mode)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestCacheRoundTrip: a second runner pointed at the same cache directory
// performs zero simulations and zero profiling runs, and its results match
// the originals numerically.
func TestCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()

	r1 := fastRunner()
	r1.Cache = openCache(t, dir, CacheReadWrite)
	res1, err := r1.RunSingle(ddr3Def(), "mcf")
	if err != nil {
		t.Fatal(err)
	}
	if st := r1.Stats(); st.Simulated != 1 || st.Profiled != 1 {
		t.Fatalf("first runner: Simulated=%d Profiled=%d, want 1/1", st.Simulated, st.Profiled)
	}
	if st := r1.Cache.Stats(); st.Writes < 2 {
		t.Fatalf("first runner wrote %d cache entries, want profile + result", st.Writes)
	}

	r2 := fastRunner()
	r2.Cache = openCache(t, dir, CacheReadWrite)
	swapNewSystem(t, func(cfg sim.Config, procs []sim.ProcSpec) (*sim.System, error) {
		t.Error("simulation constructed despite a warm cache")
		return sim.New(cfg, procs)
	})
	res2, err := r2.RunSingle(ddr3Def(), "mcf")
	if err != nil {
		t.Fatal(err)
	}
	st := r2.Stats()
	if st.Simulated != 0 || st.Profiled != 0 {
		t.Errorf("second runner: Simulated=%d Profiled=%d, want 0/0", st.Simulated, st.Profiled)
	}
	if st.DiskHits != 1 || st.ProfileDiskHits != 1 {
		t.Errorf("second runner: DiskHits=%d ProfileDiskHits=%d, want 1/1", st.DiskHits, st.ProfileDiskHits)
	}
	if res2.Name != res1.Name {
		t.Errorf("cached result name %q, want %q", res2.Name, res1.Name)
	}
	if res2.Elapsed != res1.Elapsed ||
		res2.MemEnergyJ() != res1.MemEnergyJ() ||
		res2.SystemEDP() != res1.SystemEDP() ||
		res2.TotalInstructions() != res1.TotalInstructions() ||
		res2.AvgMemAccessTime() != res1.AvgMemAccessTime() {
		t.Error("cached result diverges numerically from the simulated one")
	}
}

// TestCacheResume: a cache warmed with part of a sweep only simulates the
// missing runs — the crash-resume property.
func TestCacheResume(t *testing.T) {
	dir := t.TempDir()

	r1 := fastRunner()
	r1.Cache = openCache(t, dir, CacheReadWrite)
	if _, err := r1.RunSingle(ddr3Def(), "mcf"); err != nil {
		t.Fatal(err)
	}

	r2 := fastRunner()
	r2.Cache = openCache(t, dir, CacheReadWrite)
	calls := countingNewSystem(t)
	for _, app := range []string{"mcf", "gcc"} {
		if _, err := r2.RunSingle(ddr3Def(), app); err != nil {
			t.Fatal(err)
		}
	}
	if *calls != 1 {
		t.Errorf("resumed sweep constructed %d simulations, want 1 (only the missing run)", *calls)
	}
	if st := r2.Stats(); st.DiskHits != 1 || st.Simulated != 1 {
		t.Errorf("DiskHits=%d Simulated=%d, want 1/1", st.DiskHits, st.Simulated)
	}
}

// TestCacheSaltEviction: entries written under an older simulator behavior
// version are evicted on load and the run re-simulates.
func TestCacheSaltEviction(t *testing.T) {
	dir := t.TempDir()

	r1 := fastRunner()
	r1.Cache = openCache(t, dir, CacheReadWrite)
	if _, err := r1.RunSingle(ddr3Def(), "mcf"); err != nil {
		t.Fatal(err)
	}

	// A reader whose salt differs (as after a sim.BehaviorVersion bump)
	// must treat every existing entry as stale.
	r2 := fastRunner()
	c2 := openCache(t, dir, CacheReadWrite)
	c2.salt = "moca-cache-v0/sim-v0"
	r2.Cache = c2
	if _, err := r2.RunSingle(ddr3Def(), "mcf"); err != nil {
		t.Fatal(err)
	}
	if st := r2.Stats(); st.Simulated != 1 || st.DiskHits != 0 {
		t.Errorf("stale-salt runner: Simulated=%d DiskHits=%d, want 1/0", st.Simulated, st.DiskHits)
	}
	if st := c2.Stats(); st.Evictions == 0 {
		t.Error("stale entries were not evicted")
	}
	if st := c2.Stats(); st.Hits != 0 {
		t.Errorf("stale entries counted as hits: %d", st.Hits)
	}
}

// TestCacheReadMode: read-only mode serves hits but never writes.
func TestCacheReadMode(t *testing.T) {
	dir := t.TempDir()
	r := fastRunner()
	r.Cache = openCache(t, dir, CacheRead)
	if _, err := r.RunSingle(ddr3Def(), "mcf"); err != nil {
		t.Fatal(err)
	}
	if st := r.Cache.Stats(); st.Writes != 0 {
		t.Errorf("read-only cache wrote %d entries", st.Writes)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("read-only cache left %d files in %s", len(entries), dir)
	}
}

// TestCacheCorruptEntryEvicted: a truncated or garbled cache file is
// evicted and the lookup reported as a miss, never a crash.
func TestCacheCorruptEntryEvicted(t *testing.T) {
	dir := t.TempDir()
	r1 := fastRunner()
	c1 := openCache(t, dir, CacheReadWrite)
	r1.Cache = c1
	if _, err := r1.RunSingle(ddr3Def(), "mcf"); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		// Truncate every entry mid-JSON, as a pre-atomic writer crash would.
		if err := os.WriteFile(dir+"/"+e.Name(), []byte(`{"salt":"x`), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	r2 := fastRunner()
	c2 := openCache(t, dir, CacheReadWrite)
	r2.Cache = c2
	if _, err := r2.RunSingle(ddr3Def(), "mcf"); err != nil {
		t.Fatal(err)
	}
	if st := r2.Stats(); st.Simulated != 1 {
		t.Errorf("Simulated=%d after corruption, want 1", st.Simulated)
	}
	if st := c2.Stats(); st.Evictions == 0 || st.Hits != 0 {
		t.Errorf("corrupt entries: Evictions=%d Hits=%d, want >0 evictions and 0 hits", st.Evictions, st.Hits)
	}
}

// TestCacheOpenSweepsCrashDebris: opening a cache removes stale orphaned
// temp files and evicts zero-byte entries (the residue of a crash between
// a non-durable rename and power loss), while leaving fresh temps — a
// concurrent writer's work in flight — and valid entries alone.
func TestCacheOpenSweepsCrashDebris(t *testing.T) {
	dir := t.TempDir()

	// A valid entry, written through the normal durable path.
	c1 := openCache(t, dir, CacheReadWrite)
	if err := c1.StoreResult("k", &sim.Result{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	validPath := c1.path("result", "k")

	stale := dir + "/.result-dead123.tmp"
	if err := os.WriteFile(stale, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * sweepTempGrace)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	fresh := dir + "/.result-live456.tmp"
	if err := os.WriteFile(fresh, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	empty := dir + "/result-" + strings.Repeat("0", 64) + ".json"
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}

	c2 := openCache(t, dir, CacheReadWrite)
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Errorf("stale temp survived the sweep (err=%v)", err)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Errorf("fresh temp was swept: %v", err)
	}
	if _, err := os.Stat(empty); !os.IsNotExist(err) {
		t.Errorf("zero-byte entry survived the sweep (err=%v)", err)
	}
	if _, err := os.Stat(validPath); err != nil {
		t.Errorf("valid entry was swept: %v", err)
	}
	if st := c2.Stats(); st.Evictions != 1 {
		t.Errorf("Evictions=%d after sweep, want 1 (the zero-byte entry)", st.Evictions)
	}
	if res, ok := c2.LoadResult("k"); !ok || res.Name != "x" {
		t.Errorf("valid entry unreadable after sweep: ok=%v", ok)
	}
}

// TestCacheZeroByteEntryEvictedOnLoad: even without a reopen, a zero-byte
// envelope is treated as corrupt on access — evicted and reported as a
// miss — so one crash artifact cannot poison the slot forever.
func TestCacheZeroByteEntryEvictedOnLoad(t *testing.T) {
	dir := t.TempDir()
	c := openCache(t, dir, CacheReadWrite)
	if err := c.StoreResult("k", &sim.Result{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(c.path("result", "k"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.LoadResult("k"); ok {
		t.Fatal("zero-byte entry decoded as a hit")
	}
	if st := c.Stats(); st.Evictions != 1 || st.Hits != 0 {
		t.Errorf("Evictions=%d Hits=%d, want 1 eviction and 0 hits", st.Evictions, st.Hits)
	}
	if _, err := os.Stat(c.path("result", "k")); !os.IsNotExist(err) {
		t.Errorf("zero-byte entry still on disk (err=%v)", err)
	}
}

// sinkStream is a trivial cpu.Stream used only to prove streams are
// excluded from cache keys.
type sinkStream struct{}

func (sinkStream) Next() (cpu.Instr, bool) { return cpu.Instr{}, false }

// TestResultCacheKeyCanonical: the key is stable for identical inputs,
// blind to presentation-only fields, and sensitive to everything that
// shapes the run.
func TestResultCacheKeyCanonical(t *testing.T) {
	cfg := sim.DefaultConfig("A", sim.Homogeneous(mem.DDR3), sim.PolicyFixed)
	procs := []sim.ProcSpec{{App: workload.MCF(), Input: workload.Ref}}
	base, err := ResultCacheKey(cfg, procs, 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	if again, _ := ResultCacheKey(cfg, procs, 100, 200); again != base {
		t.Error("identical inputs produced different keys")
	}

	renamed := cfg
	renamed.Name = "B"
	if k, _ := ResultCacheKey(renamed, procs, 100, 200); k != base {
		t.Error("Config.Name leaked into the key")
	}

	streamed := []sim.ProcSpec{procs[0]}
	streamed[0].Stream = sinkStream{}
	if k, _ := ResultCacheKey(cfg, streamed, 100, 200); k != base {
		t.Error("ProcSpec.Stream leaked into the key")
	}
	if procs[0].Stream != nil {
		t.Error("ResultCacheKey mutated its input procs")
	}

	if k, _ := ResultCacheKey(cfg, procs, 101, 200); k == base {
		t.Error("Measure does not affect the key")
	}
	if k, _ := ResultCacheKey(cfg, procs, 100, 201); k == base {
		t.Error("ProfileWindow does not affect the key")
	}
	hbm := sim.DefaultConfig("A", sim.Homogeneous(mem.HBM), sim.PolicyFixed)
	if k, _ := ResultCacheKey(hbm, procs, 100, 200); k == base {
		t.Error("memory modules do not affect the key")
	}
	moca := sim.DefaultConfig("A", sim.Heterogeneous(sim.Config1), sim.PolicyMOCA)
	if k, _ := ResultCacheKey(moca, procs, 100, 200); k == base {
		t.Error("placement policy does not affect the key")
	}

	sharded := cfg
	sharded.Shards = 4
	if k, _ := ResultCacheKey(sharded, procs, 100, 200); k != base {
		t.Error("Config.Shards leaked into the key: an execution strategy must not fragment the cache")
	}

	slow := cfg
	slow.NoFastpath = true
	if k, _ := ResultCacheKey(slow, procs, 100, 200); k != base {
		t.Error("Config.NoFastpath leaked into the key: an execution strategy must not fragment the cache")
	}

	if !strings.Contains(base, `"kind":"result"`) {
		t.Errorf("key is not self-describing: %s", base[:60])
	}
}

// TestSlowPathWarmsFastPathCache: a result simulated with the fast path
// disabled serves a fast-path request from disk — the two strategies
// produce identical bytes, so neither may fragment the cache.
func TestSlowPathWarmsFastPathCache(t *testing.T) {
	dir := t.TempDir()

	r1 := fastRunner()
	r1.NoFastpath = true
	r1.Cache = openCache(t, dir, CacheReadWrite)
	res1, err := r1.RunSingle(ddr3Def(), "mcf")
	if err != nil {
		t.Fatal(err)
	}

	r2 := fastRunner() // fast path on (the default)
	r2.Cache = openCache(t, dir, CacheReadWrite)
	swapNewSystem(t, func(cfg sim.Config, procs []sim.ProcSpec) (*sim.System, error) {
		t.Error("simulation constructed despite a slow-path-warmed cache")
		return sim.New(cfg, procs)
	})
	res2, err := r2.RunSingle(ddr3Def(), "mcf")
	if err != nil {
		t.Fatal(err)
	}
	if st := r2.Stats(); st.Simulated != 0 || st.DiskHits != 1 {
		t.Errorf("fast-path runner: Simulated=%d DiskHits=%d, want 0/1", st.Simulated, st.DiskHits)
	}
	if res1.Elapsed != res2.Elapsed || res1.TotalInstructions() != res2.TotalInstructions() {
		t.Error("slow-path and fast-path results differ; the shared cache key is unsound")
	}
}

// TestFig10ResumesFromCache: the acceptance scenario — a second full
// "fig10" sweep against a warm cache performs zero simulations and zero
// profiling runs.
func TestFig10ResumesFromCache(t *testing.T) {
	skipHeavy(t, "two full fig10 sweeps")
	dir := t.TempDir()

	r1 := fastRunner()
	r1.Measure = 20_000
	r1.Cache = openCache(t, dir, CacheReadWrite)
	g1, err := r1.Fig10()
	if err != nil {
		t.Fatal(err)
	}

	r2 := fastRunner()
	r2.Measure = 20_000
	r2.Cache = openCache(t, dir, CacheReadWrite)
	swapNewSystem(t, func(cfg sim.Config, procs []sim.ProcSpec) (*sim.System, error) {
		t.Error("simulation constructed despite a warm cache")
		return sim.New(cfg, procs)
	})
	g2, err := r2.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	st := r2.Stats()
	if st.Simulated != 0 || st.Profiled != 0 {
		t.Errorf("resumed fig10: Simulated=%d Profiled=%d, want 0/0", st.Simulated, st.Profiled)
	}
	if st.DiskHits == 0 {
		t.Error("resumed fig10 loaded nothing from disk")
	}
	if g1.CSV() != g2.CSV() {
		t.Error("resumed fig10 grid differs from the simulated one")
	}
}
