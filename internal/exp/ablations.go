package exp

import (
	"fmt"

	"moca/internal/cache"
	"moca/internal/classify"
	"moca/internal/core"
	"moca/internal/heap"
	"moca/internal/mem"
	"moca/internal/sim"
	"moca/internal/stats"
	"moca/internal/workload"
)

// Ablations for the design choices DESIGN.md calls out. None of these has
// a numbered figure in the paper; the threshold sweep implements the
// Section IV-C calibration procedure, the others probe choices the paper
// fixes by fiat.

// AblationThresholds reproduces the Section IV-C empirical threshold
// setup: sweep (Thr_Lat, Thr_BW) candidates, score each by the memory EDP
// of MOCA on the given mix, and report the best.
func (r *Runner) AblationThresholds(mixName string, latCands, bwCands []float64) (classify.Thresholds, *stats.Table, error) {
	mix, ok := workload.MixByName(mixName)
	if !ok {
		return classify.Thresholds{}, nil, fmt.Errorf("exp: unknown mix %q", mixName)
	}
	// Profile each app once; re-threshold per candidate without
	// re-simulating the profiling stage.
	profiles := map[string]core.Instrumentation{}
	for _, app := range mix.Apps {
		ins, err := r.Instrument(app)
		if err != nil {
			return classify.Thresholds{}, nil, err
		}
		profiles[app] = ins
	}

	var sweepErr error
	score := func(th classify.Thresholds) float64 {
		fw := core.NewFramework()
		fw.ObjectThresholds = th
		var procs []sim.ProcSpec
		for _, app := range mix.Apps {
			ins := fw.InstrumentFromProfile(profiles[app].App, profiles[app].Profile)
			procs = append(procs, ins.Proc(sim.PolicyMOCA, workload.Ref))
		}
		cfg := sim.DefaultConfig("moca-threshold-sweep", sim.Heterogeneous(sim.Config1), sim.PolicyMOCA)
		sys, err := sim.New(cfg, procs)
		if err != nil {
			sweepErr = err
			return 0
		}
		res, err := sys.Run(sys.SuggestedWarmup(), r.Measure)
		if err != nil {
			sweepErr = err
			return 0
		}
		return res.MemEDP()
	}
	best, sweep := classify.Calibrate(latCands, bwCands, score)
	if sweepErr != nil {
		return classify.Thresholds{}, nil, sweepErr
	}

	t := stats.NewTable(fmt.Sprintf("Ablation: threshold sweep on %s (score = MOCA memory EDP)", mixName),
		"Thr_Lat", "Thr_BW", "memory EDP", "best")
	for _, res := range sweep {
		mark := ""
		if res.Thresholds == best {
			mark = "<=="
		}
		t.AddRow(stats.F(res.Thresholds.LatMPKI), stats.F(res.Thresholds.BWStallCycles),
			fmt.Sprintf("%.3e", res.Score), mark)
	}
	return best, t, nil
}

// AblationFallback compares the paper's fallback chains against a naive
// alternative where bandwidth-sensitive objects overflow into RLDRAM
// before LPDDR (the paper says "next best for HBM is LPDDR").
func (r *Runner) AblationFallback(mixName string) (*stats.Table, error) {
	mix, ok := workload.MixByName(mixName)
	if !ok {
		return nil, fmt.Errorf("exp: unknown mix %q", mixName)
	}
	naive := map[classify.Class][]mem.Kind{
		classify.LatencySensitive:   {mem.RLDRAM, mem.HBM, mem.LPDDR2, mem.DDR3},
		classify.BandwidthSensitive: {mem.HBM, mem.RLDRAM, mem.LPDDR2, mem.DDR3},
		classify.NonIntensive:       {mem.LPDDR2, mem.RLDRAM, mem.HBM, mem.DDR3},
	}
	defs := []SystemDef{
		{Name: "MOCA/paper-chains", Modules: sim.Heterogeneous(sim.Config1), Policy: sim.PolicyMOCA},
		{Name: "MOCA/naive-chains", Modules: sim.Heterogeneous(sim.Config1), Policy: sim.PolicyMOCA, Chains: naive},
	}
	t := stats.NewTable(fmt.Sprintf("Ablation: fallback chains on %s", mixName),
		"variant", "mem access time (ns)", "memory EDP", "mem power (W)")
	for _, def := range defs {
		res, err := r.RunMix(def, mix)
		if err != nil {
			return nil, err
		}
		t.AddRow(def.Name, stats.F(float64(res.AvgMemAccessTime())/1000),
			fmt.Sprintf("%.3e", res.MemEDP()), stats.F(res.MemPowerW()))
	}
	return t, nil
}

// AblationNamingDepth demonstrates why naming needs calling context
// (paper Fig. 3): a probe application allocates a hot and a cold object
// through the same allocation wrapper. With 5-level naming the two get
// distinct classes; with 1-level (return address only) they collapse to
// one name and the cold object inherits the hot object's placement.
func (r *Runner) AblationNamingDepth() (*stats.Table, error) {
	probe := workload.NamingProbe()
	t := stats.NewTable("Ablation: naming depth on the shared-wrapper probe app",
		"depth", "names", "classes", "verdict")
	for _, depth := range []int{heap.DefaultNamingDepth, 1} {
		fw := core.NewFramework()
		fw.NamingDepth = depth
		fw.ProfileWindow = r.FW.ProfileWindow
		pr, err := fw.Profile(probe)
		if err != nil {
			return nil, err
		}
		objs := pr.HeapObjects()
		classes := map[classify.Class]int{}
		for _, o := range objs {
			classes[o.Class]++
		}
		verdict := "hot/cold separated"
		if len(objs) < 2 {
			verdict = "hot and cold MERGED: cold data follows hot placement"
		}
		t.AddRow(fmt.Sprintf("%d", depth), fmt.Sprintf("%d", len(objs)),
			fmt.Sprintf("%v", classes), verdict)
	}
	return t, nil
}

// AblationMigration measures the Section IV-E contrast: MOCA's static
// object-level placement versus a dynamic hot-page migration policy that
// must monitor accesses at runtime and pay copy traffic, epoch lag, and
// TLB shootdowns for every move. Both run the same mix on config1.
func (r *Runner) AblationMigration(mixName string) (*stats.Table, error) {
	mix, ok := workload.MixByName(mixName)
	if !ok {
		return nil, fmt.Errorf("exp: unknown mix %q", mixName)
	}
	defs := []SystemDef{
		{Name: "Heter-App", Modules: sim.Heterogeneous(sim.Config1), Policy: sim.PolicyAppLevel},
		{Name: "Migration", Modules: sim.Heterogeneous(sim.Config1), Policy: sim.PolicyMigrate},
		{Name: "MOCA", Modules: sim.Heterogeneous(sim.Config1), Policy: sim.PolicyMOCA},
	}
	t := stats.NewTable(
		fmt.Sprintf("Ablation: MOCA vs dynamic page migration on %s (Section IV-E)", mixName),
		"policy", "mem access time (ns)", "memory EDP", "promotions", "copied KB")
	for _, def := range defs {
		res, err := r.RunMix(def, mix)
		if err != nil {
			return nil, err
		}
		t.AddRow(def.Name,
			stats.F(float64(res.AvgMemAccessTime())/1000),
			fmt.Sprintf("%.3e", res.MemEDP()),
			fmt.Sprintf("%d", res.Migration.Promotions),
			fmt.Sprintf("%d", res.Migration.CopiedKB))
	}
	// The probe app with real page-level skew — migration's home turf —
	// runs single-core under the same three policies.
	probe := workload.HotspotProbe()
	ins, err := r.FW.Instrument(probe)
	if err != nil {
		return nil, err
	}
	for _, def := range defs {
		cfg := sim.DefaultConfig(def.Name, def.Modules, def.Policy)
		sys, err := sim.New(cfg, []sim.ProcSpec{ins.Proc(def.Policy, workload.Ref)})
		if err != nil {
			return nil, err
		}
		res, err := sys.Run(sys.SuggestedWarmup(), r.Measure)
		if err != nil {
			return nil, err
		}
		t.AddRow(def.Name+" (hotspotprobe)",
			stats.F(float64(res.AvgMemAccessTime())/1000),
			fmt.Sprintf("%.3e", res.MemEDP()),
			fmt.Sprintf("%d", res.Migration.Promotions),
			fmt.Sprintf("%d", res.Migration.CopiedKB))
	}
	t.AddNote("migration pays monitoring, epoch lag, copy traffic, and shootdowns at runtime;")
	t.AddNote("MOCA reaches its placement statically from the offline profile (Section IV-E);")
	t.AddNote("the hotspot probe has page-level skew, the best case for migration")
	return t, nil
}

// AblationScheduler compares FR-FCFS against FCFS on the homogeneous DDR3
// system (Table I fixes FR-FCFS; this quantifies the choice).
func (r *Runner) AblationScheduler(appName string) (*stats.Table, error) {
	t := stats.NewTable(fmt.Sprintf("Ablation: memory scheduler on %s (Homogen-DDR3)", appName),
		"scheduler", "mem access time (ns)", "row-hit rate")
	for _, sched := range []mem.Scheduler{mem.FRFCFS, mem.FCFS} {
		ins, err := r.Instrument(appName)
		if err != nil {
			return nil, err
		}
		cfg := sim.DefaultConfig("sched-"+sched.String(), sim.Homogeneous(mem.DDR3), sim.PolicyFixed)
		cfg.Scheduler = sched
		sys, err := sim.New(cfg, []sim.ProcSpec{ins.Proc(sim.PolicyFixed, workload.Ref)})
		if err != nil {
			return nil, err
		}
		res, err := sys.Run(sys.SuggestedWarmup(), r.Measure)
		if err != nil {
			return nil, err
		}
		var hits, reqs uint64
		for _, ch := range res.Channels {
			hits += ch.Stats.RowHits
			reqs += ch.Stats.Requests()
		}
		rate := 0.0
		if reqs > 0 {
			rate = float64(hits) / float64(reqs)
		}
		t.AddRow(sched.String(), stats.F(float64(res.AvgMemAccessTime())/1000), stats.F(rate))
	}
	return t, nil
}

// AblationPrefetch measures how a stride prefetcher — absent from the
// paper's Table I system — would shift MOCA's classification signals:
// prefetching hides streaming misses, pushing bandwidth-sensitive objects
// toward non-intensive and sharpening the latency-sensitive ones (pointer
// chases are unprefetchable). A deployment with prefetching must
// recalibrate Thr_Lat/Thr_BW, which is exactly the paper's Section IV-C
// warning that thresholds are system-specific.
func (r *Runner) AblationPrefetch(apps ...string) (*stats.Table, error) {
	if len(apps) == 0 {
		apps = []string{"mcf", "lbm", "tracking"}
	}
	t := stats.NewTable("Ablation: stride prefetching vs classification signals",
		"app", "prefetch", "LLC MPKI", "stall/miss", "class", "pf accuracy")
	for _, name := range apps {
		spec, ok := workload.ByName(name)
		if !ok {
			return nil, fmt.Errorf("exp: unknown app %q", name)
		}
		for _, enable := range []bool{false, true} {
			fw := core.NewFramework()
			fw.ProfileWindow = r.FW.ProfileWindow
			fw.Prefetch = cache.PrefetchConfig{Enable: enable}
			pr, err := fw.Profile(spec)
			if err != nil {
				return nil, err
			}
			m := pr.AppMetrics()
			cls := fw.ObjectThresholds.Classify(m.MPKI, m.StallPerMiss)
			acc := "-"
			if enable {
				// Accuracy comes from a plain (non-profiling) run so the
				// stats reflect the measured window only.
				cfg := sim.DefaultConfig("pf", sim.Homogeneous(mem.DDR3), sim.PolicyFixed)
				cfg.Prefetch = cache.PrefetchConfig{Enable: true}
				sys, err := sim.New(cfg, []sim.ProcSpec{{App: spec, Input: workload.Ref}})
				if err != nil {
					return nil, err
				}
				res, err := sys.Run(sys.SuggestedWarmup(), r.Measure)
				if err != nil {
					return nil, err
				}
				acc = stats.F(res.Cores[0].Prefetch.Accuracy())
			}
			t.AddRow(name, fmt.Sprintf("%v", enable), stats.F(m.MPKI), stats.F(m.StallPerMiss),
				cls.String(), acc)
		}
	}
	t.AddNote("prefetching hides streaming misses; thresholds must be recalibrated per system (Section IV-C)")
	return t, nil
}

// AblationRowPolicy compares open-page against closed-page operation on
// the homogeneous DDR3 system: streaming apps reward open rows, random
// ones barely care — quantifying the open-page choice behind Table I's
// FR-FCFS configuration.
func (r *Runner) AblationRowPolicy(apps ...string) (*stats.Table, error) {
	if len(apps) == 0 {
		apps = []string{"lbm", "mcf"}
	}
	t := stats.NewTable("Ablation: row-buffer policy (Homogen-DDR3)",
		"app", "policy", "mem access time (ns)", "row-hit rate")
	for _, name := range apps {
		ins, err := r.Instrument(name)
		if err != nil {
			return nil, err
		}
		for _, pol := range []mem.RowPolicy{mem.OpenPage, mem.ClosedPage} {
			cfg := sim.DefaultConfig("rowpol-"+pol.String(), sim.Homogeneous(mem.DDR3), sim.PolicyFixed)
			cfg.RowPolicy = pol
			sys, err := sim.New(cfg, []sim.ProcSpec{ins.Proc(sim.PolicyFixed, workload.Ref)})
			if err != nil {
				return nil, err
			}
			res, err := sys.Run(sys.SuggestedWarmup(), r.Measure)
			if err != nil {
				return nil, err
			}
			var hits, reqs uint64
			for _, ch := range res.Channels {
				hits += ch.Stats.RowHits
				reqs += ch.Stats.Requests()
			}
			rate := 0.0
			if reqs > 0 {
				rate = float64(hits) / float64(reqs)
			}
			t.AddRow(name, pol.String(), stats.F(float64(res.AvgMemAccessTime())/1000), stats.F(rate))
		}
	}
	return t, nil
}

// AblationMapping compares Table I's row-buffer-granularity bank
// interleave against page-granularity bank bits: streams lose all bank
// parallelism under page striping.
func (r *Runner) AblationMapping(appName string) (*stats.Table, error) {
	ins, err := r.Instrument(appName)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(fmt.Sprintf("Ablation: bank interleave granularity on %s (Homogen-DDR3)", appName),
		"mapping", "mem access time (ns)")
	for _, stripe := range []mem.BankStripe{mem.StripeRowBuffer, mem.StripePage} {
		cfg := sim.DefaultConfig("map-"+stripe.String(), sim.Homogeneous(mem.DDR3), sim.PolicyFixed)
		cfg.BankStripe = stripe
		sys, err := sim.New(cfg, []sim.ProcSpec{ins.Proc(sim.PolicyFixed, workload.Ref)})
		if err != nil {
			return nil, err
		}
		res, err := sys.Run(sys.SuggestedWarmup(), r.Measure)
		if err != nil {
			return nil, err
		}
		t.AddRow(stripe.String(), stats.F(float64(res.AvgMemAccessTime())/1000))
	}
	return t, nil
}
