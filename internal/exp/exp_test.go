package exp

import (
	"fmt"
	"strings"
	"testing"

	"moca/internal/classify"
	"moca/internal/workload"
)

// fastRunner trades window size for test speed; the full-size windows run
// in the benchmarks.
func fastRunner() *Runner {
	r := NewRunner()
	r.Measure = 60_000
	r.FW.ProfileWindow = 200_000
	return r
}

func TestStandardSystems(t *testing.T) {
	defs := StandardSystems()
	if len(defs) != 6 {
		t.Fatalf("systems = %d, want 6", len(defs))
	}
	names := SystemNames()
	for i, d := range defs {
		if d.Name != names[i] {
			t.Errorf("system %d = %s, want %s", i, d.Name, names[i])
		}
	}
}

func TestTable1And2Render(t *testing.T) {
	if s := Table1().String(); !strings.Contains(s, "84-entry ROB") {
		t.Errorf("Table I:\n%s", s)
	}
	s := Table2().String()
	for _, want := range []string{"DDR3", "HBM", "RLDRAM", "LPDDR2", "tRC"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table II missing %q:\n%s", want, s)
		}
	}
}

func TestTable3MatchesPaper(t *testing.T) {
	r := fastRunner()
	got, table, err := r.Table3()
	if err != nil {
		t.Fatal(err)
	}
	want := Table3Expected()
	for app, class := range want {
		if got[app] != class {
			t.Errorf("%s classified %v, paper says %v\n%s", app, got[app], class, table)
		}
	}
}

func TestFig1(t *testing.T) {
	r := fastRunner()
	pts, table, err := r.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 10 {
		t.Fatalf("points = %d", len(pts))
	}
	// The suite must span the MPKI spectrum as in Fig. 1.
	var lo, hi bool
	for _, p := range pts {
		if p.MPKI < 5 {
			lo = true
		}
		if p.MPKI > 30 {
			hi = true
		}
	}
	if !lo || !hi {
		t.Errorf("suite does not span the MPKI spectrum:\n%s", table)
	}
}

func TestFig2ObjectDiversity(t *testing.T) {
	r := fastRunner()
	pts, _, err := r.Fig2("milc", "disparity")
	if err != nil {
		t.Fatal(err)
	}
	classes := map[classify.Class]int{}
	for _, p := range pts {
		classes[p.Class]++
	}
	// Objects within these apps must span all three classes (the paper's
	// core observation).
	for _, c := range classify.Classes() {
		if classes[c] == 0 {
			t.Errorf("no %v objects among milc+disparity", c)
		}
	}
	// milc: few hot objects among many cold ones.
	var milcHot, milcCold int
	for _, p := range pts {
		if p.App != "milc" {
			continue
		}
		if p.MPKI > 1 {
			milcHot++
		} else {
			milcCold++
		}
	}
	if milcHot > milcCold {
		t.Errorf("milc: %d hot vs %d cold objects; paper says few hot among many", milcHot, milcCold)
	}
}

func TestFig5(t *testing.T) {
	r := fastRunner()
	s := r.Fig5().String()
	for _, want := range []string{"RLDRAM", "HBM", "LPDDR"} {
		if !strings.Contains(s, want) {
			t.Errorf("Fig. 5 table missing %q", want)
		}
	}
}

func TestFig16SegmentsStayCold(t *testing.T) {
	r := fastRunner()
	pts, table, err := r.Fig16()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.StackMPKI > 2 || p.CodeMPKI > 2 {
			t.Errorf("%s: stack %.2f / code %.2f MPKI too high for Section VI-D\n%s",
				p.App, p.StackMPKI, p.CodeMPKI, table)
		}
	}
}

func TestFig8And9SingleCoreShapes(t *testing.T) {
	skipHeavy(t, "full single-core sweep")
	r := fastRunner()
	f8, err := r.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	f9, err := r.Fig9()
	if err != nil {
		t.Fatal(err)
	}

	// Paper shapes (Section VI-A):
	// Homogen-RL has the lowest memory access time on average.
	rlMean := f8.ColMean(SysRL)
	for _, sys := range []string{SysDDR3, SysHBM, SysLP, SysHeterApp} {
		if rlMean >= f8.ColMean(sys) {
			t.Errorf("Homogen-RL mean access time %.3f not below %s %.3f\n%s",
				rlMean, sys, f8.ColMean(sys), f8.Table())
		}
	}
	// Homogen-LP is the slowest system.
	lpMean := f8.ColMean(SysLP)
	for _, sys := range []string{SysDDR3, SysRL, SysHBM, SysMOCA} {
		if lpMean <= f8.ColMean(sys) {
			t.Errorf("Homogen-LP mean %.3f not the slowest vs %s %.3f", lpMean, sys, f8.ColMean(sys))
		}
	}
	// MOCA reduces access time well below DDR3...
	if m := f8.ColMean(SysMOCA); m > 0.75 {
		t.Errorf("MOCA mean access time %.3f vs DDR3; paper reports ~0.49", m)
	}
	// ...beats Heter-App...
	if f8.ColMean(SysMOCA) >= f8.ColMean(SysHeterApp) {
		t.Errorf("MOCA %.3f not faster than Heter-App %.3f\n%s",
			f8.ColMean(SysMOCA), f8.ColMean(SysHeterApp), f8.Table())
	}
	// ...and has the best (lowest) mean memory EDP of all six systems.
	mocaEDP := f9.ColMean(SysMOCA)
	for _, sys := range []string{SysDDR3, SysRL, SysHBM, SysLP, SysHeterApp} {
		if mocaEDP >= f9.ColMean(sys) {
			t.Errorf("MOCA mean EDP %.3f not below %s %.3f\n%s", mocaEDP, sys, f9.ColMean(sys), f9.Table())
		}
	}
	// Homogen-RL is the least energy-efficient homogeneous system.
	if f9.ColMean(SysRL) <= f9.ColMean(SysDDR3) {
		t.Errorf("Homogen-RL EDP %.3f not worse than DDR3 %.3f", f9.ColMean(SysRL), f9.ColMean(SysDDR3))
	}
}

func TestAblationNamingDepth(t *testing.T) {
	r := fastRunner()
	table, err := r.AblationNamingDepth()
	if err != nil {
		t.Fatal(err)
	}
	s := table.String()
	if !strings.Contains(s, "MERGED") {
		t.Errorf("depth-1 naming did not merge the probe objects:\n%s", s)
	}
	if !strings.Contains(s, "separated") {
		t.Errorf("depth-5 naming did not separate the probe objects:\n%s", s)
	}
}

func TestAblationScheduler(t *testing.T) {
	r := fastRunner()
	table, err := r.AblationScheduler("lbm")
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Errorf("scheduler ablation rows = %d", len(table.Rows))
	}
}

func TestRunnerErrors(t *testing.T) {
	r := fastRunner()
	if _, err := r.Instrument("bogus"); err == nil {
		t.Error("unknown app accepted")
	}
	if _, _, err := r.AblationThresholds("bogus", nil, nil); err == nil {
		t.Error("unknown mix accepted")
	}
	if _, err := r.AblationFallback("bogus"); err == nil {
		t.Error("unknown mix accepted")
	}
}

func TestRunCaching(t *testing.T) {
	r := fastRunner()
	def := StandardSystems()[0]
	a, err := r.RunSingle(def, "sift")
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.RunSingle(def, "sift")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("second run did not hit the cache")
	}
}

func TestMixRun(t *testing.T) {
	skipHeavy(t, "4-core run")
	r := fastRunner()
	mix, _ := workload.MixByName("2B2N")
	res, err := r.RunMix(StandardSystems()[5], mix) // MOCA
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cores) != 4 {
		t.Errorf("cores = %d", len(res.Cores))
	}
}

func TestAblationMigration(t *testing.T) {
	skipHeavy(t, "three 4-core runs")
	r := fastRunner()
	table, err := r.AblationMigration("2L1B1N")
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 6 {
		t.Fatalf("rows = %d, want 3 policies x (mix + hotspot probe)", len(table.Rows))
	}
	if _, err := r.AblationMigration("bogus"); err == nil {
		t.Error("unknown mix accepted")
	}
}

func TestExtensionPCM(t *testing.T) {
	skipHeavy(t, "three 4-core runs")
	r := fastRunner()
	table, err := r.ExtensionPCM("2B2N")
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 variants", len(table.Rows))
	}
	parse := func(row []string) float64 {
		var v float64
		fmt.Sscanf(row[1], "%f", &v)
		return v
	}
	parseEDP := func(row []string) float64 {
		var v float64
		fmt.Sscanf(row[2], "%e", &v)
		return v
	}
	parsePCMWrites := func(row []string) float64 {
		var v float64
		fmt.Sscanf(row[5], "%f", &v)
		return v
	}
	var allPCM, mocaTier float64
	var ftEDP, mtEDP, waEDP float64
	var mtWrites, waWrites float64
	for _, row := range table.Rows {
		switch row[0] {
		case "all-PCM":
			allPCM = parse(row)
		case "first-touch-tier":
			ftEDP = parseEDP(row)
		case "moca-tier":
			mocaTier = parse(row)
			mtEDP = parseEDP(row)
			mtWrites = parsePCMWrites(row)
		case "moca-tier-write-aware":
			waEDP = parseEDP(row)
			waWrites = parsePCMWrites(row)
		}
	}
	if mocaTier >= allPCM {
		t.Errorf("moca-tier (%.1f ns) not faster than all-PCM (%.1f ns)\n%s", mocaTier, allPCM, table)
	}
	if mtEDP >= ftEDP {
		t.Errorf("moca-tier EDP (%.3e) not below first-touch tiering (%.3e)\n%s", mtEDP, ftEDP, table)
	}
	if waEDP >= mtEDP {
		t.Errorf("write-aware tiering EDP (%.3e) not below class-only (%.3e)\n%s", waEDP, mtEDP, table)
	}
	if waWrites >= mtWrites {
		t.Errorf("write-aware tiering did not reduce PCM writes (%v vs %v)\n%s", waWrites, mtWrites, table)
	}
	if _, err := r.ExtensionPCM("bogus"); err == nil {
		t.Error("unknown mix accepted")
	}
}

func TestAblationPrefetch(t *testing.T) {
	skipHeavy(t, "six profiling runs")
	r := fastRunner()
	table, err := r.AblationPrefetch("lbm")
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	parse := func(row []string) float64 {
		var v float64
		fmt.Sscanf(row[2], "%f", &v)
		return v
	}
	var off, on float64
	for _, row := range table.Rows {
		if row[1] == "true" {
			on = parse(row)
		} else {
			off = parse(row)
		}
	}
	if on >= off {
		t.Errorf("prefetching did not reduce lbm's MPKI (%.1f -> %.1f)\n%s", off, on, table)
	}
	if _, err := r.AblationPrefetch("bogus"); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestAblationRowPolicyAndMapping(t *testing.T) {
	skipHeavy(t, "several single-core runs")
	r := fastRunner()
	rp, err := r.AblationRowPolicy("lbm")
	if err != nil {
		t.Fatal(err)
	}
	parse := func(row []string, col int) float64 {
		var v float64
		fmt.Sscanf(row[col], "%f", &v)
		return v
	}
	var open, closed float64
	for _, row := range rp.Rows {
		if row[1] == "open-page" {
			open = parse(row, 2)
		} else {
			closed = parse(row, 2)
		}
	}
	if open >= closed {
		t.Errorf("open-page (%.1f ns) not faster than closed-page (%.1f ns) for lbm\n%s", open, closed, rp)
	}

	mp, err := r.AblationMapping("lbm")
	if err != nil {
		t.Fatal(err)
	}
	var rowbuf, page float64
	for _, row := range mp.Rows {
		if row[0] == "rowbuf-stripe" {
			rowbuf = parse(row, 1)
		} else {
			page = parse(row, 1)
		}
	}
	if rowbuf >= page {
		t.Errorf("row-buffer stripe (%.1f ns) not faster than page stripe (%.1f ns)\n%s", rowbuf, page, mp)
	}
}

func TestExtensionKNL(t *testing.T) {
	skipHeavy(t, "three 4-core runs")
	r := fastRunner()
	table, err := r.ExtensionKNL("2L1B1N")
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 3 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	parse := func(row []string, col int) float64 {
		var v float64
		fmt.Sscanf(row[col], "%f", &v)
		return v
	}
	var ddr4Only, knlMoca float64
	for _, row := range table.Rows {
		switch row[0] {
		case "ddr4-only":
			ddr4Only = parse(row, 1)
		case "knl-moca":
			knlMoca = parse(row, 1)
		}
	}
	if knlMoca >= ddr4Only {
		t.Errorf("knl-moca (%.1f ns) not faster than ddr4-only (%.1f ns)\n%s", knlMoca, ddr4Only, table)
	}
	if _, err := r.ExtensionKNL("bogus"); err == nil {
		t.Error("unknown mix accepted")
	}
}

func TestExtensionPhases(t *testing.T) {
	skipHeavy(t, "three long runs")
	r := fastRunner()
	table, err := r.ExtensionPhases()
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 3 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	// Migration must actually adapt (promotions happen).
	for _, row := range table.Rows {
		if row[0] == "Migration" && row[3] == "0" {
			t.Errorf("migration never promoted on the phase-flipping app\n%s", table)
		}
	}
}

func TestParallelismMatchesSerial(t *testing.T) {
	skipHeavy(t, "repeated runs")
	// The runner's bounded parallelism must not change any result:
	// simulations are independent and individually deterministic.
	run := func(par int) float64 {
		r := NewRunner()
		r.Measure = 50_000
		r.FW.ProfileWindow = 80_000
		r.Parallelism = par
		defs := StandardSystems()[:2]
		if err := r.warmSingles(defs, []string{"sift", "gcc"}); err != nil {
			t.Fatal(err)
		}
		res, err := r.RunSingle(defs[0], "sift")
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.AvgMemAccessTime())
	}
	if a, b := run(1), run(8); a != b {
		t.Errorf("parallel (%v) and serial (%v) runs diverged", b, a)
	}
}
