package exp

import (
	"fmt"
	"sort"

	"moca/internal/classify"
	"moca/internal/sim"
	"moca/internal/stats"
	"moca/internal/workload"
)

// AppPoint is one application's aggregate profile — a point in Fig. 1.
type AppPoint struct {
	App   string
	MPKI  float64
	Stall float64
	Class classify.Class
}

// Fig1 reproduces Fig. 1: application-level L2 MPKI vs. ROB-head stall
// cycles per load miss for the whole suite, from training-input profiling.
func (r *Runner) Fig1() ([]AppPoint, *stats.Table, error) {
	var pts []AppPoint
	for _, name := range workload.Names() {
		ins, err := r.Instrument(name)
		if err != nil {
			return nil, nil, err
		}
		m := ins.Profile.AppMetrics()
		pts = append(pts, AppPoint{App: name, MPKI: m.MPKI, Stall: m.StallPerMiss, Class: ins.AppClass})
	}
	t := stats.NewTable("Fig. 1: application-level memory access behavior",
		"app", "LLC MPKI", "ROB stall/miss", "class")
	for _, p := range pts {
		t.AddRow(p.App, stats.F(p.MPKI), stats.F(p.Stall), p.Class.String())
	}
	return pts, t, nil
}

// ObjPoint is one memory object's profile — a circle in Fig. 2.
type ObjPoint struct {
	App   string
	Label string
	MPKI  float64
	Stall float64
	Size  uint64
	Class classify.Class
}

// Fig2 reproduces Fig. 2: the per-object (MPKI, stall, size) scatter for
// the given applications (default: the whole suite).
func (r *Runner) Fig2(apps ...string) ([]ObjPoint, *stats.Table, error) {
	if len(apps) == 0 {
		apps = workload.Names()
	}
	var pts []ObjPoint
	for _, name := range apps {
		ins, err := r.Instrument(name)
		if err != nil {
			return nil, nil, err
		}
		for _, o := range ins.Profile.HeapObjects() {
			pts = append(pts, ObjPoint{
				App: name, Label: o.Label, MPKI: o.MPKI, Stall: o.StallPerMiss,
				Size: o.SizeBytes, Class: o.Class,
			})
		}
	}
	t := stats.NewTable("Fig. 2: per-object memory access behavior",
		"app", "object", "LLC MPKI", "ROB stall/miss", "size(KB)", "class")
	for _, p := range pts {
		t.AddRow(p.App, p.Label, stats.F(p.MPKI), stats.F(p.Stall),
			fmt.Sprintf("%d", p.Size/1024), p.Class.String())
	}
	return pts, t, nil
}

// Fig5 reproduces the Fig. 5 classification regions: a sample of the
// (MPKI, stall) plane labeled by the default thresholds.
func (r *Runner) Fig5() *stats.Table {
	th := r.FW.ObjectThresholds
	t := stats.NewTable(
		fmt.Sprintf("Fig. 5: classification regions (Thr_Lat=%.0f MPKI, Thr_BW=%.0f cycles)",
			th.LatMPKI, th.BWStallCycles),
		"LLC MPKI", "ROB stall/miss", "class", "module")
	module := map[classify.Class]string{
		classify.LatencySensitive:   "Lat Mem (RLDRAM)",
		classify.BandwidthSensitive: "BW Mem (HBM)",
		classify.NonIntensive:       "Pow Mem (LPDDR)",
	}
	for _, mpki := range []float64{0.5, 2, 10, 50} {
		for _, stall := range []float64{5, 20, 50, 200} {
			c := th.Classify(mpki, stall)
			t.AddRow(stats.F(mpki), stats.F(stall), c.String(), module[c])
		}
	}
	return t
}

// memGrids runs the single-application experiments and returns raw grids
// of memory access time and memory EDP (apps x systems).
func (r *Runner) memGrids() (perf, edp *stats.Grid, err error) {
	systems := StandardSystems()
	apps := workload.Names()
	if err := r.warmSingles(systems, apps); err != nil {
		return nil, nil, err
	}
	perf = stats.NewGrid("memory access time (ps/request)", "app", apps, SystemNames())
	edp = stats.NewGrid("memory EDP", "app", apps, SystemNames())
	for _, def := range systems {
		for _, app := range apps {
			res, err := r.RunSingle(def, app)
			if err != nil {
				return nil, nil, err
			}
			perf.Set(app, def.Name, float64(res.AvgMemAccessTime()))
			edp.Set(app, def.Name, res.MemEDP())
		}
	}
	return perf, edp, nil
}

// Fig8 reproduces Fig. 8: single-core memory access time across the six
// memory systems, normalized to Homogen-DDR3.
func (r *Runner) Fig8() (*stats.Grid, error) {
	perf, _, err := r.memGrids()
	if err != nil {
		return nil, err
	}
	g := perf.Normalize(SysDDR3)
	g.Name = "Fig. 8: memory access time, single workloads (normalized to Homogen-DDR3)"
	return g, nil
}

// Fig9 reproduces Fig. 9: single-core memory EDP, normalized to DDR3.
func (r *Runner) Fig9() (*stats.Grid, error) {
	_, edp, err := r.memGrids()
	if err != nil {
		return nil, err
	}
	g := edp.Normalize(SysDDR3)
	g.Name = "Fig. 9: memory EDP, single workloads (normalized to Homogen-DDR3)"
	return g, nil
}

// mixNames lists the Figs. 10-13 workload sets in order.
func mixNames() []string {
	var out []string
	for _, m := range workload.Mixes() {
		out = append(out, m.Name)
	}
	return out
}

// multiGrids runs the multi-program experiments and returns raw grids of
// memory access time, memory EDP, system time, and system EDP.
func (r *Runner) multiGrids() (memPerf, memEDP, sysPerf, sysEDP *stats.Grid, err error) {
	systems := StandardSystems()
	mixes := workload.Mixes()
	if err := r.warmMixes(systems, mixes); err != nil {
		return nil, nil, nil, nil, err
	}
	names := mixNames()
	memPerf = stats.NewGrid("memory access time (ps/request)", "mix", names, SystemNames())
	memEDP = stats.NewGrid("memory EDP", "mix", names, SystemNames())
	sysPerf = stats.NewGrid("system runtime (ps)", "mix", names, SystemNames())
	sysEDP = stats.NewGrid("system EDP", "mix", names, SystemNames())
	for _, def := range systems {
		for _, m := range mixes {
			res, err := r.RunMix(def, m)
			if err != nil {
				return nil, nil, nil, nil, err
			}
			memPerf.Set(m.Name, def.Name, float64(res.AvgMemAccessTime()))
			memEDP.Set(m.Name, def.Name, res.MemEDP())
			sysPerf.Set(m.Name, def.Name, float64(res.SystemTime()))
			sysEDP.Set(m.Name, def.Name, res.SystemEDP())
		}
	}
	return memPerf, memEDP, sysPerf, sysEDP, nil
}

// Fig10 reproduces Fig. 10: multi-program memory access time (normalized).
func (r *Runner) Fig10() (*stats.Grid, error) {
	p, _, _, _, err := r.multiGrids()
	if err != nil {
		return nil, err
	}
	g := p.Normalize(SysDDR3)
	g.Name = "Fig. 10: memory access time, multi-program workloads (normalized to Homogen-DDR3)"
	return g, nil
}

// Fig11 reproduces Fig. 11: multi-program memory EDP (normalized).
func (r *Runner) Fig11() (*stats.Grid, error) {
	_, e, _, _, err := r.multiGrids()
	if err != nil {
		return nil, err
	}
	g := e.Normalize(SysDDR3)
	g.Name = "Fig. 11: memory EDP, multi-program workloads (normalized to Homogen-DDR3)"
	return g, nil
}

// Fig12 reproduces Fig. 12: multi-program system performance (runtime for
// the fixed instruction quota, normalized to DDR3; lower is better).
func (r *Runner) Fig12() (*stats.Grid, error) {
	_, _, p, _, err := r.multiGrids()
	if err != nil {
		return nil, err
	}
	g := p.Normalize(SysDDR3)
	g.Name = "Fig. 12: system runtime, multi-program workloads (normalized to Homogen-DDR3)"
	return g, nil
}

// Fig13 reproduces Fig. 13: multi-program system EDP (normalized).
func (r *Runner) Fig13() (*stats.Grid, error) {
	_, _, _, e, err := r.multiGrids()
	if err != nil {
		return nil, err
	}
	g := e.Normalize(SysDDR3)
	g.Name = "Fig. 13: system EDP, multi-program workloads (normalized to Homogen-DDR3)"
	return g, nil
}

// sweepCols names the Fig. 14/15 columns: config x policy.
func sweepCols() []string {
	var cols []string
	for _, c := range []string{"config1", "config2", "config3"} {
		cols = append(cols, c+"/Heter-App", c+"/MOCA")
	}
	return cols
}

// configSweepGrids runs the Section VI-C capacity sweep: the five named
// mixes on the three heterogeneous configurations under both policies.
func (r *Runner) configSweepGrids() (perf, edp *stats.Grid, err error) {
	mixes := workload.ConfigSweepMixes()
	var rows []string
	for _, m := range mixes {
		rows = append(rows, m.Name)
	}
	sort.Strings(rows)

	var systems []SystemDef
	for _, hc := range []sim.HeterConfig{sim.Config1, sim.Config2, sim.Config3} {
		mods := sim.Heterogeneous(hc)
		systems = append(systems,
			SystemDef{Name: hc.String() + "/Heter-App", Modules: mods, Policy: sim.PolicyAppLevel},
			SystemDef{Name: hc.String() + "/MOCA", Modules: mods, Policy: sim.PolicyMOCA},
		)
	}
	if err := r.warmMixes(systems, mixes); err != nil {
		return nil, nil, err
	}

	perf = stats.NewGrid("memory access time (ps/request)", "mix", rows, sweepCols())
	edp = stats.NewGrid("memory EDP", "mix", rows, sweepCols())
	for _, def := range systems {
		for _, m := range mixes {
			res, err := r.RunMix(def, m)
			if err != nil {
				return nil, nil, err
			}
			perf.Set(m.Name, def.Name, float64(res.AvgMemAccessTime()))
			edp.Set(m.Name, def.Name, res.MemEDP())
		}
	}
	return perf, edp, nil
}

// Fig14 reproduces Fig. 14: memory access time per heterogeneous
// configuration, normalized per-config to Heter-App.
func (r *Runner) Fig14() (*stats.Grid, error) {
	perf, _, err := r.configSweepGrids()
	if err != nil {
		return nil, err
	}
	g := normalizePerConfig(perf)
	g.Name = "Fig. 14: memory access time across heterogeneous configs (normalized to Heter-App per config)"
	return g, nil
}

// Fig15 reproduces Fig. 15: memory EDP per heterogeneous configuration,
// normalized per-config to Heter-App.
func (r *Runner) Fig15() (*stats.Grid, error) {
	_, edp, err := r.configSweepGrids()
	if err != nil {
		return nil, err
	}
	g := normalizePerConfig(edp)
	g.Name = "Fig. 15: memory EDP across heterogeneous configs (normalized to Heter-App per config)"
	return g, nil
}

// normalizePerConfig divides each configN/MOCA column by the matching
// configN/Heter-App column, row by row (the paper normalizes each config's
// bars to that config's Heter-App).
func normalizePerConfig(g *stats.Grid) *stats.Grid {
	out := stats.NewGrid(g.Name, g.RowName, g.Rows, g.Cols)
	for _, row := range g.Rows {
		for _, cfg := range []string{"config1", "config2", "config3"} {
			base := g.Get(row, cfg+"/Heter-App")
			for _, pol := range []string{"Heter-App", "MOCA"} {
				col := cfg + "/" + pol
				v := g.Get(row, col)
				if base != 0 {
					v /= base
				}
				out.Set(row, col, v)
			}
		}
	}
	return out
}

// SegPoint is one app's stack and code segment MPKI — a pair of bars in
// Fig. 16.
type SegPoint struct {
	App       string
	StackMPKI float64
	CodeMPKI  float64
}

// Fig16 reproduces Fig. 16: L2 MPKI of the stack and code segments for the
// whole suite, justifying their LPDDR placement (Section VI-D).
func (r *Runner) Fig16() ([]SegPoint, *stats.Table, error) {
	var pts []SegPoint
	for _, name := range workload.Names() {
		ins, err := r.Instrument(name)
		if err != nil {
			return nil, nil, err
		}
		p := SegPoint{App: name}
		for _, o := range ins.Profile.Objects {
			switch o.Label {
			case "stack":
				p.StackMPKI = o.MPKI
			case "code":
				p.CodeMPKI = o.MPKI
			}
		}
		pts = append(pts, p)
	}
	t := stats.NewTable("Fig. 16: stack and code segment L2 MPKI", "app", "stack MPKI", "code MPKI")
	for _, p := range pts {
		t.AddRow(p.App, stats.F(p.StackMPKI), stats.F(p.CodeMPKI))
	}
	t.AddNote("both segments stay low-MPKI, so MOCA places them in LPDDR (Section VI-D)")
	return pts, t, nil
}
