package exp

import (
	"fmt"
	"strings"

	"moca/internal/mem"
	"moca/internal/sim"
)

// SystemByName resolves the CLI-style system names moca-sim accepts
// (ddr3, rl, hbm, lp, heter-app, moca, migrate, with an optional
// @config2/@config3 capacity suffix) to a SystemDef. The returned Name is
// the simulator config name ("homogen-ddr3", "moca", ...), so a run
// executed through the Runner is byte-identical — including Result.Name —
// to the same run executed by moca-sim locally. moca-served resolves
// SUBMIT frames through this table.
func SystemByName(name string) (SystemDef, error) {
	base, sel := name, sim.Config1
	if i := strings.Index(name, "@"); i >= 0 {
		base = name[:i]
		switch name[i+1:] {
		case "config1":
			sel = sim.Config1
		case "config2":
			sel = sim.Config2
		case "config3":
			sel = sim.Config3
		default:
			return SystemDef{}, fmt.Errorf("exp: unknown capacity config %q", name[i+1:])
		}
	}
	switch base {
	case "ddr3":
		return SystemDef{Name: "homogen-ddr3", Modules: sim.Homogeneous(mem.DDR3), Policy: sim.PolicyFixed}, nil
	case "rl", "rldram":
		return SystemDef{Name: "homogen-rl", Modules: sim.Homogeneous(mem.RLDRAM), Policy: sim.PolicyFixed}, nil
	case "hbm":
		return SystemDef{Name: "homogen-hbm", Modules: sim.Homogeneous(mem.HBM), Policy: sim.PolicyFixed}, nil
	case "lp", "lpddr2":
		return SystemDef{Name: "homogen-lp", Modules: sim.Homogeneous(mem.LPDDR2), Policy: sim.PolicyFixed}, nil
	case "heter-app":
		return SystemDef{Name: "heter-app", Modules: sim.Heterogeneous(sel), Policy: sim.PolicyAppLevel}, nil
	case "moca":
		return SystemDef{Name: "moca", Modules: sim.Heterogeneous(sel), Policy: sim.PolicyMOCA}, nil
	case "migrate":
		return SystemDef{Name: "migrate", Modules: sim.Heterogeneous(sel), Policy: sim.PolicyMigrate}, nil
	default:
		return SystemDef{}, fmt.Errorf("exp: unknown system %q", name)
	}
}
