//go:build race

package exp

// raceEnabled reports whether this binary was built with the race
// detector; the heavy figure sweeps scale down under it (see skipHeavy).
const raceEnabled = true
