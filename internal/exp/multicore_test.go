package exp

import (
	"testing"
)

// The multi-program experiments are the heaviest in the suite; they run at
// a reduced window here and at full size in the repository benchmarks.
func multiRunner() *Runner {
	r := NewRunner()
	r.Measure = 100_000
	r.FW.ProfileWindow = 200_000
	return r
}

func TestFig10Through13Shapes(t *testing.T) {
	skipHeavy(t, "full multi-program sweep")
	r := multiRunner()
	f10, err := r.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	f11, err := r.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	f12, err := r.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	f13, err := r.Fig13()
	if err != nil {
		t.Fatal(err)
	}

	// Fig. 10 shapes: Homogen-RL and Homogen-HBM are the fastest memory
	// systems; Homogen-LP is the slowest; MOCA beats Heter-App and DDR3
	// on average ("MOCA reduces the memory access time by 26% over
	// Heter-App").
	if f10.ColMean(SysRL) >= f10.ColMean(SysDDR3) {
		t.Errorf("Homogen-RL mean %.3f not below DDR3\n%s", f10.ColMean(SysRL), f10.Table())
	}
	for _, sys := range []string{SysDDR3, SysRL, SysHBM, SysHeterApp, SysMOCA} {
		if f10.ColMean(SysLP) <= f10.ColMean(sys) {
			t.Errorf("Homogen-LP mean %.3f not the slowest vs %s", f10.ColMean(SysLP), sys)
		}
	}
	if f10.ColMean(SysMOCA) >= f10.ColMean(SysHeterApp) {
		t.Errorf("MOCA access time %.3f not below Heter-App %.3f\n%s",
			f10.ColMean(SysMOCA), f10.ColMean(SysHeterApp), f10.Table())
	}
	if f10.ColMean(SysMOCA) >= 1 {
		t.Errorf("MOCA mean access time %.3f not below DDR3", f10.ColMean(SysMOCA))
	}

	// Fig. 11 shapes: MOCA is the most energy-efficient heterogeneous
	// option and beats Heter-App clearly ("33%"); Homogen-RL is the least
	// efficient system multicore.
	if f11.ColMean(SysMOCA) >= f11.ColMean(SysHeterApp) {
		t.Errorf("MOCA memory EDP %.3f not below Heter-App %.3f\n%s",
			f11.ColMean(SysMOCA), f11.ColMean(SysHeterApp), f11.Table())
	}
	for _, sys := range []string{SysDDR3, SysHBM, SysLP, SysMOCA, SysHeterApp} {
		if f11.ColMean(SysRL) <= f11.ColMean(sys) {
			t.Errorf("Homogen-RL EDP %.3f not the worst vs %s %.3f\n%s",
				f11.ColMean(SysRL), sys, f11.ColMean(sys), f11.Table())
		}
	}

	// Figs. 12-13: system-level, MOCA within the paper's "10% over
	// Heter-App" story — at minimum not worse.
	if f12.ColMean(SysMOCA) > f12.ColMean(SysHeterApp)*1.02 {
		t.Errorf("MOCA system runtime %.3f worse than Heter-App %.3f\n%s",
			f12.ColMean(SysMOCA), f12.ColMean(SysHeterApp), f12.Table())
	}
	if f13.ColMean(SysMOCA) > f13.ColMean(SysHeterApp)*1.02 {
		t.Errorf("MOCA system EDP %.3f worse than Heter-App %.3f\n%s",
			f13.ColMean(SysMOCA), f13.ColMean(SysHeterApp), f13.Table())
	}
}

func TestFig14And15ConfigSweep(t *testing.T) {
	skipHeavy(t, "config sweep")
	r := multiRunner()
	f14, err := r.Fig14()
	if err != nil {
		t.Fatal(err)
	}
	f15, err := r.Fig15()
	if err != nil {
		t.Fatal(err)
	}

	// Section VI-C: under config1 (scarce RLDRAM) MOCA wins on
	// performance for memory-intensive sets; under config3 (ample
	// RLDRAM) Heter-App catches up or wins. Energy efficiency favors
	// MOCA across configurations.
	wins := 0
	for _, mix := range f14.Rows {
		if f14.Get(mix, "config1/MOCA") <= 1.0 {
			wins++
		}
	}
	if wins < 3 {
		t.Errorf("MOCA faster than Heter-App on only %d/5 mixes under config1\n%s", wins, f14.Table())
	}
	// Heter-App's relative performance improves from config1 to config3.
	c1 := f14.ColMean("config1/MOCA")
	c3 := f14.ColMean("config3/MOCA")
	if c3 < c1*0.9 {
		t.Errorf("MOCA's edge should shrink with larger RLDRAM: config1 %.3f, config3 %.3f\n%s",
			c1, c3, f14.Table())
	}
	for _, cfg := range []string{"config1", "config2", "config3"} {
		if f15.ColMean(cfg+"/MOCA") >= 1.02 {
			t.Errorf("MOCA mean memory EDP %.3f not better than Heter-App under %s\n%s",
				f15.ColMean(cfg+"/MOCA"), cfg, f15.Table())
		}
	}
}

func TestHeadlineDirections(t *testing.T) {
	skipHeavy(t, "headline needs both sweeps")
	r := multiRunner()
	h, table, err := r.Headline()
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, v, min float64) {
		if v < min {
			t.Errorf("%s = %.0f%%, want >= %.0f%% (paper direction)\n%s", name, v*100, min*100, table)
		}
	}
	check("single access time vs DDR3", h.SingleAccessTimeVsDDR3, 0.25)
	check("single mem EDP vs DDR3", h.SingleMemEDPVsDDR3, 0.15)
	check("single access time vs Heter-App", h.SingleAccessTimeVsApp, 0.05)
	check("single mem EDP vs Heter-App", h.SingleMemEDPVsApp, 0.05)
	check("multi mem EDP vs DDR3 (best)", h.MultiMemEDPVsDDR3Best, 0.15)
	check("multi access time vs Heter-App", h.MultiAccessTimeVsApp, 0.05)
	check("multi mem EDP vs Heter-App", h.MultiMemEDPVsApp, 0.05)
	check("system perf vs Heter-App", h.SystemPerfVsApp, 0.0)
	check("system EDP vs Heter-App", h.SystemEDPVsApp, 0.0)
}
