package exp

import (
	"fmt"

	"moca/internal/classify"
	"moca/internal/cpu"
	"moca/internal/event"
	"moca/internal/mem"
	"moca/internal/stats"
	"moca/internal/workload"
)

// Table1 echoes the simulated microarchitecture (paper Table I).
func Table1() *stats.Table {
	c := cpu.DefaultConfig()
	t := stats.NewTable("Table I: microarchitectural details of the simulated system", "component", "parameters")
	t.AddRow("Execution core", fmt.Sprintf("%d GHz x86-like OoO, width %d, %d-entry ROB, %d-entry LQ",
		int(event.Second/c.Cycle/1e9), c.Width, c.ROBSize, c.LQSize))
	t.AddRow("L1 caches", "64KB split I/D, 2-way, 2 cycles, 64B lines, 4 MSHR")
	t.AddRow("L2 (LLC)", "unified 512KB, 16-way, 20 cycles, 64B lines, 20 MSHR")
	t.AddRow("Memory controller", "RoRaBaChCo mapping, 4 channels, FR-FCFS scheduling")
	return t
}

// Table2 echoes the memory module parameters (paper Table II).
func Table2() *stats.Table {
	t := stats.NewTable("Table II: timing and architectural parameters of memory modules",
		"parameter", "DDR3", "HBM", "RLDRAM", "LPDDR2")
	devs := []mem.DeviceParams{mem.Preset(mem.DDR3), mem.Preset(mem.HBM), mem.Preset(mem.RLDRAM), mem.Preset(mem.LPDDR2)}
	row := func(name string, f func(mem.DeviceParams) string) {
		cells := []string{name}
		for _, d := range devs {
			cells = append(cells, f(d))
		}
		t.AddRow(cells...)
	}
	ns := func(ps event.Time) string { return fmt.Sprintf("%.2f", float64(ps)/1000) }
	row("Burst length", func(d mem.DeviceParams) string { return fmt.Sprintf("%d", d.Timing.BurstLength) })
	row("# of banks", func(d mem.DeviceParams) string { return fmt.Sprintf("%d", d.Geometry.Banks) })
	row("Row buffer size", func(d mem.DeviceParams) string { return fmt.Sprintf("%dB", d.Geometry.RowBufferBytes) })
	row("# of rows", func(d mem.DeviceParams) string { return fmt.Sprintf("%dK", d.Geometry.Rows/1024) })
	row("Device width", func(d mem.DeviceParams) string { return fmt.Sprintf("%d", d.Geometry.DeviceWidthBits) })
	row("tCK (ns)", func(d mem.DeviceParams) string { return ns(d.Timing.TCK) })
	row("tRAS (ns)", func(d mem.DeviceParams) string { return ns(d.Timing.TRAS) })
	row("tRCD (ns)", func(d mem.DeviceParams) string { return ns(d.Timing.TRCD) })
	row("tRC (ns)", func(d mem.DeviceParams) string { return ns(d.Timing.TRC) })
	row("tRFC (ns)", func(d mem.DeviceParams) string { return ns(d.Timing.TRFC) })
	row("Standby power (mW/GB)", func(d mem.DeviceParams) string { return stats.F(d.Power.StandbyMilliwattPerGB) })
	row("Active power (W/GB)", func(d mem.DeviceParams) string { return stats.F(d.Power.ActiveWattPerGB) })
	t.AddNote("RLDRAM power is 5x DDR3 per the paper's text; LPDDR2 standby is active-standby; see DESIGN.md")
	return t
}

// Table3Expected is the paper's Table III classification.
func Table3Expected() map[string]classify.Class {
	return map[string]classify.Class{
		"mcf": classify.LatencySensitive, "milc": classify.LatencySensitive,
		"libquantum": classify.LatencySensitive, "disparity": classify.LatencySensitive,
		"mser": classify.BandwidthSensitive, "lbm": classify.BandwidthSensitive,
		"tracking": classify.BandwidthSensitive,
		"gcc":      classify.NonIntensive, "sift": classify.NonIntensive,
		"stitch": classify.NonIntensive,
	}
}

// Table3 reproduces Table III: measured application-level classification,
// side by side with the paper's.
func (r *Runner) Table3() (map[string]classify.Class, *stats.Table, error) {
	got := map[string]classify.Class{}
	t := stats.NewTable("Table III: benchmark classification", "app", "measured", "paper")
	want := Table3Expected()
	for _, name := range workload.Names() {
		ins, err := r.Instrument(name)
		if err != nil {
			return nil, nil, err
		}
		got[name] = ins.AppClass
		t.AddRow(name, ins.AppClass.String(), want[name].String())
	}
	return got, t, nil
}

// Headline collects the paper's headline comparisons.
type Headline struct {
	// Single-core (Section VI-A; means over the suite).
	SingleAccessTimeVsDDR3 float64 // paper: -51%
	SingleMemEDPVsDDR3     float64 // paper: -43%
	SingleAccessTimeVsApp  float64 // paper: -14%
	SingleMemEDPVsApp      float64 // paper: -15%
	// Multi-program (Section VI-B; means over the mixes, max for "up to").
	MultiMemEDPVsDDR3Best float64 // paper: up to -63%
	MultiAccessTimeVsApp  float64 // paper: -26%
	MultiMemEDPVsApp      float64 // paper: -33%
	SystemPerfVsApp       float64 // paper: ~-10%
	SystemEDPVsApp        float64 // paper: ~-10%
}

// reduction returns the fractional reduction of v versus base (positive =
// improvement).
func reduction(v, base float64) float64 {
	if base == 0 {
		return 0
	}
	return 1 - v/base
}

// Headline computes the table of headline numbers from the single- and
// multi-program grids.
func (r *Runner) Headline() (Headline, *stats.Table, error) {
	perf1, edp1, err := r.memGrids()
	if err != nil {
		return Headline{}, nil, err
	}
	memPerf, memEDP, sysPerf, sysEDP, err := r.multiGrids()
	if err != nil {
		return Headline{}, nil, err
	}

	var h Headline
	h.SingleAccessTimeVsDDR3 = reduction(perf1.Normalize(SysDDR3).ColMean(SysMOCA), 1)
	h.SingleMemEDPVsDDR3 = reduction(edp1.Normalize(SysDDR3).ColMean(SysMOCA), 1)
	h.SingleAccessTimeVsApp = reduction(perf1.Normalize(SysHeterApp).ColMean(SysMOCA), 1)
	h.SingleMemEDPVsApp = reduction(edp1.Normalize(SysHeterApp).ColMean(SysMOCA), 1)

	nEDP := memEDP.Normalize(SysDDR3)
	best := 0.0
	for _, mix := range nEDP.Rows {
		if red := reduction(nEDP.Get(mix, SysMOCA), 1); red > best {
			best = red
		}
	}
	h.MultiMemEDPVsDDR3Best = best
	h.MultiAccessTimeVsApp = reduction(memPerf.Normalize(SysHeterApp).ColMean(SysMOCA), 1)
	h.MultiMemEDPVsApp = reduction(memEDP.Normalize(SysHeterApp).ColMean(SysMOCA), 1)
	h.SystemPerfVsApp = reduction(sysPerf.Normalize(SysHeterApp).ColMean(SysMOCA), 1)
	h.SystemEDPVsApp = reduction(sysEDP.Normalize(SysHeterApp).ColMean(SysMOCA), 1)

	pct := func(v float64) string { return fmt.Sprintf("%.0f%%", v*100) }
	t := stats.NewTable("Headline results: MOCA improvements", "metric", "measured", "paper")
	t.AddRow("single-core memory access time vs Homogen-DDR3", pct(h.SingleAccessTimeVsDDR3), "51%")
	t.AddRow("single-core memory EDP vs Homogen-DDR3", pct(h.SingleMemEDPVsDDR3), "43%")
	t.AddRow("single-core memory access time vs Heter-App", pct(h.SingleAccessTimeVsApp), "14%")
	t.AddRow("single-core memory EDP vs Heter-App", pct(h.SingleMemEDPVsApp), "15%")
	t.AddRow("multi-program memory EDP vs Homogen-DDR3 (best)", pct(h.MultiMemEDPVsDDR3Best), "63%")
	t.AddRow("multi-program memory access time vs Heter-App", pct(h.MultiAccessTimeVsApp), "26%")
	t.AddRow("multi-program memory EDP vs Heter-App", pct(h.MultiMemEDPVsApp), "33%")
	t.AddRow("multi-program system performance vs Heter-App", pct(h.SystemPerfVsApp), "10%")
	t.AddRow("multi-program system EDP vs Heter-App", pct(h.SystemEDPVsApp), "10%")
	return h, t, nil
}
