package exp

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"moca/internal/cache"
	"moca/internal/classify"
	"moca/internal/core"
	"moca/internal/obs"
	"moca/internal/sim"
	"moca/internal/workload"
)

// Cache keys content-address work by everything that determines its
// outcome, serialized as canonical JSON (encoding/json sorts map keys, so
// identical inputs always produce identical bytes). The simulator version
// salt is deliberately NOT part of the key: it lives in the on-disk
// envelope instead, so a salt bump lands on the same file and evicts the
// stale entry rather than stranding it forever (see RunCache).

// resultKey is the canonical identity of one measured simulation: the
// fully resolved system configuration (minus presentation-only fields),
// the per-core process specs carrying the instrumentation fingerprint
// (ClassMap + AppClass), and the windows.
type resultKey struct {
	Kind    string         `json:"kind"` // "result"
	Cfg     sim.Config     `json:"cfg"`
	Procs   []sim.ProcSpec `json:"procs"`
	Measure uint64         `json:"measure"`
	Window  uint64         `json:"profile_window"`
	// Metrics records whether the run carries an obs snapshot: a cached
	// metrics-off result must not satisfy a metrics-on request.
	Metrics bool `json:"metrics"`
}

// ResultCacheKey returns the canonical persistent-cache key for one
// simulation. Presentation-only fields (Config.Name) and non-data fields
// (Config.Obs sinks, ProcSpec.Stream) are excluded; everything else that
// shapes the run — modules, policy, chains, thresholds, scheduler knobs,
// app specs, class maps, windows — is included.
func ResultCacheKey(cfg sim.Config, procs []sim.ProcSpec, measure, profileWindow uint64) (string, error) {
	kc := cfg
	kc.Name = ""
	kc.Obs = obs.Options{}
	// Shards is an execution strategy, not a model parameter: results are
	// byte-identical across shard counts (internal/sim/difftest proves it),
	// so a run cached at one shard count serves every other.
	kc.Shards = 0
	// Same for the fast path: fast and slow execution produce the same
	// bytes (the golden suite and difftest fastpath axis prove it), so a
	// slow-path run may serve a fast-path request and vice versa.
	kc.NoFastpath = false
	kps := make([]sim.ProcSpec, len(procs))
	for i, p := range procs {
		p.Stream = nil
		kps[i] = p
	}
	data, err := json.Marshal(resultKey{
		Kind:    "result",
		Cfg:     kc,
		Procs:   kps,
		Measure: measure,
		Window:  profileWindow,
		Metrics: cfg.Obs.Metrics,
	})
	if err != nil {
		return "", fmt.Errorf("exp: serializing result cache key: %w", err)
	}
	return string(data), nil
}

// profileKey is the canonical identity of one offline profiling run: the
// application spec plus every Framework knob that shapes the profile.
type profileKey struct {
	Kind        string               `json:"kind"` // "profile"
	App         workload.AppSpec     `json:"app"`
	ObjectThr   classify.Thresholds  `json:"object_thresholds"`
	AppThr      classify.Thresholds  `json:"app_thresholds"`
	NamingDepth int                  `json:"naming_depth"`
	Window      uint64               `json:"profile_window"`
	Modules     []sim.ModuleSpec     `json:"modules"`
	Prefetch    cache.PrefetchConfig `json:"prefetch"`
}

// profileCacheKey returns the canonical persistent-cache key for one
// application's offline profile under the framework's settings.
func profileCacheKey(fw *core.Framework, spec workload.AppSpec) (string, error) {
	data, err := json.Marshal(profileKey{
		Kind:        "profile",
		App:         spec,
		ObjectThr:   fw.ObjectThresholds,
		AppThr:      fw.AppThresholds,
		NamingDepth: fw.NamingDepth,
		Window:      fw.ProfileWindow,
		Modules:     fw.ProfileModules,
		Prefetch:    fw.Prefetch,
	})
	if err != nil {
		return "", fmt.Errorf("exp: serializing profile cache key: %w", err)
	}
	return string(data), nil
}

// hashKey content-addresses a canonical key for use as a filename.
func hashKey(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}
