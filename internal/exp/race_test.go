package exp

import (
	"testing"

	"moca/internal/obs"
	"moca/internal/sim"
	"moca/internal/workload"
)

// skipHeavy skips the multi-minute figure sweeps in -short mode and under
// the race detector, whose ~10x slowdown would blow the go test timeout.
// TestRunnerConcurrentObservability below keeps race coverage of the
// runner's concurrency; the sweeps add only (deterministic) volume.
func skipHeavy(t *testing.T, why string) {
	t.Helper()
	if testing.Short() {
		t.Skip(why)
	}
	if raceEnabled {
		t.Skip("heavy sweep under the race detector: " + why)
	}
}

// TestRunnerConcurrentObservability drives the runner's parallel warmers
// with observability fully enabled: per-run registries plus one shared
// trace sink. Under `go test -race` this exercises every instrument and
// the sink from concurrent simulations.
func TestRunnerConcurrentObservability(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrent multi-run sweep in -short mode")
	}
	tr := obs.NewTrace(4096)
	r := NewRunner()
	r.Measure = 40_000
	r.FW.ProfileWindow = 40_000
	r.Parallelism = 4
	r.Obs = obs.Options{Metrics: true, Trace: tr}

	systems := []SystemDef{
		StandardSystems()[0], // Homogen-DDR3
		StandardSystems()[5], // MOCA
	}
	apps := []string{"mcf", "gcc", "sift"}
	if err := r.warmSingles(systems, apps); err != nil {
		t.Fatal(err)
	}
	mix, ok := workload.MixByName("2L1B1N")
	if !ok {
		t.Fatal("mix 2L1B1N missing")
	}
	if err := r.warmMixes(systems, []workload.Mix{mix}); err != nil {
		t.Fatal(err)
	}

	results := r.Results()
	wantRuns := len(systems)*len(apps) + len(systems)
	if len(results) != wantRuns {
		t.Fatalf("cached %d results, want %d", len(results), wantRuns)
	}
	var snaps []*sim.Result
	for key, res := range results {
		if res.Obs == nil {
			t.Errorf("%s: no obs snapshot despite metrics enabled", key)
			continue
		}
		if res.Obs.Counters["event.executed"] == 0 {
			t.Errorf("%s: event.executed = 0", key)
		}
		if res.Obs.Counters["mem.reads"]+res.Obs.Counters["mem.writes"] == 0 {
			t.Errorf("%s: no memory traffic counted", key)
		}
		snaps = append(snaps, res)
	}
	// Per-run registries must be independent: the total is the sum.
	var sum, total uint64
	for _, res := range snaps {
		sum += res.Obs.Counters["event.executed"]
	}
	merged := obs.Merge(func() []*obs.Snapshot {
		var s []*obs.Snapshot
		for _, res := range snaps {
			s = append(s, res.Obs)
		}
		return s
	}()...)
	total = merged.Counters["event.executed"]
	if sum != total {
		t.Errorf("merged event.executed %d != sum of runs %d", total, sum)
	}
	if tr.Len() == 0 {
		t.Error("shared trace sink received no events")
	}
}
