package exp

import (
	"fmt"

	"moca/internal/classify"
	"moca/internal/mem"
	"moca/internal/sim"
	"moca/internal/stats"
	"moca/internal/workload"
)

// ExtensionPCM demonstrates the framework beyond the paper's Table II: a
// DRAM + PCM tiered system in the style of the data-tiering related work
// the paper positions itself against (Section VII; Dulloor et al.). PCM
// offers cheap capacity with slow reads and much slower writes; the
// comparison shows object-level classification carrying over unchanged —
// hot objects tier into the small DRAM, cold objects live in PCM.
//
// Variants: everything in PCM (capacity-only baseline), first-touch
// DRAM-then-PCM (naive tiering), and MOCA object-level tiering. The
// workload is a 4-core mix whose hot data far exceeds the DRAM tier, so
// *which* pages win DRAM decides performance.
func (r *Runner) ExtensionPCM(mixName string) (*stats.Table, error) {
	if mixName == "" {
		mixName = "2B2N"
	}
	mix, ok := workload.MixByName(mixName)
	if !ok {
		return nil, fmt.Errorf("exp: unknown mix %q", mixName)
	}

	// DRAM is sized so the mix's hot (L/B) objects just fit — but only
	// if placement spends DRAM on them rather than on whatever faults
	// first (the N apps' pages and the cold input buffers).
	const (
		mb       = 1 << 20
		dramSize = 12 * mb
		pcmSize  = 20 * mb
	)
	tieringChains := map[classify.Class][]mem.Kind{
		classify.LatencySensitive:   {mem.DDR3, mem.PCM},
		classify.BandwidthSensitive: {mem.DDR3, mem.PCM},
		classify.NonIntensive:       {mem.PCM, mem.DDR3},
	}
	variants := []SystemDef{
		{
			Name: "all-PCM",
			Modules: []sim.ModuleSpec{
				{Kind: mem.PCM, CapacityBytes: pcmSize + dramSize, Channels: 1},
			},
			Policy: sim.PolicyFixed,
		},
		{
			Name: "first-touch-tier",
			Modules: []sim.ModuleSpec{
				{Kind: mem.DDR3, CapacityBytes: dramSize, Channels: 1},
				{Kind: mem.PCM, CapacityBytes: pcmSize, Channels: 1},
			},
			Policy: sim.PolicyFixed,
		},
		{
			Name: "moca-tier",
			Modules: []sim.ModuleSpec{
				{Kind: mem.DDR3, CapacityBytes: dramSize, Channels: 1},
				{Kind: mem.PCM, CapacityBytes: pcmSize, Channels: 1},
			},
			Policy: sim.PolicyMOCA,
			Chains: tieringChains,
		},
	}

	t := stats.NewTable(
		fmt.Sprintf("Extension: DRAM+PCM data tiering on %s (beyond the paper; Section VII related work)", mixName),
		"variant", "mem time (ns)", "memory EDP", "DRAM pages", "PCM pages", "PCM writes")
	report := func(name string, res *sim.Result) {
		pages := res.PagesOnKind()
		var pcmWrites uint64
		for _, ch := range res.Channels {
			if ch.Kind == mem.PCM {
				pcmWrites += ch.Stats.Writes
			}
		}
		t.AddRow(name,
			stats.F(float64(res.AvgMemAccessTime())/1000),
			fmt.Sprintf("%.3e", res.MemEDP()),
			fmt.Sprintf("%d", pages[mem.DDR3]),
			fmt.Sprintf("%d", pages[mem.PCM]),
			fmt.Sprintf("%d", pcmWrites))
	}
	for _, def := range variants {
		res, err := r.RunMix(def, mix)
		if err != nil {
			return nil, err
		}
		report(def.Name, res)
	}

	// A fourth variant: write-aware tiering (TieringClassMap) — NVM gets
	// read-dominated data only, the Dulloor-style refinement.
	const maxWriteRatio = 0.125
	var procs []sim.ProcSpec
	for _, app := range mix.Apps {
		ins, err := r.Instrument(app)
		if err != nil {
			return nil, err
		}
		p := ins.Proc(sim.PolicyMOCA, workload.Ref)
		p.Classes = r.FW.TieringClassMap(ins.Profile, maxWriteRatio)
		procs = append(procs, p)
	}
	cfg := sim.DefaultConfig("moca-tier-write-aware", variants[2].Modules, sim.PolicyMOCA)
	cfg.Chains = tieringChains
	sys, err := sim.New(cfg, procs)
	if err != nil {
		return nil, err
	}
	res, err := sys.Run(sys.SuggestedWarmup(), r.Measure)
	if err != nil {
		return nil, err
	}
	report("moca-tier-write-aware", res)

	t.AddNote("moca-tier routes L/B objects to DRAM and N objects (plus stack/code) to PCM;")
	t.AddNote("the write-aware variant sends read-dominated streams to PCM too, but never writes (write ratio > 12.5% stays in DRAM)")
	return t, nil
}

// ExtensionKNL models the Knights Landing memory organization the paper
// cites as motivation (Section II: on-package HBM "flat mode" plus
// off-chip DDR4; in real KNL the *programmer* chooses what lives in
// MCDRAM via memkind). The comparison: everything in DDR4, application-
// level HBM placement (what naive memkind usage gives), and MOCA's
// object-level placement — automatic, no annotations.
func (r *Runner) ExtensionKNL(mixName string) (*stats.Table, error) {
	if mixName == "" {
		mixName = "2L1B1N"
	}
	mix, ok := workload.MixByName(mixName)
	if !ok {
		return nil, fmt.Errorf("exp: unknown mix %q", mixName)
	}
	const mb = 1 << 20
	knlModules := []sim.ModuleSpec{
		{Kind: mem.HBM, CapacityBytes: 12 * mb, Channels: 1},
		{Kind: mem.DDR4, CapacityBytes: 24 * mb, Channels: 2},
	}
	knlChains := map[classify.Class][]mem.Kind{
		classify.LatencySensitive:   {mem.HBM, mem.DDR4},
		classify.BandwidthSensitive: {mem.HBM, mem.DDR4},
		classify.NonIntensive:       {mem.DDR4, mem.HBM},
	}
	variants := []SystemDef{
		{
			Name: "ddr4-only",
			Modules: []sim.ModuleSpec{
				{Kind: mem.DDR4, CapacityBytes: 36 * mb, Channels: 3},
			},
			Policy: sim.PolicyFixed,
		},
		{Name: "knl-app-level", Modules: knlModules, Policy: sim.PolicyAppLevel, Chains: knlChains},
		{Name: "knl-moca", Modules: knlModules, Policy: sim.PolicyMOCA, Chains: knlChains},
	}
	t := stats.NewTable(
		fmt.Sprintf("Extension: KNL-style HBM+DDR4 flat mode on %s (Section II motivation)", mixName),
		"variant", "mem time (ns)", "memory EDP", "HBM pages", "DDR4 pages")
	for _, def := range variants {
		res, err := r.RunMix(def, mix)
		if err != nil {
			return nil, err
		}
		pages := res.PagesOnKind()
		t.AddRow(def.Name,
			stats.F(float64(res.AvgMemAccessTime())/1000),
			fmt.Sprintf("%.3e", res.MemEDP()),
			fmt.Sprintf("%d", pages[mem.HBM]),
			fmt.Sprintf("%d", pages[mem.DDR4]))
	}
	t.AddNote("knl-moca fills the scarce on-package HBM with profiled hot objects automatically,")
	t.AddNote("replacing KNL's manual memkind annotations")
	return t, nil
}

// ExtensionPhases probes MOCA's stable-behavior assumption (Section III:
// "profiling-based approaches work well for applications with fairly
// similar behavior"): a two-phase application alternates its hot object.
// MOCA's static placement fits whichever phase dominated profiling;
// dynamic migration re-adapts each phase at its usual costs.
func (r *Runner) ExtensionPhases() (*stats.Table, error) {
	const mb = 1 << 20
	phased := workload.AppSpec{
		Name:             "phaseflip",
		ComputePerMemory: 8,
		ComputeJitter:    3,
		Seed:             0x70686173,
		Objects: []workload.ObjectSpec{
			{Label: "front_graph", Site: 0x40d100, SizeBytes: 3 * mb, Pattern: workload.Chase, Weight: 0.40, WriteFrac: 0.05},
			{Label: "back_graph", Site: 0x40d110, SizeBytes: 3 * mb, Pattern: workload.Chase, Weight: 0.005, WriteFrac: 0.05},
		},
		StackWeight: 0.12, CodeWeight: 0.05,
		Phases: []workload.PhaseSpec{
			{Items: 45_000, Weights: map[string]float64{"front_graph": 0.40, "back_graph": 0.005}},
			{Items: 45_000, Weights: map[string]float64{"front_graph": 0.005, "back_graph": 0.40}},
		},
	}
	ins, err := r.FW.Instrument(phased)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Extension: phase-changing application (Section III's stability assumption)",
		"policy", "mem access time (ns)", "memory EDP", "promotions")
	for _, def := range []SystemDef{
		{Name: "Heter-App", Modules: sim.Heterogeneous(sim.Config1), Policy: sim.PolicyAppLevel},
		{Name: "MOCA", Modules: sim.Heterogeneous(sim.Config1), Policy: sim.PolicyMOCA},
		{Name: "Migration", Modules: sim.Heterogeneous(sim.Config1), Policy: sim.PolicyMigrate},
	} {
		cfg := sim.DefaultConfig(def.Name, def.Modules, def.Policy)
		sys, err := sim.New(cfg, []sim.ProcSpec{ins.Proc(def.Policy, workload.Ref)})
		if err != nil {
			return nil, err
		}
		res, err := sys.Run(sys.SuggestedWarmup(), 4*r.Measure)
		if err != nil {
			return nil, err
		}
		t.AddRow(def.Name,
			stats.F(float64(res.AvgMemAccessTime())/1000),
			fmt.Sprintf("%.3e", res.MemEDP()),
			fmt.Sprintf("%d", res.Migration.Promotions))
	}
	t.AddNote("the hot object flips every 45k stream items and profiling sees only the first phase,")
	t.AddNote("so MOCA types back_graph non-intensive and strands it in LPDDR for the second phase:")
	t.AddNote("its usual edge over Heter-App disappears — the paper's stable-behavior caveat, quantified")
	return t, nil
}
