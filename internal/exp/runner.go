// Package exp is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (Section VI) from simulation. Each
// FigN/TableN function returns both the underlying data and a rendered
// text table; cmd/moca-bench and the repository benchmarks drive them.
package exp

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"moca/internal/classify"
	"moca/internal/core"
	"moca/internal/mem"
	"moca/internal/obs"
	"moca/internal/sim"
	"moca/internal/workload"
)

// SystemDef names one memory system under test.
type SystemDef struct {
	Name    string
	Modules []sim.ModuleSpec
	Policy  sim.PolicyKind
	Chains  map[classify.Class][]mem.Kind // nil = paper defaults
}

// The six systems of Figs. 8-13, in the paper's presentation order.
const (
	SysDDR3     = "Homogen-DDR3"
	SysRL       = "Homogen-RL"
	SysHBM      = "Homogen-HBM"
	SysLP       = "Homogen-LP"
	SysHeterApp = "Heter-App"
	SysMOCA     = "MOCA"
)

// StandardSystems returns the six memory systems every main experiment
// compares: four homogeneous baselines plus the heterogeneous system
// (config1) under application-level and MOCA placement.
func StandardSystems() []SystemDef {
	return []SystemDef{
		{Name: SysDDR3, Modules: sim.Homogeneous(mem.DDR3), Policy: sim.PolicyFixed},
		{Name: SysRL, Modules: sim.Homogeneous(mem.RLDRAM), Policy: sim.PolicyFixed},
		{Name: SysHBM, Modules: sim.Homogeneous(mem.HBM), Policy: sim.PolicyFixed},
		{Name: SysLP, Modules: sim.Homogeneous(mem.LPDDR2), Policy: sim.PolicyFixed},
		{Name: SysHeterApp, Modules: sim.Heterogeneous(sim.Config1), Policy: sim.PolicyAppLevel},
		{Name: SysMOCA, Modules: sim.Heterogeneous(sim.Config1), Policy: sim.PolicyMOCA},
	}
}

// SystemNames lists the standard system names in order.
func SystemNames() []string {
	return []string{SysDDR3, SysRL, SysHBM, SysLP, SysHeterApp, SysMOCA}
}

// newSystem is sim.New behind a seam so tests can count or fault-inject
// the simulations the runner actually executes (cache hits never reach it).
var newSystem = sim.New

// RunnerStats counts the work a Runner performed versus reused.
type RunnerStats struct {
	// Simulated counts measured-window simulations actually executed.
	Simulated uint64
	// Profiled counts offline profiling runs actually executed.
	Profiled uint64
	// MemoryHits counts results served from the in-memory memo (including
	// callers that waited on another caller's in-flight run).
	MemoryHits uint64
	// DiskHits counts results loaded from the persistent cache.
	DiskHits uint64
	// ProfileDiskHits counts profiles loaded from the persistent cache.
	ProfileDiskHits uint64
}

// flight is one in-progress (or completed) deduplicated call: waiters
// block on done and then read res/err. Exactly one goroutine executes the
// work per key at a time; a failed flight is forgotten so the key can be
// retried.
//
// The flight runs under its own context (canceled via cancel), detached
// from any individual caller: waiters holds the number of callers still
// joined (guarded by Runner.mu), and a caller whose context fires merely
// detaches — only the last departing waiter cancels the shared work, so
// one impatient client never kills a simulation others are waiting on.
type flight struct {
	done    chan struct{}
	res     *sim.Result
	err     error
	waiters int                // callers still joined; guarded by Runner.mu
	cancel  context.CancelFunc // stops the flight's simulation
}

// instrFlight is the profiling pipeline's equivalent of flight.
type instrFlight struct {
	done chan struct{}
	ins  core.Instrumentation
	err  error
}

// Runner executes simulations with caching (profiles and results are
// reused across figures, as Figs. 10-13 share the same runs) and bounded
// parallelism across independent runs. Runs are deduplicated: concurrent
// requests for the same key share one simulation (singleflight), and an
// optional persistent cache (Cache) spills results and profiles to disk so
// an interrupted sweep resumes from its completed runs.
type Runner struct {
	// FW is the MOCA pipeline used for profiling runs.
	FW *core.Framework
	// Measure is the measured instruction quota per core per run.
	Measure uint64
	// Parallelism bounds concurrent simulations. Zero derives a default
	// from NumCPU and Shards so runs x shards never oversubscribes the
	// machine (see effectiveParallelism).
	Parallelism int
	// Shards is the worker-goroutine count of each simulation (sim.Config
	// Shards; <= 1: serial). Excluded from cache keys: results are
	// byte-identical across shard counts.
	Shards int
	// NoFastpath disables the inline-hit / compute-batch fast path
	// (sim.Config.NoFastpath). Like Shards it is an execution strategy
	// with byte-identical results, so it is excluded from cache keys.
	NoFastpath bool
	// Obs selects per-run observability. Each simulation builds its own
	// metrics registry, so concurrent runs never share instruments; a
	// Trace sink, if set, is shared and concurrency-safe.
	//
	// Note: a run served from the persistent cache replays its stored
	// metrics snapshot but does not re-emit trace events into the sink.
	Obs obs.Options
	// Cache, if non-nil, persists results and profiles across invocations
	// (see OpenRunCache). Nil disables the persistent layer; the
	// in-memory memoization below is always on.
	Cache *RunCache
	// Ctx, if non-nil, cancels in-flight and pending simulations when it
	// fires (the commands wire their signal context here).
	Ctx context.Context
	// OnProgress, if non-nil, receives periodic completion ticks for every
	// simulation this runner actually executes, keyed by the run's memo key
	// ("System|single/app" or "System|mix/name"). snap lazily captures the
	// live metrics snapshot at the tick's window barrier and must only be
	// called from inside the callback. Invoked on the flight goroutine, so
	// it must be fast and concurrency-safe; cache hits produce no ticks.
	// Pure observability: it never affects results or cache keys.
	OnProgress func(memoKey string, done, total uint64, snap func() *obs.Snapshot)

	mu      sync.Mutex
	instr   map[string]core.Instrumentation
	iflight map[string]*instrFlight
	results map[string]*sim.Result
	flights map[string]*flight

	simulated, profiled, memoryHits, diskHits, profileDiskHits atomic.Uint64
}

// NewRunner returns a runner with paper-default settings.
func NewRunner() *Runner {
	return &Runner{
		FW:      core.NewFramework(),
		Measure: 300_000,
	}
}

// context returns the runner's cancellation context (never nil).
func (r *Runner) context() context.Context {
	if r.Ctx != nil {
		return r.Ctx
	}
	//moca:allowctx root fallback for runners constructed without a lifecycle context (CLI tools, tests)
	return context.Background()
}

// Stats returns a snapshot of the runner's work counters.
func (r *Runner) Stats() RunnerStats {
	return RunnerStats{
		Simulated:       r.simulated.Load(),
		Profiled:        r.profiled.Load(),
		MemoryHits:      r.memoryHits.Load(),
		DiskHits:        r.diskHits.Load(),
		ProfileDiskHits: r.profileDiskHits.Load(),
	}
}

// Instrument profiles an application (once; deduplicated and cached, with
// a persistent-cache fast path) and returns its instrumentation.
func (r *Runner) Instrument(appName string) (core.Instrumentation, error) {
	return r.InstrumentCtx(r.context(), appName)
}

// InstrumentCtx is Instrument with a per-caller context: a caller whose
// ctx fires stops waiting on the shared profiling flight without
// disturbing it. Before this existed, a canceled simulation joined to a
// profiling flight sat parked until the whole profile finished, because
// Instrument only watched the runner-level context.
func (r *Runner) InstrumentCtx(ctx context.Context, appName string) (core.Instrumentation, error) {
	r.mu.Lock()
	if r.instr == nil {
		r.instr = make(map[string]core.Instrumentation)
		r.iflight = make(map[string]*instrFlight)
	}
	if ins, ok := r.instr[appName]; ok {
		r.mu.Unlock()
		return ins, nil
	}
	if f, ok := r.iflight[appName]; ok {
		r.mu.Unlock()
		select {
		case <-f.done:
			return f.ins, f.err
		case <-ctx.Done():
			return core.Instrumentation{}, ctx.Err()
		}
	}
	f := &instrFlight{done: make(chan struct{})}
	r.iflight[appName] = f
	r.mu.Unlock()

	f.ins, f.err = r.instrument(appName)

	r.mu.Lock()
	if f.err == nil {
		r.instr[appName] = f.ins
	}
	delete(r.iflight, appName) // failed flights are retryable
	r.mu.Unlock()
	close(f.done)
	return f.ins, f.err
}

// instrument executes the profiling pipeline for one app, consulting the
// persistent cache first. Panics (a profiling bug) surface as errors
// carrying the app name instead of killing the process.
func (r *Runner) instrument(appName string) (ins core.Instrumentation, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("exp: profiling %s panicked: %v\n%s", appName, p, debug.Stack())
		}
	}()
	spec, ok := workload.ByName(appName)
	if !ok {
		return core.Instrumentation{}, fmt.Errorf("exp: unknown app %q", appName)
	}
	var key string
	if r.Cache != nil {
		key, err = profileCacheKey(r.FW, spec)
		if err != nil {
			return core.Instrumentation{}, err
		}
		if pr, ok := r.Cache.LoadProfile(key); ok {
			r.profileDiskHits.Add(1)
			return r.FW.InstrumentFromProfile(spec, pr), nil
		}
	}
	pr, err := r.FW.Profile(spec)
	if err != nil {
		return core.Instrumentation{}, err
	}
	r.profiled.Add(1)
	if r.Cache != nil {
		if err := r.Cache.StoreProfile(key, pr); err != nil {
			return core.Instrumentation{}, err
		}
	}
	return r.FW.InstrumentFromProfile(spec, pr), nil
}

// RunSingle simulates one application alone on the given system (cached).
func (r *Runner) RunSingle(def SystemDef, appName string) (*sim.Result, error) {
	return r.RunSingleCtx(r.context(), def, appName)
}

// RunSingleCtx is RunSingle with a per-caller context: ctx firing detaches
// this caller only, and cancels the underlying simulation iff no other
// caller is still joined to it.
func (r *Runner) RunSingleCtx(ctx context.Context, def SystemDef, appName string) (*sim.Result, error) {
	return r.run(ctx, def, "single/"+appName, []string{appName})
}

// RunMix simulates a 4-application mix on the given system (cached).
func (r *Runner) RunMix(def SystemDef, mix workload.Mix) (*sim.Result, error) {
	return r.RunMixCtx(r.context(), def, mix)
}

// RunMixCtx is RunMix with a per-caller context (see RunSingleCtx).
func (r *Runner) RunMixCtx(ctx context.Context, def SystemDef, mix workload.Mix) (*sim.Result, error) {
	return r.run(ctx, def, "mix/"+mix.Name, mix.Apps)
}

// run is the deduplicated entry point: per-key singleflight over the
// in-memory memo, backed by the persistent cache. The first caller for a
// key starts the simulation on a flight goroutine; concurrent callers join
// its flight and share the identical *sim.Result. Every caller — first or
// joined — is a reference-counted waiter: a caller whose ctx fires returns
// ctx.Err() and detaches without disturbing the flight, and only the last
// departing waiter cancels the shared simulation.
func (r *Runner) run(ctx context.Context, def SystemDef, key string, apps []string) (*sim.Result, error) {
	memoKey := def.Name + "|" + key
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r.mu.Lock()
		if r.results == nil {
			r.results = make(map[string]*sim.Result)
			r.flights = make(map[string]*flight)
		}
		if res, ok := r.results[memoKey]; ok {
			r.mu.Unlock()
			r.memoryHits.Add(1)
			return res, nil
		}
		if f, ok := r.flights[memoKey]; ok {
			if f.waiters == 0 {
				// The last waiter already detached and canceled this
				// flight; it is draining toward a context.Canceled error
				// that would be spurious for this caller, whose own ctx is
				// live. Wait for the dead flight to clear and retry the
				// key — by then it has either published a result anyway
				// (cancel raced with completion) or left the map empty for
				// a fresh flight.
				r.mu.Unlock()
				select {
				case <-f.done:
					continue
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
			f.waiters++
			r.mu.Unlock()
			return r.wait(ctx, f, true)
		}
		f := &flight{done: make(chan struct{}), waiters: 1}
		// The flight's lifetime is bound to the runner, not any one caller.
		fctx, cancel := context.WithCancel(r.context())
		f.cancel = cancel
		r.flights[memoKey] = f
		r.mu.Unlock()

		//moca:gorountracked flight lifetime is tracked by f.done; the last detaching waiter cancels it
		go r.lead(fctx, f, def, memoKey, key, apps)
		return r.wait(ctx, f, false)
	}
}

// lead executes one flight's simulation under the flight context and
// publishes the outcome to every joined waiter.
func (r *Runner) lead(fctx context.Context, f *flight, def SystemDef, memoKey, key string, apps []string) {
	res, err := r.simulate(fctx, def, memoKey, apps)
	if err != nil {
		err = fmt.Errorf("exp: %s on %s: %w", key, def.Name, err)
	}
	r.mu.Lock()
	f.res, f.err = res, err
	if err == nil {
		r.results[memoKey] = res
	}
	delete(r.flights, memoKey) // failed flights are retryable
	r.mu.Unlock()
	close(f.done)
	f.cancel() // release the flight context's resources
}

// wait blocks until the flight completes or ctx fires. On cancellation the
// waiter detaches; the last waiter out cancels the flight's simulation.
// joined callers (not the flight's originator) count as memory hits on
// success, matching the memoized-read accounting.
func (r *Runner) wait(ctx context.Context, f *flight, joined bool) (*sim.Result, error) {
	select {
	case <-f.done:
		if joined && f.err == nil {
			r.memoryHits.Add(1)
		}
		return f.res, f.err
	case <-ctx.Done():
		r.mu.Lock()
		f.waiters--
		if f.waiters == 0 {
			// Cancel under the lock: a new caller joining the flight is
			// serialized against this decrement, so it either raised the
			// count first (no cancel) or joins an already-canceled flight
			// whose error is retryable.
			f.cancel()
		}
		r.mu.Unlock()
		return nil, ctx.Err()
	}
}

// simulate executes (or loads from the persistent cache) one simulation.
// Panics in the simulator surface as errors carrying the run's key.
func (r *Runner) simulate(ctx context.Context, def SystemDef, memoKey string, apps []string) (res *sim.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("run %q panicked: %v\n%s", memoKey, p, debug.Stack())
		}
	}()

	var procs []sim.ProcSpec
	for _, app := range apps {
		ins, err := r.InstrumentCtx(ctx, app)
		if err != nil {
			return nil, err
		}
		procs = append(procs, ins.Proc(def.Policy, workload.Ref))
	}
	cfg := sim.DefaultConfig(def.Name, def.Modules, def.Policy)
	cfg.Chains = def.Chains
	cfg.Obs = r.Obs
	cfg.Shards = r.Shards
	cfg.NoFastpath = r.NoFastpath

	var cacheKey string
	if r.Cache != nil {
		cacheKey, err = ResultCacheKey(cfg, procs, r.Measure, r.FW.ProfileWindow)
		if err != nil {
			return nil, err
		}
		if cached, ok := r.Cache.LoadResult(cacheKey); ok {
			cached.Name = def.Name // presentational; excluded from the key
			r.diskHits.Add(1)
			return cached, nil
		}
	}

	var sys *sim.System
	if r.OnProgress != nil {
		cfg.Progress = func(done, total uint64) {
			r.OnProgress(memoKey, done, total, sys.ObsSnapshot)
		}
	}
	sys, err = newSystem(cfg, procs)
	if err != nil {
		return nil, err
	}
	res, err = sys.RunContext(ctx, sys.SuggestedWarmup(), r.Measure)
	if err != nil {
		return nil, err
	}
	r.simulated.Add(1)
	if r.Cache != nil {
		// Spill immediately so a later crash resumes from this run.
		if err := r.Cache.StoreResult(cacheKey, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Results returns a copy of the result cache, keyed "system|single/app"
// or "system|mix/name" (the metrics reporters aggregate these per system).
func (r *Runner) Results() map[string]*sim.Result {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]*sim.Result, len(r.results))
	for k, v := range r.results {
		out[k] = v
	}
	return out
}

// effectiveParallelism resolves the concurrent-simulation bound. An
// explicit Parallelism wins unchanged (the caller opted in, possibly to
// oversubscription). The default divides the machine by the per-run shard
// count, so concurrent runs x worker goroutines stays at NumCPU instead of
// multiplying into NumCPU^2-style thrash when both knobs derive from the
// core count.
func effectiveParallelism(parallelism, shards, numCPU int) int {
	if parallelism > 0 {
		return parallelism
	}
	if shards < 1 {
		shards = 1
	}
	limit := numCPU / shards
	if limit < 1 {
		limit = 1
	}
	return limit
}

// parallel runs the tasks with bounded concurrency. After all tasks
// complete it returns the error of the first failing task in submission
// order (not completion order), so a run that fails reports the same error
// no matter how the goroutines interleave. Cancellation stops tasks that
// have not started; a panicking task becomes that task's error instead of
// killing the process.
func (r *Runner) parallel(ctx context.Context, tasks []func() error) error {
	limit := effectiveParallelism(r.Parallelism, r.Shards, runtime.NumCPU())
	if limit > len(tasks) {
		limit = len(tasks)
	}
	if limit < 1 {
		limit = 1
	}
	sem := make(chan struct{}, limit)
	errs := make([]error, len(tasks))
	var wg sync.WaitGroup
	for i, task := range tasks {
		i, task := i, task
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[i] = fmt.Errorf("exp: parallel task %d panicked: %v\n%s", i, p, debug.Stack())
				}
			}()
			// Acquire inside the goroutine: spawning never blocks. A
			// cancellation while queued skips the task entirely.
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				errs[i] = ctx.Err()
				return
			}
			defer func() { <-sem }()
			errs[i] = task()
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// warmAll pre-executes the cross product of systems and workloads in
// parallel so subsequent sequential reads hit the cache.
func (r *Runner) warmSingles(systems []SystemDef, apps []string) error {
	ctx := r.context()
	var tasks []func() error
	// Profile serially first: instrumentation is shared across systems.
	for _, app := range apps {
		if _, err := r.Instrument(app); err != nil {
			return err
		}
	}
	for _, def := range systems {
		for _, app := range apps {
			def, app := def, app
			tasks = append(tasks, func() error {
				_, err := r.run(ctx, def, "single/"+app, []string{app})
				return err
			})
		}
	}
	return r.parallel(ctx, tasks)
}

func (r *Runner) warmMixes(systems []SystemDef, mixes []workload.Mix) error {
	ctx := r.context()
	appSet := map[string]bool{}
	for _, m := range mixes {
		for _, a := range m.Apps {
			appSet[a] = true
		}
	}
	for app := range appSet {
		// Serial profiling below is deterministic per app; order across
		// apps does not matter because each profile is independent.
		if _, err := r.Instrument(app); err != nil {
			return err
		}
	}
	var tasks []func() error
	for _, def := range systems {
		for _, m := range mixes {
			def, m := def, m
			tasks = append(tasks, func() error {
				_, err := r.run(ctx, def, "mix/"+m.Name, m.Apps)
				return err
			})
		}
	}
	return r.parallel(ctx, tasks)
}
