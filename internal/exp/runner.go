// Package exp is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (Section VI) from simulation. Each
// FigN/TableN function returns both the underlying data and a rendered
// text table; cmd/moca-bench and the repository benchmarks drive them.
package exp

import (
	"fmt"
	"runtime"
	"sync"

	"moca/internal/classify"
	"moca/internal/core"
	"moca/internal/mem"
	"moca/internal/obs"
	"moca/internal/sim"
	"moca/internal/workload"
)

// SystemDef names one memory system under test.
type SystemDef struct {
	Name    string
	Modules []sim.ModuleSpec
	Policy  sim.PolicyKind
	Chains  map[classify.Class][]mem.Kind // nil = paper defaults
}

// The six systems of Figs. 8-13, in the paper's presentation order.
const (
	SysDDR3     = "Homogen-DDR3"
	SysRL       = "Homogen-RL"
	SysHBM      = "Homogen-HBM"
	SysLP       = "Homogen-LP"
	SysHeterApp = "Heter-App"
	SysMOCA     = "MOCA"
)

// StandardSystems returns the six memory systems every main experiment
// compares: four homogeneous baselines plus the heterogeneous system
// (config1) under application-level and MOCA placement.
func StandardSystems() []SystemDef {
	return []SystemDef{
		{Name: SysDDR3, Modules: sim.Homogeneous(mem.DDR3), Policy: sim.PolicyFixed},
		{Name: SysRL, Modules: sim.Homogeneous(mem.RLDRAM), Policy: sim.PolicyFixed},
		{Name: SysHBM, Modules: sim.Homogeneous(mem.HBM), Policy: sim.PolicyFixed},
		{Name: SysLP, Modules: sim.Homogeneous(mem.LPDDR2), Policy: sim.PolicyFixed},
		{Name: SysHeterApp, Modules: sim.Heterogeneous(sim.Config1), Policy: sim.PolicyAppLevel},
		{Name: SysMOCA, Modules: sim.Heterogeneous(sim.Config1), Policy: sim.PolicyMOCA},
	}
}

// SystemNames lists the standard system names in order.
func SystemNames() []string {
	return []string{SysDDR3, SysRL, SysHBM, SysLP, SysHeterApp, SysMOCA}
}

// Runner executes simulations with caching (profiles and results are
// reused across figures, as Figs. 10-13 share the same runs) and bounded
// parallelism across independent runs.
type Runner struct {
	// FW is the MOCA pipeline used for profiling runs.
	FW *core.Framework
	// Measure is the measured instruction quota per core per run.
	Measure uint64
	// Parallelism bounds concurrent simulations (default: NumCPU).
	Parallelism int
	// Obs selects per-run observability. Each simulation builds its own
	// metrics registry, so concurrent runs never share instruments; a
	// Trace sink, if set, is shared and concurrency-safe.
	Obs obs.Options

	mu      sync.Mutex
	instr   map[string]core.Instrumentation
	results map[string]*sim.Result
}

// NewRunner returns a runner with paper-default settings.
func NewRunner() *Runner {
	return &Runner{
		FW:      core.NewFramework(),
		Measure: 300_000,
	}
}

// Instrument profiles an application (once; cached) and returns its
// instrumentation.
func (r *Runner) Instrument(appName string) (core.Instrumentation, error) {
	r.mu.Lock()
	if r.instr == nil {
		r.instr = make(map[string]core.Instrumentation)
	}
	if ins, ok := r.instr[appName]; ok {
		r.mu.Unlock()
		return ins, nil
	}
	r.mu.Unlock()

	spec, ok := workload.ByName(appName)
	if !ok {
		return core.Instrumentation{}, fmt.Errorf("exp: unknown app %q", appName)
	}
	ins, err := r.FW.Instrument(spec)
	if err != nil {
		return core.Instrumentation{}, err
	}
	r.mu.Lock()
	r.instr[appName] = ins
	r.mu.Unlock()
	return ins, nil
}

// RunSingle simulates one application alone on the given system (cached).
func (r *Runner) RunSingle(def SystemDef, appName string) (*sim.Result, error) {
	return r.run(def, "single/"+appName, []string{appName})
}

// RunMix simulates a 4-application mix on the given system (cached).
func (r *Runner) RunMix(def SystemDef, mix workload.Mix) (*sim.Result, error) {
	return r.run(def, "mix/"+mix.Name, mix.Apps)
}

func (r *Runner) run(def SystemDef, key string, apps []string) (*sim.Result, error) {
	cacheKey := def.Name + "|" + key
	r.mu.Lock()
	if r.results == nil {
		r.results = make(map[string]*sim.Result)
	}
	if res, ok := r.results[cacheKey]; ok {
		r.mu.Unlock()
		return res, nil
	}
	r.mu.Unlock()

	var procs []sim.ProcSpec
	for _, app := range apps {
		ins, err := r.Instrument(app)
		if err != nil {
			return nil, err
		}
		procs = append(procs, ins.Proc(def.Policy, workload.Ref))
	}
	cfg := sim.DefaultConfig(def.Name, def.Modules, def.Policy)
	cfg.Chains = def.Chains
	cfg.Obs = r.Obs
	sys, err := sim.New(cfg, procs)
	if err != nil {
		return nil, err
	}
	res, err := sys.Run(sys.SuggestedWarmup(), r.Measure)
	if err != nil {
		return nil, fmt.Errorf("exp: %s on %s: %w", key, def.Name, err)
	}
	r.mu.Lock()
	r.results[cacheKey] = res
	r.mu.Unlock()
	return res, nil
}

// Results returns a copy of the result cache, keyed "system|single/app"
// or "system|mix/name" (the metrics reporters aggregate these per system).
func (r *Runner) Results() map[string]*sim.Result {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]*sim.Result, len(r.results))
	for k, v := range r.results {
		out[k] = v
	}
	return out
}

// parallel runs the tasks with bounded concurrency. After all tasks
// complete it returns the error of the first failing task in submission
// order (not completion order), so a run that fails reports the same error
// no matter how the goroutines interleave.
func (r *Runner) parallel(tasks []func() error) error {
	limit := r.Parallelism
	if limit <= 0 {
		limit = runtime.NumCPU()
	}
	if limit > len(tasks) {
		limit = len(tasks)
	}
	if limit < 1 {
		limit = 1
	}
	sem := make(chan struct{}, limit)
	errs := make([]error, len(tasks))
	var wg sync.WaitGroup
	for i, task := range tasks {
		i, task := i, task
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{} // acquire inside the goroutine: spawning never blocks
			defer func() { <-sem }()
			errs[i] = task()
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// warmAll pre-executes the cross product of systems and workloads in
// parallel so subsequent sequential reads hit the cache.
func (r *Runner) warmSingles(systems []SystemDef, apps []string) error {
	var tasks []func() error
	// Profile serially first: instrumentation is shared across systems.
	for _, app := range apps {
		if _, err := r.Instrument(app); err != nil {
			return err
		}
	}
	for _, def := range systems {
		for _, app := range apps {
			def, app := def, app
			tasks = append(tasks, func() error {
				_, err := r.RunSingle(def, app)
				return err
			})
		}
	}
	return r.parallel(tasks)
}

func (r *Runner) warmMixes(systems []SystemDef, mixes []workload.Mix) error {
	appSet := map[string]bool{}
	for _, m := range mixes {
		for _, a := range m.Apps {
			appSet[a] = true
		}
	}
	for app := range appSet {
		// Serial profiling below is deterministic per app; order across
		// apps does not matter because each profile is independent.
		if _, err := r.Instrument(app); err != nil {
			return err
		}
	}
	var tasks []func() error
	for _, def := range systems {
		for _, m := range mixes {
			def, m := def, m
			tasks = append(tasks, func() error {
				_, err := r.RunMix(def, m)
				return err
			})
		}
	}
	return r.parallel(tasks)
}
