package exp

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"moca/internal/profile"
	"moca/internal/sim"
)

// cacheFormatVersion is the on-disk envelope format revision; bump it when
// the envelope or payload schema changes incompatibly.
const cacheFormatVersion = 1

// CacheMode selects how a RunCache participates in a run.
type CacheMode int

const (
	// CacheOff disables the persistent cache entirely.
	CacheOff CacheMode = iota
	// CacheRead loads cached entries but never writes new ones (useful
	// for reproducing from a sealed cache).
	CacheRead
	// CacheReadWrite loads cached entries and persists new ones (the
	// default when a cache directory is configured).
	CacheReadWrite
)

// ParseCacheMode parses the -cache flag values off/read/write.
func ParseCacheMode(s string) (CacheMode, error) {
	switch strings.ToLower(s) {
	case "off":
		return CacheOff, nil
	case "read":
		return CacheRead, nil
	case "write", "readwrite", "rw":
		return CacheReadWrite, nil
	default:
		return CacheOff, fmt.Errorf("exp: unknown cache mode %q (want off, read, or write)", s)
	}
}

func (m CacheMode) String() string {
	switch m {
	case CacheOff:
		return "off"
	case CacheRead:
		return "read"
	case CacheReadWrite:
		return "write"
	default:
		return fmt.Sprintf("CacheMode(%d)", int(m))
	}
}

// CacheStats counts a RunCache's traffic.
type CacheStats struct {
	Hits      uint64 // entries served from disk
	Misses    uint64 // lookups that found no usable entry
	Writes    uint64 // entries persisted
	Evictions uint64 // stale/corrupt entries removed on load
}

// envelope wraps every cached payload with its identity: the full
// canonical key (hash collisions and schema drift are detected by string
// comparison, not trusted to the filename) and the version salt. A salt
// or key mismatch evicts the file — this is how a simulator behavior bump
// (sim.BehaviorVersion) invalidates stale results in place.
type envelope struct {
	Salt    string          `json:"salt"`
	Key     string          `json:"key"`
	Payload json.RawMessage `json:"payload"`
}

// RunCache is a content-addressed persistent cache of simulation results
// and offline profiles, shared across processes via a directory. Writes
// are atomic and durable (temp file + fsync + rename + directory fsync),
// so a crashed or killed run leaves only complete entries behind and the
// next invocation resumes from them; opening the cache sweeps any crash
// debris older tools may have left (orphaned temps, zero-byte entries).
// All methods are safe for concurrent use.
type RunCache struct {
	dir  string
	mode CacheMode
	salt string

	hits, misses, writes, evictions atomic.Uint64
}

// defaultCacheSalt versions every entry: the envelope format and the
// simulator behavior revision.
func defaultCacheSalt() string {
	return fmt.Sprintf("moca-cache-v%d/sim-v%d", cacheFormatVersion, sim.BehaviorVersion)
}

// OpenRunCache opens (creating if needed) a persistent run cache rooted at
// dir. Mode CacheOff returns a nil cache — callers treat nil as disabled.
func OpenRunCache(dir string, mode CacheMode) (*RunCache, error) {
	if mode == CacheOff {
		return nil, nil
	}
	if dir == "" {
		return nil, fmt.Errorf("exp: cache directory is empty")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("exp: creating cache directory: %w", err)
	}
	c := &RunCache{dir: dir, mode: mode, salt: defaultCacheSalt()}
	c.sweep()
	return c, nil
}

// sweepTempGrace is how old a temp file must be before the open-time sweep
// treats it as crash debris. A live writer in another process renames (or
// removes) its temp within milliseconds; anything this stale was abandoned
// by a crashed or killed run.
const sweepTempGrace = 10 * time.Minute

// sweep removes crash debris on open: orphaned temp files from writers
// that died before their rename, and zero-byte entries a crash can leave
// behind when the rename was durable but the data was not (the store path
// now fsyncs to prevent new ones; old caches may still carry them).
// Zero-byte removals count as evictions; the sweep itself is best-effort.
func (c *RunCache) sweep() {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return
	}
	now := time.Now()
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		info, err := e.Info()
		if err != nil {
			continue
		}
		switch {
		case strings.HasSuffix(name, ".tmp"):
			if now.Sub(info.ModTime()) >= sweepTempGrace {
				os.Remove(filepath.Join(c.dir, name))
			}
		case strings.HasSuffix(name, ".json") && info.Size() == 0:
			c.evict(filepath.Join(c.dir, name))
		}
	}
}

// Dir returns the cache directory.
func (c *RunCache) Dir() string { return c.dir }

// Mode returns the cache's mode.
func (c *RunCache) Mode() CacheMode { return c.mode }

// Stats returns a snapshot of the cache's traffic counters.
func (c *RunCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Writes:    c.writes.Load(),
		Evictions: c.evictions.Load(),
	}
}

func (c *RunCache) path(kind, key string) string {
	return filepath.Join(c.dir, kind+"-"+hashKey(key)+".json")
}

// load returns the payload stored under (kind, key), evicting entries
// whose salt or canonical key does not match.
func (c *RunCache) load(kind, key string) (json.RawMessage, bool) {
	if c == nil {
		return nil, false
	}
	path := c.path(kind, key)
	data, err := os.ReadFile(path)
	if err != nil {
		c.misses.Add(1)
		return nil, false
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil || env.Salt != c.salt || env.Key != key {
		// Corrupt (e.g. a partial write from a pre-atomic tool), stale
		// salt, or hash mismatch: remove so the slot can be rewritten.
		c.evict(path)
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return env.Payload, true
}

// store persists payload under (kind, key) atomically; no-op outside
// read-write mode.
func (c *RunCache) store(kind, key string, payload any) error {
	if c == nil || c.mode != CacheReadWrite {
		return nil
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("exp: encoding cache entry: %w", err)
	}
	data, err := json.Marshal(envelope{Salt: c.salt, Key: key, Payload: raw})
	if err != nil {
		return fmt.Errorf("exp: encoding cache envelope: %w", err)
	}
	path := c.path(kind, key)
	tmp, err := os.CreateTemp(c.dir, "."+kind+"-*.tmp")
	if err != nil {
		return fmt.Errorf("exp: writing cache entry: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("exp: writing cache entry: %w", err)
	}
	// Flush data before the rename publishes the entry: without it a crash
	// shortly after the rename can surface a truncated or zero-byte file
	// under the final name, which would poison the slot until evicted.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("exp: syncing cache entry: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("exp: writing cache entry: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("exp: writing cache entry: %w", err)
	}
	// Make the rename itself durable so the entry cannot vanish (or revert
	// to the temp name) after a crash.
	if err := syncDir(c.dir); err != nil {
		return fmt.Errorf("exp: syncing cache directory: %w", err)
	}
	c.writes.Add(1)
	return nil
}

// syncDir fsyncs a directory so a completed rename inside it survives a
// crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

func (c *RunCache) evict(path string) {
	if err := os.Remove(path); err == nil || os.IsNotExist(err) {
		c.evictions.Add(1)
	}
}

// LoadResult returns the cached simulation result for key, if present and
// valid. An entry that fails to decode is evicted and reported as a miss.
func (c *RunCache) LoadResult(key string) (*sim.Result, bool) {
	payload, ok := c.load("result", key)
	if !ok {
		return nil, false
	}
	var res sim.Result
	if err := json.Unmarshal(payload, &res); err != nil {
		c.evict(c.path("result", key))
		c.hits.Add(^uint64(0)) // undo the hit: the entry was unusable
		c.misses.Add(1)
		return nil, false
	}
	return &res, true
}

// StoreResult persists a simulation result under key.
func (c *RunCache) StoreResult(key string, res *sim.Result) error {
	return c.store("result", key, res)
}

// LoadProfile returns the cached offline profile for key, if present and
// valid.
func (c *RunCache) LoadProfile(key string) (profile.Profile, bool) {
	payload, ok := c.load("profile", key)
	if !ok {
		return profile.Profile{}, false
	}
	pr, err := profile.Unmarshal(payload)
	if err != nil {
		c.evict(c.path("profile", key))
		c.hits.Add(^uint64(0))
		c.misses.Add(1)
		return profile.Profile{}, false
	}
	return pr, true
}

// StoreProfile persists an offline profile under key.
func (c *RunCache) StoreProfile(key string, pr profile.Profile) error {
	return c.store("profile", key, pr)
}
