package exp

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"moca/internal/sim"
)

// gatedNewSystem installs a constructor stub that signals `started` when a
// simulation begins and blocks it until `release` is closed, so tests can
// hold a flight in its in-progress window deterministically.
func gatedNewSystem(t *testing.T) (started chan struct{}, release chan struct{}) {
	t.Helper()
	started = make(chan struct{}, 8)
	release = make(chan struct{})
	swapNewSystem(t, func(cfg sim.Config, procs []sim.ProcSpec) (*sim.System, error) {
		started <- struct{}{}
		<-release
		return sim.New(cfg, procs)
	})
	return started, release
}

// waitersOf reads a flight's refcount under the runner lock (0 if the
// flight does not exist).
func waitersOf(r *Runner, memoKey string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.flights[memoKey]; ok {
		return f.waiters
	}
	return 0
}

func pollUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWaiterDetachKeepsFlightAlive is the regression test for the shared-
// flight cancellation bug: a caller whose context fires while joined to an
// in-flight singleflight must detach with its own ctx.Err() and leave the
// simulation running for the remaining waiter, who still receives the
// result. Must pass under -race.
func TestWaiterDetachKeepsFlightAlive(t *testing.T) {
	r := fastRunner()
	if _, err := r.Instrument("mcf"); err != nil {
		t.Fatal(err)
	}
	started, release := gatedNewSystem(t)
	def := ddr3Def()
	memoKey := def.Name + "|single/mcf"

	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()
	errA := make(chan error, 1)
	go func() {
		_, err := r.RunSingleCtx(ctxA, def, "mcf")
		errA <- err
	}()
	<-started // the flight is now executing

	type outcome struct {
		res *sim.Result
		err error
	}
	outB := make(chan outcome, 1)
	go func() {
		res, err := r.RunSingleCtx(context.Background(), def, "mcf")
		outB <- outcome{res, err}
	}()
	pollUntil(t, "second caller to join the flight", func() bool {
		return waitersOf(r, memoKey) == 2
	})

	cancelA()
	if err := <-errA; !errors.Is(err, context.Canceled) {
		t.Fatalf("detached waiter returned %v, want context.Canceled", err)
	}
	// The flight must survive the detach: still registered, one waiter.
	if n := waitersOf(r, memoKey); n != 1 {
		t.Fatalf("flight has %d waiters after detach, want 1", n)
	}

	close(release)
	got := <-outB
	if got.err != nil {
		t.Fatalf("surviving waiter: %v", got.err)
	}
	if got.res == nil {
		t.Fatal("surviving waiter received a nil result")
	}
	if st := r.Stats(); st.Simulated != 1 {
		t.Errorf("Simulated = %d, want 1 (detach must not restart the run)", st.Simulated)
	}
}

// TestLastWaiterCancelsFlight: when every joined caller has detached, the
// flight's context is canceled so the orphaned simulation stops instead of
// burning cycles for nobody — and the key is retryable afterwards.
func TestLastWaiterCancelsFlight(t *testing.T) {
	r := fastRunner()
	if _, err := r.Instrument("mcf"); err != nil {
		t.Fatal(err)
	}
	started, release := gatedNewSystem(t)
	def := ddr3Def()
	memoKey := def.Name + "|single/mcf"

	ctxA, cancelA := context.WithCancel(context.Background())
	errA := make(chan error, 1)
	go func() {
		_, err := r.RunSingleCtx(ctxA, def, "mcf")
		errA <- err
	}()
	<-started

	cancelA()
	if err := <-errA; !errors.Is(err, context.Canceled) {
		t.Fatalf("sole waiter returned %v, want context.Canceled", err)
	}

	// Unblock the constructor: the flight context is already canceled, so
	// RunContext must abort without counting a simulation, and the failed
	// flight must be forgotten.
	close(release)
	pollUntil(t, "canceled flight to be forgotten", func() bool {
		r.mu.Lock()
		defer r.mu.Unlock()
		_, live := r.flights[memoKey]
		_, memoized := r.results[memoKey]
		return !live && !memoized
	})
	if st := r.Stats(); st.Simulated != 0 {
		t.Errorf("Simulated = %d after abandoned flight, want 0", st.Simulated)
	}

	// The key works again once somebody actually wants it.
	var wg sync.WaitGroup
	wg.Add(1)
	var retryErr error
	go func() {
		defer wg.Done()
		_, retryErr = r.RunSingleCtx(context.Background(), def, "mcf")
	}()
	<-started
	wg.Wait()
	if retryErr != nil {
		t.Fatalf("retry after abandoned flight: %v", retryErr)
	}
	if st := r.Stats(); st.Simulated != 1 {
		t.Errorf("Simulated = %d after retry, want 1", st.Simulated)
	}
}
