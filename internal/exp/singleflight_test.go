package exp

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"moca/internal/mem"
	"moca/internal/sim"
)

func ddr3Def() SystemDef {
	return SystemDef{Name: SysDDR3, Modules: sim.Homogeneous(mem.DDR3), Policy: sim.PolicyFixed}
}

// swapNewSystem replaces the simulator constructor seam for one test and
// restores it afterwards.
func swapNewSystem(t *testing.T, fn func(sim.Config, []sim.ProcSpec) (*sim.System, error)) {
	t.Helper()
	orig := newSystem
	newSystem = fn
	t.Cleanup(func() { newSystem = orig })
}

// countingNewSystem wraps sim.New with a mutex-guarded call counter.
func countingNewSystem(t *testing.T) *int {
	t.Helper()
	var mu sync.Mutex
	calls := 0
	swapNewSystem(t, func(cfg sim.Config, procs []sim.ProcSpec) (*sim.System, error) {
		mu.Lock()
		calls++
		mu.Unlock()
		return sim.New(cfg, procs)
	})
	return &calls
}

// TestRunSingleflight: N concurrent requests for the same run must execute
// exactly one simulation and share the identical result. This is the
// regression test for the old check-then-act race, and must pass under
// the race detector.
func TestRunSingleflight(t *testing.T) {
	r := fastRunner()
	if _, err := r.Instrument("mcf"); err != nil {
		t.Fatal(err)
	}
	calls := countingNewSystem(t)

	const n = 8
	results := make([]*sim.Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = r.RunSingle(ddr3Def(), "mcf")
		}()
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if results[i] != results[0] {
			t.Fatalf("caller %d received a different *Result than caller 0", i)
		}
	}
	if *calls != 1 {
		t.Errorf("%d simulations constructed, want 1", *calls)
	}
	st := r.Stats()
	if st.Simulated != 1 {
		t.Errorf("Simulated = %d, want 1", st.Simulated)
	}
	if st.MemoryHits != n-1 {
		t.Errorf("MemoryHits = %d, want %d", st.MemoryHits, n-1)
	}
}

// TestRunPanicIsolated: a panicking simulation becomes that run's error —
// carrying the run key — and the key stays retryable afterwards.
func TestRunPanicIsolated(t *testing.T) {
	r := fastRunner()
	if _, err := r.Instrument("mcf"); err != nil {
		t.Fatal(err)
	}
	orig := newSystem
	swapNewSystem(t, func(cfg sim.Config, procs []sim.ProcSpec) (*sim.System, error) {
		panic("injected fault")
	})

	_, err := r.RunSingle(ddr3Def(), "mcf")
	if err == nil {
		t.Fatal("panicking run reported success")
	}
	if !strings.Contains(err.Error(), "panicked") || !strings.Contains(err.Error(), "single/mcf") {
		t.Errorf("error lacks the panic diagnosis or run key: %v", err)
	}

	// Failed flights are forgotten: the same key works once the fault clears.
	newSystem = orig
	if _, err := r.RunSingle(ddr3Def(), "mcf"); err != nil {
		t.Fatalf("retry after failure: %v", err)
	}
	if st := r.Stats(); st.Simulated != 1 {
		t.Errorf("Simulated = %d, want 1", st.Simulated)
	}
}

// TestRunnerCancellation: a canceled runner context aborts runs with
// context.Canceled, both on the direct path and through the parallel
// warm-up, and executes no simulations.
func TestRunnerCancellation(t *testing.T) {
	r := fastRunner()
	if _, err := r.Instrument("mcf"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r.Ctx = ctx

	if _, err := r.RunSingle(ddr3Def(), "mcf"); !errors.Is(err, context.Canceled) {
		t.Errorf("RunSingle returned %v, want context.Canceled", err)
	}
	if err := r.warmSingles([]SystemDef{ddr3Def()}, []string{"mcf"}); !errors.Is(err, context.Canceled) {
		t.Errorf("warmSingles returned %v, want context.Canceled", err)
	}
	if st := r.Stats(); st.Simulated != 0 {
		t.Errorf("Simulated = %d after cancellation, want 0", st.Simulated)
	}
}
