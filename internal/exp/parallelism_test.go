package exp

import (
	"testing"

	"moca/internal/sim"
)

// TestEffectiveParallelism locks the over-subscription clamp: when both
// the run bound and the shard count default from the machine size, their
// product must stay at the core count — a 32-core box running 32 parallel
// simulations of 4 worker goroutines each (128 runnable goroutines) is
// exactly the CI-thrashing regression this guards against.
func TestEffectiveParallelism(t *testing.T) {
	cases := []struct {
		name                       string
		parallelism, shards, numCPU int
		want                       int
	}{
		{"default-serial", 0, 0, 8, 8},
		{"default-serial-one", 0, 1, 8, 8},
		{"default-divides-by-shards", 0, 4, 32, 8},
		{"default-rounds-down", 0, 3, 8, 2},
		{"default-floors-at-one", 0, 8, 4, 1},
		{"default-single-cpu", 0, 4, 1, 1},
		{"explicit-wins", 6, 4, 8, 6},
		{"explicit-oversubscribes-deliberately", 16, 8, 4, 16},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := effectiveParallelism(tc.parallelism, tc.shards, tc.numCPU); got != tc.want {
				t.Errorf("effectiveParallelism(%d, %d, %d) = %d, want %d",
					tc.parallelism, tc.shards, tc.numCPU, got, tc.want)
			}
			// runs x shards must never exceed the machine unless the
			// caller explicitly asked for oversubscription.
			if tc.parallelism == 0 {
				shards := tc.shards
				if shards < 1 {
					shards = 1
				}
				got := effectiveParallelism(tc.parallelism, tc.shards, tc.numCPU)
				if got*shards > tc.numCPU && got > 1 {
					t.Errorf("default bound %d x %d shards = %d oversubscribes %d CPUs",
						got, shards, got*shards, tc.numCPU)
				}
			}
		})
	}
}

// TestRunnerShardsReachConfig proves Runner.Shards actually reaches the
// simulator's Config (TestResultCacheKeyCanonical separately proves it
// stays out of the cache key).
func TestRunnerShardsReachConfig(t *testing.T) {
	r := fastRunner()
	r.Shards = 4
	seen := -1
	swapNewSystem(t, func(cfg sim.Config, procs []sim.ProcSpec) (*sim.System, error) {
		seen = cfg.Shards
		return sim.New(cfg, procs)
	})
	if _, err := r.RunSingle(ddr3Def(), "mcf"); err != nil {
		t.Fatal(err)
	}
	if seen != 4 {
		t.Errorf("simulator constructed with Config.Shards = %d, want 4", seen)
	}
}
