package sim

import (
	"testing"

	"moca/internal/cpu"
	"moca/internal/event"
	"moca/internal/mem"
	"moca/internal/obs"
)

// dropTestShard builds a chanShard over a 1-slot controller so a single
// in-flight request exerts backpressure on everything behind it.
func dropTestShard(t *testing.T, reg *obs.Registry) *chanShard {
	t.Helper()
	cycle := cpu.DefaultConfig().Cycle
	cs, err := newChanShard(0, func(q *event.Queue) (*mem.Controller, error) {
		return mem.NewController("drop-test", q, mem.ChannelConfig{
			Device: mem.Preset(mem.DDR3), CapacityBytes: 1 << 20, MaxQueue: 1,
		})
	}, 1, cycle)
	if err != nil {
		t.Fatal(err)
	}
	cs.reg = reg
	return cs
}

// TestMigrationCopyDropCounted: a migration copy (core < 0) rejected by a
// full controller is abandoned — and now counted, both in the shard's
// plain counter and in the lazily-registered obs counter, on the direct
// submission path and the queued-retry path.
func TestMigrationCopyDropCounted(t *testing.T) {
	reg := obs.NewRegistry()
	cs := dropTestShard(t, reg)

	// Fill the single queue slot with demand traffic.
	if !cs.ctrl.EnqueueLine(0, false, 0, 0, nil, 0) {
		t.Fatal("first enqueue rejected by an empty controller")
	}
	// Direct path: a copy arriving at a full controller is dropped.
	cs.try(0, linkMsg{local: 64, core: -1})
	if cs.copyDrops != 1 {
		t.Fatalf("copyDrops = %d after direct-path drop, want 1", cs.copyDrops)
	}
	// Queued path: copies stuck behind earlier rejections are dropped when
	// the retry drain still faces a full controller.
	cs.pending = append(cs.pending, linkMsg{local: 128, core: -1}, linkMsg{local: 192, core: -1})
	cs.drainPending(0)
	if cs.copyDrops != 3 {
		t.Fatalf("copyDrops = %d after queued-path drops, want 3", cs.copyDrops)
	}
	if len(cs.pending) != 0 || cs.pendHead != 0 {
		t.Fatalf("pending queue not drained: len=%d head=%d", len(cs.pending), cs.pendHead)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["mem.migration_copy_drops"]; got != 3 {
		t.Fatalf("obs counter = %d, want 3", got)
	}
}

// TestMigrationCopyDropCounterLazy: runs that never drop a copy must not
// grow a zero-valued counter — snapshots (and therefore goldens) stay
// unchanged for every non-dropping workload.
func TestMigrationCopyDropCounterLazy(t *testing.T) {
	reg := obs.NewRegistry()
	cs := dropTestShard(t, reg)

	cs.try(0, linkMsg{local: 0, core: -1}) // empty controller: accepted
	if cs.copyDrops != 0 {
		t.Fatalf("copyDrops = %d for an accepted copy, want 0", cs.copyDrops)
	}
	if _, ok := reg.Snapshot().Counters["mem.migration_copy_drops"]; ok {
		t.Fatal("drop counter registered without any drop")
	}
}
