package sim

// Sharded execution (DESIGN.md "Sharded execution").
//
// The system is partitioned into shards that each own a private event
// queue: one shard per core (cpu, L1/L2, private TLB state) and one per
// memory channel (controller + banks). Time advances in fixed windows of
// windowCycles CPU cycles. Within a window every shard runs alone on its
// own queue; all cross-shard traffic is staged as timestamped messages and
// exchanged only at the window boundary, merged in a fixed deterministic
// order (at, source shard, per-source sequence). Serial mode (Shards <= 1)
// and parallel mode (Shards > 1) execute the exact same phase code — the
// only difference is whether shard work runs inline or on worker
// goroutines — which is why golden output is byte-identical across -shards
// values (proven by internal/sim/difftest).
//
// The window invariant that makes conservative lookahead work: every
// core->channel submission traverses a link with a fixed latency of one
// window, so a message staged at local time t carries effect time
// t+window >= windowEnd and always lands in a strictly later channel
// window. Channel->core completions need no added latency because channel
// shards run their half of window k before core shards do: a fill
// completed at time t in [T, T+W) is posted into the owning core's queue
// before that core executes cycle t.

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"moca/internal/event"
	"moca/internal/mem"
	"moca/internal/obs"
)

// windowCycles is the conservative time-window length in CPU cycles. It is
// also the modeled interconnect latency of the core->channel link, so it
// must be identical across shard counts (it shapes timing, not just
// scheduling).
const windowCycles = 8

// chanRetryGap is the backoff, in CPU cycles, before a channel shard
// retries submissions the controller rejected (mirrors the retry pacing
// the cache hierarchy used when it faced the controller directly).
const chanRetryGap = 8

// linkMsg is one submission crossing from a core (or the migration engine)
// to a memory channel at a window barrier.
type linkMsg struct {
	at    event.Time // effect time: staging time + one window
	line  uint64     // global physical line address (migration monitor)
	local uint64     // channel-local address
	write bool
	sink  bool // deliver the completion back to the owning core
	core  int
	obj   uint64
	token uint64
	src   int    // source shard: core index, len(cores) for migration
	seq   uint64 // per-source staging order
}

// shardLink is the cache.Backend a core shard submits misses, writebacks,
// and (for the migration engine) copy traffic through. It never exerts
// backpressure: rejection and retry live channel-side, after the message
// has paid the link latency.
//
//moca:shard core
type shardLink struct {
	q      *event.Queue
	route  *router
	delay  event.Time
	src    int
	seq    uint64
	staged int         // messages staged since the last barrier merge
	out    [][]linkMsg // staged messages, per channel
}

// Submit implements cache.Backend. The concrete sink is dropped: a
// completion is routed back to msg.core's hierarchy by the channel shard.
func (l *shardLink) Submit(lineAddr uint64, write bool, core int, obj uint64, sink mem.DoneSink, token uint64) bool {
	ch, local := l.route.locate(lineAddr)
	l.out[ch] = append(l.out[ch], linkMsg{
		at: l.q.Now() + l.delay, line: lineAddr, local: local,
		write: write, sink: sink != nil, core: core, obj: obj, token: token,
		src: l.src, seq: l.seq,
	})
	l.seq++
	l.staged++
	return true
}

// fillMsg is one completed memory request waiting to be delivered into its
// core's queue at the next barrier.
type fillMsg struct {
	at    event.Time
	core  int
	token uint64
}

// Channel-shard event opcodes.
const (
	chopDeliver int32 = iota // i64 = inbox index of the arriving linkMsg
	chopRetry                // retry backpressured submissions
)

// chanShard owns one memory controller and its private event queue. It
// applies barrier-merged submissions at their exact effect times, holds
// rejected ones in an arrival-ordered pending queue with paced retries,
// and stages completions for the coordinator to post back to core queues.
//
//moca:shard channel
type chanShard struct {
	idx   int
	q     *event.Queue
	ctrl  *mem.Controller
	cycle event.Time

	inbox      []linkMsg // this window's deliveries, indexed by chopDeliver i64
	pending    []linkMsg // rejected submissions, retried in arrival order
	pendHead   int
	retryArmed bool

	fills []fillMsg      // completions staged for the coordinator
	sinks []mem.DoneSink // pre-boxed per-core completion sinks
	bp    []uint64       // per-core rejected-submission counts

	// copyDrops counts migration copies abandoned under controller
	// backpressure (the best-effort path), mirrored into the
	// mem.migration_copy_drops obs counter so the loss is observable.
	copyDrops uint64
	reg       *obs.Registry
	dropCtr   *obs.Counter

	err error // shard panic, keyed by the coordinator
}

// chanSink stages one core's completions on its channel shard.
type chanSink struct {
	cs   *chanShard
	core int
}

// MemDone implements mem.DoneSink.
func (s *chanSink) MemDone(token uint64, at event.Time) {
	s.cs.fills = append(s.cs.fills, fillMsg{at: at, core: s.core, token: token})
}

func newChanShard(idx int, ctrlBuild func(q *event.Queue) (*mem.Controller, error), cores int, cycle event.Time) (*chanShard, error) {
	cs := &chanShard{idx: idx, q: event.NewQueue(), cycle: cycle, bp: make([]uint64, cores)}
	ctrl, err := ctrlBuild(cs.q)
	if err != nil {
		return nil, err
	}
	cs.ctrl = ctrl
	for c := 0; c < cores; c++ {
		cs.sinks = append(cs.sinks, &chanSink{cs: cs, core: c})
	}
	return cs, nil
}

// OnEvent implements event.Handler.
func (cs *chanShard) OnEvent(now event.Time, op int32, i64 int64, _ any) {
	switch op {
	case chopDeliver:
		cs.deliver(now, cs.inbox[i64])
	case chopRetry:
		cs.retryArmed = false
		cs.drainPending(now)
	}
}

func (cs *chanShard) deliver(now event.Time, m linkMsg) {
	if cs.pendHead < len(cs.pending) {
		// Preserve per-channel arrival order behind earlier rejections.
		cs.pending = append(cs.pending, m)
		cs.armRetry(now)
		return
	}
	cs.try(now, m)
}

func (cs *chanShard) try(now event.Time, m linkMsg) {
	var sink mem.DoneSink
	if m.sink {
		sink = cs.sinks[m.core]
	}
	if cs.ctrl.EnqueueLine(m.local, m.write, m.core, m.obj, sink, m.token) {
		return
	}
	if m.core < 0 {
		// Migration copy traffic is best-effort under backpressure.
		cs.dropCopy()
		return
	}
	cs.bp[m.core]++
	cs.pending = append(cs.pending, m)
	cs.armRetry(now)
}

func (cs *chanShard) drainPending(now event.Time) {
	for cs.pendHead < len(cs.pending) {
		m := cs.pending[cs.pendHead]
		var sink mem.DoneSink
		if m.sink {
			sink = cs.sinks[m.core]
		}
		if !cs.ctrl.EnqueueLine(m.local, m.write, m.core, m.obj, sink, m.token) {
			if m.core < 0 {
				// Queued migration copies stay best-effort: drop instead
				// of blocking demand traffic behind them.
				cs.dropCopy()
				cs.pendHead++
				continue
			}
			cs.bp[m.core]++
			cs.armRetry(now)
			return
		}
		cs.pendHead++
	}
	cs.pending = cs.pending[:0]
	cs.pendHead = 0
}

// dropCopy records one migration copy abandoned under backpressure. The
// counter is registered lazily on the first drop so runs that never drop
// keep their metrics snapshots unchanged; the increment order across
// shards is irrelevant because counter addition commutes, so the snapshot
// stays byte-identical across shard counts (difftest proves parity).
func (cs *chanShard) dropCopy() {
	cs.copyDrops++
	if cs.reg != nil {
		if cs.dropCtr == nil {
			cs.dropCtr = cs.reg.Counter("mem.migration_copy_drops")
		}
		cs.dropCtr.Inc()
	}
}

// MigrationCopyDrops sums abandoned migration copies across channels
// (whole run, including warmup; the obs counter covers the measured
// window only).
//
//moca:barrier reads channel-shard counters; callers run between phases
func (s *System) MigrationCopyDrops() uint64 {
	var n uint64
	for _, cs := range s.chans {
		n += cs.copyDrops
	}
	return n
}

func (cs *chanShard) armRetry(now event.Time) {
	if cs.retryArmed {
		return
	}
	cs.retryArmed = true
	cs.q.PostAfter(chanRetryGap*cs.cycle, cs, chopRetry, 0, nil)
}

// Core-shard event opcodes (coreCtx is the handler).
const (
	copFill int32 = iota // i64 = token: a barrier-delivered memory completion
)

// OnEvent implements event.Handler: barrier-delivered completions enter
// the hierarchy at their exact completion times.
func (c *coreCtx) OnEvent(now event.Time, op int32, i64 int64, _ any) {
	if op == copFill {
		c.hier.MemDone(uint64(i64), now)
	}
}

// faultGate serializes page faults — the only mid-window cross-shard
// operation — into ascending (cycle, core) order, the same order the
// serial lockstep loop produces naturally. clocks[i] holds the first cycle
// core i has NOT yet completed; a core about to fault at cycle t spins
// until every lower-indexed core has finished cycle t and every
// higher-indexed core has at least finished cycle t-1, which makes it the
// unique minimum of the (cycle, core) fault order and implies exclusive
// access. Deadlock-free by induction on that order: the minimal pending
// fault's condition only waits on cores that fault later or not at all.
type faultGate struct {
	on     bool
	clocks []atomic.Int64
}

func newFaultGate(cores int, on bool) *faultGate {
	return &faultGate{on: on, clocks: make([]atomic.Int64, cores)}
}

// wait blocks until core's page fault at its current cycle is ordered
// first among all outstanding work. No-op in serial mode.
func (g *faultGate) wait(core int) {
	if !g.on {
		return
	}
	t := g.clocks[core].Load()
	for j := range g.clocks {
		if j == core {
			continue
		}
		need := t
		if j < core {
			need = t + 1 // lower-indexed cores must have completed cycle t
		}
		cj := &g.clocks[j]
		spinWait(func() bool { return cj.Load() >= need })
	}
}

// spinWait spins until cond holds: a short tight spin first (barriers open
// within nanoseconds when every shard has a hardware thread), then yielding
// to the scheduler so oversubscribed machines make progress instead of
// burning whole quanta.
func spinWait(cond func() bool) {
	for i := 0; i < 64; i++ {
		if cond() {
			return
		}
	}
	for !cond() {
		runtime.Gosched()
	}
}

// shardPool runs phase jobs on persistent worker goroutines synchronized
// by a generation-counted spin barrier: one atomic bump dispatches a
// phase, one per-worker increment reports completion. Workers spin-wait
// between phases, so dispatch latency is a cache-miss, not a scheduler
// wakeup.
type shardPool struct {
	workers int
	gen     atomic.Int64
	done    atomic.Int64
	job     func(w int)
	panics  []error
	wg      sync.WaitGroup
}

func newShardPool(workers int) *shardPool {
	p := &shardPool{workers: workers, panics: make([]error, workers)}
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go p.loop(w)
	}
	return p
}

func (p *shardPool) loop(w int) {
	defer p.wg.Done()
	seen := int64(0)
	for {
		spinWait(func() bool { return p.gen.Load() != seen })
		seen++
		job := p.job
		if job == nil {
			return
		}
		p.runJob(w, job)
		p.done.Add(1)
	}
}

// runJob is the backstop recovery: shard jobs recover their own panics
// into keyed per-shard errors, so anything landing here is a harness bug —
// but it must still count the worker done or the barrier would deadlock.
func (p *shardPool) runJob(w int, job func(int)) {
	defer func() {
		if r := recover(); r != nil {
			p.panics[w] = fmt.Errorf("sim: shard worker %d: panic: %v", w, r)
		}
	}()
	job(w)
}

// run dispatches job to every worker and blocks until all complete. It
// returns the lowest-indexed worker's escaped panic, if any.
func (p *shardPool) run(job func(w int)) error {
	p.job = job
	g := p.gen.Add(1)
	spinWait(func() bool { return p.done.Load() >= g*int64(p.workers) })
	var err error
	for w, pe := range p.panics {
		if pe != nil {
			if err == nil {
				err = pe
			}
			p.panics[w] = nil
		}
	}
	return err
}

func (p *shardPool) stop() {
	if p == nil {
		return
	}
	p.job = nil
	p.gen.Add(1)
	p.wg.Wait()
}

// setWindow overrides the window length (tests only: barrier-storm stress
// uses single-cycle windows). The link latency tracks the window, so
// serial/sharded comparisons must use the same value on both systems.
func (s *System) setWindow(w event.Time) {
	s.window = w
	for _, l := range s.links {
		l.delay = w
	}
}

// runPhase advances the system in windows until every core has retired
// target instructions beyond its current count, calling onCross(core, at)
// once per core at its exact crossing cycle.
//
//moca:barrier coordinator loop: owns every shard between phase dispatches
func (s *System) runPhase(ctx context.Context, target uint64, onCross func(*coreCtx, event.Time)) error {
	if target == 0 {
		return nil
	}
	for _, c := range s.cores {
		c.base = c.core.Instructions()
		c.crossed = false
		c.counted = false
		c.frozen = false
		c.tickAt = s.simNow
	}
	s.phaseTarget = target
	s.phaseOnCross = onCross
	remaining := len(s.cores)
	done := ctx.Done()
	// Watchdog: generous IPC floor of 1/400 plus fixed slack.
	maxCycles := target*400 + 50_000_000
	var cycles, windows uint64
	for remaining > 0 {
		if s.cfg.Progress != nil && windows&63 == 0 {
			s.reportProgress()
		}
		windows++
		if cycles > maxCycles {
			crossed := 0
			for _, c := range s.cores {
				if c.crossed {
					crossed++
				}
			}
			return fmt.Errorf("sim: %s: watchdog expired after %d cycles (%d/%d cores finished %d instructions)",
				s.cfg.Name, cycles, crossed, len(s.cores), target)
		}
		if done != nil {
			select {
			case <-done:
				return fmt.Errorf("sim: %s: canceled after %d cycles: %w", s.cfg.Name, cycles, ctx.Err())
			default:
			}
		}
		windowEnd := s.simNow + s.window

		// Phase A: channel shards run their half of the window.
		if err := s.runChannelPhase(windowEnd); err != nil {
			return err
		}
		// Phase B: completed requests enter core queues at exact times.
		s.distributeFills()
		// Phase C: core shards run the window cycle by cycle.
		if err := s.runCorePhase(windowEnd); err != nil {
			return err
		}
		// Phase D: barrier. The coordinator queue (migration epochs and
		// copy pacing) runs first so its staged traffic joins this merge.
		if we := windowEnd - 1; s.q.QuietUntil(we) {
			s.q.AdvanceTo(we)
		} else {
			s.q.RunUntil(we)
		}
		s.mergeCrossings()
		for _, c := range s.cores {
			if c.runErr != nil {
				return c.runErr
			}
			if c.crossed && !c.counted {
				c.counted = true
				remaining--
				if c.frozen {
					// Backpressure now accrues channel-side; fold the
					// rejected-submission count into the frozen snapshot.
					c.snapshot.Hier.BackPressure += s.bpFor(c.proc)
				}
			}
		}
		s.simNow = windowEnd
		cycles += uint64(s.window / s.cycle)
	}
	if s.cfg.Progress != nil {
		s.reportProgress()
	}
	return nil
}

// reportProgress invokes the Progress hook with the run's completion so
// far: the slowest core's clamped per-phase progress plus the credit from
// completed phases. Runs on the coordinator goroutine at a window barrier,
// so reading core state is safe.
//
//moca:barrier coordinator-only; every shard is quiescent between windows
func (s *System) reportProgress() {
	min := s.phaseTarget
	for _, c := range s.cores {
		n := c.core.Instructions() - c.base
		if n > s.phaseTarget {
			// Cores past their quota keep executing for contention; their
			// surplus is not phase progress.
			n = s.phaseTarget
		}
		if n < min {
			min = n
		}
	}
	done := s.progressBase + min
	if done > s.progressTotal {
		done = s.progressTotal
	}
	s.cfg.Progress(done, s.progressTotal)
}

// ObsSnapshot captures the live metrics registry (nil-safe: empty when
// metrics are disabled). Safe only from a Config.Progress callback — which
// runs at a window barrier with every shard quiescent — or after the run
// returns; calling it from another goroutine mid-run is a data race.
func (s *System) ObsSnapshot() *obs.Snapshot {
	return s.reg.Snapshot()
}

// runChannelPhase drains every channel shard's queue up to the window
// horizon, in parallel when a pool is attached. The window parameters
// travel through phase fields so dispatch reuses the hoisted s.chanJob
// closure instead of allocating one per window.
func (s *System) runChannelPhase(windowEnd event.Time) error {
	s.phaseWindowEnd = windowEnd
	if s.pool == nil {
		// Serial quiet skip: when no channel has anything due this window
		// the pass is a pure clock advance, so the recover scaffolding and
		// per-shard RunUntil calls in chanWindow can be elided.
		we := windowEnd - 1
		quiet := true
		for _, cs := range s.chans {
			if !cs.q.QuietUntil(we) {
				quiet = false
				break
			}
		}
		if quiet {
			for _, cs := range s.chans {
				cs.q.AdvanceTo(we)
			}
			return nil
		}
		s.chanWindow(0, 1)
	} else if err := s.pool.run(s.chanJob); err != nil {
		return err
	}
	for _, cs := range s.chans {
		if cs.err != nil {
			return cs.err
		}
	}
	return nil
}

// chanWindow runs the channel shards owned by worker w (indices congruent
// to w modulo stride) through the window set in s.phaseWindowEnd. One
// recover covers the whole batch (a panic is attributed to the shard that
// was running); idle shards — empty queue, an idle controller by
// construction — are skipped without touching their clocks, which is safe
// because every post into a channel queue carries an absolute future time.
func (s *System) chanWindow(w, stride int) {
	cur := -1
	defer func() {
		if r := recover(); r != nil {
			cs := s.chans[cur]
			cs.err = fmt.Errorf("sim: %s: channel shard %s: panic: %v", s.cfg.Name, cs.ctrl.Name, r)
		}
	}()
	for ci := w; ci < len(s.chans); ci += stride {
		cs := s.chans[ci]
		cur = ci
		// Quiet guard: most windows a channel only holds a wake scheduled
		// beyond the bound, and the inlined check replaces the call.
		if we := s.phaseWindowEnd - 1; cs.q.QuietUntil(we) {
			cs.q.AdvanceTo(we)
		} else {
			cs.q.RunUntil(we)
		}
	}
}

// runCorePhase runs every core shard through the window. Each worker
// advances its owned cores in lockstep, one cycle at a time in ascending
// core order, so page faults occur in (cycle, core) order on every worker
// layout — including the serial single-worker one — and the fault gate's
// spin condition can always be satisfied.
//
//moca:barrier dispatches core shards and reaps their per-core errors
func (s *System) runCorePhase(windowEnd event.Time) error {
	s.phaseWindowEnd = windowEnd
	if s.pool == nil {
		s.coreWindow(0, 1)
	} else if err := s.pool.run(s.coreJob); err != nil {
		return err
	}
	return nil
}

// coreWindow advances the cores owned by worker w (core indices congruent
// to w modulo stride) through one window (s.phaseWindowEnd; quota and
// crossing callback travel through s.phaseTarget / s.phaseOnCross). A
// panicking core shard is recovered into a keyed error on that core; the
// worker's remaining cores skip the rest of the window and every owned
// clock is released so no other shard's fault gate can deadlock on the
// dying worker.
//
// With the fast path on, a core may batch ahead of the lockstep cycle t:
// c.tickAt is its private clock cursor (the next cycle it still has to
// execute), and cycles below it are skipped. Batched spans are proven
// fault-free (no memory ops, no translations), so publishing the gate
// clock for the whole span at once cannot reorder any page fault.
func (s *System) coreWindow(w, stride int) {
	windowEnd := s.phaseWindowEnd
	target := s.phaseTarget
	onCross := s.phaseOnCross
	cur := -1
	defer func() {
		if r := recover(); r != nil {
			c := s.cores[cur]
			c.runErr = fmt.Errorf("sim: %s: core shard %d (%s): panic: %v", s.cfg.Name, cur, c.app.Spec.Name, r)
			c.dead = true
			for i := w; i < len(s.cores); i += stride {
				s.gate.clocks[i].Store(math.MaxInt64)
			}
		}
	}()
	for t := windowEnd - s.window; t < windowEnd; {
		// next is the earliest cycle any owned core still has to execute:
		// when every core is batched ahead of t the loop jumps straight to
		// it instead of walking the skipped cycles one by one. A core's
		// queue holds no events inside its batched span (tryBatch bounded
		// the batch by NextTime and nothing external posts mid-phase), so
		// the jump cannot run an event late.
		next := windowEnd
		for i := w; i < len(s.cores); i += stride {
			c := s.cores[i]
			if c.dead {
				continue
			}
			if s.fastpath && c.tickAt > t {
				if c.tickAt < next {
					next = c.tickAt
				}
				continue // a batch already executed this cycle
			}
			cur = i
			if c.q.QuietUntil(t) {
				c.q.AdvanceTo(t)
			} else {
				c.q.RunUntil(t)
			}
			if s.fastpath {
				if n := s.tryBatch(c, i, t, windowEnd, target, onCross); n > 0 {
					if c.tickAt < next {
						next = c.tickAt
					}
					continue
				}
			}
			c.core.TickAt(t)
			c.tickAt = t + s.cycle
			next = t + s.cycle
			if s.gate.on {
				s.gate.clocks[i].Store(int64(t + s.cycle))
			}
			if err := c.core.Err(); err != nil {
				c.fail(s, i, err)
				continue
			}
			if c.crossed {
				continue
			}
			if c.core.Instructions()-c.base >= target {
				c.crossed = true
				if onCross != nil {
					onCross(c, t+s.cycle)
				}
			} else if c.core.Done() {
				// The stream ran dry before the quota: this core can never
				// cross, so fail now instead of spinning into the watchdog.
				// A replayed trace that ended on a decode error reports
				// that error, not a bare end-of-stream.
				short := target - (c.core.Instructions() - c.base)
				if serr := streamErr(c.stream); serr != nil {
					c.fail(s, i, fmt.Errorf("trace decode: %w", serr))
				} else {
					c.fail(s, i, fmt.Errorf("instruction stream ended %d instructions short of its %d quota", short, target))
				}
			}
		}
		t = next
	}
	for i := w; i < len(s.cores); i += stride {
		c := s.cores[i]
		if c.dead {
			continue
		}
		// Drain the sub-cycle remainder: controller completion times are
		// not cycle-aligned, so fills can spawn hierarchy events that land
		// between the last tick (windowEnd-cycle) and the window end. They
		// belong to this window — running them now keeps every link
		// submission's staging time inside the window that merges it.
		cur = i
		if we := windowEnd - 1; c.q.QuietUntil(we) {
			c.q.AdvanceTo(we)
		} else {
			c.q.RunUntil(we)
		}
		if s.gate.on {
			s.gate.clocks[i].Store(int64(windowEnd))
		}
	}
}

// tryBatch retires a run of cycles for core i in one call, starting at
// cycle t. The batch is bounded by the window barrier and by the core's
// next queued event (NextTime deliberately ignores virtual events: an
// inline hit matures by clock comparison, not by an event run). The budget
// stops the batch on the exact cycle the instruction quota is crossed, so
// onCross observes the same timestamp the per-cycle loop would have
// produced. Returns the number of cycles batched (0: fall back to a
// normal tick).
//
//moca:hotpath
func (s *System) tryBatch(c *coreCtx, i int, t, windowEnd event.Time, target uint64, onCross func(*coreCtx, event.Time)) int {
	end := windowEnd
	if nt, ok := c.q.NextTime(); ok && nt < end {
		end = nt
	}
	if end <= t {
		return 0
	}
	budget := ^uint64(0)
	if !c.crossed {
		budget = target - (c.core.Instructions() - c.base)
	}
	n, retired := c.core.FastForward(t, end, budget)
	if n == 0 {
		return 0
	}
	c.tickAt = t + event.Time(n)*s.cycle
	if s.gate.on {
		s.gate.clocks[i].Store(int64(c.tickAt))
	}
	if retired > 0 && !c.crossed && c.core.Instructions()-c.base >= target {
		c.crossed = true
		if onCross != nil {
			onCross(c, c.tickAt)
		}
	}
	return n
}

// fail marks the core dead with a keyed error and releases its gate clock.
func (c *coreCtx) fail(s *System, i int, err error) {
	c.runErr = fmt.Errorf("sim: %s core %d (%s): %w", s.cfg.Name, i, c.app.Spec.Name, err)
	c.dead = true
	s.gate.clocks[i].Store(math.MaxInt64)
}

// distributeFills posts every completion the channel shards staged into
// the owning cores' queues, merged across channels by (at, channel, seq)
// so insertion order — and therefore same-timestamp execution order — is
// deterministic.
//
//moca:barrier merges channel-shard completions into core-shard queues
func (s *System) distributeFills() {
	total := 0
	for _, cs := range s.chans {
		total += len(cs.fills)
	}
	if total == 0 {
		return
	}
	buf := s.fillScratch[:0]
	for ci, cs := range s.chans {
		for _, f := range cs.fills {
			buf = append(buf, chanFill{fillMsg: f, ch: ci, seq: len(buf)})
		}
		cs.fills = cs.fills[:0]
	}
	// Insertion sort, like sortLinkMsgs: barrier batches are small and
	// sort.Slice would allocate a closure every window.
	for i := 1; i < len(buf); i++ {
		for j := i; j > 0 && chanFillLess(buf[j], buf[j-1]); j-- {
			buf[j], buf[j-1] = buf[j-1], buf[j]
		}
	}
	for _, f := range buf {
		c := s.cores[f.core]
		c.q.Post(f.at, c, copFill, int64(f.token), nil)
	}
	s.fillScratch = buf[:0]
}

// chanFill tags a staged fill with its merge key.
type chanFill struct {
	fillMsg
	ch  int
	seq int
}

// chanFillLess orders staged fills by (at, channel, staging order).
func chanFillLess(a, b chanFill) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.ch != b.ch {
		return a.ch < b.ch
	}
	return a.seq < b.seq
}

// mergeCrossings applies every staged core->channel (and migration)
// submission to its channel shard in (at, source shard, seq) order: the
// window-merge contract the fuzz target locks down. The migration
// monitor's access counter fires here too, in merged order, so epoch
// decisions are identical across shard counts.
//
//moca:barrier merges core-shard link traffic into channel-shard queues
func (s *System) mergeCrossings() {
	staged := 0
	for _, l := range s.links {
		staged += l.staged
		l.staged = 0
	}
	if staged == 0 {
		return // nothing crossed this window (common during long stalls)
	}
	for ci, cs := range s.chans {
		var m []linkMsg
		if len(s.links) == 1 {
			// One source shard: messages were staged in (at, seq) order
			// already, so the merge copy and sort are identity operations.
			l := s.links[0]
			m = l.out[ci]
			l.out[ci] = l.out[ci][:0]
		} else {
			m = mergeWindow(s.linkScratch[:0], s.links, ci)
			s.linkScratch = m
		}
		cs.inbox = cs.inbox[:0]
		for _, msg := range m {
			if s.route.onAccess != nil {
				s.route.onAccess(msg.line)
			}
			cs.inbox = append(cs.inbox, msg)
			cs.q.Post(msg.at, cs, chopDeliver, int64(len(cs.inbox)-1), nil)
		}
	}
}

// mergeWindow collects channel ci's staged messages from every link,
// clears the stages, and returns them sorted by (at, src, seq). The result
// is a pure function of the per-link message sets: worker completion order
// cannot influence it (FuzzWindowMerge).
func mergeWindow(dst []linkMsg, links []*shardLink, ci int) []linkMsg {
	for _, l := range links {
		dst = append(dst, l.out[ci]...)
		l.out[ci] = l.out[ci][:0]
	}
	sortLinkMsgs(dst)
	return dst
}

// sortLinkMsgs orders messages by (at, src, seq). Insertion sort: window
// batches are small (a handful of LLC misses), and this avoids the
// per-call closure allocation of sort.Slice on a hot barrier path.
func sortLinkMsgs(m []linkMsg) {
	for i := 1; i < len(m); i++ {
		for j := i; j > 0 && linkMsgLess(m[j], m[j-1]); j-- {
			m[j], m[j-1] = m[j-1], m[j]
		}
	}
}

func linkMsgLess(a, b linkMsg) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

// bpFor sums core's channel-side rejected submissions across channels.
//
//moca:barrier reads channel-shard counters; runs only between phases
func (s *System) bpFor(core int) uint64 {
	var n uint64
	for _, cs := range s.chans {
		n += cs.bp[core]
	}
	return n
}

// resetShardStats clears the window-accounting the shards accumulate on
// behalf of core statistics (the warmup/measure boundary).
//
//moca:barrier resets channel-shard counters between phases
func (s *System) resetShardStats() {
	for _, cs := range s.chans {
		for i := range cs.bp {
			cs.bp[i] = 0
		}
	}
}

// flushTrace merges the per-shard run-trace stages into the user's sink in
// (timestamp, stage, staging order) order. Stage IDs are fixed (0 =
// OS/coordinator, then cores, then channels), so the merged stream is a
// pure function of per-stage content — identical across shard counts.
//
//moca:barrier merges per-shard trace stages after the run completes
func (s *System) flushTrace() {
	if s.runTrace == nil || len(s.traceStages) == 0 {
		return
	}
	type staged struct {
		ev    obs.Event
		stage int
		seq   int
	}
	var all []staged
	var dropped uint64
	for si, st := range s.traceStages {
		for i, ev := range st.Events() {
			all = append(all, staged{ev: ev, stage: si, seq: i})
		}
		dropped += st.Dropped()
		st.Reset()
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].ev.At != all[j].ev.At {
			return all[i].ev.At < all[j].ev.At
		}
		if all[i].stage != all[j].stage {
			return all[i].stage < all[j].stage
		}
		return all[i].seq < all[j].seq
	})
	for _, e := range all {
		s.runTrace.Emit(e.ev)
	}
	s.runTrace.AddDropped(dropped)
}
