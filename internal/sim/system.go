package sim

import (
	"context"
	"fmt"

	"moca/internal/alloc"
	"moca/internal/cache"
	"moca/internal/cpu"
	"moca/internal/event"
	"moca/internal/heap"
	"moca/internal/mem"
	"moca/internal/obs"
	"moca/internal/profile"
	"moca/internal/vm"
	"moca/internal/workload"
)

// router maps physical line addresses to memory channels: heterogeneous
// modules have a dedicated channel; homogeneous modules interleave across
// their channels at row-buffer granularity (RoRaBaChCo: the Ch bits sit
// just above the column bits, Table I).
type router struct {
	base  []int    // per module: first global channel index
	nchan []int    // per module: channel count
	gran  []uint64 // per module: interleave granularity
	// onAccess, if set, observes every merged request at the window
	// barrier (the migration monitor's per-page access counter).
	onAccess func(paddr uint64)
}

// locate resolves a line address to its global channel index and the
// channel-local address. Pure: safe from any shard.
func (r *router) locate(lineAddr uint64) (ch int, local uint64) {
	module := vm.ModuleOf(lineAddr)
	if module < 0 || module >= len(r.base) {
		panic(fmt.Sprintf("sim: line address %#x maps to unknown module %d", lineAddr, module))
	}
	off := vm.ModuleOffset(lineAddr)
	n := uint64(r.nchan[module])
	if n == 1 {
		return r.base[module], off
	}
	g := r.gran[module]
	c := (off / g) % n
	return r.base[module] + int(c), (off/(g*n))*g + off%g
}

// coreCtx is one core shard: the cpu, its private cache hierarchy, heap,
// and stream, all driven by the shard's own event queue.
//
//moca:shard core
type coreCtx struct {
	proc      int
	q         *event.Queue
	link      *shardLink
	app       *workload.App
	core      *cpu.Core
	hier      *cache.Hierarchy
	allocator *heap.Allocator
	profiler  *profile.Profiler
	stream    cpu.Stream

	// Phase bookkeeping, owned by the shard's worker during a window and
	// by the coordinator at barriers.
	base    uint64
	crossed bool
	counted bool
	dead    bool
	runErr  error

	// tickAt is the fast path's clock cursor: the next cycle this core
	// still has to execute. A compute batch advances it several cycles at
	// once; the lockstep loop skips cycles below it (shard.go).
	tickAt event.Time

	frozen   bool
	snapshot CoreResult
	snapAt   event.Time
}

// System is one fully assembled simulated machine.
type System struct {
	cfg    Config
	q      *event.Queue // coordinator queue: migration epochs and copy pacing
	cycle  event.Time
	window event.Time
	shards int
	simNow event.Time // start of the next window

	cores []*coreCtx
	chans []*chanShard
	links []*shardLink // per core, plus the migration link last

	modules  []*vm.Module
	os       *alloc.OS
	channels []*mem.Controller
	chanCaps []uint64
	route    *router
	migrator *alloc.Migrator // nil unless PolicyMigrate
	migLink  *shardLink

	gate     *faultGate
	pool     *shardPool // non-nil only while a parallel RunContext is active
	fastpath bool       // !cfg.NoFastpath: inline hits + compute batching

	// Phase parameters, published by the coordinator before dispatching a
	// phase and read by the (hoisted, allocation-free) phase jobs below.
	phaseWindowEnd event.Time
	phaseTarget    uint64
	phaseOnCross   func(*coreCtx, event.Time)
	chanJob        func(w int) // built once per RunContext (parallel mode)
	coreJob        func(w int)

	// Observability (nil unless cfg.Obs requests it). runTrace is the
	// caller's sink; shards emit into traceStages (0 = OS/coordinator,
	// then cores, then channels), merged by flushTrace.
	reg         *obs.Registry
	runTrace    *obs.Trace
	traceStages []*obs.Trace
	coordTrace  *obs.Trace

	linkScratch []linkMsg
	fillScratch []chanFill

	// Progress reporting (active only when cfg.Progress is set): base is
	// the instruction credit from completed phases, total the whole run's
	// per-core quota (warmup + measure).
	progressBase  uint64
	progressTotal uint64
}

// New assembles a system running one process per entry of procs (the
// process index is the core index).
//
//moca:barrier construction happens before any worker goroutine exists
func New(cfg Config, procs []ProcSpec) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(procs) == 0 {
		return nil, fmt.Errorf("sim: no processes")
	}

	s := &System{
		cfg:      cfg,
		q:        event.NewQueue(),
		cycle:    cfg.Core.Cycle,
		shards:   cfg.Shards,
		fastpath: !cfg.NoFastpath,
	}
	s.window = windowCycles * s.cycle

	totalChannels := 0
	for _, spec := range cfg.Modules {
		totalChannels += spec.Channels
	}

	// Observability: a per-system registry (concurrent runs never share
	// one) and the caller's trace sink. Both stay nil when disabled, so
	// every component hook below degrades to a nil check. Trace emissions
	// go to per-shard stages so shard workers never contend on — or
	// reorder — the caller's sink; flushTrace merges deterministically.
	if cfg.Obs.Metrics {
		s.reg = obs.NewRegistry()
	}
	s.runTrace = cfg.Obs.Trace
	if s.runTrace != nil {
		for i := 0; i < 1+len(procs)+totalChannels; i++ {
			s.traceStages = append(s.traceStages, obs.NewTrace(s.runTrace.Cap()))
		}
		s.coordTrace = s.traceStages[0]
	}
	if cfg.Obs.Enabled() {
		s.q.AttachObs(s.reg)
	}
	coreStage := func(i int) *obs.Trace {
		if s.traceStages == nil {
			return nil
		}
		return s.traceStages[1+i]
	}
	chanStage := func(ci int) *obs.Trace {
		if s.traceStages == nil {
			return nil
		}
		return s.traceStages[1+len(procs)+ci]
	}

	// Memory modules, channel shards, and the router.
	s.route = &router{}
	var infos []alloc.ModuleInfo
	for i, spec := range cfg.Modules {
		m, err := vm.NewModule(i, spec.Kind, spec.CapacityBytes)
		if err != nil {
			return nil, err
		}
		s.modules = append(s.modules, m)
		infos = append(infos, alloc.ModuleInfo{ID: i, Kind: spec.Kind})

		dev := mem.Preset(spec.Kind)
		perChan := spec.CapacityBytes / uint64(spec.Channels)
		s.route.base = append(s.route.base, len(s.channels))
		s.route.nchan = append(s.route.nchan, spec.Channels)
		s.route.gran = append(s.route.gran, uint64(dev.Geometry.RowBufferBytes))
		for ch := 0; ch < spec.Channels; ch++ {
			name := fmt.Sprintf("%s-m%d-ch%d", spec.Kind, i, ch)
			ci := len(s.chans)
			cs, err := newChanShard(ci, func(q *event.Queue) (*mem.Controller, error) {
				return mem.NewController(name, q, mem.ChannelConfig{
					Device: dev, CapacityBytes: perChan, Scheduler: cfg.Scheduler,
					RowPolicy: cfg.RowPolicy, BankStripe: cfg.BankStripe,
				})
			}, len(procs), s.cycle)
			if err != nil {
				return nil, err
			}
			if cfg.Obs.Enabled() {
				cs.q.AttachObs(s.reg)
				cs.ctrl.AttachObs(s.reg, chanStage(ci))
				cs.reg = s.reg
			}
			s.chans = append(s.chans, cs)
			s.channels = append(s.channels, cs.ctrl)
			s.chanCaps = append(s.chanCaps, perChan)
		}
	}

	// Placement policy and OS.
	var policy alloc.Policy
	switch cfg.Policy {
	case PolicyFixed:
		order := make([]int, len(cfg.Modules))
		for i := range order {
			order[i] = i
		}
		policy = alloc.NewFixed("fixed", order)
	case PolicyAppLevel:
		policy = alloc.NewAppLevel(infos, cfg.Chains)
	case PolicyMOCA:
		policy = alloc.NewMOCA(infos, cfg.Chains)
	case PolicyMigrate:
		// Pages start in slow memory (low-power first); the epoch-based
		// monitor promotes hot pages into RLDRAM/HBM at runtime.
		order := alloc.ExpandChain(infos, []mem.Kind{mem.LPDDR2, mem.DDR3, mem.HBM, mem.RLDRAM})
		policy = alloc.NewFixed("migrate", order)
	default:
		return nil, fmt.Errorf("sim: unknown policy %d", int(cfg.Policy))
	}
	osys, err := alloc.NewOS(s.modules, policy)
	if err != nil {
		return nil, err
	}
	s.os = osys
	s.gate = newFaultGate(len(procs), cfg.Shards > 1)
	osys.SetFaultGate(s.gate.wait)
	if cfg.Obs.Enabled() {
		osys.AttachObs(s.reg, s.coordTrace, func(proc int) int64 {
			return int64(s.cores[proc].q.Now())
		})
	}

	// Cores: heap, app, hierarchy, core, profiler — one shard each.
	for i, p := range procs {
		spec := p.App.ForInput(p.Input)
		allocator := heap.New(heap.Config{NamingDepth: p.NamingDepth, Classes: p.Classes})
		app, err := workload.Instantiate(spec, allocator, uint64(i))
		if err != nil {
			return nil, err
		}
		osys.AddProcess(i, p.AppClass)

		cq := event.NewQueue()
		if cfg.Obs.Enabled() {
			cq.AttachObs(s.reg)
		}
		link := &shardLink{q: cq, route: s.route, delay: s.window, src: i, out: make([][]linkMsg, totalChannels)}
		hcfg := cache.HierarchyConfig{L1: cfg.CacheL1, L2: cfg.CacheL2, CPUCycle: cfg.Core.Cycle, Core: i, Prefetch: cfg.Prefetch}
		hier, err := cache.NewHierarchy(cq, link, hcfg)
		if err != nil {
			return nil, err
		}
		if cfg.Obs.Enabled() {
			hier.AttachObs(s.reg, coreStage(i))
		}
		stream := cpu.Stream(app.Stream())
		if p.Stream != nil {
			stream = p.Stream
		}
		core, err := cpu.New(i, cfg.Core, stream, alloc.Translator{OS: osys, Proc: i}, hier)
		if err != nil {
			return nil, err
		}
		core.SetFastpath(s.fastpath)

		ctx := &coreCtx{proc: i, q: cq, link: link, app: app, core: core, hier: hier, allocator: allocator, stream: stream}
		if cfg.Profile {
			prof := profile.New()
			ctx.profiler = prof
			core.OnRetire = prof.OnRetire
			core.OnMemLoadRetire = prof.OnMemLoadRetire
			hier.OnLLCMiss = prof.OnLLCMiss
			hier.OnStore = prof.OnStore
			hier.OnLoad = prof.OnLoad
		}
		s.cores = append(s.cores, ctx)
		s.links = append(s.links, link)
	}

	// The migration engine's copy traffic crosses barriers like any core's
	// demand traffic, through its own link on the coordinator queue.
	s.migLink = &shardLink{q: s.q, route: s.route, delay: s.window, src: len(procs), out: make([][]linkMsg, totalChannels)}
	s.links = append(s.links, s.migLink)

	if cfg.Policy == PolicyMigrate {
		if err := s.setupMigration(cfg, infos); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// OS returns the operating-system layer (for placement inspection).
func (s *System) OS() *alloc.OS { return s.os }

// App returns core i's application instance.
func (s *System) App(i int) *workload.App { return s.cores[i].app }

// Allocator returns core i's heap.
func (s *System) Allocator(i int) *heap.Allocator { return s.cores[i].allocator }

// SuggestedWarmup returns an instruction count that comfortably covers
// every core's initialization phase plus cache warm-up.
func (s *System) SuggestedWarmup() uint64 {
	var max uint64
	for _, c := range s.cores {
		if n := c.app.InitInstructions(); n > max {
			max = n
		}
	}
	return max + 100_000
}

// Run simulates: every core first retires warmup instructions (statistics
// are then reset with cache/allocation state preserved), then the measured
// window runs until every core retires measure further instructions.
// Per-core statistics freeze as each core crosses its quota; cores keep
// executing so memory contention persists until the last core finishes,
// as in standard multi-program methodology.
//
// With cfg.Shards > 1 the shards execute on worker goroutines; results are
// byte-identical to serial mode (see shard.go).
func (s *System) Run(warmup, measure uint64) (*Result, error) {
	return s.RunContext(context.Background(), warmup, measure)
}

// RunContext is Run with cancellation: the simulation loop polls ctx at
// every window barrier and returns ctx.Err() promptly when it fires, so
// an in-flight run can be abandoned cleanly (Ctrl-C in the commands).
// Cancellation never perturbs a run that completes: the poll is a
// read-only check between deterministic windows.
//
//moca:barrier assembles per-shard results after the phases complete
func (s *System) RunContext(ctx context.Context, warmup, measure uint64) (*Result, error) {
	if measure == 0 {
		return nil, fmt.Errorf("sim: zero measurement window")
	}
	if s.shards > 1 {
		workers := s.shards
		if m := max(len(s.cores), len(s.chans)); workers > m {
			workers = m
		}
		if workers > 1 {
			s.pool = newShardPool(workers)
			defer func() { s.pool.stop(); s.pool = nil }()
			// Build the phase jobs once: dispatching a window must not
			// allocate (the parameters travel through the phase* fields).
			s.chanJob = func(w int) { s.chanWindow(w, s.pool.workers) }
			s.coreJob = func(w int) { s.coreWindow(w, s.pool.workers) }
		}
	}

	s.progressBase, s.progressTotal = 0, warmup+measure

	if err := s.runPhase(ctx, warmup, nil); err != nil {
		return nil, err
	}
	s.progressBase = warmup
	for _, c := range s.cores {
		c.core.ResetStats()
		c.hier.ResetStats()
	}
	for _, ch := range s.channels {
		ch.ResetStats()
	}
	s.resetShardStats()
	// The observability snapshot covers the same measured window as the
	// component stats (nil-safe when metrics are disabled). Controllers
	// first flush their virtual-tick accounts so the event counters read
	// as if every device clock had been polled.
	for _, ch := range s.channels {
		ch.SyncObs()
	}
	s.reg.Reset()
	start := s.simNow

	snap := func(c *coreCtx, at event.Time) {
		c.frozen = true
		c.snapAt = at
		c.snapshot = s.coreResult(c, at-start)
	}
	if err := s.runPhase(ctx, measure, snap); err != nil {
		return nil, err
	}
	end := s.simNow
	for _, ch := range s.channels {
		ch.SyncObs()
	}
	s.flushTrace()

	res := &Result{
		Name:      s.cfg.Name,
		Policy:    s.os.Policy().Name(),
		Elapsed:   end - start,
		OS:        s.os.Stats(),
		Migration: s.MigrationStats(),
		Obs:       s.reg.Snapshot(),
	}
	for _, m := range s.cfg.Modules {
		res.ModuleKinds = append(res.ModuleKinds, m.Kind)
	}
	for i, c := range s.cores {
		cr := c.snapshot
		if !c.frozen {
			cr = s.coreResult(c, end-start)
			cr.Hier.BackPressure += s.bpFor(i)
		}
		res.Cores = append(res.Cores, cr)
	}
	for i, ch := range s.channels {
		res.Channels = append(res.Channels, ChannelResult{
			Name:          ch.Name,
			Kind:          ch.Config().Device.Kind,
			CapacityBytes: s.chanCaps[i],
			Stats:         ch.Stats(),
		})
	}
	res.computeEnergy(s.cfg, end-start)
	return res, nil
}

// streamErr extracts a terminal decode error from streams that expose one
// (trace.Reader, trace.Loop); built-in generators are infinite and report
// nothing.
func streamErr(s cpu.Stream) error {
	if ec, ok := s.(interface{ Err() error }); ok {
		return ec.Err()
	}
	return nil
}

func (s *System) coreResult(c *coreCtx, window event.Time) CoreResult {
	cr := CoreResult{
		App:      c.app.Spec.Name,
		CPU:      c.core.Stats(),
		Hier:     c.hier.Stats(),
		L1:       c.hier.L1().Stats(),
		L2:       c.hier.L2().Stats(),
		Prefetch: c.hier.PrefetchStats(),
		Window:   window,
	}
	if pt, ok := s.os.PageTable(c.proc); ok {
		cr.PagesByModule = pt.ResidentByModule()
	}
	if tlb, ok := s.os.TLB(c.proc); ok {
		cr.TLBHitRate = tlb.HitRate()
	}
	if c.profiler != nil {
		pr := c.profiler.Snapshot(c.app.Spec.Name, c.allocator.Names(), s.cfg.Thresholds)
		cr.Profile = &pr
	}
	return cr
}
