package sim

import (
	"context"
	"fmt"

	"moca/internal/alloc"
	"moca/internal/cache"
	"moca/internal/cpu"
	"moca/internal/event"
	"moca/internal/heap"
	"moca/internal/mem"
	"moca/internal/obs"
	"moca/internal/profile"
	"moca/internal/vm"
	"moca/internal/workload"
)

// router maps physical line addresses to memory channels: heterogeneous
// modules have a dedicated channel; homogeneous modules interleave across
// their channels at row-buffer granularity (RoRaBaChCo: the Ch bits sit
// just above the column bits, Table I).
type router struct {
	groups [][]*mem.Controller // per module
	gran   []uint64            // interleave granularity per module
	// onAccess, if set, observes every submitted request (the migration
	// monitor's per-page access counter).
	onAccess func(paddr uint64)
}

// Submit implements cache.Backend. The sink and token pass through to the
// selected controller, which owns a pool of request records — no per-access
// allocation happens on this path.
func (r *router) Submit(lineAddr uint64, write bool, core int, obj uint64, sink mem.DoneSink, token uint64) bool {
	if r.onAccess != nil {
		r.onAccess(lineAddr)
	}
	module := vm.ModuleOf(lineAddr)
	if module < 0 || module >= len(r.groups) {
		panic(fmt.Sprintf("sim: line address %#x maps to unknown module %d", lineAddr, module))
	}
	off := vm.ModuleOffset(lineAddr)
	chans := r.groups[module]
	var ctrl *mem.Controller
	var local uint64
	if len(chans) == 1 {
		ctrl, local = chans[0], off
	} else {
		g := r.gran[module]
		n := uint64(len(chans))
		ch := (off / g) % n
		ctrl = chans[ch]
		local = (off/(g*n))*g + off%g
	}
	return ctrl.EnqueueLine(local, write, core, obj, sink, token)
}

type coreCtx struct {
	proc      int
	app       *workload.App
	core      *cpu.Core
	hier      *cache.Hierarchy
	allocator *heap.Allocator
	profiler  *profile.Profiler
	stream    cpu.Stream

	frozen   bool
	snapshot CoreResult
	snapAt   event.Time
}

// System is one fully assembled simulated machine.
type System struct {
	cfg   Config
	q     *event.Queue
	cores []*coreCtx

	modules  []*vm.Module
	os       *alloc.OS
	channels []*mem.Controller
	chanCaps []uint64
	route    *router
	migrator *alloc.Migrator // nil unless PolicyMigrate

	// Observability (nil unless cfg.Obs requests it).
	reg      *obs.Registry
	runTrace *obs.Trace
}

// New assembles a system running one process per entry of procs (the
// process index is the core index).
func New(cfg Config, procs []ProcSpec) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(procs) == 0 {
		return nil, fmt.Errorf("sim: no processes")
	}

	s := &System{cfg: cfg, q: event.NewQueue()}

	// Observability: a per-system registry (concurrent runs never share
	// one) and the caller's trace sink. Both stay nil when disabled, so
	// every component hook below degrades to a nil check.
	if cfg.Obs.Metrics {
		s.reg = obs.NewRegistry()
	}
	s.runTrace = cfg.Obs.Trace
	if cfg.Obs.Enabled() {
		s.q.AttachObs(s.reg)
	}

	// Memory modules, channels, and the router.
	s.route = &router{}
	var infos []alloc.ModuleInfo
	for i, spec := range cfg.Modules {
		m, err := vm.NewModule(i, spec.Kind, spec.CapacityBytes)
		if err != nil {
			return nil, err
		}
		s.modules = append(s.modules, m)
		infos = append(infos, alloc.ModuleInfo{ID: i, Kind: spec.Kind})

		dev := mem.Preset(spec.Kind)
		perChan := spec.CapacityBytes / uint64(spec.Channels)
		var group []*mem.Controller
		for ch := 0; ch < spec.Channels; ch++ {
			ctrl, err := mem.NewController(
				fmt.Sprintf("%s-m%d-ch%d", spec.Kind, i, ch),
				s.q,
				mem.ChannelConfig{
					Device: dev, CapacityBytes: perChan, Scheduler: cfg.Scheduler,
					RowPolicy: cfg.RowPolicy, BankStripe: cfg.BankStripe,
				},
			)
			if err != nil {
				return nil, err
			}
			if cfg.Obs.Enabled() {
				ctrl.AttachObs(s.reg, s.runTrace)
			}
			group = append(group, ctrl)
			s.channels = append(s.channels, ctrl)
			s.chanCaps = append(s.chanCaps, perChan)
		}
		s.route.groups = append(s.route.groups, group)
		s.route.gran = append(s.route.gran, uint64(dev.Geometry.RowBufferBytes))
	}

	// Placement policy and OS.
	var policy alloc.Policy
	switch cfg.Policy {
	case PolicyFixed:
		order := make([]int, len(cfg.Modules))
		for i := range order {
			order[i] = i
		}
		policy = alloc.NewFixed("fixed", order)
	case PolicyAppLevel:
		policy = alloc.NewAppLevel(infos, cfg.Chains)
	case PolicyMOCA:
		policy = alloc.NewMOCA(infos, cfg.Chains)
	case PolicyMigrate:
		// Pages start in slow memory (low-power first); the epoch-based
		// monitor promotes hot pages into RLDRAM/HBM at runtime.
		order := alloc.ExpandChain(infos, []mem.Kind{mem.LPDDR2, mem.DDR3, mem.HBM, mem.RLDRAM})
		policy = alloc.NewFixed("migrate", order)
	default:
		return nil, fmt.Errorf("sim: unknown policy %d", int(cfg.Policy))
	}
	osys, err := alloc.NewOS(s.modules, policy)
	if err != nil {
		return nil, err
	}
	s.os = osys
	if cfg.Obs.Enabled() {
		osys.AttachObs(s.reg, s.runTrace, s.q.Now)
	}

	if cfg.Policy == PolicyMigrate {
		if err := s.setupMigration(cfg, infos); err != nil {
			return nil, err
		}
	}

	// Cores: heap, app, hierarchy, core, profiler.
	for i, p := range procs {
		spec := p.App.ForInput(p.Input)
		allocator := heap.New(heap.Config{NamingDepth: p.NamingDepth, Classes: p.Classes})
		app, err := workload.Instantiate(spec, allocator, uint64(i))
		if err != nil {
			return nil, err
		}
		osys.AddProcess(i, p.AppClass)

		hcfg := cache.HierarchyConfig{L1: cfg.CacheL1, L2: cfg.CacheL2, CPUCycle: cfg.Core.Cycle, Core: i, Prefetch: cfg.Prefetch}
		hier, err := cache.NewHierarchy(s.q, s.route, hcfg)
		if err != nil {
			return nil, err
		}
		if cfg.Obs.Enabled() {
			hier.AttachObs(s.reg, s.runTrace)
		}
		stream := cpu.Stream(app.Stream())
		if p.Stream != nil {
			stream = p.Stream
		}
		core, err := cpu.New(i, cfg.Core, stream, alloc.Translator{OS: osys, Proc: i}, hier)
		if err != nil {
			return nil, err
		}

		ctx := &coreCtx{proc: i, app: app, core: core, hier: hier, allocator: allocator, stream: stream}
		if cfg.Profile {
			prof := profile.New()
			ctx.profiler = prof
			core.OnRetire = prof.OnRetire
			core.OnMemLoadRetire = prof.OnMemLoadRetire
			hier.OnLLCMiss = prof.OnLLCMiss
			hier.OnStore = prof.OnStore
			hier.OnLoad = prof.OnLoad
		}
		s.cores = append(s.cores, ctx)
	}
	return s, nil
}

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// OS returns the operating-system layer (for placement inspection).
func (s *System) OS() *alloc.OS { return s.os }

// App returns core i's application instance.
func (s *System) App(i int) *workload.App { return s.cores[i].app }

// Allocator returns core i's heap.
func (s *System) Allocator(i int) *heap.Allocator { return s.cores[i].allocator }

// SuggestedWarmup returns an instruction count that comfortably covers
// every core's initialization phase plus cache warm-up.
func (s *System) SuggestedWarmup() uint64 {
	var max uint64
	for _, c := range s.cores {
		if n := c.app.InitInstructions(); n > max {
			max = n
		}
	}
	return max + 100_000
}

// Run simulates: every core first retires warmup instructions (statistics
// are then reset with cache/allocation state preserved), then the measured
// window runs until every core retires measure further instructions.
// Per-core statistics freeze as each core crosses its quota; cores keep
// executing so memory contention persists until the last core finishes,
// as in standard multi-program methodology.
func (s *System) Run(warmup, measure uint64) (*Result, error) {
	return s.RunContext(context.Background(), warmup, measure)
}

// RunContext is Run with cancellation: the simulation loop polls ctx
// between cycle batches and returns ctx.Err() promptly when it fires, so
// an in-flight run can be abandoned cleanly (Ctrl-C in the commands).
// Cancellation never perturbs a run that completes: the poll is a
// read-only check between deterministic cycles.
func (s *System) RunContext(ctx context.Context, warmup, measure uint64) (*Result, error) {
	if measure == 0 {
		return nil, fmt.Errorf("sim: zero measurement window")
	}
	cycle := s.cfg.Core.Cycle

	if err := s.runPhase(ctx, warmup, cycle, nil); err != nil {
		return nil, err
	}
	for _, c := range s.cores {
		c.core.ResetStats()
		c.hier.ResetStats()
	}
	for _, ch := range s.channels {
		ch.ResetStats()
	}
	// The observability snapshot covers the same measured window as the
	// component stats (nil-safe when metrics are disabled). Controllers
	// first flush their virtual-tick accounts so the event counters read
	// as if every device clock had been polled.
	for _, ch := range s.channels {
		ch.SyncObs()
	}
	s.reg.Reset()
	start := s.q.Now()

	snap := func(c *coreCtx) {
		c.frozen = true
		c.snapAt = s.q.Now()
		c.snapshot = s.coreResult(c, s.q.Now()-start)
	}
	if err := s.runPhase(ctx, measure, cycle, snap); err != nil {
		return nil, err
	}
	end := s.q.Now()
	for _, ch := range s.channels {
		ch.SyncObs()
	}

	res := &Result{
		Name:      s.cfg.Name,
		Policy:    s.os.Policy().Name(),
		Elapsed:   end - start,
		OS:        s.os.Stats(),
		Migration: s.MigrationStats(),
		Obs:       s.reg.Snapshot(),
	}
	for _, m := range s.cfg.Modules {
		res.ModuleKinds = append(res.ModuleKinds, m.Kind)
	}
	for _, c := range s.cores {
		cr := c.snapshot
		if !c.frozen {
			cr = s.coreResult(c, end-start)
		}
		res.Cores = append(res.Cores, cr)
	}
	for i, ch := range s.channels {
		res.Channels = append(res.Channels, ChannelResult{
			Name:          ch.Name,
			Kind:          ch.Config().Device.Kind,
			CapacityBytes: s.chanCaps[i],
			Stats:         ch.Stats(),
		})
	}
	res.computeEnergy(s.cfg, end-start)
	return res, nil
}

// runPhase ticks all cores until each has retired `target` instructions
// beyond its current count. onCross, if non-nil, fires once per core when
// it crosses (used to freeze measurement snapshots).
func (s *System) runPhase(ctx context.Context, target uint64, cycle event.Time, onCross func(*coreCtx)) error {
	if target == 0 {
		return nil
	}
	base := make([]uint64, len(s.cores))
	crossed := make([]bool, len(s.cores))
	for i, c := range s.cores {
		base[i] = c.core.Stats().Instructions
		c.frozen = false
	}
	remaining := len(s.cores)
	now := s.q.Now()
	done := ctx.Done()
	// Watchdog: generous IPC floor of 1/400 plus fixed slack.
	maxCycles := target*400 + 50_000_000
	for cyc := uint64(0); remaining > 0; cyc++ {
		if cyc > maxCycles {
			return fmt.Errorf("sim: %s: watchdog expired after %d cycles (%d/%d cores finished %d instructions)",
				s.cfg.Name, cyc, len(s.cores)-remaining, len(s.cores), target)
		}
		if done != nil && cyc&4095 == 0 {
			select {
			case <-done:
				return fmt.Errorf("sim: %s: canceled after %d cycles: %w", s.cfg.Name, cyc, ctx.Err())
			default:
			}
		}
		s.q.RunUntil(now)
		for i, c := range s.cores {
			c.core.Tick()
			if err := c.core.Err(); err != nil {
				return fmt.Errorf("sim: %s core %d (%s): %w", s.cfg.Name, i, c.app.Spec.Name, err)
			}
			if !crossed[i] && c.core.Stats().Instructions-base[i] >= target {
				crossed[i] = true
				remaining--
				if onCross != nil {
					onCross(c)
				}
			}
			if !crossed[i] && c.core.Done() {
				// The stream ran dry before the quota: this core can never
				// cross, so fail now instead of spinning into the watchdog.
				// A replayed trace that ended on a decode error reports
				// that error, not a bare end-of-stream.
				short := target - (c.core.Stats().Instructions - base[i])
				if serr := streamErr(c.stream); serr != nil {
					return fmt.Errorf("sim: %s core %d (%s): trace decode: %w", s.cfg.Name, i, c.app.Spec.Name, serr)
				}
				return fmt.Errorf("sim: %s core %d (%s): instruction stream ended %d instructions short of its %d quota",
					s.cfg.Name, i, c.app.Spec.Name, short, target)
			}
		}
		now += cycle
	}
	return nil
}

// streamErr extracts a terminal decode error from streams that expose one
// (trace.Reader, trace.Loop); built-in generators are infinite and report
// nothing.
func streamErr(s cpu.Stream) error {
	if ec, ok := s.(interface{ Err() error }); ok {
		return ec.Err()
	}
	return nil
}

func (s *System) coreResult(c *coreCtx, window event.Time) CoreResult {
	cr := CoreResult{
		App:      c.app.Spec.Name,
		CPU:      c.core.Stats(),
		Hier:     c.hier.Stats(),
		L1:       c.hier.L1().Stats(),
		L2:       c.hier.L2().Stats(),
		Prefetch: c.hier.PrefetchStats(),
		Window:   window,
	}
	if pt, ok := s.os.PageTable(c.proc); ok {
		cr.PagesByModule = pt.ResidentByModule()
	}
	if tlb, ok := s.os.TLB(c.proc); ok {
		cr.TLBHitRate = tlb.HitRate()
	}
	if c.profiler != nil {
		pr := c.profiler.Snapshot(c.app.Spec.Name, c.allocator.Names(), s.cfg.Thresholds)
		cr.Profile = &pr
	}
	return cr
}
