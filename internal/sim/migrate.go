package sim

import (
	"fmt"

	"moca/internal/alloc"
	"moca/internal/cache"
	"moca/internal/event"
	"moca/internal/mem"
	"moca/internal/obs"
	"moca/internal/vm"
)

// setupMigration attaches the hot-page migration engine (the Section IV-E
// baseline) to the system: an access monitor on the memory router and a
// recurring epoch event that promotes hot pages, charging copy traffic on
// both channels and cache shootdowns for moved pages.
func (s *System) setupMigration(cfg Config, infos []alloc.ModuleInfo) error {
	mcfg := cfg.Migration
	if len(mcfg.FastModules) == 0 {
		// Promotion targets: latency-optimized first, then bandwidth.
		for _, kind := range []mem.Kind{mem.RLDRAM, mem.HBM} {
			for _, info := range infos {
				if info.Kind == kind {
					mcfg.FastModules = append(mcfg.FastModules, info.ID)
				}
			}
		}
		if len(mcfg.FastModules) == 0 {
			return fmt.Errorf("sim: migration policy needs an RLDRAM or HBM module")
		}
	}
	mig, err := alloc.NewMigrator(s.os, mcfg)
	if err != nil {
		return err
	}
	s.migrator = mig
	s.route.onAccess = mig.RecordAccess

	epoch := cfg.MigrationEpoch
	if epoch <= 0 {
		epoch = 50 * event.Microsecond
	}
	migrations := s.reg.Counter("alloc.migrations")
	var tick func()
	tick = func() {
		moves := mig.Epoch()
		if len(moves) > 0 {
			migrations.Add(uint64(len(moves)))
			if s.runTrace != nil {
				for _, mv := range moves {
					s.runTrace.Emit(obs.Event{
						At:   int64(s.q.Now()),
						Kind: obs.MigrationTriggered,
						Unit: "migrate",
						Core: mv.Proc,
						Addr: mv.VPage,
						Aux:  uint64(mv.To.Module),
					})
				}
			}
		}
		// Pace the copy engine: pages staggered through the epoch, lines
		// within a page at DMA-burst rate, so copy traffic interferes
		// with demand traffic realistically instead of as one spike.
		const pageStagger = 3 * event.Microsecond
		const lineGap = 40 * event.Nanosecond
		for i, mv := range moves {
			mv := mv
			s.q.After(event.Time(i)*pageStagger, func() {
				s.copyPage(mv, lineGap)
			})
		}
		s.q.After(epoch, tick)
	}
	s.q.After(epoch, tick)
	return nil
}

// copyPage applies the costs of one page move: shoot the old frame's
// lines out of every cache (dirty copies must travel with the page) and
// issue the copy traffic — a read of every line from the old frame and a
// write to the new one, one line per gap. Copy requests are best-effort
// under controller backpressure; the page-table retarget already happened
// at the epoch boundary (the simulator carries no data, so only the
// timing of the copy matters).
func (s *System) copyPage(mv alloc.Migration, gap event.Time) {
	oldBase := vm.Compose(mv.From.Module, mv.From.Number, 0)
	newBase := vm.Compose(mv.To.Module, mv.To.Number, 0)
	for off := uint64(0); off < vm.PageBytes; off += cache.LineBytes {
		off := off
		s.q.After(event.Time(off/cache.LineBytes)*gap, func() {
			for _, c := range s.cores {
				c.hier.InvalidateLine(oldBase + off)
			}
			s.route.Submit(oldBase+off, false, -1, 0, nil)
			s.route.Submit(newBase+off, true, -1, 0, nil)
		})
	}
}

// MigrationStats returns the migration engine's counters (zero value when
// the system does not migrate).
func (s *System) MigrationStats() alloc.MigStats {
	if s.migrator == nil {
		return alloc.MigStats{}
	}
	return s.migrator.Stats()
}
