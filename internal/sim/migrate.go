package sim

import (
	"fmt"

	"moca/internal/alloc"
	"moca/internal/cache"
	"moca/internal/event"
	"moca/internal/mem"
	"moca/internal/obs"
	"moca/internal/vm"
)

// setupMigration attaches the hot-page migration engine (the Section IV-E
// baseline) to the system: an access monitor on the memory router and a
// recurring epoch event that promotes hot pages, charging copy traffic on
// both channels and cache shootdowns for moved pages.
func (s *System) setupMigration(cfg Config, infos []alloc.ModuleInfo) error {
	mcfg := cfg.Migration
	if len(mcfg.FastModules) == 0 {
		// Promotion targets: latency-optimized first, then bandwidth.
		for _, kind := range []mem.Kind{mem.RLDRAM, mem.HBM} {
			for _, info := range infos {
				if info.Kind == kind {
					mcfg.FastModules = append(mcfg.FastModules, info.ID)
				}
			}
		}
		if len(mcfg.FastModules) == 0 {
			return fmt.Errorf("sim: migration policy needs an RLDRAM or HBM module")
		}
	}
	mig, err := alloc.NewMigrator(s.os, mcfg)
	if err != nil {
		return err
	}
	s.migrator = mig
	s.route.onAccess = mig.RecordAccess

	epoch := cfg.MigrationEpoch
	if epoch <= 0 {
		epoch = 50 * event.Microsecond
	}
	d := &migDriver{s: s, mig: mig, epoch: epoch, migrations: s.reg.Counter("alloc.migrations")}
	s.q.PostAfter(epoch, d, mopEpoch, 0, nil)
	return nil
}

// migDriver owns the migration engine's event handling: the recurring epoch
// event plus the staggered page- and line-copy events, all pooled (one
// copyJob allocation per moved page instead of a closure per line).
type migDriver struct {
	s          *System
	mig        *alloc.Migrator
	epoch      event.Time
	migrations *obs.Counter
}

// copyJob is the shared payload of one page move's copy events.
type copyJob struct {
	oldBase, newBase uint64
}

// Migration event opcodes.
const (
	mopEpoch    int32 = iota // recurring epoch boundary
	mopCopyPage              // p = *copyJob: start copying one page
	mopCopyLine              // p = *copyJob, i64 = byte offset within the page
)

// Copy-engine pacing: pages staggered through the epoch, lines within a
// page at DMA-burst rate, so copy traffic interferes with demand traffic
// realistically instead of as one spike.
const (
	migPageStagger = 3 * event.Microsecond
	migLineGap     = 40 * event.Nanosecond
)

func (d *migDriver) OnEvent(_ event.Time, op int32, i64 int64, p any) {
	switch op {
	case mopEpoch:
		d.runEpoch()
		d.s.q.PostAfter(d.epoch, d, mopEpoch, 0, nil)
	case mopCopyPage:
		d.startPage(p.(*copyJob))
	case mopCopyLine:
		d.copyLine(p.(*copyJob), uint64(i64))
	}
}

func (d *migDriver) runEpoch() {
	s := d.s
	moves := d.mig.Epoch()
	if len(moves) > 0 {
		d.migrations.Add(uint64(len(moves)))
		if s.coordTrace != nil {
			for _, mv := range moves {
				s.coordTrace.Emit(obs.Event{
					At:   int64(s.q.Now()),
					Kind: obs.MigrationTriggered,
					Unit: "migrate",
					Core: mv.Proc,
					Addr: mv.VPage,
					Aux:  uint64(mv.To.Module),
				})
			}
		}
	}
	for i, mv := range moves {
		job := &copyJob{
			oldBase: vm.Compose(mv.From.Module, mv.From.Number, 0),
			newBase: vm.Compose(mv.To.Module, mv.To.Number, 0),
		}
		s.q.PostAfter(event.Time(i)*migPageStagger, d, mopCopyPage, 0, job)
	}
}

// startPage schedules the line copies of one page move. The page-table
// retarget already happened at the epoch boundary (the simulator carries no
// data, so only the timing of the copy matters).
func (d *migDriver) startPage(job *copyJob) {
	for off := uint64(0); off < vm.PageBytes; off += cache.LineBytes {
		d.s.q.PostAfter(event.Time(off/cache.LineBytes)*migLineGap, d, mopCopyLine, int64(off), job)
	}
}

// copyLine applies the costs of copying one line: shoot it out of every
// cache (dirty copies must travel with the page) and issue a read of the
// old frame's line plus a write to the new one. The coordinator queue only
// runs at window barriers, so the shootdowns have exclusive access to the
// core shards; the copy traffic crosses to the channel shards through the
// migration link and stays best-effort under controller backpressure.
//
//moca:barrier migration events run on the coordinator queue at barriers
func (d *migDriver) copyLine(job *copyJob, off uint64) {
	s := d.s
	for _, c := range s.cores {
		c.hier.InvalidateLine(job.oldBase + off)
	}
	s.migLink.Submit(job.oldBase+off, false, -1, 0, nil, 0)
	s.migLink.Submit(job.newBase+off, true, -1, 0, nil, 0)
}

// MigrationStats returns the migration engine's counters (zero value when
// the system does not migrate).
func (s *System) MigrationStats() alloc.MigStats {
	if s.migrator == nil {
		return alloc.MigStats{}
	}
	return s.migrator.Stats()
}
