package sim

import (
	"testing"

	"moca/internal/classify"
	"moca/internal/mem"
	"moca/internal/vm"
	"moca/internal/workload"
)

func TestMigrationRunPromotesHotPages(t *testing.T) {
	cfg := DefaultConfig("migrate", Heterogeneous(Config1), PolicyMigrate)
	sys, err := New(cfg, []ProcSpec{{App: workload.MCF(), Input: workload.Ref}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(sys.SuggestedWarmup(), 300_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "migrate" {
		t.Errorf("policy = %q", res.Policy)
	}
	mig := res.Migration
	if mig.Epochs == 0 {
		t.Fatal("no migration epochs ran")
	}
	if mig.Promotions == 0 {
		t.Fatal("mcf's hot pages were never promoted")
	}
	if mig.CopiedKB != (mig.Promotions+mig.Demotions)*vm.PageBytes/1024 {
		t.Errorf("copied %d KB for %d moves", mig.CopiedKB, mig.Promotions+mig.Demotions)
	}
	// Promoted pages must be resident on the fast modules.
	pages := res.PagesOnKind()
	if pages[mem.RLDRAM] == 0 && pages[mem.HBM] == 0 {
		t.Errorf("no pages on fast modules after migration: %v", pages)
	}
	// Fast-channel traffic exists after promotion.
	var fastReqs uint64
	for _, ch := range res.Channels {
		if ch.Kind == mem.RLDRAM || ch.Kind == mem.HBM {
			fastReqs += ch.Stats.Requests()
		}
	}
	if fastReqs == 0 {
		t.Error("no requests reached fast channels despite promotions")
	}
}

func TestMigrationBeatsStaticSlowPlacement(t *testing.T) {
	// Migration must improve a latency-bound app versus leaving
	// everything in LPDDR (its own starting placement).
	run := func(policy PolicyKind) *Result {
		cfg := DefaultConfig("p", Heterogeneous(Config1), policy)
		if policy == PolicyAppLevel {
			// Same starting point: app forced to the LP chain.
			cfg.Policy = PolicyAppLevel
		}
		procs := []ProcSpec{{App: workload.MCF(), Input: workload.Ref, AppClass: classify.NonIntensive}}
		sys, err := New(cfg, procs)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(sys.SuggestedWarmup(), 300_000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	static := run(PolicyAppLevel) // N-classed app: all pages stay on LPDDR
	migrated := run(PolicyMigrate)
	if migrated.AvgMemAccessTime() >= static.AvgMemAccessTime() {
		t.Errorf("migration (%d ps) no faster than static slow placement (%d ps)",
			migrated.AvgMemAccessTime(), static.AvgMemAccessTime())
	}
}

func TestMigrationDeterministic(t *testing.T) {
	run := func() (uint64, int64) {
		cfg := DefaultConfig("migrate", Heterogeneous(Config1), PolicyMigrate)
		sys, err := New(cfg, []ProcSpec{{App: workload.Tracking(), Input: workload.Ref}})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(60_000, 80_000)
		if err != nil {
			t.Fatal(err)
		}
		return res.Migration.Promotions, int64(res.AvgMemAccessTime())
	}
	p1, l1 := run()
	p2, l2 := run()
	if p1 != p2 || l1 != l2 {
		t.Errorf("migration runs diverged: (%d,%d) vs (%d,%d)", p1, l1, p2, l2)
	}
}

func TestMigrationRequiresFastModule(t *testing.T) {
	cfg := DefaultConfig("migrate", Homogeneous(mem.LPDDR2), PolicyMigrate)
	if _, err := New(cfg, []ProcSpec{{App: workload.GCC(), Input: workload.Ref}}); err == nil {
		t.Error("migration over an all-LPDDR system accepted")
	}
}

func TestNonMigrationRunsReportZeroStats(t *testing.T) {
	cfg := DefaultConfig("ddr3", Homogeneous(mem.DDR3), PolicyFixed)
	sys, err := New(cfg, []ProcSpec{{App: workload.Sift(), Input: workload.Ref}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(50_000, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Migration.Promotions != 0 || res.Migration.Epochs != 0 {
		t.Errorf("non-migration run has migration stats: %+v", res.Migration)
	}
}
