package sim

import (
	"testing"

	"moca/internal/mem"
	"moca/internal/workload"
)

// TestProgressHook: the Progress callback reports monotonically
// non-decreasing completion over a fixed total of warmup+measure, finishes
// exactly at total, and never perturbs the result — a hooked run stays
// byte-identical to a plain one.
func TestProgressHook(t *testing.T) {
	run := func(hook func(done, total uint64)) *Result {
		cfg := DefaultConfig("homogen-ddr3", Homogeneous(mem.DDR3), PolicyFixed)
		cfg.Progress = hook
		sys, err := New(cfg, []ProcSpec{{App: workload.MCF(), Input: workload.Ref}})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(sys.SuggestedWarmup(), testMeasure)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	var ticks int
	var last, lastTotal uint64
	hooked := run(func(done, total uint64) {
		ticks++
		if done < last {
			t.Errorf("progress went backwards: %d after %d", done, last)
		}
		if done > total {
			t.Errorf("progress overshot: %d/%d", done, total)
		}
		if lastTotal != 0 && total != lastTotal {
			t.Errorf("total changed mid-run: %d then %d", lastTotal, total)
		}
		last, lastTotal = done, total
	})
	if ticks < 2 {
		t.Fatalf("progress hook fired %d times, want at least start and finish", ticks)
	}
	if last != lastTotal || last == 0 {
		t.Errorf("final progress %d/%d, want completion at a nonzero total", last, lastTotal)
	}

	plain := run(nil)
	ha, err := hooked.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	pa, err := plain.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(ha) != string(pa) {
		t.Error("progress hook perturbed the result bytes")
	}
}
