package sim

import (
	"testing"

	"moca/internal/classify"
	"moca/internal/heap"
	"moca/internal/mem"
	"moca/internal/workload"
)

const (
	testWarm    = 60_000
	testMeasure = 150_000
)

func runSingle(t *testing.T, cfg Config, proc ProcSpec) *Result {
	t.Helper()
	sys, err := New(cfg, []ProcSpec{proc})
	if err != nil {
		t.Fatal(err)
	}
	warm := sys.SuggestedWarmup()
	res, err := sys.Run(warm, testMeasure)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestValidateConfigs(t *testing.T) {
	cfg := DefaultConfig("x", Homogeneous(mem.DDR3), PolicyFixed)
	if err := cfg.Validate(); err != nil {
		t.Error(err)
	}
	bad := cfg
	bad.Modules = nil
	if err := bad.Validate(); err == nil {
		t.Error("no modules accepted")
	}
	bad = cfg
	bad.Modules = []ModuleSpec{{Kind: mem.DDR3, CapacityBytes: 1 << 20, Channels: 0}}
	if err := bad.Validate(); err == nil {
		t.Error("zero channels accepted")
	}
	bad = cfg
	bad.Modules = []ModuleSpec{{Kind: mem.DDR3, CapacityBytes: 1<<20 + 1, Channels: 2}}
	if err := bad.Validate(); err == nil {
		t.Error("indivisible capacity accepted")
	}
}

func TestHeterogeneousConfigs(t *testing.T) {
	for _, hc := range []HeterConfig{Config1, Config2, Config3} {
		mods := Heterogeneous(hc)
		if len(mods) != 4 {
			t.Errorf("%v has %d modules, want 4 channels", hc, len(mods))
		}
		var kinds []mem.Kind
		for _, m := range mods {
			kinds = append(kinds, m.Kind)
			if m.Channels != 1 {
				t.Errorf("%v: heterogeneous module with %d channels", hc, m.Channels)
			}
		}
		if kinds[0] != mem.RLDRAM || kinds[1] != mem.HBM || kinds[2] != mem.LPDDR2 || kinds[3] != mem.LPDDR2 {
			t.Errorf("%v kinds = %v", hc, kinds)
		}
	}
	// Config1 capacities (scaled 256 MB / 768 MB / 2x512 MB).
	c1 := Heterogeneous(Config1)
	if c1[0].CapacityBytes != 4*mb || c1[1].CapacityBytes != 12*mb || c1[2].CapacityBytes != 8*mb {
		t.Errorf("config1 capacities wrong: %+v", c1)
	}
}

func TestSingleCoreHomogeneousRun(t *testing.T) {
	cfg := DefaultConfig("homogen-ddr3", Homogeneous(mem.DDR3), PolicyFixed)
	res := runSingle(t, cfg, ProcSpec{App: workload.MCF(), Input: workload.Ref})

	if len(res.Cores) != 1 || len(res.Channels) != 4 {
		t.Fatalf("cores=%d channels=%d", len(res.Cores), len(res.Channels))
	}
	c := res.Cores[0]
	if c.CPU.Instructions < testMeasure {
		t.Errorf("retired %d, want >= %d", c.CPU.Instructions, testMeasure)
	}
	if c.LLCMPKI() < 10 {
		t.Errorf("mcf MPKI = %.1f, expected memory-intensive (>10)", c.LLCMPKI())
	}
	if c.StallPerMiss() < 20 {
		t.Errorf("mcf stall/miss = %.1f, expected latency-bound (>20)", c.StallPerMiss())
	}
	if res.AvgMemAccessTime() <= 0 {
		t.Error("no memory access time measured")
	}
	if res.MemEnergyJ() <= 0 || res.SystemEDP() <= 0 {
		t.Error("energy accounting empty")
	}
	if res.MemRequests() == 0 {
		t.Error("no memory requests reached the channels")
	}
	// Homogeneous interleave: all four channels should see traffic.
	for i, ch := range res.Channels {
		if ch.Stats.Requests() == 0 {
			t.Errorf("channel %d idle under interleaving", i)
		}
	}
}

func TestRLDRAMFasterForMCF(t *testing.T) {
	// The premise of the whole paper: the latency-optimized module
	// services a pointer-chasing app faster than DDR3.
	run := func(kind mem.Kind) *Result {
		cfg := DefaultConfig("homogen", Homogeneous(kind), PolicyFixed)
		return runSingle(t, cfg, ProcSpec{App: workload.MCF(), Input: workload.Ref})
	}
	rl := run(mem.RLDRAM)
	d3 := run(mem.DDR3)
	if rl.AvgMemAccessTime() >= d3.AvgMemAccessTime() {
		t.Errorf("RLDRAM access time %d >= DDR3 %d for mcf", rl.AvgMemAccessTime(), d3.AvgMemAccessTime())
	}
	if rl.Elapsed >= d3.Elapsed {
		t.Errorf("RLDRAM runtime %d >= DDR3 %d for mcf", rl.Elapsed, d3.Elapsed)
	}
	// But RLDRAM burns far more memory power.
	if rl.MemPowerW() <= d3.MemPowerW() {
		t.Errorf("RLDRAM power %.3f <= DDR3 %.3f", rl.MemPowerW(), d3.MemPowerW())
	}
}

func TestLPDDRLowestPower(t *testing.T) {
	run := func(kind mem.Kind) *Result {
		cfg := DefaultConfig("homogen", Homogeneous(kind), PolicyFixed)
		return runSingle(t, cfg, ProcSpec{App: workload.GCC(), Input: workload.Ref})
	}
	lp, d3 := run(mem.LPDDR2), run(mem.DDR3)
	if lp.MemPowerW() >= d3.MemPowerW() {
		t.Errorf("LPDDR2 power %.3f >= DDR3 %.3f", lp.MemPowerW(), d3.MemPowerW())
	}
}

func TestMOCAPlacementSeparatesClasses(t *testing.T) {
	// Instrument disparity with a hand-built classification and check
	// pages land per class under MOCA.
	spec := workload.Disparity()
	cm := classMapFor(t, spec, map[string]classify.Class{
		"images":        classify.BandwidthSensitive,
		"disparity_map": classify.LatencySensitive,
		"kernel_buf":    classify.NonIntensive,
	})

	cfg := DefaultConfig("moca", Heterogeneous(Config1), PolicyMOCA)
	res := runSingle(t, cfg, ProcSpec{
		App: spec, Input: workload.Ref, Classes: cm, AppClass: classify.LatencySensitive,
	})

	pages := res.PagesOnKind()
	if pages[mem.RLDRAM] == 0 {
		t.Error("no pages on RLDRAM despite a latency-classified object")
	}
	if pages[mem.HBM] == 0 {
		t.Error("no pages on HBM despite a bandwidth-classified object")
	}
	if pages[mem.LPDDR2] == 0 {
		t.Error("no pages on LPDDR2 (stack/code/N objects)")
	}
	if res.OS.FallbackPages == 0 {
		t.Log("note: no fallback pages (capacity pressure may be absent)")
	}
}

func TestDeterministicResults(t *testing.T) {
	run := func() *Result {
		cfg := DefaultConfig("homogen-ddr3", Homogeneous(mem.DDR3), PolicyFixed)
		sys, err := New(cfg, []ProcSpec{{App: workload.Tracking(), Input: workload.Ref}})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(50_000, 80_000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Elapsed != b.Elapsed {
		t.Errorf("elapsed differs: %d vs %d", a.Elapsed, b.Elapsed)
	}
	if a.AvgMemAccessTime() != b.AvgMemAccessTime() {
		t.Errorf("latency differs: %d vs %d", a.AvgMemAccessTime(), b.AvgMemAccessTime())
	}
	if a.Cores[0].CPU != b.Cores[0].CPU {
		t.Errorf("core stats differ:\n%+v\n%+v", a.Cores[0].CPU, b.Cores[0].CPU)
	}
}

func TestMultiCoreRun(t *testing.T) {
	if testing.Short() {
		t.Skip("multicore run in -short mode")
	}
	cfg := DefaultConfig("heter-moca", Heterogeneous(Config1), PolicyMOCA)
	mix, _ := workload.MixByName("2B2N")
	specs, _ := mix.Specs()
	var procs []ProcSpec
	for _, s := range specs {
		procs = append(procs, ProcSpec{App: s, Input: workload.Ref, AppClass: classify.NonIntensive})
	}
	sys, err := New(cfg, procs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(sys.SuggestedWarmup(), 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cores) != 4 {
		t.Fatalf("cores = %d", len(res.Cores))
	}
	for i, c := range res.Cores {
		if c.CPU.Instructions < 100_000 {
			t.Errorf("core %d retired %d < quota", i, c.CPU.Instructions)
		}
		if c.Window <= 0 || c.Window > res.Elapsed {
			t.Errorf("core %d window %d out of range (elapsed %d)", i, c.Window, res.Elapsed)
		}
	}
}

func TestProfilingRunProducesProfiles(t *testing.T) {
	cfg := DefaultConfig("profiler", Homogeneous(mem.DDR3), PolicyFixed)
	cfg.Profile = true
	res := runSingle(t, cfg, ProcSpec{App: workload.MCF(), Input: workload.Train})
	pr := res.Cores[0].Profile
	if pr == nil {
		t.Fatal("no profile from a profiling run")
	}
	if pr.Instructions == 0 {
		t.Error("profile has no instructions")
	}
	if len(pr.HeapObjects()) < 4 {
		t.Errorf("profile has %d heap objects, want >= 4 for mcf", len(pr.HeapObjects()))
	}
	hot := pr.HeapObjects()[0]
	if hot.MPKI <= 1 {
		t.Errorf("mcf's hottest object MPKI = %.2f, want memory-intensive", hot.MPKI)
	}
}

func TestWatchdogAndErrors(t *testing.T) {
	cfg := DefaultConfig("x", Homogeneous(mem.DDR3), PolicyFixed)
	sys, err := New(cfg, []ProcSpec{{App: workload.GCC(), Input: workload.Ref}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(0, 0); err == nil {
		t.Error("zero measure window accepted")
	}
	if _, err := New(cfg, nil); err == nil {
		t.Error("no processes accepted")
	}
}

func TestOOMSurfacesAsError(t *testing.T) {
	// A system with far too little memory must fail loudly, not wedge.
	cfg := DefaultConfig("tiny", []ModuleSpec{{Kind: mem.DDR3, CapacityBytes: 64 * 4096, Channels: 1}}, PolicyFixed)
	sys, err := New(cfg, []ProcSpec{{App: workload.MCF(), Input: workload.Ref}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(10_000, 10_000); err == nil {
		t.Error("running a 6 MB app in a 256 KB system did not error")
	}
}

// classMapFor builds a ClassMap by instantiating the spec on a scratch
// allocator and reading object keys back by label.
func classMapFor(t *testing.T, spec workload.AppSpec, classes map[string]classify.Class) heap.ClassMap {
	t.Helper()
	scratch := heap.New(heap.Config{})
	app, err := workload.Instantiate(spec, scratch, 0)
	if err != nil {
		t.Fatal(err)
	}
	cm := make(heap.ClassMap)
	for label, class := range classes {
		o, ok := app.Object(label)
		if !ok {
			t.Fatalf("label %q not found in %s", label, spec.Name)
		}
		cm[o.Key] = class
	}
	return cm
}

func TestResultDerivedMetrics(t *testing.T) {
	cfg := DefaultConfig("m", Homogeneous(mem.DDR3), PolicyFixed)
	sys, err := New(cfg, []ProcSpec{{App: workload.Sift(), Input: workload.Ref}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(50_000, 60_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.AggregateIPC() <= 0 || res.AggregateIPC() > float64(cfg.Core.Width) {
		t.Errorf("aggregate IPC = %v", res.AggregateIPC())
	}
	if res.CoreEnergyJ() <= 0 {
		t.Error("core energy missing")
	}
	if res.SystemEnergyJ() != res.CoreEnergyJ()+res.MemEnergyJ() {
		t.Error("system energy != core + memory")
	}
	if res.SystemTime() != res.Elapsed {
		t.Error("system time mismatch")
	}
	c := res.Cores[0]
	if c.TLBHitRate <= 0 || c.TLBHitRate > 1 {
		t.Errorf("TLB hit rate = %v", c.TLBHitRate)
	}
	if got := res.OS.Faults; got == 0 {
		t.Error("no page faults recorded")
	}
}

func TestPolicyKindStrings(t *testing.T) {
	for p, want := range map[PolicyKind]string{
		PolicyFixed: "fixed", PolicyAppLevel: "heter-app",
		PolicyMOCA: "moca", PolicyMigrate: "migrate",
	} {
		if p.String() != want {
			t.Errorf("%d.String() = %q", int(p), p.String())
		}
	}
	if PolicyKind(99).String() != "PolicyKind(99)" {
		t.Error("unknown policy string")
	}
	if Config1.String() != "config1" {
		t.Error("heter config string")
	}
}

func TestSystemAccessors(t *testing.T) {
	cfg := DefaultConfig("a", Homogeneous(mem.DDR3), PolicyFixed)
	sys, err := New(cfg, []ProcSpec{{App: workload.Sift(), Input: workload.Ref}})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Config().Name != "a" {
		t.Error("Config accessor")
	}
	if sys.OS() == nil || sys.App(0) == nil || sys.Allocator(0) == nil {
		t.Error("nil accessor")
	}
	if sys.App(0).Spec.Name != "sift" {
		t.Error("wrong app")
	}
	if sys.SuggestedWarmup() <= sys.App(0).InitInstructions() {
		t.Error("warmup does not cover init")
	}
}
