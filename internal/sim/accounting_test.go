package sim

import (
	"math"
	"testing"

	"moca/internal/mem"
	"moca/internal/workload"
)

// TestTrafficAccounting checks the end-to-end conservation of memory
// traffic on a plain system (no prefetching, no migration): every channel
// read corresponds to a demand LLC miss and every channel write to a dirty
// writeback. Small discrepancies are allowed for requests in flight across
// the warm-up stats reset and at window end.
func TestTrafficAccounting(t *testing.T) {
	for _, app := range []string{"mcf", "lbm", "gcc"} {
		spec, _ := workload.ByName(app)
		cfg := DefaultConfig("acct", Homogeneous(mem.DDR3), PolicyFixed)
		sys, err := New(cfg, []ProcSpec{{App: spec, Input: workload.Ref}})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(sys.SuggestedWarmup(), 200_000)
		if err != nil {
			t.Fatal(err)
		}
		var chanReads, chanWrites uint64
		for _, ch := range res.Channels {
			chanReads += ch.Stats.Reads
			chanWrites += ch.Stats.Writes
		}
		var misses, writebacks uint64
		for _, c := range res.Cores {
			misses += c.Hier.DemandMisses
			writebacks += c.Hier.Writebacks
		}
		within := func(a, b uint64, tol float64) bool {
			diff := math.Abs(float64(a) - float64(b))
			// Requests in flight across the stats reset or the window
			// end account for a few counts of slack.
			return diff <= math.Max(tol*math.Max(float64(a), 1), 4)
		}
		if !within(chanReads, misses, 0.02) {
			t.Errorf("%s: channel reads %d vs demand misses %d (>2%% apart)", app, chanReads, misses)
		}
		if !within(chanWrites, writebacks, 0.05) {
			t.Errorf("%s: channel writes %d vs writebacks %d (>5%% apart)", app, chanWrites, writebacks)
		}
		if misses == 0 {
			t.Errorf("%s: no misses measured", app)
		}
	}
}

// TestTrafficAccountingWithPrefetch extends the invariant: with the
// prefetcher on, channel reads equal demand misses plus issued prefetches.
func TestTrafficAccountingWithPrefetch(t *testing.T) {
	spec, _ := workload.ByName("lbm")
	cfg := DefaultConfig("acct-pf", Homogeneous(mem.DDR3), PolicyFixed)
	cfg.Prefetch.Enable = true
	sys, err := New(cfg, []ProcSpec{{App: spec, Input: workload.Ref}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(sys.SuggestedWarmup(), 200_000)
	if err != nil {
		t.Fatal(err)
	}
	var chanReads uint64
	for _, ch := range res.Channels {
		chanReads += ch.Stats.Reads
	}
	c := res.Cores[0]
	expected := c.Hier.DemandMisses + c.Prefetch.Issued
	diff := math.Abs(float64(chanReads) - float64(expected))
	if diff/float64(expected) > 0.02 {
		t.Errorf("channel reads %d vs demand+prefetch %d (>2%% apart)", chanReads, expected)
	}
	if c.Prefetch.Issued == 0 {
		t.Error("prefetcher idle on lbm")
	}
	if c.Prefetch.Coverage() < 0.6 {
		t.Errorf("prefetch coverage %.2f on a streaming app; expected high (useful %d, late %d, issued %d)",
			c.Prefetch.Coverage(), c.Prefetch.Useful, c.Prefetch.Late, c.Prefetch.Issued)
	}
}

// TestPrefetchImprovesStreamingApp: the end-to-end effect check.
func TestPrefetchImprovesStreamingApp(t *testing.T) {
	run := func(enable bool) *Result {
		spec, _ := workload.ByName("lbm")
		cfg := DefaultConfig("pf", Homogeneous(mem.DDR3), PolicyFixed)
		cfg.Prefetch.Enable = enable
		sys, err := New(cfg, []ProcSpec{{App: spec, Input: workload.Ref}})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(sys.SuggestedWarmup(), 150_000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	off, on := run(false), run(true)
	if on.Elapsed >= off.Elapsed {
		t.Errorf("prefetching did not speed up lbm: %d vs %d ps", on.Elapsed, off.Elapsed)
	}
	if on.Cores[0].LLCMPKI() >= off.Cores[0].LLCMPKI() {
		t.Errorf("prefetching did not reduce demand MPKI: %.1f vs %.1f",
			on.Cores[0].LLCMPKI(), off.Cores[0].LLCMPKI())
	}
}
