package sim

import (
	"bytes"
	"testing"

	"moca/internal/heap"
	"moca/internal/mem"
	"moca/internal/trace"
	"moca/internal/workload"
)

// TestTraceV2ReplayByteIdentical is the format-parity acceptance test:
// the same recorded stream replayed through the v1 reader, through the
// v2 block reader, and through a v2 reader resumed at a mid-trace block
// boundary (against a v1 reader drained to the same item) must produce
// byte-identical Result JSON. The v2 path exercises block framing,
// per-block compression, the batch-refill hot path, and positioned
// reopen — none of which may perturb simulation output.
func TestTraceV2ReplayByteIdentical(t *testing.T) {
	spec := workload.Tracking()
	baseProc := ProcSpec{App: spec, Input: workload.Ref}
	newCfg := func() Config {
		cfg := DefaultConfig("homogen-ddr3", Homogeneous(mem.DDR3), PolicyFixed)
		cfg.Obs.Metrics = true
		return cfg
	}
	run := func(stream trace.ReplayStream, warmup uint64) []byte {
		proc := baseProc
		proc.Stream = stream
		sys, err := New(newCfg(), []ProcSpec{proc})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(warmup, goldenMeasure)
		if err != nil {
			t.Fatal(err)
		}
		if err := stream.Err(); err != nil {
			t.Fatalf("stream error after replay: %v", err)
		}
		raw, err := res.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}

	probe, err := New(newCfg(), []ProcSpec{baseProc})
	if err != nil {
		t.Fatal(err)
	}
	warm := probe.SuggestedWarmup()

	// Record once in v1, then convert to v2 with small blocks so the
	// corpus spans many frames; the conversion itself is part of what is
	// under test. Slack covers in-flight fetches past the final quota
	// crossing.
	scratch := heap.New(heap.Config{NamingDepth: baseProc.NamingDepth, Classes: baseProc.Classes})
	app, err := workload.Instantiate(spec.ForInput(workload.Ref), scratch, 0)
	if err != nil {
		t.Fatal(err)
	}
	total := warm + goldenMeasure + 50_000
	var v1 bytes.Buffer
	w1, err := trace.NewWriter(&v1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.Record(w1, app.Stream(), total); err != nil {
		t.Fatal(err)
	}
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}
	var v2 bytes.Buffer
	src, err := trace.Open(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	w2, err := trace.NewBlockWriterSize(&v2, 2048, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := trace.Copy(w2, src); err != nil || n != total {
		t.Fatalf("convert: %d items, %v; want %d", n, err, total)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	// Whole-trace parity.
	r1, err := trace.NewReader(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want := run(r1, warm)
	r2, err := trace.Open(bytes.NewReader(v2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := run(r2, warm); !bytes.Equal(got, want) {
		t.Errorf("v2 replay result JSON diverges from v1:\nv2 %s\nv1 %s", got, want)
	}

	// Resume parity: reopen the v2 trace at the first block boundary past
	// item 10000 — without decoding the prefix — and compare against a v1
	// reader drained to the same item. Both see the identical suffix, so
	// both simulations must serialize identically.
	sc, err := trace.NewBlockScanner(bytes.NewReader(v2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var pos trace.Position
	for sc.Scan() {
		if sc.NextPos().Seq >= 10_000 {
			pos = sc.NextPos()
			break
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if pos.IsZero() {
		t.Fatal("no block boundary past item 10000")
	}

	rd, err := trace.NewReader(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < pos.Seq; i++ {
		if _, ok := rd.Next(); !ok {
			t.Fatalf("v1 trace ends at item %d draining to %d", i, pos.Seq)
		}
	}
	wantResumed := run(rd, warm)
	br, err := trace.OpenBlockReaderAt(bytes.NewReader(v2.Bytes()), pos)
	if err != nil {
		t.Fatal(err)
	}
	if got := run(br, warm); !bytes.Equal(got, wantResumed) {
		t.Errorf("resumed v2 replay (from %+v) diverges from drained v1 replay:\nv2 %s\nv1 %s", pos, got, wantResumed)
	}
}
