package sim

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"moca/internal/cpu"
	"moca/internal/event"
	"moca/internal/mem"
	"moca/internal/workload"
)

// stormProcs is a 4-core mix small enough to run thousands of windows
// quickly.
func stormProcs() []ProcSpec {
	return []ProcSpec{
		{App: workload.MCF(), Input: workload.Ref},
		{App: workload.Milc(), Input: workload.Ref},
		{App: workload.GCC(), Input: workload.Ref},
		{App: workload.LBM(), Input: workload.Ref},
	}
}

// TestBarrierStorm shrinks the window to a single cycle so a short run
// crosses thousands of barriers, hammering the pool's dispatch path and
// the fault gate under the race detector — and still demands bit-identical
// results between serial and 4-shard execution at that window.
func TestBarrierStorm(t *testing.T) {
	run := func(shards int) *Result {
		cfg := DefaultConfig("homogen-ddr3", Homogeneous(mem.DDR3), PolicyFixed)
		cfg.Obs.Metrics = true
		cfg.Shards = shards
		sys, err := New(cfg, stormProcs())
		if err != nil {
			t.Fatal(err)
		}
		sys.setWindow(sys.cycle) // one barrier per cycle
		res, err := sys.Run(500, 2000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial, sharded := run(1), run(4)
	if serial.Elapsed != sharded.Elapsed {
		t.Errorf("elapsed diverged: serial %d, sharded %d", serial.Elapsed, sharded.Elapsed)
	}
	for i := range serial.Cores {
		if serial.Cores[i].CPU != sharded.Cores[i].CPU {
			t.Errorf("core %d stats diverged:\nserial  %+v\nsharded %+v", i, serial.Cores[i].CPU, sharded.Cores[i].CPU)
		}
	}
	if a, b := mustJSON(serial.Obs), mustJSON(sharded.Obs); a != b {
		t.Errorf("obs snapshots diverged:\nserial  %s\nsharded %s", a, b)
	}
}

// TestCancelMidWindow cancels the context while a 4-shard run is deep in
// its measurement phase: the run must surface the cancellation as an error
// promptly instead of deadlocking a barrier with parked workers.
func TestCancelMidWindow(t *testing.T) {
	cfg := DefaultConfig("homogen-ddr3", Homogeneous(mem.DDR3), PolicyFixed)
	cfg.Shards = 4
	sys, err := New(cfg, stormProcs())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	done := make(chan error, 1)
	go func() {
		// A quota far beyond what 30 ms of wall clock can simulate: the
		// only way out is the cancellation.
		_, err := sys.RunContext(ctx, 0, 50_000_000)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("run completed despite cancellation")
		}
		if !strings.Contains(err.Error(), "canceled") {
			t.Fatalf("error %q does not report the cancellation", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("canceled run did not return: barrier deadlock")
	}
}

// panicStream explodes after feeding n instructions.
type panicStream struct {
	n int
}

func (p *panicStream) Next() (cpu.Instr, bool) {
	if p.n <= 0 {
		panic("panicStream: injected shard failure")
	}
	p.n--
	return cpu.Instr{Kind: cpu.Compute, N: 1}, true
}

// TestPanickingShard injects a panic into one core of a 4-shard run: the
// run must recover it into an error keyed with the failing core and
// release every barrier instead of deadlocking the surviving workers.
func TestPanickingShard(t *testing.T) {
	const victim = 2
	procs := stormProcs()
	procs[victim].Stream = &panicStream{n: 400}
	cfg := DefaultConfig("homogen-ddr3", Homogeneous(mem.DDR3), PolicyFixed)
	cfg.Shards = 4
	sys, err := New(cfg, procs)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := sys.Run(0, 10_000)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("run succeeded despite a panicking shard")
		}
		msg := err.Error()
		if !strings.Contains(msg, fmt.Sprintf("core shard %d", victim)) {
			t.Errorf("error %q is not keyed to core shard %d", msg, victim)
		}
		if !strings.Contains(msg, "panic") || !strings.Contains(msg, "injected shard failure") {
			t.Errorf("error %q does not carry the recovered panic", msg)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("panicking shard deadlocked the run")
	}
}

// TestShardsMatchAcrossWorkerCounts locks the clamp: worker counts beyond
// the shard population (here 16 workers for 4 cores + 4 channels) must not
// change scheduling order.
func TestShardsMatchAcrossWorkerCounts(t *testing.T) {
	run := func(shards int) event.Time {
		cfg := DefaultConfig("homogen-ddr3", Homogeneous(mem.DDR3), PolicyFixed)
		cfg.Shards = shards
		sys, err := New(cfg, stormProcs())
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(0, 2000)
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	base := run(2)
	for _, shards := range []int{3, 16} {
		if got := run(shards); got != base {
			t.Errorf("shards=%d elapsed %d != shards=2 elapsed %d", shards, got, base)
		}
	}
}
