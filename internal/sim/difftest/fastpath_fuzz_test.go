package difftest

import (
	"testing"

	"moca/internal/cpu"
	"moca/internal/mem"
	"moca/internal/sim"
	"moca/internal/workload"
)

// FuzzFastpathBatching drives the common-case fast path with adversarial
// instruction streams: compute runs of fuzz-chosen lengths interleaved
// with loads whose addresses are steered to produce cache hits (the
// inline-probe path), fresh-line misses (batch abort into the event
// engine), and far-stride row conflicts (long, windows-spanning memory
// latencies). The slow path — fast path disabled — must produce
// byte-identical results for every decoded stream, serially and sharded.
func FuzzFastpathBatching(f *testing.F) {
	f.Add([]byte{0x00, 0x41, 0x82, 0xc3, 0x04, 0x45, 0x86, 0xc7}, uint8(1))
	f.Add([]byte{0xff, 0x00, 0xff, 0x00, 0x42, 0x13, 0x37}, uint8(4))
	f.Add([]byte{0x01}, uint8(2))
	f.Add([]byte{}, uint8(1))
	f.Fuzz(func(t *testing.T, raw []byte, nshards uint8) {
		shards := int(nshards%4) + 1
		if len(raw) > 512 {
			raw = raw[:512]
		}

		// Decode the fuzz bytes into an instruction stream. The upper
		// bits of each byte pick run lengths and strides; the low two
		// bits pick the instruction shape. last tracks the previous
		// load so "hit" steps re-touch a line that is warm by
		// construction, while the far stride hops DRAM rows to make
		// the miss latency span window barriers.
		var ins []cpu.Instr
		var total uint64
		last := uint64(1 << 20)
		next := last
		for _, b := range raw {
			arg := uint64(b >> 2)
			switch b & 3 {
			case 0: // compute run: the batchable common case
				n := int(arg) + 1
				ins = append(ins, cpu.Instr{Kind: cpu.Compute, N: int32(n)})
				total += uint64(n)
			case 1: // re-touch the previous line: inline hit
				ins = append(ins, cpu.Instr{Kind: cpu.Load, VAddr: last, Obj: 1})
				total++
			case 2: // short stride: new line, same or nearby row
				next += (arg + 1) * 64
				last = next
				dep := b&0x40 != 0
				ins = append(ins, cpu.Instr{Kind: cpu.Load, VAddr: last, Obj: 2, DependsOnPrev: dep})
				total++
			case 3: // far stride: row conflict / fresh page
				next += (arg + 1) << 16
				last = next
				ins = append(ins, cpu.Instr{Kind: cpu.Store, VAddr: last, Obj: 3})
				total++
			}
		}
		// Pad with compute so the stream always covers the measured
		// quota: the interesting axis is batching behavior, not the
		// (already matrix-covered) identical-exhaustion-error case.
		ins = append(ins, cpu.Instr{Kind: cpu.Compute, N: 64})
		total += 64

		cfg := sim.DefaultConfig("fuzz-fastpath", sim.Homogeneous(mem.DDR3), sim.PolicyFixed)
		cfg.CacheL2.SizeBytes /= 4 // shrink L2 so far strides actually miss
		c := Case{
			Name:    "fuzz-fastpath",
			Cfg:     cfg,
			Procs:   []sim.ProcSpec{{App: workload.MCF(), Input: workload.Ref}},
			Streams: []func() cpu.Stream{FixedStream(ins...)},
			Measure: total,
		}

		fast := Mode{Shards: shards}
		slow := Mode{Shards: 1, NoFastpath: true}
		d, err := RunModes(c, fast, slow)
		if err != nil {
			t.Fatal(err)
		}
		if d != nil {
			t.Fatalf("fast path diverged on fuzzed stream (%d instrs):\n%s", total, d)
		}
	})
}
