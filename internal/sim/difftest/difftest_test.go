package difftest

import (
	"strings"
	"testing"

	"moca/internal/obs"
	"moca/internal/sim"
)

// TestMatrixSerialVsSharded is the differential harness: every matrix case
// must be byte-identical between serial and 4-shard execution — metrics,
// energy, run trace, and error strings alike.
func TestMatrixSerialVsSharded(t *testing.T) {
	for _, c := range Matrix(1) {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			d, err := Run(c, 1, 4)
			if err != nil {
				t.Fatal(err)
			}
			if d != nil {
				t.Fatalf("execution modes diverged:\n%s", d)
			}
		})
	}
}

// TestMatrixShardOversubscription runs one case with more shards than the
// system has cores or channels: the worker clamp must keep the result
// identical rather than deadlock or reorder.
func TestMatrixShardOversubscription(t *testing.T) {
	c := Matrix(2)[0]
	d, err := Run(c, 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	if d != nil {
		t.Fatalf("16-shard run diverged from serial:\n%s", d)
	}
}

// TestMigrationCopyDropParity: the best-effort migration copy path is
// observable, and serial and sharded execution abandon exactly the same
// copies — the drop count is part of the byte-identity contract, not a
// mode-dependent artifact. Asserted both on the whole-run shard counter
// and on the measured-window obs counter.
func TestMigrationCopyDropParity(t *testing.T) {
	var c Case
	for _, mc := range Matrix(1) {
		if strings.HasPrefix(mc.Name, "migrate") {
			c = mc
		}
	}
	if c.Name == "" {
		t.Fatal("matrix lost its migration case")
	}
	drops := map[int]uint64{}
	counters := map[int]uint64{}
	for _, shards := range []int{1, 4} {
		cfg := c.Cfg
		cfg.Shards = shards
		cfg.Obs.Metrics = true
		sys, err := sim.New(cfg, c.Procs)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(c.Warmup, c.Measure)
		if err != nil {
			t.Fatal(err)
		}
		drops[shards] = sys.MigrationCopyDrops()
		counters[shards] = res.Obs.Counters["mem.migration_copy_drops"]
	}
	if drops[1] != drops[4] {
		t.Errorf("whole-run copy drops diverge: serial=%d sharded=%d", drops[1], drops[4])
	}
	if counters[1] != counters[4] {
		t.Errorf("measured-window drop counters diverge: serial=%d sharded=%d", counters[1], counters[4])
	}
	t.Logf("migration copy drops: whole-run=%d, measured-window=%d", drops[1], counters[1])
}

// TestCompareDetectsDivergence proves the comparator actually fires: a
// synthetic mismatch in each comparison layer must be found and minimized
// to the right path.
func TestCompareDetectsDivergence(t *testing.T) {
	base := outcome{res: []byte(`{"elapsed_ps":100,"cores":[{"ipc":1.5}]}`)}

	t.Run("error-strings", func(t *testing.T) {
		d := compare(outcome{err: "core 0: boom"}, outcome{err: ""})
		if d == nil || d.Path != "error" {
			t.Fatalf("got %v, want divergence at error", d)
		}
	})
	t.Run("json-field", func(t *testing.T) {
		other := outcome{res: []byte(`{"elapsed_ps":100,"cores":[{"ipc":1.75}]}`)}
		d := compare(base, other)
		if d == nil {
			t.Fatal("identical verdict for differing results")
		}
		if want := "$.cores[0].ipc"; d.Path != want {
			t.Fatalf("path %q, want %q", d.Path, want)
		}
	})
	t.Run("trace-event", func(t *testing.T) {
		a := outcome{res: base.res, events: []obs.Event{{At: 42, Kind: obs.PagePlaced, Unit: "os", Addr: 7}}}
		b := outcome{res: base.res, events: []obs.Event{{At: 42, Kind: obs.PagePlaced, Unit: "os", Addr: 9}}}
		d := compare(a, b)
		if d == nil {
			t.Fatal("identical verdict for differing traces")
		}
		if d.TickPs != 42 || d.Component != "os" || d.Field != "addr" {
			t.Fatalf("trace divergence context = (%d, %q, %q), want (42, os, addr)", d.TickPs, d.Component, d.Field)
		}
		if !strings.HasPrefix(d.Path, "trace[0]") {
			t.Fatalf("path %q, want trace[0].*", d.Path)
		}
	})
	t.Run("trace-length", func(t *testing.T) {
		a := outcome{res: base.res, events: []obs.Event{{At: 1, Kind: obs.RowConflict, Unit: "ch0"}}}
		d := compare(a, outcome{res: base.res})
		if d == nil || d.Field != "len" || d.TickPs != 1 {
			t.Fatalf("got %v, want length divergence at tick 1", d)
		}
	})
	t.Run("identical", func(t *testing.T) {
		if d := compare(base, base); d != nil {
			t.Fatalf("spurious divergence: %v", d)
		}
	})
}

// TestMatrixFastpathAxis sweeps the second execution-strategy axis: with
// the inline-hit/compute-batch fast path disabled, every matrix case must
// stay byte-identical to the default fast execution, both serially and
// under sharding.
func TestMatrixFastpathAxis(t *testing.T) {
	for _, c := range Matrix(3) {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			for _, shards := range []int{1, 4} {
				fast := Mode{Shards: shards}
				slow := Mode{Shards: shards, NoFastpath: true}
				d, err := RunModes(c, fast, slow)
				if err != nil {
					t.Fatal(err)
				}
				if d != nil {
					t.Fatalf("fast path diverged from slow path:\n%s", d)
				}
			}
		})
	}
}
