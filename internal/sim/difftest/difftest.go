// Package difftest differentially tests the simulator's execution modes:
// the same configuration is run under two execution strategies — shard
// counts and/or the common-case fast path — and every observable output —
// metrics, energy, placement, run trace, even error strings — must
// match byte-for-byte. A mismatch is minimized to the first diverging
// field and reported with enough context (tick, component, field) to
// bisect the ordering bug that caused it.
package difftest

import (
	"encoding/json"
	"fmt"
	"sort"

	"moca/internal/classify"
	"moca/internal/cpu"
	"moca/internal/event"
	"moca/internal/mem"
	"moca/internal/obs"
	"moca/internal/sim"
	"moca/internal/workload"
)

// Case is one differential scenario. Streams, when non-nil, are per-proc
// stream factories: every execution needs a fresh stream, so the case
// carries constructors rather than consumed iterators.
type Case struct {
	Name    string
	Cfg     sim.Config
	Procs   []sim.ProcSpec
	Streams []func() cpu.Stream
	Warmup  uint64
	Measure uint64
}

// Mode is one execution strategy: a shard count plus the fast-path
// switch. Every Mode must produce byte-identical output for a given Case.
type Mode struct {
	Shards     int
	NoFastpath bool
}

func (m Mode) String() string {
	if m.NoFastpath {
		return fmt.Sprintf("%d shards/slow", m.Shards)
	}
	return fmt.Sprintf("%d shards/fast", m.Shards)
}

// Divergence pinpoints the first observable difference between two runs of
// the same case under different execution modes. Nil means byte-identical.
type Divergence struct {
	Case  string
	Modes [2]Mode
	// Path is the JSON path of the first differing field ("error" when the
	// runs' error strings differ, "trace[i].<field>" for run-trace events).
	Path string
	A, B string
	// TickPs/Component/Field locate a trace divergence in simulation time:
	// the event timestamp, emitting unit, and differing field. Zero values
	// for non-trace divergences.
	TickPs    int64
	Component string
	Field     string
}

func (d *Divergence) String() string {
	if d == nil {
		return "<identical>"
	}
	loc := ""
	if d.Component != "" || d.TickPs != 0 {
		loc = fmt.Sprintf(" (tick %d ps, component %q, field %q)", d.TickPs, d.Component, d.Field)
	}
	return fmt.Sprintf("%s: %s vs %s diverge at %s%s:\n  a: %s\n  b: %s",
		d.Case, d.Modes[0], d.Modes[1], d.Path, loc, d.A, d.B)
}

// outcome captures everything observable about one run.
type outcome struct {
	res    json.RawMessage
	events []obs.Event
	err    string
}

func execute(c Case, m Mode) (outcome, error) {
	cfg := c.Cfg
	cfg.Shards = m.Shards
	cfg.NoFastpath = m.NoFastpath
	cfg.Obs.Metrics = true
	tr := obs.NewTrace(0)
	cfg.Obs.Trace = tr

	procs := make([]sim.ProcSpec, len(c.Procs))
	copy(procs, c.Procs)
	for i := range procs {
		if c.Streams != nil && c.Streams[i] != nil {
			procs[i].Stream = c.Streams[i]()
		}
	}

	sys, err := sim.New(cfg, procs)
	if err != nil {
		return outcome{}, fmt.Errorf("difftest %s: %s: %w", c.Name, m, err)
	}
	res, err := sys.Run(c.Warmup, c.Measure)
	if err != nil {
		// A run error is an outcome to compare, not a harness failure:
		// both modes must fail identically or not at all.
		return outcome{err: err.Error(), events: tr.Events()}, nil
	}
	data, err := json.Marshal(res)
	if err != nil {
		return outcome{}, fmt.Errorf("difftest %s: %s: marshal: %w", c.Name, m, err)
	}
	return outcome{res: data, events: tr.Events()}, nil
}

// Run executes the case at both shard counts (fast path on) and returns
// the minimized first divergence, or nil when the outcomes are
// byte-identical. The error covers harness failures only (invalid
// configuration, marshaling).
func Run(c Case, shardsA, shardsB int) (*Divergence, error) {
	return RunModes(c, Mode{Shards: shardsA}, Mode{Shards: shardsB})
}

// RunModes executes the case under both execution modes and returns the
// minimized first divergence, or nil when the outcomes are byte-identical.
func RunModes(c Case, ma, mb Mode) (*Divergence, error) {
	a, err := execute(c, ma)
	if err != nil {
		return nil, err
	}
	b, err := execute(c, mb)
	if err != nil {
		return nil, err
	}
	d := compare(a, b)
	if d != nil {
		d.Case = c.Name
		d.Modes = [2]Mode{ma, mb}
	}
	return d, nil
}

func compare(a, b outcome) *Divergence {
	if a.err != b.err {
		return &Divergence{Path: "error", A: quoteOr(a.err, "<no error>"), B: quoteOr(b.err, "<no error>")}
	}
	if d := compareTraces(a.events, b.events); d != nil {
		return d
	}
	if string(a.res) == string(b.res) {
		return nil
	}
	// The serializations differ: minimize to the first diverging field.
	var va, vb any
	if json.Unmarshal(a.res, &va) != nil || json.Unmarshal(b.res, &vb) != nil {
		return &Divergence{Path: "$", A: string(a.res), B: string(b.res)}
	}
	path, ga, gb := firstDiff("$", va, vb)
	return &Divergence{Path: path, A: render(ga), B: render(gb)}
}

// compareTraces finds the first differing run-trace event, reporting its
// simulation tick, emitting component, and the specific field.
func compareTraces(a, b []obs.Event) *Divergence {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] == b[i] {
			continue
		}
		field := eventField(a[i], b[i])
		return &Divergence{
			Path:      fmt.Sprintf("trace[%d].%s", i, field),
			A:         render(a[i]),
			B:         render(b[i]),
			TickPs:    a[i].At,
			Component: a[i].Unit,
			Field:     field,
		}
	}
	if len(a) != len(b) {
		d := &Divergence{
			Path: fmt.Sprintf("trace[%d]", n),
			A:    fmt.Sprintf("%d events", len(a)),
			B:    fmt.Sprintf("%d events", len(b)),
		}
		if len(a) > n {
			d.TickPs, d.Component = a[n].At, a[n].Unit
		} else {
			d.TickPs, d.Component = b[n].At, b[n].Unit
		}
		d.Field = "len"
		return d
	}
	return nil
}

func eventField(a, b obs.Event) string {
	switch {
	case a.At != b.At:
		return "at_ps"
	case a.Kind != b.Kind:
		return "kind"
	case a.Unit != b.Unit:
		return "unit"
	case a.Core != b.Core:
		return "core"
	case a.Addr != b.Addr:
		return "addr"
	default:
		return "aux"
	}
}

// firstDiff walks two decoded JSON trees in deterministic order (sorted
// map keys, array index order) and returns the path and values of the
// first leaf-level difference.
func firstDiff(path string, a, b any) (string, any, any) {
	switch av := a.(type) {
	case map[string]any:
		bv, ok := b.(map[string]any)
		if !ok {
			return path, a, b
		}
		keys := map[string]bool{}
		for k := range av {
			keys[k] = true
		}
		for k := range bv {
			keys[k] = true
		}
		sorted := make([]string, 0, len(keys))
		for k := range keys {
			sorted = append(sorted, k)
		}
		sort.Strings(sorted)
		for _, k := range sorted {
			ae, aok := av[k]
			be, bok := bv[k]
			if !aok || !bok {
				return path + "." + k, ae, be
			}
			if p, ga, gb := firstDiff(path+"."+k, ae, be); p != "" {
				return p, ga, gb
			}
		}
		return "", nil, nil
	case []any:
		bv, ok := b.([]any)
		if !ok {
			return path, a, b
		}
		n := len(av)
		if len(bv) < n {
			n = len(bv)
		}
		for i := 0; i < n; i++ {
			if p, ga, gb := firstDiff(fmt.Sprintf("%s[%d]", path, i), av[i], bv[i]); p != "" {
				return p, ga, gb
			}
		}
		if len(av) != len(bv) {
			return fmt.Sprintf("%s[%d]", path, n), fmt.Sprintf("len %d", len(av)), fmt.Sprintf("len %d", len(bv))
		}
		return "", nil, nil
	default:
		if a != b {
			return path, a, b
		}
		return "", nil, nil
	}
}

func render(v any) string {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Sprintf("%v", v)
	}
	return string(data)
}

func quoteOr(s, fallback string) string {
	if s == "" {
		return fallback
	}
	return fmt.Sprintf("%q", s)
}

// sliceStream replays a fixed instruction slice, then reports exhaustion.
type sliceStream struct {
	ins []cpu.Instr
	i   int
}

func (s *sliceStream) Next() (cpu.Instr, bool) {
	if s.i >= len(s.ins) {
		return cpu.Instr{}, false
	}
	ins := s.ins[s.i]
	s.i++
	return ins, true
}

// FixedStream returns a factory for a stream replaying exactly ins — the
// matrix uses it for the degenerate empty and single-instruction traces,
// which must fail with identical quota errors in every execution mode.
func FixedStream(ins ...cpu.Instr) func() cpu.Stream {
	return func() cpu.Stream { return &sliceStream{ins: ins} }
}

// Matrix returns the seeded differential scenarios: every placement
// policy, multiple core counts, shrunk cache geometries, a migration
// configuration with a short epoch, and the degenerate empty and
// one-instruction traces. The seed perturbs workload assignment so
// repeated CI runs sweep different app mixes while any given seed stays
// reproducible.
func Matrix(seed int64) []Case {
	apps := []func() workload.AppSpec{
		workload.MCF, workload.Milc, workload.LBM, workload.GCC,
		workload.Libquantum, workload.Disparity,
	}
	pick := func(i int) workload.AppSpec {
		return apps[(int(seed)+i)%len(apps)]()
	}
	procsFor := func(n int, class bool) []sim.ProcSpec {
		var ps []sim.ProcSpec
		for i := 0; i < n; i++ {
			p := sim.ProcSpec{App: pick(i), Input: workload.Ref}
			if class {
				p.AppClass = classifyFor(i)
			}
			ps = append(ps, p)
		}
		return ps
	}

	smallL2 := func(cfg sim.Config) sim.Config {
		cfg.CacheL2.SizeBytes /= 4
		return cfg
	}
	shortEpoch := func(cfg sim.Config) sim.Config {
		cfg.MigrationEpoch = 5 * event.Microsecond
		return cfg
	}

	cases := []Case{
		{
			Name:    "fixed-ddr3-1core",
			Cfg:     sim.DefaultConfig("homogen-ddr3", sim.Homogeneous(mem.DDR3), sim.PolicyFixed),
			Procs:   procsFor(1, false),
			Measure: 4000,
		},
		{
			Name:    "fixed-ddr3-2core-smalll2",
			Cfg:     smallL2(sim.DefaultConfig("homogen-ddr3", sim.Homogeneous(mem.DDR3), sim.PolicyFixed)),
			Procs:   procsFor(2, false),
			Warmup:  2000,
			Measure: 3000,
		},
		{
			Name:    "fixed-hbm-4core",
			Cfg:     sim.DefaultConfig("homogen-hbm", sim.Homogeneous(mem.HBM), sim.PolicyFixed),
			Procs:   procsFor(4, false),
			Measure: 2500,
		},
		{
			Name:    "heterapp-config1-4core",
			Cfg:     sim.DefaultConfig("heter-app", sim.Heterogeneous(sim.Config1), sim.PolicyAppLevel),
			Procs:   procsFor(4, true),
			Warmup:  1000,
			Measure: 2500,
		},
		{
			Name:    "heterapp-config2-2core-smalll2",
			Cfg:     smallL2(sim.DefaultConfig("heter-app", sim.Heterogeneous(sim.Config2), sim.PolicyAppLevel)),
			Procs:   procsFor(2, true),
			Measure: 3000,
		},
		{
			Name:    "migrate-config1-2core",
			Cfg:     shortEpoch(sim.DefaultConfig("migrate", sim.Heterogeneous(sim.Config1), sim.PolicyMigrate)),
			Procs:   procsFor(2, false),
			Measure: 3000,
		},
		{
			Name:    "empty-trace",
			Cfg:     sim.DefaultConfig("homogen-ddr3", sim.Homogeneous(mem.DDR3), sim.PolicyFixed),
			Procs:   procsFor(1, false),
			Streams: []func() cpu.Stream{FixedStream()},
			Measure: 1000,
		},
		{
			Name:    "one-instruction-trace",
			Cfg:     sim.DefaultConfig("homogen-ddr3", sim.Homogeneous(mem.DDR3), sim.PolicyFixed),
			Procs:   procsFor(1, false),
			Streams: []func() cpu.Stream{FixedStream(cpu.Instr{Kind: cpu.Compute, N: 1})},
			Measure: 1000,
		},
	}
	return cases
}

// classifyFor spreads the application-level classes across a mix.
func classifyFor(i int) classify.Class {
	classes := []classify.Class{
		classify.LatencySensitive, classify.BandwidthSensitive, classify.NonIntensive,
	}
	return classes[i%len(classes)]
}
