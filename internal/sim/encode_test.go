package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"moca/internal/heap"
	"moca/internal/mem"
	"moca/internal/trace"
	"moca/internal/workload"
)

// TestResultJSONRoundTrip: a Result must survive a disk round-trip with
// every derived metric intact, including the unexported energy
// accumulators behind MemEnergyJ/SystemEDP.
func TestResultJSONRoundTrip(t *testing.T) {
	cfg := DefaultConfig("homogen-ddr3", Homogeneous(mem.DDR3), PolicyFixed)
	cfg.Obs.Metrics = true
	res := runSingle(t, cfg, ProcSpec{App: workload.MCF(), Input: workload.Ref})

	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}

	if back.Name != res.Name || back.Policy != res.Policy || back.Elapsed != res.Elapsed {
		t.Errorf("identity fields diverged: %q/%q/%d vs %q/%q/%d",
			back.Name, back.Policy, back.Elapsed, res.Name, res.Policy, res.Elapsed)
	}
	if back.MemEnergyJ() != res.MemEnergyJ() || back.CoreEnergyJ() != res.CoreEnergyJ() {
		t.Errorf("energies diverged: mem %v vs %v, core %v vs %v",
			back.MemEnergyJ(), res.MemEnergyJ(), back.CoreEnergyJ(), res.CoreEnergyJ())
	}
	if back.MemEDP() != res.MemEDP() || back.SystemEDP() != res.SystemEDP() {
		t.Errorf("EDP diverged: mem %v vs %v, system %v vs %v",
			back.MemEDP(), res.MemEDP(), back.SystemEDP(), res.SystemEDP())
	}
	if back.AvgMemAccessTime() != res.AvgMemAccessTime() {
		t.Errorf("access time diverged: %v vs %v", back.AvgMemAccessTime(), res.AvgMemAccessTime())
	}
	if back.TotalInstructions() != res.TotalInstructions() {
		t.Errorf("instructions diverged: %v vs %v", back.TotalInstructions(), res.TotalInstructions())
	}
	if res.Obs == nil || back.Obs == nil {
		t.Fatal("obs snapshot lost in round trip")
	}
	a, _ := json.Marshal(res.Obs)
	b, _ := json.Marshal(back.Obs)
	if !bytes.Equal(a, b) {
		t.Error("obs snapshot diverged across the round trip")
	}
}

// TestRunContextCancellation: a canceled context stops the simulation loop
// promptly with ctx.Err instead of running the window to completion.
func TestRunContextCancellation(t *testing.T) {
	cfg := DefaultConfig("homogen-ddr3", Homogeneous(mem.DDR3), PolicyFixed)
	sys, err := New(cfg, []ProcSpec{{App: workload.MCF(), Input: workload.Ref}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.RunContext(ctx, sys.SuggestedWarmup(), testMeasure); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled run returned %v, want context.Canceled", err)
	}
}

// TestReplayDecodeErrorSurfaces: replaying a corrupt trace must fail with
// the decode error (quickly, via end-of-stream detection), not spin into
// the watchdog with no diagnostic.
func TestReplayDecodeErrorSurfaces(t *testing.T) {
	spec := workload.Tracking()
	scratch := heap.New(heap.Config{})
	app, err := workload.Instantiate(spec.ForInput(workload.Ref), scratch, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Record far too little for warmup+measure, then corrupt the tail so
	// the stream ends on a decode error rather than a clean EOF.
	if _, err := trace.Record(w, app.Stream(), 10_000); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)-1] = 200 // unknown opcode in place of the end marker

	rd, err := trace.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig("homogen-ddr3", Homogeneous(mem.DDR3), PolicyFixed)
	sys, err := New(cfg, []ProcSpec{{App: spec, Input: workload.Ref, Stream: rd}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = sys.Run(sys.SuggestedWarmup(), testMeasure)
	if err == nil {
		t.Fatal("corrupt replay succeeded")
	}
	if !strings.Contains(err.Error(), "decode") {
		t.Errorf("error does not carry the decode diagnosis: %v", err)
	}
}

// TestReplayShortTraceSurfaces: a clean-but-short trace reports the
// instruction shortfall instead of a bare watchdog timeout.
func TestReplayShortTraceSurfaces(t *testing.T) {
	spec := workload.Tracking()
	scratch := heap.New(heap.Config{})
	app, err := workload.Instantiate(spec.ForInput(workload.Ref), scratch, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.Record(w, app.Stream(), 10_000); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rd, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig("homogen-ddr3", Homogeneous(mem.DDR3), PolicyFixed)
	sys, err := New(cfg, []ProcSpec{{App: spec, Input: workload.Ref, Stream: rd}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = sys.Run(sys.SuggestedWarmup(), testMeasure)
	if err == nil {
		t.Fatal("short replay succeeded")
	}
	if !strings.Contains(err.Error(), "stream ended") {
		t.Errorf("error does not explain the short stream: %v", err)
	}
}
