package sim

import (
	"moca/internal/cache"
	"moca/internal/cpu"
	"moca/internal/event"
	"moca/internal/mem"
	"moca/internal/obs"
	"moca/internal/power"
	"moca/internal/profile"

	"moca/internal/alloc"
)

// CoreResult is one core's measured-window statistics.
type CoreResult struct {
	App  string
	CPU  cpu.Stats
	Hier cache.HierStats
	L1   cache.Stats
	L2   cache.Stats
	// Prefetch reports the stride prefetcher (zero when disabled).
	Prefetch cache.PrefetchStats
	// Window is the time this core took to retire its quota.
	Window event.Time
	// PagesByModule is the process's resident-page census per module.
	PagesByModule map[int]int
	TLBHitRate    float64
	// Profile is the per-object profile (profiling runs only).
	Profile *profile.Profile
}

// IPC returns the core's measured-window IPC.
func (c CoreResult) IPC() float64 { return c.CPU.IPC() }

// LLCMPKI returns the core's LLC misses per kilo-instruction.
func (c CoreResult) LLCMPKI() float64 {
	if c.CPU.Instructions == 0 {
		return 0
	}
	return float64(c.Hier.DemandMisses) * 1000 / float64(c.CPU.Instructions)
}

// StallPerMiss returns ROB-head stall cycles per LLC-missing load.
func (c CoreResult) StallPerMiss() float64 {
	if c.CPU.MemLoads == 0 {
		return 0
	}
	return float64(c.CPU.MemStallCycles) / float64(c.CPU.MemLoads)
}

// ChannelResult is one memory channel's measured-window statistics.
type ChannelResult struct {
	Name          string
	Kind          mem.Kind
	CapacityBytes uint64
	Stats         mem.ChannelStats
	Energy        power.MemoryBreakdown
}

// Result is a complete simulation outcome.
type Result struct {
	Name     string
	Policy   string
	Cores    []CoreResult
	Channels []ChannelResult
	OS       alloc.Stats
	// Migration reports the hot-page migration engine's activity
	// (zero outside PolicyMigrate runs).
	Migration alloc.MigStats
	// ModuleKinds maps module ID to its technology.
	ModuleKinds []mem.Kind
	// Elapsed is the full measured window (reset to last quota crossing).
	Elapsed event.Time
	// Obs is the observability snapshot over the measured window (nil
	// unless the run's Config enabled metrics).
	Obs *obs.Snapshot

	memEnergyJ  float64
	coreEnergyJ float64
}

func (r *Result) computeEnergy(cfg Config, elapsed event.Time) {
	for i := range r.Channels {
		ch := &r.Channels[i]
		ch.Energy = power.ChannelEnergy(mem.Preset(ch.Kind), ch.CapacityBytes, ch.Stats, elapsed)
		r.memEnergyJ += ch.Energy.TotalJ()
	}
	for _, c := range r.Cores {
		r.coreEnergyJ += cfg.CoreModel.CoreEnergyJ(c.IPC(), elapsed)
	}
}

// TotalInstructions sums retired instructions across cores.
func (r *Result) TotalInstructions() uint64 {
	var n uint64
	for _, c := range r.Cores {
		n += c.CPU.Instructions
	}
	return n
}

// MemRequests sums completed channel requests.
func (r *Result) MemRequests() uint64 {
	var n uint64
	for _, c := range r.Channels {
		n += c.Stats.Requests()
	}
	return n
}

// AvgMemAccessTime returns the mean controller-visible memory access time
// per request (queue + service, Section VI-A's definition) in picoseconds.
func (r *Result) AvgMemAccessTime() event.Time {
	var total event.Time
	var n uint64
	for _, c := range r.Channels {
		total += c.Stats.TotalLatency
		n += c.Stats.Requests()
	}
	if n == 0 {
		return 0
	}
	return total / event.Time(n)
}

// MemEnergyJ returns total memory energy over the window.
func (r *Result) MemEnergyJ() float64 { return r.memEnergyJ }

// MemPowerW returns average memory power over the window.
func (r *Result) MemPowerW() float64 {
	s := power.Seconds(r.Elapsed)
	if s <= 0 {
		return 0
	}
	return r.memEnergyJ / s
}

// MemEDP is the memory energy-delay product: memory energy times average
// memory access time (the paper computes memory EDP as memory power times
// memory access latency; normalized ratios are identical).
func (r *Result) MemEDP() float64 {
	return r.memEnergyJ * power.Seconds(r.AvgMemAccessTime())
}

// CoreEnergyJ returns total core energy over the window.
func (r *Result) CoreEnergyJ() float64 { return r.coreEnergyJ }

// SystemEnergyJ returns core plus memory energy.
func (r *Result) SystemEnergyJ() float64 { return r.coreEnergyJ + r.memEnergyJ }

// SystemTime returns the wall-clock duration of the measured window — the
// system-performance metric of Fig. 12 (lower is better for a fixed
// instruction quota).
func (r *Result) SystemTime() event.Time { return r.Elapsed }

// SystemEDP is the whole-system energy-delay product of Fig. 13.
func (r *Result) SystemEDP() float64 {
	return r.SystemEnergyJ() * power.Seconds(r.Elapsed)
}

// AggregateIPC returns total instructions per total cycles across cores.
func (r *Result) AggregateIPC() float64 {
	var instr, cycles uint64
	for _, c := range r.Cores {
		instr += c.CPU.Instructions
		cycles += c.CPU.Cycles
	}
	if cycles == 0 {
		return 0
	}
	return float64(instr) / float64(cycles) * float64(len(r.Cores))
}

// PagesOnKind counts resident pages per module kind across all processes
// (the placement census used in the experiment reports).
func (r *Result) PagesOnKind() map[mem.Kind]int {
	out := map[mem.Kind]int{}
	for _, c := range r.Cores {
		//moca:unordered commutative per-kind sums; each key folds independently
		for id, n := range c.PagesByModule {
			if id >= 0 && id < len(r.ModuleKinds) {
				out[r.ModuleKinds[id]] += n
			}
		}
	}
	return out
}
