package sim

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"moca/internal/classify"
	"moca/internal/heap"
	"moca/internal/mem"
	"moca/internal/obs"
	"moca/internal/trace"
	"moca/internal/workload"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/golden")

const goldenMeasure = 60_000

// goldenRecord pins the canonical metrics of one reference run. Integers
// must match bit-exactly; floats are derived from deterministic integer
// state and compared at near-machine precision.
type goldenRecord struct {
	System        string         `json:"system"`
	Policy        string         `json:"policy"`
	ElapsedPs     int64          `json:"elapsed_ps"`
	Instructions  uint64         `json:"instructions"`
	MemRequests   uint64         `json:"mem_requests"`
	MemAccessPs   int64          `json:"mem_access_time_ps"`
	IPC           []float64      `json:"ipc"`
	LLCMPKI       []float64      `json:"llc_mpki"`
	MemEDP        float64        `json:"mem_edp"`
	SystemEDP     float64        `json:"system_edp"`
	PagesByKind   map[string]int `json:"pages_by_kind"`
	FallbackPages uint64         `json:"fallback_pages"`
	Obs           *obs.Snapshot  `json:"obs"`
}

func goldenFrom(res *Result) goldenRecord {
	g := goldenRecord{
		System:        res.Name,
		Policy:        res.Policy,
		ElapsedPs:     int64(res.Elapsed),
		Instructions:  res.TotalInstructions(),
		MemRequests:   res.MemRequests(),
		MemAccessPs:   int64(res.AvgMemAccessTime()),
		MemEDP:        res.MemEDP(),
		SystemEDP:     res.SystemEDP(),
		PagesByKind:   map[string]int{},
		FallbackPages: res.OS.FallbackPages,
		Obs:           res.Obs,
	}
	for _, c := range res.Cores {
		g.IPC = append(g.IPC, c.IPC())
		g.LLCMPKI = append(g.LLCMPKI, c.LLCMPKI())
	}
	for kind, n := range res.PagesOnKind() {
		g.PagesByKind[kind.String()] = n
	}
	return g
}

// goldenCases are the reference configurations: the simplest homogeneous
// baseline and a full MOCA heterogeneous run with hand-built classes.
func goldenCases(t *testing.T) []struct {
	name string
	cfg  Config
	proc ProcSpec
} {
	disparity := workload.Disparity()
	cm := classMapFor(t, disparity, map[string]classify.Class{
		"images":        classify.BandwidthSensitive,
		"disparity_map": classify.LatencySensitive,
		"kernel_buf":    classify.NonIntensive,
	})
	return []struct {
		name string
		cfg  Config
		proc ProcSpec
	}{
		{
			name: "homogen-ddr3-mcf",
			cfg:  DefaultConfig("homogen-ddr3", Homogeneous(mem.DDR3), PolicyFixed),
			proc: ProcSpec{App: workload.MCF(), Input: workload.Ref},
		},
		{
			name: "moca-config1-disparity",
			cfg:  DefaultConfig("moca", Heterogeneous(Config1), PolicyMOCA),
			proc: ProcSpec{
				App: disparity, Input: workload.Ref,
				Classes: cm, AppClass: classify.LatencySensitive,
			},
		},
	}
}

// TestGoldenRuns locks the canonical metrics of the reference runs against
// testdata/golden. A legitimate behavior change regenerates them with
//
//	go test ./internal/sim -run TestGoldenRuns -update
func TestGoldenRuns(t *testing.T) {
	// Both execution modes are pinned to the same golden file: the sharded
	// engine must be byte-identical to serial (see shard.go), so a golden
	// divergence in exactly one mode is an ordering bug, not a model change.
	shardCounts := []int{1, 4}
	if testing.Short() {
		shardCounts = []int{1}
	}
	for _, tc := range goldenCases(t) {
		tc := tc
		for _, shards := range shardCounts {
			shards := shards
			t.Run(fmt.Sprintf("%s/shards%d", tc.name, shards), func(t *testing.T) {
				cfg := tc.cfg
				cfg.Obs.Metrics = true
				cfg.Shards = shards
				// The fast path is pinned to the same goldens as the event
				// engine: CI reruns this suite with MOCA_FASTPATH=0 so the
				// slow path can never rot while the fast path is the default.
				cfg.NoFastpath = os.Getenv("MOCA_FASTPATH") == "0"
				sys, err := New(cfg, []ProcSpec{tc.proc})
				if err != nil {
					t.Fatal(err)
				}
				res, err := sys.Run(sys.SuggestedWarmup(), goldenMeasure)
				if err != nil {
					t.Fatal(err)
				}
				got := goldenFrom(res)
				path := filepath.Join("testdata", "golden", tc.name+".json")

				if *update {
					if shards != 1 {
						t.Skip("goldens regenerate from the serial run")
					}
					data, err := json.MarshalIndent(got, "", "  ")
					if err != nil {
						t.Fatal(err)
					}
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
						t.Fatal(err)
					}
					t.Logf("wrote %s", path)
					return
				}

				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("%v (regenerate with -update)", err)
				}
				var want goldenRecord
				if err := json.Unmarshal(data, &want); err != nil {
					t.Fatal(err)
				}
				compareGolden(t, got, want)
			})
		}
	}
}

func compareGolden(t *testing.T, got, want goldenRecord) {
	t.Helper()
	if got.System != want.System || got.Policy != want.Policy {
		t.Errorf("identity: got %s/%s, want %s/%s", got.System, got.Policy, want.System, want.Policy)
	}
	if got.ElapsedPs != want.ElapsedPs {
		t.Errorf("elapsed: got %d, want %d", got.ElapsedPs, want.ElapsedPs)
	}
	if got.Instructions != want.Instructions {
		t.Errorf("instructions: got %d, want %d", got.Instructions, want.Instructions)
	}
	if got.MemRequests != want.MemRequests {
		t.Errorf("mem requests: got %d, want %d", got.MemRequests, want.MemRequests)
	}
	if got.MemAccessPs != want.MemAccessPs {
		t.Errorf("mem access time: got %d, want %d", got.MemAccessPs, want.MemAccessPs)
	}
	if got.FallbackPages != want.FallbackPages {
		t.Errorf("fallback pages: got %d, want %d", got.FallbackPages, want.FallbackPages)
	}
	floatsEq := func(name string, g, w []float64) {
		if len(g) != len(w) {
			t.Errorf("%s: %d cores, want %d", name, len(g), len(w))
			return
		}
		for i := range g {
			if !closeEnough(g[i], w[i]) {
				t.Errorf("%s[%d]: got %v, want %v", name, i, g[i], w[i])
			}
		}
	}
	floatsEq("ipc", got.IPC, want.IPC)
	floatsEq("llc_mpki", got.LLCMPKI, want.LLCMPKI)
	if !closeEnough(got.MemEDP, want.MemEDP) {
		t.Errorf("mem EDP: got %v, want %v", got.MemEDP, want.MemEDP)
	}
	if !closeEnough(got.SystemEDP, want.SystemEDP) {
		t.Errorf("system EDP: got %v, want %v", got.SystemEDP, want.SystemEDP)
	}
	if len(got.PagesByKind) != len(want.PagesByKind) {
		t.Errorf("pages by kind: got %v, want %v", got.PagesByKind, want.PagesByKind)
	} else {
		for kind, n := range want.PagesByKind {
			if got.PagesByKind[kind] != n {
				t.Errorf("pages on %s: got %d, want %d", kind, got.PagesByKind[kind], n)
			}
		}
	}
	if !got.Obs.Equal(want.Obs) {
		t.Errorf("obs snapshot diverged:\ngot  %s\nwant %s", mustJSON(got.Obs), mustJSON(want.Obs))
	}
}

// closeEnough compares floats derived from deterministic integer state:
// only formatting-level noise is tolerated, not behavioral drift.
func closeEnough(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

func mustJSON(v any) string {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Sprintf("<%v>", err)
	}
	return string(data)
}

// TestDeterminismWithReplay runs the same configuration twice directly and
// once more through a recorded-trace replay: all three must agree
// bit-exactly, including the observability snapshots.
func TestDeterminismWithReplay(t *testing.T) {
	spec := workload.Tracking()
	baseProc := ProcSpec{App: spec, Input: workload.Ref}
	newCfg := func() Config {
		cfg := DefaultConfig("homogen-ddr3", Homogeneous(mem.DDR3), PolicyFixed)
		cfg.Obs.Metrics = true
		return cfg
	}
	run := func(proc ProcSpec) (*Result, uint64) {
		sys, err := New(newCfg(), []ProcSpec{proc})
		if err != nil {
			t.Fatal(err)
		}
		warm := sys.SuggestedWarmup()
		res, err := sys.Run(warm, goldenMeasure)
		if err != nil {
			t.Fatal(err)
		}
		return res, warm
	}
	a, warm := run(baseProc)
	b, _ := run(baseProc)

	// Record the app's generator stream from a fresh instance (same spec,
	// heap config, and core seed → identical sequence), then replay it.
	// Slack covers in-flight fetches past the final quota crossing.
	scratch := heap.New(heap.Config{NamingDepth: baseProc.NamingDepth, Classes: baseProc.Classes})
	app, err := workload.Instantiate(spec.ForInput(workload.Ref), scratch, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.Record(w, app.Stream(), warm+goldenMeasure+50_000); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rd, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	replayProc := baseProc
	replayProc.Stream = rd
	c, _ := run(replayProc)

	for _, pair := range []struct {
		label string
		other *Result
	}{{"rerun", b}, {"replay", c}} {
		o := pair.other
		if a.Elapsed != o.Elapsed {
			t.Errorf("%s: elapsed %d != %d", pair.label, o.Elapsed, a.Elapsed)
		}
		if a.Cores[0].CPU != o.Cores[0].CPU {
			t.Errorf("%s: core stats differ:\n%+v\n%+v", pair.label, o.Cores[0].CPU, a.Cores[0].CPU)
		}
		if a.AvgMemAccessTime() != o.AvgMemAccessTime() {
			t.Errorf("%s: mem access time %d != %d", pair.label, o.AvgMemAccessTime(), a.AvgMemAccessTime())
		}
		if a.MemRequests() != o.MemRequests() {
			t.Errorf("%s: mem requests %d != %d", pair.label, o.MemRequests(), a.MemRequests())
		}
		if !a.Obs.Equal(o.Obs) {
			t.Errorf("%s: obs snapshots diverged:\na: %s\n%s: %s",
				pair.label, mustJSON(a.Obs), pair.label, mustJSON(o.Obs))
		}
	}

	// The snapshots must also serialize byte-identically (the property the
	// golden files and any external diffing rely on).
	ja, jb := mustJSON(a.Obs), mustJSON(b.Obs)
	if ja != jb {
		t.Errorf("snapshot JSON not byte-identical:\n%s\n%s", ja, jb)
	}
}
