package sim

import (
	"sync"
	"testing"

	"moca/internal/event"
)

// FuzzWindowMerge feeds random per-shard message batches into the barrier
// merge, staged once sequentially and once by concurrently running shard
// goroutines: the merged sequence must be identical — worker completion
// order can never leak into the deterministic (at, src, seq) order — and
// per-shard staging order must be preserved within equal timestamps.
func FuzzWindowMerge(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(3))
	f.Add([]byte{}, uint8(1))
	f.Add([]byte{0xff, 0x00, 0xff, 0x00, 0x42}, uint8(5))
	f.Fuzz(func(t *testing.T, raw []byte, nshards uint8) {
		shards := int(nshards%8) + 1

		// Decode the fuzz bytes into per-shard batches. Timestamps are
		// drawn from a tiny range so collisions across shards are common —
		// ties are where ordering bugs hide.
		batches := make([][]linkMsg, shards)
		for i, b := range raw {
			src := (i + int(b)) % shards
			msg := linkMsg{
				at:   event.Time(b % 7),
				line: uint64(b) << 3,
				src:  src,
				seq:  uint64(len(batches[src])),
			}
			batches[src] = append(batches[src], msg)
		}

		stage := func(concurrent bool) []linkMsg {
			links := make([]*shardLink, shards)
			for s := range links {
				links[s] = &shardLink{src: s, out: make([][]linkMsg, 1)}
			}
			if concurrent {
				var wg sync.WaitGroup
				for s := range links {
					s := s
					wg.Add(1)
					go func() {
						defer wg.Done()
						links[s].out[0] = append(links[s].out[0], batches[s]...)
					}()
				}
				wg.Wait()
			} else {
				for s := range links {
					links[s].out[0] = append(links[s].out[0], batches[s]...)
				}
			}
			return mergeWindow(nil, links, 0)
		}

		seq := stage(false)
		conc := stage(true)

		if len(seq) != len(conc) {
			t.Fatalf("merge length diverged: sequential %d, concurrent %d", len(seq), len(conc))
		}
		for i := range seq {
			if seq[i] != conc[i] {
				t.Fatalf("merge[%d] diverged:\nsequential %+v\nconcurrent %+v", i, seq[i], conc[i])
			}
		}

		// The merge must be totally ordered by (at, src, seq) ...
		for i := 1; i < len(seq); i++ {
			if linkMsgLess(seq[i], seq[i-1]) {
				t.Fatalf("merge not sorted at %d: %+v before %+v", i, seq[i-1], seq[i])
			}
		}
		// ... and lossless: per-shard counts must round-trip.
		perShard := make([]int, shards)
		for _, m := range seq {
			perShard[m.src]++
		}
		for s := range batches {
			if perShard[s] != len(batches[s]) {
				t.Fatalf("shard %d: staged %d messages, merged %d", s, len(batches[s]), perShard[s])
			}
		}
	})
}
