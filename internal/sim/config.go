// Package sim assembles the full system: cores with private cache
// hierarchies, an OS with a placement policy, per-module frame pools, and
// one memory controller per channel, all driven by a single deterministic
// event queue. It reproduces the paper's simulation methodology (Section
// V): warm-up then a measured window, per-core instruction quotas, and
// memory/system metrics per run.
package sim

import (
	"fmt"

	"moca/internal/alloc"
	"moca/internal/cache"
	"moca/internal/classify"
	"moca/internal/cpu"
	"moca/internal/event"
	"moca/internal/heap"
	"moca/internal/mem"
	"moca/internal/obs"
	"moca/internal/power"
	"moca/internal/workload"
)

// ModuleSpec declares one physical memory module of the system.
type ModuleSpec struct {
	Kind mem.Kind
	// CapacityBytes is the module's total size.
	CapacityBytes uint64
	// Channels is how many memory channels serve the module: 1 for the
	// heterogeneous modules (each has a dedicated controller, Section
	// V-C), 4 for the homogeneous systems (RoRaBaChCo interleaving).
	Channels int
}

// PolicyKind selects the page-placement policy.
type PolicyKind int

const (
	// PolicyFixed places all pages in module order (homogeneous systems).
	PolicyFixed PolicyKind = iota
	// PolicyAppLevel is the Heter-App baseline (application-level).
	PolicyAppLevel
	// PolicyMOCA is the paper's object-level policy.
	PolicyMOCA
	// PolicyMigrate is the dynamic hot-page migration baseline the paper
	// contrasts MOCA against (Section IV-E): pages start in slow memory
	// and an epoch-based monitor promotes hot pages, paying monitoring,
	// copy-traffic, and shootdown costs at runtime.
	PolicyMigrate
)

func (p PolicyKind) String() string {
	switch p {
	case PolicyFixed:
		return "fixed"
	case PolicyAppLevel:
		return "heter-app"
	case PolicyMOCA:
		return "moca"
	case PolicyMigrate:
		return "migrate"
	default:
		return fmt.Sprintf("PolicyKind(%d)", int(p))
	}
}

// Config describes a complete system to simulate.
type Config struct {
	Name string

	Core      cpu.Config
	CacheL1   cache.Config
	CacheL2   cache.Config
	Modules   []ModuleSpec
	Policy    PolicyKind
	Scheduler mem.Scheduler
	// RowPolicy and BankStripe tune every channel (defaults: open page,
	// row-buffer striping, per Table I). Used by the controller ablations.
	RowPolicy  mem.RowPolicy
	BankStripe mem.BankStripe
	// Chains overrides the per-class module-kind preference orders
	// (nil = paper defaults; used by the fallback-order ablation).
	Chains map[classify.Class][]mem.Kind

	// Profile enables per-object profiling (the offline stage).
	Profile bool
	// Prefetch enables the optional per-core stride prefetcher (off by
	// default, matching Table I; the prefetch ablation uses it).
	Prefetch cache.PrefetchConfig
	// MigrationEpoch is the monitoring interval for PolicyMigrate
	// (default 50 us).
	MigrationEpoch event.Time
	// Migration tunes the PolicyMigrate engine (defaults apply).
	Migration alloc.MigratorConfig
	// Thresholds classify profiled objects (default: Thr_Lat=1, Thr_BW=20).
	Thresholds classify.Thresholds
	// CoreModel computes core power (default: the 21 W calibration).
	CoreModel power.CoreModel
	// Obs selects runtime observability (metrics registry and/or run-trace
	// sink). Zero value: disabled — the hot path pays only nil checks.
	Obs obs.Options
	// Shards is the number of worker goroutines the run executes on
	// (<= 1: serial). An execution strategy, not a model parameter:
	// results are byte-identical across shard counts (see shard.go), so
	// the experiment cache excludes it from its keys.
	Shards int
	// NoFastpath disables the common-case fast path (inline L1/L2 hit
	// servicing and compute-run batching; zero value: enabled). Like
	// Shards it is an execution strategy, not a model parameter: output is
	// byte-identical either way (internal/sim/difftest proves it), so the
	// experiment cache excludes it from its keys. The escape hatch exists
	// so the slow path stays testable (-fastpath=false, MOCA_FASTPATH=0).
	NoFastpath bool
	// Progress, if non-nil, is called periodically during RunContext with
	// the whole-run completion (done out of total, in per-core retired
	// instructions over warmup + measure). The hook runs on the coordinator
	// goroutine at a window barrier while every shard is quiescent, so it
	// may read the system (e.g. ObsSnapshot) but must not block: the
	// simulation does not advance until it returns. Pure observability —
	// excluded from serialization and cache keys; the values passed are
	// deterministic, only their wall-clock timing varies.
	Progress func(done, total uint64) `json:"-"`
}

// ProcSpec binds an application to a core.
type ProcSpec struct {
	App workload.AppSpec
	// Input selects train or ref data.
	Input workload.Input
	// Classes is the MOCA instrumentation (nil outside MOCA runs).
	Classes heap.ClassMap
	// AppClass is the application-level class for the Heter-App policy.
	AppClass classify.Class
	// NamingDepth for the heap (default 5; the naming ablation uses 1).
	NamingDepth int
	// Stream, if non-nil, replaces the application's built-in generator
	// (trace replay). The App is still instantiated so the heap layout
	// matches the addresses in the stream: a trace must be replayed with
	// the same App spec, input, and Classes it was recorded under.
	Stream cpu.Stream
}

// Experiment scale: 1/64 of the paper's 2 GB system (DESIGN.md).
const (
	mb = 1 << 20

	// HomogeneousCapacity is the total size of each homogeneous system
	// (the paper's 2 GB scaled).
	HomogeneousCapacity = 32 * mb
)

// Homogeneous returns the paper's homogeneous baseline: one module kind,
// total capacity split over four interleaved channels (Section V-B).
func Homogeneous(kind mem.Kind) []ModuleSpec {
	return []ModuleSpec{{Kind: kind, CapacityBytes: HomogeneousCapacity, Channels: 4}}
}

// HeterConfig identifies the three heterogeneous capacity configurations
// of Section VI-C. Config1 is the paper's default.
type HeterConfig int

const (
	// Config1: 256 MB RLDRAM + 768 MB HBM + 2x512 MB LPDDR2 (scaled).
	Config1 HeterConfig = iota + 1
	// Config2: 512 MB RLDRAM + 512 MB HBM + 1 GB LPDDR2 (scaled).
	Config2
	// Config3: 768 MB RLDRAM + 768 MB HBM + 512 MB LPDDR2 (scaled).
	Config3
)

func (h HeterConfig) String() string { return fmt.Sprintf("config%d", int(h)) }

// Heterogeneous returns the module set for one of the paper's three
// heterogeneous configurations, at experiment scale. Four channels total:
// RLDRAM, HBM, and two LPDDR2 modules with dedicated controllers.
func Heterogeneous(cfg HeterConfig) []ModuleSpec {
	switch cfg {
	case Config1:
		return []ModuleSpec{
			{Kind: mem.RLDRAM, CapacityBytes: 4 * mb, Channels: 1},
			{Kind: mem.HBM, CapacityBytes: 12 * mb, Channels: 1},
			{Kind: mem.LPDDR2, CapacityBytes: 8 * mb, Channels: 1},
			{Kind: mem.LPDDR2, CapacityBytes: 8 * mb, Channels: 1},
		}
	case Config2:
		return []ModuleSpec{
			{Kind: mem.RLDRAM, CapacityBytes: 8 * mb, Channels: 1},
			{Kind: mem.HBM, CapacityBytes: 8 * mb, Channels: 1},
			{Kind: mem.LPDDR2, CapacityBytes: 8 * mb, Channels: 1},
			{Kind: mem.LPDDR2, CapacityBytes: 8 * mb, Channels: 1},
		}
	case Config3:
		return []ModuleSpec{
			{Kind: mem.RLDRAM, CapacityBytes: 12 * mb, Channels: 1},
			{Kind: mem.HBM, CapacityBytes: 12 * mb, Channels: 1},
			{Kind: mem.LPDDR2, CapacityBytes: 4 * mb, Channels: 1},
			{Kind: mem.LPDDR2, CapacityBytes: 4 * mb, Channels: 1},
		}
	default:
		panic(fmt.Sprintf("sim: unknown heterogeneous config %d", int(cfg)))
	}
}

// DefaultConfig fills in the Table I microarchitecture around the given
// memory system and policy.
func DefaultConfig(name string, modules []ModuleSpec, policy PolicyKind) Config {
	h := cache.DefaultHierarchyConfig(0)
	return Config{
		Name:       name,
		Core:       cpu.DefaultConfig(),
		CacheL1:    h.L1,
		CacheL2:    h.L2,
		Modules:    modules,
		Policy:     policy,
		Scheduler:  mem.FRFCFS,
		Thresholds: classify.DefaultThresholds(),
		CoreModel:  power.DefaultCoreModel(),
	}
}

// Validate reports a configuration error, if any.
func (c Config) Validate() error {
	if err := c.Core.Validate(); err != nil {
		return err
	}
	if err := c.CacheL1.Validate(); err != nil {
		return fmt.Errorf("sim: L1: %w", err)
	}
	if err := c.CacheL2.Validate(); err != nil {
		return fmt.Errorf("sim: L2: %w", err)
	}
	if len(c.Modules) == 0 {
		return fmt.Errorf("sim: no memory modules")
	}
	for i, m := range c.Modules {
		if m.Channels <= 0 {
			return fmt.Errorf("sim: module %d has %d channels", i, m.Channels)
		}
		if m.CapacityBytes == 0 || m.CapacityBytes%uint64(m.Channels) != 0 {
			return fmt.Errorf("sim: module %d capacity %d not divisible across %d channels", i, m.CapacityBytes, m.Channels)
		}
	}
	if err := c.Thresholds.Validate(); err != nil {
		return err
	}
	if c.Shards < 0 {
		return fmt.Errorf("sim: negative shard count %d", c.Shards)
	}
	return nil
}
