package sim

import (
	"encoding/json"
	"fmt"
)

// BehaviorVersion identifies the simulator's behavioral revision: any
// change that can alter timing, accounting, or energy of a run must bump
// it. The experiment harness folds it into the salt of its persistent
// result cache, so stale results from an older simulator are evicted
// instead of silently reused.
// v2: hashed set-associative TLB (hit/miss counts differ from the old
// fully-associative LRU) and bounded prefetch usefulness filter.
// v3: sharded execution engine — every core->channel submission pays a
// fixed one-window link latency (windowCycles cycles), so memory timing
// shifts uniformly relative to v2. Identical across all -shards values.
const BehaviorVersion = 3

// resultWire adds the unexported energy accumulators to the wire format so
// a Result survives a disk round-trip with MemEnergyJ/SystemEDP intact.
// All other fields are plain exported data.
type resultWire struct {
	*resultAlias
	MemEnergyJ  float64 `json:"mem_energy_j"`
	CoreEnergyJ float64 `json:"core_energy_j"`
}

// resultAlias strips Result's methods so Marshal/Unmarshal don't recurse.
type resultAlias Result

// MarshalJSON implements json.Marshaler.
func (r *Result) MarshalJSON() ([]byte, error) {
	return json.Marshal(&resultWire{
		resultAlias: (*resultAlias)(r),
		MemEnergyJ:  r.memEnergyJ,
		CoreEnergyJ: r.coreEnergyJ,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (r *Result) UnmarshalJSON(data []byte) error {
	aux := resultWire{resultAlias: (*resultAlias)(r)}
	if err := json.Unmarshal(data, &aux); err != nil {
		return fmt.Errorf("sim: decoding result: %w", err)
	}
	r.memEnergyJ = aux.MemEnergyJ
	r.coreEnergyJ = aux.CoreEnergyJ
	return nil
}
