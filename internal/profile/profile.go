// Package profile implements MOCA's offline profiling stage (paper
// Sections III-A, IV-A/B): a lookup table of named memory objects
// accumulating, per object, LLC misses and ROB-head stall cycles per load
// miss, plus the process-wide instruction count that normalizes MPKI.
// A finished profile classifies its objects and exports the ClassMap that
// is "instrumented into the application binary".
package profile

import (
	"encoding/json"
	"fmt"
	"sort"

	"moca/internal/classify"
	"moca/internal/heap"
)

// Profiler accumulates per-object counters during a simulation. Wire its
// hook methods to the core and cache hierarchy callbacks.
type Profiler struct {
	instructions uint64
	stats        []objCounters
}

type objCounters struct {
	llcMisses   uint64
	memLoads    uint64
	stallCycles uint64
	stores      uint64
	loads       uint64
}

// New returns an empty profiler.
func New() *Profiler { return &Profiler{} }

func (p *Profiler) grow(id heap.NameID) *objCounters {
	for len(p.stats) <= int(id) {
		p.stats = append(p.stats, objCounters{})
	}
	return &p.stats[id]
}

// OnLLCMiss records a primary LLC miss for an object; wire to
// cache.Hierarchy.OnLLCMiss.
func (p *Profiler) OnLLCMiss(obj uint64) {
	p.grow(heap.NameID(obj)).llcMisses++
}

// OnMemLoadRetire records a retired LLC-missing load and its ROB-head
// stall cycles; wire to cpu.Core.OnMemLoadRetire.
func (p *Profiler) OnMemLoadRetire(obj uint64, stallCycles uint64) {
	c := p.grow(heap.NameID(obj))
	c.memLoads++
	c.stallCycles += stallCycles
}

// OnStore records a store access for an object; wire to
// cache.Hierarchy.OnStore. Write intensity is the extra signal
// write-asymmetric tiers (PCM) classify on.
func (p *Profiler) OnStore(obj uint64) {
	p.grow(heap.NameID(obj)).stores++
}

// OnLoad records a load access for an object; wire to
// cache.Hierarchy.OnLoad.
func (p *Profiler) OnLoad(obj uint64) {
	p.grow(heap.NameID(obj)).loads++
}

// OnRetire counts retired instructions; wire to cpu.Core.OnRetire.
func (p *Profiler) OnRetire(n uint64) { p.instructions += n }

// Instructions returns the retired instruction count observed so far.
func (p *Profiler) Instructions() uint64 { return p.instructions }

// ObjectProfile is one finished LUT row: a named object with its profiled
// metrics and classification.
type ObjectProfile struct {
	ID      heap.NameID  `json:"id"`
	Key     heap.NameKey `json:"key"`
	Label   string       `json:"label,omitempty"`
	Site    heap.Site    `json:"site"`
	Context []heap.Site  `json:"context,omitempty"`

	SizeBytes uint64 `json:"size_bytes"` // peak live bytes
	Allocs    uint64 `json:"allocs"`

	LLCMisses   uint64 `json:"llc_misses"`
	MemLoads    uint64 `json:"mem_loads"`
	StallCycles uint64 `json:"stall_cycles"`
	Stores      uint64 `json:"stores"`
	Loads       uint64 `json:"loads"`

	MPKI         float64 `json:"mpki"`
	StallPerMiss float64 `json:"stall_per_miss"`
	// WPKI is store accesses per kilo-instruction and WriteRatio is
	// stores/(loads+stores) — the write-intensity signals for
	// write-asymmetric tiers (an extension beyond the paper).
	WPKI       float64        `json:"wpki"`
	WriteRatio float64        `json:"write_ratio"`
	Class      classify.Class `json:"class"`
}

// Profile is a complete profiling result for one application run.
type Profile struct {
	App          string              `json:"app"`
	Instructions uint64              `json:"instructions"`
	Thresholds   classify.Thresholds `json:"thresholds"`
	Objects      []ObjectProfile     `json:"objects"`
}

// Snapshot classifies the accumulated counters against the allocator's
// name table and returns the finished profile. Objects are ordered by
// descending LLC misses (hottest first), pseudo-objects included.
func (p *Profiler) Snapshot(app string, names []heap.NameInfo, th classify.Thresholds) Profile {
	pr := Profile{App: app, Instructions: p.instructions, Thresholds: th}
	for _, info := range names {
		var c objCounters
		if int(info.ID) < len(p.stats) {
			c = p.stats[info.ID]
		}
		op := ObjectProfile{
			ID: info.ID, Key: info.Key, Label: info.Label,
			Site: info.Site, Context: info.Context,
			SizeBytes: info.MaxBytes, Allocs: info.Allocs,
			LLCMisses: c.llcMisses, MemLoads: c.memLoads, StallCycles: c.stallCycles,
			Stores: c.stores, Loads: c.loads,
		}
		op.MPKI, op.StallPerMiss = metrics(c, p.instructions)
		if p.instructions > 0 {
			op.WPKI = float64(c.stores) * 1000 / float64(p.instructions)
		}
		if total := c.loads + c.stores; total > 0 {
			op.WriteRatio = float64(c.stores) / float64(total)
		}
		op.Class = th.Classify(op.MPKI, op.StallPerMiss)
		pr.Objects = append(pr.Objects, op)
	}
	sort.SliceStable(pr.Objects, func(i, j int) bool {
		return pr.Objects[i].LLCMisses > pr.Objects[j].LLCMisses
	})
	return pr
}

func metrics(c objCounters, instructions uint64) (mpki, stallPerMiss float64) {
	if instructions > 0 {
		mpki = float64(c.llcMisses) * 1000 / float64(instructions)
	}
	if c.memLoads > 0 {
		stallPerMiss = float64(c.stallCycles) / float64(c.memLoads)
	}
	return
}

// ClassMap exports the classification for instrumentation into a
// subsequent run's allocator (heap.Config.Classes). Pseudo-objects are
// excluded: non-heap segments are placed by segment, not by name.
func (pr Profile) ClassMap() heap.ClassMap {
	m := make(heap.ClassMap, len(pr.Objects))
	for _, o := range pr.Objects {
		if o.ID >= heap.FirstHeapName {
			m[o.Key] = o.Class
		}
	}
	return m
}

// AppMetrics aggregates the whole application's metrics (Fig. 1's
// coordinates) across all objects, pseudo-objects included.
func (pr Profile) AppMetrics() classify.Metrics {
	var misses, memLoads, stalls uint64
	for _, o := range pr.Objects {
		misses += o.LLCMisses
		memLoads += o.MemLoads
		stalls += o.StallCycles
	}
	m := classify.Metrics{}
	if pr.Instructions > 0 {
		m.MPKI = float64(misses) * 1000 / float64(pr.Instructions)
	}
	if memLoads > 0 {
		m.StallPerMiss = float64(stalls) / float64(memLoads)
	}
	return m
}

// AppClass is the application-level classification used by the Heter-App
// baseline (Phadke & Narayanasamy, DATE 2011) and Table III.
func (pr Profile) AppClass() classify.Class {
	m := pr.AppMetrics()
	return pr.Thresholds.Classify(m.MPKI, m.StallPerMiss)
}

// Object finds a profiled object by name key.
func (pr Profile) Object(key heap.NameKey) (ObjectProfile, bool) {
	for _, o := range pr.Objects {
		if o.Key == key {
			return o, true
		}
	}
	return ObjectProfile{}, false
}

// HeapObjects returns only the real heap objects (no pseudo segments).
func (pr Profile) HeapObjects() []ObjectProfile {
	var out []ObjectProfile
	for _, o := range pr.Objects {
		if o.ID >= heap.FirstHeapName {
			out = append(out, o)
		}
	}
	return out
}

// Marshal serializes the profile (the artifact cmd/moca-profile writes and
// cmd/moca-sim consumes, standing in for binary instrumentation).
func (pr Profile) Marshal() ([]byte, error) {
	return json.MarshalIndent(pr, "", "  ")
}

// Unmarshal parses a serialized profile.
func Unmarshal(data []byte) (Profile, error) {
	var pr Profile
	if err := json.Unmarshal(data, &pr); err != nil {
		return Profile{}, fmt.Errorf("profile: %w", err)
	}
	return pr, nil
}

// Merge combines profiles from multiple simulation points into one, with
// the given weights (the paper's SimPoint-weighted metrics, Section V-A).
// Objects are matched by NameKey; weights are normalized internally.
// Classification uses the thresholds of the first profile.
func Merge(profiles []Profile, weights []float64) (Profile, error) {
	if len(profiles) == 0 {
		return Profile{}, fmt.Errorf("profile: merge of zero profiles")
	}
	if len(weights) != len(profiles) {
		return Profile{}, fmt.Errorf("profile: %d profiles but %d weights", len(profiles), len(weights))
	}
	var wsum float64
	for _, w := range weights {
		if w < 0 {
			return Profile{}, fmt.Errorf("profile: negative weight %v", w)
		}
		wsum += w
	}
	if wsum == 0 {
		return Profile{}, fmt.Errorf("profile: zero total weight")
	}

	th := profiles[0].Thresholds
	// Accumulation runs over a flat table in first-seen order, with a
	// keyIndex resolving NameKey → table row. The index persists across
	// the profile windows of the merge, so each window's objects cost one
	// open-addressed probe each — no per-window map rebuild, and the
	// output order is the deterministic insertion order.
	var accs []mergeAcc
	var idx keyIndex
	idx.init(64)
	var instr float64
	for i, pr := range profiles {
		w := weights[i] / wsum
		instr += w * float64(pr.Instructions)
		for _, o := range pr.Objects {
			row, fresh := idx.at(o.Key, len(accs))
			if fresh {
				accs = append(accs, mergeAcc{op: o})
				a := &accs[row]
				a.op.LLCMisses, a.op.MemLoads, a.op.StallCycles = 0, 0, 0
			}
			a := &accs[row]
			a.op.LLCMisses += o.LLCMisses
			a.op.MemLoads += o.MemLoads
			a.op.StallCycles += o.StallCycles
			a.op.Stores += o.Stores
			a.op.Loads += o.Loads
			if o.SizeBytes > a.op.SizeBytes {
				a.op.SizeBytes = o.SizeBytes
			}
			a.mpki += w * o.MPKI
			a.stall += w * o.StallPerMiss
			a.stallWeights += w
		}
	}
	out := Profile{App: profiles[0].App, Instructions: uint64(instr), Thresholds: th}
	for i := range accs {
		a := &accs[i]
		a.op.MPKI = a.mpki
		if a.stallWeights > 0 {
			a.op.StallPerMiss = a.stall / a.stallWeights
		}
		a.op.Class = th.Classify(a.op.MPKI, a.op.StallPerMiss)
		out.Objects = append(out.Objects, a.op)
	}
	sort.SliceStable(out.Objects, func(i, j int) bool {
		return out.Objects[i].LLCMisses > out.Objects[j].LLCMisses
	})
	return out, nil
}

// mergeAcc is one row of Merge's flat accumulator table.
type mergeAcc struct {
	op           ObjectProfile
	mpki, stall  float64
	stallWeights float64
}

// keyIndex is a power-of-two, linear-probing open-addressed index from
// NameKey to a dense row number. NameKeys are already well-mixed hashes
// (heap.Allocator.KeyOf is FNV-based), so the index uses them directly.
type keyIndex struct {
	keys []heap.NameKey
	rows []int32
	used []bool
	n    int
}

func (ix *keyIndex) init(size int) {
	ix.keys = make([]heap.NameKey, size)
	ix.rows = make([]int32, size)
	ix.used = make([]bool, size)
	ix.n = 0
}

// at returns the row for key, assigning `next` as a new row (fresh=true)
// on first sight. Grows at ~75% load.
func (ix *keyIndex) at(key heap.NameKey, next int) (row int, fresh bool) {
	mask := len(ix.keys) - 1
	i := int(uint64(key)) & mask
	for ix.used[i] {
		if ix.keys[i] == key {
			return int(ix.rows[i]), false
		}
		i = (i + 1) & mask
	}
	ix.keys[i], ix.rows[i], ix.used[i] = key, int32(next), true
	ix.n++
	if ix.n*4 > len(ix.keys)*3 {
		ix.grow()
	}
	return next, true
}

func (ix *keyIndex) grow() {
	keys, rows, used := ix.keys, ix.rows, ix.used
	ix.init(len(keys) * 2)
	mask := len(ix.keys) - 1
	for i := range keys {
		if !used[i] {
			continue
		}
		j := int(uint64(keys[i])) & mask
		for ix.used[j] {
			j = (j + 1) & mask
		}
		ix.keys[j], ix.rows[j], ix.used[j] = keys[i], rows[i], true
		ix.n++
	}
}
