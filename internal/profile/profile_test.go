package profile

import (
	"math"
	"testing"

	"moca/internal/classify"
	"moca/internal/heap"
)

// buildNames allocates a few objects and returns the allocator.
func buildNames(t *testing.T) (*heap.Allocator, []*heap.Object) {
	t.Helper()
	a := heap.New(heap.Config{})
	var objs []*heap.Object
	for i, spec := range []struct {
		size  uint64
		site  heap.Site
		label string
	}{
		{1 << 20, 100, "hot"},
		{1 << 16, 200, "warm"},
		{1 << 10, 300, "cold"},
	} {
		o, err := a.Alloc(spec.size, spec.site, nil, spec.label)
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		objs = append(objs, o)
	}
	return a, objs
}

func TestSnapshotMetricsAndClassification(t *testing.T) {
	a, objs := buildNames(t)
	p := New()
	p.OnRetire(1_000_000) // 1M instructions

	// hot: 50k misses, pointer-chase (300 cycles per miss) -> L.
	for i := 0; i < 50_000; i++ {
		p.OnLLCMiss(uint64(objs[0].Name))
	}
	p.OnMemLoadRetire(uint64(objs[0].Name), 300)
	for i := 1; i < 50_000; i++ {
		p.OnMemLoadRetire(uint64(objs[0].Name), 300)
	}
	// warm: 20k misses, high MLP (5 cycles per miss) -> B.
	for i := 0; i < 20_000; i++ {
		p.OnLLCMiss(uint64(objs[1].Name))
		p.OnMemLoadRetire(uint64(objs[1].Name), 5)
	}
	// cold: 100 misses -> N.
	for i := 0; i < 100; i++ {
		p.OnLLCMiss(uint64(objs[2].Name))
		p.OnMemLoadRetire(uint64(objs[2].Name), 400)
	}

	pr := p.Snapshot("testapp", a.Names(), classify.DefaultThresholds())
	if pr.App != "testapp" || pr.Instructions != 1_000_000 {
		t.Fatalf("profile header %+v", pr)
	}
	if len(pr.Objects) != 6 { // 3 pseudo + 3 heap
		t.Fatalf("objects = %d, want 6", len(pr.Objects))
	}
	// Ordered by misses: hot first.
	if pr.Objects[0].Label != "hot" || pr.Objects[1].Label != "warm" {
		t.Errorf("ordering: %s, %s", pr.Objects[0].Label, pr.Objects[1].Label)
	}

	hot, ok := pr.Object(objs[0].Key)
	if !ok {
		t.Fatal("hot object missing")
	}
	if math.Abs(hot.MPKI-50.0) > 1e-9 {
		t.Errorf("hot MPKI = %v, want 50", hot.MPKI)
	}
	if math.Abs(hot.StallPerMiss-300) > 1e-9 {
		t.Errorf("hot stall/miss = %v", hot.StallPerMiss)
	}
	if hot.Class != classify.LatencySensitive {
		t.Errorf("hot class = %v, want L", hot.Class)
	}
	warm, _ := pr.Object(objs[1].Key)
	if warm.Class != classify.BandwidthSensitive {
		t.Errorf("warm class = %v, want B", warm.Class)
	}
	cold, _ := pr.Object(objs[2].Key)
	if cold.Class != classify.NonIntensive {
		t.Errorf("cold class = %v, want N", cold.Class)
	}
	if cold.MPKI != 0.1 {
		t.Errorf("cold MPKI = %v, want 0.1", cold.MPKI)
	}
	if hot.SizeBytes != 1<<20 {
		t.Errorf("hot size = %d", hot.SizeBytes)
	}
}

func TestClassMapExcludesPseudoObjects(t *testing.T) {
	a, objs := buildNames(t)
	p := New()
	p.OnRetire(1000)
	pr := p.Snapshot("x", a.Names(), classify.DefaultThresholds())
	cm := pr.ClassMap()
	if len(cm) != 3 {
		t.Fatalf("class map has %d entries, want 3 heap objects", len(cm))
	}
	for _, o := range objs {
		if _, ok := cm[o.Key]; !ok {
			t.Errorf("object %v missing from class map", o.Key)
		}
	}
}

func TestAppMetricsAggregation(t *testing.T) {
	a, objs := buildNames(t)
	p := New()
	p.OnRetire(100_000)
	for i := 0; i < 1000; i++ {
		p.OnLLCMiss(uint64(objs[0].Name))
		p.OnMemLoadRetire(uint64(objs[0].Name), 100)
	}
	for i := 0; i < 1000; i++ {
		p.OnLLCMiss(uint64(objs[1].Name))
		p.OnMemLoadRetire(uint64(objs[1].Name), 10)
	}
	pr := p.Snapshot("x", a.Names(), classify.DefaultThresholds())
	m := pr.AppMetrics()
	if math.Abs(m.MPKI-20.0) > 1e-9 {
		t.Errorf("app MPKI = %v, want 20", m.MPKI)
	}
	if math.Abs(m.StallPerMiss-55.0) > 1e-9 {
		t.Errorf("app stall/miss = %v, want 55", m.StallPerMiss)
	}
	if pr.AppClass() != classify.LatencySensitive {
		t.Errorf("app class = %v, want L", pr.AppClass())
	}
}

func TestHeapObjectsFilter(t *testing.T) {
	a, _ := buildNames(t)
	p := New()
	pr := p.Snapshot("x", a.Names(), classify.DefaultThresholds())
	hs := pr.HeapObjects()
	if len(hs) != 3 {
		t.Fatalf("heap objects = %d, want 3", len(hs))
	}
	for _, o := range hs {
		if o.ID < heap.FirstHeapName {
			t.Errorf("pseudo-object %d leaked into heap objects", o.ID)
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	a, _ := buildNames(t)
	p := New()
	p.OnRetire(500)
	p.OnLLCMiss(3)
	pr := p.Snapshot("roundtrip", a.Names(), classify.DefaultThresholds())
	data, err := pr.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.App != pr.App || back.Instructions != pr.Instructions || len(back.Objects) != len(pr.Objects) {
		t.Errorf("round trip mismatch: %+v vs %+v", back, pr)
	}
	if back.Objects[0].Key != pr.Objects[0].Key {
		t.Error("object keys did not survive round trip")
	}
	if _, err := Unmarshal([]byte("{bad")); err == nil {
		t.Error("bad JSON accepted")
	}
}

func TestMergeWeighted(t *testing.T) {
	a, objs := buildNames(t)
	th := classify.DefaultThresholds()

	p1 := New()
	p1.OnRetire(1000)
	for i := 0; i < 100; i++ {
		p1.OnLLCMiss(uint64(objs[0].Name)) // MPKI 100 in simpoint 1
		p1.OnMemLoadRetire(uint64(objs[0].Name), 200)
	}
	pr1 := p1.Snapshot("app", a.Names(), th)

	p2 := New()
	p2.OnRetire(1000) // object idle in simpoint 2
	pr2 := p2.Snapshot("app", a.Names(), th)

	merged, err := Merge([]Profile{pr1, pr2}, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := merged.Object(objs[0].Key)
	if !ok {
		t.Fatal("object lost in merge")
	}
	// Weighted MPKI: (1*100 + 3*0)/4 = 25.
	if math.Abs(got.MPKI-25.0) > 1e-9 {
		t.Errorf("merged MPKI = %v, want 25", got.MPKI)
	}
	if got.LLCMisses != 100 {
		t.Errorf("merged misses = %d, want 100 (raw sum)", got.LLCMisses)
	}
}

func TestMergeErrors(t *testing.T) {
	if _, err := Merge(nil, nil); err == nil {
		t.Error("empty merge accepted")
	}
	a, _ := buildNames(t)
	pr := New().Snapshot("x", a.Names(), classify.DefaultThresholds())
	if _, err := Merge([]Profile{pr}, []float64{1, 2}); err == nil {
		t.Error("weight count mismatch accepted")
	}
	if _, err := Merge([]Profile{pr}, []float64{-1}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := Merge([]Profile{pr}, []float64{0}); err == nil {
		t.Error("zero total weight accepted")
	}
}

func TestObjectLookupMiss(t *testing.T) {
	a, _ := buildNames(t)
	pr := New().Snapshot("x", a.Names(), classify.DefaultThresholds())
	if _, ok := pr.Object(heap.NameKey(0xdeadbeef)); ok {
		t.Error("lookup of unknown key succeeded")
	}
}
