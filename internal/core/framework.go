// Package core is the MOCA framework itself — the paper's contribution
// (Sections III and IV) assembled from the substrate packages:
//
//  1. Offline profiling: run the application on its training input with
//     per-object naming and counters (Fig. 7's "offline profiler").
//  2. Classification: threshold the per-object metrics into L/B/N types.
//  3. Instrumentation: export the classification as a ClassMap, the stand-in
//     for recompiling the binary with typed allocation calls.
//  4. Runtime allocation: hand the ClassMap to a MOCA-policy system, whose
//     allocator partitions the heap by type and whose OS places pages on
//     the best-fit module with next-best fallback.
package core

import (
	"fmt"

	"moca/internal/cache"
	"moca/internal/classify"
	"moca/internal/heap"
	"moca/internal/mem"
	"moca/internal/profile"
	"moca/internal/sim"
	"moca/internal/workload"
)

// Framework configures MOCA's offline pipeline.
type Framework struct {
	// ObjectThresholds classify heap objects (Thr_Lat, Thr_BW).
	ObjectThresholds classify.Thresholds
	// AppThresholds classify whole applications for the Heter-App
	// baseline and Table III.
	AppThresholds classify.Thresholds
	// NamingDepth is the call-stack depth for object naming (default 5).
	NamingDepth int
	// ProfileWindow is the measured instruction count of a profiling run.
	ProfileWindow uint64
	// ProfileModules is the memory system profiling runs execute on
	// (default: the homogeneous DDR3 baseline).
	ProfileModules []sim.ModuleSpec
	// Prefetch optionally enables a stride prefetcher during profiling
	// runs — off by default; the prefetch ablation measures how it
	// shifts the classification metrics.
	Prefetch cache.PrefetchConfig
}

// NewFramework returns the paper's default configuration.
func NewFramework() *Framework {
	return &Framework{
		ObjectThresholds: classify.DefaultThresholds(),
		AppThresholds:    classify.DefaultAppThresholds(),
		NamingDepth:      heap.DefaultNamingDepth,
		ProfileWindow:    300_000,
		ProfileModules:   sim.Homogeneous(mem.DDR3),
	}
}

// Profile runs the offline profiling stage: the application executes its
// training input on the profiling system with naming and counters enabled.
func (f *Framework) Profile(app workload.AppSpec) (profile.Profile, error) {
	cfg := sim.DefaultConfig("profiler", f.ProfileModules, sim.PolicyFixed)
	cfg.Profile = true
	cfg.Prefetch = f.Prefetch
	cfg.Thresholds = f.ObjectThresholds

	sys, err := sim.New(cfg, []sim.ProcSpec{{
		App:         app,
		Input:       workload.Train,
		NamingDepth: f.NamingDepth,
	}})
	if err != nil {
		return profile.Profile{}, err
	}
	res, err := sys.Run(sys.SuggestedWarmup(), f.ProfileWindow)
	if err != nil {
		return profile.Profile{}, fmt.Errorf("core: profiling %s: %w", app.Name, err)
	}
	pr := res.Cores[0].Profile
	if pr == nil {
		return profile.Profile{}, fmt.Errorf("core: profiling %s produced no profile", app.Name)
	}
	return *pr, nil
}

// ProfileMulti profiles the application over several simulation points
// (distinct stream offsets via seed salts) and merges them with equal
// weights — the paper's SimPoint-weighted profiling (Section V-A).
func (f *Framework) ProfileMulti(app workload.AppSpec, points int) (profile.Profile, error) {
	if points <= 0 {
		return profile.Profile{}, fmt.Errorf("core: need at least one simulation point")
	}
	var profiles []profile.Profile
	var weights []float64
	for i := 0; i < points; i++ {
		spec := app
		spec.Seed = app.Seed + uint64(i)*0x1009
		pr, err := f.Profile(spec)
		if err != nil {
			return profile.Profile{}, err
		}
		profiles = append(profiles, pr)
		weights = append(weights, 1)
	}
	return profile.Merge(profiles, weights)
}

// Instrumentation is what the pipeline "compiles into the binary": the
// object classification plus the application-level class.
type Instrumentation struct {
	App      workload.AppSpec
	Profile  profile.Profile
	Classes  heap.ClassMap
	AppClass classify.Class
}

// Instrument runs the full offline pipeline for one application.
func (f *Framework) Instrument(app workload.AppSpec) (Instrumentation, error) {
	pr, err := f.Profile(app)
	if err != nil {
		return Instrumentation{}, err
	}
	return f.InstrumentFromProfile(app, pr), nil
}

// InstrumentFromProfile derives instrumentation from an existing profile
// (for example one loaded from disk, or re-thresholded for an ablation).
func (f *Framework) InstrumentFromProfile(app workload.AppSpec, pr profile.Profile) Instrumentation {
	// Re-classify under the framework's thresholds in case they differ
	// from the ones stored in the profile.
	cm := make(heap.ClassMap, len(pr.Objects))
	for _, o := range pr.HeapObjects() {
		cm[o.Key] = f.ObjectThresholds.Classify(o.MPKI, o.StallPerMiss)
	}
	m := pr.AppMetrics()
	return Instrumentation{
		App:      app,
		Profile:  pr,
		Classes:  cm,
		AppClass: f.AppThresholds.Classify(m.MPKI, m.StallPerMiss),
	}
}

// TieringClassMap builds a write-aware classification for two-tier
// DRAM+NVM systems (an extension beyond the paper, following the data-
// tiering related work of Section VII): objects that are latency-sensitive
// OR write-heavy (write ratio above maxWriteRatio) map to the DRAM tier
// (class L); read-dominated objects map to the NVM tier along with the
// cold ones (class N), because NVM reads are tolerable but writes are slow
// and wear the cells.
func (f *Framework) TieringClassMap(pr profile.Profile, maxWriteRatio float64) heap.ClassMap {
	cm := make(heap.ClassMap)
	for _, o := range pr.HeapObjects() {
		base := f.ObjectThresholds.Classify(o.MPKI, o.StallPerMiss)
		switch {
		case o.WriteRatio > maxWriteRatio || base == classify.LatencySensitive:
			cm[o.Key] = classify.LatencySensitive
		default:
			cm[o.Key] = classify.NonIntensive
		}
	}
	return cm
}

// Proc builds the simulation process spec for this application under the
// given policy: MOCA runs get the ClassMap, every policy gets the
// app-level class (only Heter-App uses it).
func (ins Instrumentation) Proc(policy sim.PolicyKind, input workload.Input) sim.ProcSpec {
	p := sim.ProcSpec{
		App:      ins.App,
		Input:    input,
		AppClass: ins.AppClass,
	}
	if policy == sim.PolicyMOCA {
		p.Classes = ins.Classes
	}
	return p
}
