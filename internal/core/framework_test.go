package core

import (
	"testing"

	"moca/internal/classify"
	"moca/internal/heap"
	"moca/internal/sim"
	"moca/internal/workload"
)

func fastFramework() *Framework {
	f := NewFramework()
	f.ProfileWindow = 120_000
	return f
}

func TestProfilePipeline(t *testing.T) {
	f := fastFramework()
	pr, err := f.Profile(workload.MCF())
	if err != nil {
		t.Fatal(err)
	}
	if pr.App != "mcf" {
		t.Errorf("profile app = %q", pr.App)
	}
	objs := pr.HeapObjects()
	if len(objs) < 4 {
		t.Fatalf("mcf profile has %d heap objects", len(objs))
	}
	// mcf's chase objects must classify latency-sensitive.
	var sawL bool
	for _, o := range objs {
		if o.Label == "nodes" || o.Label == "arcs" {
			if o.Class != classify.LatencySensitive {
				t.Errorf("%s classified %v, want L (MPKI %.1f, stall %.1f)",
					o.Label, o.Class, o.MPKI, o.StallPerMiss)
			}
			sawL = true
		}
	}
	if !sawL {
		t.Error("mcf hot objects not found")
	}
}

func TestInstrumentation(t *testing.T) {
	f := fastFramework()
	ins, err := f.Instrument(workload.LBM())
	if err != nil {
		t.Fatal(err)
	}
	if len(ins.Classes) == 0 {
		t.Fatal("empty class map")
	}
	if ins.AppClass != classify.BandwidthSensitive {
		t.Errorf("lbm app class = %v, want B (Table III)", ins.AppClass)
	}

	// MOCA procs carry the class map; others don't.
	moca := ins.Proc(sim.PolicyMOCA, workload.Ref)
	if moca.Classes == nil {
		t.Error("MOCA proc without classes")
	}
	app := ins.Proc(sim.PolicyAppLevel, workload.Ref)
	if app.Classes != nil {
		t.Error("Heter-App proc got a class map")
	}
	if app.AppClass != classify.BandwidthSensitive {
		t.Error("app class not propagated")
	}
}

func TestClassificationTransfersAcrossInputs(t *testing.T) {
	// Profile on train, run on ref: object keys must match so the
	// ClassMap routes ref-input allocations.
	f := fastFramework()
	ins, err := f.Instrument(workload.Disparity())
	if err != nil {
		t.Fatal(err)
	}
	refAlloc := heap.New(heap.Config{NamingDepth: f.NamingDepth, Classes: ins.Classes})
	app, err := workload.Instantiate(workload.Disparity().ForInput(workload.Ref), refAlloc, 0)
	if err != nil {
		t.Fatal(err)
	}
	o, ok := app.Object("disparity_map")
	if !ok {
		t.Fatal("disparity_map missing")
	}
	if _, found := ins.Classes[o.Key]; !found {
		t.Error("train-input classification does not cover the ref-input object (naming unstable)")
	}
	if c, _ := heap.PartitionClassOf(o.Base); c != classify.LatencySensitive {
		t.Errorf("disparity_map landed in %v partition, want L", c)
	}
}

func TestInstrumentFromProfileRethresholds(t *testing.T) {
	f := fastFramework()
	pr, err := f.Profile(workload.Mser())
	if err != nil {
		t.Fatal(err)
	}
	// Absurdly high Thr_Lat: everything becomes non-intensive.
	strict := NewFramework()
	strict.ObjectThresholds = classify.Thresholds{LatMPKI: 1e9, BWStallCycles: 20}
	ins := strict.InstrumentFromProfile(workload.Mser(), pr)
	for key, c := range ins.Classes {
		if c != classify.NonIntensive {
			t.Errorf("object %v class %v under infinite threshold", key, c)
		}
	}
}

func TestProfileMulti(t *testing.T) {
	f := fastFramework()
	f.ProfileWindow = 60_000
	pr, err := f.ProfileMulti(workload.GCC(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.HeapObjects()) == 0 {
		t.Error("merged profile empty")
	}
	if _, err := f.ProfileMulti(workload.GCC(), 0); err == nil {
		t.Error("zero points accepted")
	}
}

func TestGCCCaseStudy(t *testing.T) {
	// Section VI-A: gcc is non-intensive at the application level, yet
	// owns one object above the MOCA latency threshold.
	f := fastFramework()
	ins, err := f.Instrument(workload.GCC())
	if err != nil {
		t.Fatal(err)
	}
	if ins.AppClass != classify.NonIntensive {
		m := ins.Profile.AppMetrics()
		t.Errorf("gcc app class = %v (MPKI %.2f, stall %.1f), want N", ins.AppClass, m.MPKI, m.StallPerMiss)
	}
	symtab := findByLabel(t, ins, "symtab")
	if symtab.Class != classify.LatencySensitive {
		t.Errorf("gcc symtab class = %v (MPKI %.2f, stall %.1f), want L",
			symtab.Class, symtab.MPKI, symtab.StallPerMiss)
	}
}

func findByLabel(t *testing.T, ins Instrumentation, label string) *struct {
	Class        classify.Class
	MPKI         float64
	StallPerMiss float64
} {
	t.Helper()
	for _, o := range ins.Profile.HeapObjects() {
		if o.Label == label {
			return &struct {
				Class        classify.Class
				MPKI         float64
				StallPerMiss float64
			}{o.Class, o.MPKI, o.StallPerMiss}
		}
	}
	t.Fatalf("label %q not in profile", label)
	return nil
}

func TestTieringClassMap(t *testing.T) {
	f := fastFramework()
	// Short windows leave src_grid's stall metric noisy; use a window
	// long enough for the steady-state signal.
	f.ProfileWindow = 250_000
	pr, err := f.Profile(workload.LBM())
	if err != nil {
		t.Fatal(err)
	}
	cm := f.TieringClassMap(pr, 0.125)
	if len(cm) == 0 {
		t.Fatal("empty tiering map")
	}
	// Only two tiers may appear: L (DRAM) or N (NVM).
	for key, c := range cm {
		if c != classify.LatencySensitive && c != classify.NonIntensive {
			t.Errorf("object %v tiered %v; want L or N only", key, c)
		}
	}
	// lbm's write-heavy dst_grid must land in the DRAM tier, and the
	// read-dominated src_grid in the NVM tier.
	var dstKey, srcKey heap.NameKey
	for _, o := range pr.HeapObjects() {
		switch o.Label {
		case "dst_grid":
			dstKey = o.Key
		case "src_grid":
			srcKey = o.Key
		}
	}
	if cm[dstKey] != classify.LatencySensitive {
		t.Errorf("write-heavy dst_grid tiered %v, want DRAM (L)", cm[dstKey])
	}
	if cm[srcKey] != classify.NonIntensive {
		t.Errorf("read-stream src_grid tiered %v, want NVM (N)", cm[srcKey])
	}
}
