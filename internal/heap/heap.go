// Package heap simulates the dynamic memory allocator MOCA instruments:
// it names every heap object by the return address of its allocation call
// plus up to five levels of calling context (paper Fig. 3, Sections III-A
// and V-A), and it partitions the heap virtual address space by object
// type so the OS can recognize an object's class from its virtual page
// number alone (Fig. 6, Section III-C).
//
// Go's managed runtime hides native allocation, so the workload framework
// calls this allocator explicitly with synthetic call stacks — the
// substitution DESIGN.md documents for the paper's preloaded malloc shim
// and __builtin_return_address.
package heap

import (
	"fmt"

	"moca/internal/classify"
)

// Site is a synthetic return address identifying one allocation call site.
type Site uint64

// NameKey is the stable identity of a memory object: a hash of the
// allocation site and its calling context. It is reproducible across runs,
// which is what lets a profile from a training run drive allocation in a
// reference run.
type NameKey uint64

// NameID is a dense per-allocator index for a NameKey, used for O(1)
// statistics attribution during simulation.
type NameID uint32

// Reserved pseudo-object names for the non-heap segments (Section VI-D).
const (
	ObjStack   NameID = 0
	ObjCode    NameID = 1
	ObjGlobals NameID = 2
	// FirstHeapName is the first NameID assigned to a real heap object.
	FirstHeapName NameID = 3
)

// DefaultNamingDepth is the paper's call-stack depth for naming: "We
// consider five levels of return addresses in our callstack" (Section V-A).
const DefaultNamingDepth = 5

// Segment classifies a virtual address range.
type Segment int

const (
	SegCode Segment = iota
	SegData
	SegHeap
	SegStack
)

func (s Segment) String() string {
	switch s {
	case SegCode:
		return "code"
	case SegData:
		return "data"
	case SegHeap:
		return "heap"
	case SegStack:
		return "stack"
	default:
		return fmt.Sprintf("Segment(%d)", int(s))
	}
}

// Virtual address space layout. The heap is split into one partition per
// object type plus a default partition used when no classification is
// installed (profiling and non-MOCA runs).
const (
	CodeBase   uint64 = 0x0000_0040_0000
	CodeLimit  uint64 = 0x0000_0100_0000
	DataBase   uint64 = 0x0000_1000_0000
	DataLimit  uint64 = 0x0000_2000_0000
	heapStride uint64 = 0x1000_0000_0000

	HeapDefaultBase uint64 = 1 * heapStride // unclassified objects
	HeapLatBase     uint64 = 2 * heapStride // latency-sensitive partition
	HeapBWBase      uint64 = 3 * heapStride // bandwidth-sensitive partition
	HeapPowBase     uint64 = 4 * heapStride // non-intensive partition
	heapEnd         uint64 = 5 * heapStride

	StackBase  uint64 = 0x7FFF_0000_0000
	StackLimit uint64 = 0x7FFF_4000_0000
)

// SegmentOf classifies a virtual address into its segment.
func SegmentOf(vaddr uint64) Segment {
	switch {
	case vaddr >= StackBase && vaddr < StackLimit:
		return SegStack
	case vaddr >= HeapDefaultBase && vaddr < heapEnd:
		return SegHeap
	case vaddr >= DataBase && vaddr < DataLimit:
		return SegData
	default:
		return SegCode
	}
}

// PartitionClassOf returns the object class encoded by a heap virtual
// address's partition, and ok=false for the default partition or non-heap
// addresses. This is the OS-visible typing mechanism of Fig. 6.
func PartitionClassOf(vaddr uint64) (classify.Class, bool) {
	switch {
	case vaddr >= HeapLatBase && vaddr < HeapLatBase+heapStride:
		return classify.LatencySensitive, true
	case vaddr >= HeapBWBase && vaddr < HeapBWBase+heapStride:
		return classify.BandwidthSensitive, true
	case vaddr >= HeapPowBase && vaddr < HeapPowBase+heapStride:
		return classify.NonIntensive, true
	default:
		return 0, false
	}
}

// ClassMap carries a profiling run's classification into an allocation run
// — the paper's "instrument the classification into the binary".
type ClassMap map[NameKey]classify.Class

// Config configures an Allocator.
type Config struct {
	// NamingDepth is how many call-stack levels participate in object
	// names (the paper uses 5; 1 reduces naming to the return address
	// only — the naming-depth ablation).
	NamingDepth int
	// Classes, when non-nil, routes each allocation to its class
	// partition; nil sends every object to the default partition.
	Classes ClassMap
}

// NameInfo describes one named object (one LUT row in Fig. 3).
type NameInfo struct {
	ID       NameID
	Key      NameKey
	Site     Site
	Context  []Site // calling context, innermost first
	Label    string // optional human-readable tag from the workload
	Allocs   uint64
	Frees    uint64
	MaxBytes uint64 // peak live bytes
	CurBytes uint64
}

// Object is one live allocation instance.
type Object struct {
	Name NameID
	Key  NameKey
	Base uint64
	Size uint64
	// Class is the partition the object was placed in (NonIntensive et
	// al. for classified objects; reported even for the default
	// partition, where it is meaningless for placement).
	Class   classify.Class
	typed   bool // true when placed in a class partition
	freed   bool
	binSize uint64 // rounded allocation size
}

// allocAlign keeps objects line-aligned so two objects never share a cache
// line (matching real malloc behavior for the sizes profiled here).
const allocAlign = 64

type partition struct {
	base  uint64
	limit uint64
	brk   uint64
	free  map[uint64][]uint64 // binSize -> freed bases (LIFO)
}

// Allocator is the simulated heap for one process.
type Allocator struct {
	cfg        Config
	names      []NameInfo
	byKey      map[NameKey]NameID
	partitions map[int]*partition // partition index -> state
	liveBytes  uint64
}

// Partition indexes.
const (
	partDefault = iota
	partLat
	partBW
	partPow
)

// New builds an empty heap. The three pseudo-objects (stack, code,
// globals) are pre-registered as names 0..2.
func New(cfg Config) *Allocator {
	if cfg.NamingDepth <= 0 {
		cfg.NamingDepth = DefaultNamingDepth
	}
	a := &Allocator{
		cfg:   cfg,
		byKey: make(map[NameKey]NameID),
		partitions: map[int]*partition{
			partDefault: newPartition(HeapDefaultBase),
			partLat:     newPartition(HeapLatBase),
			partBW:      newPartition(HeapBWBase),
			partPow:     newPartition(HeapPowBase),
		},
	}
	for _, pseudo := range []struct {
		id    NameID
		label string
	}{{ObjStack, "stack"}, {ObjCode, "code"}, {ObjGlobals, "globals"}} {
		key := NameKey(0xF000_0000_0000_0000 | uint64(pseudo.id))
		a.names = append(a.names, NameInfo{ID: pseudo.id, Key: key, Label: pseudo.label})
		a.byKey[key] = pseudo.id
	}
	return a
}

func newPartition(base uint64) *partition {
	return &partition{base: base, limit: base + heapStride, brk: base, free: make(map[uint64][]uint64)}
}

// KeyOf computes the stable object name for an allocation site and calling
// context, truncated to the configured naming depth (FNV-1a).
func (a *Allocator) KeyOf(site Site, context []Site) NameKey {
	const (
		offset64 = 0xcbf29ce484222325
		prime64  = 0x100000001b3
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime64
		}
	}
	mix(uint64(site))
	depth := a.cfg.NamingDepth - 1 // the site itself is level one
	for i := 0; i < len(context) && i < depth; i++ {
		mix(uint64(context[i]))
	}
	return NameKey(h)
}

// Alloc performs a named allocation: size bytes, instantiated at site with
// the given calling context (innermost caller first), optionally labeled.
// Same (site, context) pairs collapse to the same name across calls.
func (a *Allocator) Alloc(size uint64, site Site, context []Site, label string) (*Object, error) {
	if size == 0 {
		return nil, fmt.Errorf("heap: zero-size allocation at site %#x", uint64(site))
	}
	key := a.KeyOf(site, context)
	id, ok := a.byKey[key]
	if !ok {
		id = NameID(len(a.names))
		ctx := make([]Site, len(context))
		copy(ctx, context)
		a.names = append(a.names, NameInfo{ID: id, Key: key, Site: site, Context: ctx, Label: label})
		a.byKey[key] = id
	}
	info := &a.names[id]
	if info.Label == "" && label != "" {
		info.Label = label
	}

	class, typed := classify.NonIntensive, false
	part := partDefault
	if a.cfg.Classes != nil {
		if c, found := a.cfg.Classes[key]; found {
			class, typed = c, true
		} else {
			// Unprofiled objects default to the power partition, the
			// conservative choice the paper applies to non-heap data.
			class, typed = classify.NonIntensive, true
		}
		switch class {
		case classify.LatencySensitive:
			part = partLat
		case classify.BandwidthSensitive:
			part = partBW
		default:
			part = partPow
		}
	}

	binSize := (size + allocAlign - 1) &^ (allocAlign - 1)
	p := a.partitions[part]
	base, err := p.alloc(binSize)
	if err != nil {
		return nil, err
	}

	info.Allocs++
	info.CurBytes += size
	if info.CurBytes > info.MaxBytes {
		info.MaxBytes = info.CurBytes
	}
	a.liveBytes += size

	return &Object{
		Name: id, Key: key, Base: base, Size: size,
		Class: class, typed: typed, binSize: binSize,
	}, nil
}

func (p *partition) alloc(binSize uint64) (uint64, error) {
	if lst := p.free[binSize]; len(lst) > 0 {
		base := lst[len(lst)-1]
		p.free[binSize] = lst[:len(lst)-1]
		return base, nil
	}
	if p.brk+binSize > p.limit {
		return 0, fmt.Errorf("heap: partition at %#x exhausted", p.base)
	}
	base := p.brk
	p.brk += binSize
	return base, nil
}

// Free releases an object's virtual range for reuse by same-sized
// allocations. Double frees are reported as errors.
func (a *Allocator) Free(o *Object) error {
	if o == nil {
		return fmt.Errorf("heap: free of nil object")
	}
	if o.freed {
		return fmt.Errorf("heap: double free of object %d at %#x", o.Name, o.Base)
	}
	o.freed = true
	part := partDefault
	if o.typed {
		switch o.Class {
		case classify.LatencySensitive:
			part = partLat
		case classify.BandwidthSensitive:
			part = partBW
		default:
			part = partPow
		}
	}
	p := a.partitions[part]
	p.free[o.binSize] = append(p.free[o.binSize], o.Base)
	info := &a.names[o.Name]
	info.Frees++
	info.CurBytes -= o.Size
	a.liveBytes -= o.Size
	return nil
}

// Names returns a snapshot of all registered object names (the LUT).
func (a *Allocator) Names() []NameInfo {
	out := make([]NameInfo, len(a.names))
	copy(out, a.names)
	return out
}

// Name returns one name's info.
func (a *Allocator) Name(id NameID) (NameInfo, bool) {
	if int(id) >= len(a.names) {
		return NameInfo{}, false
	}
	return a.names[id], true
}

// NameCount returns the number of registered names, pseudo-objects
// included.
func (a *Allocator) NameCount() int { return len(a.names) }

// LiveBytes returns currently allocated bytes across all partitions.
func (a *Allocator) LiveBytes() uint64 { return a.liveBytes }
