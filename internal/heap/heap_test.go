package heap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"moca/internal/classify"
)

func TestSegmentOf(t *testing.T) {
	cases := []struct {
		vaddr uint64
		want  Segment
	}{
		{CodeBase, SegCode},
		{CodeBase + 100, SegCode},
		{DataBase, SegData},
		{HeapDefaultBase, SegHeap},
		{HeapLatBase + 12345, SegHeap},
		{HeapBWBase, SegHeap},
		{HeapPowBase + 1, SegHeap},
		{StackBase, SegStack},
		{StackBase + 4096, SegStack},
	}
	for _, c := range cases {
		if got := SegmentOf(c.vaddr); got != c.want {
			t.Errorf("SegmentOf(%#x) = %v, want %v", c.vaddr, got, c.want)
		}
	}
}

func TestPartitionClassOf(t *testing.T) {
	if c, ok := PartitionClassOf(HeapLatBase + 64); !ok || c != classify.LatencySensitive {
		t.Error("Lat partition not recognized")
	}
	if c, ok := PartitionClassOf(HeapBWBase); !ok || c != classify.BandwidthSensitive {
		t.Error("BW partition not recognized")
	}
	if c, ok := PartitionClassOf(HeapPowBase + 999); !ok || c != classify.NonIntensive {
		t.Error("Pow partition not recognized")
	}
	if _, ok := PartitionClassOf(HeapDefaultBase + 5); ok {
		t.Error("default partition reported a class")
	}
	if _, ok := PartitionClassOf(StackBase); ok {
		t.Error("stack reported a heap class")
	}
}

func TestPseudoObjectsRegistered(t *testing.T) {
	a := New(Config{})
	if a.NameCount() != 3 {
		t.Fatalf("fresh allocator has %d names, want 3 pseudo-objects", a.NameCount())
	}
	for id, label := range map[NameID]string{ObjStack: "stack", ObjCode: "code", ObjGlobals: "globals"} {
		info, ok := a.Name(id)
		if !ok || info.Label != label {
			t.Errorf("pseudo-object %d = %+v", id, info)
		}
	}
}

func TestSameSiteSameName(t *testing.T) {
	a := New(Config{})
	ctx := []Site{0x4004d6, 0x4004fc}
	o1, err := a.Alloc(128, 0x4004ee, ctx, "array")
	if err != nil {
		t.Fatal(err)
	}
	o2, err := a.Alloc(256, 0x4004ee, ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if o1.Name != o2.Name {
		t.Errorf("same site+context produced names %d and %d", o1.Name, o2.Name)
	}
	if o1.Base == o2.Base {
		t.Error("distinct live instances share an address")
	}
	info, _ := a.Name(o1.Name)
	if info.Allocs != 2 {
		t.Errorf("allocs = %d, want 2", info.Allocs)
	}
	if info.Label != "array" {
		t.Errorf("label = %q", info.Label)
	}
}

func TestDifferentContextDifferentName(t *testing.T) {
	// The Fig. 3 motivation: the same allocation function called from
	// different places must produce distinct names.
	a := New(Config{})
	o1, _ := a.Alloc(64, 0x4003b8, []Site{0x4004ee}, "")
	o2, _ := a.Alloc(64, 0x4003b8, []Site{0x4004d6}, "")
	if o1.Name == o2.Name {
		t.Error("different calling contexts share a name")
	}
}

func TestNamingDepthTruncation(t *testing.T) {
	deep := []Site{1, 2, 3, 4, 5, 6, 7}
	a5 := New(Config{NamingDepth: 5})
	a1 := New(Config{NamingDepth: 1})

	// Depth 5: site + 4 context levels. Differences at level 5+ of the
	// context are invisible.
	k1 := a5.KeyOf(0x100, deep)
	alt := append([]Site{1, 2, 3, 4}, 99, 99, 99)
	k2 := a5.KeyOf(0x100, alt)
	if k1 != k2 {
		t.Error("depth-5 naming sees beyond 4 context levels")
	}
	k3 := a5.KeyOf(0x100, []Site{1, 2, 3, 99})
	if k1 == k3 {
		t.Error("depth-5 naming blind within its depth")
	}

	// Depth 1: return address only.
	if a1.KeyOf(0x100, deep) != a1.KeyOf(0x100, nil) {
		t.Error("depth-1 naming uses context")
	}
	if a1.KeyOf(0x100, nil) == a1.KeyOf(0x200, nil) {
		t.Error("depth-1 naming ignores the site")
	}
}

func TestDefaultPartitionWithoutClasses(t *testing.T) {
	a := New(Config{})
	o, err := a.Alloc(4096, 1, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if o.Base < HeapDefaultBase || o.Base >= HeapDefaultBase+heapStride {
		t.Errorf("unclassified object at %#x, want default partition", o.Base)
	}
	if _, ok := PartitionClassOf(o.Base); ok {
		t.Error("default partition address carries a class")
	}
}

func TestClassRoutingToPartitions(t *testing.T) {
	probe := New(Config{NamingDepth: 5})
	keyL := probe.KeyOf(101, nil)
	keyB := probe.KeyOf(102, nil)
	keyN := probe.KeyOf(103, nil)
	a := New(Config{Classes: ClassMap{
		keyL: classify.LatencySensitive,
		keyB: classify.BandwidthSensitive,
		keyN: classify.NonIntensive,
	}})
	oL, _ := a.Alloc(100, 101, nil, "")
	oB, _ := a.Alloc(100, 102, nil, "")
	oN, _ := a.Alloc(100, 103, nil, "")
	oU, _ := a.Alloc(100, 999, nil, "") // unprofiled

	if c, ok := PartitionClassOf(oL.Base); !ok || c != classify.LatencySensitive {
		t.Errorf("L object at %#x", oL.Base)
	}
	if c, ok := PartitionClassOf(oB.Base); !ok || c != classify.BandwidthSensitive {
		t.Errorf("B object at %#x", oB.Base)
	}
	if c, ok := PartitionClassOf(oN.Base); !ok || c != classify.NonIntensive {
		t.Errorf("N object at %#x", oN.Base)
	}
	if c, ok := PartitionClassOf(oU.Base); !ok || c != classify.NonIntensive {
		t.Errorf("unprofiled object at %#x, want Pow partition", oU.Base)
	}
}

func TestAllocErrors(t *testing.T) {
	a := New(Config{})
	if _, err := a.Alloc(0, 1, nil, ""); err == nil {
		t.Error("zero-size allocation accepted")
	}
}

func TestFreeAndReuse(t *testing.T) {
	a := New(Config{})
	o1, _ := a.Alloc(128, 1, nil, "")
	base := o1.Base
	if err := a.Free(o1); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(o1); err == nil {
		t.Error("double free accepted")
	}
	if err := a.Free(nil); err == nil {
		t.Error("nil free accepted")
	}
	o2, _ := a.Alloc(128, 1, nil, "")
	if o2.Base != base {
		t.Errorf("same-size realloc at %#x, want recycled %#x", o2.Base, base)
	}
	if a.LiveBytes() != 128 {
		t.Errorf("live bytes = %d, want 128", a.LiveBytes())
	}
}

func TestLineAlignment(t *testing.T) {
	a := New(Config{})
	o1, _ := a.Alloc(1, 1, nil, "")
	o2, _ := a.Alloc(1, 2, nil, "")
	if o1.Base%allocAlign != 0 || o2.Base%allocAlign != 0 {
		t.Error("allocations not line-aligned")
	}
	if o2.Base-o1.Base < allocAlign {
		t.Error("objects share a cache line")
	}
}

func TestMaxBytesTracksPeak(t *testing.T) {
	a := New(Config{})
	o1, _ := a.Alloc(100, 1, nil, "")
	o2, _ := a.Alloc(100, 1, nil, "")
	a.Free(o1)
	info, _ := a.Name(o2.Name)
	if info.MaxBytes != 200 || info.CurBytes != 100 {
		t.Errorf("max=%d cur=%d, want 200/100", info.MaxBytes, info.CurBytes)
	}
}

// Property: live objects never overlap, regardless of alloc/free pattern.
func TestPropertyNoOverlap(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		a := New(Config{})
		rng := rand.New(rand.NewSource(seed))
		type span struct{ lo, hi uint64 }
		live := map[*Object]span{}
		ops := int(n)%150 + 20
		for i := 0; i < ops; i++ {
			if rng.Intn(3) > 0 || len(live) == 0 {
				size := uint64(rng.Intn(5000) + 1)
				site := Site(rng.Intn(10))
				o, err := a.Alloc(size, site, []Site{Site(rng.Intn(3))}, "")
				if err != nil {
					return false
				}
				s := span{o.Base, o.Base + size}
				for _, other := range live {
					if s.lo < other.hi && other.lo < s.hi {
						return false
					}
				}
				live[o] = s
			} else {
				for o := range live {
					if a.Free(o) != nil {
						return false
					}
					delete(live, o)
					break
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: naming is deterministic and depth-stable — two allocators with
// the same config produce identical keys.
func TestPropertyNamingDeterministic(t *testing.T) {
	f := func(site uint64, ctx []uint64, depthRaw uint8) bool {
		depth := int(depthRaw)%6 + 1
		a1 := New(Config{NamingDepth: depth})
		a2 := New(Config{NamingDepth: depth})
		sites := make([]Site, len(ctx))
		for i, c := range ctx {
			sites[i] = Site(c)
		}
		return a1.KeyOf(Site(site), sites) == a2.KeyOf(Site(site), sites)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNameLookupOutOfRange(t *testing.T) {
	a := New(Config{})
	if _, ok := a.Name(NameID(999)); ok {
		t.Error("out-of-range name lookup succeeded")
	}
}

func TestPartitionExhaustion(t *testing.T) {
	// The virtual partitions are enormous; exercise the error path with
	// an allocation that cannot fit.
	a := New(Config{})
	if _, err := a.Alloc(1<<45, 1, nil, "huge"); err == nil {
		t.Error("absurd allocation accepted")
	}
}

func TestNamesSnapshotIsolation(t *testing.T) {
	a := New(Config{})
	o, _ := a.Alloc(64, 1, nil, "x")
	snap := a.Names()
	a.Free(o)
	if snap[int(o.Name)].Frees != 0 {
		t.Error("snapshot mutated by later Free")
	}
}

func TestSegmentStrings(t *testing.T) {
	for s, want := range map[Segment]string{
		SegCode: "code", SegData: "data", SegHeap: "heap", SegStack: "stack",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", int(s), s.String())
		}
	}
	if Segment(9).String() != "Segment(9)" {
		t.Error("unknown segment string")
	}
}
