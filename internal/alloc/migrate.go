package alloc

import (
	"fmt"
	"sort"

	"moca/internal/vm"
)

// Migrator implements the dynamic hot-page migration baseline the paper
// contrasts MOCA against (Section IV-E; Tikir & Hollingsworth; Meswani et
// al.'s HMA): pages start in slow memory, per-page access counters
// accumulate during an epoch, and at each epoch boundary the hottest slow
// pages are promoted into the fast modules — swapping with the coldest
// fast pages when the fast modules are full. Unlike MOCA, this needs
// runtime monitoring, epoch lag, copy traffic, and TLB shootdowns; the
// simulator charges all of them.
type Migrator struct {
	os  *OS
	cfg MigratorConfig

	counts [][]uint32 // [module][frame] accesses this epoch
	owners [][]owner  // [module][frame] reverse map
	stats  MigStats
}

type owner struct {
	proc  int
	vpage uint64
	valid bool
}

// MigratorConfig tunes the migration policy.
type MigratorConfig struct {
	// FastModules are promotion targets in preference order (typically
	// RLDRAM then HBM).
	FastModules []int
	// HotThreshold is the per-epoch access count above which a slow page
	// is a promotion candidate (default 4 — page heat is flat for
	// streaming and pointer-chasing objects, so the policy must promote
	// aggressively to capture whole working sets, as HMA does).
	HotThreshold uint32
	// MaxMigrationsPerEpoch bounds copy traffic (default 16 pages,
	// paced through the epoch by the simulator's copy engine).
	MaxMigrationsPerEpoch int
}

func (c *MigratorConfig) setDefaults() {
	if c.HotThreshold == 0 {
		c.HotThreshold = 4
	}
	if c.MaxMigrationsPerEpoch == 0 {
		c.MaxMigrationsPerEpoch = 16
	}
}

// MigStats counts migration activity.
type MigStats struct {
	Epochs     uint64
	Promotions uint64
	Demotions  uint64 // swap-outs of cold fast pages
	Shootdowns uint64 // TLB invalidations
	CopiedKB   uint64
}

// Migration describes one page move for the caller to charge costs for
// (copy traffic on both channels, cache shootdown for the old frame).
type Migration struct {
	Proc     int
	VPage    uint64
	From, To vm.Frame
}

// NewMigrator attaches a migration engine to an OS. The OS must have been
// created with migration support (NewOS wires the reverse map either way).
func NewMigrator(o *OS, cfg MigratorConfig) (*Migrator, error) {
	cfg.setDefaults()
	if len(cfg.FastModules) == 0 {
		return nil, fmt.Errorf("alloc: migrator needs at least one fast module")
	}
	for _, id := range cfg.FastModules {
		if id < 0 || id >= len(o.modules) {
			return nil, fmt.Errorf("alloc: fast module %d out of range", id)
		}
	}
	m := &Migrator{os: o, cfg: cfg}
	for _, mod := range o.modules {
		m.counts = append(m.counts, make([]uint32, mod.Frames()))
		m.owners = append(m.owners, make([]owner, mod.Frames()))
	}
	o.migrator = m
	return m, nil
}

// Stats returns a snapshot of migration activity.
func (m *Migrator) Stats() MigStats { return m.stats }

// RecordAccess counts one line access against its physical page; the
// memory system calls this for every request when migration is active.
func (m *Migrator) RecordAccess(paddr uint64) {
	module := vm.ModuleOf(paddr)
	if module < 0 || module >= len(m.counts) {
		return
	}
	frame := vm.ModuleOffset(paddr) >> vm.PageShift
	if frame < uint64(len(m.counts[module])) {
		m.counts[module][frame]++
	}
}

// noteMapping records frame ownership for the reverse map.
func (m *Migrator) noteMapping(proc int, vpage uint64, f vm.Frame) {
	m.owners[f.Module][f.Number] = owner{proc: proc, vpage: vpage, valid: true}
}

func (m *Migrator) isFast(module int) bool {
	for _, id := range m.cfg.FastModules {
		if id == module {
			return true
		}
	}
	return false
}

// Epoch processes one epoch boundary: promote the hottest slow pages into
// fast modules (swapping with the coldest fast pages when full), reset the
// counters, and return the performed migrations so the simulator can
// charge copy traffic and cache shootdowns.
func (m *Migrator) Epoch() []Migration {
	m.stats.Epochs++

	type page struct {
		module int
		frame  uint64
		count  uint32
	}
	var hot []page  // slow pages above threshold
	var cold []page // fast pages, for demotion candidates
	for module := range m.counts {
		fast := m.isFast(module)
		for frame, n := range m.counts[module] {
			if !m.owners[module][frame].valid {
				continue
			}
			p := page{module: module, frame: uint64(frame), count: n}
			if fast {
				cold = append(cold, p)
			} else if n >= m.cfg.HotThreshold {
				hot = append(hot, p)
			}
		}
	}
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].count != hot[j].count {
			return hot[i].count > hot[j].count
		}
		if hot[i].module != hot[j].module {
			return hot[i].module < hot[j].module
		}
		return hot[i].frame < hot[j].frame
	})
	sort.Slice(cold, func(i, j int) bool {
		if cold[i].count != cold[j].count {
			return cold[i].count < cold[j].count
		}
		if cold[i].module != cold[j].module {
			return cold[i].module < cold[j].module
		}
		return cold[i].frame < cold[j].frame
	})

	var moves []Migration
	coldIdx := 0
	for _, h := range hot {
		if len(moves) >= m.cfg.MaxMigrationsPerEpoch {
			break
		}
		// Find a free frame in a fast module.
		target := vm.Frame{Module: -1}
		for _, id := range m.cfg.FastModules {
			if f, ok := m.os.modules[id].Alloc(); ok {
				target = vm.Frame{Module: id, Number: f}
				break
			}
		}
		if target.Module == -1 {
			// Fast memory full: swap with the coldest fast page, but
			// only if the hot page is strictly hotter.
			for coldIdx < len(cold) && !m.owners[cold[coldIdx].module][cold[coldIdx].frame].valid {
				coldIdx++
			}
			if coldIdx >= len(cold) || cold[coldIdx].count >= h.count {
				break
			}
			victim := cold[coldIdx]
			coldIdx++
			if demoted := m.demote(victim.module, victim.frame); demoted != nil {
				moves = append(moves, *demoted)
			} else {
				continue
			}
			f, ok := m.os.modules[victim.module].Alloc()
			if !ok {
				continue
			}
			target = vm.Frame{Module: victim.module, Number: f}
		}
		if mv := m.move(h.module, h.frame, target); mv != nil {
			moves = append(moves, *mv)
			m.stats.Promotions++
		} else {
			m.os.modules[target.Module].Release(target.Number)
		}
	}

	for module := range m.counts {
		clear(m.counts[module])
	}
	return moves
}

// demote moves a fast page to the first slow module with space.
func (m *Migrator) demote(module int, frame uint64) *Migration {
	for id := range m.os.modules {
		if m.isFast(id) {
			continue
		}
		if f, ok := m.os.modules[id].Alloc(); ok {
			mv := m.move(module, frame, vm.Frame{Module: id, Number: f})
			if mv != nil {
				m.stats.Demotions++
				return mv
			}
			m.os.modules[id].Release(f)
			return nil
		}
	}
	return nil
}

// move retargets a page's translation to the new frame and releases the
// old frame. Returns nil if the source frame has no owner (already moved).
func (m *Migrator) move(module int, frame uint64, to vm.Frame) *Migration {
	own := m.owners[module][frame]
	if !own.valid {
		return nil
	}
	p := m.os.procs[own.proc]
	from := p.table.Remap(own.vpage, to)
	if p.tlb.Invalidate(own.vpage) {
		m.stats.Shootdowns++
	}
	m.owners[module][frame] = owner{}
	m.owners[to.Module][to.Number] = owner{proc: own.proc, vpage: own.vpage, valid: true}
	m.os.modules[from.Module].Release(from.Number)
	m.stats.CopiedKB += vm.PageBytes / 1024
	m.os.stats.PagesByModule[to.Module]++
	return &Migration{Proc: own.proc, VPage: own.vpage, From: from, To: to}
}
