// Package alloc implements the page-placement layer: the OS fault handler
// that hands physical frames to virtual pages, and the three placement
// policies the paper compares —
//
//   - Fixed: every page from one pool (the homogeneous baselines);
//   - AppLevel ("Heter-App"): every page of an application goes to the
//     module preferred by the application's aggregate class, falling back
//     to the next-best module when full (Phadke & Narayanasamy, DATE 2011);
//   - MOCA: heap pages go to the module preferred by the *object's* class,
//     recognized from the virtual page's heap partition; non-heap pages go
//     to the low-power module (paper Sections III-C, IV-D, VI-D).
package alloc

import (
	"fmt"

	"moca/internal/classify"
	"moca/internal/heap"
	"moca/internal/mem"
	"moca/internal/obs"
	"moca/internal/vm"
)

// Request describes a faulting page to a placement policy.
type Request struct {
	Proc    int
	VPage   uint64
	Segment heap.Segment
	// ObjClass is the class encoded in the page's heap partition;
	// ObjClassKnown is false for the default partition and non-heap pages.
	ObjClass      classify.Class
	ObjClassKnown bool
	// AppClass is the process's application-level classification.
	AppClass classify.Class
}

// Policy orders the candidate modules for a faulting page, most preferred
// first. The OS walks the list until a module has a free frame.
type Policy interface {
	Name() string
	Preference(r Request) []int
}

// ModuleInfo identifies a module for chain construction.
type ModuleInfo struct {
	ID   int
	Kind mem.Kind
}

// DefaultChains returns the paper's per-class module-kind preference
// orders: latency-sensitive objects want RLDRAM, bandwidth-sensitive want
// HBM with LPDDR as "next best" (Section III-C), and everything else wants
// LPDDR first.
func DefaultChains() map[classify.Class][]mem.Kind {
	return map[classify.Class][]mem.Kind{
		classify.LatencySensitive:   {mem.RLDRAM, mem.HBM, mem.LPDDR2, mem.DDR3},
		classify.BandwidthSensitive: {mem.HBM, mem.LPDDR2, mem.RLDRAM, mem.DDR3},
		classify.NonIntensive:       {mem.LPDDR2, mem.HBM, mem.RLDRAM, mem.DDR3},
	}
}

// ExpandChain resolves a kind-preference order into concrete module IDs:
// all modules of the first kind (in ID order), then the second, and
// finally any modules of kinds not mentioned, so placement never fails
// while any memory remains.
func ExpandChain(modules []ModuleInfo, kinds []mem.Kind) []int {
	var out []int
	used := make(map[int]bool, len(modules))
	for _, k := range kinds {
		for _, m := range modules {
			if m.Kind == k && !used[m.ID] {
				out = append(out, m.ID)
				used[m.ID] = true
			}
		}
	}
	for _, m := range modules {
		if !used[m.ID] {
			out = append(out, m.ID)
			used[m.ID] = true
		}
	}
	return out
}

// Fixed places every page according to one fixed module order.
type Fixed struct {
	name  string
	order []int
}

// NewFixed builds a fixed-order policy (homogeneous systems).
func NewFixed(name string, order []int) *Fixed {
	return &Fixed{name: name, order: order}
}

// Name implements Policy.
func (p *Fixed) Name() string { return p.name }

// Preference implements Policy.
func (p *Fixed) Preference(Request) []int { return p.order }

// AppLevel is the Heter-App baseline: placement by the application's
// aggregate class, for every page of the process.
type AppLevel struct {
	chains map[classify.Class][]int
}

// NewAppLevel builds the Heter-App policy over the given modules.
func NewAppLevel(modules []ModuleInfo, chains map[classify.Class][]mem.Kind) *AppLevel {
	if chains == nil {
		chains = DefaultChains()
	}
	expanded := make(map[classify.Class][]int, len(chains))
	//moca:unordered builds a per-class map; each key is written independently
	for c, kinds := range chains {
		expanded[c] = ExpandChain(modules, kinds)
	}
	return &AppLevel{chains: expanded}
}

// Name implements Policy.
func (p *AppLevel) Name() string { return "heter-app" }

// Preference implements Policy.
func (p *AppLevel) Preference(r Request) []int { return p.chains[r.AppClass] }

// MOCA is the paper's object-level policy: heap pages follow their
// object's class (known from the heap partition), everything else goes to
// the low-power chain.
type MOCA struct {
	chains map[classify.Class][]int
}

// NewMOCA builds the MOCA policy over the given modules.
func NewMOCA(modules []ModuleInfo, chains map[classify.Class][]mem.Kind) *MOCA {
	if chains == nil {
		chains = DefaultChains()
	}
	expanded := make(map[classify.Class][]int, len(chains))
	//moca:unordered builds a per-class map; each key is written independently
	for c, kinds := range chains {
		expanded[c] = ExpandChain(modules, kinds)
	}
	return &MOCA{chains: expanded}
}

// Name implements Policy.
func (p *MOCA) Name() string { return "moca" }

// Preference implements Policy.
func (p *MOCA) Preference(r Request) []int {
	if r.Segment == heap.SegHeap && r.ObjClassKnown {
		return p.chains[r.ObjClass]
	}
	// Stack, code, globals, and unclassified heap: low-power module
	// (Section VI-D).
	return p.chains[classify.NonIntensive]
}

var (
	_ Policy = (*Fixed)(nil)
	_ Policy = (*AppLevel)(nil)
	_ Policy = (*MOCA)(nil)
)

// Stats counts OS placement activity.
type Stats struct {
	Faults        uint64
	FallbackPages uint64 // pages that missed their first-choice module
	OOMFailures   uint64
	PagesByModule map[int]uint64
}

// OS is the page-fault handler: it owns the frame pools, per-process page
// tables and TLBs, and consults the policy on every fault.
type OS struct {
	modules  []*vm.Module
	policy   Policy
	procs    map[int]*process
	stats    Stats
	migrator *Migrator // nil unless migration is active

	// gate, if set, is invoked at the top of every page fault. The
	// sharded simulator installs a barrier here that serializes faults —
	// the only mid-window touch of shared OS state — into a deterministic
	// (cycle, core) order (see sim/shard.go faultGate).
	gate func(proc int)

	// Observability; all nil (free) unless AttachObs was called.
	obsFaults    *obs.Counter
	obsFallbacks *obs.Counter
	obsOOM       *obs.Counter
	obsPlaced    *obs.Counter
	obsTrace     *obs.Trace
	obsNow       func(proc int) int64 // per-process simulation clock for trace timestamps
}

type process struct {
	table    *vm.PageTable
	tlb      *vm.TLB
	appClass classify.Class
}

// NewOS builds the OS over the module pools with the given policy.
func NewOS(modules []*vm.Module, policy Policy) (*OS, error) {
	if len(modules) == 0 {
		return nil, fmt.Errorf("alloc: no memory modules")
	}
	if policy == nil {
		return nil, fmt.Errorf("alloc: nil policy")
	}
	return &OS{
		modules: modules,
		policy:  policy,
		procs:   make(map[int]*process),
		stats:   Stats{PagesByModule: make(map[int]uint64)},
	}, nil
}

// AddProcess registers a process with its application-level class (used by
// the Heter-App policy). Re-registering panics: a simulator bug.
func (o *OS) AddProcess(proc int, appClass classify.Class) {
	if _, dup := o.procs[proc]; dup {
		panic(fmt.Sprintf("alloc: duplicate process %d", proc))
	}
	o.procs[proc] = &process{
		table:    vm.NewPageTable(),
		tlb:      vm.NewTLB(64),
		appClass: appClass,
	}
}

// SetFaultGate installs fn as the page-fault serialization hook; nil
// removes it. The hook runs before any shared allocation state is read.
func (o *OS) SetFaultGate(fn func(proc int)) { o.gate = fn }

// AttachObs registers the OS on the metrics registry ("alloc.*" counters)
// and the run-trace sink (page-placed and fallback-taken events, stamped
// with now(proc) — the faulting process's simulation clock; under sharded
// execution each process advances on its own shard queue). Nil arguments
// disable the corresponding instrumentation.
func (o *OS) AttachObs(r *obs.Registry, tr *obs.Trace, now func(proc int) int64) {
	if r == nil {
		o.obsFaults, o.obsFallbacks, o.obsOOM, o.obsPlaced = nil, nil, nil, nil
	} else {
		o.obsFaults = r.Counter("alloc.faults")
		o.obsFallbacks = r.Counter("alloc.fallback_pages")
		o.obsOOM = r.Counter("alloc.oom_failures")
		o.obsPlaced = r.Counter("alloc.pages_placed")
	}
	o.obsTrace = tr
	o.obsNow = now
}

func (o *OS) traceNow(proc int) int64 {
	if o.obsNow == nil {
		return 0
	}
	return o.obsNow(proc)
}

// Policy returns the active placement policy.
func (o *OS) Policy() Policy { return o.policy }

// Stats returns a snapshot of placement statistics.
func (o *OS) Stats() Stats {
	cp := o.stats
	cp.PagesByModule = make(map[int]uint64, len(o.stats.PagesByModule))
	//moca:unordered map-to-map copy; no order-sensitive effects
	for k, v := range o.stats.PagesByModule {
		cp.PagesByModule[k] = v
	}
	return cp
}

// PageTable exposes a process's page table (for placement censuses).
func (o *OS) PageTable(proc int) (*vm.PageTable, bool) {
	p, ok := o.procs[proc]
	if !ok {
		return nil, false
	}
	return p.table, true
}

// TLB exposes a process's TLB statistics.
func (o *OS) TLB(proc int) (*vm.TLB, bool) {
	p, ok := o.procs[proc]
	if !ok {
		return nil, false
	}
	return p.tlb, true
}

// Translate maps a virtual address for a process, allocating a physical
// frame on first touch per the policy. ok=false means every candidate
// module is full — physical memory exhausted.
func (o *OS) Translate(proc int, vaddr uint64, write bool) (paddr uint64, ok bool) {
	p, found := o.procs[proc]
	if !found {
		panic(fmt.Sprintf("alloc: translate for unknown process %d", proc))
	}
	vpage := vm.VPage(vaddr)
	offset := vaddr & (vm.PageBytes - 1)

	if f, hit := p.tlb.Lookup(vpage); hit {
		return vm.Compose(f.Module, f.Number, offset), true
	}
	if f, hit := p.table.Lookup(vpage); hit {
		p.tlb.Insert(vpage, f)
		return vm.Compose(f.Module, f.Number, offset), true
	}

	// Page fault: consult the policy and walk its preference chain. From
	// here on shared state is touched (frame pools, global stats, the
	// migration monitor), so sharded execution serializes through the
	// gate first.
	if o.gate != nil {
		o.gate(proc)
	}
	o.stats.Faults++
	if o.obsFaults != nil {
		o.obsFaults.Inc()
	}
	req := Request{
		Proc:     proc,
		VPage:    vpage,
		Segment:  heap.SegmentOf(vaddr),
		AppClass: p.appClass,
	}
	req.ObjClass, req.ObjClassKnown = heap.PartitionClassOf(vaddr)

	prefs := o.policy.Preference(req)
	for i := 0; i < len(prefs); {
		id := prefs[i]
		if id < 0 || id >= len(o.modules) {
			panic(fmt.Sprintf("alloc: policy %q returned invalid module %d", o.policy.Name(), id))
		}
		// Modules of one kind are interchangeable (the paper's two
		// LPDDR2 modules have separate controllers): balance across the
		// run of equally-preferred same-kind candidates by free space,
		// which stripes pages — and therefore bandwidth — over their
		// channels.
		groupEnd := i + 1
		for groupEnd < len(prefs) && o.modules[prefs[groupEnd]].Kind == o.modules[id].Kind {
			groupEnd++
		}
		best := -1
		var bestFree uint64
		for _, cand := range prefs[i:groupEnd] {
			if free := o.modules[cand].Free(); free > bestFree {
				best, bestFree = cand, free
			}
		}
		if best >= 0 {
			frame, got := o.modules[best].Alloc()
			if got {
				if i > 0 {
					o.stats.FallbackPages++
					if o.obsFallbacks != nil {
						o.obsFallbacks.Inc()
					}
					if o.obsTrace != nil {
						o.obsTrace.Emit(obs.Event{
							At: o.traceNow(proc), Kind: obs.FallbackTaken, Unit: "os",
							Core: proc, Addr: vpage, Aux: uint64(i),
						})
					}
				}
				f := vm.Frame{Module: best, Number: frame}
				p.table.Map(vpage, f)
				p.tlb.Insert(vpage, f)
				o.stats.PagesByModule[best]++
				if o.obsPlaced != nil {
					o.obsPlaced.Inc()
				}
				if o.obsTrace != nil {
					o.obsTrace.Emit(obs.Event{
						At: o.traceNow(proc), Kind: obs.PagePlaced, Unit: "os",
						Core: proc, Addr: vpage, Aux: uint64(best),
					})
				}
				if o.migrator != nil {
					o.migrator.noteMapping(proc, vpage, f)
				}
				return vm.Compose(best, frame, offset), true
			}
		}
		i = groupEnd
	}
	o.stats.OOMFailures++
	if o.obsOOM != nil {
		o.obsOOM.Inc()
	}
	return 0, false
}

// Translator adapts one process's view of the OS to the cpu.Translator
// interface.
type Translator struct {
	OS   *OS
	Proc int
}

// Translate implements cpu.Translator.
func (t Translator) Translate(vaddr uint64, write bool) (uint64, bool) {
	return t.OS.Translate(t.Proc, vaddr, write)
}
