package alloc

import (
	"testing"

	"moca/internal/classify"
	"moca/internal/heap"
	"moca/internal/mem"
	"moca/internal/vm"
)

// migrationFixture builds an OS with one tiny fast module (RLDRAM) and one
// slow module (LPDDR2), pages starting slow, plus a migrator.
func migrationFixture(t *testing.T, fastPages, slowPages uint64, mcfg MigratorConfig) (*OS, *Migrator) {
	t.Helper()
	fast, err := vm.NewModule(0, mem.RLDRAM, fastPages*vm.PageBytes)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := vm.NewModule(1, mem.LPDDR2, slowPages*vm.PageBytes)
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewOS([]*vm.Module{fast, slow}, NewFixed("migrate", []int{1, 0}))
	if err != nil {
		t.Fatal(err)
	}
	o.AddProcess(0, classify.NonIntensive)
	mcfg.FastModules = []int{0}
	mig, err := NewMigrator(o, mcfg)
	if err != nil {
		t.Fatal(err)
	}
	return o, mig
}

func touch(t *testing.T, o *OS, vaddr uint64, times int, mig *Migrator) uint64 {
	t.Helper()
	var paddr uint64
	for i := 0; i < times; i++ {
		p, ok := o.Translate(0, vaddr, false)
		if !ok {
			t.Fatalf("translate %#x failed", vaddr)
		}
		paddr = p
		mig.RecordAccess(p)
	}
	return paddr
}

func TestMigratorPromotesHotPage(t *testing.T) {
	o, mig := migrationFixture(t, 4, 16, MigratorConfig{HotThreshold: 10})

	hot := heap.HeapDefaultBase
	cold := heap.HeapDefaultBase + 64*vm.PageBytes
	p1 := touch(t, o, hot, 50, mig)
	touch(t, o, cold, 2, mig)
	if vm.ModuleOf(p1) != 1 {
		t.Fatalf("page started on module %d, want slow (1)", vm.ModuleOf(p1))
	}

	moves := mig.Epoch()
	if len(moves) != 1 {
		t.Fatalf("epoch produced %d moves, want 1 (only the hot page)", len(moves))
	}
	if moves[0].To.Module != 0 {
		t.Errorf("promoted to module %d, want fast (0)", moves[0].To.Module)
	}
	// Translation now lands in the fast module; the old frame is free.
	p2, _ := o.Translate(0, hot, false)
	if vm.ModuleOf(p2) != 0 {
		t.Errorf("post-migration translation on module %d, want 0", vm.ModuleOf(p2))
	}
	pc, _ := o.Translate(0, cold, false)
	if vm.ModuleOf(pc) != 1 {
		t.Errorf("cold page moved to module %d", vm.ModuleOf(pc))
	}
	st := mig.Stats()
	if st.Promotions != 1 || st.Epochs != 1 || st.CopiedKB != vm.PageBytes/1024 {
		t.Errorf("stats = %+v", st)
	}
}

func TestMigratorEpochResetsCounters(t *testing.T) {
	o, mig := migrationFixture(t, 4, 16, MigratorConfig{HotThreshold: 10})
	touch(t, o, heap.HeapDefaultBase, 50, mig)
	if n := len(mig.Epoch()); n != 1 {
		t.Fatalf("first epoch moves = %d", n)
	}
	// No further accesses: second epoch must move nothing.
	if n := len(mig.Epoch()); n != 0 {
		t.Errorf("second epoch moved %d pages with zero new accesses", n)
	}
}

func TestMigratorSwapsWhenFastFull(t *testing.T) {
	o, mig := migrationFixture(t, 2, 32, MigratorConfig{HotThreshold: 5, MaxMigrationsPerEpoch: 10})

	// Fill fast memory with two lukewarm pages.
	warm1 := touch(t, o, heap.HeapDefaultBase, 10, mig)
	warm2 := touch(t, o, heap.HeapDefaultBase+vm.PageBytes, 10, mig)
	_ = warm1
	_ = warm2
	mig.Epoch()
	if free := o.modules[0].Free(); free != 0 {
		t.Fatalf("fast module has %d free frames, want 0", free)
	}

	// A much hotter page arrives: it must swap with the coldest fast page.
	touch(t, o, heap.HeapDefaultBase+10*vm.PageBytes, 100, mig)
	// Keep one fast page warm so the other is the obvious victim.
	touch(t, o, heap.HeapDefaultBase, 50, mig)
	moves := mig.Epoch()
	var promoted, demoted int
	for _, mv := range moves {
		if mv.To.Module == 0 {
			promoted++
		} else {
			demoted++
		}
	}
	if promoted != 1 || demoted != 1 {
		t.Fatalf("moves = %+v, want one promotion and one demotion", moves)
	}
	p, _ := o.Translate(0, heap.HeapDefaultBase+10*vm.PageBytes, false)
	if vm.ModuleOf(p) != 0 {
		t.Error("hot page not in fast memory after swap")
	}
	if st := mig.Stats(); st.Demotions != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestMigratorColdPagesStay(t *testing.T) {
	o, mig := migrationFixture(t, 4, 16, MigratorConfig{HotThreshold: 100})
	touch(t, o, heap.HeapDefaultBase, 50, mig) // below threshold
	if n := len(mig.Epoch()); n != 0 {
		t.Errorf("cold page migrated (%d moves)", n)
	}
}

func TestMigratorBoundsMovesPerEpoch(t *testing.T) {
	o, mig := migrationFixture(t, 16, 64, MigratorConfig{HotThreshold: 5, MaxMigrationsPerEpoch: 3})
	for i := uint64(0); i < 10; i++ {
		touch(t, o, heap.HeapDefaultBase+i*vm.PageBytes, 20, mig)
	}
	if n := len(mig.Epoch()); n > 3 {
		t.Errorf("epoch performed %d moves, cap is 3", n)
	}
}

func TestMigratorTLBShootdown(t *testing.T) {
	o, mig := migrationFixture(t, 4, 16, MigratorConfig{HotThreshold: 5})
	touch(t, o, heap.HeapDefaultBase, 20, mig) // translation cached in TLB
	mig.Epoch()
	if st := mig.Stats(); st.Shootdowns != 1 {
		t.Errorf("shootdowns = %d, want 1", st.Shootdowns)
	}
	tlb, _ := o.TLB(0)
	misses := tlb.Misses()
	o.Translate(0, heap.HeapDefaultBase, false)
	if tlb.Misses() != misses+1 {
		t.Error("TLB entry survived the shootdown")
	}
}

func TestNewMigratorErrors(t *testing.T) {
	slow, _ := vm.NewModule(0, mem.LPDDR2, 16*vm.PageBytes)
	o, _ := NewOS([]*vm.Module{slow}, NewFixed("x", []int{0}))
	if _, err := NewMigrator(o, MigratorConfig{}); err == nil {
		t.Error("no fast modules accepted")
	}
	if _, err := NewMigrator(o, MigratorConfig{FastModules: []int{5}}); err == nil {
		t.Error("out-of-range fast module accepted")
	}
}

func TestMigratorDeterministicOrder(t *testing.T) {
	run := func() []Migration {
		o, mig := migrationFixture(t, 8, 32, MigratorConfig{HotThreshold: 5, MaxMigrationsPerEpoch: 4})
		for i := uint64(0); i < 6; i++ {
			touch(t, o, heap.HeapDefaultBase+i*vm.PageBytes, int(10+i), mig)
		}
		return mig.Epoch()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("move counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("move %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
