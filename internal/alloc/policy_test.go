package alloc

import (
	"testing"

	"moca/internal/classify"
	"moca/internal/heap"
	"moca/internal/mem"
	"moca/internal/vm"
)

// config1Modules mirrors the paper's config1: RLDRAM, HBM, two LPDDR2.
func config1Modules(t *testing.T, pagesEach uint64) []*vm.Module {
	t.Helper()
	specs := []mem.Kind{mem.RLDRAM, mem.HBM, mem.LPDDR2, mem.LPDDR2}
	var out []*vm.Module
	for i, k := range specs {
		m, err := vm.NewModule(i, k, pagesEach*vm.PageBytes)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, m)
	}
	return out
}

func infosOf(ms []*vm.Module) []ModuleInfo {
	var out []ModuleInfo
	for _, m := range ms {
		out = append(out, ModuleInfo{ID: m.ID, Kind: m.Kind})
	}
	return out
}

func TestExpandChain(t *testing.T) {
	infos := []ModuleInfo{
		{0, mem.RLDRAM}, {1, mem.HBM}, {2, mem.LPDDR2}, {3, mem.LPDDR2},
	}
	got := ExpandChain(infos, []mem.Kind{mem.HBM, mem.LPDDR2, mem.RLDRAM})
	want := []int{1, 2, 3, 0}
	if len(got) != len(want) {
		t.Fatalf("chain %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("chain %v, want %v", got, want)
		}
	}
	// Kinds not mentioned still appear at the end.
	got = ExpandChain(infos, []mem.Kind{mem.RLDRAM})
	if len(got) != 4 || got[0] != 0 {
		t.Errorf("safety-net expansion = %v", got)
	}
}

func TestMOCAPreference(t *testing.T) {
	infos := []ModuleInfo{{0, mem.RLDRAM}, {1, mem.HBM}, {2, mem.LPDDR2}, {3, mem.LPDDR2}}
	p := NewMOCA(infos, nil)
	latReq := Request{Segment: heap.SegHeap, ObjClass: classify.LatencySensitive, ObjClassKnown: true}
	if pref := p.Preference(latReq); pref[0] != 0 {
		t.Errorf("L object first choice = module %d, want RLDRAM (0)", pref[0])
	}
	bwReq := Request{Segment: heap.SegHeap, ObjClass: classify.BandwidthSensitive, ObjClassKnown: true}
	pref := p.Preference(bwReq)
	if pref[0] != 1 {
		t.Errorf("B object first choice = module %d, want HBM (1)", pref[0])
	}
	// "Next best for HBM is LPDDR" (Section III-C).
	if pref[1] != 2 {
		t.Errorf("B object second choice = module %d, want LPDDR (2)", pref[1])
	}
	stackReq := Request{Segment: heap.SegStack, AppClass: classify.LatencySensitive}
	if pref := p.Preference(stackReq); pref[0] != 2 {
		t.Errorf("stack first choice = module %d, want LPDDR (2) per Section VI-D", pref[0])
	}
	unknownHeap := Request{Segment: heap.SegHeap, ObjClassKnown: false}
	if pref := p.Preference(unknownHeap); pref[0] != 2 {
		t.Errorf("unclassified heap first choice = %d, want LPDDR", pref[0])
	}
}

func TestAppLevelPreference(t *testing.T) {
	infos := []ModuleInfo{{0, mem.RLDRAM}, {1, mem.HBM}, {2, mem.LPDDR2}, {3, mem.LPDDR2}}
	p := NewAppLevel(infos, nil)
	// Heter-App ignores object class entirely: an N-class *object* inside
	// an L-class *app* still goes to RLDRAM.
	r := Request{
		Segment: heap.SegHeap, AppClass: classify.LatencySensitive,
		ObjClass: classify.NonIntensive, ObjClassKnown: true,
	}
	if pref := p.Preference(r); pref[0] != 0 {
		t.Errorf("Heter-App first choice = %d, want RLDRAM (0)", pref[0])
	}
	if p.Name() != "heter-app" {
		t.Error("policy name")
	}
}

func TestFixedPolicy(t *testing.T) {
	p := NewFixed("homogen-ddr3", []int{0})
	if got := p.Preference(Request{}); len(got) != 1 || got[0] != 0 {
		t.Errorf("fixed preference = %v", got)
	}
	if p.Name() != "homogen-ddr3" {
		t.Error("name")
	}
}

func TestOSFirstTouchAndStability(t *testing.T) {
	ms := config1Modules(t, 16)
	os, err := NewOS(ms, NewMOCA(infosOf(ms), nil))
	if err != nil {
		t.Fatal(err)
	}
	os.AddProcess(0, classify.LatencySensitive)

	vaddr := heap.HeapLatBase + 123
	p1, ok := os.Translate(0, vaddr, false)
	if !ok {
		t.Fatal("translate failed")
	}
	if vm.ModuleOf(p1) != 0 {
		t.Errorf("L-partition page on module %d, want RLDRAM (0)", vm.ModuleOf(p1))
	}
	// Same page again: same frame (via TLB), offset preserved.
	p2, _ := os.Translate(0, vaddr+5, false)
	if vm.ModuleOf(p2) != vm.ModuleOf(p1) || (p2-p1) != 5 {
		t.Errorf("retranslation moved: %#x then %#x", p1, p2)
	}
	st := os.Stats()
	if st.Faults != 1 || st.PagesByModule[0] != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestOSFallbackWhenPreferredFull(t *testing.T) {
	ms := config1Modules(t, 4) // tiny RLDRAM: 4 pages
	os, _ := NewOS(ms, NewMOCA(infosOf(ms), nil))
	os.AddProcess(0, classify.LatencySensitive)

	// Touch 6 latency-partition pages; the last 2 must fall back to HBM.
	for i := uint64(0); i < 6; i++ {
		paddr, ok := os.Translate(0, heap.HeapLatBase+i*vm.PageBytes, false)
		if !ok {
			t.Fatalf("page %d failed", i)
		}
		if i < 4 && vm.ModuleOf(paddr) != 0 {
			t.Errorf("page %d on module %d, want RLDRAM", i, vm.ModuleOf(paddr))
		}
		if i >= 4 && vm.ModuleOf(paddr) != 1 {
			t.Errorf("overflow page %d on module %d, want HBM (next best)", i, vm.ModuleOf(paddr))
		}
	}
	if st := os.Stats(); st.FallbackPages != 2 {
		t.Errorf("fallback pages = %d, want 2", st.FallbackPages)
	}
}

func TestOSOOM(t *testing.T) {
	ms := config1Modules(t, 2) // 8 pages total
	os, _ := NewOS(ms, NewFixed("all", []int{0, 1, 2, 3}))
	os.AddProcess(0, classify.NonIntensive)
	oks := 0
	for i := uint64(0); i < 10; i++ {
		if _, ok := os.Translate(0, heap.HeapDefaultBase+i*vm.PageBytes, false); ok {
			oks++
		}
	}
	if oks != 8 {
		t.Errorf("placed %d pages in an 8-page system", oks)
	}
	if st := os.Stats(); st.OOMFailures != 2 {
		t.Errorf("OOM failures = %d, want 2", st.OOMFailures)
	}
}

func TestOSMultiProcessIsolation(t *testing.T) {
	ms := config1Modules(t, 16)
	os, _ := NewOS(ms, NewMOCA(infosOf(ms), nil))
	os.AddProcess(0, classify.LatencySensitive)
	os.AddProcess(1, classify.NonIntensive)

	vaddr := heap.HeapPowBase + 64
	pa, _ := os.Translate(0, vaddr, false)
	pb, _ := os.Translate(1, vaddr, false)
	if pa == pb {
		t.Error("two processes share a physical page for the same vaddr")
	}
	t0, _ := os.PageTable(0)
	t1, _ := os.PageTable(1)
	if t0.Mapped() != 1 || t1.Mapped() != 1 {
		t.Error("page tables not per-process")
	}
}

func TestOSPanicsOnUnknownProcess(t *testing.T) {
	ms := config1Modules(t, 4)
	os, _ := NewOS(ms, NewFixed("x", []int{0}))
	defer func() {
		if recover() == nil {
			t.Error("translate for unknown process did not panic")
		}
	}()
	os.Translate(9, 0, false)
}

func TestOSDuplicateProcessPanics(t *testing.T) {
	ms := config1Modules(t, 4)
	os, _ := NewOS(ms, NewFixed("x", []int{0}))
	os.AddProcess(0, classify.NonIntensive)
	defer func() {
		if recover() == nil {
			t.Error("duplicate AddProcess did not panic")
		}
	}()
	os.AddProcess(0, classify.NonIntensive)
}

func TestNewOSErrors(t *testing.T) {
	if _, err := NewOS(nil, NewFixed("x", nil)); err == nil {
		t.Error("no modules accepted")
	}
	ms := config1Modules(t, 4)
	if _, err := NewOS(ms, nil); err == nil {
		t.Error("nil policy accepted")
	}
}

func TestTranslatorAdapter(t *testing.T) {
	ms := config1Modules(t, 8)
	os, _ := NewOS(ms, NewMOCA(infosOf(ms), nil))
	os.AddProcess(3, classify.BandwidthSensitive)
	tr := Translator{OS: os, Proc: 3}
	if _, ok := tr.Translate(heap.HeapBWBase, false); !ok {
		t.Error("adapter translate failed")
	}
	if tlb, ok := os.TLB(3); !ok || tlb.Misses() == 0 {
		t.Error("TLB not exercised")
	}
}

func TestHeterAppCapacityMisallocation(t *testing.T) {
	// The disparity case study (Section VI-A): under Heter-App, whichever
	// object faults first claims the scarce RLDRAM; under MOCA, only the
	// latency-classified object does.
	ms := config1Modules(t, 4) // 4-page RLDRAM

	osApp, _ := NewOS(ms, NewAppLevel(infosOf(ms), nil))
	osApp.AddProcess(0, classify.LatencySensitive)
	// The "cold" object faults first and eats all of RLDRAM...
	for i := uint64(0); i < 4; i++ {
		paddr, _ := osApp.Translate(0, heap.HeapDefaultBase+i*vm.PageBytes, false)
		if vm.ModuleOf(paddr) != 0 {
			t.Fatalf("cold page %d not on RLDRAM under Heter-App", i)
		}
	}
	// ...so the hot object lands elsewhere.
	paddr, _ := osApp.Translate(0, heap.HeapDefaultBase+100*vm.PageBytes, false)
	if vm.ModuleOf(paddr) == 0 {
		t.Error("RLDRAM should be exhausted")
	}

	// MOCA with fresh modules: the cold object is typed N and never
	// touches RLDRAM.
	ms2 := config1Modules(t, 4)
	osMoca, _ := NewOS(ms2, NewMOCA(infosOf(ms2), nil))
	osMoca.AddProcess(0, classify.LatencySensitive)
	for i := uint64(0); i < 4; i++ {
		paddr, _ := osMoca.Translate(0, heap.HeapPowBase+i*vm.PageBytes, false)
		if vm.ModuleOf(paddr) == 0 {
			t.Error("N object placed in RLDRAM under MOCA")
		}
	}
	paddr, _ = osMoca.Translate(0, heap.HeapLatBase, false)
	if vm.ModuleOf(paddr) != 0 {
		t.Error("L object denied RLDRAM under MOCA")
	}
}
