package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
)

// frame encodes one frame (panics on encoding faults: test-fixture only).
func frame(typ byte, payload []byte) []byte {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, typ, payload, 0); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := []struct {
		typ     byte
		payload string
	}{
		{TypeHello, `{"version":1}`},
		{TypeSubmit, `{"id":7,"system":"moca","app":"mcf"}`},
		{TypeResult, `{"id":7,"result":{"elapsed_ps":1}}`},
		{TypeCancel, ``}, // empty payload is a legal frame
	}
	for _, m := range msgs {
		if err := WriteFrame(&buf, m.typ, []byte(m.payload), 0); err != nil {
			t.Fatal(err)
		}
	}
	for _, m := range msgs {
		typ, payload, err := ReadFrame(&buf, 0)
		if err != nil {
			t.Fatal(err)
		}
		if typ != m.typ || string(payload) != m.payload {
			t.Fatalf("read (0x%02x, %q), want (0x%02x, %q)", typ, payload, m.typ, m.payload)
		}
	}
	if _, _, err := ReadFrame(&buf, 0); err != io.EOF {
		t.Fatalf("drained stream returned %v, want io.EOF", err)
	}
}

func TestFrameTypedErrors(t *testing.T) {
	t.Run("zero-length", func(t *testing.T) {
		_, _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 0}), 0)
		if !errors.Is(err, ErrEmptyFrame) {
			t.Fatalf("got %v, want ErrEmptyFrame", err)
		}
	})
	t.Run("oversized", func(t *testing.T) {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], 1<<30)
		_, _, err := ReadFrame(bytes.NewReader(hdr[:]), 0)
		if !errors.Is(err, ErrTooLarge) {
			t.Fatalf("got %v, want ErrTooLarge", err)
		}
	})
	t.Run("oversized-write-rejected-locally", func(t *testing.T) {
		err := WriteFrame(io.Discard, TypeResult, make([]byte, 100), 64)
		if !errors.Is(err, ErrTooLarge) {
			t.Fatalf("got %v, want ErrTooLarge", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		full := frame(TypeHello, []byte(`{"version":1}`))
		for cut := 1; cut < len(full); cut++ {
			_, _, err := ReadFrame(bytes.NewReader(full[:cut]), 0)
			if !errors.Is(err, ErrTruncated) {
				t.Fatalf("cut at %d: got %v, want ErrTruncated", cut, err)
			}
		}
	})
	t.Run("clean-eof", func(t *testing.T) {
		_, _, err := ReadFrame(bytes.NewReader(nil), 0)
		if err != io.EOF {
			t.Fatalf("got %v, want bare io.EOF at a frame boundary", err)
		}
	})
	t.Run("bad-payload", func(t *testing.T) {
		var h Hello
		err := Decode([]byte(`{"version":`), &h)
		if !errors.Is(err, ErrBadPayload) {
			t.Fatalf("got %v, want ErrBadPayload", err)
		}
	})
}

// FuzzReadFrame: whatever bytes arrive, the codec must return a typed
// error or a valid frame — never panic, never misreport a frame boundary.
// Decoded frames must re-encode to the identical bytes (with the trailing
// garbage of the stream untouched).
func FuzzReadFrame(f *testing.F) {
	// One seed per frame type, both directions, so the fuzzer starts with
	// every dispatch arm reachable (moca-vet's wiredispatch analyzer
	// checks this list stays exhaustive as the protocol grows).
	for _, typ := range []byte{
		TypeHello, TypeSubmit, TypeStatus, TypeCancel, TypeStream,
		TypeTraceStart, TypeTraceBlock, TypeTraceEnd,
		TypeHelloOK, TypeAccepted, TypeJobState, TypeProgress,
		TypeSnapshot, TypeResult, TypeError, TypeTraceResume, TypeTraceAck,
	} {
		f.Add(frame(typ, []byte(`{"id":1}`)), uint32(0))
	}
	f.Add(frame(TypeHello, []byte(`{"version":1}`)), uint32(0))
	f.Add(frame(TypeSubmit, []byte(`{"id":1,"system":"ddr3","app":"mcf"}`)), uint32(0))
	f.Add([]byte{0, 0, 0, 0}, uint32(0))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3}, uint32(0))
	f.Add([]byte{0, 0, 0, 5, 0x86, 'a', 'b'}, uint32(16))
	f.Add([]byte{}, uint32(1))

	f.Fuzz(func(t *testing.T, data []byte, max uint32) {
		r := bytes.NewReader(data)
		typ, payload, err := ReadFrame(r, max)
		if err != nil {
			switch {
			case err == io.EOF,
				errors.Is(err, ErrEmptyFrame),
				errors.Is(err, ErrTooLarge),
				errors.Is(err, ErrTruncated):
			default:
				t.Fatalf("untyped error: %v", err)
			}
			return
		}
		// A successfully decoded frame re-encodes byte-identically.
		limit := max
		if limit == 0 {
			limit = DefaultMaxFrame
		}
		var buf bytes.Buffer
		if werr := WriteFrame(&buf, typ, payload, limit); werr != nil {
			t.Fatalf("re-encoding a decoded frame failed: %v", werr)
		}
		consumed := len(data) - r.Len()
		if !bytes.Equal(buf.Bytes(), data[:consumed]) {
			t.Fatalf("round trip diverged:\n got %x\nwant %x", buf.Bytes(), data[:consumed])
		}
	})
}

func TestErrorStringsCarryContext(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 1<<30)
	_, _, err := ReadFrame(bytes.NewReader(hdr[:]), 1024)
	if err == nil || !strings.Contains(err.Error(), "1024") {
		t.Fatalf("size-limit error lacks the limit: %v", err)
	}
}
