// Package wire is the serving protocol of moca-served: a compact
// length-prefixed binary framing with JSON payloads, spoken between the
// long-running server (internal/wire/server) and its clients
// (internal/wire/client, moca-sim -remote).
//
// Frame layout (network byte order):
//
//	uint32  length   // of everything after this field: 1 (type) + payload
//	byte    type     // Type* constant
//	[]byte  payload  // JSON-encoded message for that type (may be empty)
//
// A connection opens with a HELLO/HELLO-OK version handshake, then the
// client submits jobs (SUBMIT carries the canonical run key: system name,
// app or mix, measure and profile-window quotas) and may poll (STATUS),
// subscribe to progress ticks and live metrics snapshots (STREAM), or
// abandon a job (CANCEL). The server answers with ACCEPTED/STATUS frames,
// streams PROGRESS and SNAPSHOT frames while the run executes, and
// finishes each job with exactly one RESULT or ERROR frame.
//
// Decoding is defensive: a frame that is truncated, oversized, or empty
// yields a typed error (ErrTruncated, ErrTooLarge, ErrEmptyFrame) and
// never panics, whatever bytes arrive — the codec fuzz test holds the
// codec to that.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// ProtocolVersion is negotiated by the HELLO handshake; the server
// rejects clients speaking a different major version.
const ProtocolVersion = 1

// DefaultMaxFrame bounds a frame's length field (type byte + payload).
// Result frames carry a full sim.Result JSON document (tens of KB); 8 MB
// leaves room for metrics-heavy snapshots while stopping a hostile or
// corrupt length prefix from ballooning allocation.
const DefaultMaxFrame = 8 << 20

// Frame types. Client-to-server types have the high bit clear,
// server-to-client types have it set.
const (
	TypeHello      byte = 0x01 // Hello: version handshake
	TypeSubmit     byte = 0x02 // Submit: start (or join) a job
	TypeStatus     byte = 0x03 // StatusReq: poll a job's state
	TypeCancel     byte = 0x04 // Cancel: abandon a job
	TypeStream     byte = 0x05 // StreamReq: subscribe to progress/snapshots
	TypeTraceStart byte = 0x06 // TraceStart: open or re-attach a trace-fed run
	TypeTraceBlock byte = 0x07 // binary trace block frame (see AppendTraceBlock)
	TypeTraceEnd   byte = 0x08 // TraceEnd: no more blocks; deliver the result

	TypeHelloOK     byte = 0x81 // HelloOK: handshake accepted
	TypeAccepted    byte = 0x82 // Accepted: job registered
	TypeJobState    byte = 0x83 // JobStatus: state poll answer
	TypeProgress    byte = 0x84 // Progress: periodic completion tick
	TypeSnapshot    byte = 0x85 // Snapshot: live metrics while running
	TypeResult      byte = 0x86 // ResultMsg: terminal success
	TypeError       byte = 0x87 // ErrorMsg: terminal failure (or protocol error, ID 0)
	TypeTraceResume byte = 0x88 // TraceResume: session opened; resume position
	TypeTraceAck    byte = 0x89 // TraceAck: blocks up to Pos are owned by the server
)

// Typed decode errors. Connection handlers close the connection when one
// surfaces; tests and the fuzzer match on them with errors.Is.
var (
	// ErrTooLarge: the length prefix exceeds the connection's frame cap.
	ErrTooLarge = errors.New("wire: frame exceeds size limit")
	// ErrEmptyFrame: the length prefix is zero (no room for the type byte).
	ErrEmptyFrame = errors.New("wire: empty frame")
	// ErrTruncated: the stream ended inside a frame.
	ErrTruncated = errors.New("wire: truncated frame")
	// ErrVersion: the HELLO handshake versions do not match.
	ErrVersion = errors.New("wire: protocol version mismatch")
	// ErrBadPayload: a frame's JSON payload does not decode as the message
	// its type demands.
	ErrBadPayload = errors.New("wire: malformed payload")
)

// Hello opens every connection (client to server).
type Hello struct {
	Version int `json:"version"`
}

// HelloOK accepts the handshake (server to client).
type HelloOK struct {
	Version int `json:"version"`
}

// Submit asks the server to run one simulation. ID is chosen by the
// client and echoed on every frame concerning this job; it must be unique
// among the connection's live jobs. The remaining fields form the
// canonical run key: identical keys from any number of connections
// multiplex onto a single simulation.
type Submit struct {
	ID uint32 `json:"id"`
	// System is the CLI-style system name moca-sim accepts (ddr3, rl, hbm,
	// lp, heter-app, moca, migrate, with optional @config2/@config3).
	System string `json:"system"`
	// Exactly one of App (single application) or Mix (4-app workload set).
	App string `json:"app,omitempty"`
	Mix string `json:"mix,omitempty"`
	// Measure is the measured instruction quota per core; ProfileWindow
	// the offline-profiling window. Zero selects the server defaults.
	Measure       uint64 `json:"measure,omitempty"`
	ProfileWindow uint64 `json:"profile_window,omitempty"`
	// Metrics requests the observability snapshot in the result.
	Metrics bool `json:"metrics,omitempty"`
}

// StatusReq polls one job's state.
type StatusReq struct {
	ID uint32 `json:"id"`
}

// Cancel abandons one job. The server detaches this connection's interest;
// the simulation itself stops only when no other client remains joined to
// it. The job terminates with an ERROR frame carrying code "canceled".
type Cancel struct {
	ID uint32 `json:"id"`
}

// StreamReq subscribes the connection to PROGRESS (and, when the job was
// submitted with Metrics, SNAPSHOT) frames for one job.
type StreamReq struct {
	ID uint32 `json:"id"`
}

// Accepted acknowledges a SUBMIT.
type Accepted struct {
	ID uint32 `json:"id"`
}

// Job states reported by JobStatus.
const (
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// JobStatus answers a STATUS poll.
type JobStatus struct {
	ID    uint32 `json:"id"`
	State string `json:"state"`
}

// Progress is a periodic completion tick: done of total per-core
// instructions (warmup + measure) retired by the run's slowest core.
type Progress struct {
	ID    uint32 `json:"id"`
	Done  uint64 `json:"done"`
	Total uint64 `json:"total"`
}

// Snapshot carries a live obs.Snapshot (JSON) captured at a simulation
// window barrier.
type Snapshot struct {
	ID  uint32          `json:"id"`
	Obs json.RawMessage `json:"obs"`
}

// ResultMsg terminates a successful job. Result holds the sim.Result JSON
// document; the server encodes each result once, so every client joined
// to the same run receives byte-identical bytes.
type ResultMsg struct {
	ID     uint32          `json:"id"`
	Result json.RawMessage `json:"result"`
}

// Error codes carried by ErrorMsg.
const (
	CodeCanceled = "canceled" // job canceled (by this or the last client)
	CodeFailed   = "failed"   // simulation or setup error
	CodeBadReq   = "bad-request"
	CodeProto    = "protocol" // framing/handshake violation; connection closes
	CodeDraining = "draining" // server is shutting down; submit rejected
	CodeBusy     = "busy"     // trace session already attached elsewhere
	CodeTrace    = "trace"    // pushed trace block failed to decode
)

// ErrorMsg terminates a failed job (ID echoes the job) or reports a
// protocol-level fault (ID 0, after which the server closes the
// connection).
type ErrorMsg struct {
	ID   uint32 `json:"id"`
	Code string `json:"code"`
	Msg  string `json:"msg"`
}

// Trace streaming. A client that holds a v2 block trace (internal/trace)
// pushes it to the server block by block; the server feeds the decoded
// instructions straight into a live simulation. Delivery is synchronous
// per block — every TRACE_BLOCK is answered with a TRACE_ACK naming the
// position now owned by the server — so a client that disconnects
// mid-corpus reconnects with the same session token, receives the last
// acknowledged position in TRACE_RESUME, and continues from that exact
// block boundary without resending (or the server re-simulating) anything.

// TracePos mirrors trace.Position on the wire: the byte offset of a block
// boundary in the client's trace file and the stream index of its first
// item. ByteOff is client-side state the server merely echoes back (it is
// whatever the client declared when pushing); Seq is validated by the
// server against the decoded block headers.
type TracePos struct {
	ByteOff uint64 `json:"byte_off"`
	Seq     uint64 `json:"seq"`
}

// TraceStart opens a trace-streaming session, or re-attaches to a live
// one after a disconnect. Session is a client-chosen token identifying
// the session across connections; System/App/Measure describe the
// simulation exactly as moca-trace replay does (they must repeat verbatim
// on re-attach). The server answers with TRACE_RESUME carrying the
// position to push from — zero for a fresh session.
type TraceStart struct {
	ID      uint32 `json:"id"`
	Session string `json:"session"`
	System  string `json:"system"`
	App     string `json:"app"`
	Measure uint64 `json:"measure,omitempty"`
}

// TraceResume answers a TRACE_START: push blocks starting at Pos.
type TraceResume struct {
	ID  uint32   `json:"id"`
	Pos TracePos `json:"pos"`
}

// TraceAck answers one TRACE_BLOCK: every item below Pos.Seq is owned by
// the server and must not be resent; Pos is durable across reconnects for
// the session's lifetime.
type TraceAck struct {
	ID  uint32   `json:"id"`
	Pos TracePos `json:"pos"`
}

// TraceEnd declares the trace complete. The server closes the session's
// instruction stream and answers with the job's terminal RESULT or ERROR
// frame once the simulation finishes.
type TraceEnd struct {
	ID uint32 `json:"id"`
}

// traceBlockHdrLen is the binary preamble of a TRACE_BLOCK payload:
// uint32 BE job ID + uint64 BE next byte offset, then the raw block frame.
const traceBlockHdrLen = 12

// AppendTraceBlock assembles a TRACE_BLOCK payload: the job ID, the
// client-side byte offset of the boundary after this block (echoed in the
// ack), and the block frame exactly as stored on disk (marker through
// payload, trace.BlockScanner.Frame) — the block bytes cross the wire
// without re-encoding or recompression.
func AppendTraceBlock(dst []byte, id uint32, nextOff uint64, frame []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, id)
	dst = binary.BigEndian.AppendUint64(dst, nextOff)
	return append(dst, frame...)
}

// SplitTraceBlock splits a TRACE_BLOCK payload into its job ID, the
// declared next byte offset, and the raw block frame. The frame slice
// aliases payload.
func SplitTraceBlock(payload []byte) (id uint32, nextOff uint64, frame []byte, err error) {
	if len(payload) < traceBlockHdrLen+1 {
		return 0, 0, nil, fmt.Errorf("%w: TRACE_BLOCK: %d byte payload", ErrBadPayload, len(payload))
	}
	id = binary.BigEndian.Uint32(payload)
	nextOff = binary.BigEndian.Uint64(payload[4:])
	return id, nextOff, payload[traceBlockHdrLen:], nil
}

// WriteFrame writes one frame. payload may be nil. max bounds the frame
// exactly as the peer's ReadFrame will (0 = DefaultMaxFrame), so an
// oversized write fails locally with ErrTooLarge instead of poisoning the
// connection.
func WriteFrame(w io.Writer, typ byte, payload []byte, max uint32) error {
	if max == 0 {
		max = DefaultMaxFrame
	}
	n := uint64(len(payload)) + 1
	if n > uint64(max) {
		return fmt.Errorf("%w: %d byte frame, limit %d", ErrTooLarge, n, max)
	}
	buf := make([]byte, 5+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(n))
	buf[4] = typ
	copy(buf[5:], payload)
	_, err := w.Write(buf)
	return err
}

// WriteMsg JSON-encodes v and writes it as one frame of the given type.
func WriteMsg(w io.Writer, typ byte, v any, max uint32) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("wire: encoding %T: %w", v, err)
	}
	return WriteFrame(w, typ, payload, max)
}

// ReadFrame reads one frame, enforcing the size cap (0 = DefaultMaxFrame)
// before allocating. io.EOF surfaces only at a clean frame boundary; a
// stream ending mid-frame is ErrTruncated.
func ReadFrame(r io.Reader, max uint32) (typ byte, payload []byte, err error) {
	if max == 0 {
		max = DefaultMaxFrame
	}
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:4]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("%w: length prefix: %v", ErrTruncated, err)
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n == 0 {
		return 0, nil, ErrEmptyFrame
	}
	if n > max {
		return 0, nil, fmt.Errorf("%w: %d byte frame, limit %d", ErrTooLarge, n, max)
	}
	if _, err := io.ReadFull(r, hdr[4:5]); err != nil {
		return 0, nil, fmt.Errorf("%w: type byte: %v", ErrTruncated, err)
	}
	typ = hdr[4]
	payload = make([]byte, n-1)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("%w: payload (%d bytes): %v", ErrTruncated, n-1, err)
	}
	return typ, payload, nil
}

// Decode unmarshals a frame payload into msg, mapping JSON faults to
// ErrBadPayload.
func Decode(payload []byte, msg any) error {
	if err := json.Unmarshal(payload, msg); err != nil {
		return fmt.Errorf("%w: %T: %v", ErrBadPayload, msg, err)
	}
	return nil
}
