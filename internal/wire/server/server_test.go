package server

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"moca/internal/exp"
	"moca/internal/wire"
	"moca/internal/wire/client"
)

// Small quotas keep e2e runs fast; they form the runner key below.
const (
	testMeasure = 30_000
	testWindow  = 100_000
)

func testKey() runnerKey {
	return runnerKey{measure: testMeasure, window: testWindow}
}

func testSubmit(id uint32) wire.Submit {
	return wire.Submit{
		ID:            id,
		System:        "ddr3",
		App:           "mcf",
		Measure:       testMeasure,
		ProfileWindow: testWindow,
	}
}

// startServer serves on a loopback listener until the test ends and the
// drain completes.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	t.Cleanup(func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("Serve: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Error("Serve did not drain within 30s")
		}
	})
	return srv, ln.Addr().String()
}

// TestManyClientsOneSimulation is the tentpole's acceptance test: 100
// concurrent clients submitting the identical run key must execute
// exactly one simulation, and every client must receive byte-identical
// RESULT frames — which also match the same run executed locally through
// the experiment harness.
func TestManyClientsOneSimulation(t *testing.T) {
	srv, addr := startServer(t, Config{DrainTimeout: 5 * time.Second})

	const n = 100
	raws := make([][]byte, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := client.Dial(addr, client.Options{})
			if err != nil {
				errs[i] = err
				return
			}
			defer c.Close()
			_, j, err := c.Run(context.Background(), testSubmit(0), nil)
			if err != nil {
				errs[i] = err
				return
			}
			raws[i] = j.Raw
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(raws[i], raws[0]) {
			t.Fatalf("client %d received different result bytes than client 0", i)
		}
	}

	srv.mu.Lock()
	r := srv.runners[testKey()]
	srv.mu.Unlock()
	if r == nil {
		t.Fatal("no runner materialized for the submitted key")
	}
	if st := r.Stats(); st.Simulated != 1 {
		t.Errorf("Simulated = %d for %d identical submissions, want 1", st.Simulated, n)
	}

	// The served bytes are the local harness's bytes: same key through a
	// fresh local runner must marshal identically.
	local := exp.NewRunner()
	local.Measure = testMeasure
	local.FW.ProfileWindow = testWindow
	def, err := exp.SystemByName("ddr3")
	if err != nil {
		t.Fatal(err)
	}
	res, err := local.RunSingle(def, "mcf")
	if err != nil {
		t.Fatal(err)
	}
	want, err := res.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raws[0], want) {
		t.Error("remote result bytes diverge from the local harness run")
	}
}

// TestCancelSoleClientStopsRun: the only client joined to a run cancels;
// the client returns context.Canceled and the simulation's progress ticks
// cease — the CANCEL frame reached System.RunContext via the flight
// context.
func TestCancelSoleClientStopsRun(t *testing.T) {
	srv, addr := startServer(t, Config{StreamInterval: 20 * time.Millisecond, DrainTimeout: 5 * time.Second})

	c, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// A quota far beyond the e2e scale: only cancellation ends this run.
	sub := testSubmit(0)
	sub.Measure = 2_000_000_000
	j, err := c.Submit(sub)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Stream(j); err != nil {
		t.Fatal(err)
	}

	// Watch the hub directly: ticks prove the simulation is advancing.
	memoKey := "homogen-ddr3|single/mcf"
	ticks, unsubscribe := srv.hub.subscribe(memoKey)
	defer unsubscribe()

	ctx, cancel := context.WithCancel(context.Background())
	waitErr := make(chan error, 1)
	go func() {
		_, err := c.Wait(ctx, j, nil, nil)
		waitErr <- err
	}()

	select {
	case <-ticks:
		// The run is live.
	case <-time.After(60 * time.Second):
		t.Fatal("no progress tick within 60s")
	}

	cancel()
	select {
	case err := <-waitErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled client returned %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancellation did not reach the client within 30s")
	}

	// The simulation must stop: after a drain window, no further ticks.
	deadline := time.Now().Add(30 * time.Second)
	for {
		// Drain anything already in flight, then listen for fresh ticks.
		select {
		case <-ticks:
		default:
		}
		quiet := true
		select {
		case <-ticks:
			quiet = false
		case <-time.After(500 * time.Millisecond):
		}
		if quiet {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("simulation still ticking 30s after its only client canceled")
		}
	}
	srv.mu.Lock()
	r := srv.runners[runnerKey{measure: sub.Measure, window: testWindow}]
	srv.mu.Unlock()
	if st := r.Stats(); st.Simulated != 0 {
		t.Errorf("Simulated = %d for a canceled run, want 0", st.Simulated)
	}
}

// TestMalformedFrameClosesConnection: after the handshake, a frame that
// violates the protocol draws a typed ERROR frame and the connection
// closes — it never hangs or panics the server.
func TestMalformedFrameClosesConnection(t *testing.T) {
	_, addr := startServer(t, Config{DrainTimeout: time.Second})

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(10 * time.Second))
	if err := wire.WriteMsg(nc, wire.TypeHello, wire.Hello{Version: wire.ProtocolVersion}, 0); err != nil {
		t.Fatal(err)
	}
	typ, _, err := wire.ReadFrame(nc, 0)
	if err != nil || typ != wire.TypeHelloOK {
		t.Fatalf("handshake: type 0x%02x, err %v", typ, err)
	}

	// A length prefix far past the server's cap.
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 1<<31)
	if _, err := nc.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := wire.ReadFrame(nc, 0)
	if err != nil {
		t.Fatalf("expected an ERROR frame before close, got read error %v", err)
	}
	if typ != wire.TypeError {
		t.Fatalf("got frame type 0x%02x, want ERROR", typ)
	}
	var em wire.ErrorMsg
	if err := wire.Decode(payload, &em); err != nil {
		t.Fatal(err)
	}
	if em.Code != wire.CodeProto {
		t.Errorf("error code %q, want %q", em.Code, wire.CodeProto)
	}
	if _, _, err := wire.ReadFrame(nc, 0); err == nil {
		t.Fatal("connection still open after a protocol violation")
	}
}

// TestVersionMismatchRejected: a client speaking the wrong protocol
// version is turned away during the handshake.
func TestVersionMismatchRejected(t *testing.T) {
	_, addr := startServer(t, Config{DrainTimeout: time.Second})

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(10 * time.Second))
	if err := wire.WriteMsg(nc, wire.TypeHello, wire.Hello{Version: 99}, 0); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := wire.ReadFrame(nc, 0)
	if err != nil || typ != wire.TypeError {
		t.Fatalf("got type 0x%02x err %v, want an ERROR frame", typ, err)
	}
	var em wire.ErrorMsg
	if err := wire.Decode(payload, &em); err != nil {
		t.Fatal(err)
	}
	if em.Code != wire.CodeProto {
		t.Errorf("error code %q, want %q", em.Code, wire.CodeProto)
	}
}

// TestGracefulDrain: canceling the serve context mid-job lets the job
// finish and deliver its result before the server exits (SIGTERM drain).
func TestGracefulDrain(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{DrainTimeout: 60 * time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()

	c, err := client.Dial(ln.Addr().String(), client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	j, err := c.Submit(testSubmit(0))
	if err != nil {
		t.Fatal(err)
	}

	// Begin the drain while the job is in flight.
	cancel()

	res, err := c.Wait(context.Background(), j, nil, nil)
	if err != nil {
		t.Fatalf("job interrupted by drain: %v", err)
	}
	if res == nil {
		t.Fatal("nil result after drain")
	}
	c.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not exit after its last connection closed")
	}

	// Draining servers refuse new work.
	if _, err := net.Dial("tcp", ln.Addr().String()); err == nil {
		t.Error("listener still accepting after drain")
	}
}
