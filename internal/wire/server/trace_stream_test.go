package server

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"moca/internal/exp"
	"moca/internal/heap"
	"moca/internal/sim"
	"moca/internal/trace"
	"moca/internal/wire"
	"moca/internal/wire/client"
	"moca/internal/workload"
)

// traceStartSpec is the session every connection in the resume test
// repeats: the server rejects a re-attach whose system/app diverge.
func traceStartSpec() wire.TraceStart {
	return wire.TraceStart{
		Session: "resume-e2e",
		System:  "ddr3",
		App:     "mcf",
		Measure: testMeasure,
	}
}

// TestTraceStreamResume is the trace-streaming acceptance test: a client
// pushes a v2 block trace into a server-side simulation, drops the TCP
// connection abruptly mid-corpus, reconnects under the same session
// token, is told exactly which block boundary to resume from, pushes the
// remainder, and receives result bytes identical to a local run over the
// same trace file.
func TestTraceStreamResume(t *testing.T) {
	def, err := exp.SystemByName("ddr3")
	if err != nil {
		t.Fatal(err)
	}
	appSpec, ok := workload.ByName("mcf")
	if !ok {
		t.Fatal("unknown application mcf")
	}
	newCfg := func() sim.Config {
		return sim.DefaultConfig(def.Name, def.Modules, def.Policy)
	}

	// The warmup suggestion depends only on the configuration.
	probe, err := sim.New(newCfg(), []sim.ProcSpec{{App: appSpec, Input: workload.Ref}})
	if err != nil {
		t.Fatal(err)
	}
	warm := probe.SuggestedWarmup()

	// Record the app's generator stream as a v2 block trace with small
	// blocks so the corpus spans many frames; the slack covers in-flight
	// fetches past the final quota crossing.
	const blockItems = 4096
	total := warm + testMeasure + 50_000
	path := filepath.Join(t.TempDir(), "mcf.trace")
	func() {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		scratch := heap.New(heap.Config{})
		app, err := workload.Instantiate(appSpec.ForInput(workload.Ref), scratch, 0)
		if err != nil {
			t.Fatal(err)
		}
		bw, err := trace.NewBlockWriterSize(f, blockItems, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := trace.Record(bw, app.Stream(), total); err != nil {
			t.Fatal(err)
		}
		if err := bw.Close(); err != nil {
			t.Fatal(err)
		}
	}()

	// Local reference: the same simulation fed from the same trace file.
	want := func() []byte {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		br, err := trace.NewBlockReader(f)
		if err != nil {
			t.Fatal(err)
		}
		sys, err := sim.New(newCfg(), []sim.ProcSpec{{App: appSpec, Input: workload.Ref, Stream: br}})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.RunContext(context.Background(), warm, testMeasure)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := res.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}()

	_, addr := startServer(t, Config{DrainTimeout: 5 * time.Second, TraceIdleTimeout: time.Minute})

	// First connection: push roughly half the blocks, then vanish without
	// TRACE_END or CANCEL — a crash, not a goodbye.
	c1, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	j1, pos, err := c1.TraceStart(traceStartSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !pos.IsZero() {
		t.Fatalf("fresh session resumes from %+v, want zero", pos)
	}
	var acked trace.Position
	func() {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		sc, err := trace.NewBlockScanner(f)
		if err != nil {
			t.Fatal(err)
		}
		half := int(total) / blockItems / 2
		for i := 0; i < half && sc.Scan(); i++ {
			acked, err = c1.PushTraceBlock(j1, sc.NextPos().ByteOff, sc.Frame())
			if err != nil {
				t.Fatalf("push block %d: %v", i, err)
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
	}()
	if acked.Seq == 0 {
		t.Fatal("no blocks acknowledged before the disconnect")
	}
	c1.Close()

	// Reconnect under the same token. The server may still be reaping the
	// dead connection; a brief CodeBusy window is part of the contract.
	var (
		c2     *client.Client
		j2     *client.Job
		resume trace.Position
	)
	deadline := time.Now().Add(10 * time.Second)
	for {
		c2, err = client.Dial(addr, client.Options{})
		if err != nil {
			t.Fatal(err)
		}
		j2, resume, err = c2.TraceStart(traceStartSpec())
		if err == nil {
			break
		}
		c2.Close()
		var re *client.RemoteError
		if !errors.As(err, &re) || re.Code != wire.CodeBusy || time.Now().After(deadline) {
			t.Fatalf("re-attach: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	defer c2.Close()
	if resume != acked {
		t.Fatalf("server resumes from %+v, want last acked %+v", resume, acked)
	}

	// Push the remainder from exactly the acknowledged boundary, declare
	// the end, and collect the result.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := c2.PushTrace(j2, f, resume, nil); err != nil {
		t.Fatal(err)
	}
	res, err := c2.TraceEnd(context.Background(), j2)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("nil result from TraceEnd")
	}
	if !bytes.Equal(j2.Raw, want) {
		t.Errorf("remote result bytes diverge from the local run over the same trace:\nremote %s\nlocal  %s", j2.Raw, want)
	}
}

// TestTraceSessionBusy: a session can only be attached from one
// connection at a time; a second concurrent TraceStart is refused with
// CodeBusy rather than silently hijacking the stream.
func TestTraceSessionBusy(t *testing.T) {
	_, addr := startServer(t, Config{DrainTimeout: time.Second, TraceIdleTimeout: time.Minute})

	c1, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if _, _, err := c1.TraceStart(traceStartSpec()); err != nil {
		t.Fatal(err)
	}

	c2, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	_, _, err = c2.TraceStart(traceStartSpec())
	var re *client.RemoteError
	if !errors.As(err, &re) || re.Code != wire.CodeBusy {
		t.Fatalf("second attach: %v, want %s", err, wire.CodeBusy)
	}

	// The same connection may also not mismatch the session's fixed spec.
	c3, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	spec := traceStartSpec()
	spec.App = "libquantum"
	_, _, err = c3.TraceStart(spec)
	if !errors.As(err, &re) || re.Code != wire.CodeBusy {
		// Busy wins over mismatch while attached; either refusal is fine,
		// what matters is that it is refused.
		if !errors.As(err, &re) || re.Code != wire.CodeBadReq {
			t.Fatalf("mismatched attach: %v, want a refusal", err)
		}
	}
}
