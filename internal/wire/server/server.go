// Package server implements the moca-served serving layer: a TCP server
// speaking the internal/wire protocol that multiplexes any number of
// concurrent clients onto the experiment harness. Identical SUBMIT keys —
// from one connection or a thousand — join a single simulation through
// exp.Runner's reference-counted singleflight, share one persistent
// RunCache, and all receive byte-identical RESULT frames; a CANCEL (or a
// dropped connection) detaches only that client, stopping the simulation
// via context cancellation exactly when the last interested client leaves.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"moca/internal/exp"
	"moca/internal/obs"
	"moca/internal/sim"
	"moca/internal/wire"
	"moca/internal/workload"
)

// Config tunes a Server. The zero value serves with the defaults below.
type Config struct {
	// MaxFrame bounds read and written frames (0 = wire.DefaultMaxFrame).
	MaxFrame uint32
	// ReadTimeout bounds the wait for each client frame; a connection with
	// no live jobs that stays silent past it is closed (0 = 5 minutes).
	// Connections with jobs in flight are exempt while they wait.
	ReadTimeout time.Duration
	// WriteTimeout bounds each frame write (0 = 30 seconds).
	WriteTimeout time.Duration
	// DrainTimeout bounds the graceful shutdown: after the serve context
	// fires, in-flight jobs get this long to finish before their
	// connections are closed (0 = 1 minute).
	DrainTimeout time.Duration
	// StreamInterval throttles PROGRESS/SNAPSHOT frames per subscription
	// (0 = 100ms). Simulation ticks arrive far faster than any client
	// needs; only the freshest tick inside each interval is forwarded.
	StreamInterval time.Duration
	// TraceIdleTimeout bounds how long a detached trace-streaming session
	// (its client disconnected mid-corpus) waits for a re-attach before the
	// half-run simulation is canceled and reaped (0 = 2 minutes).
	TraceIdleTimeout time.Duration
	// Measure and ProfileWindow are the quotas used when a SUBMIT leaves
	// them zero (0 = 300_000 each, the paper defaults).
	Measure       uint64
	ProfileWindow uint64
	// Shards is the per-simulation worker count (sim.Config.Shards).
	Shards int
	// Cache, if non-nil, is the persistent result/profile cache shared by
	// every runner.
	Cache *exp.RunCache
	// Logf, if non-nil, receives server logs (connection lifecycle, drain).
	Logf func(format string, args ...any)
}

func (c Config) maxFrame() uint32 {
	if c.MaxFrame == 0 {
		return wire.DefaultMaxFrame
	}
	return c.MaxFrame
}

func (c Config) readTimeout() time.Duration {
	if c.ReadTimeout == 0 {
		return 5 * time.Minute
	}
	return c.ReadTimeout
}

func (c Config) writeTimeout() time.Duration {
	if c.WriteTimeout == 0 {
		return 30 * time.Second
	}
	return c.WriteTimeout
}

func (c Config) drainTimeout() time.Duration {
	if c.DrainTimeout == 0 {
		return time.Minute
	}
	return c.DrainTimeout
}

func (c Config) streamInterval() time.Duration {
	if c.StreamInterval == 0 {
		return 100 * time.Millisecond
	}
	return c.StreamInterval
}

func (c Config) measure() uint64 {
	if c.Measure == 0 {
		return 300_000
	}
	return c.Measure
}

func (c Config) profileWindow() uint64 {
	if c.ProfileWindow == 0 {
		return 300_000
	}
	return c.ProfileWindow
}

// Server accepts wire-protocol connections and runs their jobs.
type Server struct {
	cfg Config
	hub *hub

	mu      sync.Mutex
	runners map[runnerKey]*exp.Runner
	conns   map[*conn]struct{}
	traces  map[string]*traceSession
	drain   bool

	// hardCtx outlives the serve context by the drain timeout; jobs run
	// under it so SIGTERM drains instead of killing them.
	hardCtx    context.Context
	hardCancel context.CancelFunc
}

// runnerKey identifies one runner configuration. Measure, ProfileWindow
// and Obs are runner-global in exp.Runner, so each distinct combination
// gets its own runner; all runners share the persistent cache, and the
// in-memory singleflight still collapses identical submissions because an
// identical run key implies an identical runnerKey.
type runnerKey struct {
	measure uint64
	window  uint64
	metrics bool
}

// New builds a Server.
func New(cfg Config) *Server {
	return &Server{
		cfg:     cfg,
		hub:     newHub(),
		runners: make(map[runnerKey]*exp.Runner),
		conns:   make(map[*conn]struct{}),
		traces:  make(map[string]*traceSession),
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// runner returns (creating on first use) the runner for one quota/obs
// combination.
func (s *Server) runner(key runnerKey) *exp.Runner {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.runners[key]; ok {
		return r
	}
	r := exp.NewRunner()
	r.Measure = key.measure
	r.FW.ProfileWindow = key.window
	r.Obs = obs.Options{Metrics: key.metrics}
	r.Shards = s.cfg.Shards
	r.Cache = s.cfg.Cache
	r.Ctx = s.hardCtx
	r.OnProgress = s.hub.tick
	s.runners[key] = r
	return r
}

// Serve accepts connections on ln until ctx fires, then drains: the
// listener closes immediately, in-flight jobs keep running under the
// drain window, and connections are force-closed when it expires. Serve
// returns once every connection handler has exited.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	s.mu.Lock()
	//moca:allowctx the drain root must outlive the serve ctx: jobs finish inside the drain window after ctx fires
	s.hardCtx, s.hardCancel = context.WithCancel(context.Background())
	s.mu.Unlock()
	defer s.hardCancel()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	//moca:gorountracked exits when the serve ctx or stop fires; bounded by Serve's own lifetime
	go func() {
		select {
		case <-ctx.Done():
		case <-stop:
		}
		ln.Close()
	}()

	for {
		nc, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				break // graceful: the serve context fired
			}
			select {
			case <-stop:
			default:
				close(stop)
			}
			wg.Wait()
			return err
		}
		c := s.newConn(nc)
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.serve()
		}()
	}

	// Drain: reject new submissions, give running jobs the drain window,
	// then cut the stragglers' connections.
	s.mu.Lock()
	s.drain = true
	n := len(s.conns)
	s.mu.Unlock()
	s.logf("draining: %d connection(s), up to %v", n, s.cfg.drainTimeout())

	done := make(chan struct{})
	//moca:gorountracked closes done once the handler WaitGroup drains; bounded by the connections it waits on
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(s.cfg.drainTimeout()):
		s.logf("drain timeout: closing remaining connections")
		s.hardCancel()
		s.mu.Lock()
		for c := range s.conns {
			c.nc.Close()
		}
		s.mu.Unlock()
		<-done
	}
	return nil
}

func (s *Server) newConn(nc net.Conn) *conn {
	c := &conn{
		srv:  s,
		nc:   nc,
		jobs: make(map[uint32]*job),
	}
	s.mu.Lock()
	s.conns[c] = struct{}{}
	s.mu.Unlock()
	return c
}

func (s *Server) dropConn(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

func (s *Server) draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.drain
}

// hardContext returns the drain root jobs run under: canceled only when
// the drain window expires or Serve exits. Before Serve has run — tests
// drive connections without a listener — it falls back to the process
// root.
func (s *Server) hardContext() context.Context {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.hardCtx != nil {
		return s.hardCtx
	}
	//moca:allowctx pre-Serve fallback for tests that drive connections directly
	return context.Background()
}

// job is one client's interest in one run. Exactly one of the runner
// path (memoKey/cancel) or the trace-streaming path (sess) is live.
type job struct {
	id      uint32
	memoKey string
	cancel  context.CancelFunc
	sess    *traceSession

	mu    sync.Mutex
	state string
}

func (j *job) setState(st string) {
	j.mu.Lock()
	j.state = st
	j.mu.Unlock()
}

func (j *job) getState() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// conn handles one client connection: a read loop dispatching frames, and
// a write mutex serializing the job goroutines' and streamers' frames.
type conn struct {
	srv *Server
	nc  net.Conn

	wmu sync.Mutex // serializes writes (jobs, streams, read-loop replies)

	mu   sync.Mutex
	jobs map[uint32]*job

	jwg sync.WaitGroup // job + streamer goroutines
}

// send writes one frame under the write deadline. Errors only poison this
// connection; the read loop notices on its next read.
func (c *conn) send(typ byte, v any) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.nc.SetWriteDeadline(time.Now().Add(c.srv.cfg.writeTimeout()))
	//moca:allowhold wmu exists to serialize frame writes; the write deadline bounds the hold
	return wire.WriteMsg(c.nc, typ, v, c.srv.cfg.maxFrame())
}

// sendRaw writes a pre-encoded payload (byte-identical results).
func (c *conn) sendRaw(typ byte, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.nc.SetWriteDeadline(time.Now().Add(c.srv.cfg.writeTimeout()))
	//moca:allowhold wmu exists to serialize frame writes; the write deadline bounds the hold
	return wire.WriteFrame(c.nc, typ, payload, c.srv.cfg.maxFrame())
}

func (c *conn) protoError(msg string) {
	_ = c.send(wire.TypeError, wire.ErrorMsg{Code: wire.CodeProto, Msg: msg})
}

// serve runs the connection to completion.
func (c *conn) serve() {
	defer func() {
		// Cancel every job interest this client still holds, then wait for
		// its goroutines before releasing the connection. Trace sessions
		// are the exception: they survive the disconnect (detached, on the
		// idle clock) so the client can reconnect and resume pushing from
		// its last acknowledged position.
		c.mu.Lock()
		for _, j := range c.jobs {
			if j.sess != nil {
				j.sess.detach(c)
				continue
			}
			j.cancel()
		}
		c.mu.Unlock()
		c.jwg.Wait()
		c.nc.Close()
		c.srv.dropConn(c)
	}()

	if err := c.handshake(); err != nil {
		c.srv.logf("%s: handshake: %v", c.nc.RemoteAddr(), err)
		return
	}
	for {
		// The idle timeout applies only between jobs: a client quietly
		// waiting on a long simulation must not be cut off. Dead clients
		// with live jobs are detected by write failures instead.
		if c.liveJobs() > 0 {
			c.nc.SetReadDeadline(time.Time{})
		} else {
			c.nc.SetReadDeadline(time.Now().Add(c.srv.cfg.readTimeout()))
		}
		typ, payload, err := wire.ReadFrame(c.nc, c.srv.cfg.maxFrame())
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				c.srv.logf("%s: read: %v", c.nc.RemoteAddr(), err)
				c.protoError(err.Error())
			}
			return
		}
		if err := c.dispatch(typ, payload); err != nil {
			c.srv.logf("%s: %v", c.nc.RemoteAddr(), err)
			c.protoError(err.Error())
			return
		}
	}
}

func (c *conn) handshake() error {
	c.nc.SetReadDeadline(time.Now().Add(c.srv.cfg.readTimeout()))
	typ, payload, err := wire.ReadFrame(c.nc, c.srv.cfg.maxFrame())
	if err != nil {
		return err
	}
	if typ != wire.TypeHello {
		c.protoError(fmt.Sprintf("first frame type 0x%02x, want HELLO", typ))
		return fmt.Errorf("first frame type 0x%02x", typ)
	}
	var h wire.Hello
	if err := wire.Decode(payload, &h); err != nil {
		c.protoError(err.Error())
		return err
	}
	if h.Version != wire.ProtocolVersion {
		c.protoError(fmt.Sprintf("protocol version %d, server speaks %d", h.Version, wire.ProtocolVersion))
		return fmt.Errorf("%w: client %d, server %d", wire.ErrVersion, h.Version, wire.ProtocolVersion)
	}
	return c.send(wire.TypeHelloOK, wire.HelloOK{Version: wire.ProtocolVersion})
}

// dispatch handles one post-handshake frame. A returned error is a
// protocol violation that closes the connection; job-level faults are
// reported as ERROR frames with the job's ID and keep the connection open.
func (c *conn) dispatch(typ byte, payload []byte) error {
	switch typ {
	case wire.TypeSubmit:
		var sub wire.Submit
		if err := wire.Decode(payload, &sub); err != nil {
			return err
		}
		return c.submit(sub)
	case wire.TypeStatus:
		var req wire.StatusReq
		if err := wire.Decode(payload, &req); err != nil {
			return err
		}
		j := c.lookup(req.ID)
		if j == nil {
			return c.send(wire.TypeError, wire.ErrorMsg{ID: req.ID, Code: wire.CodeBadReq, Msg: "unknown job"})
		}
		return c.send(wire.TypeJobState, wire.JobStatus{ID: req.ID, State: j.getState()})
	case wire.TypeCancel:
		var req wire.Cancel
		if err := wire.Decode(payload, &req); err != nil {
			return err
		}
		if j := c.lookup(req.ID); j != nil {
			j.setState(wire.StateCanceled)
			if j.sess != nil {
				// An explicit CANCEL abandons the session for good — unlike
				// a disconnect, which leaves it resumable.
				j.sess.terminate()
			} else {
				j.cancel()
			}
		}
		return nil
	case wire.TypeStream:
		var req wire.StreamReq
		if err := wire.Decode(payload, &req); err != nil {
			return err
		}
		j := c.lookup(req.ID)
		if j == nil {
			return c.send(wire.TypeError, wire.ErrorMsg{ID: req.ID, Code: wire.CodeBadReq, Msg: "unknown job"})
		}
		c.stream(j)
		return nil
	case wire.TypeTraceStart:
		var start wire.TraceStart
		if err := wire.Decode(payload, &start); err != nil {
			return err
		}
		return c.handleTraceStart(start)
	case wire.TypeTraceBlock:
		return c.handleTraceBlock(payload)
	case wire.TypeTraceEnd:
		var end wire.TraceEnd
		if err := wire.Decode(payload, &end); err != nil {
			return err
		}
		return c.handleTraceEnd(end)
	case wire.TypeHello:
		return errors.New("duplicate HELLO")
	default:
		return fmt.Errorf("unexpected frame type 0x%02x", typ)
	}
}

func (c *conn) lookup(id uint32) *job {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.jobs[id]
}

func (c *conn) liveJobs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, j := range c.jobs {
		if j.getState() == wire.StateRunning {
			n++
		}
	}
	return n
}

// submit validates a SUBMIT and starts its job goroutine.
func (c *conn) submit(sub wire.Submit) error {
	reject := func(code, msg string) error {
		return c.send(wire.TypeError, wire.ErrorMsg{ID: sub.ID, Code: code, Msg: msg})
	}
	if c.srv.draining() {
		return reject(wire.CodeDraining, "server is shutting down")
	}
	if (sub.App == "") == (sub.Mix == "") {
		return reject(wire.CodeBadReq, "exactly one of app or mix is required")
	}
	def, err := exp.SystemByName(sub.System)
	if err != nil {
		return reject(wire.CodeBadReq, err.Error())
	}
	key := "single/" + sub.App
	if sub.Mix != "" {
		key = "mix/" + sub.Mix
	}

	c.mu.Lock()
	if _, dup := c.jobs[sub.ID]; dup {
		c.mu.Unlock()
		return reject(wire.CodeBadReq, "job id already in use")
	}
	// Jobs run under the drain root, not a detached context: when the
	// drain window expires the server cancels stragglers instead of
	// leaking them behind force-closed connections.
	jctx, cancel := context.WithCancel(c.srv.hardContext())
	j := &job{id: sub.ID, memoKey: def.Name + "|" + key, cancel: cancel, state: wire.StateRunning}
	c.jobs[sub.ID] = j
	c.mu.Unlock()

	if err := c.send(wire.TypeAccepted, wire.Accepted{ID: sub.ID}); err != nil {
		cancel()
		return err
	}

	measure, window := sub.Measure, sub.ProfileWindow
	if measure == 0 {
		measure = c.srv.cfg.measure()
	}
	if window == 0 {
		window = c.srv.cfg.profileWindow()
	}
	r := c.srv.runner(runnerKey{measure: measure, window: window, metrics: sub.Metrics})

	c.jwg.Add(1)
	go func() {
		defer c.jwg.Done()
		defer cancel()
		c.runJob(jctx, r, j, def, sub)
	}()
	return nil
}

// runJob executes one job via the runner singleflight and sends its
// terminal frame.
func (c *conn) runJob(ctx context.Context, r *exp.Runner, j *job, def exp.SystemDef, sub wire.Submit) {
	var (
		res *sim.Result
		err error
	)
	if sub.Mix != "" {
		mix, ok := workload.MixByName(sub.Mix)
		if !ok {
			j.setState(wire.StateFailed)
			_ = c.send(wire.TypeError, wire.ErrorMsg{ID: j.id, Code: wire.CodeBadReq, Msg: fmt.Sprintf("unknown mix %q", sub.Mix)})
			return
		}
		res, err = r.RunMixCtx(ctx, def, mix)
	} else {
		res, err = r.RunSingleCtx(ctx, def, sub.App)
	}
	if err == nil {
		// sim.Result's encoding is deterministic (fixed field order,
		// sorted maps), so every client joined to the same *sim.Result
		// receives byte-identical frames without coordination.
		var data []byte
		if data, err = res.MarshalJSON(); err == nil {
			var payload []byte
			if payload, err = json.Marshal(wire.ResultMsg{ID: j.id, Result: data}); err == nil {
				j.setState(wire.StateDone)
				_ = c.sendRaw(wire.TypeResult, payload)
				return
			}
		}
	}
	if errors.Is(err, context.Canceled) {
		j.setState(wire.StateCanceled)
		_ = c.send(wire.TypeError, wire.ErrorMsg{ID: j.id, Code: wire.CodeCanceled, Msg: err.Error()})
		return
	}
	j.setState(wire.StateFailed)
	_ = c.send(wire.TypeError, wire.ErrorMsg{ID: j.id, Code: wire.CodeFailed, Msg: err.Error()})
}

// stream subscribes the connection to the job's progress ticks until the
// job ends, forwarding at most one PROGRESS (and SNAPSHOT, when metrics
// were requested) per throttle interval.
func (c *conn) stream(j *job) {
	ticks, unsubscribe := c.srv.hub.subscribe(j.memoKey)
	c.jwg.Add(1)
	go func() {
		defer c.jwg.Done()
		defer unsubscribe()
		throttle := time.NewTicker(c.srv.cfg.streamInterval())
		defer throttle.Stop()
		var latest *tick
		for {
			select {
			case tk, ok := <-ticks:
				if !ok {
					return
				}
				latest = &tk
			case <-throttle.C:
				if j.getState() != wire.StateRunning {
					return
				}
				if latest == nil {
					continue
				}
				if err := c.send(wire.TypeProgress, wire.Progress{ID: j.id, Done: latest.done, Total: latest.total}); err != nil {
					return
				}
				if latest.obs != nil {
					if err := c.send(wire.TypeSnapshot, wire.Snapshot{ID: j.id, Obs: latest.obs}); err != nil {
						return
					}
				}
				latest = nil
			}
		}
	}()
}
