package server

import (
	"context"
	"net"
	"testing"
	"time"

	"moca/internal/wire"
)

// TestJobContextDerivesFromDrainRoot is the regression test for jobs
// running under a detached context: job contexts must derive from the
// server's drain root so that a drain-window expiry cancels stragglers
// instead of leaking simulations behind force-closed connections. With
// the root already canceled, a submitted job must terminate with
// CodeCanceled without executing a simulation.
func TestJobContextDerivesFromDrainRoot(t *testing.T) {
	srv := New(Config{})
	hardCtx, hardCancel := context.WithCancel(context.Background())
	srv.mu.Lock()
	srv.hardCtx, srv.hardCancel = hardCtx, hardCancel
	srv.mu.Unlock()
	hardCancel() // the drain window has already expired

	serverSide, clientSide := net.Pipe()
	defer clientSide.Close()
	c := srv.newConn(serverSide)

	// Drain the job's frames from the client side: ACCEPTED, then the
	// terminal ERROR carrying the cancellation.
	frames := make(chan byte, 4)
	errMsgs := make(chan wire.ErrorMsg, 1)
	go func() {
		defer close(frames)
		for {
			typ, payload, err := wire.ReadFrame(clientSide, wire.DefaultMaxFrame)
			if err != nil {
				return
			}
			frames <- typ
			if typ == wire.TypeError {
				var em wire.ErrorMsg
				if wire.Decode(payload, &em) == nil {
					errMsgs <- em
				}
			}
		}
	}()

	if err := c.submit(testSubmit(7)); err != nil {
		t.Fatalf("submit: %v", err)
	}
	done := make(chan struct{})
	go func() { c.jwg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("job did not terminate under the canceled drain root")
	}

	if typ := <-frames; typ != wire.TypeAccepted {
		t.Fatalf("first frame = %#x, want ACCEPTED", typ)
	}
	if typ := <-frames; typ != wire.TypeError {
		t.Fatalf("second frame = %#x, want ERROR", typ)
	}
	em := <-errMsgs
	if em.Code != wire.CodeCanceled {
		t.Fatalf("error code = %q, want %q", em.Code, wire.CodeCanceled)
	}
	serverSide.Close()

	if st := srv.runner(testKey()).Stats(); st.Simulated != 0 {
		t.Errorf("Simulated = %d, want 0 (canceled job must not run)", st.Simulated)
	}
}
