package server

import (
	"encoding/json"
	"sync"
	"time"

	"moca/internal/obs"
)

// tick is one progress observation fanned out to stream subscribers.
type tick struct {
	done, total uint64
	obs         json.RawMessage // live metrics snapshot (nil without -metrics)
}

// subscriber receives ticks latest-wins: the channel holds one slot and a
// slow reader only ever misses intermediate ticks, never the freshest.
type subscriber struct {
	ch chan tick
}

// hub fans simulation progress out to stream subscriptions. It is wired
// as exp.Runner.OnProgress for every runner, keyed by memo key, so any
// number of clients joined to one flight observe the same ticks.
type hub struct {
	mu   sync.Mutex
	subs map[string][]*subscriber
	last map[string]time.Time
}

// hubTickInterval bounds per-key tick processing: the simulator reports
// every few hundred cycles, far too often to snapshot and fan out.
const hubTickInterval = 10 * time.Millisecond

func newHub() *hub {
	return &hub{
		subs: make(map[string][]*subscriber),
		last: make(map[string]time.Time),
	}
}

// tick has exp.Runner.OnProgress's shape. It runs on the simulation's
// flight goroutine at a window barrier, so it must stay cheap: without
// subscribers it is one mutex round trip, and with them the snapshot and
// fan-out are rate-limited per key. The terminal tick (done == total)
// always goes through so subscribers observe completion.
func (h *hub) tick(memoKey string, done, total uint64, snap func() *obs.Snapshot) {
	h.mu.Lock()
	if len(h.subs[memoKey]) == 0 {
		h.mu.Unlock()
		return
	}
	now := time.Now()
	if done < total && now.Sub(h.last[memoKey]) < hubTickInterval {
		h.mu.Unlock()
		return
	}
	h.last[memoKey] = now
	h.mu.Unlock()

	var obsJSON json.RawMessage
	// snap is only valid during this callback: capture before fan-out.
	if s := snap(); s != nil {
		if data, err := json.Marshal(s); err == nil {
			obsJSON = data
		}
	}
	tk := tick{done: done, total: total, obs: obsJSON}
	h.mu.Lock()
	for _, sb := range h.subs[memoKey] {
		// Latest-wins, never blocking the simulation: displace a stale
		// tick if the subscriber has not drained it yet.
		select {
		case sb.ch <- tk:
		default:
			select {
			case <-sb.ch:
			default:
			}
			select {
			case sb.ch <- tk:
			default:
			}
		}
	}
	h.mu.Unlock()
}

// subscribe registers interest in one memo key and returns the tick
// channel plus an unsubscribe function (idempotent per subscription).
func (h *hub) subscribe(memoKey string) (<-chan tick, func()) {
	sb := &subscriber{ch: make(chan tick, 1)}
	h.mu.Lock()
	h.subs[memoKey] = append(h.subs[memoKey], sb)
	h.mu.Unlock()
	return sb.ch, func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		list := h.subs[memoKey]
		for i, x := range list {
			if x == sb {
				h.subs[memoKey] = append(list[:i:i], list[i+1:]...)
				break
			}
		}
		if len(h.subs[memoKey]) == 0 {
			delete(h.subs, memoKey)
			delete(h.last, memoKey)
		}
	}
}
