package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"moca/internal/cpu"
	"moca/internal/exp"
	"moca/internal/sim"
	"moca/internal/trace"
	"moca/internal/wire"
	"moca/internal/workload"
)

// A trace session is a simulation fed block-by-block from the network
// (wire.TraceStart and friends): the client scans a v2 trace locally and
// pushes each frame; the server decodes it into the session's instruction
// queue, the simulation consumes it through a cpu.BatchStream, and every
// accepted block is acknowledged with the position now owned by the
// server. The session — queue, decode state, the half-run simulation —
// survives the client's connection: a reconnect with the same token
// re-attaches and resumes from the last acknowledged position, so a
// corpus larger than RAM (or a flaky link) streams through without ever
// being resident or replayed from the start.

// traceQueueDepth bounds decoded blocks buffered ahead of the simulation.
// The push path blocks when it is full: TCP backpressure is the flow
// control.
const traceQueueDepth = 4

// traceSession is one remote-fed simulation.
type traceSession struct {
	srv   *Server
	token string
	// spec fields fixed at creation; re-attaches must repeat them.
	system  string
	app     string
	measure uint64

	blocks chan []cpu.Instr // decoded, owned batches awaiting the sim
	free   chan []cpu.Instr // recycled batches
	done   chan struct{}    // closed when the simulation returns
	cancel context.CancelFunc

	result []byte // terminal result JSON (nil on error)
	runErr error  // terminal simulation error

	mu       sync.Mutex
	attached *conn
	dec      trace.BlockDecoder
	ackPos   wire.TracePos // everything below here is server-owned
	ended    bool          // TraceEnd received; blocks is closed
	removed  bool
	idle     *time.Timer // armed while detached; expiry kills the session
}

// traceIdleTimeout reaps sessions no client has re-attached to.
func (c Config) traceIdleTimeout() time.Duration {
	if c.TraceIdleTimeout == 0 {
		return 2 * time.Minute
	}
	return c.TraceIdleTimeout
}

// feedStream adapts the session's block queue to cpu.BatchStream. It runs
// on the simulation goroutine; Refill blocks until the client pushes the
// next block, the stream ends, or the session's context is canceled.
type feedStream struct {
	s   *traceSession
	ctx context.Context
	cur []cpu.Instr
	idx int
}

func (f *feedStream) Next() (cpu.Instr, bool) {
	if f.idx < len(f.cur) {
		in := f.cur[f.idx]
		f.idx++
		return in, true
	}
	var one [1]cpu.Instr
	if f.Refill(one[:]) == 0 {
		return cpu.Instr{}, false
	}
	return one[0], true
}

func (f *feedStream) Refill(dst []cpu.Instr) int {
	for f.idx >= len(f.cur) {
		if f.cur != nil {
			f.s.recycle(f.cur)
			f.cur = nil
		}
		select {
		case batch, ok := <-f.s.blocks:
			if !ok {
				return 0 // clean end of trace
			}
			f.cur, f.idx = batch, 0
		case <-f.ctx.Done():
			return 0 // session canceled; RunContext surfaces the cause
		}
	}
	n := copy(dst, f.cur[f.idx:])
	f.idx += n
	return n
}

var _ cpu.BatchStream = (*feedStream)(nil)

func (ts *traceSession) recycle(batch []cpu.Instr) {
	select {
	case ts.free <- batch[:0]:
	default:
	}
}

// traceSession finds or creates the session for one TraceStart. The
// returned session is attached to c; the caller must detach on teardown.
func (s *Server) traceSession(c *conn, start wire.TraceStart) (*traceSession, *wire.ErrorMsg) {
	s.mu.Lock()
	ts := s.traces[start.Session]
	if ts == nil {
		if s.drain {
			s.mu.Unlock()
			return nil, &wire.ErrorMsg{ID: start.ID, Code: wire.CodeDraining, Msg: "server is shutting down"}
		}
		def, err := exp.SystemByName(start.System)
		if err != nil {
			s.mu.Unlock()
			return nil, &wire.ErrorMsg{ID: start.ID, Code: wire.CodeBadReq, Msg: err.Error()}
		}
		appSpec, ok := workload.ByName(start.App)
		if !ok {
			s.mu.Unlock()
			return nil, &wire.ErrorMsg{ID: start.ID, Code: wire.CodeBadReq, Msg: fmt.Sprintf("unknown application %q", start.App)}
		}
		measure := start.Measure
		if measure == 0 {
			measure = s.cfg.measure()
		}
		ts = &traceSession{
			srv:     s,
			token:   start.Session,
			system:  start.System,
			app:     start.App,
			measure: measure,
			blocks:  make(chan []cpu.Instr, traceQueueDepth),
			free:    make(chan []cpu.Instr, traceQueueDepth+1),
			done:    make(chan struct{}),
		}
		ctx, cancel := context.WithCancel(s.hardCtx)
		ts.cancel = cancel
		s.traces[start.Session] = ts
		s.mu.Unlock()
		//moca:gorountracked session lifetime is tracked by ts.done; the idle reaper or TRACE_END terminates it
		go ts.run(ctx, def, appSpec)
	} else {
		s.mu.Unlock()
	}

	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.removed {
		return nil, &wire.ErrorMsg{ID: start.ID, Code: wire.CodeBadReq, Msg: "session expired"}
	}
	if ts.attached != nil && ts.attached != c {
		return nil, &wire.ErrorMsg{ID: start.ID, Code: wire.CodeBusy, Msg: "session attached from another connection"}
	}
	if ts.system != start.System || ts.app != start.App {
		return nil, &wire.ErrorMsg{ID: start.ID, Code: wire.CodeBadReq,
			Msg: fmt.Sprintf("session %q runs %s/%s", ts.token, ts.system, ts.app)}
	}
	ts.attached = c
	if ts.idle != nil {
		ts.idle.Stop()
		ts.idle = nil
	}
	return ts, nil
}

// run executes the simulation to completion on its own goroutine.
func (ts *traceSession) run(ctx context.Context, def exp.SystemDef, appSpec workload.AppSpec) {
	defer close(ts.done)
	cfg := sim.DefaultConfig(def.Name, def.Modules, def.Policy)
	cfg.Shards = ts.srv.cfg.Shards
	stream := &feedStream{s: ts, ctx: ctx}
	sys, err := sim.New(cfg, []sim.ProcSpec{{App: appSpec, Input: workload.Ref, Stream: stream}})
	if err != nil {
		ts.runErr = err
		return
	}
	res, err := sys.RunContext(ctx, sys.SuggestedWarmup(), ts.measure)
	if err != nil {
		ts.runErr = err
		return
	}
	ts.result, ts.runErr = res.MarshalJSON()
}

// resumePos returns the position the attached client must push from.
func (ts *traceSession) resumePos() wire.TracePos {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.ackPos
}

// push decodes one block frame, enqueues its instructions for the
// simulation, and advances the acknowledged position. nextOff is the
// client's byte offset after this block, echoed in the ack. Called only
// from the attached connection's read loop, so decode state needs no
// extra ordering.
func (ts *traceSession) push(frame []byte, nextOff uint64) (wire.TracePos, error) {
	ts.mu.Lock()
	if ts.ended {
		ts.mu.Unlock()
		return wire.TracePos{}, errors.New("block after TraceEnd")
	}
	expect := ts.ackPos.Seq
	ts.mu.Unlock()

	items, err := ts.dec.DecodeFrame(frame, expect)
	if err != nil {
		return wire.TracePos{}, err
	}
	var batch []cpu.Instr
	select {
	case batch = <-ts.free:
	default:
	}
	batch = append(batch[:0], items...)

	select {
	case ts.blocks <- batch:
	case <-ts.done:
		// The run already finished (quota met or failed): the remaining
		// blocks are not needed, but acknowledging them keeps the client's
		// push loop simple — it learns the outcome at TraceEnd.
	}

	ts.mu.Lock()
	ts.ackPos = wire.TracePos{ByteOff: nextOff, Seq: expect + uint64(len(items))}
	pos := ts.ackPos
	ts.mu.Unlock()
	return pos, nil
}

// end closes the instruction stream (idempotent).
func (ts *traceSession) end() {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if !ts.ended {
		ts.ended = true
		close(ts.blocks)
	}
}

// detach drops the connection's attachment and arms the idle reaper.
func (ts *traceSession) detach(c *conn) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.attached != c {
		return
	}
	ts.attached = nil
	if ts.removed {
		return
	}
	ts.idle = time.AfterFunc(ts.srv.cfg.traceIdleTimeout(), ts.expire)
}

// expire kills a session no client came back for.
func (ts *traceSession) expire() {
	ts.mu.Lock()
	if ts.attached != nil || ts.removed {
		ts.mu.Unlock()
		return
	}
	ts.removed = true
	ts.mu.Unlock()
	ts.srv.logf("trace session %q expired", ts.token)
	ts.remove()
}

// remove cancels the run and deletes the session from the server.
func (ts *traceSession) remove() {
	ts.cancel()
	ts.srv.mu.Lock()
	if ts.srv.traces[ts.token] == ts {
		delete(ts.srv.traces, ts.token)
	}
	ts.srv.mu.Unlock()
}

// terminate is the CANCEL path: the client abandons the session for good.
func (ts *traceSession) terminate() {
	ts.mu.Lock()
	ts.removed = true
	if ts.idle != nil {
		ts.idle.Stop()
		ts.idle = nil
	}
	ts.mu.Unlock()
	ts.remove()
}

// handleTraceStart serves one TRACE_START frame.
func (c *conn) handleTraceStart(start wire.TraceStart) error {
	if start.Session == "" || start.App == "" || start.System == "" {
		return c.send(wire.TypeError, wire.ErrorMsg{ID: start.ID, Code: wire.CodeBadReq, Msg: "session, system, and app are required"})
	}
	c.mu.Lock()
	if _, dup := c.jobs[start.ID]; dup {
		c.mu.Unlock()
		return c.send(wire.TypeError, wire.ErrorMsg{ID: start.ID, Code: wire.CodeBadReq, Msg: "job id already in use"})
	}
	c.mu.Unlock()

	ts, werr := c.srv.traceSession(c, start)
	if werr != nil {
		return c.send(wire.TypeError, *werr)
	}
	j := &job{id: start.ID, sess: ts, state: wire.StateRunning, cancel: func() {}}
	c.mu.Lock()
	c.jobs[start.ID] = j
	c.mu.Unlock()
	return c.send(wire.TypeTraceResume, wire.TraceResume{ID: start.ID, Pos: ts.resumePos()})
}

// handleTraceBlock serves one TRACE_BLOCK frame: decode, enqueue, ack. A
// decode fault is a job-level typed error (the client's trace bytes are
// wrong, not its framing), after which the session stays resumable from
// the last good position.
func (c *conn) handleTraceBlock(payload []byte) error {
	id, nextOff, frame, err := wire.SplitTraceBlock(payload)
	if err != nil {
		return err // protocol-level: malformed binary preamble
	}
	j := c.lookup(id)
	if j == nil || j.sess == nil {
		return c.send(wire.TypeError, wire.ErrorMsg{ID: id, Code: wire.CodeBadReq, Msg: "unknown trace job"})
	}
	pos, err := j.sess.push(frame, nextOff)
	if err != nil {
		return c.send(wire.TypeError, wire.ErrorMsg{ID: id, Code: wire.CodeTrace, Msg: err.Error()})
	}
	return c.send(wire.TypeTraceAck, wire.TraceAck{ID: id, Pos: pos})
}

// handleTraceEnd closes the session's stream and delivers the terminal
// frame from a waiter goroutine once the simulation finishes.
func (c *conn) handleTraceEnd(end wire.TraceEnd) error {
	j := c.lookup(end.ID)
	if j == nil || j.sess == nil {
		return c.send(wire.TypeError, wire.ErrorMsg{ID: end.ID, Code: wire.CodeBadReq, Msg: "unknown trace job"})
	}
	ts := j.sess
	ts.end()
	c.jwg.Add(1)
	go func() {
		defer c.jwg.Done()
		<-ts.done
		if ts.runErr != nil {
			j.setState(wire.StateFailed)
			code := wire.CodeFailed
			if errors.Is(ts.runErr, context.Canceled) {
				j.setState(wire.StateCanceled)
				code = wire.CodeCanceled
			}
			_ = c.send(wire.TypeError, wire.ErrorMsg{ID: j.id, Code: code, Msg: ts.runErr.Error()})
			return
		}
		// The same encode path as runJob: sim.Result JSON is deterministic,
		// so a resumed client receives byte-identical result bytes to a
		// local run of the identical instruction stream.
		payload, err := json.Marshal(wire.ResultMsg{ID: j.id, Result: ts.result})
		if err != nil {
			j.setState(wire.StateFailed)
			_ = c.send(wire.TypeError, wire.ErrorMsg{ID: j.id, Code: wire.CodeFailed, Msg: err.Error()})
			return
		}
		j.setState(wire.StateDone)
		_ = c.sendRaw(wire.TypeResult, payload)
	}()
	return nil
}
