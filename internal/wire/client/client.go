// Package client is the Go client for the moca-served wire protocol
// (internal/wire). moca-sim -remote is its primary user: it submits one
// run, streams progress, and decodes the byte-identical result the server
// fans out to every client joined to the same simulation.
package client

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"time"

	"moca/internal/sim"
	"moca/internal/trace"
	"moca/internal/wire"
)

// Options tune a Client; the zero value uses the defaults below.
type Options struct {
	// DialTimeout bounds the TCP connect and handshake (0 = 10s).
	DialTimeout time.Duration
	// FrameTimeout bounds each frame write and each read while a response
	// is due (0 = 10 minutes: a submit's next frame may be a full
	// simulation away).
	FrameTimeout time.Duration
	// MaxFrame bounds frames both ways (0 = wire.DefaultMaxFrame).
	MaxFrame uint32
}

func (o Options) dialTimeout() time.Duration {
	if o.DialTimeout == 0 {
		return 10 * time.Second
	}
	return o.DialTimeout
}

func (o Options) frameTimeout() time.Duration {
	if o.FrameTimeout == 0 {
		return 10 * time.Minute
	}
	return o.FrameTimeout
}

func (o Options) maxFrame() uint32 {
	if o.MaxFrame == 0 {
		return wire.DefaultMaxFrame
	}
	return o.MaxFrame
}

// Client is one wire-protocol connection. Not safe for concurrent use:
// drive it from one goroutine (run one job at a time), or open one client
// per concurrent job.
type Client struct {
	opts   Options
	nc     net.Conn
	br     *bufio.Reader
	nextID uint32
}

// RemoteError is a server-reported job or protocol failure.
type RemoteError struct {
	Code string
	Msg  string
}

func (e *RemoteError) Error() string { return fmt.Sprintf("wire: server: %s: %s", e.Code, e.Msg) }

// Dial connects and performs the HELLO handshake.
func Dial(addr string, opts Options) (*Client, error) {
	nc, err := net.DialTimeout("tcp", addr, opts.dialTimeout())
	if err != nil {
		return nil, err
	}
	c := &Client{opts: opts, nc: nc, br: bufio.NewReader(nc)}
	deadline := time.Now().Add(opts.dialTimeout())
	nc.SetDeadline(deadline)
	if err := wire.WriteMsg(nc, wire.TypeHello, wire.Hello{Version: wire.ProtocolVersion}, opts.maxFrame()); err != nil {
		nc.Close()
		return nil, err
	}
	typ, payload, err := wire.ReadFrame(c.br, opts.maxFrame())
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("wire: handshake: %w", err)
	}
	switch typ {
	case wire.TypeHelloOK:
		var ok wire.HelloOK
		if err := wire.Decode(payload, &ok); err != nil {
			nc.Close()
			return nil, err
		}
		if ok.Version != wire.ProtocolVersion {
			nc.Close()
			return nil, fmt.Errorf("%w: client %d, server %d", wire.ErrVersion, wire.ProtocolVersion, ok.Version)
		}
	case wire.TypeError:
		var em wire.ErrorMsg
		_ = wire.Decode(payload, &em)
		nc.Close()
		return nil, &RemoteError{Code: em.Code, Msg: em.Msg}
	default:
		nc.Close()
		return nil, fmt.Errorf("wire: handshake: unexpected frame type 0x%02x", typ)
	}
	nc.SetDeadline(time.Time{})
	return c, nil
}

// Close tears the connection down.
func (c *Client) Close() error { return c.nc.Close() }

func (c *Client) send(typ byte, v any) error {
	c.nc.SetWriteDeadline(time.Now().Add(c.opts.frameTimeout()))
	return wire.WriteMsg(c.nc, typ, v, c.opts.maxFrame())
}

// Job identifies a submitted run on this client.
type Job struct {
	ID uint32
	// Raw is the result document exactly as framed by the server
	// (byte-identical across all clients joined to the run); set once the
	// job completes.
	Raw []byte
}

// Submit registers a job with the server (assigning the connection's next
// job ID if spec.ID is zero) and waits for the ACCEPTED frame.
func (c *Client) Submit(spec wire.Submit) (*Job, error) {
	if spec.ID == 0 {
		c.nextID++
		spec.ID = c.nextID
	}
	if err := c.send(wire.TypeSubmit, spec); err != nil {
		return nil, err
	}
	typ, payload, err := c.readFrame()
	if err != nil {
		return nil, err
	}
	switch typ {
	case wire.TypeAccepted:
		var acc wire.Accepted
		if err := wire.Decode(payload, &acc); err != nil {
			return nil, err
		}
		if acc.ID != spec.ID {
			return nil, fmt.Errorf("wire: ACCEPTED for job %d, want %d", acc.ID, spec.ID)
		}
		return &Job{ID: spec.ID}, nil
	case wire.TypeError:
		var em wire.ErrorMsg
		_ = wire.Decode(payload, &em)
		return nil, &RemoteError{Code: em.Code, Msg: em.Msg}
	default:
		return nil, fmt.Errorf("wire: unexpected frame type 0x%02x awaiting ACCEPTED", typ)
	}
}

// Stream subscribes to the job's progress ticks.
func (c *Client) Stream(j *Job) error {
	return c.send(wire.TypeStream, wire.StreamReq{ID: j.ID})
}

// Cancel abandons the job. The server answers with the job's terminal
// ERROR frame, which Wait surfaces as a canceled RemoteError.
func (c *Client) Cancel(j *Job) error {
	return c.send(wire.TypeCancel, wire.Cancel{ID: j.ID})
}

// Wait reads frames until the job terminates, invoking onProgress (if
// non-nil) for PROGRESS ticks and onSnapshot for live metric SNAPSHOT
// frames. If ctx fires first, Wait sends CANCEL and keeps reading until
// the server confirms with the job's terminal frame, then returns
// ctx.Err(). On success the decoded result is returned and j.Raw holds
// the exact frame bytes.
func (c *Client) Wait(ctx context.Context, j *Job, onProgress func(done, total uint64), onSnapshot func(obs []byte)) (*sim.Result, error) {
	// Fire the CANCEL from a watcher so it goes out even while this
	// goroutine is blocked mid-read. The watcher is Wait's only writer.
	stopWatch := make(chan struct{})
	defer close(stopWatch)
	//moca:gorountracked exits when stopWatch closes on Wait's return; bounded by this call
	go func() {
		select {
		case <-ctx.Done():
			_ = c.Cancel(j)
		case <-stopWatch:
		}
	}()
	for {
		typ, payload, err := c.readFrame()
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, err
		}
		switch typ {
		case wire.TypeProgress:
			var p wire.Progress
			if err := wire.Decode(payload, &p); err != nil {
				return nil, err
			}
			if p.ID == j.ID && onProgress != nil {
				onProgress(p.Done, p.Total)
			}
		case wire.TypeSnapshot:
			var s wire.Snapshot
			if err := wire.Decode(payload, &s); err != nil {
				return nil, err
			}
			if s.ID == j.ID && onSnapshot != nil {
				onSnapshot(s.Obs)
			}
		case wire.TypeJobState:
			// Stale STATUS answer; ignore.
		case wire.TypeResult:
			var rm wire.ResultMsg
			if err := wire.Decode(payload, &rm); err != nil {
				return nil, err
			}
			if rm.ID != j.ID {
				return nil, fmt.Errorf("wire: RESULT for job %d, want %d", rm.ID, j.ID)
			}
			j.Raw = []byte(rm.Result)
			res := new(sim.Result)
			if err := res.UnmarshalJSON(j.Raw); err != nil {
				return nil, fmt.Errorf("wire: decoding result: %w", err)
			}
			return res, nil
		case wire.TypeError:
			var em wire.ErrorMsg
			if err := wire.Decode(payload, &em); err != nil {
				return nil, err
			}
			if em.ID != j.ID && em.ID != 0 {
				continue // another job on this connection; not ours
			}
			if em.Code == wire.CodeCanceled {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				return nil, context.Canceled
			}
			return nil, &RemoteError{Code: em.Code, Msg: em.Msg}
		default:
			return nil, fmt.Errorf("wire: unexpected frame type 0x%02x", typ)
		}
	}
}

// Trace streaming: push a local v2 block trace into a server-side
// simulation, block by block, with resume-after-reconnect. The protocol
// is synchronous per block (push TRACE_BLOCK, read TRACE_ACK), so TCP
// backpressure is the flow control and the last acknowledged position is
// always exact: after a disconnect, TraceStart on a fresh connection with
// the same session token returns precisely where to resume.

// TraceStart opens (or re-attaches to) a trace-streaming session and
// returns the job plus the position to push from — zero for a fresh
// session, the last acknowledged block boundary after a reconnect.
func (c *Client) TraceStart(spec wire.TraceStart) (*Job, trace.Position, error) {
	if spec.ID == 0 {
		c.nextID++
		spec.ID = c.nextID
	}
	if err := c.send(wire.TypeTraceStart, spec); err != nil {
		return nil, trace.Position{}, err
	}
	typ, payload, err := c.readFrame()
	if err != nil {
		return nil, trace.Position{}, err
	}
	switch typ {
	case wire.TypeTraceResume:
		var tr wire.TraceResume
		if err := wire.Decode(payload, &tr); err != nil {
			return nil, trace.Position{}, err
		}
		if tr.ID != spec.ID {
			return nil, trace.Position{}, fmt.Errorf("wire: TRACE_RESUME for job %d, want %d", tr.ID, spec.ID)
		}
		return &Job{ID: spec.ID}, trace.Position{ByteOff: tr.Pos.ByteOff, Seq: tr.Pos.Seq}, nil
	case wire.TypeError:
		var em wire.ErrorMsg
		_ = wire.Decode(payload, &em)
		return nil, trace.Position{}, &RemoteError{Code: em.Code, Msg: em.Msg}
	default:
		return nil, trace.Position{}, fmt.Errorf("wire: unexpected frame type 0x%02x awaiting TRACE_RESUME", typ)
	}
}

// PushTraceBlock ships one raw block frame (trace.BlockScanner.Frame) and
// waits for its acknowledgment. nextOff is the local byte offset of the
// boundary after this block (trace.BlockScanner.NextPos().ByteOff); the
// returned position echoes it and is durable on the server.
func (c *Client) PushTraceBlock(j *Job, nextOff uint64, frame []byte) (trace.Position, error) {
	payload := wire.AppendTraceBlock(make([]byte, 0, 12+len(frame)), j.ID, nextOff, frame)
	c.nc.SetWriteDeadline(time.Now().Add(c.opts.frameTimeout()))
	if err := wire.WriteFrame(c.nc, wire.TypeTraceBlock, payload, c.opts.maxFrame()); err != nil {
		return trace.Position{}, err
	}
	typ, resp, err := c.readFrame()
	if err != nil {
		return trace.Position{}, err
	}
	switch typ {
	case wire.TypeTraceAck:
		var ack wire.TraceAck
		if err := wire.Decode(resp, &ack); err != nil {
			return trace.Position{}, err
		}
		if ack.ID != j.ID {
			return trace.Position{}, fmt.Errorf("wire: TRACE_ACK for job %d, want %d", ack.ID, j.ID)
		}
		return trace.Position{ByteOff: ack.Pos.ByteOff, Seq: ack.Pos.Seq}, nil
	case wire.TypeError:
		var em wire.ErrorMsg
		_ = wire.Decode(resp, &em)
		return trace.Position{}, &RemoteError{Code: em.Code, Msg: em.Msg}
	default:
		return trace.Position{}, fmt.Errorf("wire: unexpected frame type 0x%02x awaiting TRACE_ACK", typ)
	}
}

// PushTrace streams every block of a v2 trace from rs, starting at the
// resume position from (as returned by TraceStart). onAck, if non-nil,
// observes each acknowledged position. It returns the final acknowledged
// position; the caller finishes with TraceEnd.
func (c *Client) PushTrace(j *Job, rs io.ReadSeeker, from trace.Position, onAck func(trace.Position)) (trace.Position, error) {
	sc, err := trace.NewBlockScannerAt(rs, from)
	if err != nil {
		return from, err
	}
	last := from
	for sc.Scan() {
		ack, err := c.PushTraceBlock(j, sc.NextPos().ByteOff, sc.Frame())
		if err != nil {
			return last, err
		}
		last = ack
		if onAck != nil {
			onAck(ack)
		}
	}
	if err := sc.Err(); err != nil {
		return last, err
	}
	return last, nil
}

// TraceEnd declares the trace complete and waits for the simulation's
// terminal frame, returning the decoded result (j.Raw holds the exact
// bytes).
func (c *Client) TraceEnd(ctx context.Context, j *Job) (*sim.Result, error) {
	if err := c.send(wire.TypeTraceEnd, wire.TraceEnd{ID: j.ID}); err != nil {
		return nil, err
	}
	return c.Wait(ctx, j, nil, nil)
}

// Run is the one-shot convenience: Submit, optionally Stream, Wait.
func (c *Client) Run(ctx context.Context, spec wire.Submit, onProgress func(done, total uint64)) (*sim.Result, *Job, error) {
	j, err := c.Submit(spec)
	if err != nil {
		return nil, nil, err
	}
	if onProgress != nil {
		if err := c.Stream(j); err != nil {
			return nil, j, err
		}
	}
	res, err := c.Wait(ctx, j, onProgress, nil)
	return res, j, err
}

// readFrame applies the frame deadline. When waiting under a context,
// Wait relies on the server's terminal frame to end the read; the
// deadline is the backstop against a hung server.
func (c *Client) readFrame() (byte, []byte, error) {
	c.nc.SetReadDeadline(time.Now().Add(c.opts.frameTimeout()))
	return wire.ReadFrame(c.br, c.opts.maxFrame())
}
