package cmdutil

import (
	"context"
	"syscall"
	"testing"
	"time"
)

// TestSecondSignalForcesExit is the regression test for the swallowed
// second Ctrl-C: the first SIGINT must cancel the context (graceful
// drain), and a second SIGINT during that drain must hit the exit seam
// with the distinct force-exit status instead of disappearing into a
// dead registration.
func TestSecondSignalForcesExit(t *testing.T) {
	exited := make(chan int, 1)
	exit = func(code int) { exited <- code }
	defer func() { exit = func(int) {} }()

	ctx, stop := NotifyContext(context.Background(), "cmdutil-test")
	defer stop()

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("first SIGINT did not cancel the context")
	}
	select {
	case code := <-exited:
		t.Fatalf("first SIGINT force-exited with %d; it must drain gracefully", code)
	default:
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exited:
		if code != ForceExitCode {
			t.Fatalf("force-exit status = %d, want %d", code, ForceExitCode)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second SIGINT during shutdown was swallowed")
	}
}

// TestStopReleasesWithoutExit: once stop is called the watcher winds down
// and a prior parent cancellation never trips the escape hatch.
func TestStopReleasesWithoutExit(t *testing.T) {
	exited := make(chan int, 1)
	exit = func(code int) { exited <- code }
	defer func() { exit = func(int) {} }()

	parent, cancel := context.WithCancel(context.Background())
	ctx, stop := NotifyContext(parent, "cmdutil-test")
	cancel()
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("parent cancellation did not propagate")
	}
	stop()
	stop() // idempotent
	select {
	case code := <-exited:
		t.Fatalf("stop tripped the exit seam with status %d", code)
	case <-time.After(50 * time.Millisecond):
	}
}
