// Package cmdutil holds the small pieces the moca commands share: signal
// handling with a force-exit escape hatch.
package cmdutil

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// ForceExitCode is the status a second interrupt exits with: 128+SIGINT,
// the conventional "killed by signal" code, distinct from the commands'
// ordinary failure status 1.
const ForceExitCode = 130

// exit is an os.Exit seam so tests can observe the force-exit instead of
// dying.
var exit = os.Exit

// NotifyContext is signal.NotifyContext with a second-chance escape hatch.
// The first SIGINT/SIGTERM cancels the returned context so the command
// can drain cleanly (flush traces, spill the run cache, stop accepting
// connections); with plain signal.NotifyContext any further signal during
// that drain is swallowed, leaving the user unable to interrupt a stuck
// flush. Here a second signal prints a diagnostic and force-exits with
// ForceExitCode immediately.
//
// The returned stop function releases the signal registration and the
// watcher; like signal.NotifyContext it must be deferred before any
// deferred cleanup so the escape hatch stays armed while cleanups run.
func NotifyContext(parent context.Context, name string) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	stopped := make(chan struct{})
	go func() {
		defer signal.Stop(ch)
		select {
		case sig := <-ch:
			fmt.Fprintf(os.Stderr, "%s: %v: shutting down (interrupt again to force exit)\n", name, sig)
			cancel()
		case <-ctx.Done():
			// Parent canceled or stop called: shutdown began elsewhere,
			// keep watching so an interrupt during the drain still works.
		case <-stopped:
			return
		}
		select {
		case sig := <-ch:
			fmt.Fprintf(os.Stderr, "%s: second %v during shutdown: forcing exit\n", name, sig)
			exit(ForceExitCode)
		case <-stopped:
		}
	}()
	var once sync.Once
	stop := func() {
		once.Do(func() {
			close(stopped)
			cancel()
		})
	}
	return ctx, stop
}
