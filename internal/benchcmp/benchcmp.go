// Package benchcmp diffs trajectory entries of the repo's throughput
// benchmark ledger (BENCH_throughput.json) and formats the speedup line
// quoted in CHANGES.md and the README's performance table.
package benchcmp

import (
	"encoding/json"
	"fmt"
	"os"
)

// Entry is one measured point of the BenchmarkSimulatorThroughput
// trajectory.
type Entry struct {
	Commit      string `json:"commit"`
	Date        string `json:"date"`
	NsPerOp     int64  `json:"ns_per_op"`
	Instrs      int64  `json:"instructions_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	Note        string `json:"note"`
}

// File is the ledger layout: a named benchmark with its measured
// trajectory (the optional "micro" section is ignored here).
type File struct {
	Benchmark  string  `json:"benchmark"`
	Trajectory []Entry `json:"trajectory"`
}

// Load reads and validates a ledger file.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.Trajectory) == 0 {
		return nil, fmt.Errorf("%s: empty trajectory", path)
	}
	for i, e := range f.Trajectory {
		if e.NsPerOp <= 0 {
			return nil, fmt.Errorf("%s: trajectory[%d] (%s) has ns_per_op %d", path, i, e.Commit, e.NsPerOp)
		}
	}
	return &f, nil
}

// Last returns the newest trajectory entry.
func (f *File) Last() Entry { return f.Trajectory[len(f.Trajectory)-1] }

// Speedup formats the old→new delta as the one-line summary used in
// CHANGES.md, e.g. "1.94x instructions/sec, 96.4% fewer allocs/op".
// Regressions read "0.87x instructions/sec, 12.0% more allocs/op".
func Speedup(old, new Entry) string {
	ratio := float64(old.NsPerOp) / float64(new.NsPerOp)
	line := fmt.Sprintf("%.2fx instructions/sec", ratio)
	switch {
	case old.AllocsPerOp <= 0:
		// Nothing meaningful to compare against.
	case new.AllocsPerOp <= old.AllocsPerOp:
		pct := 100 * float64(old.AllocsPerOp-new.AllocsPerOp) / float64(old.AllocsPerOp)
		line += fmt.Sprintf(", %.1f%% fewer allocs/op", pct)
	default:
		pct := 100 * float64(new.AllocsPerOp-old.AllocsPerOp) / float64(old.AllocsPerOp)
		line += fmt.Sprintf(", %.1f%% more allocs/op", pct)
	}
	return line
}

// Compare diffs two ledger entries and returns a multi-line report: one
// row per metric plus the Speedup summary line. With one path the last
// two trajectory entries of that file are compared; with two paths the
// last entry of each.
func Compare(paths []string) (string, error) {
	var old, new Entry
	switch len(paths) {
	case 1:
		f, err := Load(paths[0])
		if err != nil {
			return "", err
		}
		if len(f.Trajectory) < 2 {
			return "", fmt.Errorf("%s: need at least 2 trajectory entries to compare", paths[0])
		}
		old, new = f.Trajectory[len(f.Trajectory)-2], f.Last()
	case 2:
		of, err := Load(paths[0])
		if err != nil {
			return "", err
		}
		nf, err := Load(paths[1])
		if err != nil {
			return "", err
		}
		if of.Benchmark != nf.Benchmark {
			return "", fmt.Errorf("benchmark mismatch: %q vs %q", of.Benchmark, nf.Benchmark)
		}
		old, new = of.Last(), nf.Last()
	default:
		return "", fmt.Errorf("benchcompare takes 1 or 2 ledger files, got %d", len(paths))
	}
	out := fmt.Sprintf("old: %s (%s)\nnew: %s (%s)\n", old.Commit, old.Date, new.Commit, new.Date)
	out += fmt.Sprintf("%-12s %14d → %14d ns/op\n", "time", old.NsPerOp, new.NsPerOp)
	out += fmt.Sprintf("%-12s %14d → %14d B/op\n", "bytes", old.BytesPerOp, new.BytesPerOp)
	out += fmt.Sprintf("%-12s %14d → %14d allocs/op\n", "allocs", old.AllocsPerOp, new.AllocsPerOp)
	out += Speedup(old, new) + "\n"
	return out, nil
}
