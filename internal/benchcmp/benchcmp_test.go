package benchcmp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeLedger(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const twoPoint = `{
  "benchmark": "BenchmarkSimulatorThroughput",
  "trajectory": [
    {"commit": "aaa", "date": "2026-08-01", "ns_per_op": 110326132, "allocs_per_op": 746593},
    {"commit": "bbb", "date": "2026-08-05", "ns_per_op": 56787207, "allocs_per_op": 26715}
  ]
}`

func TestSpeedupLine(t *testing.T) {
	old := Entry{NsPerOp: 110326132, AllocsPerOp: 746593}
	new := Entry{NsPerOp: 56787207, AllocsPerOp: 26715}
	got := Speedup(old, new)
	// The exact line quoted in CHANGES.md for the PR 2 engine rewrite.
	if got != "1.94x instructions/sec, 96.4% fewer allocs/op" {
		t.Errorf("Speedup = %q", got)
	}
}

func TestSpeedupRegressionWording(t *testing.T) {
	old := Entry{NsPerOp: 100, AllocsPerOp: 100}
	new := Entry{NsPerOp: 115, AllocsPerOp: 112}
	got := Speedup(old, new)
	if !strings.Contains(got, "0.87x") || !strings.Contains(got, "12.0% more allocs/op") {
		t.Errorf("regression line = %q", got)
	}
}

func TestCompareSingleFile(t *testing.T) {
	path := writeLedger(t, "bench.json", twoPoint)
	out, err := Compare([]string{path})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"old: aaa", "new: bbb", "1.94x instructions/sec"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestCompareTwoFiles(t *testing.T) {
	oldPath := writeLedger(t, "old.json", `{
  "benchmark": "BenchmarkSimulatorThroughput",
  "trajectory": [{"commit": "aaa", "ns_per_op": 200, "allocs_per_op": 50}]
}`)
	newPath := writeLedger(t, "new.json", `{
  "benchmark": "BenchmarkSimulatorThroughput",
  "trajectory": [{"commit": "bbb", "ns_per_op": 100, "allocs_per_op": 50}]
}`)
	out, err := Compare([]string{oldPath, newPath})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "2.00x instructions/sec") {
		t.Errorf("report = %q", out)
	}
}

func TestCompareRejectsMismatchedBenchmarks(t *testing.T) {
	a := writeLedger(t, "a.json", `{"benchmark": "X", "trajectory": [{"commit": "a", "ns_per_op": 1}]}`)
	b := writeLedger(t, "b.json", `{"benchmark": "Y", "trajectory": [{"commit": "b", "ns_per_op": 1}]}`)
	if _, err := Compare([]string{a, b}); err == nil {
		t.Fatal("mismatched benchmark names not rejected")
	}
}

func TestCompareSingleEntryFileErrors(t *testing.T) {
	path := writeLedger(t, "one.json", `{"benchmark": "X", "trajectory": [{"commit": "a", "ns_per_op": 1}]}`)
	if _, err := Compare([]string{path}); err == nil {
		t.Fatal("single-entry file accepted for self-comparison")
	}
}

func TestLoadValidation(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file not reported")
	}
	empty := writeLedger(t, "empty.json", `{"benchmark": "X", "trajectory": []}`)
	if _, err := Load(empty); err == nil {
		t.Error("empty trajectory not rejected")
	}
	bad := writeLedger(t, "bad.json", `{"benchmark": "X", "trajectory": [{"commit": "a", "ns_per_op": 0}]}`)
	if _, err := Load(bad); err == nil {
		t.Error("zero ns_per_op not rejected")
	}
}

// TestRepoLedgerLoads guards the checked-in ledger itself: it must parse
// and keep a monotone history of real measurements.
func TestRepoLedgerLoads(t *testing.T) {
	f, err := Load("../../BENCH_throughput.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Trajectory) < 3 {
		t.Fatalf("ledger has %d entries, want ≥ 3", len(f.Trajectory))
	}
	last, prev := f.Last(), f.Trajectory[len(f.Trajectory)-2]
	if last.NsPerOp >= prev.NsPerOp {
		t.Errorf("newest entry %s (%d ns/op) does not improve on %s (%d ns/op)",
			last.Commit, last.NsPerOp, prev.Commit, prev.NsPerOp)
	}
}
