package obs

import (
	"fmt"
	"sort"

	"moca/internal/stats"
)

// Table renders the snapshot as an aligned per-system metrics table
// (counters, then gauges, then histogram summaries, each sorted by name).
func (s *Snapshot) Table(title string) *stats.Table {
	t := stats.NewTable(title, "metric", "value")
	if s == nil {
		t.AddNote("observability disabled (run with metrics enabled)")
		return t
	}
	for _, name := range s.CounterNames() {
		t.AddRow(name, fmt.Sprintf("%d", s.Counters[name]))
	}
	for _, name := range sortedKeys(s.Gauges) {
		t.AddRow(name, fmt.Sprintf("%d", s.Gauges[name]))
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		mean := 0.0
		if h.Count > 0 {
			mean = float64(h.Sum) / float64(h.Count)
		}
		t.AddRow(name, fmt.Sprintf("n=%d mean=%s", h.Count, stats.F(mean)))
	}
	return t
}

func sortedKeys[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	//moca:unordered keys are collected then sorted before use
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
