package obs

import (
	"encoding/json"
	"testing"
)

// FuzzSnapshotJSONRoundTrip checks the snapshot JSON codec: any bytes that
// decode into a Snapshot must re-encode and decode back to an equal value,
// and the codec must never panic. This is the same schema the golden-run
// regression files and the -metrics CLI output use.
func FuzzSnapshotJSONRoundTrip(f *testing.F) {
	f.Add([]byte(`{"counters":{"event.executed":12,"mem.reads":3}}`))
	f.Add([]byte(`{"counters":{},"gauges":{"event.max_queue_depth":-1}}`))
	f.Add([]byte(`{"counters":{"a":1},"histograms":{"lat":{"bounds":[10,100],"counts":[1,0,2],"sum":250,"count":3}}}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"counters":{"x":18446744073709551615}}`)) // max uint64
	f.Fuzz(func(t *testing.T, data []byte) {
		var s Snapshot
		if err := json.Unmarshal(data, &s); err != nil {
			return // not a snapshot; nothing to check
		}
		out, err := json.Marshal(&s)
		if err != nil {
			t.Fatalf("re-encoding decoded snapshot failed: %v", err)
		}
		var back Snapshot
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatalf("decoding re-encoded snapshot failed: %v\n%s", err, out)
		}
		if !s.Equal(&back) {
			t.Fatalf("round trip changed snapshot:\nin:  %s\nout: %s", data, out)
		}
		out2, err := json.Marshal(&back)
		if err != nil {
			t.Fatal(err)
		}
		if string(out) != string(out2) {
			t.Fatalf("encoding not deterministic:\n%s\n%s", out, out2)
		}
	})
}

// FuzzTraceEventJSON checks the run-trace event codec the -trace-out flag
// emits: decodable bytes must round-trip without loss or panic.
func FuzzTraceEventJSON(f *testing.F) {
	f.Add([]byte(`{"at_ps":100,"kind":"page-placed","core":1,"addr":4096,"aux":2}`))
	f.Add([]byte(`{"at_ps":0,"kind":"row-conflict","unit":"DDR3-m0-ch0"}`))
	f.Add([]byte(`{"at_ps":-5,"kind":5}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var ev Event
		if err := json.Unmarshal(data, &ev); err != nil {
			return
		}
		if ev.Kind < PagePlaced || ev.Kind > MigrationTriggered {
			// Out-of-range kinds (reachable via the numeric form) encode
			// to a name the decoder rejects; only decoding must not panic.
			return
		}
		out, err := json.Marshal(ev)
		if err != nil {
			t.Fatalf("re-encoding decoded event failed: %v", err)
		}
		var back Event
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatalf("decoding re-encoded event failed: %v\n%s", err, out)
		}
		if back != ev {
			t.Fatalf("round trip changed event: %+v -> %+v", ev, back)
		}
	})
}
