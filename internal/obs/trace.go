package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// EventKind discriminates run-trace events.
type EventKind uint8

const (
	// PagePlaced: the OS mapped a faulting page to a frame.
	PagePlaced EventKind = iota + 1
	// FallbackTaken: a page missed its first-choice module.
	FallbackTaken
	// RowConflict: a memory request had to precharge an open row first.
	RowConflict
	// MSHRFull: an LLC miss stalled waiting for a free MSHR.
	MSHRFull
	// MigrationTriggered: the hot-page engine moved a page.
	MigrationTriggered
)

func (k EventKind) String() string {
	switch k {
	case PagePlaced:
		return "page-placed"
	case FallbackTaken:
		return "fallback-taken"
	case RowConflict:
		return "row-conflict"
	case MSHRFull:
		return "mshr-full"
	case MigrationTriggered:
		return "migration-triggered"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// MarshalJSON renders the kind as its string name.
func (k EventKind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON accepts either the string name or a bare number.
func (k *EventKind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		for cand := PagePlaced; cand <= MigrationTriggered; cand++ {
			if cand.String() == s {
				*k = cand
				return nil
			}
		}
		return fmt.Errorf("obs: unknown event kind %q", s)
	}
	var n uint8
	if err := json.Unmarshal(data, &n); err != nil {
		return fmt.Errorf("obs: bad event kind %s", data)
	}
	*k = EventKind(n)
	return nil
}

// Event is one structured run-trace record.
type Event struct {
	// At is the simulation timestamp in picoseconds.
	At int64 `json:"at_ps"`
	// Kind discriminates the record.
	Kind EventKind `json:"kind"`
	// Unit names the emitting component (channel name, "core3", "os").
	Unit string `json:"unit,omitempty"`
	// Core is the involved core/process, -1 when not applicable.
	Core int `json:"core,omitempty"`
	// Addr is the involved address (physical line, virtual page number, ...).
	Addr uint64 `json:"addr,omitempty"`
	// Aux carries a kind-specific detail: target module for PagePlaced and
	// MigrationTriggered, fallback chain position for FallbackTaken.
	Aux uint64 `json:"aux,omitempty"`
}

// Trace is a bounded, concurrency-safe sink of run-trace events. Once the
// cap is reached further events are counted as dropped rather than stored,
// so a pathological run cannot exhaust memory.
type Trace struct {
	mu      sync.Mutex
	max     int
	events  []Event
	dropped uint64
}

// DefaultTraceCap bounds a trace sink when no explicit cap is given.
const DefaultTraceCap = 1 << 16

// NewTrace returns a sink retaining at most max events (<= 0: DefaultTraceCap).
func NewTrace(max int) *Trace {
	if max <= 0 {
		max = DefaultTraceCap
	}
	return &Trace{max: max}
}

// Emit appends one event. No-op on a nil trace.
func (t *Trace) Emit(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.events) >= t.max {
		t.dropped++
	} else {
		t.events = append(t.events, ev)
	}
	t.mu.Unlock()
}

// Len returns the number of retained events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Cap returns the retention cap.
func (t *Trace) Cap() int {
	if t == nil {
		return 0
	}
	return t.max
}

// AddDropped folds n externally-discarded events into the drop count —
// used when merging staged sub-traces whose own caps fired.
func (t *Trace) AddDropped(n uint64) {
	if t == nil || n == 0 {
		return
	}
	t.mu.Lock()
	t.dropped += n
	t.mu.Unlock()
}

// Reset discards all retained events and the drop count.
func (t *Trace) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = t.events[:0]
	t.dropped = 0
	t.mu.Unlock()
}

// Dropped returns the number of events discarded past the cap.
func (t *Trace) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Events returns a copy of the retained events in emission order.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// WriteJSON streams the retained events to w as JSON lines (one event per
// line), a format both greppable and trivially machine-readable.
func (t *Trace) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, ev := range t.Events() {
		data, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if _, err := bw.Write(data); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
