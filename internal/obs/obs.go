// Package obs is the simulator's observability layer: a lightweight,
// zero-dependency metrics registry (named counters, gauges, and fixed-bucket
// histograms) plus an optional structured run-trace sink that components
// emit typed events into (page placed, fallback taken, row-buffer conflict,
// MSHR full, migration triggered).
//
// Instrumentation is off by default and nil-safe throughout: every method on
// a nil *Counter, *Gauge, *Histogram, *Registry, or *Trace is a no-op, so a
// component holds plain instrument pointers and the hot simulation path pays
// only a nil-check branch when observability is disabled.
//
// Instruments use atomic operations and the registry and trace sink are
// mutex-protected, so one registry may be shared across the experiment
// runner's concurrent simulations.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric.
type Counter struct{ v atomic.Uint64 }

// Inc adds one. No-op on a nil counter.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. No-op on a nil counter.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) reset() { c.v.Store(0) }

// Gauge is an instantaneous int64 metric.
type Gauge struct{ v atomic.Int64 }

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// RecordMax raises the gauge to v if v exceeds the current value — the
// high-watermark idiom used for queue depths and MSHR occupancy.
func (g *Gauge) RecordMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

func (g *Gauge) reset() { g.v.Store(0) }

// Histogram is a fixed-bucket distribution of uint64 samples. A value v
// lands in the first bucket whose upper bound is >= v; values above every
// bound land in the implicit overflow bucket.
type Histogram struct {
	bounds []uint64 // sorted ascending, immutable after construction
	counts []atomic.Uint64
	sum    atomic.Uint64
	n      atomic.Uint64
}

// Observe records one sample. No-op on a nil histogram.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of samples observed (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Mean returns the arithmetic mean of observed samples (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil || h.n.Load() == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(h.n.Load())
}

func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.sum.Store(0)
	h.n.Store(0)
}

// Registry holds named instruments. The zero value of *Registry (nil) is a
// valid disabled registry: every lookup returns a nil instrument.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns (registering on first use) the named counter, or nil when
// the registry itself is nil.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (registering on first use) the named gauge, or nil when the
// registry itself is nil.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (registering on first use) the named histogram with the
// given sorted upper bounds, or nil when the registry itself is nil. The
// bounds of the first registration win; later callers share the instrument.
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		b := append([]uint64(nil), bounds...)
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		h = &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
		r.histograms[name] = h
	}
	return h
}

// Reset zeroes every registered instrument in place (components keep their
// pointers). Used to exclude warm-up, mirroring the simulator's stat resets.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	//moca:unordered resets each instrument in place; order-free
	for _, c := range r.counters {
		c.reset()
	}
	//moca:unordered resets each instrument in place; order-free
	for _, g := range r.gauges {
		g.reset()
	}
	//moca:unordered resets each instrument in place; order-free
	for _, h := range r.histograms {
		h.reset()
	}
}

// HistogramSnapshot is one histogram's frozen state. Counts has one entry
// per bound plus a trailing overflow bucket.
type HistogramSnapshot struct {
	Bounds []uint64 `json:"bounds"`
	Counts []uint64 `json:"counts"`
	Sum    uint64   `json:"sum"`
	Count  uint64   `json:"count"`
}

// Snapshot is a frozen, JSON-serializable view of a registry. Map keys
// marshal in sorted order, so identical registries produce byte-identical
// JSON — the property the golden tests rely on.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot freezes the registry's current state (nil registry → nil).
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{Counters: make(map[string]uint64, len(r.counters))}
	//moca:unordered map-to-map copy; Snapshot JSON sorts keys on marshal
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		//moca:unordered map-to-map copy; Snapshot JSON sorts keys on marshal
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		//moca:unordered map-to-map copy; Snapshot JSON sorts keys on marshal
		for name, h := range r.histograms {
			hs := HistogramSnapshot{
				Bounds: append([]uint64(nil), h.bounds...),
				Counts: make([]uint64, len(h.counts)),
				Sum:    h.sum.Load(),
				Count:  h.n.Load(),
			}
			for i := range h.counts {
				hs.Counts[i] = h.counts[i].Load()
			}
			s.Histograms[name] = hs
		}
	}
	return s
}

// Equal reports whether two snapshots carry identical values. Nil and empty
// maps compare equal.
func (s *Snapshot) Equal(o *Snapshot) bool {
	if s == nil || o == nil {
		return (s == nil || s.empty()) && (o == nil || o.empty())
	}
	if len(s.Counters) != len(o.Counters) || len(s.Gauges) != len(o.Gauges) ||
		len(s.Histograms) != len(o.Histograms) {
		return false
	}
	//moca:unordered membership/value comparison; order-free
	for k, v := range s.Counters {
		if ov, ok := o.Counters[k]; !ok || ov != v {
			return false
		}
	}
	//moca:unordered membership/value comparison; order-free
	for k, v := range s.Gauges {
		if ov, ok := o.Gauges[k]; !ok || ov != v {
			return false
		}
	}
	//moca:unordered membership/value comparison; order-free
	for k, v := range s.Histograms {
		ov, ok := o.Histograms[k]
		if !ok || !v.equal(ov) {
			return false
		}
	}
	return true
}

func (s *Snapshot) empty() bool {
	return len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Histograms) == 0
}

func (h HistogramSnapshot) equal(o HistogramSnapshot) bool {
	if h.Sum != o.Sum || h.Count != o.Count ||
		len(h.Bounds) != len(o.Bounds) || len(h.Counts) != len(o.Counts) {
		return false
	}
	for i, b := range h.Bounds {
		if o.Bounds[i] != b {
			return false
		}
	}
	for i, c := range h.Counts {
		if o.Counts[i] != c {
			return false
		}
	}
	return true
}

// Merge returns the element-wise aggregate of the given snapshots:
// counters and histogram buckets add, gauges take the maximum (they record
// high-watermarks). Nil snapshots are skipped; merging none returns nil.
// Histograms with mismatched bounds keep the first snapshot's shape and
// fold later ones into sum/count only.
func Merge(snaps ...*Snapshot) *Snapshot {
	var out *Snapshot
	for _, s := range snaps {
		if s == nil {
			continue
		}
		if out == nil {
			out = &Snapshot{Counters: map[string]uint64{}}
		}
		//moca:unordered commutative per-key fold into the aggregate; order-free
		for k, v := range s.Counters {
			out.Counters[k] += v
		}
		//moca:unordered commutative per-key fold into the aggregate; order-free
		for k, v := range s.Gauges {
			if out.Gauges == nil {
				out.Gauges = map[string]int64{}
			}
			if v > out.Gauges[k] {
				out.Gauges[k] = v
			}
		}
		//moca:unordered commutative per-key fold into the aggregate; order-free
		for k, v := range s.Histograms {
			if out.Histograms == nil {
				out.Histograms = map[string]HistogramSnapshot{}
			}
			cur, ok := out.Histograms[k]
			if !ok {
				cur = HistogramSnapshot{
					Bounds: append([]uint64(nil), v.Bounds...),
					Counts: append([]uint64(nil), v.Counts...),
					Sum:    v.Sum, Count: v.Count,
				}
				out.Histograms[k] = cur
				continue
			}
			cur.Sum += v.Sum
			cur.Count += v.Count
			if len(cur.Counts) == len(v.Counts) {
				for i := range cur.Counts {
					cur.Counts[i] += v.Counts[i]
				}
			}
			out.Histograms[k] = cur
		}
	}
	return out
}

// CounterNames returns the snapshot's counter names, sorted.
func (s *Snapshot) CounterNames() []string {
	if s == nil {
		return nil
	}
	names := make([]string, 0, len(s.Counters))
	//moca:unordered keys are collected then sorted before use
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Options selects what a simulation observes. The zero value disables all
// instrumentation (the default: the hot path pays only nil checks).
type Options struct {
	// Metrics enables the metrics registry; the run's Result then carries
	// an obs.Snapshot.
	Metrics bool
	// Trace, when non-nil, receives typed run-trace events.
	Trace *Trace
}

// Enabled reports whether any instrumentation is requested.
func (o Options) Enabled() bool { return o.Metrics || o.Trace != nil }
