package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilSafety(t *testing.T) {
	// Every instrument and the registry must be fully usable as nil: this
	// is what keeps disabled instrumentation to a branch on the hot path.
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter value")
	}
	var g *Gauge
	g.Set(3)
	g.RecordMax(9)
	if g.Value() != 0 {
		t.Error("nil gauge value")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Mean() != 0 {
		t.Error("nil histogram observed")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("y") != nil || r.Histogram("z", nil) != nil {
		t.Error("nil registry returned live instruments")
	}
	r.Reset()
	if r.Snapshot() != nil {
		t.Error("nil registry snapshot")
	}
	var tr *Trace
	tr.Emit(Event{Kind: PagePlaced})
	if tr.Len() != 0 || tr.Events() != nil || tr.Dropped() != 0 {
		t.Error("nil trace accepted events")
	}
}

func TestRegistryInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	c.Inc()
	c.Add(2)
	if got := r.Counter("a").Value(); got != 3 {
		t.Errorf("counter = %d, want 3", got)
	}
	if r.Counter("a") != c {
		t.Error("counter not shared by name")
	}

	g := r.Gauge("depth")
	g.RecordMax(4)
	g.RecordMax(2)
	if g.Value() != 4 {
		t.Errorf("gauge max = %d, want 4", g.Value())
	}
	g.Set(1)
	if g.Value() != 1 {
		t.Error("gauge set")
	}

	h := r.Histogram("lat", []uint64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)
	if h.Count() != 3 {
		t.Errorf("histogram count = %d", h.Count())
	}
	if h.Mean() != 555.0/3 {
		t.Errorf("histogram mean = %v", h.Mean())
	}

	snap := r.Snapshot()
	if snap.Counters["a"] != 3 || snap.Gauges["depth"] != 1 {
		t.Errorf("snapshot = %+v", snap)
	}
	hs := snap.Histograms["lat"]
	want := []uint64{1, 1, 1} // one per bucket incl. overflow
	for i, n := range want {
		if hs.Counts[i] != n {
			t.Errorf("bucket %d = %d, want %d", i, hs.Counts[i], n)
		}
	}

	r.Reset()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Error("reset did not zero instruments in place")
	}
	if !r.Snapshot().Equal(&Snapshot{Counters: map[string]uint64{"a": 0}, Gauges: map[string]int64{"depth": 0},
		Histograms: map[string]HistogramSnapshot{"lat": {Bounds: []uint64{10, 100}, Counts: []uint64{0, 0, 0}}}}) {
		t.Error("post-reset snapshot not zeroed")
	}
}

func TestSnapshotEqualAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("mem.reads").Add(7)
	r.Gauge("event.max_queue_depth").Set(12)
	r.Histogram("mem.latency_ps", []uint64{100}).Observe(40)

	a, b := r.Snapshot(), r.Snapshot()
	if !a.Equal(b) {
		t.Fatal("identical snapshots unequal")
	}
	r.Counter("mem.reads").Inc()
	if a.Equal(r.Snapshot()) {
		t.Fatal("diverged snapshots equal")
	}

	// JSON must round-trip exactly and deterministically.
	j1, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := json.Marshal(b)
	if !bytes.Equal(j1, j2) {
		t.Errorf("non-deterministic JSON:\n%s\n%s", j1, j2)
	}
	var back Snapshot
	if err := json.Unmarshal(j1, &back); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(&back) {
		t.Errorf("JSON round trip changed snapshot: %s", j1)
	}

	var nilSnap *Snapshot
	if !nilSnap.Equal(&Snapshot{}) || !(&Snapshot{}).Equal(nilSnap) {
		t.Error("nil and empty snapshots must compare equal")
	}
}

func TestTraceSink(t *testing.T) {
	tr := NewTrace(2)
	tr.Emit(Event{At: 1, Kind: PagePlaced, Core: 0, Addr: 0x10, Aux: 2})
	tr.Emit(Event{At: 2, Kind: RowConflict, Unit: "DDR3-m0-ch0"})
	tr.Emit(Event{At: 3, Kind: MSHRFull})
	if tr.Len() != 2 || tr.Dropped() != 1 {
		t.Fatalf("len=%d dropped=%d", tr.Len(), tr.Dropped())
	}
	evs := tr.Events()
	if evs[0].Kind != PagePlaced || evs[1].Kind != RowConflict {
		t.Errorf("events = %+v", evs)
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines, want 2", len(lines))
	}
	var ev Event
	if err := json.Unmarshal([]byte(lines[1]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Kind != RowConflict || ev.Unit != "DDR3-m0-ch0" {
		t.Errorf("decoded event = %+v", ev)
	}
}

func TestEventKindStrings(t *testing.T) {
	for k, want := range map[EventKind]string{
		PagePlaced: "page-placed", FallbackTaken: "fallback-taken",
		RowConflict: "row-conflict", MSHRFull: "mshr-full",
		MigrationTriggered: "migration-triggered",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if !strings.Contains(EventKind(99).String(), "99") {
		t.Error("unknown kind string")
	}
	var k EventKind
	if err := k.UnmarshalJSON([]byte(`"mshr-full"`)); err != nil || k != MSHRFull {
		t.Errorf("unmarshal by name: %v %v", k, err)
	}
	if err := k.UnmarshalJSON([]byte(`"nope"`)); err == nil {
		t.Error("unknown name accepted")
	}
	if err := k.UnmarshalJSON([]byte(`3`)); err != nil || k != RowConflict {
		t.Errorf("unmarshal by number: %v %v", k, err)
	}
}

func TestConcurrentUse(t *testing.T) {
	// The registry and sink must survive the experiment runner's parallel
	// simulations: hammer them from several goroutines under -race.
	r := NewRegistry()
	tr := NewTrace(64)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared")
			g := r.Gauge("depth")
			h := r.Histogram("lat", []uint64{10, 100, 1000})
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.RecordMax(int64(j))
				h.Observe(uint64(j))
				tr.Emit(Event{At: int64(j), Kind: RowConflict})
			}
			_ = r.Snapshot()
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if r.Gauge("depth").Value() != 999 {
		t.Errorf("gauge max = %d", r.Gauge("depth").Value())
	}
	if tr.Len() != 64 || tr.Dropped() != 8000-64 {
		t.Errorf("trace len=%d dropped=%d", tr.Len(), tr.Dropped())
	}
}

func TestSnapshotTable(t *testing.T) {
	r := NewRegistry()
	r.Counter("alloc.faults").Add(3)
	r.Gauge("event.max_queue_depth").Set(7)
	r.Histogram("mem.latency_ps", []uint64{100}).Observe(50)
	out := r.Snapshot().Table("metrics: test").String()
	for _, want := range []string{"alloc.faults", "3", "event.max_queue_depth", "7", "mem.latency_ps", "n=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	var nilSnap *Snapshot
	if !strings.Contains(nilSnap.Table("x").String(), "disabled") {
		t.Error("nil snapshot table should note disabled instrumentation")
	}
}

func TestOptions(t *testing.T) {
	if (Options{}).Enabled() {
		t.Error("zero options enabled")
	}
	if !(Options{Metrics: true}).Enabled() || !(Options{Trace: NewTrace(0)}).Enabled() {
		t.Error("options with metrics or trace must be enabled")
	}
}

func TestMerge(t *testing.T) {
	if Merge() != nil || Merge(nil, nil) != nil {
		t.Error("merging nothing must return nil")
	}
	a := &Snapshot{
		Counters:   map[string]uint64{"x": 2, "y": 1},
		Gauges:     map[string]int64{"depth": 5},
		Histograms: map[string]HistogramSnapshot{"h": {Bounds: []uint64{10}, Counts: []uint64{1, 0}, Sum: 4, Count: 1}},
	}
	b := &Snapshot{
		Counters:   map[string]uint64{"x": 3, "z": 7},
		Gauges:     map[string]int64{"depth": 2},
		Histograms: map[string]HistogramSnapshot{"h": {Bounds: []uint64{10}, Counts: []uint64{0, 2}, Sum: 30, Count: 2}},
	}
	m := Merge(a, nil, b)
	if m.Counters["x"] != 5 || m.Counters["y"] != 1 || m.Counters["z"] != 7 {
		t.Errorf("counters: %v", m.Counters)
	}
	if m.Gauges["depth"] != 5 {
		t.Errorf("gauge should take max, got %d", m.Gauges["depth"])
	}
	h := m.Histograms["h"]
	if h.Sum != 34 || h.Count != 3 || h.Counts[0] != 1 || h.Counts[1] != 2 {
		t.Errorf("histogram: %+v", h)
	}
	// Inputs must be untouched (Merge copies on first use).
	if a.Counters["x"] != 2 || a.Histograms["h"].Sum != 4 {
		t.Error("merge mutated its input")
	}
}
