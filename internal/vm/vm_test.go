package vm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"moca/internal/mem"
)

func TestComposeDecompose(t *testing.T) {
	paddr := Compose(3, 0x1234, 0x567)
	if ModuleOf(paddr) != 3 {
		t.Errorf("ModuleOf = %d, want 3", ModuleOf(paddr))
	}
	if got := ModuleOffset(paddr); got != 0x1234<<PageShift|0x567 {
		t.Errorf("ModuleOffset = %#x", got)
	}
}

func TestVPage(t *testing.T) {
	if VPage(0) != 0 || VPage(4095) != 0 || VPage(4096) != 1 || VPage(12*4096+17) != 12 {
		t.Error("VPage arithmetic wrong")
	}
}

func TestModuleAllocRelease(t *testing.T) {
	m, err := NewModule(0, mem.DDR3, 8*PageBytes)
	if err != nil {
		t.Fatal(err)
	}
	if m.Frames() != 8 || m.Capacity() != 8*PageBytes {
		t.Fatalf("frames=%d capacity=%d", m.Frames(), m.Capacity())
	}
	var frames []uint64
	for i := 0; i < 8; i++ {
		f, ok := m.Alloc()
		if !ok {
			t.Fatalf("alloc %d failed", i)
		}
		frames = append(frames, f)
	}
	if _, ok := m.Alloc(); ok {
		t.Fatal("alloc beyond capacity succeeded")
	}
	if m.Free() != 0 || m.Used() != 8 {
		t.Errorf("free=%d used=%d", m.Free(), m.Used())
	}
	m.Release(frames[3])
	if m.Free() != 1 {
		t.Errorf("free after release = %d", m.Free())
	}
	f, ok := m.Alloc()
	if !ok || f != frames[3] {
		t.Errorf("realloc = (%d,%v), want recycled frame %d", f, ok, frames[3])
	}
}

func TestModuleDistinctFrames(t *testing.T) {
	m, _ := NewModule(1, mem.HBM, 128*PageBytes)
	seen := map[uint64]bool{}
	for {
		f, ok := m.Alloc()
		if !ok {
			break
		}
		if seen[f] {
			t.Fatalf("frame %d allocated twice", f)
		}
		seen[f] = true
	}
	if len(seen) != 128 {
		t.Errorf("allocated %d distinct frames, want 128", len(seen))
	}
}

func TestNewModuleErrors(t *testing.T) {
	if _, err := NewModule(0, mem.DDR3, 100); err == nil {
		t.Error("sub-page capacity accepted")
	}
	if _, err := NewModule(0, mem.DDR3, 1<<41); err == nil {
		t.Error("over-range capacity accepted")
	}
}

func TestReleasePanics(t *testing.T) {
	m, _ := NewModule(0, mem.DDR3, 4*PageBytes)
	defer func() {
		if recover() == nil {
			t.Error("release of never-allocated frame did not panic")
		}
	}()
	m.Release(2)
}

func TestPageTable(t *testing.T) {
	pt := NewPageTable()
	if _, ok := pt.Lookup(5); ok {
		t.Fatal("empty table hit")
	}
	pt.Map(5, Frame{Module: 1, Number: 42})
	f, ok := pt.Lookup(5)
	if !ok || f.Module != 1 || f.Number != 42 {
		t.Fatalf("lookup = %+v,%v", f, ok)
	}
	if pt.Mapped() != 1 || pt.Walks() != 2 {
		t.Errorf("mapped=%d walks=%d", pt.Mapped(), pt.Walks())
	}
}

func TestPageTableRemapPanics(t *testing.T) {
	pt := NewPageTable()
	pt.Map(1, Frame{})
	defer func() {
		if recover() == nil {
			t.Error("remap did not panic")
		}
	}()
	pt.Map(1, Frame{Module: 1})
}

func TestResidentByModule(t *testing.T) {
	pt := NewPageTable()
	pt.Map(0, Frame{Module: 0})
	pt.Map(1, Frame{Module: 2})
	pt.Map(2, Frame{Module: 2})
	got := pt.ResidentByModule()
	if got[0] != 1 || got[2] != 2 {
		t.Errorf("ResidentByModule = %v", got)
	}
}

// Property: used + free == frames under any alloc/release interleaving,
// and no frame is ever handed out twice concurrently.
func TestPropertyModuleConservation(t *testing.T) {
	f := func(seed int64, opsRaw uint8) bool {
		m, err := NewModule(0, mem.LPDDR2, 32*PageBytes)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		live := map[uint64]bool{}
		var liveList []uint64
		ops := int(opsRaw) + 50
		for i := 0; i < ops; i++ {
			if rng.Intn(2) == 0 || len(liveList) == 0 {
				fr, ok := m.Alloc()
				if ok {
					if live[fr] {
						return false // double allocation
					}
					live[fr] = true
					liveList = append(liveList, fr)
				}
			} else {
				idx := rng.Intn(len(liveList))
				fr := liveList[idx]
				liveList = append(liveList[:idx], liveList[idx+1:]...)
				delete(live, fr)
				m.Release(fr)
			}
			if m.Used()+m.Free() != m.Frames() {
				return false
			}
			if m.Used() != uint64(len(live)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestTLBBasic(t *testing.T) {
	tlb := NewTLB(4)
	if _, ok := tlb.Lookup(1); ok {
		t.Fatal("cold TLB hit")
	}
	tlb.Insert(1, Frame{Module: 1, Number: 9})
	f, ok := tlb.Lookup(1)
	if !ok || f.Number != 9 {
		t.Fatalf("lookup = %+v,%v", f, ok)
	}
	if tlb.Hits() != 1 || tlb.Misses() != 1 {
		t.Errorf("hits=%d misses=%d", tlb.Hits(), tlb.Misses())
	}
	if tlb.HitRate() != 0.5 {
		t.Errorf("hit rate = %v", tlb.HitRate())
	}
}

func TestTLBLRUEviction(t *testing.T) {
	tlb := NewTLB(2)
	tlb.Insert(1, Frame{Number: 1})
	tlb.Insert(2, Frame{Number: 2})
	tlb.Lookup(1) // 1 most recent
	tlb.Insert(3, Frame{Number: 3})
	if _, ok := tlb.Lookup(2); ok {
		t.Error("LRU entry 2 survived")
	}
	if _, ok := tlb.Lookup(1); !ok {
		t.Error("MRU entry 1 evicted")
	}
}

func TestTLBInsertUpdatesExisting(t *testing.T) {
	tlb := NewTLB(2)
	tlb.Insert(1, Frame{Number: 1})
	tlb.Insert(1, Frame{Number: 7})
	f, ok := tlb.Lookup(1)
	if !ok || f.Number != 7 {
		t.Errorf("updated entry = %+v,%v", f, ok)
	}
}

func TestTLBDefaultSize(t *testing.T) {
	tlb := NewTLB(0)
	for i := uint64(0); i < 64; i++ {
		tlb.Insert(i, Frame{Number: i})
	}
	for i := uint64(0); i < 64; i++ {
		if _, ok := tlb.Lookup(i); !ok {
			t.Fatalf("entry %d missing from default-sized TLB", i)
		}
	}
}
