// Package vm models the virtual-memory substrate MOCA's page allocator
// plugs into: 4 KB pages, per-process page tables, and per-module physical
// frame pools. A physical address encodes (module, frame, offset) so the
// memory system can route each line to the channel owning its module —
// the mechanism by which page placement selects a memory module (paper
// Section IV-D).
package vm

import (
	"fmt"
	"math/bits"

	"moca/internal/mem"
)

const (
	// PageShift and PageBytes define the 4 KB page size.
	PageShift = 12
	PageBytes = 1 << PageShift

	// moduleShift places the module ID above a 1 TB per-module offset
	// space in the composed physical address.
	moduleShift = 40
	offsetMask  = (uint64(1) << moduleShift) - 1
)

// VPage returns the virtual page number containing vaddr.
func VPage(vaddr uint64) uint64 { return vaddr >> PageShift }

// Compose builds a physical address from a module ID, a frame number
// within the module, and a byte offset within the page.
func Compose(module int, frame uint64, offset uint64) uint64 {
	return uint64(module)<<moduleShift | frame<<PageShift | (offset & (PageBytes - 1))
}

// ModuleOf extracts the module ID from a physical address.
func ModuleOf(paddr uint64) int { return int(paddr >> moduleShift) }

// ModuleOffset extracts the byte offset within the module.
func ModuleOffset(paddr uint64) uint64 { return paddr & offsetMask }

// Module is one physical memory module: a pool of page frames backed by a
// specific memory technology.
type Module struct {
	ID   int
	Kind mem.Kind

	frames uint64
	next   uint64   // bump pointer for never-used frames
	free   []uint64 // recycled frames (LIFO)
}

// NewModule builds a frame pool of the given capacity (rounded down to
// whole pages).
func NewModule(id int, kind mem.Kind, capacityBytes uint64) (*Module, error) {
	if capacityBytes < PageBytes {
		return nil, fmt.Errorf("vm: module %d capacity %d smaller than a page", id, capacityBytes)
	}
	if capacityBytes>>PageShift > offsetMask>>PageShift {
		return nil, fmt.Errorf("vm: module %d capacity %d exceeds addressable range", id, capacityBytes)
	}
	return &Module{ID: id, Kind: kind, frames: capacityBytes >> PageShift}, nil
}

// Capacity returns the module size in bytes.
func (m *Module) Capacity() uint64 { return m.frames << PageShift }

// Frames returns the total frame count.
func (m *Module) Frames() uint64 { return m.frames }

// Used returns the number of allocated frames.
func (m *Module) Used() uint64 { return m.next - uint64(len(m.free)) }

// Free returns the number of available frames.
func (m *Module) Free() uint64 { return m.frames - m.Used() }

// Alloc takes a frame from the pool; ok=false when the module is full
// (the trigger for MOCA's next-best-module fallback).
func (m *Module) Alloc() (frame uint64, ok bool) {
	if n := len(m.free); n > 0 {
		frame = m.free[n-1]
		m.free = m.free[:n-1]
		return frame, true
	}
	if m.next >= m.frames {
		return 0, false
	}
	frame = m.next
	m.next++
	return frame, true
}

// Release returns a frame to the pool. Releasing an unallocated frame is a
// simulator bug and panics.
func (m *Module) Release(frame uint64) {
	if frame >= m.next {
		panic(fmt.Sprintf("vm: module %d: release of never-allocated frame %d", m.ID, frame))
	}
	m.free = append(m.free, frame)
	if uint64(len(m.free)) > m.next {
		panic(fmt.Sprintf("vm: module %d: double release detected", m.ID))
	}
}

// Frame is a physical page: a (module, frame-number) pair.
type Frame struct {
	Module int
	Number uint64
}

// ptSlot is one open-addressed page-table slot. vpage 0 is a legal key, so
// occupancy is an explicit flag rather than a sentinel value.
type ptSlot struct {
	vpage uint64
	frame Frame
	used  bool
}

// PageTable maps one process's virtual pages to physical frames. The
// store is a power-of-two, linear-probing open-addressed table: Lookup is
// once-per-simulated-access, so it must not pay Go-map hashing. The table
// is tombstone-free by construction — translations are only ever installed
// (Map) or updated in place (Remap), never removed — so probe chains never
// degrade and no deletion logic exists.
type PageTable struct {
	slots    []ptSlot
	mapped   int
	shift    uint // hash produces the top log2(len(slots)) bits
	walks    uint64
	resident []int // mapped pages per module ID, maintained on Map/Remap
}

// ptMinSlots is the initial table size (power of two).
const ptMinSlots = 64

// NewPageTable returns an empty page table.
func NewPageTable() *PageTable {
	pt := &PageTable{}
	pt.init(ptMinSlots)
	return pt
}

func (pt *PageTable) init(size int) {
	pt.slots = make([]ptSlot, size)
	pt.shift = 64 - uint(bits.TrailingZeros(uint(size)))
}

// hash spreads vpage bits with a Fibonacci multiplicative hash and keeps
// the top bits, which a power-of-two mask would otherwise discard —
// sequential and strided vpages land on distinct home slots.
//moca:hotpath
func (pt *PageTable) hash(vpage uint64) int {
	return int((vpage * 0x9E3779B97F4A7C15) >> pt.shift)
}

// find returns the slot index holding vpage, or the first empty slot of
// its probe chain when absent.
//moca:hotpath
func (pt *PageTable) find(vpage uint64) int {
	mask := len(pt.slots) - 1
	i := pt.hash(vpage)
	for pt.slots[i].used && pt.slots[i].vpage != vpage {
		i = (i + 1) & mask
	}
	return i
}

// grow doubles the table once load passes ~75%, rehashing every live
// translation (no tombstones exist to skip).
//moca:hotpath
func (pt *PageTable) grow() {
	old := pt.slots
	pt.init(len(pt.slots) * 2)
	for i := range old {
		if old[i].used {
			j := pt.find(old[i].vpage)
			pt.slots[j] = old[i]
		}
	}
}

// Lookup finds the frame backing a virtual page. Every call models a page
// walk (the simulator translates once per access; TLB filtering is applied
// by the caller if modeled).
//moca:hotpath
func (pt *PageTable) Lookup(vpage uint64) (Frame, bool) {
	pt.walks++
	i := pt.find(vpage)
	if !pt.slots[i].used {
		return Frame{}, false
	}
	return pt.slots[i].frame, true
}

// Map installs a translation. Remapping a mapped page panics: the
// simulator never swaps implicitly — migration uses Remap.
//moca:hotpath
func (pt *PageTable) Map(vpage uint64, f Frame) {
	i := pt.find(vpage)
	if pt.slots[i].used {
		panic(fmt.Sprintf("vm: remap of vpage %#x", vpage))
	}
	pt.slots[i] = ptSlot{vpage: vpage, frame: f, used: true}
	pt.mapped++
	pt.countResident(f.Module, 1)
	if pt.mapped*4 > len(pt.slots)*3 {
		pt.grow()
	}
}

// Remap moves an existing translation to a new frame (page migration) and
// returns the old frame. The slot is updated in place — the key set never
// shrinks, which is what keeps the table tombstone-free. Remapping an
// unmapped page panics.
//moca:hotpath
func (pt *PageTable) Remap(vpage uint64, f Frame) Frame {
	i := pt.find(vpage)
	if !pt.slots[i].used {
		panic(fmt.Sprintf("vm: remap of unmapped vpage %#x", vpage))
	}
	old := pt.slots[i].frame
	pt.slots[i].frame = f
	pt.countResident(old.Module, -1)
	pt.countResident(f.Module, 1)
	return old
}

//moca:hotpath
func (pt *PageTable) countResident(module, delta int) {
	for len(pt.resident) <= module {
		pt.resident = append(pt.resident, 0)
	}
	pt.resident[module] += delta
}

// Mapped returns the number of installed translations.
func (pt *PageTable) Mapped() int { return pt.mapped }

// Walks returns the number of Lookup calls.
func (pt *PageTable) Walks() uint64 { return pt.walks }

// Resident returns the number of this process's pages mapped on one
// module, from counters maintained on Map/Remap — no table walk.
func (pt *PageTable) Resident(module int) int {
	if module < 0 || module >= len(pt.resident) {
		return 0
	}
	return pt.resident[module]
}

// ResidentByModule counts this process's mapped pages per module ID, the
// per-process placement census used in experiment reporting. The map is
// built from the maintained counters (O(modules), not O(mappings)); only
// modules with at least one resident page appear, matching the historical
// walk-the-table behavior.
func (pt *PageTable) ResidentByModule() map[int]int {
	out := make(map[int]int)
	for module, n := range pt.resident {
		if n > 0 {
			out[module] = n
		}
	}
	return out
}
