// Package vm models the virtual-memory substrate MOCA's page allocator
// plugs into: 4 KB pages, per-process page tables, and per-module physical
// frame pools. A physical address encodes (module, frame, offset) so the
// memory system can route each line to the channel owning its module —
// the mechanism by which page placement selects a memory module (paper
// Section IV-D).
package vm

import (
	"fmt"

	"moca/internal/mem"
)

const (
	// PageShift and PageBytes define the 4 KB page size.
	PageShift = 12
	PageBytes = 1 << PageShift

	// moduleShift places the module ID above a 1 TB per-module offset
	// space in the composed physical address.
	moduleShift = 40
	offsetMask  = (uint64(1) << moduleShift) - 1
)

// VPage returns the virtual page number containing vaddr.
func VPage(vaddr uint64) uint64 { return vaddr >> PageShift }

// Compose builds a physical address from a module ID, a frame number
// within the module, and a byte offset within the page.
func Compose(module int, frame uint64, offset uint64) uint64 {
	return uint64(module)<<moduleShift | frame<<PageShift | (offset & (PageBytes - 1))
}

// ModuleOf extracts the module ID from a physical address.
func ModuleOf(paddr uint64) int { return int(paddr >> moduleShift) }

// ModuleOffset extracts the byte offset within the module.
func ModuleOffset(paddr uint64) uint64 { return paddr & offsetMask }

// Module is one physical memory module: a pool of page frames backed by a
// specific memory technology.
type Module struct {
	ID   int
	Kind mem.Kind

	frames uint64
	next   uint64   // bump pointer for never-used frames
	free   []uint64 // recycled frames (LIFO)
}

// NewModule builds a frame pool of the given capacity (rounded down to
// whole pages).
func NewModule(id int, kind mem.Kind, capacityBytes uint64) (*Module, error) {
	if capacityBytes < PageBytes {
		return nil, fmt.Errorf("vm: module %d capacity %d smaller than a page", id, capacityBytes)
	}
	if capacityBytes>>PageShift > offsetMask>>PageShift {
		return nil, fmt.Errorf("vm: module %d capacity %d exceeds addressable range", id, capacityBytes)
	}
	return &Module{ID: id, Kind: kind, frames: capacityBytes >> PageShift}, nil
}

// Capacity returns the module size in bytes.
func (m *Module) Capacity() uint64 { return m.frames << PageShift }

// Frames returns the total frame count.
func (m *Module) Frames() uint64 { return m.frames }

// Used returns the number of allocated frames.
func (m *Module) Used() uint64 { return m.next - uint64(len(m.free)) }

// Free returns the number of available frames.
func (m *Module) Free() uint64 { return m.frames - m.Used() }

// Alloc takes a frame from the pool; ok=false when the module is full
// (the trigger for MOCA's next-best-module fallback).
func (m *Module) Alloc() (frame uint64, ok bool) {
	if n := len(m.free); n > 0 {
		frame = m.free[n-1]
		m.free = m.free[:n-1]
		return frame, true
	}
	if m.next >= m.frames {
		return 0, false
	}
	frame = m.next
	m.next++
	return frame, true
}

// Release returns a frame to the pool. Releasing an unallocated frame is a
// simulator bug and panics.
func (m *Module) Release(frame uint64) {
	if frame >= m.next {
		panic(fmt.Sprintf("vm: module %d: release of never-allocated frame %d", m.ID, frame))
	}
	m.free = append(m.free, frame)
	if uint64(len(m.free)) > m.next {
		panic(fmt.Sprintf("vm: module %d: double release detected", m.ID))
	}
}

// Frame is a physical page: a (module, frame-number) pair.
type Frame struct {
	Module int
	Number uint64
}

// PageTable maps one process's virtual pages to physical frames.
type PageTable struct {
	pages map[uint64]Frame
	walks uint64
}

// NewPageTable returns an empty page table.
func NewPageTable() *PageTable {
	return &PageTable{pages: make(map[uint64]Frame)}
}

// Lookup finds the frame backing a virtual page. Every call models a page
// walk (the simulator translates once per access; TLB filtering is applied
// by the caller if modeled).
func (pt *PageTable) Lookup(vpage uint64) (Frame, bool) {
	pt.walks++
	f, ok := pt.pages[vpage]
	return f, ok
}

// Map installs a translation. Remapping a mapped page panics: the
// simulator never swaps implicitly — migration uses Remap.
func (pt *PageTable) Map(vpage uint64, f Frame) {
	if _, dup := pt.pages[vpage]; dup {
		panic(fmt.Sprintf("vm: remap of vpage %#x", vpage))
	}
	pt.pages[vpage] = f
}

// Remap moves an existing translation to a new frame (page migration) and
// returns the old frame. Remapping an unmapped page panics.
func (pt *PageTable) Remap(vpage uint64, f Frame) Frame {
	old, ok := pt.pages[vpage]
	if !ok {
		panic(fmt.Sprintf("vm: remap of unmapped vpage %#x", vpage))
	}
	pt.pages[vpage] = f
	return old
}

// Mapped returns the number of installed translations.
func (pt *PageTable) Mapped() int { return len(pt.pages) }

// Walks returns the number of Lookup calls.
func (pt *PageTable) Walks() uint64 { return pt.walks }

// ResidentByModule counts this process's mapped pages per module ID,
// the per-process placement census used in experiment reporting.
func (pt *PageTable) ResidentByModule() map[int]int {
	out := make(map[int]int)
	for _, f := range pt.pages {
		out[f.Module]++
	}
	return out
}
