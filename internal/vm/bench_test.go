package vm

// Microbenchmarks for the per-access translation path, plus the CI alloc
// smoke gates (same scheme as the repo-level throughput gate: measured
// allocs/op may not regress more than 20% past the checked-in budget in
// BENCH_throughput.json).

import (
	"encoding/json"
	"os"
	"testing"
)

// BenchmarkPageTable exercises the open-addressed page table at a steady
// 64k-page working set: per op one hit lookup, one miss lookup, and every
// 16th op a Remap — the per-simulated-access pattern, no growth.
func BenchmarkPageTable(b *testing.B) {
	const pages = 1 << 16
	pt := NewPageTable()
	for v := uint64(0); v < pages; v++ {
		pt.Map(v, Frame{Module: int(v % 4), Number: v})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := uint64(i) & (pages - 1)
		if _, ok := pt.Lookup(v); !ok {
			b.Fatal("mapped page missed")
		}
		if _, ok := pt.Lookup(v + pages); ok {
			b.Fatal("unmapped page hit")
		}
		if i&15 == 0 {
			pt.Remap(v, Frame{Module: int(v+1) % 4, Number: v})
		}
	}
}

// BenchmarkTLB exercises the hashed set-associative TLB with the
// translation loop's miss-then-insert pattern over a working set twice
// the TLB's capacity (steady mix of hits, misses, and evictions).
func BenchmarkTLB(b *testing.B) {
	tlb := NewTLB(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := uint64(i) & 127
		if _, ok := tlb.Lookup(v); !ok {
			tlb.Insert(v, Frame{Number: v})
		}
	}
}

// readMicroBudget loads one entry of BENCH_throughput.json's "micro"
// section (the per-microbenchmark allocs/op trajectory).
func readMicroBudget(t *testing.T, path, name string) int64 {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		Micro map[string]struct {
			AllocsPerOp int64 `json:"allocs_per_op"`
		} `json:"micro"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	m, ok := f.Micro[name]
	if !ok {
		t.Fatalf("%s has no micro entry %q", path, name)
	}
	return m.AllocsPerOp
}

// checkMicroAllocBudget runs a microbenchmark for one iteration batch and
// fails on a >20% allocs/op regression past the checked-in budget.
func checkMicroAllocBudget(t *testing.T, path, name string, bench func(*testing.B)) {
	t.Helper()
	if os.Getenv("MOCA_BENCH_SMOKE") == "" {
		t.Skip("set MOCA_BENCH_SMOKE=1 to run the bench smoke")
	}
	budget := readMicroBudget(t, path, name)
	budget += budget / 5
	res := testing.Benchmark(bench)
	allocs := res.AllocsPerOp()
	t.Logf("%s: %d allocs/op, budget %d", name, allocs, budget)
	if allocs > budget {
		t.Fatalf("%s allocation regression: %d allocs/op exceeds budget %d; if intentional, update the micro entry in BENCH_throughput.json",
			name, allocs, budget)
	}
}

func TestPageTableAllocBudget(t *testing.T) {
	checkMicroAllocBudget(t, "../../BENCH_throughput.json", "BenchmarkPageTable", BenchmarkPageTable)
}

func TestTLBAllocBudget(t *testing.T) {
	checkMicroAllocBudget(t, "../../BENCH_throughput.json", "BenchmarkTLB", BenchmarkTLB)
}
