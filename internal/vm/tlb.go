package vm

// TLB is a small hashed set-associative translation lookaside buffer with
// per-set LRU replacement. The paper describes the TLB/page-walk path
// (Section IV-D) but does not evaluate its timing, so the simulator uses
// the TLB for statistics only; hit/miss counts are reported alongside the
// other metrics. Lookup probes one set (at most `ways` slots) instead of
// scanning every entry — the per-access cost no longer grows with the
// entry budget.
type TLB struct {
	sets     int // power of two
	ways     int
	setShift uint // log2(sets), for the index fold
	slots    []tlbSlot
	useClock uint64
	hits     uint64
	misses   uint64
}

type tlbSlot struct {
	vpage   uint64
	frame   Frame
	valid   bool
	lastUse uint64
}

// tlbWays is the associativity for entry budgets of at least one full set
// (64 entries → 16 sets × 4 ways).
const tlbWays = 4

// NewTLB builds a TLB with the given entry count (64 is typical). Budgets
// below one set degenerate to a single fully-associative set.
func NewTLB(entries int) *TLB {
	if entries <= 0 {
		entries = 64
	}
	ways := tlbWays
	if entries < ways {
		ways = entries
	}
	sets := 1
	for sets*2*ways <= entries {
		sets *= 2
	}
	shift := uint(0)
	for s := sets; s > 1; s >>= 1 {
		shift++
	}
	return &TLB{sets: sets, ways: ways, setShift: shift, slots: make([]tlbSlot, sets*ways)}
}

// setOf folds the whole virtual page number into the set index by XORing
// successive setShift-wide chunks. Unlike taking the low bits alone, pages
// strided by a multiple of the set count still spread across sets; unlike
// a full multiplicative hash, any aligned run of `sets` consecutive pages
// still maps exactly one page per set (each chunk XOR is a bijection on
// the low chunk), so dense sequential footprints never conflict-miss.
//moca:hotpath
func (t *TLB) setOf(vpage uint64) int {
	if t.sets == 1 {
		return 0
	}
	h := vpage
	for v := vpage >> t.setShift; v != 0; v >>= t.setShift {
		h ^= v
	}
	return int(h) & (t.sets - 1)
}

// set returns the slot range backing vpage's set.
//moca:hotpath
func (t *TLB) set(vpage uint64) []tlbSlot {
	base := t.setOf(vpage) * t.ways
	return t.slots[base : base+t.ways]
}

// Lookup returns the cached translation for a virtual page.
//moca:hotpath
func (t *TLB) Lookup(vpage uint64) (Frame, bool) {
	set := t.set(vpage)
	for i := range set {
		s := &set[i]
		if s.valid && s.vpage == vpage {
			t.useClock++
			s.lastUse = t.useClock
			t.hits++
			return s.frame, true
		}
	}
	t.misses++
	return Frame{}, false
}

// Insert caches a translation, evicting the set's LRU entry if full.
//moca:hotpath
func (t *TLB) Insert(vpage uint64, f Frame) {
	set := t.set(vpage)
	victim := 0
	var oldest uint64
	for i := range set {
		s := &set[i]
		if s.valid && s.vpage == vpage {
			s.frame = f
			return
		}
		if !s.valid {
			victim = i
			oldest = 0
			break
		}
		if i == 0 || s.lastUse < oldest {
			victim, oldest = i, s.lastUse
		}
	}
	t.useClock++
	set[victim] = tlbSlot{vpage: vpage, frame: f, valid: true, lastUse: t.useClock}
}

// Invalidate drops the translation for a virtual page (the migration
// shootdown). Reports whether an entry was present.
//moca:hotpath
func (t *TLB) Invalidate(vpage uint64) bool {
	set := t.set(vpage)
	for i := range set {
		s := &set[i]
		if s.valid && s.vpage == vpage {
			*s = tlbSlot{}
			return true
		}
	}
	return false
}

// Hits returns the hit count.
func (t *TLB) Hits() uint64 { return t.hits }

// Misses returns the miss count.
func (t *TLB) Misses() uint64 { return t.misses }

// HitRate returns hits / (hits + misses).
func (t *TLB) HitRate() float64 {
	total := t.hits + t.misses
	if total == 0 {
		return 0
	}
	return float64(t.hits) / float64(total)
}
