package vm

// TLB is a small fully-associative LRU translation lookaside buffer. The
// paper describes the TLB/page-walk path (Section IV-D) but does not
// evaluate its timing, so the simulator uses the TLB for statistics only;
// hit/miss counts are reported alongside the other metrics.
type TLB struct {
	entries  int
	slots    []tlbSlot
	useClock uint64
	hits     uint64
	misses   uint64
}

type tlbSlot struct {
	vpage   uint64
	frame   Frame
	valid   bool
	lastUse uint64
}

// NewTLB builds a TLB with the given entry count (64 is typical).
func NewTLB(entries int) *TLB {
	if entries <= 0 {
		entries = 64
	}
	return &TLB{entries: entries, slots: make([]tlbSlot, entries)}
}

// Lookup returns the cached translation for a virtual page.
func (t *TLB) Lookup(vpage uint64) (Frame, bool) {
	for i := range t.slots {
		s := &t.slots[i]
		if s.valid && s.vpage == vpage {
			t.useClock++
			s.lastUse = t.useClock
			t.hits++
			return s.frame, true
		}
	}
	t.misses++
	return Frame{}, false
}

// Insert caches a translation, evicting the LRU entry if full.
func (t *TLB) Insert(vpage uint64, f Frame) {
	victim := 0
	var oldest uint64
	for i := range t.slots {
		s := &t.slots[i]
		if s.valid && s.vpage == vpage {
			s.frame = f
			return
		}
		if !s.valid {
			victim = i
			oldest = 0
			break
		}
		if i == 0 || s.lastUse < oldest {
			victim, oldest = i, s.lastUse
		}
	}
	t.useClock++
	t.slots[victim] = tlbSlot{vpage: vpage, frame: f, valid: true, lastUse: t.useClock}
}

// Invalidate drops the translation for a virtual page (the migration
// shootdown). Reports whether an entry was present.
func (t *TLB) Invalidate(vpage uint64) bool {
	for i := range t.slots {
		s := &t.slots[i]
		if s.valid && s.vpage == vpage {
			*s = tlbSlot{}
			return true
		}
	}
	return false
}

// Hits returns the hit count.
func (t *TLB) Hits() uint64 { return t.hits }

// Misses returns the miss count.
func (t *TLB) Misses() uint64 { return t.misses }

// HitRate returns hits / (hits + misses).
func (t *TLB) HitRate() float64 {
	total := t.hits + t.misses
	if total == 0 {
		return 0
	}
	return float64(t.hits) / float64(total)
}
