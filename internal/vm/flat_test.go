package vm

// Adversarial tests for the open-addressed page table and the hashed
// set-associative TLB: hash collisions, growth across the resize
// boundary, Remap-in-place, and the per-module resident counters.

import (
	"math/rand"
	"testing"
)

// collidingVPages returns n distinct vpages whose home slots all equal
// the home slot of the first, at the table's current size.
func collidingVPages(pt *PageTable, n int) []uint64 {
	out := []uint64{1}
	home := pt.hash(1)
	for v := uint64(2); len(out) < n; v++ {
		if pt.hash(v) == home {
			out = append(out, v)
		}
	}
	return out
}

func TestPageTableCollidingVPages(t *testing.T) {
	pt := NewPageTable()
	vpages := collidingVPages(pt, 8)
	for i, v := range vpages {
		pt.Map(v, Frame{Module: i % 3, Number: uint64(i)})
	}
	for i, v := range vpages {
		f, ok := pt.Lookup(v)
		if !ok || f.Number != uint64(i) || f.Module != i%3 {
			t.Fatalf("colliding vpage %#x: lookup = %+v,%v, want number %d", v, f, ok, i)
		}
	}
	// A missing vpage on the same probe chain must stay a miss.
	probe := vpages[len(vpages)-1] + 1
	for pt.hash(probe) != pt.hash(vpages[0]) {
		probe++
	}
	if _, ok := pt.Lookup(probe); ok {
		t.Fatalf("unmapped colliding vpage %#x reported mapped", probe)
	}
}

func TestPageTableGrowthAcrossResize(t *testing.T) {
	pt := NewPageTable()
	// Push well past several resize boundaries (64 → 128 → ... → 4096).
	const n = 3000
	for v := uint64(0); v < n; v++ {
		pt.Map(v*31, Frame{Module: int(v % 4), Number: v})
	}
	if pt.Mapped() != n {
		t.Fatalf("Mapped = %d, want %d", pt.Mapped(), n)
	}
	if len(pt.slots) < n*4/3 {
		t.Fatalf("load factor above 75%%: %d mappings in %d slots", n, len(pt.slots))
	}
	for v := uint64(0); v < n; v++ {
		f, ok := pt.Lookup(v * 31)
		if !ok || f.Number != v {
			t.Fatalf("after growth, vpage %#x = %+v,%v", v*31, f, ok)
		}
	}
	if _, ok := pt.Lookup(n*31 + 1); ok {
		t.Fatal("unmapped vpage reported mapped after growth")
	}
}

func TestPageTableRemapInPlace(t *testing.T) {
	pt := NewPageTable()
	vpages := collidingVPages(pt, 4)
	for i, v := range vpages {
		pt.Map(v, Frame{Module: 0, Number: uint64(i)})
	}
	before := len(pt.slots)
	// Remap every page repeatedly: the table must not grow (updates in
	// place, no tombstones or reinsertion) and chains stay intact.
	for round := 0; round < 50; round++ {
		for i, v := range vpages {
			old := pt.Remap(v, Frame{Module: 1, Number: uint64(100 + round + i)})
			if round == 0 && old.Number != uint64(i) {
				t.Fatalf("remap of %#x returned old frame %+v, want number %d", v, old, i)
			}
		}
	}
	if len(pt.slots) != before {
		t.Fatalf("table grew on remaps: %d → %d slots", before, len(pt.slots))
	}
	if pt.Mapped() != len(vpages) {
		t.Fatalf("Mapped = %d after remaps, want %d", pt.Mapped(), len(vpages))
	}
	for _, v := range vpages {
		if f, ok := pt.Lookup(v); !ok || f.Module != 1 {
			t.Fatalf("post-remap lookup of %#x = %+v,%v", v, f, ok)
		}
	}
}

func TestPageTableDoubleMapPanics(t *testing.T) {
	pt := NewPageTable()
	pt.Map(7, Frame{})
	defer func() {
		if recover() == nil {
			t.Error("double Map did not panic")
		}
	}()
	pt.Map(7, Frame{Module: 1})
}

func TestPageTableRemapUnmappedPanics(t *testing.T) {
	pt := NewPageTable()
	pt.Map(1, Frame{})
	defer func() {
		if recover() == nil {
			t.Error("Remap of unmapped vpage did not panic")
		}
	}()
	pt.Remap(2, Frame{})
}

func TestResidentCountersAcrossMapRemap(t *testing.T) {
	pt := NewPageTable()
	for v := uint64(0); v < 30; v++ {
		pt.Map(v, Frame{Module: int(v % 3), Number: v})
	}
	if got := pt.Resident(0); got != 10 {
		t.Errorf("Resident(0) = %d, want 10", got)
	}
	// Migrate every module-2 page to module 1.
	for v := uint64(0); v < 30; v++ {
		if v%3 == 2 {
			pt.Remap(v, Frame{Module: 1, Number: 1000 + v})
		}
	}
	if got := pt.Resident(2); got != 0 {
		t.Errorf("Resident(2) = %d after migration, want 0", got)
	}
	if got := pt.Resident(1); got != 20 {
		t.Errorf("Resident(1) = %d after migration, want 20", got)
	}
	// The census map must agree with the counters and omit empty modules.
	census := pt.ResidentByModule()
	if len(census) != 2 || census[0] != 10 || census[1] != 20 {
		t.Errorf("ResidentByModule = %v, want map[0:10 1:20]", census)
	}
	if pt.Resident(-1) != 0 || pt.Resident(99) != 0 {
		t.Error("out-of-range Resident not zero")
	}
}

// TestPageTableMatchesMapModel cross-checks the open-addressed table
// against a plain Go map under a randomized Map/Remap/Lookup workload.
func TestPageTableMatchesMapModel(t *testing.T) {
	pt := NewPageTable()
	model := map[uint64]Frame{}
	rng := rand.New(rand.NewSource(42))
	var keys []uint64
	for i := 0; i < 20000; i++ {
		switch {
		case len(keys) == 0 || rng.Intn(3) > 0:
			v := rng.Uint64() >> rng.Intn(40) // mix dense and sparse vpages
			if _, dup := model[v]; dup {
				continue
			}
			f := Frame{Module: rng.Intn(4), Number: rng.Uint64()}
			pt.Map(v, f)
			model[v] = f
			keys = append(keys, v)
		case rng.Intn(2) == 0:
			v := keys[rng.Intn(len(keys))]
			f := Frame{Module: rng.Intn(4), Number: rng.Uint64()}
			if old := pt.Remap(v, f); old != model[v] {
				t.Fatalf("Remap(%#x) returned %+v, model has %+v", v, old, model[v])
			}
			model[v] = f
		default:
			v := keys[rng.Intn(len(keys))]
			f, ok := pt.Lookup(v)
			if !ok || f != model[v] {
				t.Fatalf("Lookup(%#x) = %+v,%v, model has %+v", v, f, ok, model[v])
			}
		}
	}
	if pt.Mapped() != len(model) {
		t.Fatalf("Mapped = %d, model has %d", pt.Mapped(), len(model))
	}
	want := map[int]int{}
	for _, f := range model {
		want[f.Module]++
	}
	got := pt.ResidentByModule()
	for m, n := range want {
		if got[m] != n {
			t.Fatalf("Resident census %v, model %v", got, want)
		}
	}
}

func TestTLBSetConflictEviction(t *testing.T) {
	tlb := NewTLB(64) // 16 sets × 4 ways
	if tlb.sets != 16 || tlb.ways != 4 {
		t.Fatalf("geometry = %d sets × %d ways, want 16×4", tlb.sets, tlb.ways)
	}
	// Five pages that index the same set must evict within that set only.
	set0 := []uint64{}
	for v := uint64(0); len(set0) < 5; v++ {
		if tlb.setOf(v) == tlb.setOf(0) {
			set0 = append(set0, v)
		}
	}
	other := uint64(0)
	for tlb.setOf(other) == tlb.setOf(set0[0]) {
		other++
	}
	tlb.Insert(other, Frame{Number: 777})
	for i, v := range set0 {
		tlb.Insert(v, Frame{Number: uint64(i)})
	}
	// The set's LRU (first inserted, never touched) is gone; the rest hit.
	if _, ok := tlb.Lookup(set0[0]); ok {
		t.Error("set-LRU entry survived a 5th insert into a 4-way set")
	}
	for _, v := range set0[1:] {
		if _, ok := tlb.Lookup(v); !ok {
			t.Errorf("entry %#x missing from its set", v)
		}
	}
	// A different set is untouched by the conflict.
	if _, ok := tlb.Lookup(other); !ok {
		t.Error("conflict in one set evicted an entry from another")
	}
}

func TestTLBSetIndexSpreadsStrides(t *testing.T) {
	tlb := NewTLB(64)
	// Pages strided by the set count would all land on one set under a
	// pure low-bits index; the XOR fold must spread them.
	counts := map[int]int{}
	for i := uint64(0); i < 64; i++ {
		counts[tlb.setOf(i*uint64(tlb.sets))]++
	}
	if len(counts) < 2 {
		t.Fatalf("stride-%d pages all mapped to one set", tlb.sets)
	}
}

func TestTLBInvalidateProbesOneSet(t *testing.T) {
	tlb := NewTLB(64)
	tlb.Insert(5, Frame{Number: 5})
	if !tlb.Invalidate(5) {
		t.Error("present entry not invalidated")
	}
	if tlb.Invalidate(5) {
		t.Error("absent entry reported invalidated")
	}
	if _, ok := tlb.Lookup(5); ok {
		t.Error("invalidated entry still present")
	}
}
