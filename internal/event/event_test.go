package event

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	q := NewQueue()
	var got []int
	q.Schedule(30, func() { got = append(got, 3) })
	q.Schedule(10, func() { got = append(got, 1) })
	q.Schedule(20, func() { got = append(got, 2) })
	q.Drain()
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("executed %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
	if q.Now() != 30 {
		t.Errorf("Now() = %d, want 30", q.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	q := NewQueue()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		q.Schedule(100, func() { got = append(got, i) })
	}
	q.Drain()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-time events ran out of order: %v", got)
		}
	}
}

func TestRunUntil(t *testing.T) {
	q := NewQueue()
	ran := 0
	for _, at := range []Time{5, 10, 15, 20} {
		q.Schedule(at, func() { ran++ })
	}
	if n := q.RunUntil(12); n != 2 {
		t.Fatalf("RunUntil(12) executed %d, want 2", n)
	}
	if q.Now() != 12 {
		t.Errorf("Now() = %d, want 12", q.Now())
	}
	if q.Len() != 2 {
		t.Errorf("Len() = %d, want 2", q.Len())
	}
	if n := q.RunUntil(100); n != 2 {
		t.Fatalf("RunUntil(100) executed %d, want 2", n)
	}
	if ran != 4 {
		t.Errorf("total ran = %d, want 4", ran)
	}
}

func TestRunUntilIncludesCascades(t *testing.T) {
	q := NewQueue()
	var got []Time
	q.Schedule(5, func() {
		got = append(got, 5)
		q.Schedule(7, func() { got = append(got, 7) })
		q.Schedule(50, func() { got = append(got, 50) })
	})
	if n := q.RunUntil(10); n != 2 {
		t.Fatalf("RunUntil executed %d events, want 2 (cascaded event within window)", n)
	}
	if len(got) != 2 || got[0] != 5 || got[1] != 7 {
		t.Fatalf("got %v, want [5 7]", got)
	}
}

func TestAfter(t *testing.T) {
	q := NewQueue()
	var at Time = -1
	q.Schedule(100, func() {
		q.After(25, func() { at = q.Now() })
	})
	q.Drain()
	if at != 125 {
		t.Errorf("After fired at %d, want 125", at)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	q := NewQueue()
	q.Schedule(100, func() {})
	q.RunOne()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	q.Schedule(50, func() {})
}

func TestNextTime(t *testing.T) {
	q := NewQueue()
	if _, ok := q.NextTime(); ok {
		t.Fatal("NextTime on empty queue reported an event")
	}
	q.Schedule(42, func() {})
	if at, ok := q.NextTime(); !ok || at != 42 {
		t.Fatalf("NextTime = (%d,%v), want (42,true)", at, ok)
	}
}

func TestRunOneEmpty(t *testing.T) {
	q := NewQueue()
	if q.RunOne() {
		t.Fatal("RunOne on empty queue reported execution")
	}
}

func TestExecutedCount(t *testing.T) {
	q := NewQueue()
	for i := Time(0); i < 100; i++ {
		q.Schedule(i, func() {})
	}
	q.Drain()
	if q.Executed() != 100 {
		t.Errorf("Executed() = %d, want 100", q.Executed())
	}
}

// Property: events always execute in nondecreasing time order, matching the
// sorted schedule, regardless of insertion order.
func TestPropertyHeapOrdering(t *testing.T) {
	f := func(times []uint16) bool {
		q := NewQueue()
		var got []Time
		for _, raw := range times {
			at := Time(raw)
			q.Schedule(at, func() { got = append(got, at) })
		}
		q.Drain()
		want := make([]Time, len(times))
		for i, raw := range times {
			want[i] = Time(raw)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: interleaving Schedule and RunOne never yields an event executed
// at a time earlier than one already executed.
func TestPropertyMonotonicNow(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	q := NewQueue()
	var last Time = -1
	violated := false
	pending := 0
	for step := 0; step < 5000; step++ {
		if pending == 0 || rng.Intn(2) == 0 {
			q.Schedule(q.Now()+Time(rng.Intn(1000)), func() {
				if q.Now() < last {
					violated = true
				}
				last = q.Now()
			})
			pending++
		} else {
			q.RunOne()
			pending--
		}
	}
	q.Drain()
	if violated {
		t.Fatal("executed an event at a time earlier than a previous event")
	}
}

// TestSameTimeStormAcrossPopPaths schedules a large same-timestamp burst —
// the worst case for heap tie-breaking — and checks strict FIFO order on
// each pop path (RunOne, RunUntil, Drain), including events scheduled from
// inside handlers at the same timestamp.
func TestSameTimeStormAcrossPopPaths(t *testing.T) {
	const storm = 500
	pop := map[string]func(q *Queue){
		"RunOne": func(q *Queue) {
			for q.RunOne() {
			}
		},
		"RunUntil": func(q *Queue) { q.RunUntil(100) },
		"Drain":    func(q *Queue) { q.Drain() },
	}
	for name, run := range pop {
		t.Run(name, func(t *testing.T) {
			q := NewQueue()
			var got []int
			for i := 0; i < storm; i++ {
				i := i
				q.Schedule(100, func() {
					got = append(got, i)
					if i%10 == 0 {
						// Cascade at the same timestamp: runs after every
						// already-scheduled event, in schedule order.
						j := storm + i
						q.Schedule(100, func() { got = append(got, j) })
					}
				})
			}
			run(q)
			if len(got) != storm+storm/10 {
				t.Fatalf("executed %d events, want %d", len(got), storm+storm/10)
			}
			for i := 1; i < len(got); i++ {
				// Schedule order is execution order, so the recorded ids of
				// the initial burst ascend, then the cascaded ids ascend.
				if got[i] < got[i-1] && !(got[i-1] >= storm && got[i] < storm) {
					t.Fatalf("FIFO violated at %d: %d after %d", i, got[i], got[i-1])
				}
			}
			for i := 0; i < storm; i++ {
				if got[i] != i {
					t.Fatalf("initial burst out of order at %d: got %d", i, got[i])
				}
			}
		})
	}
}

// TestScheduleAtNow: an event may be scheduled for exactly the current time
// (e.g. a controller pulling its wake to "immediately"); it runs within the
// same RunUntil window.
func TestScheduleAtNow(t *testing.T) {
	q := NewQueue()
	ran := false
	q.Schedule(50, func() {
		q.Schedule(q.Now(), func() { ran = true })
	})
	q.RunUntil(50)
	if !ran {
		t.Fatal("event scheduled at Now() did not run in the same window")
	}
}

// TestPoolReuseAfterDrain: records recycled by Drain are reused by later
// schedules instead of growing the pool arena.
func TestPoolReuseAfterDrain(t *testing.T) {
	q := NewQueue()
	const n = 128
	for i := 0; i < n; i++ {
		q.Schedule(Time(i), func() {})
	}
	q.Drain()
	if len(q.pool) != n {
		t.Fatalf("pool holds %d records after %d events", len(q.pool), n)
	}
	for round := 0; round < 3; round++ {
		for i := 0; i < n; i++ {
			q.PostAfter(Time(i), runFunc, 0, 0, Func(func() {}))
		}
		q.Drain()
	}
	if len(q.pool) != n {
		t.Fatalf("pool grew to %d records; free-list recycling broken", len(q.pool))
	}
}

// countHandler counts pooled-event deliveries and checks payload plumbing.
type countHandler struct {
	n    int
	last int64
}

func (h *countHandler) OnEvent(_ Time, op int32, i64 int64, p any) {
	h.n++
	h.last = i64
}

// TestPostZeroAlloc gates the pooled hot path at zero allocations per
// event once the arena is warm.
func TestPostZeroAlloc(t *testing.T) {
	q := NewQueue()
	h := &countHandler{}
	// Warm the pool so the arena append is excluded.
	q.Post(0, h, 0, 0, nil)
	q.RunOne()
	if avg := testing.AllocsPerRun(1000, func() {
		q.Post(q.Now()+10, h, 1, 42, nil)
		q.RunOne()
	}); avg != 0 {
		t.Fatalf("Post/RunOne allocates %.1f per event, want 0", avg)
	}
	if h.last != 42 {
		t.Fatalf("payload i64 = %d, want 42", h.last)
	}
}

// TestWakeOrdering: at the same timestamp, wakes run after every normal
// event, ordered among themselves by virtual schedule time then arming
// order; rescheduling keeps the arming order; a fired handle is stale.
func TestWakeOrdering(t *testing.T) {
	q := NewQueue()
	var got []int64
	rec := func(id int64) Handler {
		return recordHandler{&got, id}
	}
	// Arm wakes first so a FIFO-by-seq queue would run them first.
	q.ScheduleWake(100, 90, rec(3), 0) // later virtual schedule time
	q.ScheduleWake(100, 80, rec(2), 0) // earlier virtual schedule time
	q.Post(100, rec(1), 0, 0, nil)     // normal event: must run first
	q.Drain()
	want := []int64{1, 2, 3}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("execution order %v, want %v", got, want)
	}
	if q.Executed() != 1 {
		t.Errorf("Executed() = %d, want 1 (wakes uncounted)", q.Executed())
	}

	hd := q.ScheduleWake(200, 190, rec(4), 0)
	q.RescheduleWake(hd, 150, 149)
	q.Drain()
	if got[len(got)-1] != 4 {
		t.Fatalf("rescheduled wake did not run: %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("rescheduling a fired wake did not panic")
		}
	}()
	q.RescheduleWake(hd, 300, 299)
}

type recordHandler struct {
	out *[]int64
	id  int64
}

func (h recordHandler) OnEvent(Time, int32, int64, any) { *h.out = append(*h.out, h.id) }

// BenchmarkQueue measures the pooled Post/RunOne hot path; the companion
// TestPostZeroAlloc gates it at 0 allocs/op.
func BenchmarkQueue(b *testing.B) {
	q := NewQueue()
	h := &countHandler{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Post(q.Now()+Time(i%64), h, 0, int64(i), nil)
		if q.Len() > 1024 {
			q.RunOne()
		}
	}
	q.Drain()
}

func BenchmarkScheduleRun(b *testing.B) {
	q := NewQueue()
	fn := func() {}
	for i := 0; i < b.N; i++ {
		q.Schedule(q.Now()+Time(i%64), fn)
		if q.Len() > 1024 {
			q.RunOne()
		}
	}
	q.Drain()
}
