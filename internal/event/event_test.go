package event

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	q := NewQueue()
	var got []int
	q.Schedule(30, func() { got = append(got, 3) })
	q.Schedule(10, func() { got = append(got, 1) })
	q.Schedule(20, func() { got = append(got, 2) })
	q.Drain()
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("executed %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
	if q.Now() != 30 {
		t.Errorf("Now() = %d, want 30", q.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	q := NewQueue()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		q.Schedule(100, func() { got = append(got, i) })
	}
	q.Drain()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-time events ran out of order: %v", got)
		}
	}
}

func TestRunUntil(t *testing.T) {
	q := NewQueue()
	ran := 0
	for _, at := range []Time{5, 10, 15, 20} {
		q.Schedule(at, func() { ran++ })
	}
	if n := q.RunUntil(12); n != 2 {
		t.Fatalf("RunUntil(12) executed %d, want 2", n)
	}
	if q.Now() != 12 {
		t.Errorf("Now() = %d, want 12", q.Now())
	}
	if q.Len() != 2 {
		t.Errorf("Len() = %d, want 2", q.Len())
	}
	if n := q.RunUntil(100); n != 2 {
		t.Fatalf("RunUntil(100) executed %d, want 2", n)
	}
	if ran != 4 {
		t.Errorf("total ran = %d, want 4", ran)
	}
}

func TestRunUntilIncludesCascades(t *testing.T) {
	q := NewQueue()
	var got []Time
	q.Schedule(5, func() {
		got = append(got, 5)
		q.Schedule(7, func() { got = append(got, 7) })
		q.Schedule(50, func() { got = append(got, 50) })
	})
	if n := q.RunUntil(10); n != 2 {
		t.Fatalf("RunUntil executed %d events, want 2 (cascaded event within window)", n)
	}
	if len(got) != 2 || got[0] != 5 || got[1] != 7 {
		t.Fatalf("got %v, want [5 7]", got)
	}
}

func TestAfter(t *testing.T) {
	q := NewQueue()
	var at Time = -1
	q.Schedule(100, func() {
		q.After(25, func() { at = q.Now() })
	})
	q.Drain()
	if at != 125 {
		t.Errorf("After fired at %d, want 125", at)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	q := NewQueue()
	q.Schedule(100, func() {})
	q.RunOne()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	q.Schedule(50, func() {})
}

func TestNextTime(t *testing.T) {
	q := NewQueue()
	if _, ok := q.NextTime(); ok {
		t.Fatal("NextTime on empty queue reported an event")
	}
	q.Schedule(42, func() {})
	if at, ok := q.NextTime(); !ok || at != 42 {
		t.Fatalf("NextTime = (%d,%v), want (42,true)", at, ok)
	}
}

func TestRunOneEmpty(t *testing.T) {
	q := NewQueue()
	if q.RunOne() {
		t.Fatal("RunOne on empty queue reported execution")
	}
}

func TestExecutedCount(t *testing.T) {
	q := NewQueue()
	for i := Time(0); i < 100; i++ {
		q.Schedule(i, func() {})
	}
	q.Drain()
	if q.Executed() != 100 {
		t.Errorf("Executed() = %d, want 100", q.Executed())
	}
}

// Property: events always execute in nondecreasing time order, matching the
// sorted schedule, regardless of insertion order.
func TestPropertyHeapOrdering(t *testing.T) {
	f := func(times []uint16) bool {
		q := NewQueue()
		var got []Time
		for _, raw := range times {
			at := Time(raw)
			q.Schedule(at, func() { got = append(got, at) })
		}
		q.Drain()
		want := make([]Time, len(times))
		for i, raw := range times {
			want[i] = Time(raw)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: interleaving Schedule and RunOne never yields an event executed
// at a time earlier than one already executed.
func TestPropertyMonotonicNow(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	q := NewQueue()
	var last Time = -1
	violated := false
	pending := 0
	for step := 0; step < 5000; step++ {
		if pending == 0 || rng.Intn(2) == 0 {
			q.Schedule(q.Now()+Time(rng.Intn(1000)), func() {
				if q.Now() < last {
					violated = true
				}
				last = q.Now()
			})
			pending++
		} else {
			q.RunOne()
			pending--
		}
	}
	q.Drain()
	if violated {
		t.Fatal("executed an event at a time earlier than a previous event")
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	q := NewQueue()
	fn := func() {}
	for i := 0; i < b.N; i++ {
		q.Schedule(q.Now()+Time(i%64), fn)
		if q.Len() > 1024 {
			q.RunOne()
		}
	}
	q.Drain()
}
